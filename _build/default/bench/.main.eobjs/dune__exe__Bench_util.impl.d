bench/bench_util.ml: Analyze Bechamel Benchmark Buffer Core Hashtbl Printf Staged String Test Time Toolkit Unix Xmtsim
