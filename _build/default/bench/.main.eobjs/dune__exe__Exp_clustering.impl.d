bench/exp_clustering.ml: Bench_util Compiler Core List Printf Xmtsim
