bench/exp_designspace.ml: Bench_util Core List Printf Xmtsim
