bench/exp_fig5.ml: Bench_util Desim List Printf
