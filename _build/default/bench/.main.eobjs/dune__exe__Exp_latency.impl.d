bench/exp_latency.ml: Bench_util Compiler Core List Printf Xmtsim
