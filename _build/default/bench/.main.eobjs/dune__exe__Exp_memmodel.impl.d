bench/exp_memmodel.ml: Bench_util Compiler Core Hashtbl List Option Printf String Xmtsim
