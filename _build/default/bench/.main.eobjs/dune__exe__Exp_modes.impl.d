bench/exp_modes.ml: Bench_util Core List Printf Xmtsim
