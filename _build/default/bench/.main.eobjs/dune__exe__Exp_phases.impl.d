bench/exp_phases.ml: Bench_util Core Printf Xmtsim
