bench/exp_prefetch.ml: Bench_util Compiler Core List Printf Xmtsim
