bench/exp_speedups.ml: Array Bench_util Core Isa Printf Xmtsim
