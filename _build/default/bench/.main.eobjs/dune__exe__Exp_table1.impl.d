bench/exp_table1.ml: Bench_util Core List Printf Xmtsim
