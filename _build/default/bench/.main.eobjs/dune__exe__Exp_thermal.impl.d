bench/exp_thermal.ml: Bench_util Core List Printf Xmtsim
