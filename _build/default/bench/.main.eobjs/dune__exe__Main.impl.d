bench/main.ml: Array Exp_clustering Exp_designspace Exp_fig5 Exp_latency Exp_memmodel Exp_modes Exp_phases Exp_prefetch Exp_speedups Exp_table1 Exp_thermal List Printf String Sys Unix
