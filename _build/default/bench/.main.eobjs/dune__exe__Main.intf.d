bench/main.mli:
