(** Shared plumbing for the evaluation harness. *)

let section title =
  let bar = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Nanoseconds per run of [f], measured with Bechamel's OLS estimator on
    the monotonic clock; falls back to a single wall-clock measurement for
    long-running functions. *)
let bechamel_ns_per_run ?(quota = 3.0) ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second quota) ~stabilize:false
      ~sampling:(`Linear 1) ~start:1 ()
  in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  let est = ref None in
  Hashtbl.iter
    (fun _ v ->
      match Analyze.OLS.estimates v with
      | Some (x :: _) -> est := Some x
      | _ -> ())
    analyzed;
  match !est with
  | Some ns when ns > 0.0 -> ns
  | Some _ | None ->
    let _, secs = wall f in
    secs *. 1e9

let compile ?options ?memmap src = Core.Toolchain.compile ?options ?memmap src

let cycles_of ?(config = Xmtsim.Config.fpga64) compiled =
  (Core.Toolchain.run_cycle ~config compiled).Core.Toolchain.cycles

let commas n =
  let s = string_of_int n in
  let b = Buffer.create 16 in
  let len = String.length s in
  String.iteri
    (fun i c ->
      Buffer.add_char b c;
      let rem = len - i - 1 in
      if rem > 0 && rem mod 3 = 0 && c <> '-' then Buffer.add_char b ',')
    s;
  Buffer.contents b
