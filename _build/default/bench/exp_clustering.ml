(** §IV-C — virtual-thread clustering (coarsening).

    Extremely fine-grained spawn blocks pay one ps+chkid dispatch round per
    virtual thread; clustering groups [c] threads into one, cutting the
    scheduling overhead by [c] and enabling loop prefetching.  Reproduction
    target: cycles improve with moderate clustering on a fine-grained
    kernel, then flatten or regress once threads become scarce relative to
    TCUs (load imbalance). *)

open Bench_util

let run () =
  section "\xc2\xa7IV-C: virtual-thread clustering sweep (vecadd, n=16384, fpga64)";
  let n = 16384 in
  let src = Core.Kernels.vecadd ~n in
  Printf.printf "%10s %12s %16s %14s\n" "factor" "cycles" "virtual threads"
    "vs factor 1";
  let base = ref 0 in
  let best = ref max_int in
  List.iter
    (fun factor ->
      let options =
        { Compiler.Driver.default_options with Compiler.Driver.cluster = factor }
      in
      let compiled = compile ~options src in
      let r = Core.Toolchain.run_cycle ~config:Xmtsim.Config.fpga64 compiled in
      if factor = 1 then base := r.Core.Toolchain.cycles;
      if r.Core.Toolchain.cycles < !best then best := r.Core.Toolchain.cycles;
      Printf.printf "%10d %12s %16d %13.2fx\n%!" factor
        (commas r.Core.Toolchain.cycles)
        r.Core.Toolchain.stats.Xmtsim.Stats.virtual_threads
        (float_of_int !base /. float_of_int r.Core.Toolchain.cycles))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Printf.printf
    "\nshape check: some clustering factor beats factor 1: %.2fx %s\n"
    (float_of_int !base /. float_of_int !best)
    (if !best < !base then "[ok]" else "[MISMATCH]")
