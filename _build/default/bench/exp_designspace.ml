(** §I item 3 / §III — the simulator as a design-space exploration tool.

    "The simulator allows users to change the parameters of the simulated
    architecture...  system architects can use it to explore a much
    greater design-space of shared memory many-cores."  Three single-knob
    sweeps on a memory-intensive kernel.  Reproduction targets: longer
    interconnect and slower DRAM hurt; more cache modules (more banking)
    help a scatter/gather workload. *)

open Bench_util

let kernel = Core.Kernels.par_mem ~threads:512 ~iters:24 ~n:32768

let sweep name key values =
  subsection name;
  Printf.printf "%16s %12s\n" key "cycles";
  let compiled = compile kernel in
  List.iter
    (fun v ->
      let cfg =
        Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
          [ Printf.sprintf "%s=%d" key v ]
      in
      let r = Core.Toolchain.run_cycle ~config:cfg compiled in
      Printf.printf "%16d %12s\n%!" v (commas r.Core.Toolchain.cycles))
    values

let run () =
  section
    "\xc2\xa7III: design-space sweeps (par_mem, 512 threads, fpga64 base config)";
  sweep "interconnection network latency" "icn_latency" [ 2; 6; 12; 24; 48 ];
  sweep "DRAM latency" "dram_latency" [ 20; 60; 150; 400 ];
  sweep "DRAM bandwidth (requests/cycle)" "dram_bandwidth" [ 1; 2; 4; 8 ];
  sweep "shared cache modules (banking)" "num_cache_modules" [ 2; 4; 8; 16; 32 ]
