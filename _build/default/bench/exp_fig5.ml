(** Fig. 5 + §III-D — discrete-event vs discrete-time simulation, and the
    macro-actor grouping threshold.

    The paper contrasts the DT main loop (poll every component, advance
    time by one) with the DE main loop (pop the next event), and reports
    that grouping closely-related components into a macro-actor (one event
    iterating all of them per cycle) beats one-actor-per-component once
    the event rate passes a threshold — about 800 events/cycle for empty
    action code on their JVM.

    This experiment simulates [n] trivial components for a fixed number of
    cycles under three engines built on the same {!Desim} substrate:

    - DE, one actor per component (n events per cycle),
    - DE, one macro-actor (1 event per cycle, iterating n components),
    - a plain DT loop (no event list at all). *)

open Bench_util

let sim_cycles = 2_000

let de_per_component n =
  let s = Desim.Scheduler.create () in
  let work = ref 0 in
  for _ = 1 to n do
    let action a =
      incr work;
      if Desim.Scheduler.now s < sim_cycles then Desim.Actor.notify_in a ~delay:1
    in
    let a = Desim.Actor.create s ~name:"c" action in
    Desim.Actor.notify_in a ~delay:1
  done;
  ignore (Desim.Scheduler.run s);
  !work

let de_macro_actor n =
  let s = Desim.Scheduler.create () in
  let work = ref 0 in
  let c = Desim.Clock.create s ~name:"macro" ~period:1 in
  Desim.Clock.on_tick c (fun _ ->
      for _ = 1 to n do
        incr work
      done);
  Desim.Clock.start c;
  Desim.Scheduler.stop s ~time:sim_cycles ();
  ignore (Desim.Scheduler.run s);
  !work

let dt_loop n =
  let work = ref 0 in
  let time = ref 0 in
  while !time <= sim_cycles do
    for _ = 1 to n do
      incr work
    done;
    incr time
  done;
  !work

let run () =
  section
    "Fig. 5 / \xc2\xa7III-D: DE vs DT main loops and the macro-actor threshold";
  Printf.printf "%8s %18s %18s %18s %14s\n" "n" "DE per-component" "DE macro-actor"
    "DT loop" "macro speedup";
  Printf.printf "%8s %18s %18s %18s\n" "" "(ns/comp-cycle)" "(ns/comp-cycle)"
    "(ns/comp-cycle)";
  let crossover = ref None in
  List.iter
    (fun n ->
      let per f = bechamel_ns_per_run ~quota:1.5 ~name:"engine" (fun () -> ignore (f n))
                  /. float_of_int (n * sim_cycles) in
      let de_pc = per de_per_component in
      let de_ma = per de_macro_actor in
      let dt = per dt_loop in
      let speedup = de_pc /. de_ma in
      if speedup > 2.0 && !crossover = None then crossover := Some n;
      Printf.printf "%8d %18.2f %18.2f %18.2f %13.1fx\n%!" n de_pc de_ma dt speedup)
    [ 1; 4; 16; 64; 256; 800; 2048 ];
  (match !crossover with
  | Some n ->
    Printf.printf
      "\nmacro-actor grouping pays off well before ~%d events/cycle (paper: \
       threshold ~800 events/cycle for empty action code)\n"
      n
  | None -> print_endline "\nmacro-actor grouping advantage below 2x in this range");
  print_endline
    "DE does not poll idle components: unlike the DT loop its cost scales \n\
     with events, not with components x cycles, which is why XMTSim gates \n\
     idle clusters and groups the interconnection network into a macro-actor."
