(** §IV-C — latency-tolerating mechanisms ablation.

    The XMT shared L1 is tens of cycles away; the architecture hides that
    with non-blocking stores, TCU prefetch buffers and read-only caches,
    and the compiler automatically uses the first two.  Ablates each
    compiler mechanism on a memory-intensive kernel.  Reproduction
    targets: every mechanism on > each one off > both off. *)

open Bench_util

let run () =
  section "\xc2\xa7IV-C: latency-tolerance ablation (par_mem, 1024 threads, chip1024)";
  let src = Core.Kernels.par_mem ~threads:1024 ~iters:32 ~n:65536 in
  let dflt = Compiler.Driver.default_options in
  let variants =
    [
      ("all mechanisms on", dflt);
      ("no compiler prefetch", { dflt with Compiler.Driver.prefetch = false });
      ("blocking stores", { dflt with Compiler.Driver.nbstore = false });
      ( "neither",
        { dflt with Compiler.Driver.prefetch = false; nbstore = false } );
    ]
  in
  Printf.printf "%-26s %12s %14s\n" "compiler variant" "cycles" "vs all-on";
  let base = ref 0 in
  let rows =
    List.map
      (fun (name, options) ->
        let compiled = compile ~options src in
        let r = Core.Toolchain.run_cycle ~config:Xmtsim.Config.chip1024 compiled in
        if !base = 0 then base := r.Core.Toolchain.cycles;
        Printf.printf "%-26s %12s %13.2fx\n%!" name (commas r.Core.Toolchain.cycles)
          (float_of_int r.Core.Toolchain.cycles /. float_of_int !base);
        (name, r.Core.Toolchain.cycles))
      variants
  in
  let get n = List.assoc n rows in
  Printf.printf
    "\nshape check: all-on (%s) <= neither (%s): %s\n"
    (commas (get "all mechanisms on"))
    (commas (get "neither"))
    (if get "all mechanisms on" <= get "neither" then "[ok]" else "[MISMATCH]")
