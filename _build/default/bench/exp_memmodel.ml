(** Figs. 6 and 7 — the XMT memory model (§IV-A).

    Outcome histograms of the two-thread litmus programs across a sweep of
    reader delays and arbitration seeds (see examples/memory_model.ml for
    the staging details).  Reproduction targets:

    - Fig. 6 (no ordering operations): the counter-intuitive (rx,ry)=(0,1)
      outcome appears;
    - Fig. 7 (psm + compiler fences): "if ry >= 1 then rx = 1" always;
    - Fig. 7 with fences disabled: the violation reappears. *)

open Bench_util

let threads = 64
let hammer_iters = 400
let delays = [ 0; 80; 160; 250; 400; 900 ]
let seeds = [ 1; 2; 3 ]

let config seed =
  Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
    [ Printf.sprintf "seed=%d" seed; "icn_jitter=4"; "cache_ports=2" ]

let outcomes ?options src_of =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun delay ->
      List.iter
        (fun seed ->
          let compiled = compile ?options (src_of delay) in
          let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
          let k = r.Core.Toolchain.output in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        seeds)
    delays;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let violated l =
  List.exists
    (fun (k, _) ->
      match String.split_on_char ' ' k with
      | [ rx; ry ] -> int_of_string ry >= 1 && int_of_string rx = 0
      | _ -> false)
    l

let show name l =
  Printf.printf "  %-26s" name;
  List.iter (fun (k, v) -> Printf.printf "  (%s) x%-2d" k v) l;
  print_newline ()

let run () =
  section "Figs. 6/7: memory-model litmus outcomes (outcome = \"rx ry\")";
  let fig6 =
    outcomes (fun d -> Core.Kernels.fig6_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let fig7 =
    outcomes (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let nofence =
    outcomes
      ~options:
        { Compiler.Driver.default_options with Compiler.Driver.fences = false }
      (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  show "Fig. 6 (no sync)" fig6;
  show "Fig. 7 (psm + fences)" fig7;
  show "Fig. 7 (fences off)" nofence;
  Printf.printf
    "\nshape checks:\n\
    \  Fig. 6 shows relaxed (0,1):            %b  %s\n\
    \  Fig. 7 upholds ry>=1 -> rx=1:          %b  %s\n\
    \  Fig. 7 w/o fences shows the violation: %b  %s\n"
    (violated fig6)
    (if violated fig6 then "[ok]" else "[MISMATCH]")
    (not (violated fig7))
    (if not (violated fig7) then "[ok]" else "[MISMATCH]")
    (violated nofence)
    (if violated nofence then "[ok]" else "[MISMATCH]")
