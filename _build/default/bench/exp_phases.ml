(** §III-F — phase sampling (roadmap feature; ref [38] SimPoint).

    Estimates a long program's cycle count by cycle-simulating one
    interval per detected phase and fast-forwarding functionally in
    between.  Reproduction targets: the estimate lands near the full
    cycle-accurate count while cycle-simulating a small fraction of the
    instructions. *)

open Bench_util

let program =
  {|
int A[8192];
int B[8192];
int main(void) {
  int round;
  for (round = 0; round < 24; round++) {
    spawn(0, 2047) {
      int x = A[$] + 1;
      int k;
      for (k = 0; k < 8; k++) x = (x * 3 + 1) & 65535;
      B[$] = x;
    }
    spawn(0, 2047) {
      B[$ * 4] = A[($ * 4 + 97) & 8191] + B[($ * 4) & 8191];
    }
  }
  print_int(B[0]);
  return 0;
}
|}

let run () =
  section "\xc2\xa7III-F: phase sampling (cycle-simulate one interval per phase)";
  let compiled = compile program in
  let img = compiled.Core.Toolchain.image in
  let full, t_full =
    wall (fun () -> Core.Toolchain.run_cycle ~config:Xmtsim.Config.fpga64 compiled)
  in
  let est, t_est =
    wall (fun () ->
        Xmtsim.Phase_sampling.estimate ~config:Xmtsim.Config.fpga64
          ~interval:20_000 img)
  in
  let open Xmtsim.Phase_sampling in
  Printf.printf "%-34s %14s %12s\n" "" "cycles" "host time";
  Printf.printf "%-34s %14s %11.2fs\n" "full cycle-accurate run"
    (commas full.Core.Toolchain.cycles) t_full;
  Printf.printf "%-34s %14s %11.2fs\n" "phase-sampled estimate"
    (commas est.estimated_cycles) t_est;
  let err =
    100.0
    *. abs_float
         (float_of_int est.estimated_cycles -. float_of_int full.Core.Toolchain.cycles)
    /. float_of_int full.Core.Toolchain.cycles
  in
  Printf.printf
    "\nintervals %d, phases %d, cycle-simulated intervals %d\n\
     instructions cycle-simulated: %s of %s (%.1f%%)\n\
     estimate error: %.1f%%  %s\n"
    est.intervals est.phases est.samples_taken
    (commas est.sampled_instructions)
    (commas est.total_instructions)
    (100.0 *. float_of_int est.sampled_instructions
    /. float_of_int est.total_instructions)
    err
    (if err < 20.0 then "[ok]" else "[MISMATCH]")
