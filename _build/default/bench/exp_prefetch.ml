(** §IV-C / ref [8] — compiler prefetching and the prefetch-buffer design
    space.

    Sweeps the per-TCU prefetch buffer size and replacement policy (the
    resource-aware study of [8]) and ablates the compiler pass itself.
    Reproduction targets: prefetching beats no-prefetching on
    memory-intensive kernels; benefit saturates with buffer size; the
    compiler's prefetch outperforms disabling it at every size. *)

open Bench_util

let run () =
  section "\xc2\xa7IV-C / [8]: prefetch buffer size and replacement policy sweep";
  let src = Core.Kernels.par_mem2 ~threads:1024 ~iters:32 ~n:65536 in
  let compiled = compile src in
  let compiled_nopref =
    compile
      ~options:
        { Compiler.Driver.default_options with Compiler.Driver.prefetch = false }
      src
  in
  let cycles_with ~size ~policy ~compiled =
    let cfg =
      Xmtsim.Config.with_overrides Xmtsim.Config.chip1024
        [ Printf.sprintf "prefetch_buffer_size=%d" size;
          "prefetch_policy=" ^ policy ]
    in
    let r = Core.Toolchain.run_cycle ~config:cfg compiled in
    (r.Core.Toolchain.cycles, r.Core.Toolchain.stats)
  in
  Printf.printf "workload: par_mem2 (two streams/thread), 1024 threads x 32 accesses, chip1024\n\n";
  Printf.printf "%8s %14s %14s %14s %12s\n" "size" "FIFO cycles" "LRU cycles"
    "no-pref pass" "pbuf hit%";
  let base_cycles = ref 0 in
  let best = ref max_int in
  List.iter
    (fun size ->
      let fifo, stats = cycles_with ~size ~policy:"fifo" ~compiled in
      let lru, _ = cycles_with ~size ~policy:"lru" ~compiled in
      let off, _ = cycles_with ~size ~policy:"fifo" ~compiled:compiled_nopref in
      if size = 0 then base_cycles := fifo;
      if fifo < !best then best := fifo;
      let hits = stats.Xmtsim.Stats.prefetch_hits + stats.Xmtsim.Stats.prefetch_late in
      let total = hits + stats.Xmtsim.Stats.prefetch_misses in
      Printf.printf "%8d %14s %14s %14s %11.1f%%\n%!" size (commas fifo)
        (commas lru) (commas off)
        (if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total))
    [ 0; 1; 2; 4; 8; 16 ];
  Printf.printf
    "\nshape checks:\n\
    \  prefetching helps (best %s vs size-0 %s): %.2fx %s\n"
    (commas !best) (commas !base_cycles)
    (float_of_int !base_cycles /. float_of_int !best)
    (if !best < !base_cycles then "[ok]" else "[MISMATCH]")
