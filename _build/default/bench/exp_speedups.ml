(** §II-B — speedups of PRAM-derived programs over serial execution.

    The paper's evaluation record: BFS 5.4x-73x vs optimized GPU code,
    graph connectivity 2.2x-4x, and strong results vs serial CPUs; the
    64-TCU FPGA outperformed an Intel Core 2 Duo.  Our comparison is
    XMT-p vs the same algorithm run serially on the Master TCU (the
    toolchain cannot conjure the authors' GPUs), so the reproduction
    targets are: parallel wins by a large factor, the 1024-TCU
    configuration beats the 64-TCU one on large inputs, and irregular
    graph workloads scale. *)

open Bench_util

let validate name expected got =
  if expected <> got then
    Printf.printf "  [MISMATCH] %s: expected %S, got %S\n" name expected got

let bench name ~serial_src ~parallel_src ~memmap ~expected =
  let run src config =
    let compiled = compile ~memmap src in
    let r = Core.Toolchain.run_cycle ~config compiled in
    validate name expected r.Core.Toolchain.output;
    r.Core.Toolchain.cycles
  in
  let ser = run serial_src Xmtsim.Config.fpga64 in
  let p64 = run parallel_src Xmtsim.Config.fpga64 in
  let p1024 = run parallel_src Xmtsim.Config.chip1024 in
  Printf.printf "%-22s %12s %12s %12s %8.1fx %8.1fx\n%!" name (commas ser)
    (commas p64) (commas p1024)
    (float_of_int ser /. float_of_int p64)
    (float_of_int ser /. float_of_int p1024);
  (float_of_int ser /. float_of_int p64, float_of_int ser /. float_of_int p1024)

let run () =
  section "\xc2\xa7II-B: speedups of PRAM programs over serial (Master TCU) execution";
  Printf.printf "%-22s %12s %12s %12s %9s %9s\n" "workload" "serial cyc"
    "64-TCU cyc" "1024-TCU cyc" "64x" "1024x";

  (* BFS on a low-diameter random graph *)
  let n = 4096 in
  let g = Core.Workloads.random_graph ~chain:16 ~seed:11 ~n ~edges_per_vertex:4 () in
  let reached, total = Core.Reference.bfs_summary g 0 in
  let _, bfs1024 =
    bench "BFS (n=4096)"
      ~serial_src:(Core.Kernels.bfs_serial ~n ~m:g.Core.Workloads.m)
      ~parallel_src:(Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0)
      ~memmap:(Core.Workloads.graph_memmap g)
      ~expected:(Printf.sprintf "%d %d" reached total)
  in

  (* graph connectivity by label propagation *)
  let gc = Core.Workloads.random_graph ~seed:3 ~n:1024 ~edges_per_vertex:3 () in
  let mc = Array.length gc.Core.Workloads.edges in
  let _, _ =
    bench "connectivity (n=1024)"
      ~serial_src:(Core.Kernels.connectivity_serial ~n:1024 ~m:mc)
      ~parallel_src:(Core.Kernels.connectivity ~n:1024 ~m:mc)
      ~memmap:(Core.Workloads.edgelist_memmap gc)
      ~expected:(string_of_int (Core.Reference.components gc))
  in

  (* array compaction (Fig. 2a) *)
  let nc = 16384 in
  let a = Core.Workloads.sparse_array ~seed:5 ~n:nc ~density:35 in
  let _, _ =
    bench "compaction (n=16384)"
      ~serial_src:(Core.Kernels.compaction_serial ~n:nc)
      ~parallel_src:(Core.Kernels.compaction ~n:nc)
      ~memmap:(Isa.Memmap.of_ints [ ("A", a) ])
      ~expected:(string_of_int (Core.Reference.count_nonzero a))
  in

  (* tree reduction *)
  let nr = 16384 in
  let ar = Core.Workloads.random_array ~seed:6 ~n:nr ~bound:100 in
  let _, _ =
    bench "reduction (n=16384)"
      ~serial_src:(Core.Kernels.reduce_serial ~n:nr)
      ~parallel_src:(Core.Kernels.reduce_tree ~n:nr)
      ~memmap:(Isa.Memmap.of_ints [ ("A", ar) ])
      ~expected:(string_of_int (Core.Reference.sum ar))
  in
  (* FFT (the §II-B [24] workload): validated against the host reference *)
  let nf = 1024 in
  let re = Core.Workloads.random_float_array ~seed:1 ~n:nf in
  let imv = Core.Workloads.random_float_array ~seed:2 ~n:nf in
  let wr, wi = Core.Reference.fft_twiddles nf in
  let fmm = Isa.Memmap.of_floats [ ("re", re); ("im", imv); ("wr", wr); ("wi", wi) ] in
  let expected_fft =
    let compiled = compile ~memmap:fmm (Core.Kernels.fft_serial ~n:nf) in
    (Core.Toolchain.run_cycle ~config:Xmtsim.Config.fpga64 compiled).Core.Toolchain.output
  in
  let _, _ =
    bench "FFT (n=1024)"
      ~serial_src:(Core.Kernels.fft_serial ~n:nf)
      ~parallel_src:(Core.Kernels.fft ~n:nf)
      ~memmap:fmm ~expected:expected_fft
  in
  Printf.printf
    "\nshape checks: BFS 1024-TCU speedup in/above the paper's 5.4x-73x band: \
     %.1fx %s\n"
    bfs1024
    (if bfs1024 > 5.4 then "[ok]" else "[MISMATCH]")
