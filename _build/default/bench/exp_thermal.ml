(** §III-B/§III-F — dynamic power and thermal management.

    "A feature unique to XMTSim is the capability to evaluate runtime
    systems for dynamic power and thermal management."  An activity
    plug-in samples the power model, integrates the HotSpot-substitute
    thermal model, and (in the managed run) throttles the cluster clock
    domain at a trip temperature.  Reproduction targets: temperature rises
    with activity; the manager caps the peak at the cost of extra
    cycles. *)

open Bench_util

let trip = 326.0
let interval = 2000

let run_once ~throttle =
  let src = Core.Kernels.par_comp ~threads:1024 ~iters:600 in
  let compiled = compile src in
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.chip1024 compiled in
  let power =
    Xmtsim.Power.create
      ~params:
        { Xmtsim.Power.default with
          Xmtsim.Power.e_alu = 0.5;
          leak_cluster = 1.0 }
      m
  in
  let thermal =
    Xmtsim.Thermal.create ~params:Xmtsim.Thermal.demo ~grid_w:8
      (Xmtsim.Power.component_names power)
  in
  let throttled = ref false in
  let samples = ref [] in
  Xmtsim.Machine.add_activity_plugin m ~name:"mgr" ~interval (fun m cycle ->
      let w = Xmtsim.Power.sample power in
      Xmtsim.Thermal.step thermal ~dt:(float_of_int interval /. 1e9) w;
      let tmax = Xmtsim.Thermal.max_temperature thermal in
      samples := (cycle, Xmtsim.Power.total power, tmax) :: !samples;
      if throttle then
        if tmax > trip && not !throttled then begin
          throttled := true;
          Xmtsim.Machine.set_period m Xmtsim.Machine.Clusters 2
        end
        else if tmax < trip -. 2.0 && !throttled then begin
          throttled := false;
          Xmtsim.Machine.set_period m Xmtsim.Machine.Clusters 1
        end);
  let r = Xmtsim.Machine.run m in
  let peak =
    List.fold_left (fun acc (_, _, t) -> max acc t) neg_infinity !samples
  in
  let avg_w =
    let ws = List.map (fun (_, w, _) -> w) !samples in
    List.fold_left ( +. ) 0.0 ws /. float_of_int (max 1 (List.length ws))
  in
  (r.Xmtsim.Machine.cycles, peak, avg_w, List.rev !samples)

let run () =
  section "\xc2\xa7III-F: power/temperature estimation and DVFS thermal management";
  let c1, peak1, w1, trace = run_once ~throttle:false in
  let c2, peak2, w2, _ = run_once ~throttle:true in
  print_endline "power/temperature profile (unmanaged run):";
  List.iteri
    (fun i (cycle, w, t) ->
      if i mod 8 = 0 then
        Printf.printf "  cycle %8d  %6.1f W  Tmax %6.2f K\n" cycle w t)
    trace;
  Printf.printf "\n%-28s %12s %10s %10s\n" "run" "cycles" "peak K" "avg W";
  Printf.printf "%-28s %12s %10.2f %10.1f\n" "no management" (commas c1) peak1 w1;
  Printf.printf "%-28s %12s %10.2f %10.1f\n" "DVFS manager (trip 326 K)" (commas c2)
    peak2 w2;
  Printf.printf
    "\nshape checks:\n\
    \  temperature rises above ambient during the run: %s\n\
    \  manager lowers the peak (%.2f K vs %.2f K):      %s\n\
    \  at an execution-time cost (+%d cycles):          %s\n"
    (if peak1 > 318.5 then "[ok]" else "[MISMATCH]")
    peak2 peak1
    (if peak2 < peak1 then "[ok]" else "[MISMATCH]")
    (c2 - c1)
    (if c2 > c1 then "[ok]" else "[MISMATCH]")
