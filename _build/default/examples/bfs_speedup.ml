(** The paper's motivating workload (§II-B): PRAM-style breadth-first
    search.  Runs the level-synchronized BFS kernel on a random graph at
    several machine sizes and reports speedups over serial execution on
    the Master TCU — the experiment shape behind the "none of the 42
    students achieved OpenMP speedups on BFS, but reached 8x-25x on XMT"
    story (§II-C).

    Run with: dune exec examples/bfs_speedup.exe *)

let () =
  let n = 2048 in
  (* low-diameter random graph: BFS parallelism is bounded by the frontier
     sizes, so an expander-like graph lets the machine scale *)
  let g = Core.Workloads.random_graph ~chain:16 ~seed:7 ~n ~edges_per_vertex:4 () in
  Printf.printf "graph: %d vertices, %d directed edges\n%!" n g.Core.Workloads.m;

  let parallel_src = Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0 in
  let memmap = Core.Workloads.graph_memmap g in
  let reached, total = Core.Reference.bfs_summary g 0 in
  let expected = Printf.sprintf "%d %d" reached total in

  (* Serial baseline: the same traversal written as ordinary serial C,
     executed by the Master TCU. *)
  let serial_src = Core.Kernels.bfs_serial ~n ~m:g.Core.Workloads.m in

  let run name src config =
    let compiled = Core.Toolchain.compile ~memmap src in
    let r = Core.Toolchain.run_cycle ~config compiled in
    assert (r.Core.Toolchain.output = expected);
    Printf.printf "  %-22s %9d cycles\n%!" name r.Core.Toolchain.cycles;
    r.Core.Toolchain.cycles
  in

  print_endline "running BFS to completion (validated against the host reference):";
  let serial = run "serial (Master TCU)" serial_src Xmtsim.Config.fpga64 in
  let p64 = run "XMT 64 TCUs (fpga64)" parallel_src Xmtsim.Config.fpga64 in
  let p1024 = run "XMT 1024 TCUs (chip1024)" parallel_src Xmtsim.Config.chip1024 in

  Printf.printf "\nspeedup over serial:  64 TCUs %.1fx, 1024 TCUs %.1fx\n"
    (float_of_int serial /. float_of_int p64)
    (float_of_int serial /. float_of_int p1024);
  print_endline
    "(the PRAM program needs no decomposition, locality tuning or explicit\n\
     load balancing: virtual threads are dispatched by the hardware ps unit)"
