(** The XMT memory model in action (paper §IV-A, Figs. 6 and 7).

    Runs the two-thread litmus programs across a sweep of reader delays
    and interconnect arbitration seeds, and tabulates the (rx, ry)
    outcomes:

    - Fig. 6 (no ordering operations): all four outcomes are legal,
      including the counter-intuitive (0, 1) — thread B observes y=1
      before x=1 even though A wrote x first.
    - Fig. 7 (psm + the compiler's fences): (0, >=1) is excluded.
    - Fig. 7 compiled with --no-fences: the violation reappears.

    Run with: dune exec examples/memory_model.exe *)

let threads = 64
let hammer_iters = 400
let delays = [ 0; 80; 160; 250; 400; 900 ]
let seeds = [ 1; 2; 3; 4; 5 ]

let config seed =
  Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
    [ Printf.sprintf "seed=%d" seed; "icn_jitter=4"; "cache_ports=2" ]

let tabulate name ?options src_of =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun delay ->
      List.iter
        (fun seed ->
          let compiled = Core.Toolchain.compile ?options (src_of delay) in
          let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
          let k = r.Core.Toolchain.output in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        seeds)
    delays;
  let sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Printf.printf "%-28s" name;
  List.iter (fun (k, v) -> Printf.printf "  (%s) x%-3d" k v) sorted;
  print_newline ();
  sorted

let () =
  Printf.printf
    "litmus stage: writer on the left ICN subtree stores x then y;\n\
     reader on the right subtree reads y then x after a variable delay;\n\
     background threads pile merge contention onto x's cache module.\n\
     %d runs per row (%d delays x %d seeds); outcome = (rx ry)\n\n"
    (List.length delays * List.length seeds)
    (List.length delays) (List.length seeds);
  let fig6 =
    tabulate "Fig. 6  no synchronization"
      (fun d -> Core.Kernels.fig6_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let fig7 =
    tabulate "Fig. 7  psm + fences"
      (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let nofence =
    tabulate "Fig. 7  fences disabled"
      ~options:
        { Compiler.Driver.default_options with Compiler.Driver.fences = false }
      (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  print_newline ();
  let violated l =
    List.exists
      (fun (k, _) ->
        match String.split_on_char ' ' k with
        | [ rx; ry ] -> int_of_string ry >= 1 && int_of_string rx = 0
        | _ -> false)
      l
  in
  Printf.printf "Fig. 6 shows the relaxed (0 1) outcome:       %b\n" (violated fig6);
  Printf.printf "Fig. 7 with fences upholds 'ry>=1 -> rx=1':   %b\n"
    (not (violated fig7));
  Printf.printf "Fig. 7 without fences violates the invariant: %b\n"
    (violated nofence)
