(** Quickstart: the paper's programmer workflow on the Fig. 2a example.

    Array compaction in XMTC: compile it, look at the XMT assembly the
    compiler produces, run it in the fast functional mode and on the
    cycle-accurate simulator, and read the statistics.

    Run with: dune exec examples/quickstart.exe *)

let source =
  {|
int A[64];
int B[64];
int base = 0;

int main(void) {
  spawn(0, 63) {
    int inc = 1;
    if (A[$] != 0) {
      ps(inc, base);
      B[inc] = A[$];
    }
  }
  print_int(base);
  return 0;
}
|}

let () =
  print_endline "=== XMTC source (paper Fig. 2a: array compaction) ===";
  print_endline source;

  (* Input data arrives through the memory map: globals are the only
     program input (no OS, paper Fig. 3). *)
  let input = Core.Workloads.sparse_array ~seed:42 ~n:64 ~density:40 in
  let memmap = Isa.Memmap.of_ints [ ("A", input) ] in

  (* Compile: pre-pass (outlining) -> core-pass -> post-pass. *)
  let compiled = Core.Toolchain.compile ~memmap source in
  print_endline "=== after the outlining pre-pass (source-to-source) ===";
  print_endline compiled.Core.Toolchain.cc.Compiler.Driver.outlined_source;

  print_endline "=== first lines of the XMT assembly ===";
  let lines =
    String.split_on_char '\n' compiled.Core.Toolchain.cc.Compiler.Driver.asm_text
  in
  List.iteri (fun i l -> if i < 34 then print_endline l) lines;
  Printf.printf "  ... (%d lines total)\n\n" (List.length lines);

  (* Fast functional mode: a quick check of program logic. *)
  let f = Core.Toolchain.run_functional compiled in
  Printf.printf "functional mode: printed %S after %d instructions\n"
    f.Core.Toolchain.output f.Core.Toolchain.instructions;

  (* Cycle-accurate runs on two built-in configurations. *)
  let run name config =
    let r = Core.Toolchain.run_cycle ~config compiled in
    Printf.printf "%-9s: printed %S in %d cycles\n" name r.Core.Toolchain.output
      r.Core.Toolchain.cycles;
    r
  in
  let _ = run "fpga64" Xmtsim.Config.fpga64 in
  let r = run "chip1024" Xmtsim.Config.chip1024 in

  let expected = Core.Reference.count_nonzero input in
  Printf.printf "host reference:    %d nonzeros\n\n" expected;
  assert (r.Core.Toolchain.output = string_of_int expected);

  print_endline "=== cycle-accurate statistics (chip1024) ===";
  print_string (Xmtsim.Stats.to_string r.Core.Toolchain.stats)
