(** Dynamic power and thermal management through the activity plug-in
    interface (paper §III-B, §III-F).

    Runs a compute-heavy kernel on the 64-TCU configuration while an
    activity plug-in samples the power model, integrates the lumped-RC
    thermal model (the HotSpot substitute), and throttles the cluster
    clock domain when the hottest component crosses a trip temperature —
    "XMTSim is the only publicly available many-core simulator that allows
    evaluation of mechanisms, such as dynamic power and thermal
    management."  Finishes with the ASCII floorplan of §III-E.

    Run with: dune exec examples/thermal_dvfs.exe *)

let trip_kelvin = 326.0
let sample_every = 2000

let run ~throttle =
  let src = Core.Kernels.par_comp ~threads:1024 ~iters:600 in
  let compiled = Core.Toolchain.compile src in
  let config = Xmtsim.Config.chip1024 in
  let m = Core.Toolchain.machine ~config compiled in
  let power =
    Xmtsim.Power.create
      ~params:
        { Xmtsim.Power.default with
          Xmtsim.Power.e_alu = 0.5;
          leak_cluster = 1.0 }
      m
  in
  let grid_w = 8 in
  let thermal =
    Xmtsim.Thermal.create ~params:Xmtsim.Thermal.demo ~grid_w
      (Xmtsim.Power.component_names power)
  in
  let throttled = ref false in
  let log = ref [] in
  Xmtsim.Machine.add_activity_plugin m ~name:"thermal-manager"
    ~interval:sample_every (fun m cycle ->
      let watts = Xmtsim.Power.sample power in
      Xmtsim.Thermal.step thermal
        ~dt:(float_of_int sample_every /. 1e9)
        watts;
      let tmax = Xmtsim.Thermal.max_temperature thermal in
      log := (cycle, Xmtsim.Power.total power, tmax, !throttled) :: !log;
      if throttle then
        if tmax > trip_kelvin && not !throttled then begin
          throttled := true;
          Xmtsim.Machine.set_period m Xmtsim.Machine.Clusters 2
        end
        else if tmax < trip_kelvin -. 2.0 && !throttled then begin
          throttled := false;
          Xmtsim.Machine.set_period m Xmtsim.Machine.Clusters 1
        end);
  let r = Xmtsim.Machine.run m in
  (r, List.rev !log, thermal)

let () =
  Printf.printf "compute-intensive kernel on chip1024; trip point %.0f K\n\n"
    trip_kelvin;
  print_endline "--- run 1: no thermal management ---";
  let r1, log1, _ = run ~throttle:false in
  List.iteri
    (fun i (cycle, w, t, _) ->
      if i mod 4 = 0 then
        Printf.printf "  cycle %8d  power %6.1f W  Tmax %6.2f K\n" cycle w t)
    log1;
  let peak1 =
    List.fold_left (fun acc (_, _, t, _) -> max acc t) neg_infinity log1
  in
  Printf.printf "  finished in %d cycles, peak temperature %.2f K\n\n"
    r1.Xmtsim.Machine.cycles peak1;

  print_endline "--- run 2: DVFS thermal manager (activity plug-in) ---";
  let r2, log2, thermal = run ~throttle:true in
  List.iteri
    (fun i (cycle, w, t, thr) ->
      if i mod 4 = 0 then
        Printf.printf "  cycle %8d  power %6.1f W  Tmax %6.2f K%s\n" cycle w t
          (if thr then "  [throttled]" else ""))
    log2;
  let peak2 =
    List.fold_left (fun acc (_, _, t, _) -> max acc t) neg_infinity log2
  in
  Printf.printf "  finished in %d cycles, peak temperature %.2f K\n\n"
    r2.Xmtsim.Machine.cycles peak2;

  Printf.printf
    "the manager trades %d extra cycles for a %.2f K lower peak temperature\n\n"
    (r2.Xmtsim.Machine.cycles - r1.Xmtsim.Machine.cycles)
    (peak1 -. peak2);

  let temps = Xmtsim.Thermal.temperatures thermal in
  print_string
    (Xmtsim.Floorplan.render ~title:"final cluster temperatures (K)" ~grid_w:8
       (Array.sub temps 0 64))
