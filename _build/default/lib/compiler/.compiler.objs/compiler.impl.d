lib/compiler/compiler.ml: Cfg Cluster Codegen Driver Ir Layout Lower Memfence Opt Outline Postpass Prefetch Regalloc
