lib/compiler/cfg.ml: Array Hashtbl Int Ir List Option Set
