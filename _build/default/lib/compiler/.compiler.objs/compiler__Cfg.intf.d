lib/compiler/cfg.mli: Ir Set
