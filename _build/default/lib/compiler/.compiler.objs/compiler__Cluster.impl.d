lib/compiler/cluster.ml: List Option Outline Tast Types Xmtc
