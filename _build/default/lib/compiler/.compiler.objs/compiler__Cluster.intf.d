lib/compiler/cluster.mli: Xmtc
