lib/compiler/codegen.ml: Ir Isa Layout List Regalloc
