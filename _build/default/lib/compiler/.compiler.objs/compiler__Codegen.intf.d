lib/compiler/codegen.mli: Ir Isa Regalloc
