lib/compiler/driver.ml: Array Cluster Codegen Hashtbl Ir Isa List Lower Memfence Opt Outline Postpass Prefetch Printf Regalloc Xmtc
