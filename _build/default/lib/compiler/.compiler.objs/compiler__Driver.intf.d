lib/compiler/driver.mli: Isa
