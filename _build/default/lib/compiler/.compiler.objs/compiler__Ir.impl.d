lib/compiler/ir.ml: Isa List Printf String
