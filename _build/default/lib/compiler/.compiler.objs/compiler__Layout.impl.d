lib/compiler/layout.ml: Array Hashtbl Isa List Option Printf
