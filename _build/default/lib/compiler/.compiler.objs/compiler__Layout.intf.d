lib/compiler/layout.mli: Isa
