lib/compiler/lower.ml: Hashtbl Ir Isa List Printf Tast Types Xmtc
