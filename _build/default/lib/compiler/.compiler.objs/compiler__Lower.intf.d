lib/compiler/lower.mli: Ir Xmtc
