lib/compiler/memfence.ml: Ir List
