lib/compiler/memfence.mli: Ir
