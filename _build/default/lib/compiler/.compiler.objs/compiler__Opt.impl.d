lib/compiler/opt.ml: Array Bool Cfg Int Ir Isa List Map Option
