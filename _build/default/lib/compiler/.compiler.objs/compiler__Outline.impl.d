lib/compiler/outline.ml: List Option Printf Set Tast Types Xmtc
