lib/compiler/outline.mli: Xmtc
