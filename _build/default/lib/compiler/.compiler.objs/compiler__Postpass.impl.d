lib/compiler/postpass.ml: Array Hashtbl Isa List Printf
