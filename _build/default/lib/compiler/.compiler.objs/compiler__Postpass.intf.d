lib/compiler/postpass.mli: Isa
