lib/compiler/prefetch.ml: Array Hashtbl Ir List
