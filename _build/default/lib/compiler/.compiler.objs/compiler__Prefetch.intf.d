lib/compiler/prefetch.mli: Ir
