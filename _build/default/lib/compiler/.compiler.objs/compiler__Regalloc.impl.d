lib/compiler/regalloc.ml: Array Cfg Hashtbl Ir List Printf
