lib/compiler/regalloc.mli: Ir
