type block = {
  b_idx : int;
  b_label : string option;
  mutable b_instrs : Ir.instr list;
  mutable b_succs : int list;
  mutable b_preds : int list;
}

type t = { blocks : block array; func : Ir.func }

(* Split the linear body into (label option, instrs) chunks. *)
let split_blocks body =
  let chunks = ref [] in
  let cur_label = ref None in
  let cur = ref [] in
  let flush () =
    if !cur <> [] || !cur_label <> None then begin
      chunks := (!cur_label, List.rev !cur) :: !chunks;
      cur_label := None;
      cur := []
    end
  in
  List.iter
    (fun i ->
      match i with
      | Ir.Ilabel l ->
        flush ();
        cur_label := Some l
      | Ir.Ijmp _ | Ir.Iret _ ->
        cur := i :: !cur;
        flush ()
      | Ir.Icjump _ ->
        cur := i :: !cur;
        flush ()
      | _ -> cur := i :: !cur)
    body;
  flush ();
  List.rev !chunks

let build (func : Ir.func) : t =
  let chunks = split_blocks func.body in
  let blocks =
    Array.of_list
      (List.mapi
         (fun i (lbl, instrs) ->
           { b_idx = i; b_label = lbl; b_instrs = instrs; b_succs = []; b_preds = [] })
         chunks)
  in
  let label_idx = Hashtbl.create 16 in
  Array.iter
    (fun b -> match b.b_label with Some l -> Hashtbl.replace label_idx l b.b_idx | None -> ())
    blocks;
  let n = Array.length blocks in
  let target l =
    match Hashtbl.find_opt label_idx l with
    | Some i -> Some i
    | None -> None (* label of another function: treated as exit *)
  in
  Array.iteri
    (fun i b ->
      let last = match List.rev b.b_instrs with x :: _ -> Some x | [] -> None in
      let succs =
        match last with
        | Some (Ir.Ijmp l) -> Option.to_list (target l)
        | Some (Ir.Iret _) -> []
        | Some (Ir.Icjump (_, _, _, l)) ->
          let fall = if i + 1 < n then [ i + 1 ] else [] in
          Option.to_list (target l) @ fall
        | _ -> if i + 1 < n then [ i + 1 ] else []
      in
      b.b_succs <- succs)
    blocks;
  Array.iter (fun b -> List.iter (fun s -> blocks.(s).b_preds <- b.b_idx :: blocks.(s).b_preds) b.b_succs) blocks;
  { blocks; func }

let flatten (t : t) : Ir.instr list =
  Array.to_list t.blocks
  |> List.concat_map (fun b ->
         let lbl = match b.b_label with Some l -> [ Ir.Ilabel l ] | None -> [] in
         lbl @ b.b_instrs)

module VSet = Set.Make (Int)

type liveness = {
  live_in : VSet.t array;
  live_out : VSet.t array;
  flive_in : VSet.t array;
  flive_out : VSet.t array;
}

(* forward scan: use = used before defined; def = defined *)
let use_def instrs =
  let use = ref VSet.empty and def = ref VSet.empty in
  let fuse = ref VSet.empty and fdef = ref VSet.empty in
  List.iter
    (fun i ->
      let ds, us, fds, fus = Ir.defs_uses i in
      List.iter (fun u -> if not (VSet.mem u !def) then use := VSet.add u !use) us;
      List.iter (fun d -> def := VSet.add d !def) ds;
      List.iter (fun u -> if not (VSet.mem u !fdef) then fuse := VSet.add u !fuse) fus;
      List.iter (fun d -> fdef := VSet.add d !fdef) fds)
    instrs;
  (!use, !def, !fuse, !fdef)

let liveness (t : t) : liveness =
  let n = Array.length t.blocks in
  let use = Array.make n VSet.empty and def = Array.make n VSet.empty in
  let fuse = Array.make n VSet.empty and fdef = Array.make n VSet.empty in
  Array.iteri
    (fun i b ->
      let u, d, fu, fd = use_def b.b_instrs in
      use.(i) <- u;
      def.(i) <- d;
      fuse.(i) <- fu;
      fdef.(i) <- fd)
    t.blocks;
  let live_in = Array.make n VSet.empty and live_out = Array.make n VSet.empty in
  let flive_in = Array.make n VSet.empty and flive_out = Array.make n VSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = t.blocks.(i) in
      let out =
        List.fold_left (fun s j -> VSet.union s live_in.(j)) VSet.empty b.b_succs
      in
      let fout =
        List.fold_left (fun s j -> VSet.union s flive_in.(j)) VSet.empty b.b_succs
      in
      let inn = VSet.union use.(i) (VSet.diff out def.(i)) in
      let finn = VSet.union fuse.(i) (VSet.diff fout fdef.(i)) in
      if not (VSet.equal inn live_in.(i)) || not (VSet.equal out live_out.(i))
         || not (VSet.equal finn flive_in.(i))
         || not (VSet.equal fout flive_out.(i))
      then begin
        live_in.(i) <- inn;
        live_out.(i) <- out;
        flive_in.(i) <- finn;
        flive_out.(i) <- fout;
        changed := true
      end
    done
  done;
  { live_in; live_out; flive_in; flive_out }

let instr_liveness (t : t) =
  let lv = liveness t in
  let per_block =
    Array.mapi
      (fun bi b ->
        let lbl = match b.b_label with Some l -> [ Ir.Ilabel l ] | None -> [] in
        let instrs = lbl @ b.b_instrs in
        let rev = List.rev instrs in
        let live = ref lv.live_out.(bi) and flive = ref lv.flive_out.(bi) in
        let triples =
          List.map
            (fun i ->
              let out = !live and fout = !flive in
              let ds, us, fds, fus = Ir.defs_uses i in
              live :=
                VSet.union
                  (List.fold_left (fun s d -> VSet.remove d s) !live ds)
                  (VSet.of_list us);
              flive :=
                VSet.union
                  (List.fold_left (fun s d -> VSet.remove d s) !flive fds)
                  (VSet.of_list fus);
              (i, out, fout))
            rev
        in
        List.rev triples)
      t.blocks
  in
  let all = Array.to_list per_block |> List.concat in
  let instrs = Array.of_list (List.map (fun (i, _, _) -> i) all) in
  let outs = Array.of_list (List.map (fun (_, o, _) -> o) all) in
  let fouts = Array.of_list (List.map (fun (_, _, o) -> o) all) in
  (instrs, outs, fouts)
