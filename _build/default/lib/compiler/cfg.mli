(** Control-flow graph over the linear IR, with liveness analysis.

    Used by the serial optimizer (DCE), the register allocator (live
    intervals, call-crossing and parallel-region constraints) and the
    prefetch pass. *)

type block = {
  b_idx : int;
  b_label : string option;  (** label that starts the block, if any *)
  mutable b_instrs : Ir.instr list;  (** without the leading label *)
  mutable b_succs : int list;
  mutable b_preds : int list;
}

type t = {
  blocks : block array;
  func : Ir.func;
}

val build : Ir.func -> t

(** Rebuild the function's linear body from the (possibly edited) blocks. *)
val flatten : t -> Ir.instr list

module VSet : Set.S with type elt = int

type liveness = {
  live_in : VSet.t array;  (** per block, int vregs *)
  live_out : VSet.t array;
  flive_in : VSet.t array;  (** per block, float vregs *)
  flive_out : VSet.t array;
}

val liveness : t -> liveness

(** Per-instruction live-out sets in linear order, for interval building:
    returns the linear instruction list and arrays of int/float live-out
    sets, one per instruction. *)
val instr_liveness : t -> Ir.instr array * VSet.t array * VSet.t array
