(** Virtual-thread clustering (coarsening), paper §IV-C.

    XMTC programmers are encouraged to expose the finest-grained
    parallelism; when threads are extremely short the per-thread scheduling
    overhead (one [ps] + [chkid] round per virtual thread) dominates.
    Clustering groups [c] consecutive virtual threads into one longer
    virtual thread that iterates over its group in a loop, reducing
    scheduling overhead by [c] and enabling loop prefetching and value
    reuse across the grouped iterations.

    The rewrite (source-to-source on the typed AST, applied before
    outlining):
    {v
    spawn(lo, hi) B($)
    ==>
    { int __lo = lo; int __n = hi - __lo + 1;
      spawn(0, (__n + c-1)/c - 1) {
        int __i;
        int __base = __lo + $ * c;
        for (__i = 0; __i < c; __i++) {
          int __id = __base + __i;
          if (__id <= __lo + __n - 1)  B(__id)
        }
      }
    }
    v} *)

(** [run ~factor p] clusters every outermost spawn by [factor].  A factor
    of 1 (or less) is the identity. *)
val run : factor:int -> Xmtc.Tast.program -> Xmtc.Tast.program
