(** Instruction selection: allocated IR to XMT assembly.

    Expands comparison pseudo-ops via [slt]/[sltu]/[xori], selects
    immediate instruction forms, materializes out-of-form immediates
    through the reserved $at/$gp scratch registers, and emits the
    prologue/epilogue and calling-convention moves.  Emits the [__start]
    stub that initializes the stack pointer and the global PS registers
    before calling [main] (there is no OS, §III-A). *)

(** Top of the Master TCU stack (byte address). *)
val stack_top : int

exception Error of string

(** Generate one function.  The register allocator must have run: register
    fields are machine registers. *)
val gen_func : Ir.func -> Regalloc.result -> Isa.Program.item list

(** Generate the whole program, including [__start] and the data section.
    [layout_opt] applies {!Layout.run} per function. *)
val gen_program : ?layout_opt:bool -> Ir.program -> (Ir.func * Regalloc.result) list -> Isa.Program.t
