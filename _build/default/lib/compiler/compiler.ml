(** The XMTC optimizing compiler (paper §IV).

    Pre-pass: {!Cluster} (thread coarsening) and {!Outline} (spawn-block
    extraction, Fig. 8) — source-to-source on the typed AST, like the
    paper's CIL pre-pass.  Core-pass: {!Lower}, the serial optimizer
    {!Opt}, the XMT passes {!Memfence} (non-blocking stores + fences,
    §IV-A) and {!Prefetch} (§IV-C), {!Regalloc} (spill error in parallel
    code, §IV-D), {!Codegen} with {!Layout} block reordering.  Post-pass:
    {!Postpass} (Fig. 9 repair + verification) over re-parsed assembly,
    like the paper's SableCC post-pass.  {!Driver} orchestrates. *)

module Ir = Ir
module Outline = Outline
module Cluster = Cluster
module Lower = Lower
module Cfg = Cfg
module Opt = Opt
module Memfence = Memfence
module Prefetch = Prefetch
module Regalloc = Regalloc
module Layout = Layout
module Codegen = Codegen
module Postpass = Postpass
module Driver = Driver
