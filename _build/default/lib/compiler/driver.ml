type options = {
  opt_level : int;
  prefetch : bool;
  prefetch_max_per_block : int;
  nbstore : bool;
  fences : bool;
  cluster : int;
  layout_opt : bool;
  postpass_fix : bool;
  outline : bool;
}

let default_options =
  {
    opt_level = 2;
    prefetch = true;
    prefetch_max_per_block = 8;
    nbstore = true;
    fences = true;
    cluster = 1;
    layout_opt = true;
    postpass_fix = true;
    outline = true;
  }

type output = {
  program : Isa.Program.t;
  asm_text : string;
  relocated_blocks : int;
  outlined_source : string;
}

exception Compile_error of string

let wrap f =
  try f () with
  | Xmtc.Lexer.Lex_error { line; msg } ->
    raise (Compile_error (Printf.sprintf "lex error at line %d: %s" line msg))
  | Xmtc.Parser.Parse_error { line; msg } ->
    raise (Compile_error (Printf.sprintf "parse error at line %d: %s" line msg))
  | Xmtc.Typecheck.Error { line; msg } ->
    raise (Compile_error (Printf.sprintf "type error at line %d: %s" line msg))
  | Lower.Error msg -> raise (Compile_error ("lowering: " ^ msg))
  | Regalloc.Spill_error msg -> raise (Compile_error msg)
  | Codegen.Error msg -> raise (Compile_error ("codegen: " ^ msg))
  | Postpass.Verify_error msg -> raise (Compile_error ("post-pass: " ^ msg))

let compile ?(options = default_options) src : output =
  wrap (fun () ->
      (* front end *)
      let tprog = Xmtc.Typecheck.program_of_source src in
      (* pre-pass: source-to-source *)
      let tprog = Cluster.run ~factor:options.cluster tprog in
      let tprog = if options.outline then Outline.run tprog else tprog in
      let outlined_source = Xmtc.Pretty.program_to_string tprog in
      (* core-pass *)
      let ir = Lower.run tprog in
      List.iter
        (fun fn ->
          Opt.run ~level:options.opt_level fn;
          Memfence.run ~nbstore:options.nbstore ~fences:options.fences fn;
          if options.prefetch then
            Prefetch.run ~max_per_block:options.prefetch_max_per_block fn)
        ir.Ir.funcs;
      let allocs = List.map (fun fn -> (fn, Regalloc.run fn)) ir.Ir.funcs in
      let program = Codegen.gen_program ~layout_opt:options.layout_opt ir allocs in
      (* post-pass: re-read the emitted assembly, repair and verify *)
      let asm_text0 = Isa.Asm.print program in
      let reread = Isa.Asm.parse asm_text0 in
      let program, relocated_blocks =
        if options.postpass_fix then Postpass.run reread else (reread, 0)
      in
      if options.postpass_fix then Postpass.verify program;
      let asm_text = Isa.Asm.print program in
      { program; asm_text; relocated_blocks; outlined_source })

(* Place the heap pointer after all data and resolve. *)
let compile_to_image ?options ?(memmap = []) src =
  let out = compile ?options src in
  let image = Isa.Program.resolve ~extra_data:memmap out.program in
  (* initialize __heap_ptr to the first byte after the data segment *)
  (match Hashtbl.find_opt image.Isa.Program.data_addr "__heap_ptr" with
  | Some addr ->
    let word = (addr - image.Isa.Program.data_base) / 4 in
    let heap_start =
      image.Isa.Program.data_base + (4 * Array.length image.Isa.Program.data_words)
    in
    image.Isa.Program.data_words.(word) <- Isa.Value.int heap_start
  | None -> ());
  (out, image)
