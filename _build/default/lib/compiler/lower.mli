(** Lowering from the typed AST to the three-address IR.

    Spawn statements lower to the hardware dispatch protocol of §IV-D: a
    [spawn] instruction, then a dispatch loop in which each TCU obtains the
    next virtual-thread ID with a [ps] on the reserved [$g8] counter and
    validates it with [chkid], the thread body, a jump back to the
    dispatch point, and the [join].  Nested spawns are serialized into a
    plain loop (§IV-E).  [ps]-base globals are assigned to global PS
    registers; other globals live in the data segment. *)

exception Error of string

(** Lower a whole program.  [Outline.run] should normally have been applied
    first; un-outlined spawns are still lowered correctly (they simply
    leave the serial optimizer exposed to illegal dataflow, which is the
    hazard the paper's Fig. 8 describes). *)
val run : Xmtc.Tast.program -> Ir.program
