let run ~nbstore ~fences (fn : Ir.func) =
  let in_par = ref false in
  let out = ref [] in
  let emit i = out := i :: !out in
  List.iter
    (fun i ->
      match i with
      | Ir.Ispawn _ ->
        in_par := true;
        emit i
      | Ir.Ijoin ->
        in_par := false;
        emit i
      | Ir.Ist (Ir.St_blocking, s, b, off) when nbstore && !in_par ->
        emit (Ir.Ist (Ir.St_nb, s, b, off))
      | Ir.Ips _ | Ir.Ipsm _ ->
        if fences && !in_par then emit Ir.Ifence;
        emit i
      | other -> emit other)
    fn.Ir.body;
  fn.Ir.body <- List.rev !out
