(** XMT memory-model passes (§IV-A, §IV-C).

    {b Non-blocking stores}: inside a parallel (spawn..join) region every
    blocking store is replaced by [sw.nb], the latency-hiding store that
    does not wait for an acknowledgement.  This is legal under the XMT
    memory model: per-thread same-address ordering is preserved by the
    hardware's static routing, and cross-thread ordering is only promised
    around prefix-sums — which is exactly what the fence pass enforces.

    {b Fences}: a [fence] is inserted before every [ps]/[psm] so that all
    pending stores of the issuing TCU complete before the prefix-sum
    executes (memory-model rule 2, Fig. 7).  The optimizer never moves
    memory operations across prefix-sums (they are side-effecting barriers
    to it), fulfilling the compiler half of the rule.

    Disabling fences while keeping non-blocking stores reproduces the
    memory-model violation of Fig. 7 (the [(x,y) = (0,1)] outcome). *)

val run : nbstore:bool -> fences:bool -> Ir.func -> unit
