(** The serial optimizer — the "GCC role" of the core-pass (§IV).

    Deliberately unaware of parallelism: it treats spawn/join as opaque
    side-effecting instructions and never reorders memory operations, so it
    respects the XMT memory-model rule that memory operations do not move
    across prefix-sums (§IV-A) by construction.  Passes:

    - local constant folding + algebraic simplification,
    - local copy propagation,
    - local common-subexpression elimination on pure integer ops
      (notably repeated address computations from array indexing),
    - global dead-code elimination via CFG liveness,
    - branch simplification for constant conditions. *)

(** [run fn] optimizes in place (replaces [fn.body]).  [level] 0 disables
    everything, 1 enables folding/copy-prop/DCE, 2 adds local CSE. *)
val run : level:int -> Ir.func -> unit
