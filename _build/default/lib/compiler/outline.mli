(** The pre-pass: outlining of spawn blocks (paper §IV-B, Fig. 8).

    A serial middle end would perform illegal dataflow across spawn-block
    boundaries (e.g. moving [if (found) counter += 1] inside the block).
    Outlining extracts each outermost spawn statement into a fresh function
    [__outl_sp_k] and replaces it by a call, so the serial optimizer — which
    performs no inter-procedural code motion — cannot mix serial and
    parallel code.  Variables of the enclosing scope that the spawn block
    reads are passed by value; variables it may write (or whose address it
    takes) are passed by reference, exactly as in Fig. 8c.

    This is a source-to-source transformation on the typed AST; print the
    result with {!Xmtc.Pretty} to see the XMTC-to-XMTC rewrite. *)

val outlined_prefix : string

(** First vid not used by any variable of the program; passes that create
    fresh variables start numbering here. *)
val max_vid : Xmtc.Tast.program -> int

(** [run p] outlines every outermost spawn in place and appends the new
    functions to [p].  Spawns nested inside another spawn are left in the
    body (they are serialized during lowering, §IV-E). *)
val run : Xmtc.Tast.program -> Xmtc.Tast.program
