(** The post-pass (paper §IV, Fig. 9): verifies that the emitted assembly
    complies with XMT semantics and repairs basic-block layout.

    XMT broadcasts the code between [spawn] and [join] to the TCUs; a TCU
    cannot fetch instructions outside that segment.  The core-pass's layout
    optimizer may have sunk a spawn-block basic block below the function's
    return (Fig. 9a).  This pass re-reads the assembly, finds branches
    inside each spawn-join region whose targets lie outside, relocates the
    target blocks back in front of the [join], and inserts a jump to the
    join when the preceding code would now incorrectly fall into the
    relocated block (Fig. 9b).

    It then verifies:
    - every spawn has a matching join and regions do not nest,
    - no [jal]/[jr] inside a region (no function calls on TCUs),
    - after repair, every branch target inside a region resolves inside it.

    Like the paper's SableCC post-pass, it operates on the assembly text
    representation, not on the compiler's internal IR. *)

exception Verify_error of string

(** Repair misplaced blocks (Fig. 9b).  Returns the number of relocated
    blocks along with the fixed program. *)
val fix_layout : Isa.Program.t -> Isa.Program.t * int

(** Verify XMT semantics; raises {!Verify_error}. *)
val verify : Isa.Program.t -> unit

(** [run p] = fix, then verify. *)
val run : Isa.Program.t -> Isa.Program.t * int
