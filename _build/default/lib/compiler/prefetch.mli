(** Compiler prefetching into the TCU prefetch buffers (§IV-C, ref [8]).

    The XMT shared L1 is ~tens of cycles away; TCUs block on loads.  The
    pass hoists a [pref off(base)] as early as possible within the basic
    block for each shared-memory load, so the round trip overlaps the
    intervening computation instead of stalling the TCU at the [lw].

    Mechanics: within each basic block of a parallel region, a load's
    prefetch is inserted immediately after the instruction that defines its
    base register (or at block entry when the base is live-in), provided at
    least [min_gap] instructions separate that point from the load.  The
    number of prefetches outstanding per block is capped by
    [max_per_block], modelling a small prefetch buffer (the resource-aware
    aspect of [8]).  Frame-pointer loads (serial stack traffic) are never
    prefetched. *)

val run : ?min_gap:int -> ?max_per_block:int -> Ir.func -> unit
