(** Linear-scan register allocation.

    Serial code may spill to the Master TCU's stack; code inside a parallel
    region may not — virtual threads can only use registers or global
    memory for intermediate results, so the allocator "checks if the
    available registers suffice and produces a register spill error
    otherwise" (paper §IV-D).

    Values live across a call are placed in callee-saved registers ($s*,
    $f20-$f31) or spilled; argument/return registers are never allocated,
    so calling-convention moves in the prologue and at call sites cannot
    clash with allocated values. *)

exception Spill_error of string
(** raised when a value inside a spawn block cannot be kept in registers *)

type loc = Lreg of int | Lspill of int  (** machine register | frame slot *)

type result = {
  spill_words : int;  (** frame words used for spills (after locals) *)
  used_callee_int : int list;  (** callee-saved integer registers written *)
  used_callee_flt : int list;
  param_locs_int : loc option list;  (** location of each integer parameter *)
  param_locs_flt : loc option list;  (** location of each float parameter *)
}

(** Allocate and rewrite [fn.body] in place: virtual register numbers are
    replaced by machine register numbers, and spill loads/stores through
    the $k0/$k1 ($f16-$f18) scratch registers are inserted. *)
val run : Ir.func -> result
