lib/core/core.ml: Kernels Reference Toolchain Workloads
