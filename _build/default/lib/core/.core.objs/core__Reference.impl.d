lib/core/reference.ml: Array Queue Workloads
