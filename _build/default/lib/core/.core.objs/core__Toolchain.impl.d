lib/core/toolchain.ml: Array Compiler Isa Xmtsim
