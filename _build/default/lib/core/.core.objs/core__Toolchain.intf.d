lib/core/toolchain.mli: Compiler Isa Xmtsim
