lib/core/workloads.ml: Array Desim Isa List
