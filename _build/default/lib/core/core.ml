(** The toolchain facade: the paper's programmer workflow (XMTC source ->
    compiler -> simulator) in one library, plus the kernels, workload
    generators and host references used by the examples, tests and the
    evaluation harness. *)

module Toolchain = Toolchain
module Kernels = Kernels
module Workloads = Workloads
module Reference = Reference
