(** Host-side (OCaml) reference implementations used to validate the
    XMTC kernels' results in tests and benchmarks. *)

let count_nonzero a = Array.fold_left (fun acc x -> if x <> 0 then acc + 1 else acc) 0 a
let sum a = Array.fold_left ( + ) 0 a

(** BFS distances from [src] over a CSR graph; -1 = unreached. *)
let bfs_dist (g : Workloads.graph) src =
  let dist = Array.make g.Workloads.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    for i = g.Workloads.row.(u) to g.Workloads.row.(u + 1) - 1 do
      let v = g.Workloads.col.(i) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    done
  done;
  dist

(** (reached, sum of distances) as the BFS kernel prints them. *)
let bfs_summary g src =
  let dist = bfs_dist g src in
  let reached = Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 dist in
  let total = Array.fold_left (fun a d -> if d > 0 then a + d else a) 0 dist in
  (reached, total)

(** Number of connected components (the kernel prints the number of
    label-propagation roots, which equals the component count). *)
let components (g : Workloads.graph) =
  let parent = Array.init g.Workloads.n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  Array.iter
    (fun (u, v) ->
      let ru = find u and rv = find v in
      if ru <> rv then parent.(max ru rv) <- min ru rv)
    g.Workloads.edges;
  let roots = ref 0 in
  Array.iteri (fun i _ -> if find i = i then incr roots) parent;
  !roots

let matmul a b n =
  let c = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let spmv row col nzv x n =
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = row.(i) to row.(i + 1) - 1 do
        acc := !acc +. (nzv.(k) *. x.(col.(k)))
      done;
      !acc)

(** Iterative radix-2 FFT (decimation in time) over (re, im) pairs;
    the host reference for the {!Kernels.fft} kernels. *)
let fft re im =
  let n = Array.length re in
  let re = Array.copy re and im = Array.copy im in
  (* bit reversal *)
  let logn =
    let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
    go n 0
  in
  let bitrev v =
    let r = ref 0 and v = ref v in
    for _ = 1 to logn do
      r := (!r lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    !r
  in
  let re' = Array.make n 0.0 and im' = Array.make n 0.0 in
  for i = 0 to n - 1 do
    re'.(bitrev i) <- re.(i);
    im'.(bitrev i) <- im.(i)
  done;
  Array.blit re' 0 re 0 n;
  Array.blit im' 0 im 0 n;
  let pi = 4.0 *. atan 1.0 in
  let s = ref 1 in
  while !s <= logn do
    let m = 1 lsl !s in
    let half = m / 2 in
    for k = 0 to (n / 2) - 1 do
      let group = k / half in
      let pos = k mod half in
      let i = (group * m) + pos in
      let j = i + half in
      let angle = -2.0 *. pi *. float_of_int (pos * (n / m)) /. float_of_int n in
      let wre = cos angle and wim = sin angle in
      let xre = (wre *. re.(j)) -. (wim *. im.(j)) in
      let xim = (wre *. im.(j)) +. (wim *. re.(j)) in
      re.(j) <- re.(i) -. xre;
      im.(j) <- im.(i) -. xim;
      re.(i) <- re.(i) +. xre;
      im.(i) <- im.(i) +. xim
    done;
    incr s
  done;
  (re, im)

(** Twiddle factors for {!Kernels.fft}: w\[k\] = e^(-2 pi i k / n). *)
let fft_twiddles n =
  let pi = 4.0 *. atan 1.0 in
  let wr = Array.init (n / 2) (fun k -> cos (-2.0 *. pi *. float_of_int k /. float_of_int n)) in
  let wi = Array.init (n / 2) (fun k -> sin (-2.0 *. pi *. float_of_int k /. float_of_int n)) in
  (wr, wi)
