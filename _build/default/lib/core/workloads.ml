(** Workload generators for the examples, tests and benchmarks: seeded
    random arrays and graphs (CSR and edge-list forms) packaged as
    memory-map inputs. *)

let rng seed = Desim.Rng.create ~seed

(** Random int array with values in [\[0, bound)]. *)
let random_array ~seed ~n ~bound =
  let r = rng seed in
  Array.init n (fun _ -> Desim.Rng.int r bound)

(** Array with roughly [density] (0..100) percent non-zero entries. *)
let sparse_array ~seed ~n ~density =
  let r = rng seed in
  Array.init n (fun _ ->
      if Desim.Rng.int r 100 < density then 1 + Desim.Rng.int r 99 else 0)

let random_float_array ~seed ~n =
  let r = rng seed in
  Array.init n (fun _ -> Desim.Rng.float r *. 2.0 -. 1.0)

type graph = {
  n : int;
  m : int;  (** directed edge count *)
  row : int array;  (** CSR offsets, length n+1 *)
  col : int array;  (** CSR targets, length m *)
  edges : (int * int) array;  (** the undirected edge list (m/2 pairs) *)
}

(** Random undirected graph: [n] vertices, [edges_per_vertex * n] edges
    (each stored in both directions in the CSR), plus a Hamiltonian-ish
    chain over the first [chain] vertices so BFS has depth.  No self
    loops; parallel edges possible (harmless for BFS/CC). *)
let random_graph ?(chain = 0) ~seed ~n ~edges_per_vertex () =
  let r = rng seed in
  let base_edges =
    Array.init (n * edges_per_vertex) (fun _ ->
        let u = Desim.Rng.int r n in
        let v = (u + 1 + Desim.Rng.int r (max 1 (n - 1))) mod n in
        (u, v))
  in
  let chain_edges =
    Array.init (max 0 (min chain n - 1)) (fun i -> (i, i + 1))
  in
  let edges = Array.append chain_edges base_edges in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let m = row.(n) in
  let col = Array.make (max 1 m) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun (u, v) ->
      col.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      col.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  { n; m; row; col; edges }

(** A graph of [k] disconnected rings of [len] vertices (for CC tests). *)
let rings ~k ~len =
  let n = k * len in
  let edges =
    Array.concat
      (List.init k (fun c ->
           Array.init len (fun i ->
               let u = (c * len) + i in
               let v = (c * len) + ((i + 1) mod len) in
               (u, v))))
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let m = row.(n) in
  let col = Array.make (max 1 m) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun (u, v) ->
      col.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      col.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  { n; m; row; col; edges }

(** Memory-map bindings for a CSR graph under the names the {!Kernels}
    BFS template uses. *)
let graph_memmap g =
  Isa.Memmap.of_ints [ ("row", g.row); ("col", g.col) ]

(** Memory-map bindings for the edge-list connectivity kernel. *)
let edgelist_memmap g =
  let srcs = Array.map fst g.edges and dsts = Array.map snd g.edges in
  Isa.Memmap.of_ints [ ("esrc", srcs); ("edst", dsts) ]

(** Random sparse matrix in CSR with [nnz_per_row] entries per row. *)
let random_csr_matrix ~seed ~n ~nnz_per_row =
  let r = rng seed in
  let row = Array.init (n + 1) (fun i -> i * nnz_per_row) in
  let nnz = n * nnz_per_row in
  let col = Array.init nnz (fun _ -> Desim.Rng.int r n) in
  let nzv = Array.init nnz (fun _ -> Desim.Rng.float r) in
  (row, col, nzv)
