lib/desim/desim.ml: Actor Checkpoint Clock Event_heap Port Rng Scheduler
