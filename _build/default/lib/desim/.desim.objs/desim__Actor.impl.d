lib/desim/actor.ml: Scheduler
