lib/desim/actor.mli: Scheduler
