lib/desim/checkpoint.ml: Fun List Marshal Printf
