lib/desim/checkpoint.mli:
