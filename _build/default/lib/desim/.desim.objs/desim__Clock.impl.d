lib/desim/clock.ml: List Scheduler
