lib/desim/clock.mli: Scheduler
