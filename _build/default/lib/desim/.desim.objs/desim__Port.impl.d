lib/desim/port.ml: List Printf Queue
