lib/desim/port.mli:
