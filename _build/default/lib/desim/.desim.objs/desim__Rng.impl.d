lib/desim/rng.ml: Int64
