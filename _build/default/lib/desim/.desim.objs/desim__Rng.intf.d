lib/desim/rng.mli:
