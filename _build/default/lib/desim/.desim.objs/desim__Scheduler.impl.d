lib/desim/scheduler.ml: Event_heap Printf
