lib/desim/scheduler.mli:
