type t = {
  name : string;
  sched : Scheduler.t;
  action : t -> unit;
  mutable notifications : int;
}

let create sched ~name action = { name; sched; action; notifications = 0 }
let name t = t.name
let scheduler t = t.sched

let notify_in ?prio t ~delay =
  Scheduler.schedule ?prio t.sched ~delay (fun () ->
      t.notifications <- t.notifications + 1;
      t.action t)

let notifications t = t.notifications
