(** Actors are the building blocks of the DE simulation (paper §III-C):
    objects that schedule events and are notified through a callback when
    the time of an event they scheduled arrives.

    A cycle-accurate component may extend an actor, contain several actors,
    or be part of a {e macro-actor} (see {!Clock}) that iterates over many
    components per notification — the grouping optimization of §III-D. *)

type t

(** [create sched ~name action] makes an actor whose [action] runs each time
    one of its events fires.  The action receives the actor itself so it can
    re-schedule. *)
val create : Scheduler.t -> name:string -> (t -> unit) -> t

val name : t -> string
val scheduler : t -> Scheduler.t

(** Schedule a notification for this actor [delay] time units from now. *)
val notify_in : ?prio:int -> t -> delay:int -> unit

(** Number of times this actor has been notified. *)
val notifications : t -> int
