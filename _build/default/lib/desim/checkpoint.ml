type entry = { name : string; save : unit -> string; load : string -> unit }
type registry = { mutable entries : entry list (* reversed *) }

let create () = { entries = [] }

let register r ~name ~save ~load =
  if List.exists (fun e -> e.name = name) r.entries then
    invalid_arg (Printf.sprintf "Checkpoint.register: duplicate name %S" name);
  let save () = Marshal.to_string (save ()) [] in
  let load s = load (Marshal.from_string s 0) in
  r.entries <- { name; save; load } :: r.entries

type blob = (string * string) list

let save r =
  List.rev_map (fun e -> (e.name, e.save ())) r.entries

let restore r blob =
  List.iter
    (fun e ->
      match List.assoc_opt e.name blob with
      | Some s -> e.load s
      | None ->
        invalid_arg
          (Printf.sprintf "Checkpoint.restore: blob lacks state for %S" e.name))
    r.entries

let to_file blob path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc blob [])

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> (Marshal.from_channel ic : blob))

let names r = List.rev_map (fun e -> e.name) r.entries
