(** Simulation checkpoints (paper §III-E).

    Components register a named piece of state with [register]; [save]
    snapshots every registered piece into a byte blob and [restore] pushes a
    blob back into the live components.  The state values must be
    marshallable (no closures); each component keeps its own closures and
    only round-trips plain data through the registry.

    Blobs can be written to and read from files, so a simulation can be
    resumed in a later process of the same binary. *)

type registry

val create : unit -> registry

(** [register r ~name ~save ~load] — [name] must be unique in [r]. *)
val register :
  registry -> name:string -> save:(unit -> 'a) -> load:('a -> unit) -> unit

type blob

val save : registry -> blob
val restore : registry -> blob -> unit

val to_file : blob -> string -> unit
val of_file : string -> blob

(** Names registered, in registration order. *)
val names : registry -> string list
