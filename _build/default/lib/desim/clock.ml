type handler = int -> unit

type t = {
  name : string;
  sched : Scheduler.t;
  mutable period : int;
  mutable cycles : int;
  mutable handlers : (int * handler) list; (* (phase, handler), sorted *)
  mutable enabled : bool;
  mutable sleeping : bool;
  mutable started : bool;
  mutable tick_pending : bool; (* an event for our next tick is in the list *)
}

let create sched ~name ~period =
  if period <= 0 then invalid_arg "Clock.create: period must be positive";
  {
    name;
    sched;
    period;
    cycles = 0;
    handlers = [];
    enabled = true;
    sleeping = false;
    started = false;
    tick_pending = false;
  }

let name t = t.name
let period t = t.period

let set_period t p =
  if p <= 0 then invalid_arg "Clock.set_period: period must be positive";
  t.period <- p

let cycles t = t.cycles

let on_tick ?(phase = 0) t h =
  (* Stable insertion keeping phases ascending, registration order within. *)
  let rec insert = function
    | [] -> [ (phase, h) ]
    | (p, _) :: _ as rest when p > phase -> (phase, h) :: rest
    | x :: rest -> x :: insert rest
  in
  t.handlers <- insert t.handlers

let rec schedule_tick t ~at_least =
  if (not t.tick_pending) && t.enabled && not t.sleeping then begin
    t.tick_pending <- true;
    let time = at_least in
    Scheduler.schedule_at t.sched ~prio:Scheduler.prio_tick ~time (fun () ->
        t.tick_pending <- false;
        if t.enabled && not t.sleeping then begin
          let c = t.cycles in
          t.cycles <- c + 1;
          List.iter (fun (_, h) -> h c) t.handlers;
          schedule_tick t ~at_least:(Scheduler.now t.sched + t.period)
        end)
  end

let start t =
  if not t.started then begin
    t.started <- true;
    schedule_tick t ~at_least:(Scheduler.now t.sched)
  end

let enabled t = t.enabled
let disable t = t.enabled <- false

let enable t =
  if not t.enabled then begin
    t.enabled <- true;
    if t.started then schedule_tick t ~at_least:(Scheduler.now t.sched + 1)
  end

let sleep t = t.sleeping <- true

let wake t =
  if t.sleeping then begin
    t.sleeping <- false;
    if t.started then schedule_tick t ~at_least:(Scheduler.now t.sched + 1)
  end

let sleeping t = t.sleeping
