(** Clock domains (paper §III-B, §III-D).

    A clock is a self-rescheduling actor that ticks with a mutable period;
    components register tick handlers on it.  A clock with many handlers is
    exactly the {e macro-actor} of §III-D: one scheduled event per cycle
    iterates all grouped components, instead of one event per component.

    Clocks support the runtime-control features the paper exposes through
    activity plug-ins: the period can be changed on the fly (DVFS, taking
    effect at the next tick) and the clock can be disabled/enabled (clock
    gating).  A clock whose handlers all have nothing to do may be put to
    [sleep] and [wake]d later; it resumes ticking one time unit after the
    wake. *)

type t

(** Handlers run in ascending phase order within a tick; ties run in
    registration order.  The handler receives the cycle index of this clock
    (number of ticks elapsed, counting gated-off ticks never happens). *)
type handler = int -> unit

val create : Scheduler.t -> name:string -> period:int -> t
val name : t -> string
val period : t -> int

(** Change the period; takes effect from the next tick.  Raises
    [Invalid_argument] if not positive. *)
val set_period : t -> int -> unit

(** Cycles elapsed on this clock. *)
val cycles : t -> int

val on_tick : ?phase:int -> t -> handler -> unit

(** Begin ticking.  Must be called once after handlers are registered. *)
val start : t -> unit

val enabled : t -> bool
val disable : t -> unit
val enable : t -> unit

(** Stop scheduling ticks until [wake].  Unlike [disable], [wake] may be
    called from any component (e.g. a package arriving at an idle cluster). *)
val sleep : t -> unit

val wake : t -> unit
val sleeping : t -> bool
