(** Discrete-event simulation engine (paper §III-C–§III-E).

    This library is the substrate under {!Xmtsim}: a deterministic
    event-list scheduler ({!Scheduler} over {!Event_heap}), actor callbacks
    ({!Actor}), clock domains with DVFS/gating/macro-actor grouping
    ({!Clock}), bounded transfer ports ({!Port}), checkpointing
    ({!Checkpoint}) and reproducible randomness ({!Rng}). *)

module Event_heap = Event_heap
module Scheduler = Scheduler
module Actor = Actor
module Port = Port
module Clock = Clock
module Checkpoint = Checkpoint
module Rng = Rng
