type 'a entry = { time : int; prio : int; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; len = 0; next_seq = 0 }

let entry_lt a b =
  a.time < b.time
  || (a.time = b.time && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let grow h e =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit h.arr 0 narr 0 h.len;
    h.arr <- narr
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_lt h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && entry_lt h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~time ~prio payload =
  let e = { time; prio; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then raise Not_found;
  let e = h.arr.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.arr.(0) <- h.arr.(h.len);
    sift_down h 0
  end;
  (e.time, e.prio, e.payload)

let min_time h = if h.len = 0 then None else Some h.arr.(0).time
let size h = h.len
let is_empty h = h.len = 0

let clear h =
  h.len <- 0;
  h.arr <- [||]
