(** Binary min-heap of pending events, the "event list" of the DE scheduler
    (paper Fig. 4).

    Events are ordered by [(time, priority, sequence number)].  The sequence
    number is assigned at insertion, making the processing order of
    simultaneous same-priority events deterministic (insertion order), which
    in turn makes whole simulations reproducible. *)

type 'a t

val create : unit -> 'a t

(** [add h ~time ~prio x] inserts [x] to fire at [time] with priority [prio]
    (lower priority fires first among events at the same time). *)
val add : 'a t -> time:int -> prio:int -> 'a -> unit

(** Remove and return the earliest event as [(time, prio, payload)].
    Raises [Not_found] on an empty heap. *)
val pop : 'a t -> int * int * 'a

(** Time of the earliest pending event, if any. *)
val min_time : 'a t -> int option

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
