type 'a t = {
  name : string;
  capacity : int;
  q : 'a Queue.t;
  mutable pushed : int;
}

let create ~name ~capacity = { name; capacity; q = Queue.create (); pushed = 0 }
let name t = t.name
let capacity t = t.capacity
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let can_push t = t.capacity <= 0 || Queue.length t.q < t.capacity

let push t x =
  if can_push t then begin
    Queue.add x t.q;
    t.pushed <- t.pushed + 1;
    true
  end
  else false

let push_exn t x =
  if not (push t x) then failwith (Printf.sprintf "Port %s: push on full port" t.name)

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q

let drain t =
  let rec go acc =
    match Queue.take_opt t.q with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let clear t = Queue.clear t.q
let pushed_total t = t.pushed
