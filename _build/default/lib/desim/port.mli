(** Ports are the points of transfer for packages between cycle-accurate
    components (paper §III-C).

    A port is a bounded FIFO.  The two-phase clock-cycle protocol maps onto
    it naturally: in the negotiate phase a producer tests [can_push], in the
    transfer phase it [push]es and the consumer [pop]s.  Capacity models the
    buffering of the hardware component behind the port. *)

type 'a t

(** [create ~name ~capacity] — [capacity <= 0] means unbounded. *)
val create : name:string -> capacity:int -> 'a t

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val can_push : 'a t -> bool

(** [push p x] returns [false] (and drops nothing) when the port is full. *)
val push : 'a t -> 'a -> bool

(** [push_exn] raises [Failure] when the port is full. *)
val push_exn : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

(** Remove every queued element, newest last. *)
val drain : 'a t -> 'a list

val clear : 'a t -> unit

(** Total number of elements ever pushed (an activity counter). *)
val pushed_total : 'a t -> int
