type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create ~seed = { state = Int64.of_int seed }
let split t = { state = next t }
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t = float_of_int (bits t) /. 4611686018427387904.0
let bool t = Int64.logand (next t) 1L = 1L
