(** Deterministic splittable pseudo-random source (SplitMix64).

    Simulation components that need arbitration jitter (e.g. interconnect
    round-robin tie-breaking) draw from their own stream so that runs are
    reproducible for a given seed and independent of component count. *)

type t

val create : seed:int -> t

(** Derive an independent stream; deterministic in [t]'s seed and the call
    order. *)
val split : t -> t

(** Uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform non-negative 62-bit integer. *)
val bits : t -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool
