lib/isa/isa.ml: Asm Instr Memmap Program Reg Value
