lib/isa/asm.ml: Buffer Fun In_channel Instr List Printf Program Reg String
