lib/isa/memmap.ml: Array Buffer Fun In_channel List Printf String Value
