lib/isa/memmap.mli: Value
