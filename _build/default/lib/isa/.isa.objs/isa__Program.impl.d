lib/isa/program.ml: Array Char Hashtbl Instr List Printf String Value
