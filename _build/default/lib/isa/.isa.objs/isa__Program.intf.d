lib/isa/program.mli: Hashtbl Instr Value
