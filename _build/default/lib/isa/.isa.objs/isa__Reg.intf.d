lib/isa/reg.mli:
