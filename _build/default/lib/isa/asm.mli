(** Assembly reader and writer (the SableCC front-end role of Fig. 3).

    Parses the textual assembly produced by the compiler (or written by
    hand) into a symbolic {!Program.t}, and prints programs back out.
    Printing then parsing is the identity on the program structure, which
    is what lets the post-pass re-read the core-pass output (§IV). *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Program.t

(** Parse a single instruction line (no labels/directives). *)
val parse_instr : string -> Instr.t

val print : Program.t -> string
val parse_file : string -> Program.t
val print_to_file : Program.t -> string -> unit
