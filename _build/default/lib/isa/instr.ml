type alu_op = Add | Sub | And | Or | Xor | Nor | Slt | Sltu
type alu_imm_op = Addi | Andi | Ori | Xori | Slti
type sft_op = Sll | Srl | Sra
type mdu_op = Mul | Div | Rem
type fpu_op = Fadd | Fsub | Fmul | Fdiv
type fpu_un_op = Fneg | Fabs | Fsqrt | Fmov
type fcmp_op = Feq | Flt | Fle
type br_op = Beq | Bne
type brz_op = Blez | Bgtz | Bltz | Bgez | Beqz | Bnez
type sys_op = Print_int | Print_float | Print_char | Print_str
type label = string

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_imm_op * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | La of Reg.t * label
  | Sft of sft_op * Reg.t * Reg.t * Reg.t
  | Sfti of sft_op * Reg.t * Reg.t * int
  | Mdu of mdu_op * Reg.t * Reg.t * Reg.t
  | Fpu of fpu_op * Reg.f * Reg.f * Reg.f
  | Fpu1 of fpu_un_op * Reg.f * Reg.f
  | Fcmp of fcmp_op * Reg.t * Reg.f * Reg.f
  | Cvt_i2f of Reg.f * Reg.t
  | Cvt_f2i of Reg.t * Reg.f
  | Fli of Reg.f * float
  | Lw of Reg.t * int * Reg.t
  | Lwro of Reg.t * int * Reg.t
  | Sw of Reg.t * int * Reg.t
  | Swnb of Reg.t * int * Reg.t
  | Flw of Reg.f * int * Reg.t
  | Fsw of Reg.f * int * Reg.t
  | Pref of int * Reg.t
  | Br of br_op * Reg.t * Reg.t * label
  | Brz of brz_op * Reg.t * label
  | J of label
  | Jal of label
  | Jr of Reg.t
  | Spawn of Reg.t * Reg.t
  | Join
  | Ps of Reg.t * Reg.g
  | Psm of Reg.t * int * Reg.t
  | Chkid of Reg.t
  | Mfg of Reg.t * Reg.g
  | Mtg of Reg.g * Reg.t
  | Fence
  | Sys of sys_op * int
  | Halt

type fu_class = FU_ALU | FU_BR | FU_SFT | FU_MDU | FU_FPU | FU_MEM | FU_PS | FU_CTRL

let fu_class_of = function
  | Alu _ | Alui _ | Li _ | La _ -> FU_ALU
  | Sft _ | Sfti _ -> FU_SFT
  | Mdu _ -> FU_MDU
  | Fpu _ | Fpu1 _ | Fcmp _ | Cvt_i2f _ | Cvt_f2i _ | Fli _ -> FU_FPU
  | Lw _ | Lwro _ | Sw _ | Swnb _ | Flw _ | Fsw _ | Pref _ | Psm _ -> FU_MEM
  | Br _ | Brz _ | J _ | Jal _ | Jr _ -> FU_BR
  | Ps _ -> FU_PS
  | Spawn _ | Join | Chkid _ | Mfg _ | Mtg _ | Fence | Sys _ | Halt -> FU_CTRL

let fu_class_name = function
  | FU_ALU -> "ALU"
  | FU_BR -> "BR"
  | FU_SFT -> "SFT"
  | FU_MDU -> "MDU"
  | FU_FPU -> "FPU"
  | FU_MEM -> "MEM"
  | FU_PS -> "PS"
  | FU_CTRL -> "CTRL"

let all_fu_classes =
  [ FU_ALU; FU_BR; FU_SFT; FU_MDU; FU_FPU; FU_MEM; FU_PS; FU_CTRL ]

let is_mem i = fu_class_of i = FU_MEM

let is_terminator = function
  | Br _ | Brz _ | J _ | Jr _ | Halt | Join -> true
  | Alu _ | Alui _ | Li _ | La _ | Sft _ | Sfti _ | Mdu _ | Fpu _ | Fpu1 _
  | Fcmp _ | Cvt_i2f _ | Cvt_f2i _ | Fli _ | Lw _ | Lwro _ | Sw _ | Swnb _
  | Flw _ | Fsw _ | Pref _ | Jal _ | Spawn _ | Ps _ | Psm _ | Chkid _ | Mfg _
  | Mtg _ | Fence | Sys _ ->
    false

let target = function
  | Br (_, _, _, l) | Brz (_, _, l) | J l | Jal l -> Some l
  | Alu _ | Alui _ | Li _ | La _ | Sft _ | Sfti _ | Mdu _ | Fpu _ | Fpu1 _
  | Fcmp _ | Cvt_i2f _ | Cvt_f2i _ | Fli _ | Lw _ | Lwro _ | Sw _ | Swnb _
  | Flw _ | Fsw _ | Pref _ | Jr _ | Spawn _ | Join | Ps _ | Psm _ | Chkid _
  | Mfg _ | Mtg _ | Fence | Sys _ | Halt ->
    None

let with_target i l =
  match i with
  | Br (op, a, b, _) -> Br (op, a, b, l)
  | Brz (op, a, _) -> Brz (op, a, l)
  | J _ -> J l
  | Jal _ -> Jal l
  | other -> other

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nor -> "nor"
  | Slt -> "slt"
  | Sltu -> "sltu"

let alui_name = function
  | Addi -> "addi"
  | Andi -> "andi"
  | Ori -> "ori"
  | Xori -> "xori"
  | Slti -> "slti"

let sft_name = function Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
let mdu_name = function Mul -> "mul" | Div -> "div" | Rem -> "rem"

let fpu_name = function
  | Fadd -> "add.s"
  | Fsub -> "sub.s"
  | Fmul -> "mul.s"
  | Fdiv -> "div.s"

let fpu1_name = function
  | Fneg -> "neg.s"
  | Fabs -> "abs.s"
  | Fsqrt -> "sqrt.s"
  | Fmov -> "mov.s"

let fcmp_name = function Feq -> "c.eq.s" | Flt -> "c.lt.s" | Fle -> "c.le.s"
let br_name = function Beq -> "beq" | Bne -> "bne"

let brz_name = function
  | Blez -> "blez"
  | Bgtz -> "bgtz"
  | Bltz -> "bltz"
  | Bgez -> "bgez"
  | Beqz -> "beqz"
  | Bnez -> "bnez"

let sys_name = function
  | Print_int -> "pint"
  | Print_float -> "pflt"
  | Print_char -> "pchr"
  | Print_str -> "pstr"

let r = Reg.name
let f = Reg.fname
let g = Reg.gname
let spf = Printf.sprintf

let to_string = function
  | Alu (op, rd, rs, rt) -> spf "%s %s, %s, %s" (alu_name op) (r rd) (r rs) (r rt)
  | Alui (op, rd, rs, imm) -> spf "%s %s, %s, %d" (alui_name op) (r rd) (r rs) imm
  | Li (rd, imm) -> spf "li %s, %d" (r rd) imm
  | La (rd, l) -> spf "la %s, %s" (r rd) l
  | Sft (op, rd, rs, rt) -> spf "%sv %s, %s, %s" (sft_name op) (r rd) (r rs) (r rt)
  | Sfti (op, rd, rs, imm) -> spf "%s %s, %s, %d" (sft_name op) (r rd) (r rs) imm
  | Mdu (op, rd, rs, rt) -> spf "%s %s, %s, %s" (mdu_name op) (r rd) (r rs) (r rt)
  | Fpu (op, fd, fs, ft) -> spf "%s %s, %s, %s" (fpu_name op) (f fd) (f fs) (f ft)
  | Fpu1 (op, fd, fs) -> spf "%s %s, %s" (fpu1_name op) (f fd) (f fs)
  | Fcmp (op, rd, fs, ft) -> spf "%s %s, %s, %s" (fcmp_name op) (r rd) (f fs) (f ft)
  | Cvt_i2f (fd, rs) -> spf "cvt.s.w %s, %s" (f fd) (r rs)
  | Cvt_f2i (rd, fs) -> spf "cvt.w.s %s, %s" (r rd) (f fs)
  | Fli (fd, x) -> spf "li.s %s, %h" (f fd) x
  | Lw (rt, off, rs) -> spf "lw %s, %d(%s)" (r rt) off (r rs)
  | Lwro (rt, off, rs) -> spf "lw.ro %s, %d(%s)" (r rt) off (r rs)
  | Sw (rt, off, rs) -> spf "sw %s, %d(%s)" (r rt) off (r rs)
  | Swnb (rt, off, rs) -> spf "sw.nb %s, %d(%s)" (r rt) off (r rs)
  | Flw (ft, off, rs) -> spf "l.s %s, %d(%s)" (f ft) off (r rs)
  | Fsw (ft, off, rs) -> spf "s.s %s, %d(%s)" (f ft) off (r rs)
  | Pref (off, rs) -> spf "pref %d(%s)" off (r rs)
  | Br (op, rs, rt, l) -> spf "%s %s, %s, %s" (br_name op) (r rs) (r rt) l
  | Brz (op, rs, l) -> spf "%s %s, %s" (brz_name op) (r rs) l
  | J l -> spf "j %s" l
  | Jal l -> spf "jal %s" l
  | Jr rs -> spf "jr %s" (r rs)
  | Spawn (rl, rh) -> spf "spawn %s, %s" (r rl) (r rh)
  | Join -> "join"
  | Ps (rd, gb) -> spf "ps %s, %s" (r rd) (g gb)
  | Psm (rd, off, rs) -> spf "psm %s, %d(%s)" (r rd) off (r rs)
  | Chkid rd -> spf "chkid %s" (r rd)
  | Mfg (rd, gb) -> spf "mfg %s, %s" (r rd) (g gb)
  | Mtg (gb, rs) -> spf "mtg %s, %s" (g gb) (r rs)
  | Fence -> "fence"
  | Sys (op, reg) ->
    let operand = match op with Print_float -> f reg | _ -> r reg in
    spf "%s %s" (sys_name op) operand
  | Halt -> "halt"

let pp ppf i = Format.pp_print_string ppf (to_string i)
