(** The XMT assembly instruction set.

    A MIPS-flavoured core plus the XMT extensions described in the paper:
    [spawn]/[join] (§II-A), prefix-sum to global registers [ps] and to
    memory [psm] (§II-A), [chkid] virtual-thread validation (§IV-D),
    read-only-cache loads [lw.ro], non-blocking stores [sw.nb], software
    prefetch [pref] (§IV-C) and the memory [fence] the compiler inserts
    before prefix-sums (§IV-A).

    Mirroring XMTSim's [Instruction] class API, every instruction reports
    the functional-unit class that executes it ({!fu_class}); adding an
    instruction means adding a variant here plus its semantics in the
    functional model — the two-step recipe of §III-A. *)

type alu_op = Add | Sub | And | Or | Xor | Nor | Slt | Sltu
type alu_imm_op = Addi | Andi | Ori | Xori | Slti
type sft_op = Sll | Srl | Sra
type mdu_op = Mul | Div | Rem
type fpu_op = Fadd | Fsub | Fmul | Fdiv
type fpu_un_op = Fneg | Fabs | Fsqrt | Fmov
type fcmp_op = Feq | Flt | Fle
type br_op = Beq | Bne
type brz_op = Blez | Bgtz | Bltz | Bgez | Beqz | Bnez
type sys_op = Print_int | Print_float | Print_char | Print_str

type label = string

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** rd <- rs OP rt *)
  | Alui of alu_imm_op * Reg.t * Reg.t * int  (** rd <- rs OP imm *)
  | Li of Reg.t * int
  | La of Reg.t * label  (** load address of label *)
  | Sft of sft_op * Reg.t * Reg.t * Reg.t  (** variable shift *)
  | Sfti of sft_op * Reg.t * Reg.t * int
  | Mdu of mdu_op * Reg.t * Reg.t * Reg.t
  | Fpu of fpu_op * Reg.f * Reg.f * Reg.f
  | Fpu1 of fpu_un_op * Reg.f * Reg.f
  | Fcmp of fcmp_op * Reg.t * Reg.f * Reg.f
  | Cvt_i2f of Reg.f * Reg.t
  | Cvt_f2i of Reg.t * Reg.f
  | Fli of Reg.f * float  (** float immediate load *)
  | Lw of Reg.t * int * Reg.t  (** rt <- mem[rs + off] *)
  | Lwro of Reg.t * int * Reg.t  (** load via cluster read-only cache *)
  | Sw of Reg.t * int * Reg.t  (** mem[rs + off] <- rt (blocking) *)
  | Swnb of Reg.t * int * Reg.t  (** non-blocking store *)
  | Flw of Reg.f * int * Reg.t
  | Fsw of Reg.f * int * Reg.t
  | Pref of int * Reg.t  (** prefetch mem[rs + off] into the TCU buffer *)
  | Br of br_op * Reg.t * Reg.t * label
  | Brz of brz_op * Reg.t * label
  | J of label
  | Jal of label
  | Jr of Reg.t
  | Spawn of Reg.t * Reg.t  (** spawn rlow, rhigh *)
  | Join
  | Ps of Reg.t * Reg.g  (** atomic: rd <-> $g += rd; rd value must be 0/1 *)
  | Psm of Reg.t * int * Reg.t  (** atomic: rd <-> mem[rs+off] += rd *)
  | Chkid of Reg.t  (** terminate virtual thread if rd > spawn bound *)
  | Mfg of Reg.t * Reg.g  (** serial-mode read of a global PS register *)
  | Mtg of Reg.g * Reg.t  (** serial-mode write of a global PS register *)
  | Fence  (** wait until this TCU's pending stores are acknowledged *)
  | Sys of sys_op * int  (** print syscall; operand is a reg index *)
  | Halt

(** Functional-unit classes of Fig. 1.  [MEM] ops go through the LS unit,
    interconnect and shared caches; [PS] through the global prefix-sum unit;
    [CTRL] is handled inside the TCU / spawn-join unit. *)
type fu_class = FU_ALU | FU_BR | FU_SFT | FU_MDU | FU_FPU | FU_MEM | FU_PS | FU_CTRL

val fu_class_of : t -> fu_class
val fu_class_name : fu_class -> string
val all_fu_classes : fu_class list

(** Is this a memory operation handled by the LS unit? *)
val is_mem : t -> bool

(** Does this instruction end a basic block? *)
val is_terminator : t -> bool

(** Branch/jump target label, if any. *)
val target : t -> label option

(** Replace the target label (identity for non-control instructions). *)
val with_target : t -> label -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
