(** The XMT instruction-set architecture: registers ({!Reg}), runtime
    values ({!Value}), instructions with functional-unit classification
    ({!Instr}), symbolic programs and executable images ({!Program}), the
    assembly reader/writer ({!Asm}) and memory-map input files
    ({!Memmap}). *)

module Reg = Reg
module Value = Value
module Instr = Instr
module Program = Program
module Asm = Asm
module Memmap = Memmap
