type t = (string * Value.t array) list

exception Parse_error of { line : int; msg : string }

let fail line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let parse src =
  let lines = String.split_on_char '\n' src in
  let out = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        match String.index_opt line ':' with
        | None -> fail lineno "expected `name: values...'"
        | Some i ->
          let name = String.trim (String.sub line 0 i) in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          let fields =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim rest))
          in
          let values =
            match fields with
            | "f" :: fs ->
              List.map
                (fun s ->
                  match float_of_string_opt s with
                  | Some f -> Value.flt f
                  | None -> fail lineno "bad float %S" s)
                fs
            | ws ->
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some v -> Value.int v
                  | None -> fail lineno "bad integer %S" s)
                ws
          in
          out := (name, Array.of_list values) :: !out
      end)
    lines;
  List.rev !out

let print t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, values) ->
      let is_float =
        Array.length values > 0
        && match values.(0) with Value.Flt _ -> true | Value.Int _ -> false
      in
      Buffer.add_string buf name;
      Buffer.add_string buf ":";
      if is_float then Buffer.add_string buf " f";
      Array.iter
        (fun v ->
          Buffer.add_char buf ' ';
          match v with
          | Value.Int x -> Buffer.add_string buf (string_of_int x)
          | Value.Flt f -> Buffer.add_string buf (Printf.sprintf "%h" f))
        values;
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))

let print_to_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print t))

let of_ints l = List.map (fun (n, a) -> (n, Array.map Value.int a)) l
let of_floats l = List.map (fun (n, a) -> (n, Array.map Value.flt a)) l
