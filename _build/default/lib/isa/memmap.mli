(** Memory-map files (paper §III-A, Fig. 3).

    The toolchain has no operating system, so global variables are the only
    way to feed input to an XMTC program.  A memory map carries the initial
    values of named globals; the compiler post-pass links it against the
    program's data section, overwriting the reserved space.

    File format, one binding per line:
    {v
    name: 1 2 3 4        # integer words
    name: f 1.5 2.5      # float words
    v} *)

type t = (string * Value.t array) list

exception Parse_error of { line : int; msg : string }

val parse : string -> t
val print : t -> string
val parse_file : string -> t
val print_to_file : t -> string -> unit

(** Convenience constructors. *)
val of_ints : (string * int array) list -> t

val of_floats : (string * float array) list -> t
