type t = int
type f = int
type g = int

let num_regs = 32
let num_fregs = 32
let num_globals = 9
let g_spawn = 8
let zero = 0
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let gp = 28
let sp = 29
let fp = 30
let ra = 31
let temporaries = [ 8; 9; 10; 11; 12; 13; 14; 15; 24; 25 ]
let saved = [ 16; 17; 18; 19; 20; 21; 22; 23 ]
let args = [ a0; a1; a2; a3 ]
let fargs = [ 12; 13; 14; 15 ]

let ftemporaries =
  [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 16; 17; 18; 19; 20; 21; 22; 23 ]

let names =
  [|
    "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3"; "t0"; "t1"; "t2"; "t3";
    "t4"; "t5"; "t6"; "t7"; "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
    "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra";
  |]

let name r =
  if r < 0 || r >= num_regs then invalid_arg "Reg.name"
  else "$" ^ names.(r)

let fname r =
  if r < 0 || r >= num_fregs then invalid_arg "Reg.fname"
  else Printf.sprintf "$f%d" r

let gname r =
  if r < 0 || r >= num_globals then invalid_arg "Reg.gname"
  else Printf.sprintf "$g%d" r

let of_string s =
  let n = String.length s in
  if n < 2 || s.[0] <> '$' then None
  else
    let body = String.sub s 1 (n - 1) in
    match int_of_string_opt body with
    | Some i when i >= 0 && i < num_regs -> Some i
    | Some _ -> None
    | None ->
      let rec find i =
        if i >= num_regs then None
        else if names.(i) = body then Some i
        else find (i + 1)
      in
      find 0

let numbered_of_string prefix limit s =
  let n = String.length s in
  let p = String.length prefix in
  if n <= p || String.sub s 0 p <> prefix then None
  else
    match int_of_string_opt (String.sub s p (n - p)) with
    | Some i when i >= 0 && i < limit -> Some i
    | Some _ | None -> None

let f_of_string s = numbered_of_string "$f" num_fregs s
let g_of_string s = numbered_of_string "$g" num_globals s
