(** Register files and calling conventions of the XMT ISA.

    Integer registers follow MIPS conventions ($zero, $v0..., $ra); every
    TCU and the Master TCU each have a private copy of all 32.  There are
    32 floating-point registers ($f0-$f31).  In addition the architecture
    has a small file of {e global} prefix-sum registers $g0-$g8 living in
    the global PS unit (paper Fig. 1); $g8 is reserved by the hardware as
    the spawn dispatch counter used to hand out virtual-thread IDs. *)

type t = int (** integer register index, 0..31 *)

type f = int (** float register index, 0..31 *)

type g = int (** global PS register index, 0..8 *)

val num_regs : int
val num_fregs : int
val num_globals : int

(** The global register used by the hardware to dispatch virtual-thread IDs
    during a spawn (compiler-emitted [ps $r, $g8]). *)
val g_spawn : g

val zero : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val gp : t
val sp : t
val fp : t
val ra : t

(** Caller-saved integer temporaries available for allocation ($t0-$t9). *)
val temporaries : t list

(** Callee-saved registers ($s0-$s7). *)
val saved : t list

(** Argument registers in order. *)
val args : t list

(** Float registers for arguments ($f12-$f15). *)
val fargs : f list

(** Float temporaries available for allocation. *)
val ftemporaries : f list

val name : t -> string
val fname : f -> string
val gname : g -> string

(** Parse "$t0", "$8", "$ra"... *)
val of_string : string -> t option

val f_of_string : string -> f option
val g_of_string : string -> g option
