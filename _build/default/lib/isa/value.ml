type t = Int of int | Flt of float

exception Type_error of string

let zero = Int 0

let wrap32 x =
  let m = x land 0xFFFFFFFF in
  if m land 0x80000000 <> 0 then m - 0x100000000 else m

let int x = Int (wrap32 x)
let flt x = Flt x

let to_int = function
  | Int x -> x
  | Flt f -> raise (Type_error (Printf.sprintf "expected int, got float %g" f))

let to_flt = function
  | Flt f -> f
  | Int x -> raise (Type_error (Printf.sprintf "expected float, got int %d" x))

let pp ppf = function
  | Int x -> Format.fprintf ppf "%d" x
  | Flt f -> Format.fprintf ppf "%h" f

let to_string v = Format.asprintf "%a" pp v

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Flt x, Flt y -> Float.equal x y
  | Int _, Flt _ | Flt _, Int _ -> false
