(** Runtime values stored in memory cells and moved in data packages.

    The simulator works at transaction level (paper §III-A): a memory cell
    holds a whole typed word rather than bytes.  Integer words wrap at 32
    bits like the hardware's. *)

type t = Int of int | Flt of float

val zero : t
val int : int -> t
val flt : float -> t

(** Truncate to signed 32-bit two's complement, like the ALU does. *)
val wrap32 : int -> int

(** Interpret as integer; raises [Type_error] on a float cell. *)
val to_int : t -> int

val to_flt : t -> float

exception Type_error of string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
