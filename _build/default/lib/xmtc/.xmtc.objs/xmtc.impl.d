lib/xmtc/xmtc.ml: Ast Lexer Parser Pretty Tast Typecheck Types
