lib/xmtc/ast.ml: Types
