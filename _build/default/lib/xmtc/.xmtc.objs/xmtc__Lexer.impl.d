lib/xmtc/lexer.ml: Buffer List Printf String
