lib/xmtc/lexer.mli:
