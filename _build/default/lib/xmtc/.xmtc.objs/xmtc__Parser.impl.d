lib/xmtc/parser.ml: Array Ast Lexer List Printf Types
