lib/xmtc/parser.mli: Ast
