lib/xmtc/pretty.ml: List Option Printf String Tast Types
