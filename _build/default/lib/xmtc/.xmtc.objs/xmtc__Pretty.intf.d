lib/xmtc/pretty.mli: Tast
