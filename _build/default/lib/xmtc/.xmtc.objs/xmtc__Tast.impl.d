lib/xmtc/tast.ml: List Types
