lib/xmtc/typecheck.ml: Ast Bool Char Hashtbl List Option Parser Printf String Tast Types
