lib/xmtc/typecheck.mli: Ast Tast
