lib/xmtc/types.ml: Hashtbl List Printf
