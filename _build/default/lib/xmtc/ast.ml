(** Untyped abstract syntax, as produced by the parser.  The typechecker
    resolves names and types and converts this into {!Tast}. *)

open Types

type pos = int  (** source line *)

type expr = { node : enode; pos : pos }

and enode =
  | Eint of int
  | Eflt of float
  | Estr of string
  | Echar of char
  | Eid of string
  | Etid  (** [$], the virtual-thread identifier *)
  | Eunop of unop * expr
  | Elognot of expr  (** [!e] *)
  | Ebinop of binop * expr * expr
  | Eland of expr * expr  (** short-circuit && *)
  | Elor of expr * expr  (** short-circuit || *)
  | Eassign of expr * expr
  | Eopassign of binop * expr * expr  (** lhs op= rhs *)
  | Eincdec of incdec * bool * expr  (** op, is_prefix, lvalue *)
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Emember of expr * string * bool  (** base, field, is_arrow *)
  | Ederef of expr
  | Eaddr of expr
  | Ecast of ty * expr
  | Econd of expr * expr * expr

type init = Iexpr of expr | Ilist of expr list  (** brace initializer *)

type decl = {
  d_ty : ty;
  d_name : string;
  d_init : init option;
  d_volatile : bool;
  d_pos : pos;
}

type stmt = { snode : snode; spos : pos }

and snode =
  | Sskip
  | Sexpr of expr
  | Sdecl of decl list
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sspawn of expr * expr * stmt  (** spawn(low, high) body (§II-A) *)
  | Sps of string * string  (** ps(local, base) *)
  | Spsm of string * expr  (** psm(local, lvalue) *)

type func = {
  f_ret : ty;
  f_name : string;
  f_params : (ty * string) list;
  f_body : stmt;
  f_pos : pos;
}

type structdef = {
  sd_name : string;
  sd_fields : (ty * string) list;
  sd_pos : pos;
}

type top = Tglobal of decl | Tfunc of func | Tstructdef of structdef

type program = top list
