type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | CHAR of char
  | ID of string
  | KW of string
  | PUNCT of string
  | DOLLAR
  | EOF

exception Lex_error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Lex_error { line; msg })) fmt

let keywords =
  [
    "int"; "float"; "void"; "struct"; "if"; "else"; "while"; "do"; "for";
    "return"; "break"; "continue"; "spawn"; "ps"; "psm"; "volatile"; "const";
  ]

(* Multi-character punctuation, longest first. *)
let puncts =
  [
    "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "->"; "+"; "-"; "*"; "/";
    "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}"; "[";
    "]"; ";"; ","; "?"; ":"; ".";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit t = toks := (t, !line) :: !toks in
  let read_escape () =
    (* at src.[!i] = '\\' *)
    incr i;
    if !i >= n then fail !line "unterminated escape";
    let c =
      match src.[!i] with
      | 'n' -> '\n'
      | 't' -> '\t'
      | 'r' -> '\r'
      | '0' -> '\000'
      | '\\' -> '\\'
      | '\'' -> '\''
      | '"' -> '"'
      | other -> fail !line "unknown escape \\%c" other
    in
    incr i;
    c
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated comment"
    end
    else if c = '$' then (emit DOLLAR; incr i)
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '"' then (closed := true; incr i)
        else if src.[!i] = '\\' then Buffer.add_char buf (read_escape ())
        else begin
          if src.[!i] = '\n' then fail !line "newline in string literal";
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then fail !line "unterminated string literal";
      emit (STRING (Buffer.contents buf))
    end
    else if c = '\'' then begin
      incr i;
      if !i >= n then fail !line "unterminated char literal";
      let ch = if src.[!i] = '\\' then read_escape () else (let x = src.[!i] in incr i; x) in
      if !i >= n || src.[!i] <> '\'' then fail !line "unterminated char literal";
      incr i;
      emit (CHAR ch)
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      let is_hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if is_hex then i := !i + 2;
      let isfloat = ref false in
      let continue = ref true in
      while !i < n && !continue do
        let d = src.[!i] in
        if is_hex then begin
          if is_digit d || (d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F') then incr i
          else continue := false
        end
        else if is_digit d then incr i
        else if d = '.' then (isfloat := true; incr i)
        else if d = 'e' || d = 'E' then begin
          isfloat := true;
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i
        end
        else if d = 'f' || d = 'F' then (isfloat := true; incr i; continue := false)
        else continue := false
      done;
      let lit = String.sub src start (!i - start) in
      if !isfloat then begin
        let lit =
          if String.length lit > 0 && (lit.[String.length lit - 1] = 'f' || lit.[String.length lit - 1] = 'F')
          then String.sub lit 0 (String.length lit - 1)
          else lit
        in
        match float_of_string_opt lit with
        | Some f -> emit (FLOAT f)
        | None -> fail !line "bad float literal %S" lit
      end
      else begin
        match int_of_string_opt lit with
        | Some v -> emit (INT v)
        | None -> fail !line "bad integer literal %S" lit
      end
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) else emit (ID word)
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let lp = String.length p in
            !i + lp <= n && String.sub src !i lp = p)
          puncts
      in
      match matched with
      | Some p ->
        emit (PUNCT p);
        i := !i + String.length p
      | None -> fail !line "unexpected character %C" c
    end
  done;
  List.rev ((EOF, !line) :: !toks)

let token_to_string = function
  | INT v -> string_of_int v
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "%C" c
  | ID s -> s
  | KW s -> s
  | PUNCT s -> s
  | DOLLAR -> "$"
  | EOF -> "<eof>"
