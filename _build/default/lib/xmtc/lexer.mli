(** Hand-written lexer for XMTC source. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | CHAR of char
  | ID of string
  | KW of string  (** keyword *)
  | PUNCT of string  (** operator or punctuation, e.g. "+", "<<=", "{" *)
  | DOLLAR
  | EOF

exception Lex_error of { line : int; msg : string }

val keywords : string list

(** Tokenize the whole source; each token is paired with its line. *)
val tokenize : string -> (token * int) list

val token_to_string : token -> string
