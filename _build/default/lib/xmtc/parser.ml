open Types

exception Parse_error of { line : int; msg : string }

type state = { mutable toks : (Lexer.token * int) array; mutable pos : int }

let fail st fmt =
  let line = snd st.toks.(st.pos) in
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let peek st = fst st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.EOF
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> fail st "expected %S, got %S" p (Lexer.token_to_string t)

let expect_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | t -> fail st "expected %S, got %S" k (Lexer.token_to_string t)

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let expect_id st =
  match next st with
  | Lexer.ID s -> s
  | t -> fail st "expected identifier, got %S" (Lexer.token_to_string t)

let is_type_kw = function "int" | "float" | "void" -> true | _ -> false

let base_ty st =
  match next st with
  | Lexer.KW "int" -> Tint
  | Lexer.KW "float" -> Tfloat
  | Lexer.KW "void" -> Tvoid
  | Lexer.KW "struct" -> Tstruct (expect_id st)
  | t -> fail st "expected type, got %S" (Lexer.token_to_string t)

(* declarator: '*'* id ('[' INT ']')* ; returns (name, ty builder applied) *)
let declarator st base =
  let ty = ref base in
  while accept_punct st "*" do
    ty := Tptr !ty
  done;
  let name = expect_id st in
  let rec dims () =
    if accept_punct st "[" then begin
      let n =
        match next st with
        | Lexer.INT v -> v
        | t -> fail st "expected array size, got %S" (Lexer.token_to_string t)
      in
      expect_punct st "]";
      let inner = dims () in
      Tarr (inner, n)
    end
    else !ty
  in
  let final = dims () in
  (name, final)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing. *)

let mk st node = { Ast.node; pos = line st }

let rec parse_expression st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  match peek st with
  | Lexer.PUNCT "=" ->
    advance st;
    let rhs = parse_assign st in
    { Ast.node = Ast.Eassign (lhs, rhs); pos = lhs.Ast.pos }
  | Lexer.PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") ->
    let op =
      match next st with
      | Lexer.PUNCT "+=" -> Add
      | Lexer.PUNCT "-=" -> Sub
      | Lexer.PUNCT "*=" -> Mul
      | Lexer.PUNCT "/=" -> Div
      | Lexer.PUNCT "%=" -> Mod
      | Lexer.PUNCT "&=" -> Band
      | Lexer.PUNCT "|=" -> Bor
      | Lexer.PUNCT "^=" -> Bxor
      | Lexer.PUNCT "<<=" -> Shl
      | Lexer.PUNCT ">>=" -> Shr
      | _ -> assert false
    in
    let rhs = parse_assign st in
    { Ast.node = Ast.Eopassign (op, lhs, rhs); pos = lhs.Ast.pos }
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if accept_punct st "?" then begin
    let t = parse_expression st in
    expect_punct st ":";
    let e = parse_cond st in
    { Ast.node = Ast.Econd (c, t, e); pos = c.Ast.pos }
  end
  else c

and parse_lor st =
  let rec go acc =
    if accept_punct st "||" then
      let rhs = parse_land st in
      go { Ast.node = Ast.Elor (acc, rhs); pos = acc.Ast.pos }
    else acc
  in
  go (parse_land st)

and parse_land st =
  let rec go acc =
    if accept_punct st "&&" then
      let rhs = parse_bor st in
      go { Ast.node = Ast.Eland (acc, rhs); pos = acc.Ast.pos }
    else acc
  in
  go (parse_bor st)

and parse_binlevel st ops sub =
  let rec go acc =
    match peek st with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
      advance st;
      let rhs = sub st in
      go { Ast.node = Ast.Ebinop (List.assoc p ops, acc, rhs); pos = acc.Ast.pos }
    | _ -> acc
  in
  go (sub st)

and parse_bor st = parse_binlevel st [ ("|", Bor) ] parse_bxor
and parse_bxor st = parse_binlevel st [ ("^", Bxor) ] parse_band
and parse_band st = parse_binlevel st [ ("&", Band) ] parse_eq
and parse_eq st = parse_binlevel st [ ("==", Eq); ("!=", Ne) ] parse_rel

and parse_rel st =
  parse_binlevel st [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ] parse_shift

and parse_shift st = parse_binlevel st [ ("<<", Shl); (">>", Shr) ] parse_add
and parse_add st = parse_binlevel st [ ("+", Add); ("-", Sub) ] parse_mul
and parse_mul st = parse_binlevel st [ ("*", Mul); ("/", Div); ("%", Mod) ] parse_unary

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Eunop (Neg, e))
  | Lexer.PUNCT "~" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Eunop (Bnot, e))
  | Lexer.PUNCT "!" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Elognot e)
  | Lexer.PUNCT "*" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Ederef e)
  | Lexer.PUNCT "&" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Eaddr e)
  | Lexer.PUNCT "++" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Eincdec (Incr, true, e))
  | Lexer.PUNCT "--" ->
    advance st;
    let e = parse_unary st in
    mk st (Ast.Eincdec (Decr, true, e))
  | Lexer.PUNCT "("
    when (match peek2 st with
         | Lexer.KW k -> is_type_kw k || k = "struct"
         | _ -> false) ->
    advance st;
    let base = base_ty st in
    let ty = ref base in
    while accept_punct st "*" do
      ty := Tptr !ty
    done;
    expect_punct st ")";
    let e = parse_unary st in
    mk st (Ast.Ecast (!ty, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expression st in
      expect_punct st "]";
      go { Ast.node = Ast.Eindex (acc, idx); pos = acc.Ast.pos }
    | Lexer.PUNCT "." ->
      advance st;
      let field = expect_id st in
      go { Ast.node = Ast.Emember (acc, field, false); pos = acc.Ast.pos }
    | Lexer.PUNCT "->" ->
      advance st;
      let field = expect_id st in
      go { Ast.node = Ast.Emember (acc, field, true); pos = acc.Ast.pos }
    | Lexer.PUNCT "++" ->
      advance st;
      go { Ast.node = Ast.Eincdec (Incr, false, acc); pos = acc.Ast.pos }
    | Lexer.PUNCT "--" ->
      advance st;
      go { Ast.node = Ast.Eincdec (Decr, false, acc); pos = acc.Ast.pos }
    | _ -> acc
  in
  go (parse_primary st)

and parse_primary st =
  match next st with
  | Lexer.INT v -> mk st (Ast.Eint v)
  | Lexer.FLOAT f -> mk st (Ast.Eflt f)
  | Lexer.STRING s -> mk st (Ast.Estr s)
  | Lexer.CHAR c -> mk st (Ast.Echar c)
  | Lexer.DOLLAR -> mk st Ast.Etid
  | Lexer.ID name ->
    if accept_punct st "(" then begin
      let args = parse_args st in
      mk st (Ast.Ecall (name, args))
    end
    else mk st (Ast.Eid name)
  | Lexer.PUNCT "(" ->
    let e = parse_expression st in
    expect_punct st ")";
    e
  | t -> fail st "unexpected token %S in expression" (Lexer.token_to_string t)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expression st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Statements. *)

let rec parse_stmt st =
  let pos = line st in
  let s snode = { Ast.snode; spos = pos } in
  match peek st with
  | Lexer.PUNCT ";" ->
    advance st;
    s Ast.Sskip
  | Lexer.PUNCT "{" ->
    advance st;
    let rec go acc =
      if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
    in
    s (Ast.Sblock (go []))
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    let then_ = parse_stmt st in
    let else_ =
      match peek st with
      | Lexer.KW "else" ->
        advance st;
        Some (parse_stmt st)
      | _ -> None
    in
    s (Ast.Sif (c, then_, else_))
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    let body = parse_stmt st in
    s (Ast.Swhile (c, body))
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt st in
    expect_kw st "while";
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    expect_punct st ";";
    s (Ast.Sdowhile (body, c))
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s' =
          match peek st with
          | Lexer.KW k when is_type_kw k || k = "struct" || k = "volatile" ->
            parse_decl_stmt st
          | _ ->
            let e = parse_expression st in
            { Ast.snode = Ast.Sexpr e; spos = pos }
        in
        expect_punct st ";";
        Some s'
      end
    in
    let cond = if peek st = Lexer.PUNCT ";" then None else Some (parse_expression st) in
    expect_punct st ";";
    let post = if peek st = Lexer.PUNCT ")" then None else Some (parse_expression st) in
    expect_punct st ")";
    let body = parse_stmt st in
    s (Ast.Sfor (init, cond, post, body))
  | Lexer.KW "return" ->
    advance st;
    let e = if peek st = Lexer.PUNCT ";" then None else Some (parse_expression st) in
    expect_punct st ";";
    s (Ast.Sreturn e)
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    s Ast.Sbreak
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    s Ast.Scontinue
  | Lexer.KW "spawn" ->
    advance st;
    expect_punct st "(";
    let lo = parse_expression st in
    expect_punct st ",";
    let hi = parse_expression st in
    expect_punct st ")";
    let body = parse_stmt st in
    s (Ast.Sspawn (lo, hi, body))
  | Lexer.KW "ps" ->
    advance st;
    expect_punct st "(";
    let v = expect_id st in
    expect_punct st ",";
    let base = expect_id st in
    expect_punct st ")";
    expect_punct st ";";
    s (Ast.Sps (v, base))
  | Lexer.KW "psm" ->
    advance st;
    expect_punct st "(";
    let v = expect_id st in
    expect_punct st ",";
    let base = parse_expression st in
    expect_punct st ")";
    expect_punct st ";";
    s (Ast.Spsm (v, base))
  | Lexer.KW k when is_type_kw k || k = "struct" || k = "volatile" || k = "const" ->
    let d = parse_decl_stmt st in
    expect_punct st ";";
    d
  | _ ->
    let e = parse_expression st in
    expect_punct st ";";
    s (Ast.Sexpr e)

and parse_decl_stmt st =
  let pos = line st in
  let volatile = match peek st with
    | Lexer.KW "volatile" -> advance st; true
    | Lexer.KW "const" -> advance st; false
    | _ -> false
  in
  let base = base_ty st in
  let rec go acc =
    let name, ty = declarator st base in
    let init =
      if accept_punct st "=" then
        if peek st = Lexer.PUNCT "{" then Some (Ast.Ilist (parse_initlist st))
        else Some (Ast.Iexpr (parse_assign st))
      else None
    in
    let d = { Ast.d_ty = ty; d_name = name; d_init = init; d_volatile = volatile; d_pos = pos } in
    if accept_punct st "," then go (d :: acc) else List.rev (d :: acc)
  in
  { Ast.snode = Ast.Sdecl (go []); spos = pos }

and parse_initlist st =
  expect_punct st "{";
  if accept_punct st "}" then []
  else begin
    let rec go acc =
      let e = parse_assign st in
      if accept_punct st "," then
        if peek st = Lexer.PUNCT "}" then (advance st; List.rev (e :: acc))
        else go (e :: acc)
      else begin
        expect_punct st "}";
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Top level. *)

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc
    else begin
      let pos = line st in
      let volatile = match peek st with
        | Lexer.KW "volatile" -> advance st; true
        | Lexer.KW "const" -> advance st; false
        | _ -> false
      in
      (* struct definition: struct S { fields };  *)
      if
        peek st = Lexer.KW "struct"
        && (match (peek2 st, st.toks.(min (st.pos + 2) (Array.length st.toks - 1))) with
           | Lexer.ID _, (Lexer.PUNCT "{", _) -> true
           | _ -> false)
      then begin
        advance st (* struct *);
        let sname = expect_id st in
        expect_punct st "{";
        let fields = ref [] in
        while peek st <> Lexer.PUNCT "}" do
          let fbase = base_ty st in
          let fname, fty = declarator st fbase in
          expect_punct st ";";
          fields := (fty, fname) :: !fields
        done;
        expect_punct st "}";
        expect_punct st ";";
        go
          (Ast.Tstructdef { sd_name = sname; sd_fields = List.rev !fields; sd_pos = pos }
          :: acc)
      end
      else begin
      let base = base_ty st in
      let stars = ref 0 in
      while accept_punct st "*" do incr stars done;
      let name = expect_id st in
      let ty0 = ref base in
      for _ = 1 to !stars do ty0 := Tptr !ty0 done;
      if accept_punct st "(" then begin
        let params =
          if accept_punct st ")" then []
          else if peek st = Lexer.KW "void" && peek2 st = Lexer.PUNCT ")" then begin
            advance st;
            advance st;
            []
          end
          else begin
            let rec gop acc =
              let pbase = base_ty st in
              let pname, pty = declarator st pbase in
              let pty = Types.decay pty in
              if accept_punct st "," then gop ((pty, pname) :: acc)
              else begin
                expect_punct st ")";
                List.rev ((pty, pname) :: acc)
              end
            in
            gop []
          end
        in
        let body = parse_stmt st in
        go
          (Ast.Tfunc
             { f_ret = !ty0; f_name = name; f_params = params; f_body = body; f_pos = pos }
          :: acc)
      end
      else begin
        let rec dims ty =
          if accept_punct st "[" then begin
            let n =
              match next st with
              | Lexer.INT v -> v
              | t -> fail st "expected array size, got %S" (Lexer.token_to_string t)
            in
            expect_punct st "]";
            Types.Tarr (dims ty, n)
          end
          else ty
        in
        let init_of () =
          if accept_punct st "=" then
            if peek st = Lexer.PUNCT "{" then Some (Ast.Ilist (parse_initlist st))
            else Some (Ast.Iexpr (parse_assign st))
          else None
        in
        let first =
          let dty = dims !ty0 in
          let dinit = init_of () in
          { Ast.d_ty = dty; d_name = name; d_init = dinit; d_volatile = volatile; d_pos = pos }
        in
        let rec gog acc =
          if accept_punct st "," then begin
            let dname, dty = declarator st base in
            let d =
              let dinit = init_of () in
              {
                Ast.d_ty = dty;
                d_name = dname;
                d_init = dinit;
                d_volatile = volatile;
                d_pos = pos;
              }
            in
            gog (d :: acc)
          end
          else begin
            expect_punct st ";";
            List.rev acc
          end
        in
        let ds = gog [ first ] in
        go (List.rev_append (List.rev_map (fun d -> Ast.Tglobal d) ds) acc)
      end
      end
    end
  in
  go []

let parse_expr src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let e = parse_expression st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail st "trailing tokens after expression: %S" (Lexer.token_to_string t));
  e
