(** Recursive-descent parser for XMTC (paper §II-A): C with the [spawn]
    statement, the [$] thread identifier, and the [ps]/[psm] prefix-sum
    statements. *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Ast.program

(** Parse a single expression (used by tests). *)
val parse_expr : string -> Ast.expr
