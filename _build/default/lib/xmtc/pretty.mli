(** Pretty-printer from the typed AST back to XMTC source.

    Used to expose the pre-pass (outlining, clustering) as the
    source-to-source XMTC-to-XMTC transformation the paper describes for
    its CIL-based pre-pass, and by golden tests on those passes. *)

val expr_to_string : Tast.expr -> string
val stmt_to_string : ?indent:int -> Tast.stmt -> string
val func_to_string : Tast.func -> string
val program_to_string : Tast.program -> string
