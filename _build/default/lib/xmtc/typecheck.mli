(** Typechecker: resolves names, checks and inserts conversions, enforces
    the XMTC static rules of the paper, and produces the typed AST.

    XMTC-specific rules enforced here:
    - [$], [ps] and [psm] may appear only inside a spawn block (§II-A);
    - a [ps] base must be a global [int] variable; such variables are
      allocated to the global PS register file, of which only
      [Reg.num_globals - 1] exist (§II-A: "a limited number of global
      registers");
    - function calls inside spawn blocks are rejected — the parallel
      cactus stack is not in the public release (§IV-E); builtins that
      expand inline are allowed;
    - [return], and [break]/[continue] that would exit the spawn block,
      are rejected (virtual threads cannot transfer control out);
    - thread-local variables cannot have their address taken and cannot be
      arrays: virtual threads have no stack, only registers (§IV-D);
    - [malloc] is serial-only (§IV-D);
    - nested spawns are accepted and marked for serialization (§IV-E). *)

exception Error of { line : int; msg : string }

val check : Ast.program -> Tast.program

(** [parse >> check] in one step. *)
val program_of_source : string -> Tast.program
