(** The XMTC language front end (paper §II-A): lexer, parser, typed AST and
    typechecker for the SPMD C extension with [spawn], [$], [ps] and [psm],
    plus a pretty-printer used by the source-to-source pre-pass. *)

module Types = Types
module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Tast = Tast
module Typecheck = Typecheck
module Pretty = Pretty
