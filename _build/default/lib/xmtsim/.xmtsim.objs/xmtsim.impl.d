lib/xmtsim/xmtsim.ml: Config Floorplan Funcmodel Functional_mode Machine Mem Phase_sampling Plugin Power Prefetch_buffer Profiler Stats Tags Thermal Trace
