lib/xmtsim/config.ml: List Printf String
