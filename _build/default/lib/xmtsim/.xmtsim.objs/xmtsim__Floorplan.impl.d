lib/xmtsim/floorplan.ml: Array Buffer Printf
