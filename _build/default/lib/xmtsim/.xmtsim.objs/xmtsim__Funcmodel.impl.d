lib/xmtsim/funcmodel.ml: Array Bool Char Float Isa Printf String
