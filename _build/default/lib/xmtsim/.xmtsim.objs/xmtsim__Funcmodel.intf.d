lib/xmtsim/funcmodel.mli: Isa
