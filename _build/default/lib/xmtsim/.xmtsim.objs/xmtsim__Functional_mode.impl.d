lib/xmtsim/functional_mode.ml: Array Buffer Funcmodel Hashtbl Isa Machine Mem Printf Stats
