lib/xmtsim/functional_mode.mli: Isa Machine Stats
