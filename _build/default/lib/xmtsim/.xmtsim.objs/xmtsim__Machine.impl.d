lib/xmtsim/machine.ml: Array Buffer Config Desim Fun Funcmodel Hashtbl Int64 Isa List Marshal Mem Plugin Prefetch_buffer Printf Queue Stats Tags
