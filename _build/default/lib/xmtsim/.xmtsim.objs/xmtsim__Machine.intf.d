lib/xmtsim/machine.mli: Config Isa Mem Plugin Stats
