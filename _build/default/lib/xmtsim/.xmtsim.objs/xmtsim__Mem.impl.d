lib/xmtsim/mem.ml: Array Buffer Char Isa Printf
