lib/xmtsim/mem.mli: Isa
