lib/xmtsim/phase_sampling.ml: Array Config Functional_mode Isa List Machine Stats
