lib/xmtsim/phase_sampling.mli: Config Isa
