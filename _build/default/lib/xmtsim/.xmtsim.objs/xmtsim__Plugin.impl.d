lib/xmtsim/plugin.ml: Buffer Hashtbl Isa List Printf String
