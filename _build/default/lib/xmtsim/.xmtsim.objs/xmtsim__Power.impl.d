lib/xmtsim/power.ml: Array Config List Machine Printf Stats
