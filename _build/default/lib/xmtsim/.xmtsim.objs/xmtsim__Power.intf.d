lib/xmtsim/power.mli: Machine
