lib/xmtsim/prefetch_buffer.ml: Config Isa List
