lib/xmtsim/prefetch_buffer.mli: Config Isa
