lib/xmtsim/profiler.ml: List Machine Plugin Stats
