lib/xmtsim/stats.ml: Array Buffer Isa List Printf
