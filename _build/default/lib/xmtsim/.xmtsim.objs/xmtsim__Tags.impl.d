lib/xmtsim/tags.ml: Array
