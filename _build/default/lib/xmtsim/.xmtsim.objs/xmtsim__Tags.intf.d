lib/xmtsim/tags.mli:
