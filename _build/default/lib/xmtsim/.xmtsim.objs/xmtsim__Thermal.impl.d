lib/xmtsim/thermal.ml: Array List String
