lib/xmtsim/thermal.mli:
