lib/xmtsim/trace.ml: Isa List Machine Printf
