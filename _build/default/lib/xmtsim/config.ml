(** Simulated XMT configuration (paper §III: "XMTSim is highly configurable
    and provides control over many parameters including number of TCUs, the
    cache size, DRAM bandwidth and relative clock frequencies").

    All latencies are in cycles of the respective component's clock domain;
    all clock domains default to period 1 (same frequency). *)

type prefetch_policy = Fifo | Lru

type t = {
  name : string;
  (* topology *)
  num_clusters : int;
  tcus_per_cluster : int;
  (* per-cluster shared functional units *)
  mdus_per_cluster : int;
  fpus_per_cluster : int;
  mul_latency : int;
  div_latency : int;
  fpu_latency : int;
  sqrt_latency : int;
  (* TCU prefetch buffers *)
  prefetch_buffer_size : int;  (** 0 disables prefetch buffering *)
  prefetch_policy : prefetch_policy;
  (* cluster read-only cache *)
  rocache_lines : int;
  rocache_hit_latency : int;
  (* interconnection network *)
  icn_latency : int;  (** one-way traversal latency (hops) *)
  icn_jitter : int;  (** max extra cycles of seeded arbitration jitter *)
  cluster_inject_width : int;  (** packets a cluster may inject per cycle *)
  cluster_return_width : int;  (** replies a cluster may accept per cycle *)
  (* shared L1 cache modules *)
  num_cache_modules : int;
  cache_lines : int;  (** lines per module *)
  cache_assoc : int;
  cache_line_words : int;
  cache_hit_latency : int;
  cache_ports : int;  (** requests a module accepts per cycle *)
  (* DRAM *)
  dram_latency : int;
  dram_bandwidth : int;  (** requests serviced per cycle, all channels *)
  (* master TCU *)
  master_cache_lines : int;
  master_cache_hit_latency : int;
  (* prefix-sum unit *)
  ps_latency : int;
  (* spawn/join *)
  spawn_overhead : int;  (** broadcast + TCU activation cycles *)
  join_overhead : int;
  (* clock domain periods (DVFS initial values) *)
  cluster_period : int;
  icn_period : int;
  cache_period : int;
  dram_period : int;
  (* misc *)
  seed : int;  (** arbitration jitter seed *)
  max_cycles : int;  (** simulation safety stop *)
}

let num_tcus c = c.num_clusters * c.tcus_per_cluster

(** The 64-TCU FPGA prototype configuration (paper §II, [13,14]): 8
    clusters of 8 TCUs, 8 shared cache modules. *)
let fpga64 =
  {
    name = "fpga64";
    num_clusters = 8;
    tcus_per_cluster = 8;
    mdus_per_cluster = 1;
    fpus_per_cluster = 1;
    mul_latency = 4;
    div_latency = 12;
    fpu_latency = 6;
    sqrt_latency = 16;
    prefetch_buffer_size = 4;
    prefetch_policy = Fifo;
    rocache_lines = 64;
    rocache_hit_latency = 1;
    icn_latency = 6;
    icn_jitter = 2;
    cluster_inject_width = 1;
    cluster_return_width = 2;
    num_cache_modules = 8;
    cache_lines = 256;
    cache_assoc = 2;
    cache_line_words = 4;
    cache_hit_latency = 2;
    cache_ports = 1;
    dram_latency = 60;
    dram_bandwidth = 1;
    master_cache_lines = 256;
    master_cache_hit_latency = 1;
    ps_latency = 4;
    spawn_overhead = 12;
    join_overhead = 6;
    cluster_period = 1;
    icn_period = 1;
    cache_period = 1;
    dram_period = 1;
    seed = 42;
    max_cycles = 1_000_000_000;
  }

(** The envisioned 1024-TCU XMT chip (paper §III-A): 64 clusters of 16
    TCUs; shared L1 ~30 cycles away (§IV-C). *)
let chip1024 =
  {
    fpga64 with
    name = "chip1024";
    num_clusters = 64;
    tcus_per_cluster = 16;
    mdus_per_cluster = 2;
    fpus_per_cluster = 2;
    num_cache_modules = 64;
    cache_lines = 512;
    icn_latency = 12;
    dram_latency = 100;
    dram_bandwidth = 4;
    ps_latency = 6;
    spawn_overhead = 20;
    join_overhead = 10;
  }

(** Tiny configuration for unit tests: 2 clusters of 2 TCUs. *)
let tiny =
  {
    fpga64 with
    name = "tiny";
    num_clusters = 2;
    tcus_per_cluster = 2;
    num_cache_modules = 2;
    icn_latency = 3;
    dram_latency = 20;
    spawn_overhead = 4;
    join_overhead = 2;
  }

let presets = [ ("fpga64", fpga64); ("chip1024", chip1024); ("tiny", tiny) ]

exception Bad_config of string

(** Parse "key=value" overrides, e.g. ["tcus_per_cluster=4"]. *)
let with_override (c : t) key value =
  let iv () =
    match int_of_string_opt value with
    | Some v -> v
    | None -> raise (Bad_config (Printf.sprintf "%s: expected integer, got %S" key value))
  in
  match key with
  | "num_clusters" -> { c with num_clusters = iv () }
  | "tcus_per_cluster" -> { c with tcus_per_cluster = iv () }
  | "mdus_per_cluster" -> { c with mdus_per_cluster = iv () }
  | "fpus_per_cluster" -> { c with fpus_per_cluster = iv () }
  | "mul_latency" -> { c with mul_latency = iv () }
  | "div_latency" -> { c with div_latency = iv () }
  | "fpu_latency" -> { c with fpu_latency = iv () }
  | "sqrt_latency" -> { c with sqrt_latency = iv () }
  | "prefetch_buffer_size" -> { c with prefetch_buffer_size = iv () }
  | "prefetch_policy" -> (
    match value with
    | "fifo" -> { c with prefetch_policy = Fifo }
    | "lru" -> { c with prefetch_policy = Lru }
    | _ -> raise (Bad_config "prefetch_policy: fifo|lru"))
  | "rocache_lines" -> { c with rocache_lines = iv () }
  | "icn_latency" -> { c with icn_latency = iv () }
  | "icn_jitter" -> { c with icn_jitter = iv () }
  | "cluster_inject_width" -> { c with cluster_inject_width = iv () }
  | "cluster_return_width" -> { c with cluster_return_width = iv () }
  | "num_cache_modules" -> { c with num_cache_modules = iv () }
  | "cache_lines" -> { c with cache_lines = iv () }
  | "cache_assoc" -> { c with cache_assoc = iv () }
  | "cache_line_words" -> { c with cache_line_words = iv () }
  | "cache_hit_latency" -> { c with cache_hit_latency = iv () }
  | "cache_ports" -> { c with cache_ports = iv () }
  | "dram_latency" -> { c with dram_latency = iv () }
  | "dram_bandwidth" -> { c with dram_bandwidth = iv () }
  | "master_cache_lines" -> { c with master_cache_lines = iv () }
  | "ps_latency" -> { c with ps_latency = iv () }
  | "spawn_overhead" -> { c with spawn_overhead = iv () }
  | "join_overhead" -> { c with join_overhead = iv () }
  | "cluster_period" -> { c with cluster_period = iv () }
  | "icn_period" -> { c with icn_period = iv () }
  | "cache_period" -> { c with cache_period = iv () }
  | "dram_period" -> { c with dram_period = iv () }
  | "seed" -> { c with seed = iv () }
  | "max_cycles" -> { c with max_cycles = iv () }
  | other -> raise (Bad_config ("unknown configuration key " ^ other))

(** Apply a list of "key=value" strings. *)
let with_overrides c kvs =
  List.fold_left
    (fun c kv ->
      match String.index_opt kv '=' with
      | Some i ->
        with_override c (String.sub kv 0 i)
          (String.sub kv (i + 1) (String.length kv - i - 1))
      | None -> raise (Bad_config ("expected key=value, got " ^ kv)))
    c kvs
