(** ASCII floorplan visualization (paper §III-E).

    Displays per-cluster data (activity, power, temperature...) on a grid
    approximating the XMT floorplan, in text.  Designed to be driven from
    an activity plug-in to animate statistics over a run, like the
    floorplan visualization package of the XMT software release. *)

(* shade characters from cold to hot *)
let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let shade ~lo ~hi v =
  if hi <= lo then shades.(0)
  else begin
    let t = (v -. lo) /. (hi -. lo) in
    let i = int_of_float (t *. float_of_int (Array.length shades - 1)) in
    shades.(max 0 (min (Array.length shades - 1) i))
  end

(** Render per-cluster values as a [w]-wide grid heat map. *)
let render ?(title = "") ~grid_w values =
  let n = Array.length values in
  let lo = Array.fold_left min infinity values in
  let hi = Array.fold_left max neg_infinity values in
  let b = Buffer.create 256 in
  if title <> "" then
    Buffer.add_string b (Printf.sprintf "%s  [%.2f .. %.2f]\n" title lo hi);
  let h = (n + grid_w - 1) / grid_w in
  for y = 0 to h - 1 do
    Buffer.add_string b "  |";
    for x = 0 to grid_w - 1 do
      let i = (y * grid_w) + x in
      if i < n then begin
        Buffer.add_char b (shade ~lo ~hi values.(i));
        Buffer.add_char b (shade ~lo ~hi values.(i))
      end
      else Buffer.add_string b "  "
    done;
    Buffer.add_string b "|\n"
  done;
  Buffer.contents b

(** Render with numeric cells instead of shades. *)
let render_numeric ?(title = "") ~grid_w values =
  let n = Array.length values in
  let b = Buffer.create 256 in
  if title <> "" then Buffer.add_string b (title ^ "\n");
  let h = (n + grid_w - 1) / grid_w in
  for y = 0 to h - 1 do
    Buffer.add_string b "  ";
    for x = 0 to grid_w - 1 do
      let i = (y * grid_w) + x in
      if i < n then Buffer.add_string b (Printf.sprintf "%7.1f" values.(i))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
