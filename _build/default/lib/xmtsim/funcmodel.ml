module I = Isa.Instr
module V = Isa.Value

type ctx = { regs : int array; fregs : float array; mutable pc : int }

let make_ctx () = { regs = Array.make 32 0; fregs = Array.make 32 0.0; pc = 0 }

let copy_regs ~src ~dst =
  Array.blit src.regs 0 dst.regs 0 32;
  Array.blit src.fregs 0 dst.fregs 0 32

exception Runtime_error of { pc : int; msg : string }

let err pc fmt = Printf.ksprintf (fun msg -> raise (Runtime_error { pc; msg })) fmt

type issue =
  | Done
  | Load of { dst : [ `I of int | `F of int ]; addr : int; ro : bool }
  | Store of { addr : int; value : Isa.Value.t; nb : bool }
  | Psm of { dst : int; addr : int; inc : int }
  | Prefetch of { addr : int }
  | Ps of { dst : int; g : int; inc : int }
  | Spawn of { lo : int; hi : int }
  | Join
  | Chkid of { id : int }
  | Mfg of { dst : int; g : int }
  | Mtg of { g : int; src : int }
  | Fence
  | Halt
  | Output of string

let issue (img : Isa.Program.image) ctx ~read_str : issue =
  let pc = ctx.pc in
  let n = Array.length img.Isa.Program.instrs in
  if pc < 0 || pc >= n then err pc "program counter out of range";
  let ins = img.Isa.Program.instrs.(pc) in
  let tgt = img.Isa.Program.targets.(pc) in
  let r i = if i = 0 then 0 else ctx.regs.(i) in
  let w i v = if i <> 0 then ctx.regs.(i) <- V.wrap32 v in
  let f i = ctx.fregs.(i) in
  let wf i v = ctx.fregs.(i) <- v in
  let next () = ctx.pc <- pc + 1 in
  let jump t = if t < 0 then err pc "unresolved branch target" else ctx.pc <- t in
  match ins with
  | I.Alu (op, rd, rs, rt) ->
    let a = r rs and b = r rt in
    let v =
      match op with
      | I.Add -> a + b
      | I.Sub -> a - b
      | I.And -> a land b
      | I.Or -> a lor b
      | I.Xor -> a lxor b
      | I.Nor -> lnot (a lor b)
      | I.Slt -> Bool.to_int (a < b)
      | I.Sltu -> Bool.to_int (a land 0xFFFFFFFF < b land 0xFFFFFFFF)
    in
    w rd v;
    next ();
    Done
  | I.Alui (op, rd, rs, imm) ->
    let a = r rs in
    let v =
      match op with
      | I.Addi -> a + imm
      | I.Andi -> a land imm
      | I.Ori -> a lor imm
      | I.Xori -> a lxor imm
      | I.Slti -> Bool.to_int (a < imm)
    in
    w rd v;
    next ();
    Done
  | I.Li (rd, imm) ->
    w rd imm;
    next ();
    Done
  | I.La (rd, _) ->
    if tgt < 0 then err pc "unresolved la";
    w rd tgt;
    next ();
    Done
  | I.Sft (op, rd, rs, rt) ->
    let a = r rs and s = r rt land 31 in
    let v =
      match op with
      | I.Sll -> a lsl s
      | I.Srl -> (a land 0xFFFFFFFF) lsr s
      | I.Sra -> a asr s
    in
    w rd v;
    next ();
    Done
  | I.Sfti (op, rd, rs, imm) ->
    let a = r rs and s = imm land 31 in
    let v =
      match op with
      | I.Sll -> a lsl s
      | I.Srl -> (a land 0xFFFFFFFF) lsr s
      | I.Sra -> a asr s
    in
    w rd v;
    next ();
    Done
  | I.Mdu (op, rd, rs, rt) ->
    let a = r rs and b = r rt in
    let v =
      match op with
      | I.Mul -> a * b
      | I.Div -> if b = 0 then err pc "division by zero" else a / b
      | I.Rem -> if b = 0 then err pc "division by zero" else a mod b
    in
    w rd v;
    next ();
    Done
  | I.Fpu (op, fd, fs, ft) ->
    let a = f fs and b = f ft in
    let v =
      match op with
      | I.Fadd -> a +. b
      | I.Fsub -> a -. b
      | I.Fmul -> a *. b
      | I.Fdiv -> a /. b
    in
    wf fd v;
    next ();
    Done
  | I.Fpu1 (op, fd, fs) ->
    let a = f fs in
    let v =
      match op with
      | I.Fneg -> -.a
      | I.Fabs -> Float.abs a
      | I.Fsqrt -> sqrt a
      | I.Fmov -> a
    in
    wf fd v;
    next ();
    Done
  | I.Fcmp (op, rd, fs, ft) ->
    let a = f fs and b = f ft in
    let v =
      match op with I.Feq -> a = b | I.Flt -> a < b | I.Fle -> a <= b
    in
    w rd (Bool.to_int v);
    next ();
    Done
  | I.Cvt_i2f (fd, rs) ->
    wf fd (float_of_int (r rs));
    next ();
    Done
  | I.Cvt_f2i (rd, fs) ->
    w rd (int_of_float (f fs));
    next ();
    Done
  | I.Fli (fd, x) ->
    wf fd x;
    next ();
    Done
  | I.Lw (rt, off, rs) ->
    next ();
    Load { dst = `I rt; addr = r rs + off; ro = false }
  | I.Lwro (rt, off, rs) ->
    next ();
    Load { dst = `I rt; addr = r rs + off; ro = true }
  | I.Flw (ft, off, rs) ->
    next ();
    Load { dst = `F ft; addr = r rs + off; ro = false }
  | I.Sw (rt, off, rs) ->
    next ();
    Store { addr = r rs + off; value = V.int (r rt); nb = false }
  | I.Swnb (rt, off, rs) ->
    next ();
    Store { addr = r rs + off; value = V.int (r rt); nb = true }
  | I.Fsw (ft, off, rs) ->
    next ();
    Store { addr = r rs + off; value = V.flt (f ft); nb = false }
  | I.Pref (off, rs) ->
    next ();
    Prefetch { addr = r rs + off }
  | I.Psm (rd, off, rs) ->
    next ();
    Psm { dst = rd; addr = r rs + off; inc = r rd }
  | I.Br (op, rs, rt, _) ->
    let taken = match op with I.Beq -> r rs = r rt | I.Bne -> r rs <> r rt in
    if taken then jump tgt else next ();
    Done
  | I.Brz (op, rs, _) ->
    let a = r rs in
    let taken =
      match op with
      | I.Blez -> a <= 0
      | I.Bgtz -> a > 0
      | I.Bltz -> a < 0
      | I.Bgez -> a >= 0
      | I.Beqz -> a = 0
      | I.Bnez -> a <> 0
    in
    if taken then jump tgt else next ();
    Done
  | I.J _ ->
    jump tgt;
    Done
  | I.Jal _ ->
    w Isa.Reg.ra (pc + 1);
    jump tgt;
    Done
  | I.Jr rs ->
    ctx.pc <- r rs;
    Done
  | I.Spawn (rl, rh) ->
    next ();
    Spawn { lo = r rl; hi = r rh }
  | I.Join ->
    next ();
    Join
  | I.Ps (rd, g) ->
    next ();
    Ps { dst = rd; g; inc = r rd }
  | I.Chkid rd ->
    next ();
    Chkid { id = r rd }
  | I.Mfg (rd, g) ->
    next ();
    Mfg { dst = rd; g }
  | I.Mtg (g, rs) ->
    next ();
    Mtg { g; src = r rs }
  | I.Fence ->
    next ();
    Fence
  | I.Sys (op, reg) ->
    next ();
    let s =
      match op with
      | I.Print_int -> string_of_int (r reg)
      | I.Print_float -> Printf.sprintf "%g" (f reg)
      | I.Print_char -> String.make 1 (Char.chr (r reg land 0xFF))
      | I.Print_str -> read_str (r reg)
    in
    Output s
  | I.Halt ->
    next ();
    Halt

let complete_load ctx dst v =
  match dst with
  | `I r -> if r <> 0 then ctx.regs.(r) <- Isa.Value.to_int v
  | `F r -> ctx.fregs.(r) <- Isa.Value.to_flt v
