(** The functional model (paper Fig. 3): operational definition of every
    instruction plus the register state of one hardware context.

    The simulator is execution-driven: the cycle-accurate model asks the
    functional model to {e issue} the instruction at the context's PC; the
    result describes what must happen in simulated time (a memory round
    trip, a prefix-sum, a spawn...).  Register effects of pure instructions
    are applied immediately; memory effects are applied by whoever owns the
    memory timing (the cache module in cycle mode, the interpreter loop in
    functional mode), keeping relaxed-consistency outcomes faithful. *)

type ctx = {
  regs : int array;  (** 32 integer registers; r0 hardwired to 0 *)
  fregs : float array;
  mutable pc : int;
}

val make_ctx : unit -> ctx

(** Copy all registers of [src] into [dst] — the broadcast of master
    registers to TCUs at spawn (§IV-B). *)
val copy_regs : src:ctx -> dst:ctx -> unit

exception Runtime_error of { pc : int; msg : string }

type issue =
  | Done  (** pure op; registers and pc updated *)
  | Load of { dst : [ `I of int | `F of int ]; addr : int; ro : bool }
  | Store of { addr : int; value : Isa.Value.t; nb : bool }
  | Psm of { dst : int; addr : int; inc : int }
  | Prefetch of { addr : int }
  | Ps of { dst : int; g : int; inc : int }
  | Spawn of { lo : int; hi : int }
  | Join
  | Chkid of { id : int }
  | Mfg of { dst : int; g : int }
  | Mtg of { g : int; src : int }
  | Fence
  | Halt
  | Output of string  (** sys print; already formatted *)

(** Execute the instruction at [ctx.pc].  Advances [pc] (to the branch
    target for taken branches).  [read_str] is needed only by [pstr]. *)
val issue : Isa.Program.image -> ctx -> read_str:(int -> string) -> issue

(** Apply a completed load's value to the destination register. *)
val complete_load : ctx -> [ `I of int | `F of int ] -> Isa.Value.t -> unit
