exception Fault of string

let stack_top = 0x400000
let stack_bytes = 0x100000 (* 1 MiB master stack *)
let stack_base = stack_top - stack_bytes

type t = {
  data_base : int;
  mutable data : Isa.Value.t array;  (* indexed by (addr - data_base)/4 *)
  mutable data_len : int;  (* words in use (highest touched) *)
  stack : Isa.Value.t array;  (* indexed by (addr - stack_base)/4 *)
}

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let load (img : Isa.Program.image) =
  let n = Array.length img.Isa.Program.data_words in
  let data = Array.make (max 64 (2 * n)) Isa.Value.zero in
  Array.blit img.Isa.Program.data_words 0 data 0 n;
  {
    data_base = img.Isa.Program.data_base;
    data;
    data_len = n;
    stack = Array.make (stack_bytes / 4) Isa.Value.zero;
  }

let grow t want =
  let cap = Array.length t.data in
  if want > cap then begin
    let ncap = max want (2 * cap) in
    if t.data_base + (4 * ncap) > stack_base then
      fault "data/heap region collides with the stack (%d words)" ncap;
    let narr = Array.make ncap Isa.Value.zero in
    Array.blit t.data 0 narr 0 t.data_len;
    t.data <- narr
  end

let locate t addr =
  if addr land 3 <> 0 then fault "unaligned access at 0x%x" addr;
  if addr >= stack_base && addr < stack_top then `Stack ((addr - stack_base) / 4)
  else if addr >= t.data_base then begin
    let idx = (addr - t.data_base) / 4 in
    if t.data_base + (4 * idx) >= stack_base then
      fault "access beyond memory at 0x%x" addr;
    `Data idx
  end
  else fault "access to unmapped address 0x%x" addr

let read t addr =
  match locate t addr with
  | `Stack i -> t.stack.(i)
  | `Data i -> if i < t.data_len then t.data.(i) else Isa.Value.zero

let write t addr v =
  match locate t addr with
  | `Stack i -> t.stack.(i) <- v
  | `Data i ->
    grow t (i + 1);
    if i >= t.data_len then t.data_len <- i + 1;
    t.data.(i) <- v

let fetch_add t addr inc =
  let old = Isa.Value.to_int (read t addr) in
  write t addr (Isa.Value.int (old + inc));
  old

let read_string t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    match Isa.Value.to_int (read t a) with
    | 0 -> Buffer.contents buf
    | c when Buffer.length buf > 65536 -> fault "unterminated string at 0x%x" c
    | c ->
      Buffer.add_char buf (Char.chr (c land 0xFF));
      go (a + 4)
  in
  go addr

let data_words t = t.data_len

let snapshot t =
  {
    data_base = t.data_base;
    data = Array.copy t.data;
    data_len = t.data_len;
    stack = Array.copy t.stack;
  }

let restore t snap =
  t.data <- Array.copy snap.data;
  t.data_len <- snap.data_len;
  Array.blit snap.stack 0 t.stack 0 (Array.length t.stack)
