(** The simulated shared memory: word-granularity cells holding typed
    values (transaction-level accuracy, §III-A).

    Two regions: the data/heap region growing up from the image's data
    base, and the Master TCU's stack region just below {!stack_top}.
    Cells are auto-zeroed; accesses outside both regions raise. *)

type t

exception Fault of string

val stack_top : int
val stack_bytes : int

(** Create from a resolved image (loads the initial data segment). *)
val load : Isa.Program.image -> t

val read : t -> int -> Isa.Value.t
val write : t -> int -> Isa.Value.t -> unit

(** Atomic fetch-and-add for [psm]: returns the old value. *)
val fetch_add : t -> int -> int -> int

(** Read a NUL-terminated string of character codes. *)
val read_string : t -> int -> string

(** Words currently allocated in the data region (for bounds reporting). *)
val data_words : t -> int

(** Deep snapshot for checkpointing. *)
val snapshot : t -> t

val restore : t -> t -> unit
