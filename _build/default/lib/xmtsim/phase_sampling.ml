type result = {
  estimated_cycles : int;
  total_instructions : int;
  intervals : int;
  phases : int;
  samples_taken : int;
  sampled_instructions : int;
  sampled_cycles : int;
}

exception Error of string

let buckets = 64

(* L1 distance between normalized pc histograms; ranges over [0, 2]. *)
let distance a b =
  let ta = Array.fold_left ( + ) 0 a and tb = Array.fold_left ( + ) 0 b in
  if ta = 0 || tb = 0 then 2.0
  else begin
    let d = ref 0.0 in
    for i = 0 to buckets - 1 do
      d :=
        !d
        +. abs_float
             ((float_of_int a.(i) /. float_of_int ta)
             -. (float_of_int b.(i) /. float_of_int tb))
    done;
    !d
  end

type phase = {
  fingerprint : int array;  (* the leader interval's histogram *)
  mutable samples : int;
  mutable cycles : int;
  mutable instrs : int;
}

(* Cycle-simulate from [snap] until ~[instr_budget] instructions execute;
   returns (cycles, instructions). *)
let cycle_sample ~config ~image ~snap ~instr_budget =
  let m = Machine.create ~config image in
  Machine.restore m snap;
  let start_instrs = Stats.total_instrs (Machine.stats m) in
  let executed () = Stats.total_instrs (Machine.stats m) - start_instrs in
  let rec go () =
    let r = Machine.run ~max_cycles:2048 m in
    if r.Machine.halted || executed () >= instr_budget then ()
    else if Machine.cycles m > 100 * instr_budget then
      raise (Error "cycle sample made no progress")
    else go ()
  in
  go ();
  (Machine.cycles m, max 1 (executed ()))

let estimate ?(config = Config.fpga64) ?(interval = 20_000)
    ?(samples_per_phase = 1) ?(similarity = 0.5) image =
  let st = Functional_mode.init image in
  let phases : phase list ref = ref [] in
  let estimated = ref 0.0 in
  let intervals = ref 0 in
  let samples_taken = ref 0 in
  let sampled_instructions = ref 0 in
  let sampled_cycles = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let hist = Array.make buckets 0 in
    let snap = Functional_mode.snapshot st in
    let before = Functional_mode.instructions st in
    let status =
      Functional_mode.advance st ~budget:interval ~on_instr:(fun ~pc ->
          let b = pc * buckets / max 1 (Array.length image.Isa.Program.instrs) in
          let b = min (buckets - 1) (max 0 b) in
          hist.(b) <- hist.(b) + 1)
    in
    let ran = Functional_mode.instructions st - before in
    if ran > 0 then begin
      incr intervals;
      (* find or create this interval's phase *)
      let phase =
        match
          List.find_opt (fun p -> distance p.fingerprint hist < similarity) !phases
        with
        | Some p -> p
        | None ->
          let p = { fingerprint = hist; samples = 0; cycles = 0; instrs = 0 } in
          phases := p :: !phases;
          p
      in
      if phase.samples < samples_per_phase then begin
        let cycles, instrs = cycle_sample ~config ~image ~snap ~instr_budget:ran in
        phase.samples <- phase.samples + 1;
        phase.cycles <- phase.cycles + cycles;
        phase.instrs <- phase.instrs + instrs;
        incr samples_taken;
        sampled_instructions := !sampled_instructions + instrs;
        sampled_cycles := !sampled_cycles + cycles;
        estimated :=
          !estimated
          +. (float_of_int ran *. float_of_int cycles /. float_of_int instrs)
      end
      else begin
        let cpi = float_of_int phase.cycles /. float_of_int phase.instrs in
        estimated := !estimated +. (float_of_int ran *. cpi)
      end
    end;
    if status = `Halted then continue_ := false
  done;
  {
    estimated_cycles = int_of_float !estimated;
    total_instructions = Functional_mode.instructions st;
    intervals = !intervals;
    phases = List.length !phases;
    samples_taken = !samples_taken;
    sampled_instructions = !sampled_instructions;
    sampled_cycles = !sampled_cycles;
  }
