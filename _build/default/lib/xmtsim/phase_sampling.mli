(** Phase sampling (paper §III-F, "Features under Development"; ref [38],
    SimPoint).

    Programs with long execution times consist of phases — sets of
    intervals with similar behaviour.  Instead of cycle-simulating the
    whole program, this module:

    + fast-forwards through the program in the functional mode, cutting it
      into intervals of ~[interval] instructions (at serial boundaries)
      and fingerprinting each with a basic-block-vector-style histogram of
      executed pcs;
    + clusters interval fingerprints into phases (greedy leader
      clustering, the lightweight stand-in for SimPoint's k-means);
    + cycle-simulates only the first [samples_per_phase] intervals of each
      phase — the cycle machine takes over from the functional state via
      {!Machine.make_snapshot} — and charges the remaining intervals at
      their phase's measured CPI.

    The result is an estimated total cycle count at a fraction of the
    cycle-accurate simulation work. *)

type result = {
  estimated_cycles : int;
  total_instructions : int;
  intervals : int;
  phases : int;
  samples_taken : int;
  sampled_instructions : int;  (** instructions actually cycle-simulated *)
  sampled_cycles : int;
}

exception Error of string

(** [estimate ?config ?interval ?samples_per_phase ?similarity image].
    [interval] is the fast-forward quantum in instructions (default
    20_000); [samples_per_phase] how many intervals of each phase to
    cycle-simulate (default 1); [similarity] the fingerprint-distance
    threshold in [0,2] below which two intervals share a phase (default
    0.5; smaller = more phases). *)
val estimate :
  ?config:Config.t ->
  ?interval:int ->
  ?samples_per_phase:int ->
  ?similarity:float ->
  Isa.Program.image ->
  result
