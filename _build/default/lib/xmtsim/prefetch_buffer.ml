type status =
  | In_flight_st of [ `I of int | `F of int ] option
  | Ready_st of Isa.Value.t

type entry = {
  addr : int;
  mutable status : status;
  mutable stamp : int;  (* FIFO: allocation order; LRU: last touch *)
}

type t = {
  size : int;
  policy : Config.prefetch_policy;
  mutable entries : entry list;
  mutable tick : int;
  mutable evictions : int;
}

type lookup = Hit of Isa.Value.t | In_flight | Miss

let create ~size ~policy = { size; policy; entries = []; tick = 0; evictions = 0 }

let find t addr = List.find_opt (fun e -> e.addr = addr) t.entries

let evict_one t =
  match t.entries with
  | [] -> ()
  | _ ->
    let victim =
      List.fold_left
        (fun acc e -> if e.stamp < acc.stamp then e else acc)
        (List.hd t.entries) t.entries
    in
    t.evictions <- t.evictions + 1;
    t.entries <- List.filter (fun e -> e != victim) t.entries

let start t addr =
  if t.size <= 0 then false
  else
    match find t addr with
    | Some _ -> false
    | None ->
      if List.length t.entries >= t.size then evict_one t;
      t.tick <- t.tick + 1;
      t.entries <- { addr; status = In_flight_st None; stamp = t.tick } :: t.entries;
      true

let fill t addr v =
  match find t addr with
  | None -> None (* evicted while in flight *)
  | Some e -> (
    match e.status with
    | Ready_st _ -> None
    | In_flight_st waiter ->
      e.status <- Ready_st v;
      waiter)

let lookup t addr =
  match find t addr with
  | None -> Miss
  | Some e -> (
    (match t.policy with
    | Config.Lru ->
      t.tick <- t.tick + 1;
      e.stamp <- t.tick
    | Config.Fifo -> ());
    match e.status with
    | Ready_st v -> Hit v
    | In_flight_st _ -> In_flight)

let wait_on t addr dst =
  match find t addr with
  | Some ({ status = In_flight_st None; _ } as e) -> e.status <- In_flight_st (Some dst)
  | Some { status = In_flight_st (Some _); _ } ->
    invalid_arg "Prefetch_buffer.wait_on: entry already has a waiter"
  | Some { status = Ready_st _; _ } | None ->
    invalid_arg "Prefetch_buffer.wait_on: entry is not in flight"

let invalidate t addr = t.entries <- List.filter (fun e -> e.addr <> addr) t.entries

let evictions t = t.evictions
let clear t = t.entries <- []
