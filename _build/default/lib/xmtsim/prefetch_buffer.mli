(** Per-TCU prefetch buffers (paper §II, §IV-C, ref [8]).

    A small fully-associative buffer of prefetched words.  [pref]
    instructions allocate an in-flight entry and fire a memory read; a
    later load that finds its address [Ready] completes in one cycle,
    hiding the shared-cache round trip.  A load that finds the entry still
    in flight attaches itself and completes when the data arrives.
    Replacement is FIFO or LRU (the policy study of [8]). *)

type t

type lookup = Hit of Isa.Value.t | In_flight | Miss

val create : size:int -> policy:Config.prefetch_policy -> t

(** [start t addr] allocates an in-flight entry (evicting per policy).
    Returns [false] when the buffer has size 0 or [addr] is already
    buffered (no new request should be sent), [true] when a memory read
    should be launched.  [evicted] reports whether a victim was dropped. *)
val start : t -> int -> bool

(** Data arrived for [addr]; returns the TCU waiter attached, if any.
    Returns [None] also when the entry was evicted while in flight. *)
val fill : t -> int -> Isa.Value.t -> [ `I of int | `F of int ] option

val lookup : t -> int -> lookup

(** Attach a load waiting on an in-flight entry. *)
val wait_on : t -> int -> [ `I of int | `F of int ] -> unit

(** Drop any entry for [addr] — used when the owning TCU stores to the
    address, so a later load cannot read a stale prefetched value.  An
    in-flight entry is dropped too: its fill is discarded on arrival. *)
val invalidate : t -> int -> unit

val evictions : t -> int
val clear : t -> unit
