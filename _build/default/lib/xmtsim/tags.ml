type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  (* tags.(set * assoc + way) = line address, or -1 *)
  tags : int array;
  (* LRU stamps *)
  stamps : int array;
  mutable tick : int;
}

let create ~lines ~assoc ~line_words =
  let lines = max 0 lines in
  let assoc = max 1 assoc in
  let sets = max 1 (lines / assoc) in
  {
    sets = (if lines = 0 then 0 else sets);
    assoc;
    line_bytes = 4 * max 1 line_words;
    tags = Array.make (max 1 (sets * assoc)) (-1);
    stamps = Array.make (max 1 (sets * assoc)) 0;
    tick = 0;
  }

let line_of t addr = addr / t.line_bytes * t.line_bytes

let lookup t addr =
  if t.sets = 0 then false
  else begin
    let line = line_of t addr in
    let set = line / t.line_bytes mod t.sets in
    let base = set * t.assoc in
    let rec go w =
      if w >= t.assoc then false
      else if t.tags.(base + w) = line then begin
        t.tick <- t.tick + 1;
        t.stamps.(base + w) <- t.tick;
        true
      end
      else go (w + 1)
    in
    go 0
  end

let install t addr =
  if t.sets > 0 then begin
    let line = line_of t addr in
    let set = line / t.line_bytes mod t.sets in
    let base = set * t.assoc in
    (* find existing or LRU victim *)
    let victim = ref 0 in
    let found = ref false in
    for w = 0 to t.assoc - 1 do
      if t.tags.(base + w) = line then begin
        victim := w;
        found := true
      end
    done;
    if not !found then begin
      for w = 1 to t.assoc - 1 do
        if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
      done
    end;
    t.tick <- t.tick + 1;
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.tick
  end

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1)

let hits_possible t = t.sets > 0
