(** Timing-only cache tag arrays.

    The simulator's memory values live in the coherent functional memory
    ({!Mem}); caches only decide {e when} an access completes, so they
    track tags, not data.  Set-associative with LRU replacement. *)

type t

val create : lines:int -> assoc:int -> line_words:int -> t

(** Address of the first word of the line containing [addr]. *)
val line_of : t -> int -> int

(** [lookup t addr] — true on hit; touches LRU. *)
val lookup : t -> int -> bool

(** Install the line containing [addr], evicting LRU if needed. *)
val install : t -> int -> unit

val invalidate_all : t -> unit
val hits_possible : t -> bool  (** false for a zero-line cache *)
