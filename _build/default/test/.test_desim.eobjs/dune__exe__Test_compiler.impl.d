test/test_compiler.ml: Alcotest Array Compiler Core Isa List Printexc Printf String Tu Xmtc Xmtsim
