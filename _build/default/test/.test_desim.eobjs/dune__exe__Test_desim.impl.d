test/test_desim.ml: Alcotest Desim Filename List Printf QCheck QCheck_alcotest Sys Tu
