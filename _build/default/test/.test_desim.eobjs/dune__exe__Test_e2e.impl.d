test/test_e2e.ml: Alcotest Array Compiler Core Isa List Printf Tu Xmtc Xmtsim
