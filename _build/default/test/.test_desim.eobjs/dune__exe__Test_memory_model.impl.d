test/test_memory_model.ml: Alcotest Compiler Core List Printf String Tu Xmtsim
