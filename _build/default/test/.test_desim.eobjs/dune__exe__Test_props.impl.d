test/test_props.ml: Alcotest Array Compiler Core Desim Gen Isa List Printf QCheck QCheck_alcotest Tu Xmtc Xmtsim
