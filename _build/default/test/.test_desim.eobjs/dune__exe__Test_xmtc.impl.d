test/test_xmtc.ml: Alcotest List Printexc String Tu Xmtc
