test/test_xmtc.mli:
