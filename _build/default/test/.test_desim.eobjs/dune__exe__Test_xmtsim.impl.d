test/test_xmtsim.ml: Alcotest Array Buffer Core Filename Isa List Printf String Sys Tu Xmtsim
