test/test_xmtsim.mli:
