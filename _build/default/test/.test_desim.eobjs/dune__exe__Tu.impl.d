test/tu.ml: Alcotest Core Isa Xmtsim
