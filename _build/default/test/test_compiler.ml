(** Tests for the compiler passes (paper §IV): outlining, clustering, the
    serial optimizer, the XMT memory/prefetch passes, register allocation
    and the post-pass. *)

module D = Compiler.Driver
module T = Xmtc.Tast

let opts = D.default_options

let compile ?(options = opts) src = D.compile ~options src

let has_instr pred (out : D.output) =
  List.exists
    (function Isa.Program.Ins i -> pred i | _ -> false)
    out.D.program.Isa.Program.text

(* ------------------------------------------------------------------ *)
(* Outlining (Fig. 8) *)

let outline_extracts_function () =
  let p =
    Xmtc.Typecheck.program_of_source
      "int A[4]; int main() { spawn(0,3) { A[$] = $; } return 0; }"
  in
  let p = Compiler.Outline.run p in
  let names = List.map (fun (f : T.func) -> f.fname) p.T.funcs in
  Alcotest.(check (list string)) "functions" [ "main"; "__outl_sp_0" ] names;
  let outl = List.find (fun (f : T.func) -> f.fname = "__outl_sp_0") p.T.funcs in
  Tu.check_bool "marked" true outl.T.fis_outlined_spawn;
  (* main no longer contains a spawn *)
  let main = List.find (fun (f : T.func) -> f.fname = "main") p.T.funcs in
  let spawns = ref 0 in
  T.iter_spawns (fun _ -> incr spawns) main.T.fbody;
  Tu.check_int "no spawn left in main" 0 !spawns

let outline_capture_classes () =
  (* [n] read-only -> by value; [found] written -> by reference (Fig. 8c) *)
  let p =
    Xmtc.Typecheck.program_of_source
      {|
int A[8];
int main() {
  int n = 7;
  int found = 0;
  spawn(0, n) { if (A[$] != 0) found = 1; }
  return found;
}
|}
  in
  let p = Compiler.Outline.run p in
  let outl = List.find (fun (f : T.func) -> f.T.fis_outlined_spawn) p.T.funcs in
  let param_types =
    List.map (fun (v : T.var) -> (v.vname, Xmtc.Types.string_of_ty v.vty))
      outl.T.fparams
  in
  Alcotest.(check (list (pair string string)))
    "params" [ ("found", "int *"); ("n", "int") ]
    (List.sort compare param_types)

let outline_no_globals_captured () =
  let p =
    Xmtc.Typecheck.program_of_source
      "int A[4]; int g; int main() { spawn(0,3) { A[$] = g; } return 0; }"
  in
  let p = Compiler.Outline.run p in
  let outl = List.find (fun (f : T.func) -> f.T.fis_outlined_spawn) p.T.funcs in
  Tu.check_int "globals stay global" 0 (List.length outl.T.fparams)

let outline_pretty_is_source_to_source () =
  let p =
    Xmtc.Typecheck.program_of_source
      "int A[4]; int main() { int c = 3; spawn(0,3) { A[$] = c; } return 0; }"
  in
  let p = Compiler.Outline.run p in
  let printed = Xmtc.Pretty.program_to_string p in
  (* the outlined program is valid XMTC again *)
  (match Xmtc.Typecheck.program_of_source printed with
  | _ -> ()
  | exception e ->
    Alcotest.failf "outlined source invalid: %s\n%s" (Printexc.to_string e) printed);
  Tu.check_bool "call to outlined fn in source" true
    (String.length printed > 0
    &&
    let re = "__outl_sp_0" in
    let rec find i =
      if i + String.length re > String.length printed then false
      else if String.sub printed i (String.length re) = re then true
      else find (i + 1)
    in
    find 0)

let outline_ps_increment_by_ref () =
  (* a captured, written ps increment must round-trip through a temp *)
  let src =
    {|
int base = 0;
int main() {
  int inc = 1;
  spawn(0, 3) { ps(inc, base); }
  return inc;
}
|}
  in
  (* must compile and run: inc ends up holding one of the ps results *)
  let out = Core.Toolchain.exec ~config:Xmtsim.Config.tiny src in
  (* base goes 0,1,2,3 -> final inc is the last thread's old value; any of
     0..3 is legal, and the program returns it (not printed); just check
     it ran *)
  Tu.check_int "ran" 0 (String.length out.Core.Toolchain.output)

(* ------------------------------------------------------------------ *)
(* Clustering (§IV-C) *)

let clustering_preserves_semantics () =
  let a = Core.Workloads.sparse_array ~seed:11 ~n:50 ~density:30 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src = Core.Kernels.compaction ~n:50 in
  let expected = string_of_int (Core.Reference.count_nonzero a) in
  List.iter
    (fun factor ->
      let options = { opts with D.cluster = factor } in
      Tu.expect_output ~options ~memmap
        (Printf.sprintf "clustered x%d" factor)
        expected src)
    [ 1; 2; 4; 8; 16 ]

let clustering_reduces_virtual_threads () =
  let src = Core.Kernels.vecadd ~n:64 in
  let run factor =
    let compiled =
      Core.Toolchain.compile ~options:{ opts with D.cluster = factor } src
    in
    let r = Core.Toolchain.run_cycle ~config:Xmtsim.Config.tiny compiled in
    r.Core.Toolchain.stats.Xmtsim.Stats.virtual_threads
  in
  Tu.check_int "unclustered" 64 (run 1);
  Tu.check_int "factor 4" 16 (run 4);
  Tu.check_int "factor 16" 4 (run 16)

(* ------------------------------------------------------------------ *)
(* Serial optimizer *)

let optimizer_preserves_output () =
  let a = Core.Workloads.random_array ~seed:3 ~n:40 ~bound:100 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src = Core.Kernels.reduce_psm ~n:40 in
  let expected = string_of_int (Core.Reference.sum a) in
  List.iter
    (fun lvl ->
      Tu.expect_output ~options:{ opts with D.opt_level = lvl } ~memmap
        (Printf.sprintf "O%d" lvl) expected src)
    [ 0; 1; 2 ]

let optimizer_shrinks_code () =
  let src =
    {|
int A[4];
int main() {
  int x = 2 * 3 + 4;
  int unused = 99;
  A[0] = x;
  A[1] = x;
  return A[0];
}
|}
  in
  let count lvl =
    let out = compile ~options:{ opts with D.opt_level = lvl } src in
    List.length (Isa.Program.instructions out.D.program)
  in
  Tu.check_bool "O2 <= O0" true (count 2 < count 0)

let constant_folding_works () =
  (* at O2 the constant branch disappears *)
  let src = "int main() { if (1 < 2) return 7; return 8; }" in
  let out = compile src in
  Tu.check_bool "no branch left" false
    (has_instr (function Isa.Instr.Br _ | Isa.Instr.Brz _ -> true | _ -> false) out)

(* ------------------------------------------------------------------ *)
(* XMT passes *)

let fences_before_prefix_sums () =
  let src = Core.Kernels.compaction ~n:8 in
  let out = compile src in
  (* every ps in the text is preceded by a fence *)
  let instrs =
    List.filter_map
      (function Isa.Program.Ins i -> Some i | _ -> None)
      out.D.program.Isa.Program.text
  in
  let rec scan prev = function
    | [] -> ()
    | Isa.Instr.Ps _ :: _ when prev <> Some Isa.Instr.Fence ->
      Alcotest.fail "ps without preceding fence"
    | i :: rest -> scan (Some i) rest
  in
  scan None instrs;
  let out_nofence = compile ~options:{ opts with D.fences = false } src in
  Tu.check_bool "no fences when disabled" false
    (has_instr (function Isa.Instr.Fence -> true | _ -> false) out_nofence)

let nbstore_in_parallel_only () =
  let src =
    "int A[8]; int main() { A[0] = 1; spawn(0,7) { A[$] = $; } return 0; }"
  in
  let out = compile src in
  Tu.check_bool "has sw.nb" true
    (has_instr (function Isa.Instr.Swnb _ -> true | _ -> false) out);
  let out2 = compile ~options:{ opts with D.nbstore = false } src in
  Tu.check_bool "no sw.nb when disabled" false
    (has_instr (function Isa.Instr.Swnb _ -> true | _ -> false) out2)

let prefetch_inserted () =
  let src = Core.Kernels.par_mem ~threads:8 ~iters:4 ~n:64 in
  let out = compile src in
  Tu.check_bool "has pref" true
    (has_instr (function Isa.Instr.Pref _ -> true | _ -> false) out);
  let out2 = compile ~options:{ opts with D.prefetch = false } src in
  Tu.check_bool "no pref when disabled" false
    (has_instr (function Isa.Instr.Pref _ -> true | _ -> false) out2)

let prefetch_preserves_results () =
  let a = Core.Workloads.random_array ~seed:9 ~n:64 ~bound:50 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src = Core.Kernels.reduce_tree ~n:64 in
  let expected = string_of_int (Core.Reference.sum a) in
  Tu.expect_output ~memmap "prefetch on" expected src;
  Tu.expect_output ~options:{ opts with D.prefetch = false } ~memmap
    "prefetch off" expected src

(* ------------------------------------------------------------------ *)
(* Register allocation *)

let spill_error_in_parallel_code () =
  (* enough simultaneously-live thread-locals to overflow the register
     file must produce the paper's register spill error (§IV-D) *)
  let decls =
    String.concat ""
      (List.init 30 (fun i -> Printf.sprintf "int v%d = A[$ + %d];" i i))
  in
  let uses =
    String.concat " + " (List.init 30 (fun i -> Printf.sprintf "v%d" i))
  in
  let src =
    Printf.sprintf
      "int A[64]; int B[64]; int main() { spawn(0, 31) { %s B[$] = %s; } \
       return 0; }"
      decls uses
  in
  match D.compile ~options:opts src with
  | exception D.Compile_error msg ->
    Tu.check_bool "mentions spill" true
      (let re = "spill" in
       let rec find i =
         if i + String.length re > String.length msg then false
         else if String.sub msg i (String.length re) = re then true
         else find (i + 1)
       in
       find 0)
  | _ -> Alcotest.fail "expected register spill error"

let spill_ok_in_serial_code () =
  (* the same pressure in serial code spills to the stack and runs *)
  let decls =
    String.concat ""
      (List.init 30 (fun i -> Printf.sprintf "int v%d = A[%d] + %d;" i i i))
  in
  let uses = String.concat " + " (List.init 30 (fun i -> Printf.sprintf "v%d" i)) in
  let a = Array.init 64 (fun i -> i) in
  let src =
    Printf.sprintf "int A[64]; int main() { %s print_int(%s); return 0; }" decls uses
  in
  let expected =
    string_of_int (List.fold_left ( + ) 0 (List.init 30 (fun i -> a.(i) + i)))
  in
  Tu.expect_output ~memmap:(Isa.Memmap.of_ints [ ("A", a) ]) "serial spill"
    expected src

(* ------------------------------------------------------------------ *)
(* Layout + post-pass (Fig. 9) *)

let fig9_block_sunk_and_repaired () =
  let src =
    {|
int A[32];
int B[32];
int main(void) {
  spawn(0, 31) {
    int v = A[$];
    if (v > 50) { B[$] = v * 3; } else { B[$] = v + 1; }
  }
  return 0;
}
|}
  in
  let out = compile src in
  Tu.check_bool "post-pass relocated >= 1 block" true (out.D.relocated_blocks >= 1);
  (* verification passes on the fixed program *)
  Compiler.Postpass.verify out.D.program;
  (* without the fix the program must fail verification *)
  let out2 = compile ~options:{ opts with D.postpass_fix = false } src in
  match Compiler.Postpass.verify out2.D.program with
  | exception Compiler.Postpass.Verify_error _ -> ()
  | _ -> Alcotest.fail "expected Fig. 9 verification failure"

let fig9_fix_preserves_semantics () =
  let a = Core.Workloads.random_array ~seed:21 ~n:32 ~bound:100 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src =
    {|
int A[32];
int B[32];
int total = 0;
int main(void) {
  int i;
  spawn(0, 31) {
    int v = A[$];
    if (v > 50) { B[$] = v * 3; } else { B[$] = v + 1; }
  }
  for (i = 0; i < 32; i++) total = total + B[i];
  print_int(total);
  return 0;
}
|}
  in
  let expected =
    string_of_int
      (Array.fold_left (fun acc v -> acc + (if v > 50 then v * 3 else v + 1)) 0 a)
  in
  Tu.expect_output ~memmap "fig9 semantics" expected src;
  (* the no-layout-optimization path agrees too *)
  Tu.expect_output ~options:{ opts with D.layout_opt = false } ~memmap
    "no layout opt" expected src

let postpass_rejects_jal_in_region () =
  let asm =
    {|
main:
  li $t0, 0
  li $t1, 3
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  jal helper
  j Ld
  join
  jr $ra
helper:
  jr $ra
|}
  in
  match Compiler.Postpass.verify (Isa.Asm.parse asm) with
  | exception Compiler.Postpass.Verify_error _ -> ()
  | _ -> Alcotest.fail "expected jal-in-region error"

let postpass_rejects_unbalanced_spawn () =
  let asm = "main: li $t0, 0\n li $t1, 1\n spawn $t0, $t1\n halt" in
  match Compiler.Postpass.verify (Isa.Asm.parse asm) with
  | exception Compiler.Postpass.Verify_error _ -> ()
  | _ -> Alcotest.fail "expected unbalanced spawn error"

let postpass_relocation_matches_fig9 () =
  (* hand-build the Fig. 9a situation and check the 9b repair shape *)
  let asm =
    {|
outl:
  li $t0, 0
  li $t1, 3
  spawn $t0, $t1
BB1:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  bne $t2, $0, BB2
  j BB1
  join
  jr $ra
BB2:
  sw $t2, 0($t3)
  j BB1
|}
  in
  let fixed, n = Compiler.Postpass.run (Isa.Asm.parse asm) in
  Tu.check_int "one block relocated" 1 n;
  Compiler.Postpass.verify fixed;
  (* BB2 now sits before the join *)
  let text = Isa.Asm.print fixed in
  let idx_of sub =
    let rec find i =
      if i + String.length sub > String.length text then -1
      else if String.sub text i (String.length sub) = sub then i
      else find (i + 1)
    in
    find 0
  in
  Tu.check_bool "BB2 before join" true (idx_of "BB2:" < idx_of "join")

(* ------------------------------------------------------------------ *)

let illegal_dataflow_without_outlining () =
  (* §IV-B: without outlining, the serial register allocator keeps [found]
     in a master register that virtual-thread writes never reach *)
  let a = Array.make 32 0 in
  a.(17) <- 5;
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src = Core.Kernels.fig8_found ~n:32 in
  Tu.expect_output ~memmap "with outlining" "1" src;
  let wrong =
    Core.Toolchain.exec ~memmap ~config:Xmtsim.Config.tiny
      ~options:{ opts with D.outline = false } src
  in
  Tu.check_string "without outlining: illegal dataflow" "0"
    wrong.Core.Toolchain.output

let () =
  Alcotest.run "compiler"
    [
      ( "outline",
        [
          Tu.tc "extracts function" outline_extracts_function;
          Tu.tc "capture classes" outline_capture_classes;
          Tu.tc "globals not captured" outline_no_globals_captured;
          Tu.tc "source-to-source" outline_pretty_is_source_to_source;
          Tu.tc "ps increment by ref" outline_ps_increment_by_ref;
          Tu.tc "illegal dataflow without it" illegal_dataflow_without_outlining;
        ] );
      ( "cluster",
        [
          Tu.tc "preserves semantics" clustering_preserves_semantics;
          Tu.tc "reduces virtual threads" clustering_reduces_virtual_threads;
        ] );
      ( "optimizer",
        [
          Tu.tc "preserves output" optimizer_preserves_output;
          Tu.tc "shrinks code" optimizer_shrinks_code;
          Tu.tc "constant folding" constant_folding_works;
        ] );
      ( "xmt passes",
        [
          Tu.tc "fence before ps/psm" fences_before_prefix_sums;
          Tu.tc "nb stores in parallel" nbstore_in_parallel_only;
          Tu.tc "prefetch inserted" prefetch_inserted;
          Tu.tc "prefetch preserves results" prefetch_preserves_results;
        ] );
      ( "regalloc",
        [
          Tu.tc "spill error in parallel code" spill_error_in_parallel_code;
          Tu.tc "spill ok in serial code" spill_ok_in_serial_code;
        ] );
      ( "postpass",
        [
          Tu.tc "fig9 sunk and repaired" fig9_block_sunk_and_repaired;
          Tu.tc "fig9 semantics preserved" fig9_fix_preserves_semantics;
          Tu.tc "rejects jal in region" postpass_rejects_jal_in_region;
          Tu.tc "rejects unbalanced spawn" postpass_rejects_unbalanced_spawn;
          Tu.tc "relocation matches Fig 9b" postpass_relocation_matches_fig9;
        ] );
    ]
