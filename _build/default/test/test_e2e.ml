(** End-to-end tests: XMTC kernels compiled and simulated, validated
    against host references, across configurations and compiler options. *)

module D = Compiler.Driver
module C = Xmtsim.Config

let opts = D.default_options

let compaction_matrix () =
  let a = Core.Workloads.sparse_array ~seed:2 ~n:96 ~density:35 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let src = Core.Kernels.compaction ~n:96 in
  let expected = string_of_int (Core.Reference.count_nonzero a) in
  List.iter
    (fun (name, options) ->
      Tu.expect_output ~options ~memmap ~config:C.tiny ("tiny " ^ name) expected src;
      Tu.expect_output ~options ~memmap ~config:C.fpga64 ("fpga64 " ^ name) expected
        src)
    [
      ("default", opts);
      ("O0", { opts with D.opt_level = 0 });
      ("no prefetch", { opts with D.prefetch = false });
      ("blocking stores", { opts with D.nbstore = false });
      ("no layout opt", { opts with D.layout_opt = false });
      ("cluster 4", { opts with D.cluster = 4 });
    ]

let compaction_output_is_permutation () =
  (* B[1..base] holds exactly the non-zero values of A, in some order *)
  let a = Core.Workloads.sparse_array ~seed:13 ~n:64 ~density:40 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let compiled = Core.Toolchain.compile ~memmap (Core.Kernels.compaction ~n:64) in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  ignore (Xmtsim.Machine.run m);
  let b = Core.Toolchain.read_global m compiled "B" 64 in
  let count = Core.Reference.count_nonzero a in
  let collected = Array.sub b 0 count in
  let expected = Array.of_list (List.filter (fun x -> x <> 0) (Array.to_list a)) in
  Array.sort compare collected;
  Array.sort compare expected;
  Alcotest.(check (array int)) "same multiset" expected collected

let bfs_matches_reference () =
  List.iter
    (fun (seed, n, epv, chain) ->
      let g = Core.Workloads.random_graph ~chain ~seed ~n ~edges_per_vertex:epv () in
      let src = Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0 in
      let reached, total = Core.Reference.bfs_summary g 0 in
      Tu.expect_output ~memmap:(Core.Workloads.graph_memmap g) ~config:C.fpga64
        (Printf.sprintf "bfs n=%d" n)
        (Printf.sprintf "%d %d" reached total)
        src)
    [ (1, 60, 2, 10); (2, 120, 1, 40); (3, 50, 3, 0) ]

let bfs_disconnected () =
  let g = Core.Workloads.rings ~k:3 ~len:10 in
  let src = Core.Kernels.bfs ~n:30 ~m:g.Core.Workloads.m ~src:0 in
  let reached, total = Core.Reference.bfs_summary g 0 in
  Tu.check_int "only one ring reached" 10 reached;
  Tu.expect_output ~memmap:(Core.Workloads.graph_memmap g) ~config:C.tiny "bfs rings"
    (Printf.sprintf "%d %d" reached total)
    src

let connectivity_matches_reference () =
  List.iter
    (fun (k, len) ->
      let g = Core.Workloads.rings ~k ~len in
      let m = Array.length g.Core.Workloads.edges in
      let src = Core.Kernels.connectivity ~n:(k * len) ~m in
      Tu.expect_output ~memmap:(Core.Workloads.edgelist_memmap g) ~config:C.fpga64
        (Printf.sprintf "cc %d rings" k)
        (string_of_int (Core.Reference.components g))
        src)
    [ (1, 12); (4, 6); (7, 4) ]

let connectivity_random_graph () =
  let g = Core.Workloads.random_graph ~seed:5 ~n:40 ~edges_per_vertex:1 () in
  let m = Array.length g.Core.Workloads.edges in
  let src = Core.Kernels.connectivity ~n:40 ~m in
  Tu.expect_output ~memmap:(Core.Workloads.edgelist_memmap g) ~config:C.fpga64
    "cc random"
    (string_of_int (Core.Reference.components g))
    src

let matmul_matches_reference () =
  let n = 8 in
  let a = Core.Workloads.random_float_array ~seed:1 ~n:(n * n) in
  let b = Core.Workloads.random_float_array ~seed:2 ~n:(n * n) in
  let memmap = Isa.Memmap.of_floats [ ("A", a); ("B", b) ] in
  let compiled = Core.Toolchain.compile ~memmap (Core.Kernels.matmul ~n) in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  ignore (Xmtsim.Machine.run m);
  let addr = Isa.Program.address_of compiled.Core.Toolchain.image "C" in
  let cref = Core.Reference.matmul a b n in
  for i = 0 to (n * n) - 1 do
    let got =
      Isa.Value.to_flt
        (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr + (4 * i)))
    in
    if abs_float (got -. cref.(i)) > 1e-6 then
      Alcotest.failf "C[%d]: got %g, want %g" i got cref.(i)
  done

let spmv_matches_reference () =
  let n = 32 and nnz_per_row = 4 in
  let row, col, nzv = Core.Workloads.random_csr_matrix ~seed:4 ~n ~nnz_per_row in
  let x = Core.Workloads.random_float_array ~seed:5 ~n in
  let memmap =
    Isa.Memmap.of_ints [ ("row", row); ("col", col) ]
    @ Isa.Memmap.of_floats [ ("nzv", nzv); ("x", x) ]
  in
  let compiled =
    Core.Toolchain.compile ~memmap (Core.Kernels.spmv ~n ~nnz:(n * nnz_per_row))
  in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  ignore (Xmtsim.Machine.run m);
  let addr = Isa.Program.address_of compiled.Core.Toolchain.image "y" in
  let yref = Core.Reference.spmv row col nzv x n in
  for i = 0 to n - 1 do
    let got =
      Isa.Value.to_flt (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr + (4 * i)))
    in
    if abs_float (got -. yref.(i)) > 1e-5 then
      Alcotest.failf "y[%d]: got %g, want %g" i got yref.(i)
  done

let fft_matches_reference () =
  let n = 64 in
  let re = Core.Workloads.random_float_array ~seed:1 ~n in
  let im = Core.Workloads.random_float_array ~seed:2 ~n in
  let wr, wi = Core.Reference.fft_twiddles n in
  let memmap =
    Isa.Memmap.of_floats [ ("re", re); ("im", im); ("wr", wr); ("wi", wi) ]
  in
  let rre, rim = Core.Reference.fft re im in
  let compiled = Core.Toolchain.compile ~memmap (Core.Kernels.fft ~n) in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  ignore (Xmtsim.Machine.run m);
  let addr_re = Isa.Program.address_of compiled.Core.Toolchain.image "re" in
  let addr_im = Isa.Program.address_of compiled.Core.Toolchain.image "im" in
  for i = 0 to n - 1 do
    let gr = Isa.Value.to_flt (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr_re + (4 * i))) in
    let gi = Isa.Value.to_flt (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr_im + (4 * i))) in
    if abs_float (gr -. rre.(i)) > 1e-9 || abs_float (gi -. rim.(i)) > 1e-9 then
      Alcotest.failf "fft[%d]: got (%g,%g), want (%g,%g)" i gr gi rre.(i) rim.(i)
  done;
  (* the serial variant prints the same checkpoint values *)
  let p = Core.Toolchain.run_cycle ~config:C.fpga64 compiled in
  let sc = Core.Toolchain.compile ~memmap (Core.Kernels.fft_serial ~n) in
  let sr = Core.Toolchain.run_cycle ~config:C.fpga64 sc in
  Alcotest.(check string) "serial = parallel output" p.Core.Toolchain.output
    sr.Core.Toolchain.output;
  Tu.check_bool "parallel faster" true
    (p.Core.Toolchain.cycles < sr.Core.Toolchain.cycles)

let ro_loads_agree_and_hit () =
  let n = 128 in
  let a = Core.Workloads.random_array ~seed:4 ~n ~bound:65536 in
  let table = Core.Workloads.random_array ~seed:9 ~n:256 ~bound:1000 in
  let memmap = Isa.Memmap.of_ints [ ("A", a); ("table", table) ] in
  let run use_ro =
    let src = Core.Kernels.table_lookup ~n ~iters:8 ~use_ro in
    let compiled = Core.Toolchain.compile ~memmap src in
    let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
    let r = Xmtsim.Machine.run m in
    ( r.Xmtsim.Machine.cycles,
      (Xmtsim.Machine.stats m).Xmtsim.Stats.rocache_hits,
      Core.Toolchain.read_global m compiled "B" n )
  in
  let c0, h0, b0 = run false in
  let c1, h1, b1 = run true in
  Alcotest.(check (array int)) "same results" b0 b1;
  Tu.check_int "no rocache hits without ro()" 0 h0;
  Tu.check_bool "rocache hits with ro()" true (h1 > 0);
  Tu.check_bool "ro() faster" true (c1 < c0)

let ro_rejected_in_serial_code () =
  match
    Core.Toolchain.compile "int t[4]; int main() { int x = ro(t[0]); return x; }"
  with
  | exception Compiler.Driver.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected ro() to be parallel-only"

let reductions_agree () =
  let a = Core.Workloads.random_array ~seed:6 ~n:128 ~bound:1000 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let expected = string_of_int (Core.Reference.sum a) in
  Tu.expect_output ~memmap ~config:C.fpga64 "psm reduce" expected
    (Core.Kernels.reduce_psm ~n:128);
  Tu.expect_output ~memmap ~config:C.fpga64 "tree reduce" expected
    (Core.Kernels.reduce_tree ~n:128)

let functional_cycle_equivalence_suite () =
  (* every kernel prints the same thing in both modes *)
  let g = Core.Workloads.random_graph ~chain:8 ~seed:9 ~n:40 ~edges_per_vertex:2 () in
  let a = Core.Workloads.random_array ~seed:10 ~n:64 ~bound:100 in
  let cases =
    [
      ( "compaction",
        Core.Kernels.compaction ~n:64,
        Isa.Memmap.of_ints [ ("A", a) ] );
      ( "bfs",
        Core.Kernels.bfs ~n:40 ~m:g.Core.Workloads.m ~src:0,
        Core.Workloads.graph_memmap g );
      ("reduce_tree", Core.Kernels.reduce_tree ~n:64, Isa.Memmap.of_ints [ ("A", a) ]);
      ("ser_comp", Core.Kernels.ser_comp ~iters:200, []);
    ]
  in
  List.iter
    (fun (name, src, memmap) ->
      let fo, co, _ = Tu.both ~memmap ~config:C.tiny src in
      Alcotest.(check string) (name ^ " func=cycle") fo co)
    cases

let serialized_nested_spawn () =
  let src =
    {|
int A[6];
int total = 0;
int main(void) {
  spawn(0, 1) {
    int outer = $;
    spawn(0, 2) {
      int v = outer * 3 + $ + 1;
      psm(v, total);
    }
  }
  print_int(total);
  return 0;
}
|}
  in
  (* outer=0: 1+2+3=6; outer=1: 4+5+6=15; total 21 *)
  Tu.expect_output ~config:C.tiny "nested serialized" "21" src

let malloc_and_pointers () =
  let src =
    {|
int n = 5;
int main(void) {
  int *p = malloc(n * 4);
  int i;
  for (i = 0; i < n; i++) p[i] = i * i;
  spawn(0, 4) {
    p[$] = p[$] + 1;
  }
  {
    int s = 0;
    for (i = 0; i < n; i++) s = s + p[i];
    print_int(s);
  }
  return 0;
}
|}
  in
  (* sum (i^2 + 1) for i in 0..4 = 30 + 5 = 35 *)
  Tu.expect_output ~config:C.tiny "malloc" "35" src

let control_flow_in_spawn () =
  let src = {|
int A[64];
int out = 0;
int main(void) {
  spawn(0, 15) {
    int k = 0;
    int acc = 0;
    do {
      if (k == 2) { k = k + 1; continue; }
      if (k > 3) break;
      acc = acc + A[$ * 4 + (k & 3)];
      k = k + 1;
    } while (k < 10);
    int v = acc;
    psm(v, out);
  }
  print_int(out);
  return 0;
}
|} in
  (* per thread: k=0,1,3 contribute A[4t+0], A[4t+1], A[4t+3] *)
  let a = Array.init 64 (fun i -> i) in
  let expected =
    let s = ref 0 in
    for t = 0 to 15 do
      s := !s + a.((4 * t) + 0) + a.((4 * t) + 1) + a.((4 * t) + 3)
    done;
    string_of_int !s
  in
  Tu.expect_output ~memmap:(Isa.Memmap.of_ints [ ("A", a) ]) ~config:C.tiny
    "do/break/continue in spawn" expected src

let compound_assignment_matrix () =
  let src = {|
int main(void) {
  int a = 100;
  a += 7; a -= 3; a *= 2; a /= 4; a %= 13;
  a <<= 3; a >>= 1; a |= 64; a &= 127; a ^= 21;
  print_int(a);
  return 0;
}
|} in
  let v = ref 100 in
  v := !v + 7; v := !v - 3; v := !v * 2; v := !v / 4; v := !v mod 13;
  v := !v lsl 3; v := !v asr 1; v := !v lor 64; v := !v land 127;
  v := !v lxor 21;
  Tu.expect_output ~config:C.tiny "compound assignment" (string_of_int !v) src

let negative_and_large_immediates () =
  let src = {|
int main(void) {
  int big = 1000000007;
  int neg = -2147483647;
  print_int(big + 1);
  print_string(" ");
  print_int(neg - 1);
  print_string(" ");
  print_int(big * 3);
  return 0;
}
|} in
  let expected =
    Printf.sprintf "%d %d %d"
      (Isa.Value.wrap32 1000000008)
      (Isa.Value.wrap32 (-2147483648))
      (Isa.Value.wrap32 (1000000007 * 3))
  in
  Tu.expect_output ~config:C.tiny "immediates" expected src

let ternary_and_shortcircuit_in_spawn () =
  let src = {|
int A[32];
int count = 0;
int main(void) {
  spawn(0, 31) {
    int v = A[$];
    int pick = (v > 50 && v < 90) ? 1 : 0;
    if (pick || v == 7) {
      int one = 1;
      psm(one, count);
    }
  }
  print_int(count);
  return 0;
}
|} in
  let a = Core.Workloads.random_array ~seed:17 ~n:32 ~bound:100 in
  let expected =
    Array.fold_left
      (fun acc v -> if (v > 50 && v < 90) || v = 7 then acc + 1 else acc)
      0 a
  in
  Tu.expect_output ~memmap:(Isa.Memmap.of_ints [ ("A", a) ]) ~config:C.tiny
    "ternary + short-circuit" (string_of_int expected) src

let structs_end_to_end () =
  let src = {|
struct point {
  int x;
  int y;
  float w;
};

struct node {
  int value;
  struct node *next;
};

struct point pts[8];
struct point origin;

int main(void) {
  int i;
  origin.x = 3;
  origin.y = 4;
  origin.w = 1.5;
  for (i = 0; i < 8; i++) {
    pts[i].x = i;
    pts[i].y = i * 2;
  }
  spawn(0, 7) {
    struct point *p = &pts[$];
    p->x = p->x + origin.x;
    p->y = p->y + origin.y;
  }
  {
    struct node *head = (struct node *)0;
    int k;
    int sum = 0;
    for (k = 0; k < 5; k++) {
      struct node *n = (struct node *)malloc(8);
      n->value = k * k;
      n->next = head;
      head = n;
    }
    while (head != (struct node *)0) {
      sum = sum + head->value;
      head = head->next;
    }
    print_int(sum);
  }
  print_string(" ");
  {
    int sx = 0;
    int sy = 0;
    for (i = 0; i < 8; i++) { sx = sx + pts[i].x; sy = sy + pts[i].y; }
    print_int(sx);
    print_string(" ");
    print_int(sy);
    print_string(" ");
    print_float(origin.w);
  }
  return 0;
}
|} in
  (* list: 0+1+4+9+16=30; sx = 28+8*3 = 52; sy = 56+8*4 = 88 *)
  Tu.expect_output ~config:C.tiny "structs" "30 52 88 1.5" src;
  (* the pretty-printed (outlined) source still computes the same *)
  let p = Xmtc.Typecheck.program_of_source src in
  let printed = Xmtc.Pretty.program_to_string p in
  let r = Core.Toolchain.exec ~functional:true printed in
  Tu.check_string "pretty roundtrip" "30 52 88 1.5" r.Core.Toolchain.output

let multidim_arrays () =
  let src = {|
int M[4][8];
int main(void) {
  int i;
  int j;
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 8; j++) {
      M[i][j] = i * 10 + j;
    }
  }
  spawn(0, 3) {
    int k;
    int s = 0;
    for (k = 0; k < 8; k++) s = s + M[$][k];
    M[$][0] = s;
  }
  print_int(M[0][0] + M[3][0]);
  return 0;
}
|} in
  (* row 0 sum = 0+..+7 = 28; row 3 sum = 30*8 + 28 = 268; total 296 *)
  Tu.expect_output ~config:C.tiny "2-D arrays" "296" src

let recursion_works () =
  let src =
    {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main(void) { print_int(fib(12)); return 0; }
|}
  in
  Tu.expect_output ~config:C.tiny "fib" "144" src

let float_functions () =
  let src =
    {|
float norm(float x, float y) { return sqrtf(x * x + y * y); }
int main(void) {
  print_float(norm(3.0, 4.0));
  print_string(" ");
  print_float(fabsf(-2.5));
  return 0;
}
|}
  in
  Tu.expect_output ~config:C.tiny "floats" "5 2.5" src

let string_and_char_output () =
  let src =
    {|
int main(void) {
  print_string("ab ");
  print_char('c' + 1);
  print_string(" ");
  print_int('A');
  return 0;
}
|}
  in
  Tu.expect_output ~config:C.tiny "strings" "ab d 65" src

let volatile_global_roundtrip () =
  let src =
    {|
volatile int flag = 0;
int main(void) {
  spawn(0, 3) {
    if ($ == 2) flag = 7;
  }
  print_int(flag);
  return 0;
}
|}
  in
  Tu.expect_output ~config:C.tiny "volatile" "7" src

let empty_spawn_range () =
  let src =
    {|
int n = 0;
int main(void) {
  spawn(0, n - 1) {
    print_int($);
  }
  print_int(42);
  return 0;
}
|}
  in
  Tu.expect_output ~config:C.tiny "empty range" "42" src

let more_threads_than_tcus () =
  (* tiny has 4 TCUs; 100 virtual threads must still all run *)
  let src = Core.Kernels.reduce_psm ~n:100 in
  let a = Array.make 100 1 in
  Tu.expect_output ~memmap:(Isa.Memmap.of_ints [ ("A", a) ]) ~config:C.tiny
    "100 threads on 4 TCUs" "100" src

let () =
  Alcotest.run "e2e"
    [
      ( "kernels",
        [
          Tu.tc "compaction options matrix" compaction_matrix;
          Tu.tc "compaction permutation" compaction_output_is_permutation;
          Tu.tc "bfs reference" bfs_matches_reference;
          Tu.tc "bfs disconnected" bfs_disconnected;
          Tu.tc "connectivity rings" connectivity_matches_reference;
          Tu.tc "connectivity random" connectivity_random_graph;
          Tu.tc "matmul" matmul_matches_reference;
          Tu.tc "spmv" spmv_matches_reference;
          Tu.tc "reductions" reductions_agree;
          Tu.tc "fft" fft_matches_reference;
          Tu.tc "ro() read-only loads" ro_loads_agree_and_hit;
          Tu.tc "ro() serial-only" ro_rejected_in_serial_code;
        ] );
      ( "modes",
        [ Tu.tc "functional = cycle outputs" functional_cycle_equivalence_suite ] );
      ( "language",
        [
          Tu.tc "nested spawn serialized" serialized_nested_spawn;
          Tu.tc "malloc" malloc_and_pointers;
          Tu.tc "recursion" recursion_works;
          Tu.tc "2-D arrays" multidim_arrays;
          Tu.tc "structs" structs_end_to_end;
          Tu.tc "do/break/continue in spawn" control_flow_in_spawn;
          Tu.tc "compound assignment" compound_assignment_matrix;
          Tu.tc "immediates" negative_and_large_immediates;
          Tu.tc "ternary + short-circuit" ternary_and_shortcircuit_in_spawn;
          Tu.tc "float functions" float_functions;
          Tu.tc "string/char output" string_and_char_output;
          Tu.tc "volatile global" volatile_global_roundtrip;
          Tu.tc "empty spawn range" empty_spawn_range;
          Tu.tc "more threads than TCUs" more_threads_than_tcus;
        ] );
    ]
