(** Tests for the ISA: registers, values, instructions, the assembler and
    program images. *)

module I = Isa.Instr
module R = Isa.Reg

let reg_names () =
  Tu.check_string "zero" "$zero" (R.name 0);
  Tu.check_string "ra" "$ra" (R.name 31);
  Tu.check_string "t0" "$t0" (R.name 8);
  Tu.check_string "f5" "$f5" (R.fname 5);
  Tu.check_string "g8" "$g8" (R.gname 8)

let reg_parse () =
  Alcotest.(check (option int)) "by name" (Some 8) (R.of_string "$t0");
  Alcotest.(check (option int)) "by number" (Some 8) (R.of_string "$8");
  Alcotest.(check (option int)) "sp" (Some 29) (R.of_string "$sp");
  Alcotest.(check (option int)) "bad" None (R.of_string "$zz");
  Alcotest.(check (option int)) "out of range" None (R.of_string "$32");
  Alcotest.(check (option int)) "freg" (Some 31) (R.f_of_string "$f31");
  Alcotest.(check (option int)) "freg bad" None (R.f_of_string "$f32");
  Alcotest.(check (option int)) "greg" (Some 8) (R.g_of_string "$g8");
  Alcotest.(check (option int)) "greg bad" None (R.g_of_string "$g9")

let value_wrap () =
  Tu.check_int "wrap max" (-2147483648) (Isa.Value.wrap32 2147483648);
  Tu.check_int "wrap -1" (-1) (Isa.Value.wrap32 0xFFFFFFFF);
  Tu.check_int "identity" 12345 (Isa.Value.wrap32 12345);
  Tu.check_int "negative identity" (-12345) (Isa.Value.wrap32 (-12345))

let value_typed () =
  Alcotest.check_raises "int of float"
    (Isa.Value.Type_error "expected int, got float 1.5") (fun () ->
      ignore (Isa.Value.to_int (Isa.Value.flt 1.5)));
  Tu.check_int "roundtrip" 7 (Isa.Value.to_int (Isa.Value.int 7))

(* ------------------------------------------------------------------ *)

let fu_classification () =
  let open I in
  Tu.check_string "add" "ALU" (fu_class_name (fu_class_of (Alu (Add, 1, 2, 3))));
  Tu.check_string "sll" "SFT" (fu_class_name (fu_class_of (Sfti (Sll, 1, 2, 3))));
  Tu.check_string "mul" "MDU" (fu_class_name (fu_class_of (Mdu (Mul, 1, 2, 3))));
  Tu.check_string "fadd" "FPU" (fu_class_name (fu_class_of (Fpu (Fadd, 1, 2, 3))));
  Tu.check_string "lw" "MEM" (fu_class_name (fu_class_of (Lw (1, 0, 2))));
  Tu.check_string "psm" "MEM" (fu_class_name (fu_class_of (Psm (1, 0, 2))));
  Tu.check_string "beq" "BR" (fu_class_name (fu_class_of (Br (Beq, 1, 2, "l"))));
  Tu.check_string "ps" "PS" (fu_class_name (fu_class_of (Ps (1, 0))));
  Tu.check_string "spawn" "CTRL" (fu_class_name (fu_class_of (Spawn (1, 2))))

let instr_targets () =
  let open I in
  Alcotest.(check (option string)) "j" (Some "foo") (target (J "foo"));
  Alcotest.(check (option string)) "beq" (Some "x") (target (Br (Beq, 1, 2, "x")));
  Alcotest.(check (option string)) "add" None (target (Alu (Add, 1, 2, 3)));
  Tu.check_string "retarget" "j bar" (to_string (with_target (J "foo") "bar"))

(* all-instruction sample for round-trip testing *)
let sample_instrs =
  let open I in
  [
    Alu (Add, 8, 9, 10); Alu (Sub, 1, 2, 3); Alu (And, 4, 5, 6);
    Alu (Or, 7, 8, 9); Alu (Xor, 10, 11, 12); Alu (Nor, 13, 14, 15);
    Alu (Slt, 16, 17, 18); Alu (Sltu, 19, 20, 21);
    Alui (Addi, 8, 9, -42); Alui (Andi, 1, 2, 255); Alui (Ori, 3, 4, 1);
    Alui (Xori, 5, 6, 7); Alui (Slti, 7, 8, 100);
    Li (9, 123456); La (10, "data_label");
    Sft (Sll, 11, 12, 13); Sfti (Sra, 14, 15, 4); Sfti (Srl, 16, 17, 2);
    Mdu (Mul, 18, 19, 20); Mdu (Div, 21, 22, 23); Mdu (Rem, 24, 25, 8);
    Fpu (Fadd, 0, 1, 2); Fpu (Fsub, 3, 4, 5); Fpu (Fmul, 6, 7, 8);
    Fpu (Fdiv, 9, 10, 11);
    Fpu1 (Fneg, 12, 13); Fpu1 (Fabs, 14, 15); Fpu1 (Fsqrt, 16, 17);
    Fpu1 (Fmov, 18, 19);
    Fcmp (Feq, 8, 0, 1); Fcmp (Flt, 9, 2, 3); Fcmp (Fle, 10, 4, 5);
    Cvt_i2f (6, 11); Cvt_f2i (12, 7); Fli (8, 3.25);
    Lw (8, 16, 9); Lwro (10, 0, 11); Sw (12, -8, 13); Swnb (14, 4, 15);
    Flw (0, 8, 16); Fsw (1, 12, 17); Pref (32, 18);
    Br (Beq, 1, 2, "lbl"); Br (Bne, 3, 4, "lbl");
    Brz (Blez, 5, "lbl"); Brz (Bgtz, 6, "lbl"); Brz (Bltz, 7, "lbl");
    Brz (Bgez, 8, "lbl"); Brz (Beqz, 9, "lbl"); Brz (Bnez, 10, "lbl");
    J "lbl"; Jal "func"; Jr 31;
    Spawn (4, 5); Join; Ps (8, 3); Psm (9, 0, 10); Chkid 8;
    Mfg (11, 0); Mtg (2, 12); Fence;
    Sys (Print_int, 4); Sys (Print_float, 0); Sys (Print_char, 5);
    Sys (Print_str, 6); Halt;
  ]

let instr_roundtrip () =
  List.iter
    (fun ins ->
      let text = I.to_string ins in
      let back = Isa.Asm.parse_instr text in
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %S" text)
        text (I.to_string back))
    sample_instrs

let asm_program_roundtrip () =
  let src =
    {|
        .text
main:   li $t0, 5
        la $t1, arr     # address of the array
        lw $t2, 0($t1)
        add $t3, $t2, $t0
        sw $t3, 4($t1)
        pint $t3
        halt
        .data
arr:    .word 10, 20, 30
f:      .float 1.5, -2.5
buf:    .space 16
msg:    .asciiz "hi\n"
|}
  in
  let p = Isa.Asm.parse src in
  let printed = Isa.Asm.print p in
  let p2 = Isa.Asm.parse printed in
  Alcotest.(check int) "same instr count"
    (List.length (Isa.Program.instructions p))
    (List.length (Isa.Program.instructions p2));
  Alcotest.(check string) "print is a fixpoint" printed (Isa.Asm.print p2)

let asm_parse_errors () =
  let bad mnem src =
    match Isa.Asm.parse src with
    | exception Isa.Asm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" mnem
  in
  bad "unknown mnemonic" "frobnicate $t0";
  bad "bad register" "add $t0, $t9, $zz";
  bad "wrong arity" "add $t0, $t1";
  bad "instruction in data" ".data\nadd $t0, $t1, $t2";
  bad "unterminated string" ".data\ns: .asciiz \"oops"

let resolve_duplicate_label () =
  let src = "main: halt\nmain: halt" in
  match Isa.Program.resolve (Isa.Asm.parse src) with
  | exception Isa.Program.Resolve_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate label error"

let resolve_undefined_target () =
  let src = "main: j nowhere" in
  match Isa.Program.resolve (Isa.Asm.parse src) with
  | exception Isa.Program.Resolve_error _ -> ()
  | _ -> Alcotest.fail "expected undefined label error"

let resolve_layout () =
  let src =
    {|
main:   la $t0, a
        la $t1, b
        halt
        .data
a:      .word 1, 2
b:      .word 3
|}
  in
  let img = Isa.Program.resolve (Isa.Asm.parse src) in
  Tu.check_int "a at base" Isa.Program.data_base_addr
    (Isa.Program.address_of img "a");
  Tu.check_int "b after a" (Isa.Program.data_base_addr + 8)
    (Isa.Program.address_of img "b");
  Tu.check_int "entry prefers main" 0 img.Isa.Program.entry;
  Tu.check_int "initial data" 3
    (Isa.Value.to_int img.Isa.Program.data_words.(2))

let resolve_memmap_link () =
  let src = "main: halt\n.data\nA: .space 16" in
  let extra = Isa.Memmap.of_ints [ ("A", [| 9; 8; 7; 6 |]) ] in
  let img = Isa.Program.resolve ~extra_data:extra (Isa.Asm.parse src) in
  Tu.check_int "linked value" 8 (Isa.Value.to_int img.Isa.Program.data_words.(1))

let resolve_memmap_overflow () =
  let src = "main: halt\n.data\nA: .space 8" in
  let extra = Isa.Memmap.of_ints [ ("A", [| 1; 2; 3 |]) ] in
  match Isa.Program.resolve ~extra_data:extra (Isa.Asm.parse src) with
  | exception Isa.Program.Resolve_error _ -> ()
  | _ -> Alcotest.fail "expected overflow error"

let resolve_memmap_fresh_label () =
  (* memory-map names that are not in the program get appended space *)
  let src = "main: halt" in
  let extra = Isa.Memmap.of_ints [ ("input", [| 5; 6 |]) ] in
  let img = Isa.Program.resolve ~extra_data:extra (Isa.Asm.parse src) in
  let a = Isa.Program.address_of img "input" in
  let w = (a - Isa.Program.data_base_addr) / 4 in
  Tu.check_int "value" 6 (Isa.Value.to_int img.Isa.Program.data_words.(w + 1))

let memmap_roundtrip () =
  let mm =
    [ ("ints", [| Isa.Value.int 1; Isa.Value.int (-2) |]);
      ("floats", [| Isa.Value.flt 0.5; Isa.Value.flt 3.0 |]) ]
  in
  let text = Isa.Memmap.print mm in
  let back = Isa.Memmap.parse text in
  Tu.check_int "entries" 2 (List.length back);
  Tu.check_bool "ints equal" true
    (Array.for_all2 Isa.Value.equal (List.assoc "ints" mm) (List.assoc "ints" back));
  Tu.check_bool "floats equal" true
    (Array.for_all2 Isa.Value.equal (List.assoc "floats" mm)
       (List.assoc "floats" back))

let memmap_parse_errors () =
  (match Isa.Memmap.parse "noname" with
  | exception Isa.Memmap.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected error");
  match Isa.Memmap.parse "x: 1 oops" with
  | exception Isa.Memmap.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [ Tu.tc "names" reg_names; Tu.tc "parse" reg_parse ] );
      ( "value",
        [ Tu.tc "wrap32" value_wrap; Tu.tc "typed cells" value_typed ] );
      ( "instr",
        [
          Tu.tc "fu classification" fu_classification;
          Tu.tc "targets" instr_targets;
          Tu.tc "text roundtrip (all forms)" instr_roundtrip;
        ] );
      ( "asm",
        [
          Tu.tc "program roundtrip" asm_program_roundtrip;
          Tu.tc "parse errors" asm_parse_errors;
        ] );
      ( "program",
        [
          Tu.tc "duplicate label" resolve_duplicate_label;
          Tu.tc "undefined target" resolve_undefined_target;
          Tu.tc "data layout" resolve_layout;
          Tu.tc "memmap link" resolve_memmap_link;
          Tu.tc "memmap overflow" resolve_memmap_overflow;
          Tu.tc "memmap fresh label" resolve_memmap_fresh_label;
        ] );
      ( "memmap",
        [
          Tu.tc "roundtrip" memmap_roundtrip;
          Tu.tc "parse errors" memmap_parse_errors;
        ] );
    ]
