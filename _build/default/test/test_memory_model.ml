(** Memory-model tests (paper §IV-A, Figs. 6 and 7).

    The litmus programs stage a writer and a reader on opposite subtrees
    of the interconnection network with background traffic on the writer's
    path to x's cache module.  Outcomes are collected across a sweep of
    the reader's start delay and the arbitration seed. *)

module D = Compiler.Driver

let opts = D.default_options
let threads = 64
let hammer_iters = 400

let config seed =
  Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
    [ Printf.sprintf "seed=%d" seed; "icn_jitter=4"; "cache_ports=2" ]

let delays = [ 0; 80; 160; 250; 400; 900 ]
let seeds = [ 1; 2; 3 ]

let outcomes ?(options = opts) src_of =
  List.concat_map
    (fun delay ->
      List.map
        (fun seed ->
          let compiled = Core.Toolchain.compile ~options (src_of delay) in
          let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
          match String.split_on_char ' ' r.Core.Toolchain.output with
          | [ rx; ry ] -> (int_of_string rx, int_of_string ry)
          | _ -> Alcotest.failf "bad litmus output %S" r.Core.Toolchain.output)
        seeds)
    delays

let fig6_src d = Core.Kernels.fig6_litmus ~threads ~hammer_iters ~delay:d ()
let fig7_src d = Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ()

let fig6_shows_relaxed_outcomes () =
  let out = outcomes fig6_src in
  let distinct = List.sort_uniq compare out in
  Tu.check_bool
    (Printf.sprintf "multiple outcomes (%d)" (List.length distinct))
    true
    (List.length distinct >= 2);
  (* the counter-intuitive relaxed result of Fig. 6 *)
  Tu.check_bool "(rx,ry) = (0,1) observed" true (List.mem (0, 1) out)

let fig6_all_outcomes_legal () =
  List.iter
    (fun (rx, ry) ->
      Tu.check_bool "rx boolean" true (rx = 0 || rx = 1);
      Tu.check_bool "ry boolean" true (ry = 0 || ry = 1))
    (outcomes fig6_src)

let fig7_invariant_holds () =
  (* with psm + compiler fences: if ry >= 1 then rx = 1, always *)
  List.iter
    (fun (rx, ry) ->
      if ry >= 1 && rx <> 1 then
        Alcotest.failf "memory model violated: (rx,ry) = (%d,%d)" rx ry)
    (outcomes fig7_src)

let fig7_without_fences_violates () =
  let out = outcomes ~options:{ opts with D.fences = false } fig7_src in
  Tu.check_bool "violation (0,>=1) observed without fences" true
    (List.exists (fun (rx, ry) -> ry >= 1 && rx = 0) out)

let fig7_reader_psm_counts () =
  (* ry is the reader's psm result: 0 if it went first, 1 if second *)
  List.iter
    (fun (_, ry) -> Tu.check_bool "ry in {0,1}" true (ry = 0 || ry = 1))
    (outcomes fig7_src)

let per_thread_program_order_holds () =
  (* memory-model rule 1: a thread reads its own last write, even with
     non-blocking stores and heavy traffic *)
  let src =
    {|
int A[256];
int errors = 0;
int main(void) {
  spawn(0, 63) {
    int i;
    for (i = 0; i < 4; i++) {
      A[$ * 4 + i] = $ + i;
      if (A[$ * 4 + i] != $ + i) {
        int one = 1;
        psm(one, errors);
      }
    }
  }
  print_int(errors);
  return 0;
}
|}
  in
  List.iter
    (fun seed ->
      let compiled = Core.Toolchain.compile src in
      let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
      Tu.check_string "no program-order violations" "0" r.Core.Toolchain.output)
    seeds

let psm_synchronization_transfers_data () =
  (* the Fig. 7 pattern used productively: producer writes a payload then
     psm-increments a flag; consumers that see the flag read the payload *)
  let src =
    {|
int payload = 0;
int flag = 0;
int bad = 0;
int main(void) {
  spawn(0, 31) {
    if ($ == 0) {
      int one = 1;
      payload = 1234;
      psm(one, flag);
    } else {
      int zero = 0;
      psm(zero, flag);
      if (zero >= 1) {
        if (payload != 1234) {
          int one = 1;
          psm(one, bad);
        }
      }
    }
  }
  print_int(bad);
  return 0;
}
|}
  in
  List.iter
    (fun seed ->
      let compiled = Core.Toolchain.compile src in
      let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
      Tu.check_string "fence + psm publishes payload" "0" r.Core.Toolchain.output)
    [ 1; 2; 3; 4; 5 ]

let join_drains_stores () =
  (* all non-blocking stores are visible to the master after join *)
  let src =
    {|
int A[512];
int main(void) {
  int i;
  int sum = 0;
  spawn(0, 511) { A[$] = 1; }
  for (i = 0; i < 512; i++) sum = sum + A[i];
  print_int(sum);
  return 0;
}
|}
  in
  List.iter
    (fun seed ->
      let compiled = Core.Toolchain.compile src in
      let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
      Tu.check_string "all stores visible after join" "512" r.Core.Toolchain.output)
    seeds

let functional_mode_hides_races () =
  (* §III-A: the serializing functional mode cannot reveal the relaxed
     outcome — it always executes thread 0 to completion first *)
  let r =
    Core.Toolchain.run_functional (Core.Toolchain.compile (fig6_src 0))
  in
  Tu.check_string "serialized outcome" "1 1" r.Core.Toolchain.output

let () =
  Alcotest.run "memory_model"
    [
      ( "fig6",
        [
          Tu.tc "relaxed outcomes appear" fig6_shows_relaxed_outcomes;
          Tu.tc "outcomes well-formed" fig6_all_outcomes_legal;
        ] );
      ( "fig7",
        [
          Tu.tc "invariant holds with fences" fig7_invariant_holds;
          Tu.tc "violated without fences" fig7_without_fences_violates;
          Tu.tc "psm results well-formed" fig7_reader_psm_counts;
        ] );
      ( "rules",
        [
          Tu.tc "per-thread program order" per_thread_program_order_holds;
          Tu.tc "psm publishes data" psm_synchronization_transfers_data;
          Tu.tc "join drains stores" join_drains_stores;
          Tu.tc "functional mode hides races" functional_mode_hides_races;
        ] );
    ]
