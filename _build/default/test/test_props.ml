(** Property-based tests (qcheck) on the toolchain's core invariants. *)

let config = Xmtsim.Config.tiny

(* compaction of a random array always reports the nonzero count, and the
   cycle-mode result equals the functional-mode result *)
let prop_compaction =
  QCheck.Test.make ~count:15 ~name:"compaction counts nonzeros"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 5))
    (fun l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
      let src = Core.Kernels.compaction ~n in
      let fo, co, _ = Tu.both ~memmap ~config src in
      let expected = string_of_int (Core.Reference.count_nonzero a) in
      fo = expected && co = expected)

let prop_reduce_psm =
  QCheck.Test.make ~count:15 ~name:"psm reduction sums"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range (-50) 50))
    (fun l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
      let fo, co, _ = Tu.both ~memmap ~config (Core.Kernels.reduce_psm ~n) in
      let expected = string_of_int (Core.Reference.sum a) in
      fo = expected && co = expected)

(* serial expression evaluation matches OCaml's semantics *)
let prop_serial_arith =
  QCheck.Test.make ~count:40 ~name:"serial arithmetic matches host"
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range 1 100))
    (fun (x, y, z) ->
      let src =
        Printf.sprintf
          "int main() { int x = %d; int y = %d; int z = %d; print_int((x + y) \
           * 3 - x / z + (y %% z)); return 0; }"
          x y z
      in
      let expected = string_of_int (Isa.Value.wrap32 (((x + y) * 3) - (x / z) + (y mod z))) in
      let fo, co, _ = Tu.both ~config src in
      fo = expected && co = expected)

let prop_bitwise =
  QCheck.Test.make ~count:40 ~name:"bitwise ops match host"
    QCheck.(pair (int_range 0 100000) (int_range 0 20))
    (fun (x, s) ->
      let src =
        Printf.sprintf
          "int main() { int x = %d; int s = %d; print_int(((x << 2) >> s) ^ (x \
           & 255) | (x %% 7)); return 0; }"
          x s
      in
      let expected =
        string_of_int
          (Isa.Value.wrap32 ((Isa.Value.wrap32 (x lsl 2) asr s) lxor (x land 255) lor (x mod 7)))
      in
      let fo, _, _ = Tu.both ~config src in
      fo = expected)

(* assembler round trip on random instruction sequences *)
let arbitrary_instr =
  let open Isa.Instr in
  let r = QCheck.Gen.int_range 0 31 in
  let g =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map3 (fun d a b -> Alu (Add, d, a, b)) r r r;
        QCheck.Gen.map3 (fun d a b -> Alu (Sltu, d, a, b)) r r r;
        QCheck.Gen.map3 (fun d a i -> Alui (Addi, d, a, i - 500))
          r r (QCheck.Gen.int_range 0 1000);
        QCheck.Gen.map2 (fun d i -> Li (d, i - 100000)) r (QCheck.Gen.int_range 0 200000);
        QCheck.Gen.map3 (fun t o b -> Lw (t, o * 4, b)) r (QCheck.Gen.int_range 0 64) r;
        QCheck.Gen.map3 (fun t o b -> Swnb (t, o * 4, b)) r (QCheck.Gen.int_range 0 64) r;
        QCheck.Gen.map3 (fun d a b -> Fpu (Fmul, d, a, b)) r r r;
        QCheck.Gen.map (fun d -> Brz (Bnez, d, "lbl")) r;
        QCheck.Gen.map (fun d -> Ps (d, 3)) r;
        QCheck.Gen.return Fence;
        QCheck.Gen.return Join;
      ]
  in
  QCheck.make ~print:Isa.Instr.to_string g

let prop_asm_roundtrip =
  QCheck.Test.make ~count:300 ~name:"asm text roundtrip"
    arbitrary_instr
    (fun ins ->
      let text = Isa.Instr.to_string ins in
      Isa.Instr.to_string (Isa.Asm.parse_instr text) = text)

(* value wrapping behaves like 32-bit two's complement *)
let prop_wrap32 =
  QCheck.Test.make ~count:500 ~name:"wrap32 is 32-bit two's complement"
    QCheck.int (fun x ->
      let w = Isa.Value.wrap32 x in
      w >= -2147483648 && w <= 2147483647
      && (x - w) mod 4294967296 = 0)

let prop_wrap32_idempotent =
  QCheck.Test.make ~count:500 ~name:"wrap32 idempotent" QCheck.int (fun x ->
      Isa.Value.wrap32 (Isa.Value.wrap32 x) = Isa.Value.wrap32 x)

(* the pretty-printer output re-typechecks for random small programs *)
let arbitrary_source =
  let g =
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* k = int_range 1 5 in
      return
        (Printf.sprintf
           {|
int A[%d];
int acc = 0;
int main(void) {
  int i;
  for (i = 0; i < %d; i++) A[i] = i * %d;
  spawn(0, %d) {
    int v = A[$];
    psm(v, acc);
  }
  print_int(acc);
  return 0;
}
|}
           n n k (n - 1))
      |> fun x -> x)
  in
  QCheck.make ~print:(fun s -> s) g

let prop_pretty_roundtrip =
  QCheck.Test.make ~count:20 ~name:"pretty output re-typechecks and agrees"
    arbitrary_source (fun src ->
      let p = Xmtc.Typecheck.program_of_source src in
      let printed = Xmtc.Pretty.program_to_string p in
      let r1 = Core.Toolchain.exec ~functional:true src in
      let r2 = Core.Toolchain.exec ~functional:true printed in
      r1.Core.Toolchain.output = r2.Core.Toolchain.output)

(* random graphs: BFS kernel agrees with host reference *)
let prop_bfs =
  QCheck.Test.make ~count:8 ~name:"bfs agrees with reference"
    QCheck.(pair (int_range 10 50) (int_range 1 3))
    (fun (n, epv) ->
      let g = Core.Workloads.random_graph ~chain:(n / 3) ~seed:(n + epv) ~n
          ~edges_per_vertex:epv ()
      in
      let src = Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0 in
      let reached, total = Core.Reference.bfs_summary g 0 in
      let r =
        Core.Toolchain.exec ~memmap:(Core.Workloads.graph_memmap g) ~config src
      in
      r.Core.Toolchain.output = Printf.sprintf "%d %d" reached total)

(* random straight-line+control programs behave identically at every
   optimization level (the serial optimizer is semantics-preserving) *)
let arbitrary_program =
  let g =
    QCheck.Gen.(
      let* seed = int_range 1 100000 in
      let* depth = int_range 1 4 in
      let r = Desim.Rng.create ~seed in
      (* build a random int expression over variables a,b,c avoiding
         division by anything possibly zero *)
      let rec expr d =
        if d = 0 then
          match Desim.Rng.int r 4 with
          | 0 -> "a"
          | 1 -> "b"
          | 2 -> "c"
          | _ -> string_of_int (Desim.Rng.int r 100 - 50)
        else
          let x = expr (d - 1) and y = expr (d - 1) in
          match Desim.Rng.int r 8 with
          | 0 -> Printf.sprintf "(%s + %s)" x y
          | 1 -> Printf.sprintf "(%s - %s)" x y
          | 2 -> Printf.sprintf "(%s * %s)" x y
          | 3 -> Printf.sprintf "(%s & %s)" x y
          | 4 -> Printf.sprintf "(%s | %s)" x y
          | 5 -> Printf.sprintf "(%s ^ %s)" x y
          | 6 -> Printf.sprintf "(%s << 1)" x
          | _ -> Printf.sprintf "(%s >> 2)" x
      in
      let e1 = expr depth and e2 = expr depth and cond = expr (min 2 depth) in
      return
        (Printf.sprintf
           {|
int out = 0;
int main(void) {
  int a = 7;
  int b = -13;
  int c = 100;
  int i;
  for (i = 0; i < 5; i++) {
    a = %s;
    if ((%s) > 0) b = b + a; else b = b - 1;
    c = c ^ (%s);
  }
  print_int(a + b * 3 + c);
  return 0;
}
|}
           e1 cond e2))
  in
  QCheck.make ~print:(fun s -> s) g

let prop_opt_levels_agree =
  QCheck.Test.make ~count:25 ~name:"O0 = O1 = O2 on random programs"
    arbitrary_program (fun src ->
      let out lvl =
        let options =
          { Compiler.Driver.default_options with Compiler.Driver.opt_level = lvl }
        in
        (Core.Toolchain.exec ~options ~config src).Core.Toolchain.output
      in
      let o0 = out 0 in
      o0 = out 1 && o0 = out 2)

(* clustering factors never change results *)
let prop_clustering_invariant =
  QCheck.Test.make ~count:10 ~name:"clustering preserves results"
    QCheck.(pair (int_range 1 30) (int_range 1 8))
    (fun (n, factor) ->
      let a = Core.Workloads.random_array ~seed:n ~n ~bound:10 in
      let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
      let options =
        { Compiler.Driver.default_options with Compiler.Driver.cluster = factor }
      in
      let r =
        Core.Toolchain.exec ~options ~memmap ~config (Core.Kernels.reduce_psm ~n)
      in
      r.Core.Toolchain.output = string_of_int (Core.Reference.sum a))

let () =
  Alcotest.run "props"
    [
      ( "programs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compaction;
            prop_reduce_psm;
            prop_serial_arith;
            prop_bitwise;
            prop_bfs;
            prop_clustering_invariant;
            prop_opt_levels_agree;
            prop_pretty_roundtrip;
          ] );
      ( "isa",
        List.map QCheck_alcotest.to_alcotest
          [ prop_asm_roundtrip; prop_wrap32; prop_wrap32_idempotent ] );
    ]
