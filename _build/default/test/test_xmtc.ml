(** Tests for the XMTC front end: lexer, parser, typechecker. *)

let lex src = List.map fst (Xmtc.Lexer.tokenize src)

let lexer_basic () =
  let open Xmtc.Lexer in
  Alcotest.(check int) "token count" 6 (List.length (lex "int x = 42 ;"));
  (match lex "$" with
  | [ DOLLAR; EOF ] -> ()
  | _ -> Alcotest.fail "dollar");
  (match lex "0x10" with
  | [ INT 16; EOF ] -> ()
  | _ -> Alcotest.fail "hex");
  (match lex "1.5f" with
  | [ FLOAT 1.5; EOF ] -> ()
  | _ -> Alcotest.fail "float suffix");
  (match lex "'a'" with
  | [ CHAR 'a'; EOF ] -> ()
  | _ -> Alcotest.fail "char");
  match lex "a <<= b" with
  | [ ID "a"; PUNCT "<<="; ID "b"; EOF ] -> ()
  | _ -> Alcotest.fail "compound op"

let lexer_comments () =
  let open Xmtc.Lexer in
  (match lex "x // comment\n y" with
  | [ ID "x"; ID "y"; EOF ] -> ()
  | _ -> Alcotest.fail "line comment");
  match lex "x /* multi\nline */ y" with
  | [ ID "x"; ID "y"; EOF ] -> ()
  | _ -> Alcotest.fail "block comment"

let lexer_errors () =
  let bad src =
    match Xmtc.Lexer.tokenize src with
    | exception Xmtc.Lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected lex error for %S" src
  in
  bad "\"unterminated";
  bad "'ab'";
  bad "`"

(* ------------------------------------------------------------------ *)

let parses src =
  match Xmtc.Parser.parse src with
  | _ -> ()
  | exception Xmtc.Parser.Parse_error { line; msg } ->
    Alcotest.failf "unexpected parse error at line %d: %s" line msg

let parse_fails src =
  match Xmtc.Parser.parse src with
  | exception Xmtc.Parser.Parse_error _ -> ()
  | _ -> Alcotest.failf "expected parse error for %S" src

let parser_accepts () =
  parses "int x;";
  parses "int x = 1, y = 2;";
  parses "volatile int flag;";
  parses "int A[10][2];" |> ignore;
  parses "float f(float x) { return x * 2.0; }";
  parses "int main(void) { return 0; }";
  parses "void g() { ; }";
  parses "int main() { int i; for (i = 0; i < 10; i++) ; return 0; }";
  parses "int main() { do { } while (0); return 0; }";
  parses "int main() { spawn(0, 9) { int x = $; } return 0; }";
  parses "int main() { int *p; p = &*p; return 0; }";
  parses "int main() { int x = 1 ? 2 : 3; return x; }";
  parses "int main() { int x = (int)1.5; float y = (float)2; return 0; }"

let parser_rejects () =
  parse_fails "int;";
  parse_fails "int main( { }";
  parse_fails "int main() { return }";
  parse_fails "int main() { spawn(0) {} }";
  parse_fails "int main() { ps(x); }"

let parser_precedence () =
  let e = Xmtc.Parser.parse_expr "1 + 2 * 3" in
  (match e.Xmtc.Ast.node with
  | Xmtc.Ast.Ebinop (Xmtc.Types.Add, _, { node = Xmtc.Ast.Ebinop (Xmtc.Types.Mul, _, _); _ })
    -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  let e = Xmtc.Parser.parse_expr "a = b = c" in
  match e.Xmtc.Ast.node with
  | Xmtc.Ast.Eassign (_, { node = Xmtc.Ast.Eassign (_, _); _ }) -> ()
  | _ -> Alcotest.fail "assignment is right associative"

(* ------------------------------------------------------------------ *)

let checks src =
  match Xmtc.Typecheck.program_of_source src with
  | _ -> ()
  | exception Xmtc.Typecheck.Error { line; msg } ->
    Alcotest.failf "unexpected type error at line %d: %s" line msg

let check_fails src =
  match Xmtc.Typecheck.program_of_source src with
  | exception Xmtc.Typecheck.Error _ -> ()
  | _ -> Alcotest.failf "expected type error for %S" src

let typecheck_accepts () =
  checks "int main(void) { return 0; }";
  checks "int A[4]; int main() { A[0] = 1; return A[0]; }";
  checks "float f; int main() { f = 1; return (int)f; }";
  checks "int g(int x) { return x + 1; } int main() { return g(41); }";
  checks "int main() { int *p = 0; return 0; }";
  checks
    "int base = 0; int main() { spawn(0, 3) { int inc = 1; ps(inc, base); } \
     return base; }";
  checks
    "int y = 0; int main() { spawn(0, 3) { int v = 1; psm(v, y); } return y; }";
  checks "int main() { spawn(0, 1) { spawn(0, 1) { int x = $; } } return 0; }";
  checks "int main() { print_string(\"hello\"); return 0; }";
  checks "int main() { int *p = malloc(16); p[0] = 1; return p[0]; }";
  checks "float s(float x) { return sqrtf(x); } int main() { return 0; }"

let typecheck_rejects () =
  check_fails "int main() { return x; }";
  check_fails "int main() { int x = 1; int x = 2; return 0; }";
  check_fails "void main2() { }" (* no main *);
  check_fails "int main() { return $; }";
  check_fails "int main() { int i = 1; ps(i, i); return 0; }";
  check_fails "int b; int main() { int i; psm(i, b); return 0; }";
  check_fails "int f() { return 1; } int main() { spawn(0,1) { int x = f(); } return 0; }";
  check_fails "int main() { spawn(0,1) { return; } return 0; }";
  check_fails "int main() { spawn(0,1) { int A[4]; } return 0; }";
  check_fails "int main() { spawn(0,1) { int x; int *p = &x; } return 0; }";
  check_fails "int main() { spawn(0,1) { int *p = malloc(4); } return 0; }";
  check_fails "int main() { break; return 0; }";
  check_fails "int main() { float f = 1.0; if (f) return 1; return 0; }";
  check_fails "int main() { int x = 1 + \"s\"; return 0; }";
  check_fails "void v; int main() { return 0; }";
  check_fails "int main() { 1 = 2; return 0; }";
  check_fails "int main() { int x; x ++ ++; return 0; }";
  check_fails
    "int b = 0; int main() { spawn(0,1) { int i = 1; ps(i, b); int z = b; } \
     return 0; }"
    (* ps base unreadable from a virtual thread *)

let typecheck_structs () =
  checks
    "struct p { int x; int y; }; struct p g; int main() { g.x = 1; return \
     g.x + g.y; }";
  checks
    "struct n { int v; struct n *next; }; int main() { struct n a; a.next = \
     (struct n *)0; return a.v; }";
  checks
    "struct p { int x; }; struct p A[4]; int main() { A[2].x = 5; return \
     A[2].x; }";
  checks
    "struct q { int t[3]; int z; }; struct q g; int main() { g.t[1] = 7; \
     return g.t[1] + g.z; }";
  checks
    "struct a { int x; }; struct b { struct a inner; int y; }; struct b g; \
     int main() { g.inner.x = 2; return g.inner.x + g.y; }";
  (* rejections *)
  check_fails "struct p { int x; }; int main() { struct p a; struct p b; a = b; return 0; }";
  check_fails "struct p { int x; }; int f(struct p v) { return v.x; } int main() { return 0; }";
  check_fails "int main() { struct undefined u; return 0; }";
  check_fails "struct r { struct r inner; }; int main() { return 0; }";
  check_fails "struct p { int x; int x; }; int main() { return 0; }";
  check_fails "struct p { int x; }; struct p { int y; }; int main() { return 0; }";
  check_fails "struct p { int x; }; int main() { struct p g; return g.nope; }";
  check_fails
    "struct p { int x; }; int main() { spawn(0,1) { struct p local; } return 0; }";
  check_fails "struct p { int x; }; int main() { int v = 1; return v.x; }"

let typecheck_volatile_and_globals () =
  checks "volatile int flag; int main() { flag = 1; return flag; }";
  checks "int A[3] = {1, 2, 3}; int main() { return A[2]; }";
  checks "float F[2] = {1.5, 2.5}; int main() { return (int)F[0]; }";
  check_fails "int A[2] = {1, 2, 3}; int main() { return 0; }";
  check_fails "int x = y; int y = 1; int main() { return 0; }"

let typecheck_string_literals () =
  let p = Xmtc.Typecheck.program_of_source
      "int main() { print_string(\"ab\"); return 0; }"
  in
  let strings =
    List.filter (fun ((v : Xmtc.Tast.var), _) ->
        String.length v.vname >= 6 && String.sub v.vname 0 6 = "__str_")
      p.Xmtc.Tast.globals
  in
  Alcotest.(check int) "one interned string" 1 (List.length strings);
  match strings with
  | [ (_, Xmtc.Tast.Cints codes) ] ->
    Alcotest.(check (list int)) "codes" [ 97; 98; 0 ] codes
  | _ -> Alcotest.fail "expected int init"

let pretty_reparses () =
  (* pretty output of the typed AST is valid XMTC again *)
  let src =
    {|
int A[8];
int base = 0;
int helper(int x) { return x * 2 + 1; }
int main(void) {
  int i;
  for (i = 0; i < 8; i++) A[i] = helper(i);
  spawn(0, 7) {
    int inc = 1;
    if (A[$] > 4) { ps(inc, base); }
  }
  return base;
}
|}
  in
  let p = Xmtc.Typecheck.program_of_source src in
  let printed = Xmtc.Pretty.program_to_string p in
  match Xmtc.Typecheck.program_of_source printed with
  | _ -> ()
  | exception e ->
    Alcotest.failf "pretty output did not re-typecheck: %s\n%s"
      (Printexc.to_string e) printed

let () =
  Alcotest.run "xmtc"
    [
      ( "lexer",
        [
          Tu.tc "basic" lexer_basic;
          Tu.tc "comments" lexer_comments;
          Tu.tc "errors" lexer_errors;
        ] );
      ( "parser",
        [
          Tu.tc "accepts" parser_accepts;
          Tu.tc "rejects" parser_rejects;
          Tu.tc "precedence" parser_precedence;
        ] );
      ( "typecheck",
        [
          Tu.tc "accepts" typecheck_accepts;
          Tu.tc "rejects" typecheck_rejects;
          Tu.tc "globals/volatile" typecheck_volatile_and_globals;
          Tu.tc "structs" typecheck_structs;
          Tu.tc "string literals" typecheck_string_literals;
        ] );
      ("pretty", [ Tu.tc "reparses" pretty_reparses ]);
    ]
