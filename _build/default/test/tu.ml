(** Shared helpers for the test suites. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f

(** Compile and run a source in both modes; return (functional output,
    cycle output, cycles). *)
let both ?options ?memmap ?(config = Xmtsim.Config.tiny) src =
  let compiled = Core.Toolchain.compile ?options ?memmap src in
  let f = Core.Toolchain.run_functional compiled in
  let c = Core.Toolchain.run_cycle ~config compiled in
  (f.Core.Toolchain.output, c.Core.Toolchain.output, c.Core.Toolchain.cycles)

(** Assert a program prints [expected] in both modes. *)
let expect_output ?options ?memmap ?config name expected src =
  let fo, co, _ = both ?options ?memmap ?config src in
  check_string (name ^ " (functional)") expected fo;
  check_string (name ^ " (cycle)") expected co

(** Run handwritten assembly on the cycle machine. *)
let run_asm ?(config = Xmtsim.Config.tiny) ?memmap asm =
  let prog = Isa.Asm.parse asm in
  let img = Isa.Program.resolve ?extra_data:memmap prog in
  let m = Xmtsim.Machine.create ~config img in
  let r = Xmtsim.Machine.run m in
  (r, m)

let run_asm_functional ?memmap asm =
  let prog = Isa.Asm.parse asm in
  let img = Isa.Program.resolve ?extra_data:memmap prog in
  Xmtsim.Functional_mode.run img
