(** Shared plumbing for the evaluation harness. *)

let section title =
  let bar = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* monotonic, so a host clock step mid-bench cannot produce negative or
   inflated timings *)
let wall f = Obs.Clock.wall f

(** Nanoseconds per run of [f], measured with Bechamel's OLS estimator on
    the monotonic clock; falls back to a single wall-clock measurement for
    long-running functions. *)
let bechamel_ns_per_run ?(quota = 3.0) ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second quota) ~stabilize:false
      ~sampling:(`Linear 1) ~start:1 ()
  in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  let est = ref None in
  Hashtbl.iter
    (fun _ v ->
      match Analyze.OLS.estimates v with
      | Some (x :: _) -> est := Some x
      | _ -> ())
    analyzed;
  match !est with
  | Some ns when ns > 0.0 -> ns
  | Some _ | None ->
    let _, secs = wall f in
    secs *. 1e9

let compile ?options ?memmap src = Core.Toolchain.compile ?options ?memmap src

(* -------- campaign plumbing -------- *)

(** Worker-domain count for campaign-backed experiments, set by
    [bench/main.exe --jobs N].  Results are byte-identical for any
    value; only wall-clock changes. *)
let jobs = ref 1

(* The harness-wide warm pool and artifact cache: domains spawn once
   and compiled programs are shared across every campaign-backed
   experiment in the run, so bench iterations measure simulation, not
   Domain.spawn or recompiles. *)
let pool_ref : Campaign.Pool.t option ref = ref None

(** The shared pool, (re)created at least [workers] wide.  [main.exe]
    shuts it down at exit via {!shutdown_pool}. *)
let pool ~workers =
  match !pool_ref with
  | Some p when Campaign.Pool.width p >= workers -> p
  | old ->
    Option.iter Campaign.Pool.shutdown old;
    let p = Campaign.Pool.create ~workers () in
    pool_ref := Some p;
    p

let shutdown_pool () =
  Option.iter Campaign.Pool.shutdown !pool_ref;
  pool_ref := None

(** Compile cache shared by every campaign-backed experiment. *)
let artifacts = Core.Toolchain.Artifacts.create ()

(** Run [(name, job)] specs through the campaign engine at the
    harness-wide [--jobs] width (on the shared warm pool, compiles
    deduplicated) and return the runs in submission order.  Benches
    expect every job to succeed, so the first failure escalates with
    its captured error. *)
let run_jobs specs =
  let req = Campaign.Request.make ~jobs:!jobs specs in
  let results =
    Campaign.run_request ~pool:(pool ~workers:!jobs) ~artifacts req
  in
  Array.map
    (fun r ->
      match r.Campaign.r_outcome with
      | Ok run -> run
      | Error f ->
        failwith (Printf.sprintf "%s: %s" r.Campaign.r_name f.Campaign.f_exn))
    results

let cycles_of ?(config = Xmtsim.Config.fpga64) compiled =
  (Core.Toolchain.run_cycle ~config compiled).Core.Toolchain.cycles

(* -------- machine-readable benchmark records -------- *)

let slug name =
  String.map (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    name

(** Write a [BENCH_<name>.json] record in the current directory so the
    bench trajectory can be tracked PR-over-PR.  [fields] extend the
    standard envelope. *)
let emit_record ~name fields =
  let path = Printf.sprintf "BENCH_%s.json" (slug name) in
  Obs.Json.write_file ~pretty:true path
    (Obs.Json.Obj (("schema", Obs.Json.Str "xmt.bench.v1")
                   :: ("bench", Obs.Json.Str name) :: fields));
  Printf.printf "  [wrote %s]\n%!" path

(** One instrumented cycle-accurate run of [compiled]: returns the run and
    writes its BENCH record (simulated cycles, host wall-clock, desim
    events/sec, cache hit rates). *)
let record_run ?(config = Xmtsim.Config.fpga64) ~name compiled =
  let r, secs = wall (fun () -> Core.Toolchain.run_cycle ~config compiled) in
  let s = r.Core.Toolchain.stats in
  let rate h m = if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m) in
  let per_sec n = if secs > 0.0 then float_of_int n /. secs else 0.0 in
  emit_record ~name
    [
      ("config", Obs.Json.Str config.Xmtsim.Config.name);
      ("cycles", Obs.Json.Int r.Core.Toolchain.cycles);
      ("instructions", Obs.Json.Int r.Core.Toolchain.instructions);
      ("host_wall_seconds", Obs.Json.Float secs);
      ("events_processed", Obs.Json.Int r.Core.Toolchain.events);
      ("events_per_sec", Obs.Json.Float (per_sec r.Core.Toolchain.events));
      ("sim_cycles_per_sec", Obs.Json.Float (per_sec r.Core.Toolchain.cycles));
      ("sim_instrs_per_sec", Obs.Json.Float (per_sec r.Core.Toolchain.instructions));
      ( "cache_hit_rate",
        Obs.Json.Float (rate s.Xmtsim.Stats.cache_hits s.Xmtsim.Stats.cache_misses) );
      ( "rocache_hit_rate",
        Obs.Json.Float (rate s.Xmtsim.Stats.rocache_hits s.Xmtsim.Stats.rocache_misses) );
      ("icn_packets", Obs.Json.Int s.Xmtsim.Stats.icn_packets);
      ("dram_reads", Obs.Json.Int s.Xmtsim.Stats.dram_reads);
    ];
  r

let commas n =
  let s = string_of_int n in
  let b = Buffer.create 16 in
  let len = String.length s in
  String.iteri
    (fun i c ->
      Buffer.add_char b c;
      let rem = len - i - 1 in
      if rem > 0 && rem mod 3 = 0 && c <> '-' then Buffer.add_char b ',')
    s;
  Buffer.contents b
