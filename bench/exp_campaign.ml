(** Campaign-engine self-benchmark: the full §III design-space sweep
    ({!Exp_designspace.all_specs}, 18 independent compile+simulate jobs)
    run serially and then across worker domains {e on the same warm
    pool} — helper domains already spawned, compiled artifacts already
    shared — so the two timings compare scheduling and simulation, not
    [Domain.spawn] or recompiles.

    Two claims are checked and recorded:
    - determinism: the host-independent campaign reports of the serial
      and parallel runs are byte-identical (hard failure here);
    - throughput: parallel wall-clock vs serial.  The record carries
      [speedup] and [host_cores]; the bench gate {e enforces
      speedup > 1} whenever the host has at least two cores (on a
      single-core host parallelism cannot win and the bound is
      reported but not enforced). *)

open Bench_util

let run () =
  section "campaign engine: parallel design-space sweep (determinism + speedup)";
  let specs = Exp_designspace.all_specs () in
  let total = List.length specs in
  let host_cores = Domain.recommended_domain_count () in
  let workers =
    if !jobs > 1 then !jobs else min 4 (max 2 host_cores)
  in
  let pool = pool ~workers in
  let campaign w =
    let req = Campaign.Request.make ~jobs:w specs in
    let rs, secs =
      wall (fun () -> Campaign.run_request ~pool ~artifacts req)
    in
    if Campaign.failed_count rs > 0 then
      failwith "campaign bench: a sweep job failed";
    (Obs.Json.to_string (Campaign.report_to_json ~host:false rs), rs, secs)
  in
  Printf.printf "%d jobs (par_mem sweep), %d host cores, serial then %d workers...\n%!"
    total host_cores workers;
  (* warm-up: fill the artifact cache and fault in the pool, so serial
     and parallel both measure steady-state throughput *)
  let _ = campaign workers in
  let serial_report, rs, serial_secs = campaign 1 in
  let parallel_report, _, parallel_secs = campaign workers in
  let identical = String.equal serial_report parallel_report in
  let speedup = if parallel_secs > 0.0 then serial_secs /. parallel_secs else 0.0 in
  let hits, misses = Core.Toolchain.Artifacts.stats artifacts in
  Printf.printf "  serial:   %6.2f s\n  %d workers: %6.2f s  (%.2fx)\n%!"
    serial_secs workers parallel_secs speedup;
  Printf.printf "  compiles: %d shared artifacts, %d cache hits\n%!" misses hits;
  Printf.printf "  reports byte-identical: %s\n%!"
    (if identical then "[ok]" else "[MISMATCH]");
  if not identical then failwith "campaign bench: serial/parallel reports differ";
  let total_cycles =
    Array.fold_left
      (fun acc r ->
        match r.Campaign.r_outcome with
        | Ok run -> acc + run.Core.Toolchain.cycles
        | Error _ -> acc)
      0 rs
  in
  let total_events =
    Array.fold_left
      (fun acc r ->
        match r.Campaign.r_outcome with
        | Ok run -> acc + run.Core.Toolchain.events
        | Error _ -> acc)
      0 rs
  in
  emit_record ~name:"campaign"
    [
      ("jobs", Obs.Json.Int total);
      ("workers", Obs.Json.Int workers);
      (* the gate only enforces the speedup bound on multi-core hosts *)
      ("host_cores", Obs.Json.Int host_cores);
      (* deterministic: sum of simulated cycles across the sweep *)
      ("cycles", Obs.Json.Int total_cycles);
      ("serial_seconds", Obs.Json.Float serial_secs);
      ("parallel_seconds", Obs.Json.Float parallel_secs);
      ("speedup", Obs.Json.Float speedup);
      ("artifact_hits", Obs.Json.Int hits);
      ("artifact_compiles", Obs.Json.Int misses);
      ( "events_per_sec",
        Obs.Json.Float
          (if parallel_secs > 0.0 then
             float_of_int total_events /. parallel_secs
           else 0.0) );
      ("deterministic", Obs.Json.Bool identical);
    ]
