(** §IV-C — virtual-thread clustering (coarsening).

    Extremely fine-grained spawn blocks pay one ps+chkid dispatch round per
    virtual thread; clustering groups [c] threads into one, cutting the
    scheduling overhead by [c] and enabling loop prefetching.  The factor
    sweep runs as one campaign (compiler options are part of the job, so
    each point recompiles independently — [--jobs N] parallelizes it).
    Reproduction target: cycles improve with moderate clustering on a
    fine-grained kernel, then flatten or regress once threads become
    scarce relative to TCUs (load imbalance). *)

open Bench_util

let run () =
  section "\xc2\xa7IV-C: virtual-thread clustering sweep (vecadd, n=16384, fpga64)";
  let n = 16384 in
  let src = Core.Kernels.vecadd ~n in
  let factors = [ 1; 2; 4; 8; 16; 32; 64 ] in
  Printf.printf "%10s %12s %16s %14s\n" "factor" "cycles" "virtual threads"
    "vs factor 1";
  let specs =
    List.map
      (fun factor ->
        let options =
          { Compiler.Driver.default_options with Compiler.Driver.cluster = factor }
        in
        ( Printf.sprintf "cluster=%d" factor,
          Core.Toolchain.job
            ~name:(Printf.sprintf "cluster=%d" factor)
            ~options ~config:Xmtsim.Config.fpga64 src ))
      factors
  in
  let rs = run_jobs specs in
  let base = rs.(0).Core.Toolchain.cycles in
  let best = ref max_int in
  List.iteri
    (fun i factor ->
      let r = rs.(i) in
      if r.Core.Toolchain.cycles < !best then best := r.Core.Toolchain.cycles;
      Printf.printf "%10d %12s %16d %13.2fx\n%!" factor
        (commas r.Core.Toolchain.cycles)
        r.Core.Toolchain.stats.Xmtsim.Stats.virtual_threads
        (float_of_int base /. float_of_int r.Core.Toolchain.cycles))
    factors;
  Printf.printf
    "\nshape check: some clustering factor beats factor 1: %.2fx %s\n"
    (float_of_int base /. float_of_int !best)
    (if !best < base then "[ok]" else "[MISMATCH]")
