(** §I item 3 / §III — the simulator as a design-space exploration tool.

    "The simulator allows users to change the parameters of the simulated
    architecture...  system architects can use it to explore a much
    greater design-space of shared memory many-cores."  Three single-knob
    sweeps on a memory-intensive kernel, each fanned out through the
    campaign engine ([--jobs N] parallelizes the sweep without changing a
    single cycle count).  Reproduction targets: longer interconnect and
    slower DRAM hurt; more cache modules (more banking) help a
    scatter/gather workload. *)

open Bench_util

let kernel = Core.Kernels.par_mem ~threads:512 ~iters:24 ~n:32768

(** The full sweep as campaign job specs — also the workload of the
    [campaign] speedup/determinism experiment ({!Exp_campaign}). *)
let sweeps =
  [
    ("interconnection network latency", "icn_latency", [ 2; 6; 12; 24; 48 ]);
    ("DRAM latency", "dram_latency", [ 20; 60; 150; 400 ]);
    ("DRAM bandwidth (requests/cycle)", "dram_bandwidth", [ 1; 2; 4; 8 ]);
    ("shared cache modules (banking)", "num_cache_modules", [ 2; 4; 8; 16; 32 ]);
  ]

let specs_of_sweep (_, key, values) =
  List.map
    (fun v ->
      let point = Printf.sprintf "%s=%d" key v in
      let config = Xmtsim.Config.with_overrides Xmtsim.Config.fpga64 [ point ] in
      (point, Core.Toolchain.job ~name:point ~config kernel))
    values

let all_specs () = List.concat_map specs_of_sweep sweeps

let run () =
  section
    "\xc2\xa7III: design-space sweeps (par_mem, 512 threads, fpga64 base config)";
  List.iter
    (fun ((name, key, values) as sweep) ->
      subsection name;
      Printf.printf "%16s %12s\n" key "cycles";
      let rs = run_jobs (specs_of_sweep sweep) in
      List.iteri
        (fun i v ->
          Printf.printf "%16d %12s\n%!" v (commas rs.(i).Core.Toolchain.cycles))
        values)
    sweeps
