(** §III-A — functional vs cycle-accurate simulation speed.

    "The functional simulation mode does not provide any cycle-accurate
    information hence it is orders of magnitude faster than the
    cycle-accurate mode."  Correctness (functional and cycle-accurate
    agree on program output) is established by one campaign over both
    modes of every case; the host-time ratios are then measured locally
    with Bechamel — timing loops must not share the machine with other
    jobs, so they stay outside the campaign. *)

open Bench_util

let run () =
  section "\xc2\xa7III-A: functional vs cycle-accurate mode (host time, same program)";
  let n = 4096 in
  let g = Core.Workloads.random_graph ~chain:16 ~seed:11 ~n ~edges_per_vertex:4 () in
  let cases =
    [
      ( "BFS n=4096",
        Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0,
        Core.Workloads.graph_memmap g );
      ( "par_comp 2048x80",
        Core.Kernels.par_comp ~threads:2048 ~iters:80,
        [] );
      ("ser_mem 20k sweeps", Core.Kernels.ser_mem ~iters:20000 ~n:65536, []);
    ]
  in
  (* one campaign: every case in both modes; cycle mode on the big chip *)
  let specs =
    List.concat_map
      (fun (name, src, memmap) ->
        [
          ( name ^ "/functional",
            Core.Toolchain.job ~name:(name ^ "/functional") ~memmap
              ~mode:Core.Toolchain.Functional src );
          ( name ^ "/cycle",
            Core.Toolchain.job ~name:(name ^ "/cycle") ~memmap
              ~config:Xmtsim.Config.chip1024 src );
        ])
      cases
  in
  let rs = run_jobs specs in
  Printf.printf "%-20s %14s %14s %14s %10s\n" "program" "instructions"
    "functional ms" "cycle ms" "ratio";
  List.iteri
    (fun i (name, src, memmap) ->
      let f_out = rs.(2 * i) and c_out = rs.((2 * i) + 1) in
      assert (f_out.Core.Toolchain.output = c_out.Core.Toolchain.output);
      let compiled = compile ~memmap src in
      let f_ns =
        bechamel_ns_per_run ~quota:2.0 ~name:"functional" (fun () ->
            ignore (Core.Toolchain.run_functional compiled))
      in
      let c_ns =
        bechamel_ns_per_run ~quota:2.0 ~name:"cycle" (fun () ->
            ignore (Core.Toolchain.run_cycle ~config:Xmtsim.Config.chip1024 compiled))
      in
      Printf.printf "%-20s %14s %14.2f %14.2f %9.0fx\n%!" name
        (commas f_out.Core.Toolchain.instructions)
        (f_ns /. 1e6) (c_ns /. 1e6) (c_ns /. f_ns))
    cases;
  print_endline
    "\n(the functional mode serializes spawn blocks: fast debugging, no\n\
     concurrency-bug visibility, no cycle counts — paper \xc2\xa7III-A)"
