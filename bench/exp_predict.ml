(** Prediction mode: analytical-model accuracy and speed against the
    cycle-accurate simulator.

    Two protocols:

    - {e accuracy}: every corpus workload runs twice on [fpga64] — once
      on the cycle-accurate machine (the ground truth) and once in
      predict mode (functional pass + reuse-profile harvest + analytical
      model).  The committed calibration ({!Predict.Calibrate.default})
      is scored against the ground truth — that MAE is what CI gates,
      because it is the fit jobs actually use — and the corpus is also
      refit from scratch, with the fresh artifact written to
      [CALIBRATION_predict.json] so a model change can be recalibrated
      by copying the fitted coefficients into [Calibrate.default].
    - {e speed}: the mode's target scenario is design-space exploration,
      where the reuse profile is config-independent and is harvested
      {e once} per workload, then evaluated against every design point
      for microseconds each.  The speedup metric runs an 8-point
      [chip1024]-family sweep over two large workloads both ways:
      cycle-accurate simulates every (workload, config) pair; predict
      harvests each workload once (with the big-run harvest settings:
      line-granularity tracker, 1/8 spatial line sampling) and evaluates
      all 8 design points from it.  The gate holds the sweep speedup
      above 100x.

    The checkpoint-sampled mode is scored on the serial-heavy workload
    (windows land cleanly between the serialized instructions); the gate
    holds MAE < 10%, sampled error < 5% and sweep speedup > 100x. *)

open Bench_util

let corpus () =
  let mm_n = 16 in
  let mm_memmap =
    Isa.Memmap.of_floats
      [
        ("A", Core.Workloads.random_float_array ~seed:2 ~n:(mm_n * mm_n));
        ("B", Core.Workloads.random_float_array ~seed:3 ~n:(mm_n * mm_n));
      ]
  in
  let spmv_n = 512 and nnz_per_row = 8 in
  let row, col, nzv =
    Core.Workloads.random_csr_matrix ~seed:4 ~n:spmv_n ~nnz_per_row
  in
  let x = Core.Workloads.random_float_array ~seed:5 ~n:spmv_n in
  let spmv_memmap =
    Isa.Memmap.of_ints [ ("row", row); ("col", col) ]
    @ Isa.Memmap.of_floats [ ("nzv", nzv); ("x", x) ]
  in
  [
    ("vecadd_2048", Core.Kernels.vecadd ~n:2048, []);
    ("compaction_1024", Core.Kernels.compaction ~n:1024, []);
    ("reduce_psm_4096", Core.Kernels.reduce_psm ~n:4096, []);
    ("reduce_tree_2048", Core.Kernels.reduce_tree ~n:2048, []);
    ("matmul_16", Core.Kernels.matmul ~n:mm_n, mm_memmap);
    ( "spmv_512",
      Core.Kernels.spmv ~n:spmv_n ~nnz:(spmv_n * nnz_per_row),
      spmv_memmap );
    ("par_comp_512x24", Core.Kernels.par_comp ~threads:512 ~iters:24, []);
    ("par_mem_256x16", Core.Kernels.par_mem ~threads:256 ~iters:16 ~n:4096, []);
    ( "table_lookup_ro",
      Core.Kernels.table_lookup ~n:256 ~iters:8 ~use_ro:true,
      [] );
    ("ser_comp_2000", Core.Kernels.ser_comp ~iters:2000, []);
  ]

(* the design-space sweep of the speed protocol: a chip1024 family
   varying shared-cache size, DRAM latency and ICN depth *)
let sweep_configs () =
  let base = Xmtsim.Config.chip1024 in
  List.map
    (fun (name, cache_lines, dram_latency, icn_latency) ->
      {
        base with
        Xmtsim.Config.name;
        cache_lines;
        dram_latency;
        icn_latency;
      })
    [
      ("chip1024", base.Xmtsim.Config.cache_lines, base.Xmtsim.Config.dram_latency,
       base.Xmtsim.Config.icn_latency);
      ("chip1024-c256", 256, 100, 12);
      ("chip1024-d60", 512, 60, 12);
      ("chip1024-d150", 512, 150, 12);
      ("chip1024-i8", 512, 100, 8);
      ("chip1024-i16", 512, 100, 16);
      ("chip1024-c256-d60", 256, 60, 12);
      ("chip1024-c1024", 1024, 100, 12);
    ]

let sweep_workloads () =
  [
    ("vecadd_16384", Core.Kernels.vecadd ~n:16384);
    ("reduce_psm_65536", Core.Kernels.reduce_psm ~n:65536);
  ]

let run () =
  section "prediction mode: analytical model vs cycle-accurate simulation";
  let config = Xmtsim.Config.fpga64 in
  let cal = Predict.Calibrate.default in
  let rows =
    List.map
      (fun (name, src, memmap) ->
        let compiled = compile ~memmap src in
        let cyc, cyc_secs =
          wall (fun () -> Core.Toolchain.run_cycle ~config compiled)
        in
        (* the whole predict pipeline, as a job runs it: harvest pass
           plus model evaluation under the committed calibration *)
        let (snap, pred), pred_secs =
          wall (fun () ->
              let rp = Xmtsim.Reuseprofile.create () in
              ignore
                (Xmtsim.Functional_mode.run ~profile:rp
                   compiled.Core.Toolchain.image);
              let snap = Xmtsim.Reuseprofile.snapshot rp in
              let pred =
                Predict.Model.predict ~coeffs:cal.Predict.Calibrate.coeffs
                  ~residual_std_pct:cal.Predict.Calibrate.residual_std_pct
                  ~config snap
              in
              (snap, pred))
        in
        let pt =
          Predict.Calibrate.point ~name ~config snap
            ~actual_cycles:cyc.Core.Toolchain.cycles
        in
        (name, pt, cyc, pred, cyc_secs, pred_secs))
      (corpus ())
  in
  let points = List.map (fun (_, pt, _, _, _, _) -> pt) rows in
  (* the committed fit is what ships in jobs; its score is the gate *)
  let committed =
    Predict.Calibrate.summarize cal.Predict.Calibrate.coeffs points
  in
  let refit = Predict.Calibrate.fit points in
  Predict.Calibrate.save_file "CALIBRATION_predict.json" refit;
  Printf.printf "  [wrote CALIBRATION_predict.json]\n";
  Printf.printf "\n%-18s %12s %12s %8s %12s %12s\n" "workload" "actual"
    "predicted" "err" "cycle ms" "predict ms";
  List.iter
    (fun (name, pt, cyc, pred, cyc_secs, pred_secs) ->
      let err =
        List.assoc pt.Predict.Calibrate.pt_name
          committed.Predict.Calibrate.points
      in
      Printf.printf "%-18s %12s %12s %+7.1f%% %12.2f %12.3f\n" name
        (commas cyc.Core.Toolchain.cycles)
        (commas pred.Predict.Model.predicted_cycles)
        err (cyc_secs *. 1e3) (pred_secs *. 1e3))
    rows;
  let corpus_cyc_wall =
    List.fold_left (fun a (_, _, _, _, s, _) -> a +. s) 0.0 rows
  in
  let corpus_pred_wall =
    List.fold_left (fun a (_, _, _, _, _, s) -> a +. s) 0.0 rows
  in
  let corpus_speedup =
    if corpus_pred_wall > 0.0 then corpus_cyc_wall /. corpus_pred_wall else 0.0
  in
  Printf.printf
    "\ncommitted calibration: MAE %.2f%% (residual std %.2f%%); refit MAE \
     %.2f%%\n"
    committed.Predict.Calibrate.mae_pct
    committed.Predict.Calibrate.residual_std_pct
    refit.Predict.Calibrate.mae_pct;
  Printf.printf
    "corpus wall (one config): cycle %.2f s, predict %.3f s -> %.0fx per run\n%!"
    corpus_cyc_wall corpus_pred_wall corpus_speedup;
  (* ---- the design-space sweep: harvest once, predict every point ---- *)
  let configs = sweep_configs () in
  let sweep =
    List.map
      (fun (name, src) ->
        let compiled = compile src in
        let cyc_secs =
          List.fold_left
            (fun acc cfg ->
              let _, s =
                wall (fun () -> Core.Toolchain.run_cycle ~config:cfg compiled)
              in
              acc +. s)
            0.0 configs
        in
        let _, pred_secs =
          wall (fun () ->
              (* big-run harvest settings: line-granularity tracker,
                 1/8 spatial line sampling (SHARDS-style) *)
              let rp =
                Xmtsim.Reuseprofile.create ~granularities:[ 4 ]
                  ~line_sampling:8 ()
              in
              ignore
                (Xmtsim.Functional_mode.run ~profile:rp
                   compiled.Core.Toolchain.image);
              let snap = Xmtsim.Reuseprofile.snapshot rp in
              List.iter
                (fun cfg ->
                  ignore
                    (Predict.Model.predict ~coeffs:cal.Predict.Calibrate.coeffs
                       ~config:cfg snap))
                configs)
        in
        Printf.printf
          "sweep %-18s %d configs: cycle %.2f s, harvest+predict %.3f s -> \
           %.0fx\n%!"
          name (List.length configs) cyc_secs pred_secs (cyc_secs /. pred_secs);
        (cyc_secs, pred_secs))
      (sweep_workloads ())
  in
  let sweep_cyc = List.fold_left (fun a (c, _) -> a +. c) 0.0 sweep in
  let sweep_pred = List.fold_left (fun a (_, p) -> a +. p) 0.0 sweep in
  let speedup = if sweep_pred > 0.0 then sweep_cyc /. sweep_pred else 0.0 in
  Printf.printf
    "sweep total: cycle %.2f s, predict %.3f s -> %.0fx amortized\n%!"
    sweep_cyc sweep_pred speedup;
  (* checkpoint-sampled mode on the serial-heavy workload: windows land
     between serialized instructions, so measured spans match requests *)
  let ser = compile (Core.Kernels.ser_mem ~iters:4000 ~n:4096) in
  let ser_actual = cycles_of ~config ser in
  let sp =
    Predict.Sampled.estimate ~config ~interval:20_000 ~num_windows:4
      ser.Core.Toolchain.image
  in
  let sampled_err =
    abs_float
      (float_of_int (sp.Predict.Sampled.sp_cycles - ser_actual)
      /. float_of_int ser_actual)
    *. 100.0
  in
  Printf.printf
    "sampled (ser_mem): actual %s, blended %s (%.2f%% err; %d/%d windows, \
     %s of %s instructions measured)\n%!"
    (commas ser_actual)
    (commas sp.Predict.Sampled.sp_cycles)
    sampled_err sp.Predict.Sampled.sp_windows_landed
    sp.Predict.Sampled.sp_windows_requested
    (commas sp.Predict.Sampled.sp_measured_instructions)
    (commas sp.Predict.Sampled.sp_total_instructions);
  let total_cycles =
    List.fold_left (fun a (_, _, c, _, _, _) -> a + c.Core.Toolchain.cycles) 0 rows
  in
  emit_record ~name:"predict"
    [
      ("config", Obs.Json.Str config.Xmtsim.Config.name);
      ("workloads", Obs.Json.Int (List.length rows));
      ("cycles", Obs.Json.Int total_cycles);
      ("predict_mae_pct", Obs.Json.Float committed.Predict.Calibrate.mae_pct);
      ("refit_mae_pct", Obs.Json.Float refit.Predict.Calibrate.mae_pct);
      ( "residual_std_pct",
        Obs.Json.Float committed.Predict.Calibrate.residual_std_pct );
      ("predict_speedup", Obs.Json.Float speedup);
      ("corpus_speedup", Obs.Json.Float corpus_speedup);
      ("sampled_err_pct", Obs.Json.Float sampled_err);
      ("cycle_wall_seconds", Obs.Json.Float (corpus_cyc_wall +. sweep_cyc));
      ("predict_wall_seconds", Obs.Json.Float (corpus_pred_wall +. sweep_pred));
      ( "errors_pct",
        Obs.Json.Obj
          (List.map
             (fun (n, e) -> (n, Obs.Json.Float e))
             committed.Predict.Calibrate.points) );
      ("coefficients", Predict.Model.coeffs_to_json cal.Predict.Calibrate.coeffs);
    ]
