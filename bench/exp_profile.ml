(** Cycle-accounting profiler overhead and exactness.

    The profiler is a passive observer: a machine without one must pay
    nothing it can measure, and attaching one must never perturb the
    simulation — cycles, output, stats and even the host event count
    (clock gating untouched) are bit-identical.  Reproduction targets:
    that bit-identity, the exactness contract (per-TCU buckets + idle sum
    to the run's grid ticks), near-complete source attribution on a
    compiler-built image, and a measured host-side cost of the per-cycle
    bookkeeping (reported with a <10% target; gated only through the
    record's cycle count — wall-clock is noise-sensitive).  The workload
    mixes a memory-bound and a compute-bound spawn so every major bucket
    is exercised. *)

open Bench_util

let n = 16384

let run () =
  section "profile: cycle-accounting profiler overhead";
  let compiled = compile (Core.Kernels.vecadd ~n) in
  let run_once ~attach =
    let m = Core.Toolchain.machine ~config:Xmtsim.Config.fpga64 compiled in
    if attach then ignore (Xmtsim.Machine.attach_profile m : Xmtsim.Profile.t);
    let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
    (m, r, secs)
  in
  (* interleaved best-of-5 wall times, so neither figure is dominated by
     a cold first run or a transient host hiccup *)
  let keep_best best run = match best with
    | Some (_, _, bs) when bs <= (fun (_, _, s) -> s) run -> best
    | _ -> Some run
  in
  let best_off = ref None and best_on = ref None in
  for _ = 1 to 5 do
    best_off := keep_best !best_off (run_once ~attach:false);
    best_on := keep_best !best_on (run_once ~attach:true)
  done;
  let m_off, r_off, secs_off = Option.get !best_off in
  let m_on, r_on, secs_on = Option.get !best_on in
  let cycles_off = Xmtsim.Machine.cycles m_off in
  let cycles_on = Xmtsim.Machine.cycles m_on in
  let events_off = Xmtsim.Machine.events_processed m_off in
  let events_on = Xmtsim.Machine.events_processed m_on in
  let overhead =
    if secs_off > 0.0 then 100.0 *. ((secs_on /. secs_off) -. 1.0) else 0.0
  in
  let rp = Option.get (Xmtsim.Machine.profile_report m_on) in
  let exact =
    Array.for_all
      (fun row ->
        row.Xmtsim.Profile.r_idle >= 0
        && Array.fold_left ( + ) 0 row.Xmtsim.Profile.r_buckets
           + row.Xmtsim.Profile.r_idle
           = rp.Xmtsim.Profile.rp_total)
      rp.Xmtsim.Profile.rp_tcus
  in
  let attr = Xmtsim.Profile.attribution_rate rp in
  Printf.printf "  profiler off: %s cycles, %.2f s host\n" (commas cycles_off)
    secs_off;
  Printf.printf "  profiler on:  %s cycles, %.2f s host (%+.1f%% host cost, \
                 target <10%%)\n"
    (commas cycles_on) secs_on overhead;
  Printf.printf "  %s profiler does not perturb the simulation\n"
    (if
       cycles_off = cycles_on && r_off = r_on && events_off = events_on
       && Xmtsim.Machine.stats m_off = Xmtsim.Machine.stats m_on
     then "[ok]"
     else "[MISMATCH]");
  Printf.printf "  %s per-TCU CPI stacks sum exactly to %s grid ticks\n"
    (if exact then "[ok]" else "[MISMATCH]")
    (commas rp.Xmtsim.Profile.rp_total);
  Printf.printf "  %s source attribution %.1f%% of non-idle cycles (target >= 95%%)\n"
    (if attr >= 0.95 then "[ok]" else "[MISMATCH]")
    (100.0 *. attr);
  emit_record ~name:"profile"
    [
      ("config", Obs.Json.Str "fpga64");
      ("cycles", Obs.Json.Int cycles_on);
      ("host_wall_seconds", Obs.Json.Float secs_off);
      ("events_processed", Obs.Json.Int events_off);
      ( "events_per_sec",
        Obs.Json.Float
          (if secs_off > 0.0 then float_of_int events_off /. secs_off else 0.0)
      );
      ("profiler_host_overhead_pct", Obs.Json.Float overhead);
      ("attribution_rate", Obs.Json.Float attr);
      ( "nonidle_cycles",
        Obs.Json.Int rp.Xmtsim.Profile.rp_attr.Xmtsim.Profile.a_nonidle );
    ]
