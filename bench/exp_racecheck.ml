(** Race-detector overhead.

    The dynamic shadow-memory detector is detachable: a machine without
    one must pay nothing, and attaching one must never perturb the
    simulation itself — the detector only observes accesses at cache
    service time, it schedules no events.  Reproduction targets:
    bit-identical output and cycle count with the detector on and off,
    and a measured host-side cost of the shadow bookkeeping (reported,
    not gated — it is noise-sensitive).  The workload is the publication
    kernel, whose psm handshakes exercise the acquire/release tracking
    as well as the plain-access shadow updates. *)

open Bench_util

let n = 8192

let run () =
  section "racecheck: shadow-memory race-detector overhead";
  let compiled = compile (Core.Kernels.publication ~n) in
  let run_once ~attach =
    let m = Core.Toolchain.machine ~config:Xmtsim.Config.fpga64 compiled in
    let rd = if attach then Some (Xmtsim.Machine.attach_racecheck m) else None in
    let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
    (m, r, rd, secs)
  in
  (* best-of-3 wall times so the overhead figure is not dominated by a
     cold first run *)
  let best ~attach =
    let runs = List.init 3 (fun _ -> run_once ~attach) in
    List.fold_left
      (fun (bm, br, brd, bs) (m, r, rd, s) ->
        if s < bs then (m, r, rd, s) else (bm, br, brd, bs))
      (List.hd runs) (List.tl runs)
  in
  let m_off, r_off, _, secs_off = best ~attach:false in
  let m_on, r_on, rd, secs_on = best ~attach:true in
  let rd = Option.get rd in
  let cycles_off = Xmtsim.Machine.cycles m_off in
  let cycles_on = Xmtsim.Machine.cycles m_on in
  let events = Xmtsim.Machine.events_processed m_off in
  let overhead =
    if secs_off > 0.0 then 100.0 *. ((secs_on /. secs_off) -. 1.0) else 0.0
  in
  Printf.printf "  detector off: %s cycles, %.2f s host\n" (commas cycles_off)
    secs_off;
  Printf.printf "  detector on:  %s cycles, %.2f s host (%+.1f%% host cost)\n"
    (commas cycles_on) secs_on overhead;
  Printf.printf "  shadow events: %s, races: %d, epochs: %d\n"
    (commas (Xmtsim.Racedetect.events rd))
    (Xmtsim.Racedetect.race_count rd)
    (Xmtsim.Racedetect.epochs rd);
  Printf.printf "  %s detector does not perturb the simulation\n"
    (if cycles_off = cycles_on && r_off = r_on then "[ok]" else "[MISMATCH]");
  Printf.printf "  %s fenced publication is race-free\n"
    (if Xmtsim.Racedetect.race_count rd = 0 then "[ok]" else "[MISMATCH]");
  emit_record ~name:"racecheck"
    [
      ("config", Obs.Json.Str "fpga64");
      ("cycles", Obs.Json.Int cycles_on);
      ("host_wall_seconds", Obs.Json.Float secs_off);
      ("events_processed", Obs.Json.Int events);
      ( "events_per_sec",
        Obs.Json.Float
          (if secs_off > 0.0 then float_of_int events /. secs_off else 0.0) );
      ("shadow_events", Obs.Json.Int (Xmtsim.Racedetect.events rd));
      ("races", Obs.Json.Int (Xmtsim.Racedetect.race_count rd));
      ("detector_host_overhead_pct", Obs.Json.Float overhead);
    ]
