(** §III-C — clock gating on a serial-heavy workload.

    The master TCU strides through a large array one miss at a time, so
    for most of the run every clock domain is provably idle: the caches
    have empty input queues and no outstanding MSHR entries, the DRAM
    queue is drained, and the master itself is parked on a memory-wait
    callback.  With gating on (the default) those domains sleep between
    requests and the event count collapses; with [--no-clock-gating]
    semantics ({!Xmtsim.Machine.set_gating} [m false]) every domain
    ticks every period.  Reproduction targets: bit-identical output,
    cycle count and statistics between the two runs, and a host
    events-per-simulated-cycle reduction of more than 20%. *)

open Bench_util

let iters = 6000
let n = 8192

let fresh_machine ~gating compiled =
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.fpga64 compiled in
  if not gating then Xmtsim.Machine.set_gating m false;
  m

let record_serial ~name ~m ~secs ~cycles =
  let events = Xmtsim.Machine.events_processed m in
  emit_record ~name
    [
      ("config", Obs.Json.Str "fpga64");
      ("cycles", Obs.Json.Int cycles);
      ("host_wall_seconds", Obs.Json.Float secs);
      ("events_processed", Obs.Json.Int events);
      ( "events_per_sec",
        Obs.Json.Float (if secs > 0.0 then float_of_int events /. secs else 0.0)
      );
      ( "events_per_cycle",
        Obs.Json.Float (float_of_int events /. float_of_int (max 1 cycles)) );
    ]

let run () =
  section "serial: clock gating on a serial-heavy workload (§III-C)";
  let compiled = compile (Core.Kernels.ser_mem ~iters ~n) in
  let mg = fresh_machine ~gating:true compiled in
  let rg, secs_g = wall (fun () -> Xmtsim.Machine.run mg) in
  let mu = fresh_machine ~gating:false compiled in
  let ru, secs_u = wall (fun () -> Xmtsim.Machine.run mu) in
  let cycles_g = Xmtsim.Machine.cycles mg in
  let cycles_u = Xmtsim.Machine.cycles mu in
  let ev_g = Xmtsim.Machine.events_processed mg in
  let ev_u = Xmtsim.Machine.events_processed mu in
  let epc_g = float_of_int ev_g /. float_of_int (max 1 cycles_g) in
  let epc_u = float_of_int ev_u /. float_of_int (max 1 cycles_u) in
  let reduction = 100.0 *. (1.0 -. (epc_g /. epc_u)) in
  let sg = Xmtsim.Machine.stats mg and su = Xmtsim.Machine.stats mu in
  let stats_equal =
    sg.Xmtsim.Stats.cache_hits = su.Xmtsim.Stats.cache_hits
    && sg.Xmtsim.Stats.cache_misses = su.Xmtsim.Stats.cache_misses
    && sg.Xmtsim.Stats.icn_packets = su.Xmtsim.Stats.icn_packets
    && sg.Xmtsim.Stats.dram_reads = su.Xmtsim.Stats.dram_reads
    && sg.Xmtsim.Stats.master_instrs = su.Xmtsim.Stats.master_instrs
  in
  Printf.printf "  gated:   %s cycles, %s events (%.2f events/cycle, %.1f s)\n"
    (commas cycles_g) (commas ev_g) epc_g secs_g;
  Printf.printf "  ungated: %s cycles, %s events (%.2f events/cycle, %.1f s)\n"
    (commas cycles_u) (commas ev_u) epc_u secs_u;
  Printf.printf "  events/cycle reduction: %.1f%%\n" reduction;
  Printf.printf "  %s gated and ungated runs halt with identical output\n"
    (if rg = ru && Xmtsim.Machine.output mg = Xmtsim.Machine.output mu then
       "[ok]"
     else "[MISMATCH]");
  Printf.printf "  %s cycle counts are bit-identical (%s)\n"
    (if cycles_g = cycles_u then "[ok]" else "[MISMATCH]")
    (commas cycles_g);
  Printf.printf "  %s cache/ICN/DRAM statistics are bit-identical\n"
    (if stats_equal then "[ok]" else "[MISMATCH]");
  Printf.printf "  %s events/cycle reduction exceeds 20%%\n"
    (if reduction > 20.0 then "[ok]" else "[MISMATCH]");
  record_serial ~name:"serial gated" ~m:mg ~secs:secs_g ~cycles:cycles_g;
  record_serial ~name:"serial ungated" ~m:mu ~secs:secs_u ~cycles:cycles_u
