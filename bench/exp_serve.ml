(** Campaign-service benchmark: an in-process [Serve.Server] (one warm
    pool + shared artifact cache) fed by concurrent clients over its
    Unix-domain socket, measuring sustained job throughput and the
    client-observed enqueue-to-done latency distribution.

    Four clients each submit one campaign (1200 jobs total — above the
    1000-job floor the acceptance criteria set) and stream their results
    back concurrently, so the run exercises admission, fair round-robin
    scheduling and per-connection demultiplexing, not just the pool.
    Every job's latency is measured from the client's submit to the
    arrival of its [job.done] record; the record carries the p50/p95/p99
    and the gate enforces [jobs_per_sec] against collapse. *)

open Bench_util
module J = Obs.Json

let job_json i =
  J.Obj
    [
      ("name", J.Str (Printf.sprintf "j%04d" i));
      ("inline", J.Str (Core.Kernels.vecadd ~n:16));
    ]

let spec_json ~base n =
  J.Obj
    [
      ("schema", J.Str "xmt.campaign.v1");
      ("defaults", J.Obj [ ("preset", J.Str "tiny") ]);
      ("jobs", J.List (List.init n (fun i -> job_json (base + i))));
    ]

(* one client: submit a campaign, stream it to completion, record the
   submit-to-job.done latency of every job *)
let client_thread ~sock ~idx ~jobs_per_client out =
  let c = Serve.Client.connect sock in
  let t0 = Unix.gettimeofday () in
  match Serve.Client.submit c (spec_json ~base:(idx * jobs_per_client) jobs_per_client) with
  | Error frame ->
    failwith (Printf.sprintf "serve bench: client %d rejected: %s" idx (J.to_string frame))
  | Ok cid ->
    let lats = ref [] in
    let s =
      Serve.Client.stream_until_done c ~cid ~on_record:(fun r ->
          match r with
          | J.Obj kvs when List.assoc_opt "type" kvs = Some (J.Str "job.done") ->
            lats := (Unix.gettimeofday () -. t0) :: !lats
          | _ -> ())
    in
    Serve.Client.close c;
    if s.Serve.Client.s_failed > 0 then
      failwith (Printf.sprintf "serve bench: client %d had %d failed job(s)" idx
                  s.Serve.Client.s_failed);
    out := !lats

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run () =
  section "campaign service: concurrent clients, throughput + latency";
  let clients = 4 in
  let jobs_per_client = 300 in
  let total = clients * jobs_per_client in
  let host_cores = Domain.recommended_domain_count () in
  let workers = if !jobs > 1 then !jobs else min 4 (max 2 host_cores) in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xmt-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let srv =
    Serve.Server.create
      { (Serve.Server.default_config ~socket_path:sock) with workers = Some workers }
  in
  Printf.printf "%d jobs from %d clients over %s (%d workers)...\n%!" total
    clients sock workers;
  let outs = Array.init clients (fun _ -> ref []) in
  let (), wall_secs =
    wall (fun () ->
        let threads =
          List.init clients (fun idx ->
              Thread.create
                (fun () -> client_thread ~sock ~idx ~jobs_per_client outs.(idx))
                ())
        in
        List.iter Thread.join threads)
  in
  Serve.Server.stop srv;
  let lats = Array.concat (List.map (fun r -> Array.of_list !r) (Array.to_list outs)) in
  if Array.length lats <> total then
    failwith (Printf.sprintf "serve bench: %d latencies for %d jobs"
                (Array.length lats) total);
  Array.sort compare lats;
  let ms q = percentile lats q *. 1e3 in
  let jobs_per_sec =
    if wall_secs > 0.0 then float_of_int total /. wall_secs else 0.0
  in
  Printf.printf
    "  %6.2f s wall, %.0f jobs/s\n  enqueue-to-done: p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n%!"
    wall_secs jobs_per_sec (ms 0.50) (ms 0.95) (ms 0.99);
  emit_record ~name:"serve"
    [
      ("clients", J.Int clients);
      ("jobs", J.Int total);
      ("workers", J.Int workers);
      ("host_cores", J.Int host_cores);
      ("wall_seconds", J.Float wall_secs);
      ("jobs_per_sec", J.Float jobs_per_sec);
      ("p50_ms", J.Float (ms 0.50));
      ("p95_ms", J.Float (ms 0.95));
      ("p99_ms", J.Float (ms 0.99));
    ]
