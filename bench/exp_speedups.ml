(** §II-B — speedups of PRAM-derived programs over serial execution.

    The paper's evaluation record: BFS 5.4x-73x vs optimized GPU code,
    graph connectivity 2.2x-4x, and strong results vs serial CPUs; the
    64-TCU FPGA outperformed an Intel Core 2 Duo.  Our comparison is
    XMT-p vs the same algorithm run serially on the Master TCU (the
    toolchain cannot conjure the authors' GPUs), so the reproduction
    targets are: parallel wins by a large factor, the 1024-TCU
    configuration beats the 64-TCU one on large inputs, and irregular
    graph workloads scale.

    All serial/64-TCU/1024-TCU runs of every workload are one campaign
    ([--jobs N] fans them out); validation and the table render from the
    ordered results afterwards. *)

open Bench_util

let validate name expected got =
  if expected <> got then
    Printf.printf "  [MISMATCH] %s: expected %S, got %S\n" name expected got

(* (display name, serial source, parallel source, memmap, expected output;
   None = validate parallel runs against the serial run's output) *)
let workloads () =
  let n = 4096 in
  let g = Core.Workloads.random_graph ~chain:16 ~seed:11 ~n ~edges_per_vertex:4 () in
  let reached, total = Core.Reference.bfs_summary g 0 in
  let gc = Core.Workloads.random_graph ~seed:3 ~n:1024 ~edges_per_vertex:3 () in
  let mc = Array.length gc.Core.Workloads.edges in
  let nc = 16384 in
  let a = Core.Workloads.sparse_array ~seed:5 ~n:nc ~density:35 in
  let nr = 16384 in
  let ar = Core.Workloads.random_array ~seed:6 ~n:nr ~bound:100 in
  let nf = 1024 in
  let re = Core.Workloads.random_float_array ~seed:1 ~n:nf in
  let imv = Core.Workloads.random_float_array ~seed:2 ~n:nf in
  let wr, wi = Core.Reference.fft_twiddles nf in
  let fmm =
    Isa.Memmap.of_floats [ ("re", re); ("im", imv); ("wr", wr); ("wi", wi) ]
  in
  [
    ( "BFS (n=4096)",
      Core.Kernels.bfs_serial ~n ~m:g.Core.Workloads.m,
      Core.Kernels.bfs ~n ~m:g.Core.Workloads.m ~src:0,
      Core.Workloads.graph_memmap g,
      Some (Printf.sprintf "%d %d" reached total) );
    ( "connectivity (n=1024)",
      Core.Kernels.connectivity_serial ~n:1024 ~m:mc,
      Core.Kernels.connectivity ~n:1024 ~m:mc,
      Core.Workloads.edgelist_memmap gc,
      Some (string_of_int (Core.Reference.components gc)) );
    ( "compaction (n=16384)",
      Core.Kernels.compaction_serial ~n:nc,
      Core.Kernels.compaction ~n:nc,
      Isa.Memmap.of_ints [ ("A", a) ],
      Some (string_of_int (Core.Reference.count_nonzero a)) );
    ( "reduction (n=16384)",
      Core.Kernels.reduce_serial ~n:nr,
      Core.Kernels.reduce_tree ~n:nr,
      Isa.Memmap.of_ints [ ("A", ar) ],
      Some (string_of_int (Core.Reference.sum ar)) );
    (* FFT (the §II-B [24] workload): validated against the serial run *)
    ("FFT (n=1024)", Core.Kernels.fft_serial ~n:nf, Core.Kernels.fft ~n:nf, fmm, None);
  ]

let run () =
  section "\xc2\xa7II-B: speedups of PRAM programs over serial (Master TCU) execution";
  Printf.printf "%-22s %12s %12s %12s %9s %9s\n" "workload" "serial cyc"
    "64-TCU cyc" "1024-TCU cyc" "64x" "1024x";
  let workloads = workloads () in
  let specs =
    List.concat_map
      (fun (name, serial_src, parallel_src, memmap, _) ->
        let j variant config src =
          let jn = name ^ "/" ^ variant in
          (jn, Core.Toolchain.job ~name:jn ~memmap ~config src)
        in
        [
          j "serial" Xmtsim.Config.fpga64 serial_src;
          j "p64" Xmtsim.Config.fpga64 parallel_src;
          j "p1024" Xmtsim.Config.chip1024 parallel_src;
        ])
      workloads
  in
  let rs = run_jobs specs in
  let bfs1024 = ref 0.0 in
  List.iteri
    (fun i (name, _, _, _, expected) ->
      let ser = rs.(3 * i)
      and p64 = rs.((3 * i) + 1)
      and p1024 = rs.((3 * i) + 2) in
      let expected = Option.value expected ~default:ser.Core.Toolchain.output in
      validate name expected ser.Core.Toolchain.output;
      validate name expected p64.Core.Toolchain.output;
      validate name expected p1024.Core.Toolchain.output;
      let sc = float_of_int ser.Core.Toolchain.cycles in
      let s64 = sc /. float_of_int p64.Core.Toolchain.cycles in
      let s1024 = sc /. float_of_int p1024.Core.Toolchain.cycles in
      if i = 0 then bfs1024 := s1024;
      Printf.printf "%-22s %12s %12s %12s %8.1fx %8.1fx\n%!" name
        (commas ser.Core.Toolchain.cycles)
        (commas p64.Core.Toolchain.cycles)
        (commas p1024.Core.Toolchain.cycles)
        s64 s1024)
    workloads;
  Printf.printf
    "\nshape checks: BFS 1024-TCU speedup in/above the paper's 5.4x-73x band: \
     %.1fx %s\n"
    !bfs1024
    (if !bfs1024 > 5.4 then "[ok]" else "[MISMATCH]")
