(** Live telemetry streaming overhead (xmt.events.v1).

    The same serial-heavy workload as [exp_serial] run twice: once
    plain, once with an {!Obs.Stream} attached (a heartbeat every
    10,000 cluster cycles — the production default — feeding a file
    sink).  The producer rides the cluster clock's existing tick events,
    so the streamed run must be bit-identical to the plain one — output,
    cycle count, statistics and even the host-side desim event count —
    and the host wall-clock overhead must stay under 5%. *)

open Bench_util

let iters = 24_000
let n = 8192
let heartbeat_cycles = 10_000

let run () =
  section "stream: live telemetry overhead on the serial workload";
  let compiled = compile (Core.Kernels.ser_mem ~iters ~n) in
  let config = Xmtsim.Config.fpga64 in
  (* warm-up run so allocator/page-cache cold-start noise doesn't land
     on the measurements *)
  ignore (Xmtsim.Machine.run (Core.Toolchain.machine ~config compiled));
  let run_plain () =
    let m = Core.Toolchain.machine ~config compiled in
    let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
    (m, r, secs)
  in
  let run_streamed () =
    let sink_path = Filename.temp_file "xmt_stream_bench" ".ndjson" in
    let stream = Obs.Stream.create (Obs.Stream.sink_of_path sink_path) in
    let m = Core.Toolchain.machine ~config compiled in
    Xmtsim.Machine.attach_stream ~heartbeat_cycles m stream;
    let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
    Obs.Stream.close stream;
    (try Sys.remove sink_path with Sys_error _ -> ());
    (m, r, secs, Obs.Stream.emitted stream, Obs.Stream.dropped stream)
  in
  (* a single ~25 ms measurement is dominated by scheduler/GC noise and
     the heap drifts monotonically across runs, so measure the variants
     in adjacent pairs (drift cancels within a pair) and take the median
     of the per-pair overhead ratios *)
  let reps = 9 in
  let plain = Array.make reps (run_plain ()) in
  let streamed = Array.make reps (run_streamed ()) in
  for i = 1 to reps - 1 do
    plain.(i) <- run_plain ();
    streamed.(i) <- run_streamed ()
  done;
  let ratios =
    Array.init reps (fun i ->
        let _, _, p = plain.(i) and _, _, s, _, _ = streamed.(i) in
        if p > 0.0 then s /. p else 1.0)
  in
  Array.sort compare ratios;
  let ratio = ratios.(reps / 2) in
  let min_by f a = Array.fold_left (fun acc x -> min acc (f x)) infinity a in
  let secs_p = min_by (fun (_, _, s) -> s) plain in
  let secs_s = min_by (fun (_, _, s, _, _) -> s) streamed in
  let mp, rp, _ = plain.(0) in
  let ms, rs, _, records, dropped = streamed.(0) in
  let cycles_p = Xmtsim.Machine.cycles mp in
  let cycles_s = Xmtsim.Machine.cycles ms in
  let ev_p = Xmtsim.Machine.events_processed mp in
  let ev_s = Xmtsim.Machine.events_processed ms in
  let overhead_pct = 100.0 *. (ratio -. 1.0) in
  let stats_equal = Xmtsim.Machine.stats mp = Xmtsim.Machine.stats ms in
  Printf.printf "  plain:    %s cycles, %s events, %.2f s\n" (commas cycles_p)
    (commas ev_p) secs_p;
  Printf.printf "  streamed: %s cycles, %s events, %.2f s (%d records, %d dropped)\n"
    (commas cycles_s) (commas ev_s) secs_s records dropped;
  Printf.printf "  host overhead: %+.1f%%\n" overhead_pct;
  Printf.printf "  %s streamed run output and halt state identical\n"
    (if rp = rs then "[ok]" else "[MISMATCH]");
  Printf.printf "  %s cycle counts are bit-identical (%s)\n"
    (if cycles_p = cycles_s then "[ok]" else "[MISMATCH]")
    (commas cycles_p);
  Printf.printf "  %s statistics are bit-identical\n"
    (if stats_equal then "[ok]" else "[MISMATCH]");
  Printf.printf
    "  %s host event counts are identical (the producer schedules nothing)\n"
    (if ev_p = ev_s then "[ok]" else "[MISMATCH]");
  Printf.printf "  %s no records dropped\n"
    (if dropped = 0 then "[ok]" else "[MISMATCH]");
  Printf.printf "  %s host overhead under 5%%\n"
    (if overhead_pct < 5.0 then "[ok]" else "[MISMATCH]");
  emit_record ~name:"stream"
    [
      ("config", Obs.Json.Str "fpga64");
      ("cycles", Obs.Json.Int cycles_s);
      ("host_wall_seconds", Obs.Json.Float secs_s);
      ("events_processed", Obs.Json.Int ev_s);
      ( "events_per_sec",
        Obs.Json.Float
          (if secs_s > 0.0 then float_of_int ev_s /. secs_s else 0.0) );
      ("records_emitted", Obs.Json.Int records);
      ("records_dropped", Obs.Json.Int dropped);
      ("overhead_pct", Obs.Json.Float overhead_pct);
    ]
