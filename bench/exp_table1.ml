(** Table I — simulated throughputs of XMTSim.

    The paper measured, on a 3 GHz Xeon host, the simulator's throughput in
    simulated instructions/second and simulated cycles/second for four
    hand-written microbenchmark groups on the 1024-TCU configuration:

    {v
    group                          instr/s    cycle/s
    parallel, memory intensive     98 K       5.5 K
    parallel, computation int.     2.23 M     10 K
    serial, memory intensive       76 K       519 K
    serial, computation int.       1.7 M      4.2 M
    v}

    The reproduction targets are the shape relations: computation-intensive
    groups sustain far higher instruction throughput than memory-intensive
    ones (memory instructions drag the expensive interconnect model into
    the hot path), and serial groups sustain far higher cycle throughput
    than parallel ones (a parallel cycle simulates >1000 active
    components). *)

open Bench_util

let groups =
  [
    ( "parallel, memory intensive",
      Core.Kernels.par_mem ~threads:2048 ~iters:24 ~n:65536 );
    ("parallel, computation intensive", Core.Kernels.par_comp ~threads:2048 ~iters:80);
    ("serial, memory intensive", Core.Kernels.ser_mem ~iters:4000 ~n:65536);
    ("serial, computation intensive", Core.Kernels.ser_comp ~iters:30000);
  ]

let run () =
  section
    "Table I: simulated throughputs of XMTSim (1024-TCU configuration, host \
     wall clock)";
  Printf.printf "%-34s %14s %14s %12s %12s\n" "benchmark group" "sim instrs"
    "sim cycles" "instr/s" "cycle/s";
  let results =
    List.map
      (fun (name, src) ->
        let compiled = compile src in
        let run_once () =
          Core.Toolchain.run_cycle ~config:Xmtsim.Config.chip1024 compiled
        in
        (* one instrumented run for the simulated counts + BENCH record *)
        let r = record_run ~config:Xmtsim.Config.chip1024 ~name compiled in
        (* host time via Bechamel (same deterministic run repeated) *)
        let ns = bechamel_ns_per_run ~quota:3.0 ~name (fun () -> ignore (run_once ())) in
        let secs = ns /. 1e9 in
        let ips = float_of_int r.Core.Toolchain.instructions /. secs in
        let cps = float_of_int r.Core.Toolchain.cycles /. secs in
        Printf.printf "%-34s %14s %14s %11.0f %11.0f\n%!" name
          (commas r.Core.Toolchain.instructions)
          (commas r.Core.Toolchain.cycles)
          ips cps;
        (name, ips, cps))
      groups
  in
  let get n = List.find (fun (m, _, _) -> m = n) results in
  let _, pm_i, pm_c = get "parallel, memory intensive" in
  let _, pc_i, pc_c = get "parallel, computation intensive" in
  let _, sm_i, sm_c = get "serial, memory intensive" in
  let _, sc_i, sc_c = get "serial, computation intensive" in
  Printf.printf
    "\nshape checks (paper Table I):\n\
    \  parallel compute instr/s  >> parallel memory instr/s : %.1fx  %s\n\
    \  serial   compute instr/s  >> serial   memory instr/s : %.1fx  %s\n\
    \  serial   memory  cycle/s  >> parallel memory cycle/s : %.1fx  %s\n\
    \  serial   compute cycle/s  >> parallel compute cycle/s: %.1fx  %s\n"
    (pc_i /. pm_i)
    (if pc_i > pm_i then "[ok]" else "[MISMATCH]")
    (sc_i /. sm_i)
    (if sc_i > sm_i then "[ok]" else "[MISMATCH]")
    (sm_c /. pm_c)
    (if sm_c > pm_c then "[ok]" else "[MISMATCH]")
    (sc_c /. pc_c)
    (if sc_c > pc_c then "[ok]" else "[MISMATCH]")
