(** §III-B/§III-F — dynamic power and thermal management.

    "A feature unique to XMTSim is the capability to evaluate runtime
    systems for dynamic power and thermal management."  An activity
    plug-in samples the power model, integrates the HotSpot-substitute
    thermal model, and (in the managed run) throttles the cluster clock
    domain at a trip temperature.  Reproduction targets: temperature rises
    with activity; the manager caps the peak at the cost of extra
    cycles. *)

open Bench_util

let trip = 326.0
let interval = 2000

let power_params =
  { Xmtsim.Power.default with Xmtsim.Power.e_alu = 0.5; leak_cluster = 1.0 }

let fresh_machine () =
  let src = Core.Kernels.par_comp ~threads:1024 ~iters:600 in
  let compiled = compile src in
  Core.Toolchain.machine ~config:Xmtsim.Config.chip1024 compiled

(* simulated cycles are deterministic, so these records give the CI
   regression gate a cheap benchmark pair to hold the line on *)
let record_thermal ~name ~m ~secs ~cycles ~peak ~avg_w =
  let events = Xmtsim.Machine.events_processed m in
  emit_record ~name
    [
      ("config", Obs.Json.Str "chip1024");
      ("cycles", Obs.Json.Int cycles);
      ("host_wall_seconds", Obs.Json.Float secs);
      ("events_processed", Obs.Json.Int events);
      ( "events_per_sec",
        Obs.Json.Float (if secs > 0.0 then float_of_int events /. secs else 0.0) );
      ("peak_temp_k", Obs.Json.Float peak);
      ("avg_watts", Obs.Json.Float avg_w);
    ]

let run_unmanaged () =
  let m = fresh_machine () in
  let power = Xmtsim.Power.create ~params:power_params m in
  let thermal =
    Xmtsim.Thermal.create ~params:Xmtsim.Thermal.demo ~grid_w:8
      (Xmtsim.Power.component_names power)
  in
  let samples = ref [] in
  Xmtsim.Machine.add_activity_plugin m ~name:"mgr" ~interval (fun _ cycle ->
      let w = Xmtsim.Power.sample power in
      Xmtsim.Thermal.step thermal ~dt:(float_of_int interval /. 1e9) w;
      let tmax = Xmtsim.Thermal.max_temperature thermal in
      samples := (cycle, Xmtsim.Power.total power, tmax) :: !samples);
  let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
  let peak =
    List.fold_left (fun acc (_, _, t) -> max acc t) neg_infinity !samples
  in
  let avg_w =
    let ws = List.map (fun (_, w, _) -> w) !samples in
    List.fold_left ( +. ) 0.0 ws /. float_of_int (max 1 (List.length ws))
  in
  record_thermal ~name:"thermal unmanaged" ~m ~secs ~cycles:r.Xmtsim.Machine.cycles
    ~peak ~avg_w;
  (r.Xmtsim.Machine.cycles, peak, avg_w, List.rev !samples)

(* the managed run is the Governor plug-in itself: same power/thermal
   models, decisions taken on the windowed telemetry *)
let run_governed () =
  let m = fresh_machine () in
  let g =
    Xmtsim.Governor.attach ~power_params ~thermal_params:Xmtsim.Thermal.demo
      ~grid_w:8 ~window:8192 ~temp_hi:trip ~icn_hi:infinity ~interval m
  in
  let r, secs = wall (fun () -> Xmtsim.Machine.run m) in
  let series = Xmtsim.Governor.timeseries g in
  let peak =
    Obs.Timeseries.max_value (Obs.Timeseries.channel series "sim.governor.temp_k")
  in
  let avg_w =
    Obs.Timeseries.mean (Obs.Timeseries.channel series "sim.governor.power_watts")
  in
  record_thermal ~name:"thermal governed" ~m ~secs ~cycles:r.Xmtsim.Machine.cycles
    ~peak ~avg_w;
  (r.Xmtsim.Machine.cycles, peak, avg_w, g)

let run () =
  section "\xc2\xa7III-F: power/temperature estimation and DVFS thermal management";
  let c1, peak1, w1, trace = run_unmanaged () in
  let c2, peak2, w2, g = run_governed () in
  print_endline "power/temperature profile (unmanaged run):";
  List.iteri
    (fun i (cycle, w, t) ->
      if i mod 8 = 0 then
        Printf.printf "  cycle %8d  %6.1f W  Tmax %6.2f K\n" cycle w t)
    trace;
  Printf.printf "\n%-28s %12s %10s %10s\n" "run" "cycles" "peak K" "avg W";
  Printf.printf "%-28s %12s %10.2f %10.1f\n" "no management" (commas c1) peak1 w1;
  Printf.printf "%-28s %12s %10.2f %10.1f\n" "DVFS governor (trip 326 K)" (commas c2)
    peak2 w2;
  let decisions = Xmtsim.Governor.decisions g in
  Printf.printf "\ngovernor decisions (%d):\n" (List.length decisions);
  List.iteri
    (fun i d ->
      if i < 12 then
        Printf.printf "  cycle %8d  %-8s period %d -> %d  (%s, Tmax %.2f K)\n"
          d.Xmtsim.Governor.d_cycle d.Xmtsim.Governor.d_domain
          d.Xmtsim.Governor.d_from d.Xmtsim.Governor.d_to
          d.Xmtsim.Governor.d_reason d.Xmtsim.Governor.d_temp_k)
    decisions;
  Printf.printf
    "\nshape checks:\n\
    \  temperature rises above ambient during the run: %s\n\
    \  manager lowers the peak (%.2f K vs %.2f K):      %s\n\
    \  at an execution-time cost (+%d cycles):          %s\n\
    \  governor logged set_period decisions:            %s\n"
    (if peak1 > 318.5 then "[ok]" else "[MISMATCH]")
    peak2 peak1
    (if peak2 < peak1 then "[ok]" else "[MISMATCH]")
    (c2 - c1)
    (if c2 > c1 then "[ok]" else "[MISMATCH]")
    (if decisions <> [] then "[ok]" else "[MISMATCH]")
