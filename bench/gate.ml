(** The bench regression gate (CI entry point).

    Usage: [gate.exe BASELINE_DIR [FRESH_DIR]]

    Loads every [BENCH_*.json] record from the two directories
    (FRESH_DIR defaults to the current directory, where [bench/main.exe]
    drops its records) and compares them with {!Obs.Bench_gate}:
    simulated cycle counts are deterministic and held to a tight
    tolerance, host events/sec only guards against collapse.  Exits
    nonzero when the gate fails, so CI can block the merge.

    Override tolerances with [XMT_GATE_CYCLES_TOL] / [XMT_GATE_RATE_TOL]
    (fractions, e.g. 0.02). *)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let load_records dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "gate: %s is not a directory\n" dir;
    exit 2
  end;
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.filter_map (fun f ->
         let path = Filename.concat dir f in
         match Obs.Json.of_string (read_file path) with
         | j -> Some j
         | exception Obs.Json.Parse_error msg ->
           Printf.eprintf "gate: %s: %s\n" path msg;
           exit 2)

let env_tol name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match float_of_string_opt s with
    | Some v when v >= 0.0 -> v
    | _ ->
      Printf.eprintf "gate: %s must be a non-negative fraction, got %S\n" name s;
      exit 2)

let () =
  let baseline_dir, fresh_dir =
    match Sys.argv with
    | [| _; b |] -> (b, ".")
    | [| _; b; f |] -> (b, f)
    | _ ->
      Printf.eprintf "usage: %s BASELINE_DIR [FRESH_DIR]\n" Sys.argv.(0);
      exit 2
  in
  let tolerance =
    {
      Obs.Bench_gate.cycles_tol =
        env_tol "XMT_GATE_CYCLES_TOL"
          Obs.Bench_gate.default_tolerance.Obs.Bench_gate.cycles_tol;
      rate_tol =
        env_tol "XMT_GATE_RATE_TOL"
          Obs.Bench_gate.default_tolerance.Obs.Bench_gate.rate_tol;
    }
  in
  let baseline = load_records baseline_dir in
  let fresh = load_records fresh_dir in
  if baseline = [] then begin
    Printf.eprintf "gate: no BENCH_*.json records in baseline %s\n" baseline_dir;
    exit 2
  end;
  let report = Obs.Bench_gate.compare_records ~tolerance ~baseline ~fresh () in
  print_string (Obs.Bench_gate.render report);
  exit (if report.Obs.Bench_gate.passed then 0 else 1)
