(** The evaluation harness: one experiment per table/figure/claim of the
    paper's evaluation (see DESIGN.md's experiment index).

    Run all:      dune exec bench/main.exe
    Run a subset: dune exec bench/main.exe -- table1 fig5 ... *)

let experiments =
  [
    ("table1", "Table I: simulated throughputs of XMTSim", Exp_table1.run);
    ("fig5", "Fig. 5/§III-D: DE vs DT and the macro-actor threshold", Exp_fig5.run);
    ("memmodel", "Figs. 6/7: memory-model litmus outcomes", Exp_memmodel.run);
    ("speedups", "§II-B: PRAM-program speedups over serial", Exp_speedups.run);
    ("modes", "§III-A: functional vs cycle-accurate speed", Exp_modes.run);
    ("prefetch", "§IV-C/[8]: prefetch buffer sweep", Exp_prefetch.run);
    ("clustering", "§IV-C: thread-clustering sweep", Exp_clustering.run);
    ("latency", "§IV-C: latency-tolerance ablation", Exp_latency.run);
    ("thermal", "§III-F: power/thermal management", Exp_thermal.run);
    ("serial", "§III-C: clock gating on a serial-heavy workload", Exp_serial.run);
    ("phases", "§III-F: phase sampling", Exp_phases.run);
    ("designspace", "§III: design-space sweeps", Exp_designspace.run);
    ( "campaign",
      "campaign engine: parallel design-space sweep, determinism + speedup",
      Exp_campaign.run );
    ( "racecheck",
      "race checker: shadow-memory detector overhead and non-perturbation",
      Exp_racecheck.run );
    ( "profile",
      "cycle-accounting profiler: host overhead, non-perturbation, exactness",
      Exp_profile.run );
    ( "stream",
      "live telemetry streaming: overhead and non-perturbation",
      Exp_stream.run );
    ( "serve",
      "campaign service: concurrent clients, throughput + latency",
      Exp_serve.run );
    ( "predict",
      "prediction mode: analytical-model accuracy and speed vs cycle-accurate",
      Exp_predict.run );
  ]

let () =
  (* --jobs N fans campaign-backed experiments (designspace, speedups,
     clustering, modes, campaign) out over N worker domains *)
  let rec strip_jobs acc = function
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some v when v >= 1 -> Bench_util.jobs := v
      | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        exit 1);
      strip_jobs acc rest
    | x :: rest -> strip_jobs (x :: acc) rest
    | [] -> List.rev acc
  in
  let selected =
    match strip_jobs [] (List.tl (Array.to_list Sys.argv)) with
    | _ :: _ as names -> names
    | [] -> List.map (fun (n, _, _) -> n) experiments
  in
  let t0 = Obs.Clock.now () in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, f) -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; have: %s\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 1)
    selected;
  Bench_util.shutdown_pool ();
  Printf.printf "\n(total bench wall time: %.1f s)\n"
    (Obs.Clock.elapsed_since t0)
