(** xmtcc — the XMTC compiler driver (paper §IV).

    Compiles XMTC source to XMT assembly.  Every pass described in the
    paper can be toggled from the command line, including the failure
    demonstrations (no outlining, no Fig. 9 repair). *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let timing_json pt =
  Obs.Json.Obj
    [
      ("pass", Obs.Json.Str pt.Compiler.Driver.pt_pass);
      ("wall_ms", Obs.Json.Float pt.Compiler.Driver.pt_ms);
      ("size_before", Obs.Json.Int pt.Compiler.Driver.pt_size_before);
      ("size_after", Obs.Json.Int pt.Compiler.Driver.pt_size_after);
      ("unit", Obs.Json.Str pt.Compiler.Driver.pt_unit);
    ]

let compile_cmd input output opt_level no_prefetch no_nbstore no_fences cluster
    no_layout no_postpass no_outline dump_outlined dump_stats timings
    timings_json racecheck debug_info stream_sink =
  let stream =
    Option.map
      (fun sink -> Obs.Stream.create (Obs.Stream.sink_of_path sink))
      stream_sink
  in
  let semit typ fields =
    Option.iter (fun s -> Obs.Stream.emit s ~typ fields) stream
  in
  semit "compile.start" [ ("input", Obs.Json.Str input) ];
  let options =
    {
      Compiler.Driver.opt_level;
      prefetch = not no_prefetch;
      prefetch_max_per_block = 8;
      nbstore = not no_nbstore;
      fences = not no_fences;
      cluster;
      layout_opt = not no_layout;
      postpass_fix = not no_postpass;
      outline = not no_outline;
    }
  in
  match Compiler.Driver.compile ~options (read_file input) with
  | exception Compiler.Driver.Compile_error msg ->
    semit "compile.failed" [ ("input", Obs.Json.Str input);
                             ("error", Obs.Json.Str msg) ];
    Option.iter Obs.Stream.close stream;
    Printf.eprintf "xmtcc: %s\n" msg;
    exit 1
  | out ->
    if dump_outlined then begin
      print_endline "/* === after the pre-pass (outlining) === */";
      print_endline out.Compiler.Driver.outlined_source
    end;
    let dest =
      match output with
      | Some p -> p
      | None -> Filename.remove_extension input ^ ".s"
    in
    let oc = open_out dest in
    (* -g keeps the .loc source markers in the listing so the simulator's
       profiler can attribute cycles to source lines; without it the
       output is the plain listing *)
    output_string oc
      (if debug_info then Isa.Asm.print out.Compiler.Driver.program
       else out.Compiler.Driver.asm_text);
    close_out oc;
    if dump_stats then
      Printf.printf
        "wrote %s (%d instructions, %d basic blocks relocated by the post-pass)\n"
        dest
        (List.length (Isa.Program.instructions out.Compiler.Driver.program))
        out.Compiler.Driver.relocated_blocks;
    if timings then begin
      print_endline "/* === per-pass timings === */";
      print_string (Compiler.Driver.timings_to_string out.Compiler.Driver.timings)
    end;
    (match timings_json with
    | None -> ()
    | Some path ->
      Obs.Json.write_path ~pretty:true path
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.Str "xmt.timings.v1");
             ("input", Obs.Json.Str input);
             ( "passes",
               Obs.Json.List (List.map timing_json out.Compiler.Driver.timings) );
           ]));
    (match stream with
    | None -> ()
    | Some s ->
      List.iter
        (fun pt ->
          Obs.Stream.emit s ~typ:"pass.done"
            [
              ("pass", Obs.Json.Str pt.Compiler.Driver.pt_pass);
              ("wall_ms", Obs.Json.Float pt.Compiler.Driver.pt_ms);
              ("size_before", Obs.Json.Int pt.Compiler.Driver.pt_size_before);
              ("size_after", Obs.Json.Int pt.Compiler.Driver.pt_size_after);
              ("unit", Obs.Json.Str pt.Compiler.Driver.pt_unit);
            ])
        out.Compiler.Driver.timings;
      Obs.Stream.emit s ~typ:"compile.done"
        [
          ("input", Obs.Json.Str input);
          ("output", Obs.Json.Str dest);
          ( "instructions",
            Obs.Json.Int
              (List.length
                 (Isa.Program.instructions out.Compiler.Driver.program)) );
          ( "relocated_blocks",
            Obs.Json.Int out.Compiler.Driver.relocated_blocks );
        ];
      Obs.Stream.close s);
    match racecheck with
    | None -> ()
    | Some level when level <> "warn" && level <> "error" ->
      Printf.eprintf "xmtcc: --racecheck takes warn or error, got %s\n" level;
      exit 1
    | Some level ->
      let findings = Racecheck.analyze out in
      List.iter
        (fun f -> Printf.eprintf "%s: %s\n" input (Racecheck.Diag.render f))
        findings;
      let errors = Racecheck.Diag.error_count findings in
      if errors > 0 then
        Printf.eprintf "xmtcc: %d race/memory-model error%s in %s\n" errors
          (if errors = 1 then "" else "s")
          input;
      (* =warn demotes everything to diagnostics; default/=error gates *)
      if errors > 0 && level <> "warn" then exit 2

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.s"
         ~doc:"Output assembly file (default: input with .s).")

let opt_level =
  Arg.(value & opt int 2 & info [ "O" ] ~docv:"N"
         ~doc:"Optimization level: 0 none, 1 fold/copy-prop/DCE, 2 adds CSE.")

let flag names doc = Arg.(value & flag & info names ~doc)

let cluster =
  Arg.(value & opt int 1 & info [ "cluster" ] ~docv:"C"
         ~doc:"Thread-clustering (coarsening) factor (paper \u{00a7}IV-C).")

let cmd =
  let doc = "compile XMTC to XMT assembly" in
  Cmd.v
    (Cmd.info "xmtcc" ~doc)
    Term.(
      const compile_cmd $ input $ output $ opt_level
      $ flag [ "no-prefetch" ] "Disable compiler prefetching (\u{00a7}IV-C)."
      $ flag [ "no-nbstore" ] "Use blocking stores in parallel code."
      $ flag [ "no-fences" ]
          "Do not insert fences before prefix-sums (breaks the memory model, \
           Fig. 7)."
      $ cluster
      $ flag [ "no-layout-opt" ] "Disable basic-block layout optimization."
      $ flag [ "no-postpass-fix" ]
          "Do not relocate misplaced spawn-region blocks (Fig. 9)."
      $ flag [ "no-outline" ] "Disable the outlining pre-pass (Fig. 8 hazard)."
      $ flag [ "dump-outlined" ] "Print the XMTC source after the pre-pass."
      $ flag [ "stats" ] "Print compilation statistics."
      $ flag [ "timings" ]
          "Report per-pass wall-clock and IR-size deltas."
      $ Arg.(value & opt (some string) None & info [ "timings-json" ] ~docv:"FILE"
               ~doc:"Write the per-pass timings as JSON.  Use - for stdout.")
      $ Arg.(
          value
          & opt ~vopt:(Some "error") (some string) None
          & info [ "racecheck" ] ~docv:"LEVEL"
              ~doc:
                "Run the static race & memory-model checker over the compiled \
                 program (spawn-block conflict analysis plus Fig. 7 fence \
                 placement).  Findings go to stderr; with LEVEL $(b,error) \
                 (the default) error findings exit with status 2, with \
                 $(b,warn) they are diagnostics only.")
      $ flag [ "g"; "debug-info" ]
          "Keep .loc source-line markers in the emitted assembly so the \
           simulator's profiler ($(b,xmtsim --profile)) can attribute \
           cycles to source lines and functions."
      $ Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"SINK"
               ~doc:"Stream xmt.events.v1 compile lifecycle records as \
                     NDJSON to SINK (a path, - for stdout, or fd:N): \
                     compile.start, one pass.done per compiler pass \
                     (wall-clock and IR-size delta) and a compile.done \
                     (or compile.failed) summary."))

let () = exit (Cmd.eval cmd)
