(** xmtserved — the campaign-as-a-service daemon.

    Holds one warm worker pool and one compiled-artifact cache for the
    whole host, accepts [xmt.campaign.v1] submissions over a Unix-domain
    socket and streams each campaign's [xmt.events.v1] records back
    live.  Campaigns are journaled under --state-dir, so a restarted
    daemon resumes incomplete ones and replays their streams
    exactly-once.  See lib/serve and `xmtsim --connect`. *)

open Cmdliner

let run socket state_dir workers max_pending max_client =
  let cfg =
    {
      Serve.Server.socket_path = socket;
      state_dir;
      workers;
      max_pending_jobs = max_pending;
      max_client_jobs = max_client;
    }
  in
  let srv =
    try Serve.Server.create cfg
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "xmtserved: %s %s: %s\n" fn arg (Unix.error_message e);
      exit 1
  in
  Printf.eprintf "xmtserved: listening on %s (workers=%s, state=%s)\n%!" socket
    (match workers with
    | Some n -> string_of_int n
    | None -> "host cores")
    (Option.value ~default:"none (no resume)" state_dir);
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  (* all the work happens on the server's own threads; the main thread
     just waits for a shutdown signal *)
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  prerr_endline "xmtserved: shutting down";
  Serve.Server.stop srv

let cmd =
  let doc = "serve XMT campaigns from a shared warm pool" in
  Cmd.v
    (Cmd.info "xmtserved" ~doc)
    Term.(
      const run
      $ Arg.(value & opt string "xmtserved.sock" & info [ "socket" ] ~docv:"PATH"
               ~doc:"Unix-domain socket to listen on (created; a stale \
                     socket file is replaced).")
      $ Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
               ~doc:"Journal campaigns under DIR (created if missing): a \
                     restarted daemon finishes incomplete campaigns and \
                     clients re-attach with --attach CID.  Without it \
                     campaigns live only as long as the process.")
      $ Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
               ~doc:"Worker domains in the shared pool (default: host \
                     cores).")
      $ Arg.(value & opt int 4096 & info [ "max-pending" ] ~docv:"N"
               ~doc:"Server-wide cap on queued jobs; submissions beyond it \
                     get a typed server.overload rejection.")
      $ Arg.(value & opt int 1024 & info [ "max-client-jobs" ] ~docv:"N"
               ~doc:"Per-connection cap on in-flight jobs (quota; also a \
                     server.overload rejection)."))

let () = exit (Cmd.eval cmd)
