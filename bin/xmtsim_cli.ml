(** xmtsim — the cycle-accurate XMT simulator driver (paper §III).

    Runs an XMT assembly program (or compiles an XMTC source on the fly)
    in the cycle-accurate or fast functional mode, with the configuration,
    statistics, trace, plug-in, power/thermal and checkpoint features of
    the paper. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

(* -------- campaign mode (--campaign FILE.json --jobs N) -------- *)

let run_campaign_cmd ~file ~jobs ~retries ~export ~stream_sink =
  List.iter
    (fun kind ->
      if export kind <> None then begin
        Printf.eprintf
          "xmtsim: --export %s applies to single runs; the campaign report \
           carries per-job stats instead\n"
          kind;
        exit 1
      end)
    [ "stats"; "trace"; "timeseries"; "races"; "predict"; "reuseprofile" ];
  (* the spec file carries the request (including an optional "exec"
     block with default jobs/retries); command-line flags override it *)
  let req =
    try
      let req = Campaign.Request.load_file file in
      let req =
        match jobs with
        | Some n -> Campaign.Request.with_jobs req (Some n)
        | None -> req
      in
      let req =
        match retries with
        | Some r -> Campaign.Request.with_retries req r
        | None -> req
      in
      (* --export profile at campaign level profiles every cycle-mode job
         and writes the merged CPI stack *)
      if export "profile" = None then req
      else
        Campaign.Request.with_specs req
          (List.map
             (fun (name, j) -> (name, { j with Core.Toolchain.profile = true }))
             req.Campaign.Request.specs)
    with
    | Campaign.Spec_error msg | Xmtsim.Config.Bad_config msg ->
      Printf.eprintf "xmtsim: campaign %s: %s\n" file msg;
      exit 1
  in
  let total = List.length req.Campaign.Request.specs in
  let reg = Obs.Metrics.create () in
  let stream =
    Option.map
      (fun sink -> Obs.Stream.create (Obs.Stream.sink_of_path sink))
      stream_sink
  in
  (* one warm pool for the whole campaign; jobs sharing a compile key
     (a config sweep over one source) compile once via the shared
     artifact cache *)
  let effective_workers =
    max 1 (min (Option.value ~default:1 req.Campaign.Request.jobs) total)
  in
  let results =
    Campaign.Pool.with_pool ~workers:effective_workers (fun pool ->
        Campaign.run_request ~pool
          ~artifacts:(Core.Toolchain.Artifacts.create ())
          ~metrics:reg ?stream
          ~on_event:(Campaign.progress_printer ~total)
          req)
  in
  (match stream with
  | Some s ->
    let dropped = Obs.Stream.dropped s in
    Obs.Stream.close s;
    if dropped > 0 then
      Printf.eprintf "xmtsim: stream: %d record(s) dropped (queue full)\n"
        dropped
  | None -> ());
  let report_path = Option.value ~default:"campaign.json" (export "campaign") in
  Obs.Json.write_path ~pretty:true report_path
    (Campaign.report_to_json ~workers:effective_workers results);
  (match export "campaign-det" with
  | Some p ->
    Obs.Json.write_path ~pretty:true p
      (Campaign.report_to_json ~host:false results)
  | None -> ());
  (match export "profile" with
  | Some p -> (
    match Campaign.merged_profile_json results with
    | Some j -> Obs.Json.write_path ~pretty:true p j
    | None ->
      Printf.eprintf
        "xmtsim: no job produced a profile (cycle-mode jobs only)\n")
  | None -> ());
  let ok = Campaign.ok_count results and failed = Campaign.failed_count results in
  let wall =
    Option.value ~default:0.0 (Obs.Metrics.gauge_value reg "campaign.wall_seconds")
  in
  (* the human summary goes to stderr so stdout stays pure JSON when a
     report is exported to "-" *)
  Printf.eprintf "campaign: %d jobs, %d ok, %d failed, %.2fs wall (%d worker%s)\n"
    total ok failed wall effective_workers
    (if effective_workers = 1 then "" else "s");
  if report_path <> "-" then Printf.eprintf "report written to %s\n" report_path;
  exit (if failed > 0 then 1 else 0)

(* -------- served mode (--connect SOCKET) -------- *)

(* "JOB:JSEQ", the key printed in the reconnect hint *)
let parse_after s =
  match String.index_opt s ':' with
  | Some i -> (
    try
      Some
        ( int_of_string (String.sub s 0 i),
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
    with Failure _ -> None)
  | None -> None

let run_connect_cmd ~sock ~campaign_file ~attach_cid ~after ~stream_sink =
  let module J = Obs.Json in
  (match (campaign_file, attach_cid) with
  | None, None ->
    Printf.eprintf
      "xmtsim: --connect needs --campaign FILE.json (submit) or --attach CID \
       (rejoin)\n";
    exit 1
  | Some _, Some _ ->
    Printf.eprintf "xmtsim: --campaign and --attach are mutually exclusive\n";
    exit 1
  | _ -> ());
  let after =
    Option.map
      (fun s ->
        match parse_after s with
        | Some p -> p
        | None ->
          Printf.eprintf "xmtsim: --after wants JOB:JSEQ (two integers)\n";
          exit 1)
      after
  in
  let sink = Option.map Obs.Stream.sink_of_path stream_sink in
  let client =
    try Serve.Client.connect sock
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "xmtsim: cannot connect to %s: %s (is xmtserved running?)\n"
        sock (Unix.error_message e);
      exit 3
  in
  (* last (job, jseq) received, for the reconnect hint on a lost link *)
  let last = ref after in
  let lost cid =
    Printf.eprintf
      "xmtsim: connection to %s lost; the campaign keeps running server-side\n"
      sock;
    (match cid with
    | Some cid ->
      let hint =
        match !last with
        | Some (j, s) -> Printf.sprintf " --after %d:%d" j s
        | None -> ""
      in
      Printf.eprintf "  resume with: xmtsim --connect %s --attach %s%s\n" sock
        cid hint
    | None -> ());
    exit 3
  in
  let on_record r =
    (match r with
    | J.Obj kvs -> (
      match (List.assoc_opt "job" kvs, List.assoc_opt "jseq" kvs) with
      | Some (J.Int j), Some (J.Int s) -> last := Some (j, s)
      | _ -> ())
    | _ -> ());
    (match sink with
    | Some s -> s.Obs.Stream.write (J.to_string r)
    | None -> ());
    match r with
    | J.Obj kvs when List.assoc_opt "type" kvs = Some (J.Str "campaign.progress")
      ->
      let geti k =
        match List.assoc_opt k kvs with Some (J.Int n) -> n | _ -> 0
      in
      Printf.eprintf "\r[%d/%d] ok %d, failed %d%!" (geti "completed")
        (geti "total") (geti "ok") (geti "failed")
    | _ -> ()
  in
  let cid =
    try
      match campaign_file with
      | Some file ->
        let spec =
          match J.of_string (read_file file) with
          | j -> j
          | exception J.Parse_error msg ->
            Printf.eprintf "xmtsim: campaign %s: %s\n" file msg;
            exit 1
        in
        (match Serve.Client.submit client spec with
        | Ok cid ->
          Printf.eprintf "campaign %s accepted by %s\n%!" cid sock;
          cid
        | Error frame ->
          Printf.eprintf "xmtsim: server rejected the campaign: %s\n"
            (J.to_string frame);
          exit 1)
      | None -> (
        let cid = Option.get attach_cid in
        match Serve.Client.attach client ~cid ?after () with
        | Ok () -> cid
        | Error frame ->
          Printf.eprintf "xmtsim: attach %s failed: %s\n" cid
            (J.to_string frame);
          exit 1)
    with Serve.Client.Disconnected -> lost None
  in
  match Serve.Client.stream_until_done client ~cid ~on_record with
  | exception Serve.Client.Disconnected -> lost (Some cid)
  | s ->
    Option.iter (fun s -> s.Obs.Stream.close ()) sink;
    Serve.Client.close client;
    Printf.eprintf "\rcampaign %s: %d jobs, %d ok, %d failed\n" cid
      s.Serve.Client.s_jobs s.Serve.Client.s_ok s.Serve.Client.s_failed;
    exit (if s.Serve.Client.s_failed > 0 then 1 else 0)

let run_cmd input preset overrides functional mode_opt calibration memmap_file
    max_cycles stats trace trace_packages trace_limit hot profile_interval
    power_interval floorplan checkpoint_out checkpoint_at checkpoint_in governor
    governor_interval no_clock_gating racecheck cpi_profile exports
    campaign_file jobs retries stream_sink heartbeat_cycles connect attach_cid
    after =
  (* resolve the export sinks: --export KIND[=PATH], last writer wins *)
  let export kind =
    List.fold_left (fun acc (k, p) -> if k = kind then Some p else acc) None
      exports
  in
  (match (connect, attach_cid, after) with
  | Some sock, _, _ ->
    run_connect_cmd ~sock ~campaign_file ~attach_cid ~after ~stream_sink
  | None, Some _, _ | None, None, Some _ ->
    Printf.eprintf "xmtsim: --attach/--after need --connect SOCKET\n";
    exit 1
  | None, None, None -> ());
  (match campaign_file with
  | Some file -> run_campaign_cmd ~file ~jobs ~retries ~export ~stream_sink
  | None -> ());
  let input =
    match input with
    | Some i -> i
    | None ->
      Printf.eprintf "xmtsim: need an input FILE.{c,s} (or --campaign FILE.json)\n";
      exit 1
  in
  (* --functional is the historical spelling of --mode functional; the
     two agree or the invocation is ambiguous *)
  let mode =
    match (mode_opt, functional) with
    | None, false -> `Cycle
    | None, true | Some "functional", _ -> `Functional
    | Some "cycle", false -> `Cycle
    | Some "predict", false -> `Predict
    | Some (("cycle" | "predict") as m), true ->
      Printf.eprintf "xmtsim: --functional conflicts with --mode %s\n" m;
      exit 1
    | Some other, _ ->
      Printf.eprintf "xmtsim: --mode must be cycle|functional|predict, got %S\n"
        other;
      exit 1
  in
  if calibration <> None && mode <> `Predict then begin
    Printf.eprintf "xmtsim: --calibration needs --mode predict\n";
    exit 1
  end;
  let predict_json = export "predict" in
  let reuseprofile_json = export "reuseprofile" in
  (if mode <> `Predict then
     List.iter
       (fun kind ->
         if export kind <> None then begin
           Printf.eprintf "xmtsim: --export %s needs --mode predict\n" kind;
           exit 1
         end)
       [ "predict"; "reuseprofile" ]);
  let stats_json = export "stats" in
  let trace_json = export "trace" in
  let timeseries_json = export "timeseries" in
  let races_json = export "races" in
  let racecheck = racecheck || races_json <> None in
  let profile_json = export "profile" in
  let profile_requested = cpi_profile || profile_json <> None in
  List.iter
    (fun kind ->
      if export kind <> None then begin
        Printf.eprintf "xmtsim: --export %s needs --campaign\n" kind;
        exit 1
      end)
    [ "campaign"; "campaign-det" ];
  let config =
    match List.assoc_opt preset Xmtsim.Config.presets with
    | Some c -> (
      try Xmtsim.Config.with_overrides c overrides
      with Xmtsim.Config.Bad_config msg ->
        Printf.eprintf "xmtsim: %s\n" msg;
        exit 1)
    | None ->
      Printf.eprintf "xmtsim: unknown configuration preset %S (have: %s)\n" preset
        (String.concat ", " (List.map fst Xmtsim.Config.presets));
      exit 1
  in
  let memmap =
    match memmap_file with
    | None -> []
    | Some p -> Isa.Memmap.parse_file p
  in
  (* keep the driver output alongside the image: the static race layer
     analyzes the typed AST + final IR, which assembly inputs don't have *)
  let driver_out, image =
    if Filename.check_suffix input ".s" || Filename.check_suffix input ".asm"
    then (None, Isa.Program.resolve ~extra_data:memmap (Isa.Asm.parse_file input))
    else begin
      match Compiler.Driver.compile_to_image ~memmap (read_file input) with
      | exception Compiler.Driver.Compile_error msg ->
        Printf.eprintf "xmtcc: %s\n" msg;
        exit 1
      | out, img -> (Some out, img)
    end
  in
  let static_findings () =
    match driver_out with
    | Some out -> Racecheck.analyze out
    | None -> []
  in
  let print_findings findings =
    List.iter
      (fun f -> Printf.eprintf "%s: %s\n" input (Racecheck.Diag.render f))
      findings
  in
  (* cycle-level sinks have nothing to record in the serializing
     functional and predict modes: fail fast instead of writing an
     empty file *)
  let reject_cycle_sinks ~drop =
    let reject flag =
      Printf.eprintf
        "xmtsim: %s records simulated cycle-level activity; it needs the \
         cycle-accurate mode (drop %s)\n"
        flag drop;
      exit 2
    in
    if trace_json <> None then reject "--export trace";
    if timeseries_json <> None then reject "--export timeseries";
    if profile_json <> None then reject "--export profile";
    if cpi_profile then reject "--profile";
    if governor then reject "--governor";
    if stream_sink <> None then reject "--stream"
  in
  match mode with
  | `Functional -> begin
    reject_cycle_sinks ~drop:"--functional";
    let host_t0 = Unix.gettimeofday () in
    let r = Xmtsim.Functional_mode.run image in
    let host_secs = Unix.gettimeofday () -. host_t0 in
    print_string r.Xmtsim.Functional_mode.output;
    if String.length r.Xmtsim.Functional_mode.output > 0 then print_newline ();
    if stats then
      Printf.printf "[functional] instructions: %d\n"
        r.Xmtsim.Functional_mode.instructions;
    (match stats_json with
    | None -> ()
    | Some path ->
      (* functional mode has no cycle-level stats; emit the envelope with
         what it does measure so downstream tooling sees a valid record *)
      let reg = Obs.Metrics.create () in
      Obs.Metrics.inc
        ~by:r.Xmtsim.Functional_mode.instructions
        (Obs.Metrics.counter reg ~help:"instructions executed"
           ~labels:[ ("mode", "functional") ]
           "sim.instructions");
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~help:"host wall-clock seconds" "host.wall_seconds")
        host_secs;
      Obs.Json.write_path ~pretty:true path (Obs.Metrics.to_json reg));
    if racecheck then begin
      (* the shadow-memory layer needs the cycle-accurate machine; the
         functional mode still gets the static analysis when the input
         was XMTC source *)
      match driver_out with
      | None ->
        Printf.eprintf
          "xmtsim: --racecheck on assembly input needs the cycle-accurate \
           mode (the static layer analyzes XMTC source)\n";
        exit 2
      | Some _ ->
        let findings = static_findings () in
        print_findings findings;
        Printf.eprintf
          "racecheck: %d static finding(s); dynamic detection needs the \
           cycle-accurate mode (drop --functional)\n"
          (List.length findings);
        (match races_json with
        | Some path ->
          Obs.Json.write_path ~pretty:true path (Racecheck.report findings)
        | None -> ())
    end
  end
  | `Predict -> begin
    reject_cycle_sinks ~drop:"--mode predict";
    let cal =
      match calibration with
      | None -> Predict.Calibrate.default
      | Some file -> (
        try Predict.Calibrate.load_file file
        with Predict.Calibrate.Calib_error msg ->
          Printf.eprintf "xmtsim: --calibration %s: %s\n" file msg;
          exit 1)
    in
    let rp = Xmtsim.Reuseprofile.create () in
    let host_t0 = Unix.gettimeofday () in
    let r = Xmtsim.Functional_mode.run ~profile:rp image in
    let host_secs = Unix.gettimeofday () -. host_t0 in
    let snap = Xmtsim.Reuseprofile.snapshot rp in
    let pred =
      Predict.Model.predict ~coeffs:cal.Predict.Calibrate.coeffs
        ~residual_std_pct:cal.Predict.Calibrate.residual_std_pct ~config snap
    in
    print_string r.Xmtsim.Functional_mode.output;
    if String.length r.Xmtsim.Functional_mode.output > 0 then print_newline ();
    if stats then
      Printf.printf
        "[predict] instructions: %d, predicted cycles: %d (band %d..%d, \
         config %s)\n"
        r.Xmtsim.Functional_mode.instructions pred.Predict.Model.predicted_cycles
        pred.Predict.Model.lo pred.Predict.Model.hi config.Xmtsim.Config.name;
    (match predict_json with
    | Some path ->
      Obs.Json.write_path ~pretty:true path
        (Predict.Model.to_json
           ~calibration:(Predict.Calibrate.summary_json cal)
           ~config_name:config.Xmtsim.Config.name pred)
    | None -> ());
    (match reuseprofile_json with
    | Some path ->
      Obs.Json.write_path ~pretty:true path (Xmtsim.Reuseprofile.to_json snap)
    | None -> ());
    (match stats_json with
    | None -> ()
    | Some path ->
      (* like functional mode, the envelope carries what this mode
         measures: instructions executed plus the model's prediction *)
      let reg = Obs.Metrics.create () in
      Obs.Metrics.inc
        ~by:r.Xmtsim.Functional_mode.instructions
        (Obs.Metrics.counter reg ~help:"instructions executed"
           ~labels:[ ("mode", "predict") ]
           "sim.instructions");
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~help:"analytically predicted cycles"
           "predict.cycles")
        (float_of_int pred.Predict.Model.predicted_cycles);
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~help:"host wall-clock seconds" "host.wall_seconds")
        host_secs;
      Obs.Json.write_path ~pretty:true path (Obs.Metrics.to_json reg));
    if racecheck then begin
      match driver_out with
      | None ->
        Printf.eprintf
          "xmtsim: --racecheck on assembly input needs the cycle-accurate \
           mode (the static layer analyzes XMTC source)\n";
        exit 2
      | Some _ ->
        let findings = static_findings () in
        print_findings findings;
        Printf.eprintf
          "racecheck: %d static finding(s); dynamic detection needs the \
           cycle-accurate mode (drop --mode predict)\n"
          (List.length findings);
        (match races_json with
        | Some path ->
          Obs.Json.write_path ~pretty:true path (Racecheck.report findings)
        | None -> ())
    end
  end
  | `Cycle -> begin
    let m = Xmtsim.Machine.create ~config image in
    if no_clock_gating then Xmtsim.Machine.set_gating m false;
    let racedet =
      if racecheck then Some (Xmtsim.Machine.attach_racecheck m) else None
    in
    if profile_requested then
      ignore (Xmtsim.Machine.attach_profile m : Xmtsim.Profile.t);
    let stream =
      match stream_sink with
      | None -> None
      | Some sink ->
        let s = Obs.Stream.create (Obs.Stream.sink_of_path sink) in
        Xmtsim.Machine.attach_stream ~heartbeat_cycles m s;
        Some s
    in
    (match checkpoint_in with
    | Some p -> Xmtsim.Machine.restore m (Xmtsim.Machine.snapshot_of_file p)
    | None -> ());
    if trace then
      Xmtsim.Trace.attach
        ~filter:{ Xmtsim.Trace.all with Xmtsim.Trace.limit = trace_limit }
        m print_string;
    if trace_packages then
      Xmtsim.Trace.attach_packages ~limit:trace_limit m print_string;
    if hot then
      Xmtsim.Machine.add_filter_plugin m (Xmtsim.Plugin.hot_locations ~top:10 ());
    let tracer =
      match trace_json with
      | None -> None
      | Some _ ->
        let tr = Obs.Tracer.create () in
        Xmtsim.Machine.attach_tracer m tr;
        Some tr
    in
    let series =
      match timeseries_json with
      | None -> None
      | Some _ -> Some (Obs.Timeseries.create ~window:4096 ())
    in
    let gov =
      if governor then
        Some (Xmtsim.Governor.attach ?series ~interval:governor_interval m)
      else None
    in
    let profiler =
      if profile_interval > 0 then
        Some (Xmtsim.Profiler.attach ~interval:profile_interval m)
      else if tracer <> None || series <> None then
        (* the trace and timeseries get activity counter tracks even
           without an explicit profile interval *)
        Some (Xmtsim.Profiler.attach ~interval:1000 m)
      else None
    in
    let power =
      if power_interval > 0 then begin
        let p = Xmtsim.Power.create m in
        let th =
          Xmtsim.Thermal.create
            ~grid_w:(int_of_float (sqrt (float_of_int config.Xmtsim.Config.num_clusters)))
            (Xmtsim.Power.component_names p)
        in
        Xmtsim.Machine.add_activity_plugin m ~name:"power" ~interval:power_interval
          (fun m cycle ->
            let watts = Xmtsim.Power.sample p in
            Xmtsim.Thermal.step th
              ~dt:(float_of_int power_interval /. 1e9)
              watts;
            Printf.printf "[cycle %8d] power %.2f W, Tmax %.2f K\n" cycle
              (Xmtsim.Power.total p)
              (Xmtsim.Thermal.max_temperature th);
            ignore m);
        Some (p, th)
      end
      else None
    in
    let host_t0 = Unix.gettimeofday () in
    (* §III-E: save the simulation state at a point given ahead of time,
       then keep going; the run can be resumed later from the file *)
    (match (checkpoint_at, checkpoint_out) with
    | Some cycle, Some path ->
      ignore (Xmtsim.Machine.run ~max_cycles:cycle m);
      Xmtsim.Machine.run_to_quiescent m;
      Xmtsim.Machine.snapshot_to_file (Xmtsim.Machine.checkpoint m) path;
      Printf.printf "checkpoint at cycle %d written to %s\n"
        (Xmtsim.Machine.cycles m) path
    | Some _, None ->
      Printf.eprintf "xmtsim: --checkpoint-at needs --checkpoint-out\n";
      exit 1
    | None, _ -> ());
    let r = Xmtsim.Machine.run ?max_cycles m in
    let host_secs = Unix.gettimeofday () -. host_t0 in
    print_string r.Xmtsim.Machine.output;
    if String.length r.Xmtsim.Machine.output > 0 then print_newline ();
    if not r.Xmtsim.Machine.halted then
      Printf.eprintf "xmtsim: cycle budget exhausted before halt\n";
    (match (checkpoint_out, checkpoint_at) with
    | Some p, None ->
      Xmtsim.Machine.snapshot_to_file (Xmtsim.Machine.checkpoint m) p;
      Printf.printf "checkpoint written to %s\n" p
    | _ -> ());
    if stats then begin
      Printf.printf "---- %s ----\n" config.Xmtsim.Config.name;
      print_string (Xmtsim.Stats.to_string (Xmtsim.Machine.stats m))
    end;
    (match profiler with
    | Some p when profile_interval > 0 ->
      print_endline "---- execution profile ----";
      print_string (Xmtsim.Plugin.render_profile p)
    | _ -> ());
    (* the CPI stacks are reported only when asked for — the profiler may
       also be attached as the interval profiler's event source *)
    (if profile_requested then
       match Xmtsim.Machine.profile_report m with
       | Some rp ->
         if cpi_profile then begin
           print_endline "---- CPI stacks ----";
           print_string (Xmtsim.Profile.render rp);
           print_string (Xmtsim.Profile.render_flame rp)
         end;
         (match profile_json with
         | Some path ->
           Obs.Json.write_path ~pretty:true path (Xmtsim.Profile.to_json rp)
         | None -> ())
       | None -> ());
    (* -------- telemetry sinks (--export stats / --export trace) -------- *)
    let events = Xmtsim.Machine.events_processed m in
    let events_per_sec =
      if host_secs > 0.0 then float_of_int events /. host_secs else 0.0
    in
    (match stats_json with
    | None -> ()
    | Some path ->
      let reg = Obs.Metrics.create () in
      Xmtsim.Stats.export (Xmtsim.Machine.stats m) reg;
      (* per-domain clock activity (ticks fired / ticks gated away) *)
      Xmtsim.Machine.export_clocks m reg;
      (* host-side throughput *)
      Obs.Metrics.set (Obs.Metrics.gauge reg "host.wall_seconds") host_secs;
      Obs.Metrics.inc ~by:events (Obs.Metrics.counter reg "host.events_processed");
      Obs.Metrics.set (Obs.Metrics.gauge reg "host.events_per_sec") events_per_sec;
      (* live-stream accounting, so a dropped-records overflow is visible
         in the exported stats and not only on stderr *)
      (match stream with
      | Some s ->
        Obs.Metrics.inc ~by:(Obs.Stream.emitted s)
          (Obs.Metrics.counter reg ~help:"telemetry records emitted"
             "host.stream.emitted");
        Obs.Metrics.inc ~by:(Obs.Stream.dropped s)
          (Obs.Metrics.counter reg ~help:"telemetry records dropped (queue full)"
             "host.stream.dropped")
      | None -> ());
      Obs.Metrics.set
        (Obs.Metrics.gauge reg "host.sim_cycles_per_sec")
        (if host_secs > 0.0 then
           float_of_int r.Xmtsim.Machine.cycles /. host_secs
         else 0.0);
      (* spatial distributions *)
      let act =
        Obs.Metrics.histogram reg
          ~buckets:[ 0.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ]
          "sim.cluster.instructions"
      in
      Array.iter
        (fun n -> Obs.Metrics.observe act (float_of_int n))
        (Xmtsim.Machine.cluster_activity m);
      (* power/thermal, when the sampling plug-in ran *)
      (match power with
      | Some (p, th) ->
        Xmtsim.Power.export p reg;
        Xmtsim.Thermal.export th reg
      | None -> ());
      (match gov with Some g -> Xmtsim.Governor.export g reg | None -> ());
      let j =
        (* the governor's decision log rides along as an extra top-level
           section of the metrics envelope (schema allows it since v2) *)
        match (Obs.Metrics.to_json reg, gov) with
        | Obs.Json.Obj fields, Some g ->
          Obs.Json.Obj (fields @ [ ("governor", Xmtsim.Governor.to_json g) ])
        | j, _ -> j
      in
      Obs.Json.write_path ~pretty:true path j);
    (match (trace_json, tracer) with
    | Some path, Some tr ->
      Xmtsim.Machine.flush_tracer m;
      (* profile samples become a counter track *)
      (match profiler with
      | Some p ->
        List.iter
          (fun s ->
            Obs.Tracer.counter tr ~ts:s.Xmtsim.Plugin.ps_cycle "activity"
              [
                ("compute", float_of_int s.Xmtsim.Plugin.ps_compute);
                ("memory", float_of_int s.Xmtsim.Plugin.ps_memory);
                ("memwait", float_of_int s.Xmtsim.Plugin.ps_memwait);
              ])
          (Xmtsim.Plugin.samples_in_order p)
      | None -> ());
      (* host wall-clock on its own process track *)
      Obs.Tracer.name_process tr ~pid:2 "host (ts = microseconds)";
      Obs.Tracer.name_thread tr ~pid:2 ~tid:1 "xmtsim_cli";
      Obs.Tracer.complete tr ~pid:2 ~tid:1 ~ts:0
        ~dur:(int_of_float (host_secs *. 1e6))
        ~cat:"host"
        ~args:
          [
            ("events_processed", Obs.Tracer.A_int events);
            ("events_per_sec", Obs.Tracer.A_float events_per_sec);
            ("sim_cycles", Obs.Tracer.A_int r.Xmtsim.Machine.cycles);
          ]
        "simulation-run";
      Obs.Json.write_path path (Obs.Tracer.to_json tr)
    | _ -> ());
    (match (timeseries_json, series) with
    | Some path, Some s ->
      (* fold the execution profile into the timeseries so the window
         has the machine-activity channels alongside the governor's *)
      (match profiler with
      | Some p ->
        let chans =
          List.map
            (fun (name, help) -> Obs.Timeseries.channel s ~help name)
            [
              ("sim.profile.compute", "TCU compute instructions in window");
              ("sim.profile.memory", "memory instructions in window");
              ("sim.profile.memwait", "TCU-cycles stalled on memory in window");
            ]
        in
        List.iter
          (fun smp ->
            let t = smp.Xmtsim.Plugin.ps_cycle in
            List.iter2
              (fun c v -> Obs.Timeseries.push c ~t (float_of_int v))
              chans
              [
                smp.Xmtsim.Plugin.ps_compute;
                smp.Xmtsim.Plugin.ps_memory;
                smp.Xmtsim.Plugin.ps_memwait;
              ])
          (Xmtsim.Plugin.samples_in_order p)
      | None -> ());
      Obs.Json.write_path ~pretty:true path (Obs.Timeseries.to_json s)
    | _ -> ());
    (match racedet with
    | None -> ()
    | Some rd ->
      let findings = static_findings () in
      print_findings findings;
      let nraces = Xmtsim.Racedetect.race_count rd in
      Printf.eprintf
        "racecheck: %d static finding(s), %d dynamic race(s) (%d shadow \
         event(s) over %d spawn epoch(s))\n"
        (List.length findings) nraces
        (Xmtsim.Racedetect.events rd)
        (Xmtsim.Racedetect.epochs rd);
      (match races_json with
      | Some path ->
        Obs.Json.write_path ~pretty:true path
          (Racecheck.report ~dynamic:(Xmtsim.Racedetect.to_json rd) findings)
      | None -> ()));
    (match stream with
    | Some s ->
      let dropped = Obs.Stream.dropped s in
      Obs.Stream.close s;
      if dropped > 0 then
        Printf.eprintf "xmtsim: stream: %d record(s) dropped (queue full)\n"
          dropped
    | None -> ());
    List.iter
      (fun (name, report) -> Printf.printf "---- plugin %s ----\n%s\n" name report)
      (Xmtsim.Machine.filter_reports m);
    match (floorplan, power) with
    | true, Some (_, th) ->
      let temps = Xmtsim.Thermal.temperatures th in
      let nclusters = config.Xmtsim.Config.num_clusters in
      print_string
        (Xmtsim.Floorplan.render ~title:"final temperature floorplan"
           ~grid_w:(max 1 (int_of_float (sqrt (float_of_int nclusters))))
           (Array.sub temps 0 nclusters))
    | _ -> ()
  end

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.{c,s}")

let export_conv =
  let parse s =
    let kind, path =
      match String.index_opt s '=' with
      | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
      | None -> (s, None)
    in
    (* the valid kinds come from the schema registry, so this listing
       cannot drift from the records the toolchain actually emits *)
    if Obs.Schema.is_export_kind kind then
      Ok (kind, Option.value ~default:(kind ^ ".json") path)
    else
      Error
        (`Msg
          (Printf.sprintf "unknown export kind %S (%s)" kind
             Obs.Schema.export_kinds_doc))
  in
  let print ppf (k, p) = Format.fprintf ppf "%s=%s" k p in
  Arg.conv (parse, print)

let preset =
  Arg.(value & opt string "fpga64" & info [ "c"; "config" ] ~docv:"PRESET"
         ~doc:"Configuration preset: tiny, fpga64, chip1024.")

let overrides =
  Arg.(value & opt_all string [] & info [ "set" ] ~docv:"KEY=VAL"
         ~doc:"Override a configuration parameter (repeatable).")

let cmd =
  let doc = "simulate an XMT program (cycle-accurate or functional)" in
  Cmd.v
    (Cmd.info "xmtsim" ~doc)
    Term.(
      const run_cmd $ input $ preset $ overrides
      $ Arg.(value & flag & info [ "functional" ]
               ~doc:"Fast functional (serializing) mode (same as --mode \
                     functional).")
      $ Arg.(value & opt (some string) None & info [ "mode" ] ~docv:"MODE"
               ~doc:"Execution mode: cycle (the cycle-accurate simulator, \
                     default), functional (fast serializing interpreter), or \
                     predict (one functional pass harvests a reuse profile \
                     and the analytical model predicts the cycle count — \
                     add --export predict/reuseprofile for the reports).")
      $ Arg.(value & opt (some file) None & info [ "calibration" ] ~docv:"FILE"
               ~doc:"xmt.calibration.v1 artifact with fitted model \
                     coefficients for --mode predict (default: the built-in \
                     fit).")
      $ Arg.(value & opt (some file) None & info [ "memmap" ] ~docv:"FILE"
               ~doc:"Memory-map file with initial values of globals.")
      $ Arg.(value & opt (some int) None & info [ "max-cycles" ] ~docv:"N")
      $ Arg.(value & flag & info [ "stats" ] ~doc:"Print simulation statistics.")
      $ Arg.(value & flag & info [ "trace" ] ~doc:"Print an execution trace.")
      $ Arg.(value & flag & info [ "trace-packages" ]
               ~doc:"Print the cycle-accurate package trace (per station).")
      $ Arg.(value & opt int 200 & info [ "trace-limit" ] ~docv:"N")
      $ Arg.(value & flag & info [ "hot" ]
               ~doc:"Enable the hot-memory-locations filter plug-in.")
      $ Arg.(value & opt int 0 & info [ "profile-interval" ] ~docv:"CYCLES"
               ~doc:"Sample an execution profile every N cycles (0 = off).")
      $ Arg.(value & opt int 0 & info [ "power-interval" ] ~docv:"CYCLES"
               ~doc:"Sample power/temperature every N cycles (0 = off).")
      $ Arg.(value & flag & info [ "floorplan" ]
               ~doc:"Render the final temperature floorplan (with \
                     --power-interval).")
      $ Arg.(value & opt (some string) None & info [ "checkpoint-out" ] ~docv:"FILE"
               ~doc:"Write a checkpoint (after the run, or at --checkpoint-at).")
      $ Arg.(value & opt (some int) None & info [ "checkpoint-at" ] ~docv:"CYCLE"
               ~doc:"Take the checkpoint at (the first quiescent point after) \
                     this cycle, then continue running.")
      $ Arg.(value & opt (some file) None & info [ "checkpoint-in" ] ~docv:"FILE"
               ~doc:"Restore a checkpoint before the run.")
      $ Arg.(value & flag & info [ "governor" ]
               ~doc:"Enable the telemetry-driven DVFS governor: thresholds \
                     on windowed ICN backlog and modeled temperature \
                     throttle/restore the cluster and ICN clock domains; \
                     decisions appear in --export stats (governor section), \
                     --export trace and --export timeseries.")
      $ Arg.(value & opt int 2000 & info [ "governor-interval" ] ~docv:"CYCLES"
               ~doc:"Governor sampling interval in cluster cycles.")
      $ Arg.(value & flag & info [ "no-clock-gating" ]
               ~doc:"Keep every clock domain ticking even when idle.  \
                     Gating never changes simulated results — cycle \
                     counts, output and stats are bit-identical either \
                     way — this flag only exists to measure the host-side \
                     event-count reduction (compare host.events_processed \
                     in --export stats).")
      $ Arg.(value & flag & info [ "racecheck" ]
               ~doc:"Attach the race & memory-model checker: the static \
                     spawn-block analysis (XMTC inputs) plus the dynamic \
                     shadow-memory race detector (cycle-accurate mode).  \
                     Findings go to stderr; add --export races=FILE for \
                     the xmt.races.v1 JSON report.")
      $ Arg.(value & flag & info [ "profile" ]
               ~doc:"Attach the cycle-accounting profiler and print per-TCU \
                     CPI stacks: every TCU cycle attributed to one bucket \
                     (compute, spawn/join, ICN, cache hit, DRAM, \
                     prefetch-covered, fence/ps), idle by subtraction, so \
                     the stack sums exactly to the run's TCU-cycles.  XMTC \
                     inputs (and assembly from $(b,xmtcc -g)) also get \
                     per-source-line hot-spot tables and a flame-style \
                     view.  The profiler is passive: cycles, stats and \
                     traces are bit-identical with or without it.  Add \
                     --export profile=FILE for the xmt.profile.v1 JSON \
                     report.")
      $ Arg.(value & opt_all export_conv [] & info [ "export" ]
               ~docv:"KIND[=PATH]"
               ~doc:"Write a JSON export (repeatable).  KIND is stats \
                     (metrics: activity counters, cache hit rates, latency \
                     histograms, host throughput), trace (Chrome \
                     trace-event spans; cycle-accurate mode only), \
                     timeseries (windowed telemetry; cycle-accurate mode \
                     only), profile (the xmt.profile.v1 CPI-stack report; \
                     cycle-accurate mode, or with --campaign the merged \
                     campaign-level stack), predict (the xmt.predict.v1 \
                     analytical prediction; --mode predict only), \
                     reuseprofile (the harvested xmt.reuseprofile.v1 \
                     profile; --mode predict only), campaign (the \
                     xmt.campaign.v1 report; with --campaign) or \
                     campaign-det (the report without \
                     host-dependent fields — byte-identical across worker \
                     counts, for determinism diffs).  PATH defaults to \
                     KIND.json; use - for stdout.")
      $ Arg.(value & opt (some file) None & info [ "campaign" ] ~docv:"FILE.json"
               ~doc:"Run an xmt.campaign.v1 campaign: independent \
                     compile+simulate jobs fanned out over --jobs worker \
                     domains with per-job fault isolation and deterministic \
                     result ordering.  Writes the campaign report (see \
                     --export campaign) and exits nonzero if any job \
                     failed.")
      $ Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
               ~doc:"Worker domains for --campaign (1 = serial; clamped to \
                     the job count; work-stealing, compiles shared across \
                     jobs with the same source and compiler options; \
                     results are byte-identical for any value).  Overrides \
                     the spec file's exec.jobs; default 1.")
      $ Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N"
               ~doc:"Per-job retry budget for --campaign.  Overrides the \
                     spec file's exec.retries; default 0.")
      $ Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"SINK"
               ~doc:"Stream live xmt.events.v1 telemetry as NDJSON to SINK \
                     (a path, - for stdout, or fd:N for an inherited file \
                     descriptor).  Single runs emit run.start, periodic \
                     sim.heartbeat records (see --heartbeat-cycles), \
                     window.close rollups and a run.done summary; \
                     --campaign streams job lifecycle and \
                     campaign.progress/ETA records instead.  The producer \
                     never blocks the simulator: on overflow records are \
                     dropped and counted (host.stream.dropped in --export \
                     stats).  Cycle-accurate mode only.")
      $ Arg.(value & opt int 10_000 & info [ "heartbeat-cycles" ] ~docv:"N"
               ~doc:"Cluster-cycle interval between sim.heartbeat records \
                     on --stream.")
      $ Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCKET"
               ~doc:"Run the campaign through an $(b,xmtserved) daemon \
                     listening on this Unix socket instead of in-process: \
                     --campaign FILE.json submits the spec and streams the \
                     live per-job results back (add --stream SINK to keep \
                     the NDJSON); --attach CID rejoins a running or \
                     completed campaign.  If the connection drops the \
                     campaign keeps running server-side and xmtsim exits 3 \
                     with the reconnect command.")
      $ Arg.(value & opt (some string) None & info [ "attach" ] ~docv:"CID"
               ~doc:"With --connect: re-subscribe to campaign CID and \
                     stream its records (the server replays anything \
                     missed).")
      $ Arg.(value & opt (some string) None & info [ "after" ] ~docv:"JOB:JSEQ"
               ~doc:"With --attach: acknowledge the last record already \
                     received; the server re-streams strictly after it."))

(* the deprecated one-flag-per-sink aliases were removed in favor of
   --export; fail fast with the replacement before cmdliner's generic
   unknown-option error *)
let removed_flags =
  [
    ("--stats-json", "stats");
    ("--trace-json", "trace");
    ("--timeseries-json", "timeseries");
  ]

let () =
  Array.iter
    (fun arg ->
      let flag =
        match String.index_opt arg '=' with
        | Some i -> String.sub arg 0 i
        | None -> arg
      in
      match List.assoc_opt flag removed_flags with
      | Some kind ->
        Printf.eprintf
          "xmtsim: unknown option %s (removed); use --export %s[=PATH]\n" flag
          kind;
        exit 124
      | None -> ())
    Sys.argv;
  exit (Cmd.eval cmd)
