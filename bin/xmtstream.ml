(** xmtstream — validate and canonicalize xmt.events.v1 NDJSON streams.

    [xmtstream check FILE...] parses every line of every file and checks
    the schema contract (a JSON object with "type", "seq" and "t");
    exits 1 on the first violation.  [xmtstream canon IN [OUT]] reduces
    a stream to its deterministic per-job core
    ({!Obs.Stream.canonicalize}) so CI can [cmp] a serial and a parallel
    campaign stream. *)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let usage () =
  prerr_endline
    "usage: xmtstream check FILE...\n\
    \       xmtstream canon IN [OUT]\n\
     check: every NDJSON line parses and carries the xmt.events.v1 keys\n\
     canon: strip host-dependent fields, keep per-job records, sort \
     deterministically";
  exit 2

let check files =
  if files = [] then usage ();
  let records = ref 0 in
  List.iter
    (fun path ->
      let lineno = ref 0 in
      String.split_on_char '\n' (read_file path)
      |> List.iter (fun line ->
             incr lineno;
             if String.trim line <> "" then
               match Obs.Stream.validate_line line with
               | Ok _ -> incr records
               | Error msg ->
                 Printf.eprintf "xmtstream: %s:%d: %s\n" path !lineno msg;
                 exit 1))
    files;
  Printf.printf "ok: %d record(s) across %d file(s)\n" !records
    (List.length files)

let canon input output =
  let text = read_file input in
  let canonical =
    try Obs.Stream.canonicalize_lines text
    with Obs.Json.Parse_error msg ->
      Printf.eprintf "xmtstream: %s: %s\n" input msg;
      exit 1
  in
  match output with
  | None -> print_string canonical
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc canonical)

let () =
  match Array.to_list Sys.argv with
  | _ :: "check" :: files -> check files
  | [ _; "canon"; input ] -> canon input None
  | [ _; "canon"; input; output ] -> canon input (Some output)
  | _ -> usage ()
