(** The XMT memory model in action (paper §IV-A, Figs. 6 and 7).

    Runs the two-thread litmus programs across a sweep of reader delays
    and interconnect arbitration seeds, and tabulates the (rx, ry)
    outcomes:

    - Fig. 6 (no ordering operations): all four outcomes are legal,
      including the counter-intuitive (0, 1) — thread B observes y=1
      before x=1 even though A wrote x first.
    - Fig. 7 (psm + the compiler's fences): (0, >=1) is excluded.
    - Fig. 7 compiled with --no-fences: the violation reappears.

    A second stage turns the race checker loose on the publication
    kernel: fenced it is dynamically race-free, unfenced the
    shadow-memory detector reports the data-word read/write pair as
    unordered at every seed.

    Run with: dune exec examples/memory_model.exe *)

let threads = 64
let hammer_iters = 400
let delays = [ 0; 80; 160; 250; 400; 900 ]
let seeds = [ 1; 2; 3; 4; 5 ]

let config seed =
  Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
    [ Printf.sprintf "seed=%d" seed; "icn_jitter=4"; "cache_ports=2" ]

let tabulate name ?options src_of =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun delay ->
      List.iter
        (fun seed ->
          let compiled = Core.Toolchain.compile ?options (src_of delay) in
          let r = Core.Toolchain.run_cycle ~config:(config seed) compiled in
          let k = r.Core.Toolchain.output in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        seeds)
    delays;
  let sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Printf.printf "%-28s" name;
  List.iter (fun (k, v) -> Printf.printf "  (%s) x%-3d" k v) sorted;
  print_newline ();
  sorted

let () =
  Printf.printf
    "litmus stage: writer on the left ICN subtree stores x then y;\n\
     reader on the right subtree reads y then x after a variable delay;\n\
     background threads pile merge contention onto x's cache module.\n\
     %d runs per row (%d delays x %d seeds); outcome = (rx ry)\n\n"
    (List.length delays * List.length seeds)
    (List.length delays) (List.length seeds);
  let fig6 =
    tabulate "Fig. 6  no synchronization"
      (fun d -> Core.Kernels.fig6_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let fig7 =
    tabulate "Fig. 7  psm + fences"
      (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  let nofence =
    tabulate "Fig. 7  fences disabled"
      ~options:
        { Compiler.Driver.default_options with Compiler.Driver.fences = false }
      (fun d -> Core.Kernels.fig7_litmus ~threads ~hammer_iters ~delay:d ())
  in
  print_newline ();
  let violated l =
    List.exists
      (fun (k, _) ->
        match String.split_on_char ' ' k with
        | [ rx; ry ] -> int_of_string ry >= 1 && int_of_string rx = 0
        | _ -> false)
      l
  in
  Printf.printf "Fig. 6 shows the relaxed (0 1) outcome:       %b\n" (violated fig6);
  Printf.printf "Fig. 7 with fences upholds 'ry>=1 -> rx=1':   %b\n"
    (not (violated fig7));
  Printf.printf "Fig. 7 without fences violates the invariant: %b\n"
    (violated nofence);
  (* ---- race-checker stage: the publication kernel under both fence
     settings.  The same program flips from provably quiet to caught
     red-handed when the compiler stops fencing the psm. *)
  print_newline ();
  Printf.printf
    "racecheck stage: publication kernel (even threads write data then\n\
     publish a flag via psm; odd threads poll the flag and read data)\n\n";
  let pub = Core.Kernels.publication ~n:128 in
  let races options seed =
    let compiled = Core.Toolchain.compile ~options pub in
    let r =
      Core.Toolchain.run_cycle ~racecheck:true ~config:(config seed) compiled
    in
    match r.Core.Toolchain.races with
    | Some (Obs.Json.Obj fields) -> (
      match List.assoc_opt "dynamic" fields with
      | Some (Obs.Json.Obj dyn) -> (
        match List.assoc_opt "races" dyn with
        | Some (Obs.Json.List l) -> List.length l
        | _ -> 0)
      | _ -> 0)
    | _ -> 0
  in
  let fenced = Compiler.Driver.default_options in
  let unfenced = { fenced with Compiler.Driver.fences = false } in
  List.iter
    (fun seed ->
      Printf.printf
        "  seed %d: fenced -> %d dynamic races, no-fences -> %d dynamic races\n"
        seed (races fenced seed) (races unfenced seed))
    seeds
