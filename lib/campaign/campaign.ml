(** Parallel simulation-campaign engine — see campaign.mli.

    Execution rides the persistent work-stealing {!Pool}: per-worker
    local deques of chunked job batches, steal-on-empty, helper domains
    created once and reused across [run] calls.  Every result lands in
    its submission slot — so ordering is deterministic whatever the
    stealing order.  Compiles are deduplicated through a shared
    {!Core.Toolchain.Artifacts} cache (a sweep compiles once and
    simulates many configs against the same read-only program), and the
    progress lock is off the hot path: without telemetry consumers the
    workers only touch per-worker counters, and with a stream attached
    the [campaign.progress] rollup can be throttled to heartbeat
    boundaries ([progress_interval]) while per-job records keep the
    canonical (job, jseq) order. *)

module Pool = Pool

type failure = { f_exn : string; f_backtrace : string }

type job_result = {
  r_index : int;
  r_name : string;
  r_job : Core.Toolchain.job;
  r_attempts : int;
  r_wall_seconds : float;
  r_outcome : (Core.Toolchain.run, failure) result;
}

type event =
  | Job_started of { index : int; name : string }
  | Job_finished of { index : int; name : string; wall_seconds : float }
  | Job_failed of {
      index : int;
      name : string;
      attempts : int;
      error : string;
    }

exception Spec_error of string

(* The first-class campaign request (see mli): what to run, as data.
   [run_request] consumes it; [Request] (below, after the JSON parser it
   reuses) carries the builders and the wire/file parser. *)
type request = {
  specs : (string * Core.Toolchain.job) list;
  jobs : int option;
  retries : int;
  progress_interval : float;
}

module J = Obs.Json

let stats_json (s : Xmtsim.Stats.t) =
  J.Obj
    [
      ("tcu_busy_cycles", J.Int s.Xmtsim.Stats.tcu_busy_cycles);
      ("tcu_memwait_cycles", J.Int s.Xmtsim.Stats.tcu_memwait_cycles);
      ("icn_packets", J.Int s.Xmtsim.Stats.icn_packets);
      ("cache_hits", J.Int s.Xmtsim.Stats.cache_hits);
      ("cache_misses", J.Int s.Xmtsim.Stats.cache_misses);
      ("rocache_hits", J.Int s.Xmtsim.Stats.rocache_hits);
      ("rocache_misses", J.Int s.Xmtsim.Stats.rocache_misses);
      ("dram_reads", J.Int s.Xmtsim.Stats.dram_reads);
      ("ps_ops", J.Int s.Xmtsim.Stats.ps_ops);
      ("spawns", J.Int s.Xmtsim.Stats.spawns);
      ("virtual_threads", J.Int s.Xmtsim.Stats.virtual_threads);
    ]

(* The stream-facing per-job records.  Every one carries the job's
   submission index and a per-job monotonic sequence number [jseq]
   (0 = start, 1 = done), so a parallel run's interleaved stream sorts
   into the same canonical order as a serial run's
   ({!Obs.Stream.canonicalize}).  Host-dependent fields (wall-clock) are
   the ones canonicalization strips. *)
let job_start_fields ~index ~name =
  [ ("job", J.Int index); ("jseq", J.Int 0); ("name", J.Str name) ]

let job_done_fields ~index ~name ~(job : Core.Toolchain.job) ~attempts
    ~wall_seconds outcome =
  [
    ("job", J.Int index);
    ("jseq", J.Int 1);
    ("name", J.Str name);
    ("config", J.Str job.Core.Toolchain.config.Xmtsim.Config.name);
    ("mode", J.Str (Core.Toolchain.mode_name job.Core.Toolchain.mode));
    ("attempts", J.Int attempts);
  ]
  @ (match outcome with
    | Ok run ->
      [
        ("status", J.Str "ok");
        ("cycles", J.Int run.Core.Toolchain.cycles);
        ("instructions", J.Int run.Core.Toolchain.instructions);
        ("events", J.Int run.Core.Toolchain.events);
        ("output", J.Str run.Core.Toolchain.output);
        ("stats", stats_json run.Core.Toolchain.stats);
      ]
    | Error f -> [ ("status", J.Str "failed"); ("error", J.Str f.f_exn) ])
  @ [ ("wall_seconds", J.Float wall_seconds) ]

(* per-worker progress counters: each worker mutates only its own
   record, so the no-telemetry hot path takes no lock at all — the
   counters are summed under the lock at progress boundaries and once
   at the end *)
type wstats = {
  mutable w_started : int;
  mutable w_ok : int;
  mutable w_failed : int;
}

(* Bounded retry: keep the last failure if every attempt raises.  The
   raw backtrace is captured first — formatting the exception (which may
   run arbitrary printers) can itself raise or record a new backtrace
   and clobber the one we want.  Top-level because the server executes
   socket-served jobs through exactly this step. *)
let attempt_job ?artifacts ~retries job =
  let rec go k =
    match Core.Toolchain.run_job ?artifacts job with
    | r -> (k, Ok r)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let f =
        {
          f_exn = Printexc.to_string e;
          f_backtrace = Printexc.raw_backtrace_to_string bt;
        }
      in
      if k <= retries then go (k + 1) else (k, Error f)
  in
  go 1

let run_request ?pool ?artifacts ?on_event ?metrics ?stream (req : request) =
  let { specs; jobs; retries; progress_interval } = req in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let results = Array.make n None in
  let lock = Mutex.create () in
  (* clamp the executor count to the remaining jobs: ~jobs:8 with 2
     jobs must not pay for 7 idle domains *)
  let workers =
    let requested =
      match (jobs, pool) with
      | Some j, _ -> j
      | None, Some p -> Pool.width p
      | None, None -> 1
    in
    let cap = match pool with Some p -> Pool.width p | None -> max_int in
    max 1 (min requested (min cap (max 1 n)))
  in
  let artifacts =
    (* dedup compiles within the campaign even when the caller keeps no
       persistent cache *)
    match artifacts with
    | Some a -> a
    | None -> Core.Toolchain.Artifacts.create ()
  in
  let t0 = Obs.Clock.now () in
  (* progress totals — mutated under [lock] only, and only when a
     telemetry consumer is attached *)
  let started = ref 0 and completed = ref 0 in
  let ok = ref 0 and failed = ref 0 in
  let ws = Array.init workers (fun _ -> { w_started = 0; w_ok = 0; w_failed = 0 }) in
  let semit typ fields =
    match stream with
    | Some s -> Obs.Stream.emit s ~typ fields
    | None -> ()
  in
  (* completed/total, worker occupancy, and an ETA from the running
     throughput estimate — emitted at completion boundaries, throttled
     to [progress_interval] seconds *)
  let last_progress = ref neg_infinity in
  let stream_progress () =
    let elapsed = Obs.Clock.elapsed_since t0 in
    let rate =
      if elapsed > 0.0 then float_of_int !completed /. elapsed else 0.0
    in
    let eta =
      if rate > 0.0 then float_of_int (n - !completed) /. rate else 0.0
    in
    semit "campaign.progress"
      [
        ("completed", J.Int !completed);
        ("total", J.Int n);
        ("ok", J.Int !ok);
        ("failed", J.Int !failed);
        ("running", J.Int (!started - !completed));
        ("workers", J.Int workers);
        ("elapsed_seconds", J.Float elapsed);
        ("jobs_per_sec", J.Float rate);
        ("eta_seconds", J.Float eta);
      ]
  in
  let maybe_stream_progress () =
    (* the final completion always reports, so a follower sees
       completed = total whatever the throttle *)
    let now = Obs.Clock.now () in
    if
      !completed = n
      || progress_interval <= 0.0
      || now -. !last_progress >= progress_interval
    then begin
      last_progress := now;
      stream_progress ()
    end
  in
  (* metric handles are created up front in the calling domain — the
     registry hashtable is not safe to grow concurrently *)
  let m_started, m_finished, m_failed, m_wall =
    match metrics with
    | None -> (None, None, None, None)
    | Some reg ->
      ( Some
          (Obs.Metrics.counter reg ~help:"campaign jobs started"
             "campaign.jobs.started"),
        Some
          (Obs.Metrics.counter reg ~help:"campaign jobs finished ok"
             "campaign.jobs.finished"),
        Some
          (Obs.Metrics.counter reg ~help:"campaign jobs failed"
             "campaign.jobs.failed"),
        Some
          (Obs.Metrics.gauge reg ~help:"campaign wall-clock seconds"
             "campaign.wall_seconds") )
  in
  let bump c = Option.iter (fun c -> Obs.Metrics.inc c) c in
  (* whether any per-job consumer needs the serializing lock; without
     one the workers never touch shared mutable state per job *)
  let serialized = on_event <> None || metrics <> None || stream <> None in
  (* [also] runs under the same lock as the metric bump and the user
     callback: the lock is the stream's single consumer, serializing
     every worker domain's emissions *)
  let notify ?(also = fun () -> ()) counter ev =
    Mutex.protect lock (fun () ->
        bump counter;
        also ();
        Option.iter (fun f -> f ev) on_event)
  in
  let execute ~worker i =
    let name, job = specs.(i) in
    ws.(worker).w_started <- ws.(worker).w_started + 1;
    if serialized then
      notify m_started
        (Job_started { index = i; name })
        ~also:(fun () ->
          incr started;
          semit "job.start" (job_start_fields ~index:i ~name));
    let tj = Obs.Clock.now () in
    let attempts, outcome = attempt_job ~artifacts ~retries job in
    let wall_seconds = Obs.Clock.elapsed_since tj in
    results.(i) <-
      Some
        {
          r_index = i;
          r_name = name;
          r_job = job;
          r_attempts = attempts;
          r_wall_seconds = wall_seconds;
          r_outcome = outcome;
        };
    (match outcome with
    | Ok _ -> ws.(worker).w_ok <- ws.(worker).w_ok + 1
    | Error _ -> ws.(worker).w_failed <- ws.(worker).w_failed + 1);
    if serialized then begin
      let stream_done result_kind =
        incr completed;
        (match result_kind with `Ok -> incr ok | `Failed -> incr failed);
        semit "job.done"
          (job_done_fields ~index:i ~name ~job ~attempts ~wall_seconds outcome);
        maybe_stream_progress ()
      in
      match outcome with
      | Ok _ ->
        notify m_finished
          (Job_finished { index = i; name; wall_seconds })
          ~also:(fun () -> stream_done `Ok)
      | Error f ->
        notify m_failed
          (Job_failed { index = i; name; attempts; error = f.f_exn })
          ~also:(fun () -> stream_done `Failed)
    end
  in
  semit "campaign.start" [ ("jobs", J.Int n); ("workers", J.Int workers) ];
  Printexc.record_backtrace true;
  (match pool with
  | Some p -> Pool.run p ~participants:workers ~jobs:n execute
  | None when workers = 1 ->
    for i = 0 to n - 1 do
      execute ~worker:0 i
    done
  | None -> Pool.with_pool ~workers (fun p -> Pool.run p ~jobs:n execute));
  let wall = Obs.Clock.elapsed_since t0 in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 ws in
  let n_ok = sum (fun w -> w.w_ok) and n_failed = sum (fun w -> w.w_failed) in
  Option.iter (fun g -> Obs.Metrics.set g wall) m_wall;
  semit "campaign.done"
    [
      ("jobs", J.Int n);
      ("ok", J.Int n_ok);
      ("failed", J.Int n_failed);
      ("workers", J.Int workers);
      ("wall_seconds", J.Float wall);
    ];
  Array.map
    (function Some r -> r | None -> assert false (* every slot was filled *))
    results

let ok_count rs =
  Array.fold_left
    (fun acc r -> if Result.is_ok r.r_outcome then acc + 1 else acc)
    0 rs

let failed_count rs = Array.length rs - ok_count rs

(* ------------------------------------------------------------------ *)
(* The xmt.campaign.v1 report *)

let result_json ~host r =
  let base =
    [
      ("index", J.Int r.r_index);
      ("name", J.Str r.r_name);
      ("config", J.Str r.r_job.Core.Toolchain.config.Xmtsim.Config.name);
      ( "mode",
        J.Str (Core.Toolchain.mode_name r.r_job.Core.Toolchain.mode) );
      ( "seed",
        match r.r_job.Core.Toolchain.seed with
        | Some s -> J.Int s
        | None -> J.Int r.r_job.Core.Toolchain.config.Xmtsim.Config.seed );
      ("attempts", J.Int r.r_attempts);
    ]
  in
  let outcome =
    match r.r_outcome with
    | Ok run ->
      [
        ("status", J.Str "ok");
        ("cycles", J.Int run.Core.Toolchain.cycles);
        ("instructions", J.Int run.Core.Toolchain.instructions);
        ("events", J.Int run.Core.Toolchain.events);
        ("output", J.Str run.Core.Toolchain.output);
        ("stats", stats_json run.Core.Toolchain.stats);
      ]
      @ (match run.Core.Toolchain.races with
        | Some j -> [ ("races", j) ]
        | None -> [])
      @ (match run.Core.Toolchain.profile with
        | Some j -> [ ("profile", j) ]
        | None -> [])
      @ (match run.Core.Toolchain.predict with
        | Some j -> [ ("predict", j) ]
        | None -> [])
    | Error f ->
      ("status", J.Str "failed")
      :: ("error", J.Str f.f_exn)
      ::
      (if host then [ ("backtrace", J.Str f.f_backtrace) ] else [])
  in
  let host_fields =
    if host then [ ("wall_seconds", J.Float r.r_wall_seconds) ] else []
  in
  J.Obj (base @ outcome @ host_fields)

(* Merge the per-job xmt.profile.v1 reports into one campaign-level CPI
   stack: bucket cycles of the aggregate rows summed across jobs, plus a
   merged per-function attribution.  Works on the JSON (the run records
   cross domains as plain data), so a job whose profile is missing or
   malformed simply contributes nothing. *)
let merged_profile_json rs =
  let profiles =
    Array.to_list rs
    |> List.filter_map (fun r ->
           match r.r_outcome with
           | Ok run -> run.Core.Toolchain.profile
           | Error _ -> None)
  in
  match profiles with
  | [] -> None
  | _ ->
    let buckets = Hashtbl.create 8 in
    let funcs = Hashtbl.create 16 in
    let total = ref 0 in
    let add tbl k n =
      Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    List.iter
      (fun p ->
        (match J.member "total_ticks" p with
        | Some v -> total := !total + Option.value ~default:0 (J.to_int v)
        | None -> ());
        (match J.member "aggregate" p with
        | Some (J.Obj fields) ->
          List.iter
            (fun (name, v) ->
              match J.to_int v with
              | Some n -> add buckets name n
              | None -> ())
            fields
        | _ -> ());
        match J.member "attribution" p with
        | Some attr -> (
          match J.member "by_func" attr with
          | Some (J.List fns) ->
            List.iter
              (fun fj ->
                match (J.member "func" fj, J.member "cycles" fj) with
                | Some (J.Str fn), Some c ->
                  add funcs fn (Option.value ~default:0 (J.to_int c))
                | _ -> ())
              fns
          | _ -> ())
        | None -> ())
      profiles;
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (ka, va) (kb, vb) -> compare (vb, ka) (va, kb))
    in
    Some
      (J.Obj
         [
           ("schema", J.Str "xmt.profile.v1");
           ("merged_jobs", J.Int (List.length profiles));
           ("total_ticks", J.Int !total);
           ( "aggregate",
             J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (sorted buckets)) );
           ( "by_func",
             J.List
               (List.map
                  (fun (fn, c) ->
                    J.Obj [ ("func", J.Str fn); ("cycles", J.Int c) ])
                  (sorted funcs)) );
         ])

let report_to_json ?(host = true) ?workers rs =
  let sum f =
    Array.fold_left
      (fun acc r ->
        match r.r_outcome with Ok run -> acc + f run | Error _ -> acc)
      0 rs
  in
  let wall = Array.fold_left (fun acc r -> acc +. r.r_wall_seconds) 0.0 rs in
  let aggregate =
    [
      ("ok", J.Int (ok_count rs));
      ("failed", J.Int (failed_count rs));
      ("total_cycles", J.Int (sum (fun r -> r.Core.Toolchain.cycles)));
      ( "total_instructions",
        J.Int (sum (fun r -> r.Core.Toolchain.instructions)) );
      ("total_events", J.Int (sum (fun r -> r.Core.Toolchain.events)));
    ]
    @
    if host then
      [
        ("job_wall_seconds", J.Float wall);
        ( "jobs_per_sec",
          J.Float
            (if wall > 0.0 then float_of_int (Array.length rs) /. wall
             else 0.0) );
      ]
    else []
  in
  J.Obj
    ([ ("schema", J.Str "xmt.campaign.v1"); ("jobs", J.Int (Array.length rs)) ]
    @ (match workers with
      | Some w when host -> [ ("workers", J.Int w) ]
      | _ -> [])
    @ [
        ( "results",
          J.List (Array.to_list (Array.map (result_json ~host) rs)) );
        ("aggregate", J.Obj aggregate);
      ]
    @
    match merged_profile_json rs with
    | Some p -> [ ("profile", p) ]
    | None -> [])

let progress_printer ~total =
  let done_ = ref 0 in
  fun ev ->
    match ev with
    | Job_started _ -> ()
    | Job_finished { name; wall_seconds; _ } ->
      incr done_;
      Printf.eprintf "[%d/%d] %s ok (%.2fs)\n%!" !done_ total name wall_seconds
    | Job_failed { name; attempts; error; _ } ->
      incr done_;
      Printf.eprintf "[%d/%d] %s FAILED after %d attempt%s: %s\n%!" !done_
        total name attempts
        (if attempts = 1 then "" else "s")
        error

(* ------------------------------------------------------------------ *)
(* Campaign files (xmt.campaign.v1 input) *)

let fail fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

let opt_str name j =
  match J.member name j with
  | Some (J.Str s) -> Some s
  | Some J.Null | None -> None
  | Some _ -> fail "%S must be a string" name

let opt_int name j =
  match J.member name j with
  | Some v -> (
    match J.to_int v with
    | Some i -> Some i
    | None -> fail "%S must be an integer" name)
  | None -> None

let opt_bool name j =
  match J.member name j with
  | Some (J.Bool b) -> Some b
  | Some _ -> fail "%S must be a boolean" name
  | None -> None

let str_list name j =
  match J.member name j with
  | Some (J.List xs) ->
    List.map
      (function J.Str s -> s | _ -> fail "%S must be a list of strings" name)
      xs
  | Some _ -> fail "%S must be a list of strings" name
  | None -> []

let read_file path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  | exception Sys_error msg -> fail "cannot read %s: %s" path msg

(* job-level value with a campaign-level fallback *)
let inherited get job defaults =
  match get job with Some _ as v -> v | None -> get defaults

let options_of_json defaults j =
  let merged name =
    match (J.member name j, defaults) with
    | (Some _ as v), _ -> v
    | None, Some d -> J.member name d
    | None, None -> None
  in
  let o = J.Obj (List.filter_map (fun n -> Option.map (fun v -> (n, v)) (merged n))
                   [ "opt_level"; "cluster"; "prefetch"; "prefetch_max_per_block";
                     "nbstore"; "fences"; "layout_opt"; "postpass_fix"; "outline" ])
  in
  let d = Compiler.Driver.default_options in
  let iv name default = Option.value ~default (opt_int name o) in
  let bv name default = Option.value ~default (opt_bool name o) in
  {
    Compiler.Driver.opt_level = iv "opt_level" d.Compiler.Driver.opt_level;
    prefetch = bv "prefetch" d.Compiler.Driver.prefetch;
    prefetch_max_per_block =
      iv "prefetch_max_per_block" d.Compiler.Driver.prefetch_max_per_block;
    nbstore = bv "nbstore" d.Compiler.Driver.nbstore;
    fences = bv "fences" d.Compiler.Driver.fences;
    cluster = iv "cluster" d.Compiler.Driver.cluster;
    layout_opt = bv "layout_opt" d.Compiler.Driver.layout_opt;
    postpass_fix = bv "postpass_fix" d.Compiler.Driver.postpass_fix;
    outline = bv "outline" d.Compiler.Driver.outline;
  }

let job_of_json ?(dir = Filename.current_dir_name) ~defaults ~index j =
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  let name =
    match opt_str "name" j with
    | Some n -> n
    | None -> Printf.sprintf "job%d" index
  in
  let source =
    match (opt_str "inline" j, inherited (opt_str "source") j defaults) with
    | Some text, _ -> text
    | None, Some path -> read_file (resolve path)
    | None, None -> fail "job %S: needs \"source\" (path) or \"inline\" (text)" name
  in
  let preset =
    match inherited (opt_str "preset") j defaults with
    | Some p -> p
    | None -> "fpga64"
  in
  let config =
    match List.assoc_opt preset Xmtsim.Config.presets with
    | Some c -> c
    | None ->
      fail "job %S: unknown preset %S (have: %s)" name preset
        (String.concat ", " (List.map fst Xmtsim.Config.presets))
  in
  (* campaign-level overrides apply first, then the job's own *)
  let config =
    Xmtsim.Config.with_overrides config (str_list "set" defaults @ str_list "set" j)
  in
  let mode =
    match inherited (opt_str "mode") j defaults with
    | Some "cycle" | None -> Core.Toolchain.Cycle
    | Some "functional" -> Core.Toolchain.Functional
    | Some "predict" -> Core.Toolchain.Predict
    | Some other ->
      fail "job %S: mode must be cycle|functional|predict, got %S" name other
  in
  let memmap =
    match inherited (opt_str "memmap") j defaults with
    | Some p -> Isa.Memmap.parse_file (resolve p)
    | None -> []
  in
  let options =
    options_of_json (J.member "options" defaults) (Option.value ~default:(J.Obj []) (J.member "options" j))
  in
  let job =
    Core.Toolchain.job ~name ~options ~memmap ~config ~mode
      ?seed:(inherited (opt_int "seed") j defaults)
      ?max_cycles:(inherited (opt_int "max_cycles") j defaults)
      ?max_instructions:(inherited (opt_int "max_instructions") j defaults)
      ?racecheck:(inherited (opt_bool "racecheck") j defaults)
      ?profile:(inherited (opt_bool "profile") j defaults)
      ?calibration:
        (Option.map resolve (inherited (opt_str "calibration") j defaults))
      source
  in
  (* validate the sweep point now, not mid-campaign *)
  (match mode with
  | Core.Toolchain.Cycle | Core.Toolchain.Predict ->
    ignore (Core.Toolchain.job_config job)
  | Core.Toolchain.Functional -> ());
  (name, job)

let jobs_of_json ?dir j =
  (match J.member "schema" j with
  | Some (J.Str "xmt.campaign.v1") | None -> ()
  | Some (J.Str other) -> fail "unsupported campaign schema %S" other
  | Some _ -> fail "\"schema\" must be a string");
  let defaults = Option.value ~default:(J.Obj []) (J.member "defaults" j) in
  match J.member "jobs" j with
  | Some (J.List (_ :: _ as jobs)) ->
    List.mapi (fun index jj -> job_of_json ?dir ~defaults ~index jj) jobs
  | Some (J.List []) -> fail "campaign has no jobs"
  | _ -> fail "missing \"jobs\" list"

let load_file path =
  let text = read_file path in
  match Obs.Json.of_string text with
  | j -> jobs_of_json ~dir:(Filename.dirname path) j
  | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg

(* ------------------------------------------------------------------ *)
(* Requests *)

module Request = struct
  type t = request = {
    specs : (string * Core.Toolchain.job) list;
    jobs : int option;
    retries : int;
    progress_interval : float;
  }

  let validate t =
    match t.jobs with
    | Some j when j < 1 -> Error (Printf.sprintf "jobs must be >= 1, got %d" j)
    | _ ->
      if t.retries < 0 then
        Error (Printf.sprintf "retries must be >= 0, got %d" t.retries)
      else if not (Float.is_finite t.progress_interval)
              || t.progress_interval < 0.0 then
        Error
          (Printf.sprintf "progress_interval must be finite and >= 0, got %g"
             t.progress_interval)
      else Ok t

  let checked t =
    match validate t with Ok t -> t | Error msg -> raise (Spec_error msg)

  let make ?jobs ?(retries = 0) ?(progress_interval = 0.0) specs =
    checked { specs; jobs; retries; progress_interval }

  let with_specs t specs = checked { t with specs }
  let with_jobs t jobs = checked { t with jobs }
  let with_retries t retries = checked { t with retries }

  let with_progress_interval t progress_interval =
    checked { t with progress_interval }

  let of_json ?dir j =
    let specs = jobs_of_json ?dir j in
    match J.member "exec" j with
    | None -> make specs
    | Some (J.Obj _ as e) ->
      let progress_interval =
        match J.member "progress_interval" e with
        | None -> None
        | Some v -> (
          match J.to_float v with
          | Some f -> Some f
          | None -> fail "\"exec\".\"progress_interval\" must be a number")
      in
      make specs ?jobs:(opt_int "jobs" e) ?retries:(opt_int "retries" e)
        ?progress_interval
    | Some _ -> fail "\"exec\" must be an object"

  let load_file path =
    let text = read_file path in
    match Obs.Json.of_string text with
    | j -> of_json ~dir:(Filename.dirname path) j
    | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg
end

let run ?pool ?jobs ?retries ?artifacts ?progress_interval ?on_event ?metrics
    ?stream specs =
  run_request ?pool ?artifacts ?on_event ?metrics ?stream
    (Request.make ?jobs ?retries ?progress_interval specs)

module Wire = struct
  let job_start_fields = job_start_fields
  let job_done_fields = job_done_fields
end
