(** Parallel simulation-campaign engine.

    The paper's evaluation (§V) is a campaign: dozens of independent
    compile+simulate runs sweeping configurations, benchmarks and
    compiler options.  Each {!Core.Toolchain.job} is self-contained, so
    the outer loop is embarrassingly parallel; this engine fans jobs out
    across a persistent work-stealing pool of OCaml domains ({!Pool}) —
    workers created once and reused across [run] calls, per-worker
    local deques of chunked job batches, steal-on-empty — while keeping
    every simulated result bit-identical to a serial run:

    - {b determinism}: results come back in submission order whatever
      the completion order, and each job's RNG seed is part of the job,
      so [run ~jobs:8] and [run ~jobs:1] agree byte-for-byte on every
      simulated statistic;
    - {b fault isolation}: a job that raises (compile error, inconsistent
      config, simulator error) is captured — exception text, backtrace,
      attempt count — in its result slot and retried up to [retries]
      times; the other jobs are unaffected;
    - {b observability}: progress counters land in an {!Obs.Metrics}
      registry and an optional [on_event] callback (serialized, so it
      may print) sees every start/finish/failure with per-job wall-clock.

    Compiles are deduplicated: jobs sharing a (source, compiler-options,
    memmap) key compile once through a {!Core.Toolchain.Artifacts}
    cache and simulate against the same read-only program — pass your
    own cache to [run] to keep artifacts warm across campaigns. *)

(** The persistent worker pool; create one and pass it to {!run} to
    amortize domain spawning across campaigns (benches, sweep drivers,
    repeated CLI invocations in one process). *)
module Pool = Pool

type failure = {
  f_exn : string;  (** [Printexc.to_string] of the final exception *)
  f_backtrace : string;  (** backtrace of the final attempt (host-specific) *)
}

type job_result = {
  r_index : int;  (** position in the submitted list *)
  r_name : string;
  r_job : Core.Toolchain.job;
  r_attempts : int;  (** 1 + retries actually used *)
  r_wall_seconds : float;  (** host wall-clock of the final attempt *)
  r_outcome : (Core.Toolchain.run, failure) result;
}

type event =
  | Job_started of { index : int; name : string }
  | Job_finished of { index : int; name : string; wall_seconds : float }
  | Job_failed of {
      index : int;
      name : string;
      attempts : int;
      error : string;
    }

(** [run ~jobs specs] executes every [(name, job)] pair and returns the
    results in submission order.

    [pool] is the persistent executor to run on; without one a
    transient pool of [jobs] workers is created for this call and shut
    down after.  [jobs] is the executor width (default: the pool's
    width, or 1 without a pool); it is always clamped to the number of
    jobs, so [~jobs:8] with 2 jobs uses 2 workers — never 6 idle
    domains.  [retries] is the per-job retry budget on failure
    (default 0).  [artifacts] is a shared compile cache
    ({!Core.Toolchain.Artifacts}); without one a fresh cache still
    deduplicates compiles within this campaign.  [on_event] is called
    for every lifecycle event under the progress lock, so callbacks may
    print or mutate shared state without further synchronization.
    [metrics] receives [campaign.jobs.started] / [.finished] /
    [.failed] counters and the [campaign.wall_seconds] gauge.  Without
    any of [on_event]/[metrics]/[stream], workers touch only per-worker
    counters — the hot path takes no lock at all.

    [stream] multiplexes the campaign onto a live [xmt.events.v1]
    telemetry stream ({!Obs.Stream}): a [campaign.start] record, one
    [job.start] and one [job.done] (status, attempts, cycles,
    instructions and simulated stats, or the failure text) per job,
    [campaign.progress] records at completion boundaries
    (completed/total, ok/failed, running worker occupancy, jobs/sec
    throughput and the ETA it implies) and a final [campaign.done]
    summary.  [progress_interval] throttles the progress rollups to at
    most one per that many seconds (default [0.0] = one per
    completion); the last completion always reports, and job records
    are never throttled.  All emissions happen under the progress lock
    — the stream has exactly one consumer however many domains run
    jobs — and each job's records carry [("job", index)] plus a
    per-job sequence number [jseq], so {!Obs.Stream.canonicalize}
    renders serial and parallel streams of the same campaign
    byte-identical (the determinism contract CI diffs). *)
val run :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?retries:int ->
  ?artifacts:Core.Toolchain.Artifacts.t ->
  ?progress_interval:float ->
  ?on_event:(event -> unit) ->
  ?metrics:Obs.Metrics.t ->
  ?stream:Obs.Stream.t ->
  (string * Core.Toolchain.job) list ->
  job_result array

val ok_count : job_result array -> int
val failed_count : job_result array -> int

(** The [xmt.campaign.v1] report: per-job stats plus an aggregate.
    [host] (default true) includes host-dependent fields — per-job and
    total wall-clock, throughput, worker count, backtraces.  With
    [~host:false] the report depends only on simulated results, so a
    parallel and a serial run of the same campaign render byte-identical
    JSON — the determinism contract CI diffs. *)
val report_to_json :
  ?host:bool -> ?workers:int -> job_result array -> Obs.Json.t

(** Merge the per-job [xmt.profile.v1] reports of the profiled jobs into
    one campaign-level CPI stack (aggregate bucket cycles and per-function
    attribution summed across jobs).  [None] when no job was profiled.
    Also embedded in {!report_to_json} under ["profile"]. *)
val merged_profile_json : job_result array -> Obs.Json.t option

(** One-line progress printer for [on_event] (writes to [stderr]). *)
val progress_printer : total:int -> event -> unit

(** {1 Campaign files}

    [xmt.campaign.v1] input: [{"schema": "xmt.campaign.v1", "jobs":
    [{...}]}] where each job object takes ["name"], ["source"] (path) or
    ["inline"] (XMTC text), ["preset"], ["set"] (override strings),
    ["mode"] ("cycle"/"functional"), ["memmap"] (path), ["seed"],
    ["max_cycles"], ["max_instructions"], ["racecheck"] (bool: attach
    the race checker; the job's result gains a ["races"] member with the
    [xmt.races.v1] report) and ["options"] (object with [opt_level],
    [cluster], [prefetch], [nbstore], [fences], [outline] booleans/ints).
    A top-level ["defaults"] object provides fallbacks for every job
    field. *)

exception Spec_error of string

(** Parse a campaign spec; source paths resolve relative to [dir]
    (default the process working directory).  Raises {!Spec_error} on
    malformed input and {!Xmtsim.Config.Bad_config} on an invalid
    configuration. *)
val jobs_of_json : ?dir:string -> Obs.Json.t -> (string * Core.Toolchain.job) list

(** Load a campaign file; source paths resolve relative to the file. *)
val load_file : string -> (string * Core.Toolchain.job) list
