(** Parallel simulation-campaign engine.

    The paper's evaluation (§V) is a campaign: dozens of independent
    compile+simulate runs sweeping configurations, benchmarks and
    compiler options.  Each {!Core.Toolchain.job} is self-contained, so
    the outer loop is embarrassingly parallel; this engine fans jobs out
    across a persistent work-stealing pool of OCaml domains ({!Pool}) —
    workers created once and reused across [run] calls, per-worker
    local deques of chunked job batches, steal-on-empty — while keeping
    every simulated result bit-identical to a serial run:

    - {b determinism}: results come back in submission order whatever
      the completion order, and each job's RNG seed is part of the job,
      so [run ~jobs:8] and [run ~jobs:1] agree byte-for-byte on every
      simulated statistic;
    - {b fault isolation}: a job that raises (compile error, inconsistent
      config, simulator error) is captured — exception text, backtrace,
      attempt count — in its result slot and retried up to [retries]
      times; the other jobs are unaffected;
    - {b observability}: progress counters land in an {!Obs.Metrics}
      registry and an optional [on_event] callback (serialized, so it
      may print) sees every start/finish/failure with per-job wall-clock.

    Compiles are deduplicated: jobs sharing a (source, compiler-options,
    memmap) key compile once through a {!Core.Toolchain.Artifacts}
    cache and simulate against the same read-only program — pass your
    own cache to [run] to keep artifacts warm across campaigns. *)

(** The persistent worker pool; create one and pass it to {!run} to
    amortize domain spawning across campaigns (benches, sweep drivers,
    repeated CLI invocations in one process). *)
module Pool = Pool

type failure = {
  f_exn : string;  (** [Printexc.to_string] of the final exception *)
  f_backtrace : string;  (** backtrace of the final attempt (host-specific) *)
}

type job_result = {
  r_index : int;  (** position in the submitted list *)
  r_name : string;
  r_job : Core.Toolchain.job;
  r_attempts : int;  (** 1 + retries actually used *)
  r_wall_seconds : float;  (** host wall-clock of the final attempt *)
  r_outcome : (Core.Toolchain.run, failure) result;
}

type event =
  | Job_started of { index : int; name : string }
  | Job_finished of { index : int; name : string; wall_seconds : float }
  | Job_failed of {
      index : int;
      name : string;
      attempts : int;
      error : string;
    }

(** {1 Requests}

    A campaign request reifies {e what to run} as one first-class value:
    the [(name, job)] specs plus the execution knobs that travel with
    them (worker width, retry budget, progress throttle).  Every
    front-end — the JSON campaign-spec parser, [xmtsim_cli], the bench
    harness and the [xmtserved] wire protocol — constructs the same
    record and hands it to {!run_request}, so a campaign means exactly
    the same thing whether it arrives from a file, a flag or a socket.

    Environment attachments (the pool to run on, the shared artifact
    cache, telemetry consumers) are deliberately {e not} part of the
    request: they describe where and how the host executes it, not what
    is being asked for, and stay optional arguments of {!run_request}. *)

module Request : sig
  type t = private {
    specs : (string * Core.Toolchain.job) list;
    jobs : int option;
        (** executor width; [None] = the pool's width (or 1 without a
            pool) *)
    retries : int;  (** per-job retry budget on failure *)
    progress_interval : float;
        (** min seconds between [campaign.progress] stream records;
            [0.0] = one per completion *)
  }

  (** Validating constructor (mirroring {!Xmtsim.Config.checked}):
      raises {!Spec_error} when [jobs < 1], [retries < 0] or
      [progress_interval] is negative or not finite.  Defaults: pool
      width, no retries, progress on every completion. *)
  val make :
    ?jobs:int ->
    ?retries:int ->
    ?progress_interval:float ->
    (string * Core.Toolchain.job) list ->
    t

  val with_specs : t -> (string * Core.Toolchain.job) list -> t
  val with_jobs : t -> int option -> t
  val with_retries : t -> int -> t
  val with_progress_interval : t -> float -> t

  (** Check an arbitrary record; [Error] names the violated constraint. *)
  val validate : t -> (t, string) result

  (** [validate], raising {!Spec_error}. *)
  val checked : t -> t

  (** Parse a full [xmt.campaign.v1] document: the ["jobs"] list (and
      ["defaults"]) via {!jobs_of_json} plus an optional top-level
      ["exec"] object [{"jobs": N, "retries": N, "progress_interval":
      S}] carrying the execution knobs — the one spelling shared by
      campaign files and the [xmtserved] wire protocol.  Source paths
      resolve relative to [dir].  Raises {!Spec_error} /
      {!Xmtsim.Config.Bad_config} like {!jobs_of_json}. *)
  val of_json : ?dir:string -> Obs.Json.t -> t

  (** Load a campaign file; source paths resolve relative to the file. *)
  val load_file : string -> t
end

(** Execute a {!Request.t} — the engine proper; {!run} is a thin
    wrapper.  Optional arguments are the execution environment: [pool],
    [artifacts], and the [on_event]/[metrics]/[stream] telemetry
    consumers, with exactly the semantics documented on {!run}. *)
val run_request :
  ?pool:Pool.t ->
  ?artifacts:Core.Toolchain.Artifacts.t ->
  ?on_event:(event -> unit) ->
  ?metrics:Obs.Metrics.t ->
  ?stream:Obs.Stream.t ->
  Request.t ->
  job_result array

(** [run ~jobs specs] executes every [(name, job)] pair and returns the
    results in submission order ([Request.make] + {!run_request}).

    [pool] is the persistent executor to run on; without one a
    transient pool of [jobs] workers is created for this call and shut
    down after.  [jobs] is the executor width (default: the pool's
    width, or 1 without a pool); it is always clamped to the number of
    jobs, so [~jobs:8] with 2 jobs uses 2 workers — never 6 idle
    domains.  [retries] is the per-job retry budget on failure
    (default 0).  [artifacts] is a shared compile cache
    ({!Core.Toolchain.Artifacts}); without one a fresh cache still
    deduplicates compiles within this campaign.  [on_event] is called
    for every lifecycle event under the progress lock, so callbacks may
    print or mutate shared state without further synchronization.
    [metrics] receives [campaign.jobs.started] / [.finished] /
    [.failed] counters and the [campaign.wall_seconds] gauge.  Without
    any of [on_event]/[metrics]/[stream], workers touch only per-worker
    counters — the hot path takes no lock at all.

    [stream] multiplexes the campaign onto a live [xmt.events.v1]
    telemetry stream ({!Obs.Stream}): a [campaign.start] record, one
    [job.start] and one [job.done] (status, attempts, cycles,
    instructions and simulated stats, or the failure text) per job,
    [campaign.progress] records at completion boundaries
    (completed/total, ok/failed, running worker occupancy, jobs/sec
    throughput and the ETA it implies) and a final [campaign.done]
    summary.  [progress_interval] throttles the progress rollups to at
    most one per that many seconds (default [0.0] = one per
    completion); the last completion always reports, and job records
    are never throttled.  All emissions happen under the progress lock
    — the stream has exactly one consumer however many domains run
    jobs — and each job's records carry [("job", index)] plus a
    per-job sequence number [jseq], so {!Obs.Stream.canonicalize}
    renders serial and parallel streams of the same campaign
    byte-identical (the determinism contract CI diffs). *)
val run :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?retries:int ->
  ?artifacts:Core.Toolchain.Artifacts.t ->
  ?progress_interval:float ->
  ?on_event:(event -> unit) ->
  ?metrics:Obs.Metrics.t ->
  ?stream:Obs.Stream.t ->
  (string * Core.Toolchain.job) list ->
  job_result array

val ok_count : job_result array -> int
val failed_count : job_result array -> int

(** Run one job with the engine's retry-and-capture discipline: up to
    [1 + retries] attempts through the shared [artifacts] cache,
    returning the attempt count and either the run or the last captured
    failure (exception text + raw backtrace).  This is the exact per-job
    step {!run_request} executes on a worker; [xmtserved] calls it
    directly so socket-served jobs fail and retry precisely like
    campaign jobs. *)
val attempt_job :
  ?artifacts:Core.Toolchain.Artifacts.t ->
  retries:int ->
  Core.Toolchain.job ->
  int * (Core.Toolchain.run, failure) result

(** The wire shape of the per-job stream records.  [job.start] and
    [job.done] records rendered from these field lists are what
    {!Obs.Stream.canonicalize} keys on; the server ({!module:Serve} via
    [xmtserved]) builds its frames from the same functions, which is
    what makes a socket-served campaign's canonical stream
    byte-identical to a direct {!run} of the same request. *)
module Wire : sig
  (** Fields of the [job.start] record: [job] (submission index),
      [jseq = 0], [name]. *)
  val job_start_fields :
    index:int -> name:string -> (string * Obs.Json.t) list

  (** Fields of the [job.done] record: [job], [jseq = 1], [name],
      config/mode/attempts, then status (ok: cycles, instructions,
      events, output, stats; failed: error text) and the host
      [wall_seconds] (stripped by canonicalization). *)
  val job_done_fields :
    index:int ->
    name:string ->
    job:Core.Toolchain.job ->
    attempts:int ->
    wall_seconds:float ->
    (Core.Toolchain.run, failure) result ->
    (string * Obs.Json.t) list
end

(** The [xmt.campaign.v1] report: per-job stats plus an aggregate.
    [host] (default true) includes host-dependent fields — per-job and
    total wall-clock, throughput, worker count, backtraces.  With
    [~host:false] the report depends only on simulated results, so a
    parallel and a serial run of the same campaign render byte-identical
    JSON — the determinism contract CI diffs. *)
val report_to_json :
  ?host:bool -> ?workers:int -> job_result array -> Obs.Json.t

(** Merge the per-job [xmt.profile.v1] reports of the profiled jobs into
    one campaign-level CPI stack (aggregate bucket cycles and per-function
    attribution summed across jobs).  [None] when no job was profiled.
    Also embedded in {!report_to_json} under ["profile"]. *)
val merged_profile_json : job_result array -> Obs.Json.t option

(** One-line progress printer for [on_event] (writes to [stderr]). *)
val progress_printer : total:int -> event -> unit

(** {1 Campaign files}

    [xmt.campaign.v1] input: [{"schema": "xmt.campaign.v1", "jobs":
    [{...}]}] where each job object takes ["name"], ["source"] (path) or
    ["inline"] (XMTC text), ["preset"], ["set"] (override strings),
    ["mode"] ("cycle"/"functional"), ["memmap"] (path), ["seed"],
    ["max_cycles"], ["max_instructions"], ["racecheck"] (bool: attach
    the race checker; the job's result gains a ["races"] member with the
    [xmt.races.v1] report) and ["options"] (object with [opt_level],
    [cluster], [prefetch], [nbstore], [fences], [outline] booleans/ints).
    A top-level ["defaults"] object provides fallbacks for every job
    field. *)

exception Spec_error of string

(** Parse a campaign spec; source paths resolve relative to [dir]
    (default the process working directory).  Raises {!Spec_error} on
    malformed input and {!Xmtsim.Config.Bad_config} on an invalid
    configuration. *)
val jobs_of_json : ?dir:string -> Obs.Json.t -> (string * Core.Toolchain.job) list

(** Load a campaign file; source paths resolve relative to the file. *)
val load_file : string -> (string * Core.Toolchain.job) list
