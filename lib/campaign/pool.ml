(** Persistent work-stealing worker pool — see pool.mli.

    The previous campaign engine paid [Domain.spawn] per [Campaign.run]
    call and funneled every worker through one global atomic cursor.
    This pool follows the Domainslib task-pool shape instead: helper
    domains are created once and parked on a condition variable between
    runs, a run hands each participant a local deque of contiguous
    job-index chunks, owners pop from the front, and a participant whose
    deque runs dry steals a chunk from the back of a victim's deque —
    the classic work-stealing discipline (owners and thieves touch
    opposite ends, so they only collide on the last chunk).

    Jobs here are coarse — each is a whole compile+simulate, micro- to
    milliseconds — so the deques use a plain per-deque mutex rather
    than a lock-free Chase–Lev deque: the lock is taken once per chunk,
    not once per job, and is uncontended except at the tail of a run. *)

(* ------------------------------------------------------------------ *)
(* Chunk deques *)

type deque = {
  chunks : (int * int) array;  (** contiguous job-index ranges [lo, hi) *)
  mutable front : int;  (** owner end *)
  mutable back : int;  (** thief end (exclusive) *)
  dlock : Mutex.t;
}

let pop_front d =
  Mutex.lock d.dlock;
  let r =
    if d.front < d.back then begin
      let c = d.chunks.(d.front) in
      d.front <- d.front + 1;
      Some c
    end
    else None
  in
  Mutex.unlock d.dlock;
  r

let steal_back d =
  Mutex.lock d.dlock;
  let r =
    if d.front < d.back then begin
      d.back <- d.back - 1;
      Some d.chunks.(d.back)
    end
    else None
  in
  Mutex.unlock d.dlock;
  r

(* ------------------------------------------------------------------ *)
(* The pool *)

type work = {
  deques : deque array;  (** one per participant *)
  execute : worker:int -> int -> unit;  (** run one job index *)
  participants : int;  (** executors for this run, <= pool width *)
  mutable failure : exn option;
      (** first uncaught exception out of [execute]; re-raised by
          {!run} after every worker has stopped *)
}

type t = {
  width : int;  (** total executors: the caller + width-1 helper domains *)
  mutable helpers : unit Domain.t array;
  lock : Mutex.t;
  wake : Condition.t;  (** helpers park here between runs *)
  finished : Condition.t;  (** the submitter waits here for [active = 0] *)
  mutable generation : int;  (** bumped once per posted run *)
  mutable current : work option;
  mutable active : int;  (** helpers still executing the current run *)
  mutable stopping : bool;
  mutable joined : bool;  (** helpers fully joined; set once by the
                              shutdown call that won the race *)
  stopped : Condition.t;  (** losers of the shutdown race wait here *)
}

let width t = t.width

(* Drain the local deque, then cycle over the other participants'
   deques stealing from the back; stop only when a full scan finds
   every deque empty (a chunk we stole may have let its owner go idle
   and steal elsewhere, so one quiet victim proves nothing). *)
let run_worker w id =
  let own = w.deques.(id) in
  let exec_chunk (lo, hi) =
    for i = lo to hi - 1 do
      w.execute ~worker:id i
    done
  in
  let rec drain () =
    match pop_front own with
    | Some c ->
      exec_chunk c;
      drain ()
    | None -> steal 1 false
  and steal k progressed =
    if k >= w.participants then (if progressed then steal 1 false)
    else
      let victim = w.deques.((id + k) mod w.participants) in
      match steal_back victim with
      | Some c ->
        exec_chunk c;
        steal (k + 1) true
      | None -> steal (k + 1) progressed
  in
  drain ()

let record_failure pool w e =
  Mutex.lock pool.lock;
  if w.failure = None then w.failure <- Some e;
  Mutex.unlock pool.lock

(* Helper-domain body: park on [wake] until a new generation (or
   shutdown) is posted, execute the run if this helper is one of its
   participants, report completion, park again. *)
let helper_loop pool id () =
  Printexc.record_backtrace true;
  Mutex.lock pool.lock;
  let seen = ref 0 in
  let rec loop () =
    if pool.stopping then Mutex.unlock pool.lock
    else if pool.generation > !seen then begin
      seen := pool.generation;
      match pool.current with
      | Some w when id < w.participants ->
        Mutex.unlock pool.lock;
        (try run_worker w id with e -> record_failure pool w e);
        Mutex.lock pool.lock;
        pool.active <- pool.active - 1;
        if pool.active = 0 then Condition.broadcast pool.finished;
        loop ()
      | Some _ | None -> loop ()
    end
    else begin
      Condition.wait pool.wake pool.lock;
      loop ()
    end
  in
  loop ()

let create ?(workers = Domain.recommended_domain_count ()) () =
  let width = max 1 workers in
  let pool =
    {
      width;
      helpers = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      generation = 0;
      current = None;
      active = 0;
      stopping = false;
      joined = false;
      stopped = Condition.create ();
    }
  in
  pool.helpers <- Array.init (width - 1) (fun k ->
      Domain.spawn (helper_loop pool (k + 1)));
  pool

(* Idempotent and safe to race: exactly one caller wins the stopping
   flag and joins the helpers; every other caller — concurrent or
   later — waits until that join has completed, so any shutdown
   returning implies the helper domains are gone. *)
let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.stopping then begin
    pool.stopping <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.helpers;
    Mutex.lock pool.lock;
    pool.helpers <- [||];
    pool.joined <- true;
    Condition.broadcast pool.stopped;
    Mutex.unlock pool.lock
  end
  else begin
    while not pool.joined do
      Condition.wait pool.stopped pool.lock
    done;
    Mutex.unlock pool.lock
  end

(* Round-robin the chunks over the participants' deques.  Chunks are
   contiguous ranges so a worker that keeps its own deque runs jobs in
   submission order (cache-friendly for shared artifacts); several
   chunks per worker leave slack for stealing when job costs are
   skewed. *)
let distribute ~jobs:n ~participants =
  let chunk = max 1 (n / (participants * 8)) in
  let n_chunks = (n + chunk - 1) / chunk in
  let per = Array.make participants [] in
  for c = n_chunks - 1 downto 0 do
    let lo = c * chunk in
    let hi = min n (lo + chunk) in
    let p = c mod participants in
    per.(p) <- (lo, hi) :: per.(p)
  done;
  Array.map
    (fun cs ->
      let chunks = Array.of_list cs in
      { chunks; front = 0; back = Array.length chunks; dlock = Mutex.create () })
    per

let run pool ?participants ~jobs:n execute =
  if n < 0 then invalid_arg "Pool.run: negative job count";
  if n > 0 then begin
    (* never more executors than jobs: surplus helpers stay parked
       instead of waking just to find empty deques *)
    let participants =
      let cap = Option.value ~default:pool.width participants in
      max 1 (min n (min cap pool.width))
    in
    if participants = 1 then
      (* serial fast path: no deques, no wakeups, no locks — byte-for-
         byte the behavior of a plain loop in the calling domain *)
      for i = 0 to n - 1 do
        execute ~worker:0 i
      done
    else begin
      let w =
        {
          deques = distribute ~jobs:n ~participants;
          execute;
          participants;
          failure = None;
        }
      in
      Mutex.lock pool.lock;
      if pool.stopping then begin
        Mutex.unlock pool.lock;
        invalid_arg "Pool.run: pool is shut down"
      end;
      pool.current <- Some w;
      pool.generation <- pool.generation + 1;
      pool.active <- participants - 1;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.lock;
      (* the submitting domain is participant 0 *)
      (try run_worker w 0 with e -> record_failure pool w e);
      Mutex.lock pool.lock;
      while pool.active > 0 do
        Condition.wait pool.finished pool.lock
      done;
      pool.current <- None;
      Mutex.unlock pool.lock;
      match w.failure with None -> () | Some e -> raise e
    end
  end

let with_pool ?workers f =
  let pool = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
