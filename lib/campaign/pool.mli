(** Persistent work-stealing worker pool.

    The campaign engine's executor: helper domains are spawned once
    ({!create}) and parked between runs, so repeated {!run} calls — a
    CLI campaign, every bench iteration, a long sweep driver — pay the
    [Domain.spawn] cost once instead of per campaign.  Each run deals
    the job indices out as contiguous chunks onto per-participant local
    deques; owners pop from the front, and a participant that runs dry
    steals chunks from the back of a victim's deque until every deque
    is empty, so a skewed sweep (one slow config) cannot strand work
    behind one worker.

    The pool schedules {e which worker runs which job index}, nothing
    more: result placement, retries and telemetry belong to the caller
    ({!Campaign.run}), which is what keeps submission-order determinism
    independent of the stealing order. *)

type t

(** [create ~workers ()] spawns [workers - 1] helper domains (the
    submitting domain is always participant 0 of a run).  [workers]
    defaults to [Domain.recommended_domain_count ()]; it is clamped to
    at least 1. *)
val create : ?workers:int -> unit -> t

(** Total executor width (helpers + the submitting domain). *)
val width : t -> int

(** [run pool ~jobs:n execute] calls [execute ~worker i] exactly once
    for every [i] in [0..n-1] and returns when all have finished.
    [worker] is the executing participant's index — use it to index
    per-worker state without locks.  [participants] caps the executors
    used for this run (default: the pool width); it is further clamped
    to [n], so surplus helpers stay parked rather than waking for empty
    deques.  With one participant the jobs run inline in the calling
    domain — no locks, no wakeups.

    If [execute] raises, the first exception is re-raised here after
    every worker has stopped; the jobs remaining in the failing
    worker's current chunk are skipped (other chunks are stolen and
    completed).  Raises [Invalid_argument] after {!shutdown}. *)
val run : t -> ?participants:int -> jobs:int -> (worker:int -> int -> unit) -> unit

(** Stop and join the helper domains.  Idempotent and safe to call
    concurrently from several threads or domains: exactly one caller
    performs the join, and every [shutdown] call — including racing
    ones — returns only after the helper domains have terminated.
    Must not be called while a {!run} is in flight. *)
val shutdown : t -> unit

(** [with_pool ~workers f] runs [f] with a fresh pool and always shuts
    it down. *)
val with_pool : ?workers:int -> (t -> 'a) -> 'a
