open Xmtc
module T = Tast

type ctx = { mutable next_vid : int }

let fresh_var ctx ~name ~ty =
  let v =
    {
      T.vid = ctx.next_vid;
      vname = name;
      vty = ty;
      vkind = T.Klocal;
      vvolatile = false;
      vaddr_taken = false;
      vps_base = false;
      vthread_local = false;
    }
  in
  ctx.next_vid <- ctx.next_vid + 1;
  v

let int_e node = { T.ety = Types.Tint; enode = node }

(* Replace [$] by [id] everywhere except inside nested spawn bodies (whose
   own [$] refers to the inner spawn); nested spawn bounds are evaluated in
   the outer thread, so they are rewritten. *)
let rec subst_tid id (e : T.expr) : T.expr =
  let r = subst_tid id in
  match e.enode with
  | T.Etid -> int_e (T.Evar id)
  | T.Eint _ | T.Eflt _ | T.Evar _ -> e
  | T.Eunop (op, a) -> { e with enode = T.Eunop (op, r a) }
  | T.Elognot a -> { e with enode = T.Elognot (r a) }
  | T.Ebinop (op, a, b) -> { e with enode = T.Ebinop (op, r a, r b) }
  | T.Eland (a, b) -> { e with enode = T.Eland (r a, r b) }
  | T.Elor (a, b) -> { e with enode = T.Elor (r a, r b) }
  | T.Eassign (a, b) -> { e with enode = T.Eassign (r a, r b) }
  | T.Eopassign (op, a, b) -> { e with enode = T.Eopassign (op, r a, r b) }
  | T.Eincdec (op, pre, a) -> { e with enode = T.Eincdec (op, pre, r a) }
  | T.Ecall (c, args) -> { e with enode = T.Ecall (c, List.map r args) }
  | T.Ederef a -> { e with enode = T.Ederef (r a) }
  | T.Eaddr a -> { e with enode = T.Eaddr (r a) }
  | T.Ecast (t, a) -> { e with enode = T.Ecast (t, r a) }
  | T.Econd (a, b, c) -> { e with enode = T.Econd (r a, r b, r c) }

let rec subst_tid_stmt id (s : T.stmt) : T.stmt =
  let rs = subst_tid_stmt id in
  let re = subst_tid id in
  match s with
  | T.Sskip | T.Sbreak | T.Scontinue | T.Sps _ | T.Sloc _ -> s
  | T.Sexpr e -> T.Sexpr (re e)
  | T.Sdecl (v, init) -> T.Sdecl (v, Option.map re init)
  | T.Sblock ss -> T.Sblock (List.map rs ss)
  | T.Sif (c, a, b) -> T.Sif (re c, rs a, rs b)
  | T.Swhile (c, b) -> T.Swhile (re c, rs b)
  | T.Sdowhile (b, c) -> T.Sdowhile (rs b, re c)
  | T.Sfor (i, c, p, b) -> T.Sfor (rs i, Option.map re c, rs p, rs b)
  | T.Sreturn e -> T.Sreturn (Option.map re e)
  | T.Sspawn sp ->
    (* bounds belong to the outer thread; body's $ is the inner spawn's *)
    T.Sspawn { sp with sp_lo = re sp.sp_lo; sp_hi = re sp.sp_hi }
  | T.Spsm (v, addr) -> T.Spsm (v, re addr)

let cluster_spawn ctx ~factor (sp : T.spawn) : T.stmt =
  let c = factor in
  let lo_v = fresh_var ctx ~name:"__lo" ~ty:Types.Tint in
  let n_v = fresh_var ctx ~name:"__n" ~ty:Types.Tint in
  let i_v = fresh_var ctx ~name:"__i" ~ty:Types.Tint in
  let base_v = fresh_var ctx ~name:"__base" ~ty:Types.Tint in
  let id_v = fresh_var ctx ~name:"__id" ~ty:Types.Tint in
  i_v.T.vthread_local <- true;
  base_v.T.vthread_local <- true;
  id_v.T.vthread_local <- true;
  let v x = int_e (T.Evar x) in
  let iconst k = int_e (T.Eint k) in
  let bin op a b = int_e (T.Ebinop (op, a, b)) in
  let body' = subst_tid_stmt id_v sp.sp_body in
  let inner =
    T.Sblock
      [
        T.Sdecl (base_v, Some (bin Types.Add (v lo_v) (bin Types.Mul (int_e T.Etid) (iconst c))));
        T.Sfor
          ( T.Sdecl (i_v, Some (iconst 0)),
            Some (bin Types.Lt (v i_v) (iconst c)),
            T.Sexpr (int_e (T.Eincdec (Types.Incr, false, v i_v))),
            T.Sblock
              [
                T.Sdecl (id_v, Some (bin Types.Add (v base_v) (v i_v)));
                T.Sif
                  ( bin Types.Lt (v id_v) (bin Types.Add (v lo_v) (v n_v)),
                    body', T.Sskip );
              ] );
      ]
  in
  let n_threads =
    (* (__n + c - 1) / c - 1 *)
    bin Types.Sub (bin Types.Div (bin Types.Add (v n_v) (iconst (c - 1))) (iconst c)) (iconst 1)
  in
  T.Sblock
    [
      T.Sdecl (lo_v, Some sp.sp_lo);
      T.Sdecl (n_v, Some (bin Types.Sub (bin Types.Add sp.sp_hi (iconst 1)) (v lo_v)));
      T.Sspawn { sp with sp_lo = iconst 0; sp_hi = n_threads; sp_body = inner };
    ]

let rec replace ctx ~factor s =
  match s with
  | T.Sspawn sp -> cluster_spawn ctx ~factor sp
  | T.Sblock ss -> T.Sblock (List.map (replace ctx ~factor) ss)
  | T.Sif (c, a, b) -> T.Sif (c, replace ctx ~factor a, replace ctx ~factor b)
  | T.Swhile (c, b) -> T.Swhile (c, replace ctx ~factor b)
  | T.Sdowhile (b, c) -> T.Sdowhile (replace ctx ~factor b, c)
  | T.Sfor (i, c, p, b) ->
    T.Sfor (replace ctx ~factor i, c, replace ctx ~factor p, replace ctx ~factor b)
  | T.Sskip | T.Sexpr _ | T.Sdecl _ | T.Sreturn _ | T.Sbreak | T.Scontinue
  | T.Sps _ | T.Spsm _ | T.Sloc _ ->
    s

let run ~factor (p : T.program) : T.program =
  if factor <= 1 then p
  else begin
    let ctx = { next_vid = Outline.max_vid p } in
    List.iter
      (fun (f : T.func) -> f.T.fbody <- replace ctx ~factor f.T.fbody)
      p.funcs;
    p
  end
