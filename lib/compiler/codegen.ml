module I = Isa.Instr
module P = Isa.Program

exception Error of string

let stack_top = 0x400000
let scratch1 = 1 (* $at *)
let scratch2 = 28 (* $gp: unused as a global pointer in this ABI *)

type emitter = { mutable items : P.item list }

let emit e item = e.items <- item :: e.items
let ins e i = emit e (P.Ins i)
let label e l = emit e (P.Label l)

(* Materialize an operand into a register, using [scr] when it is an
   immediate. *)
let operand_reg e scr = function
  | Ir.Oreg r -> r
  | Ir.Oimm k ->
    ins e (I.Li (scr, k));
    scr

(* ------------------------------------------------------------------ *)

let gen_bin e op d a b =
  let has_imm_form = function
    | Ir.Badd | Ir.Band | Ir.Bor | Ir.Bxor -> true
    | Ir.Bsub | Ir.Bmul | Ir.Bdiv | Ir.Brem | Ir.Bnor | Ir.Bsll | Ir.Bsrl
    | Ir.Bsra ->
      false
  in
  let imm_op = function
    | Ir.Badd -> I.Addi
    | Ir.Band -> I.Andi
    | Ir.Bor -> I.Ori
    | Ir.Bxor -> I.Xori
    | _ -> assert false
  in
  let reg_op = function
    | Ir.Badd -> `Alu I.Add
    | Ir.Bsub -> `Alu I.Sub
    | Ir.Band -> `Alu I.And
    | Ir.Bor -> `Alu I.Or
    | Ir.Bxor -> `Alu I.Xor
    | Ir.Bnor -> `Alu I.Nor
    | Ir.Bmul -> `Mdu I.Mul
    | Ir.Bdiv -> `Mdu I.Div
    | Ir.Brem -> `Mdu I.Rem
    | Ir.Bsll -> `Sft I.Sll
    | Ir.Bsrl -> `Sft I.Srl
    | Ir.Bsra -> `Sft I.Sra
  in
  match (op, a, b) with
  | _, Ir.Oreg ra, Ir.Oimm k when has_imm_form op ->
    ins e (I.Alui (imm_op op, d, ra, k))
  | Ir.Badd, Ir.Oimm k, Ir.Oreg rb -> ins e (I.Alui (I.Addi, d, rb, k))
  | (Ir.Band | Ir.Bor | Ir.Bxor), Ir.Oimm k, Ir.Oreg rb ->
    ins e (I.Alui (imm_op op, d, rb, k))
  | Ir.Bsub, Ir.Oreg ra, Ir.Oimm k -> ins e (I.Alui (I.Addi, d, ra, -k))
  | Ir.Bsub, Ir.Oimm 0, Ir.Oreg rb -> ins e (I.Alu (I.Sub, d, Isa.Reg.zero, rb))
  | (Ir.Bsll | Ir.Bsrl | Ir.Bsra), Ir.Oreg ra, Ir.Oimm k ->
    let sop = match op with Ir.Bsll -> I.Sll | Ir.Bsrl -> I.Srl | _ -> I.Sra in
    ins e (I.Sfti (sop, d, ra, k))
  | _ -> (
    let ra = operand_reg e scratch1 a in
    let rb = operand_reg e scratch2 b in
    match reg_op op with
    | `Alu aop -> ins e (I.Alu (aop, d, ra, rb))
    | `Mdu mop -> ins e (I.Mdu (mop, d, ra, rb))
    | `Sft sop -> ins e (I.Sft (sop, d, ra, rb)))

let gen_set e rel d a b =
  let ra () = operand_reg e scratch1 a in
  let rb () = operand_reg e scratch2 b in
  match rel with
  | Ir.Rlt -> (
    match b with
    | Ir.Oimm k -> ins e (I.Alui (I.Slti, d, ra (), k))
    | Ir.Oreg rb' -> ins e (I.Alu (I.Slt, d, ra (), rb')))
  | Ir.Rgt ->
    let ra' = ra () and rb' = rb () in
    ins e (I.Alu (I.Slt, d, rb', ra'))
  | Ir.Rle ->
    let ra' = ra () and rb' = rb () in
    ins e (I.Alu (I.Slt, d, rb', ra'));
    ins e (I.Alui (I.Xori, d, d, 1))
  | Ir.Rge ->
    let ra' = ra () and rb' = rb () in
    ins e (I.Alu (I.Slt, d, ra', rb'));
    ins e (I.Alui (I.Xori, d, d, 1))
  | Ir.Rne | Ir.Req ->
    let ra' = ra () in
    (match b with
    | Ir.Oimm 0 -> ins e (I.Alu (I.Sltu, d, Isa.Reg.zero, ra'))
    | _ ->
      let rb' = rb () in
      ins e (I.Alu (I.Sub, d, ra', rb'));
      ins e (I.Alu (I.Sltu, d, Isa.Reg.zero, d)));
    if rel = Ir.Req then ins e (I.Alui (I.Xori, d, d, 1))

let gen_cjump e rel a b l =
  match (rel, a, b) with
  | Ir.Req, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Beqz, ra, l))
  | Ir.Rne, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Bnez, ra, l))
  | Ir.Rlt, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Bltz, ra, l))
  | Ir.Rle, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Blez, ra, l))
  | Ir.Rgt, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Bgtz, ra, l))
  | Ir.Rge, Ir.Oreg ra, Ir.Oimm 0 -> ins e (I.Brz (I.Bgez, ra, l))
  | Ir.Req, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Br (I.Beq, ra, rb, l))
  | Ir.Rne, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Br (I.Bne, ra, rb, l))
  | Ir.Rlt, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Alu (I.Slt, scratch1, ra, rb));
    ins e (I.Brz (I.Bnez, scratch1, l))
  | Ir.Rge, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Alu (I.Slt, scratch1, ra, rb));
    ins e (I.Brz (I.Beqz, scratch1, l))
  | Ir.Rgt, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Alu (I.Slt, scratch1, rb, ra));
    ins e (I.Brz (I.Bnez, scratch1, l))
  | Ir.Rle, _, _ ->
    let ra = operand_reg e scratch1 a and rb = operand_reg e scratch2 b in
    ins e (I.Alu (I.Slt, scratch1, rb, ra));
    ins e (I.Brz (I.Beqz, scratch1, l))

(* ------------------------------------------------------------------ *)

let frame_bytes (fn : Ir.func) (ra : Regalloc.result) =
  let words = fn.Ir.local_words + ra.Regalloc.spill_words in
  let total = Ir.frame_reserve_bytes + (4 * words) in
  (total + 7) / 8 * 8

let needs_frame (fn : Ir.func) (ra : Regalloc.result) =
  fn.Ir.makes_calls || fn.Ir.local_words > 0
  || ra.Regalloc.spill_words > 0
  || ra.Regalloc.used_callee_int <> []
  || ra.Regalloc.used_callee_flt <> []

let callee_int_off k = -(12 + (4 * k))
let callee_flt_off k = -(52 + (4 * k))

let gen_prologue e fn ra =
  if needs_frame fn ra then begin
    let fb = frame_bytes fn ra in
    ins e (I.Alui (I.Addi, Isa.Reg.sp, Isa.Reg.sp, -fb));
    if fn.Ir.makes_calls then ins e (I.Sw (Isa.Reg.ra, fb - 4, Isa.Reg.sp));
    ins e (I.Sw (Isa.Reg.fp, fb - 8, Isa.Reg.sp));
    ins e (I.Alui (I.Addi, Isa.Reg.fp, Isa.Reg.sp, fb));
    List.iteri
      (fun k r -> ins e (I.Sw (r, callee_int_off k, Isa.Reg.fp)))
      ra.Regalloc.used_callee_int;
    List.iteri
      (fun k r -> ins e (I.Fsw (r, callee_flt_off k, Isa.Reg.fp)))
      ra.Regalloc.used_callee_flt
  end;
  (* calling-convention moves for parameters *)
  let move_int i loc =
    match loc with
    | None -> ()
    | Some (Regalloc.Lreg r) ->
      if i < 4 then ins e (I.Alu (I.Add, r, List.nth Isa.Reg.args i, Isa.Reg.zero))
      else raise (Error (fn.Ir.name ^ ": too many integer parameters"))
    | Some (Regalloc.Lspill slot) ->
      let off = -(Ir.frame_reserve_bytes + 4 + (4 * (fn.Ir.local_words + slot))) in
      ins e (I.Sw (List.nth Isa.Reg.args i, off, Isa.Reg.fp))
  in
  let move_flt i loc =
    match loc with
    | None -> ()
    | Some (Regalloc.Lreg r) ->
      if i < 4 then ins e (I.Fpu1 (I.Fmov, r, List.nth Isa.Reg.fargs i))
      else raise (Error (fn.Ir.name ^ ": too many float parameters"))
    | Some (Regalloc.Lspill slot) ->
      let off = -(Ir.frame_reserve_bytes + 4 + (4 * (fn.Ir.local_words + slot))) in
      ins e (I.Fsw (List.nth Isa.Reg.fargs i, off, Isa.Reg.fp))
  in
  List.iteri move_int ra.Regalloc.param_locs_int;
  List.iteri move_flt ra.Regalloc.param_locs_flt

let gen_epilogue e fn ra =
  if needs_frame fn ra then begin
    List.iteri
      (fun k r -> ins e (I.Lw (r, callee_int_off k, Isa.Reg.fp)))
      ra.Regalloc.used_callee_int;
    List.iteri
      (fun k r -> ins e (I.Flw (r, callee_flt_off k, Isa.Reg.fp)))
      ra.Regalloc.used_callee_flt;
    if fn.Ir.makes_calls then ins e (I.Lw (Isa.Reg.ra, -4, Isa.Reg.fp));
    ins e (I.Alu (I.Add, Isa.Reg.sp, Isa.Reg.fp, Isa.Reg.zero));
    ins e (I.Lw (Isa.Reg.fp, -8, Isa.Reg.sp))
  end;
  ins e (I.Jr Isa.Reg.ra)

(* ------------------------------------------------------------------ *)

let gen_call e dst name args =
  (* move arguments into $a0-$a3 / $f12-$f15 *)
  let ni = ref 0 and nf = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Ir.Aint op ->
        if !ni >= 4 then raise (Error ("call " ^ name ^ ": too many int args"));
        let dstr = List.nth Isa.Reg.args !ni in
        incr ni;
        (match op with
        | Ir.Oimm k -> ins e (I.Li (dstr, k))
        | Ir.Oreg r -> ins e (I.Alu (I.Add, dstr, r, Isa.Reg.zero)))
      | Ir.Aflt r ->
        if !nf >= 4 then raise (Error ("call " ^ name ^ ": too many float args"));
        let dstr = List.nth Isa.Reg.fargs !nf in
        incr nf;
        ins e (I.Fpu1 (I.Fmov, dstr, r)))
    args;
  ins e (I.Jal name);
  match dst with
  | Ir.Dnone -> ()
  | Ir.Dint r -> ins e (I.Alu (I.Add, r, Isa.Reg.v0, Isa.Reg.zero))
  | Ir.Dflt r -> ins e (I.Fpu1 (I.Fmov, r, 0))

let gen_instr e ~fn_name ret_label i =
  match i with
  | Ir.Iloc line -> emit e (P.Loc { line; fn = fn_name })
  | Ir.Ilabel l -> label e l
  | Ir.Imov (d, Ir.Oimm k) -> ins e (I.Li (d, k))
  | Ir.Imov (d, Ir.Oreg s) -> ins e (I.Alu (I.Add, d, s, Isa.Reg.zero))
  | Ir.Ibin (op, d, a, b) -> gen_bin e op d a b
  | Ir.Iset (rel, d, a, b) -> gen_set e rel d a b
  | Ir.Ifbin (op, d, a, b) ->
    let fop =
      match op with
      | Ir.FBadd -> I.Fadd
      | Ir.FBsub -> I.Fsub
      | Ir.FBmul -> I.Fmul
      | Ir.FBdiv -> I.Fdiv
    in
    ins e (I.Fpu (fop, d, a, b))
  | Ir.Ifun (op, d, a) ->
    let fop =
      match op with
      | Ir.FUneg -> I.Fneg
      | Ir.FUabs -> I.Fabs
      | Ir.FUsqrt -> I.Fsqrt
      | Ir.FUmov -> I.Fmov
    in
    ins e (I.Fpu1 (fop, d, a))
  | Ir.Ifli (d, x) -> ins e (I.Fli (d, x))
  | Ir.Ifcmp (rel, d, a, b) -> (
    match rel with
    | Ir.Req -> ins e (I.Fcmp (I.Feq, d, a, b))
    | Ir.Rlt -> ins e (I.Fcmp (I.Flt, d, a, b))
    | Ir.Rle -> ins e (I.Fcmp (I.Fle, d, a, b))
    | Ir.Rgt -> ins e (I.Fcmp (I.Flt, d, b, a))
    | Ir.Rge -> ins e (I.Fcmp (I.Fle, d, b, a))
    | Ir.Rne ->
      ins e (I.Fcmp (I.Feq, d, a, b));
      ins e (I.Alui (I.Xori, d, d, 1)))
  | Ir.Icvt_i2f (d, s) ->
    let r = operand_reg e scratch1 s in
    ins e (I.Cvt_i2f (d, r))
  | Ir.Icvt_f2i (d, s) -> ins e (I.Cvt_f2i (d, s))
  | Ir.Ila (d, l) -> ins e (I.La (d, l))
  | Ir.Ild (Ir.Ld_normal, d, b, off) -> ins e (I.Lw (d, off, b))
  | Ir.Ild (Ir.Ld_ro, d, b, off) -> ins e (I.Lwro (d, off, b))
  | Ir.Ist (Ir.St_blocking, s, b, off) -> ins e (I.Sw (s, off, b))
  | Ir.Ist (Ir.St_nb, s, b, off) -> ins e (I.Swnb (s, off, b))
  | Ir.Ifld (d, b, off) -> ins e (I.Flw (d, off, b))
  | Ir.Ifst (s, b, off) -> ins e (I.Fsw (s, off, b))
  | Ir.Ipref (b, off) -> ins e (I.Pref (off, b))
  | Ir.Icall (dst, name, args) -> gen_call e dst name args
  | Ir.Ijmp l -> ins e (I.J l)
  | Ir.Icjump (rel, a, b, l) -> gen_cjump e rel a b l
  | Ir.Iret None -> ins e (I.J ret_label)
  | Ir.Iret (Some (Ir.Aint op)) ->
    (match op with
    | Ir.Oimm k -> ins e (I.Li (Isa.Reg.v0, k))
    | Ir.Oreg r -> ins e (I.Alu (I.Add, Isa.Reg.v0, r, Isa.Reg.zero)));
    ins e (I.J ret_label)
  | Ir.Iret (Some (Ir.Aflt r)) ->
    ins e (I.Fpu1 (I.Fmov, 0, r));
    ins e (I.J ret_label)
  | Ir.Ispawn (a, b) ->
    let ra = operand_reg e scratch1 a in
    let rb = operand_reg e scratch2 b in
    ins e (I.Spawn (ra, rb))
  | Ir.Ijoin -> ins e I.Join
  | Ir.Ips (r, g) -> ins e (I.Ps (r, g))
  | Ir.Ipsm (r, b, off) -> ins e (I.Psm (r, off, b))
  | Ir.Ichkid r -> ins e (I.Chkid r)
  | Ir.Imfg (d, g) -> ins e (I.Mfg (d, g))
  | Ir.Imtg (g, s) ->
    let r = operand_reg e scratch1 s in
    ins e (I.Mtg (g, r))
  | Ir.Ifence -> ins e I.Fence
  | Ir.Isys (op, Ir.Aint a) ->
    let r = operand_reg e scratch1 a in
    ins e (I.Sys (op, r))
  | Ir.Isys (op, Ir.Aflt r) -> ins e (I.Sys (op, r))

let gen_func (fn : Ir.func) (ra : Regalloc.result) : P.item list =
  let e = { items = [] } in
  let ret_label = "Lret_" ^ fn.Ir.name in
  label e fn.Ir.name;
  (* prologue code belongs to the function but no concrete line *)
  emit e (P.Loc { line = 0; fn = fn.Ir.name });
  gen_prologue e fn ra;
  List.iter (gen_instr e ~fn_name:fn.Ir.name ret_label) fn.Ir.body;
  label e ret_label;
  emit e (P.Loc { line = 0; fn = fn.Ir.name });
  gen_epilogue e fn ra;
  List.rev e.items

(* ------------------------------------------------------------------ *)

let gen_start (prog : Ir.program) : P.item list =
  let e = { items = [] } in
  label e "__start";
  emit e (P.Loc { line = 0; fn = "__start" });
  ins e (I.Li (Isa.Reg.sp, stack_top));
  ins e (I.Alu (I.Add, Isa.Reg.fp, Isa.Reg.sp, Isa.Reg.zero));
  List.iter
    (fun (_, g, init) ->
      ins e (I.Li (scratch1, init));
      ins e (I.Mtg (g, scratch1)))
    prog.Ir.ps_regs;
  ins e (I.Jal "main");
  ins e I.Halt;
  List.rev e.items

let gen_program ?(layout_opt = true) (prog : Ir.program) funcs : P.t =
  Layout.reset_labels ();
  let text =
    gen_start prog
    @ List.concat_map
        (fun (fn, ra) ->
          let items = gen_func fn ra in
          if layout_opt then Layout.run items else items)
        funcs
  in
  { P.text; data = prog.Ir.data }
