type options = {
  opt_level : int;
  prefetch : bool;
  prefetch_max_per_block : int;
  nbstore : bool;
  fences : bool;
  cluster : int;
  layout_opt : bool;
  postpass_fix : bool;
  outline : bool;
}

let default_options =
  {
    opt_level = 2;
    prefetch = true;
    prefetch_max_per_block = 8;
    nbstore = true;
    fences = true;
    cluster = 1;
    layout_opt = true;
    postpass_fix = true;
    outline = true;
  }

(** Per-pass instrumentation ([xmtcc --timings]): wall-clock spent in the
    pass and the IR size it saw before/after.  The size unit depends on
    the layer the pass works at — source bytes for the pre-pass, IR
    instructions for the core-pass, emitted instructions for codegen and
    the post-pass; [pt_unit] names it.  A negative [pt_size_before] means
    the pass changed representations and has no comparable input size. *)
type pass_timing = {
  pt_pass : string;
  pt_ms : float;
  pt_size_before : int;
  pt_size_after : int;
  pt_unit : string;
}

type output = {
  program : Isa.Program.t;
  asm_text : string;
  relocated_blocks : int;
  outlined_source : string;
  timings : pass_timing list;  (** in pass order *)
  typed : Xmtc.Tast.program;  (** typed AST after the pre-pass *)
  ir : Ir.program;  (** final IR, after every core pass *)
}

exception Compile_error of string

let wrap f =
  try f () with
  | Xmtc.Lexer.Lex_error { line; msg } ->
    raise (Compile_error (Printf.sprintf "lex error at line %d: %s" line msg))
  | Xmtc.Parser.Parse_error { line; msg } ->
    raise (Compile_error (Printf.sprintf "parse error at line %d: %s" line msg))
  | Xmtc.Typecheck.Error { line; msg } ->
    raise (Compile_error (Printf.sprintf "type error at line %d: %s" line msg))
  | Lower.Error msg -> raise (Compile_error ("lowering: " ^ msg))
  | Regalloc.Spill_error msg -> raise (Compile_error msg)
  | Codegen.Error msg -> raise (Compile_error ("codegen: " ^ msg))
  | Postpass.Verify_error msg -> raise (Compile_error ("post-pass: " ^ msg))

let ir_size ir = List.fold_left (fun acc fn -> acc + List.length fn.Ir.body) 0 ir.Ir.funcs
let src_size tprog = String.length (Xmtc.Pretty.program_to_string tprog)
let prog_size p = List.length (Isa.Program.instructions p)

let compile ?(options = default_options) src : output =
  wrap (fun () ->
      let timings = ref [] in
      (* wall-clock + size-delta instrumentation around each pass *)
      let timed pass ~unit_ ~before ~after f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        timings :=
          { pt_pass = pass; pt_ms = ms; pt_size_before = before;
            pt_size_after = after r; pt_unit = unit_ }
          :: !timings;
        r
      in
      (* front end *)
      let tprog =
        timed "frontend" ~unit_:"bytes" ~before:(String.length src) ~after:src_size
          (fun () -> Xmtc.Typecheck.program_of_source src)
      in
      (* pre-pass: source-to-source *)
      let tprog =
        timed "cluster" ~unit_:"bytes" ~before:(src_size tprog) ~after:src_size
          (fun () -> Cluster.run ~factor:options.cluster tprog)
      in
      let tprog =
        timed "outline" ~unit_:"bytes" ~before:(src_size tprog) ~after:src_size
          (fun () -> if options.outline then Outline.run tprog else tprog)
      in
      let outlined_source = Xmtc.Pretty.program_to_string tprog in
      (* core-pass: the per-function passes are independent, so running
         each pass over all functions keeps per-function semantics while
         giving one timing entry per pass *)
      let ir =
        timed "lower" ~unit_:"instrs" ~before:(-1) ~after:ir_size (fun () ->
            Lower.run tprog)
      in
      let on_ir pass f =
        ignore
          (timed pass ~unit_:"instrs" ~before:(ir_size ir)
             ~after:(fun () -> ir_size ir)
             (fun () -> List.iter f ir.Ir.funcs))
      in
      on_ir "opt" (fun fn -> Opt.run ~level:options.opt_level fn);
      on_ir "memfence" (fun fn ->
          Memfence.run ~nbstore:options.nbstore ~fences:options.fences fn);
      if options.prefetch then
        on_ir "prefetch" (fun fn ->
            Prefetch.run ~max_per_block:options.prefetch_max_per_block fn);
      let allocs =
        timed "regalloc" ~unit_:"instrs" ~before:(ir_size ir)
          ~after:(fun _ -> ir_size ir)
          (fun () -> List.map (fun fn -> (fn, Regalloc.run fn)) ir.Ir.funcs)
      in
      let program =
        timed "codegen" ~unit_:"instrs" ~before:(ir_size ir) ~after:prog_size
          (fun () -> Codegen.gen_program ~layout_opt:options.layout_opt ir allocs)
      in
      (* post-pass: re-read the emitted assembly, repair and verify *)
      let program, relocated_blocks =
        timed "postpass" ~unit_:"instrs" ~before:(prog_size program)
          ~after:(fun (p, _) -> prog_size p)
          (fun () ->
            let asm_text0 = Isa.Asm.print program in
            let reread = Isa.Asm.parse asm_text0 in
            let program, relocated_blocks =
              if options.postpass_fix then Postpass.run reread else (reread, 0)
            in
            if options.postpass_fix then Postpass.verify program;
            (program, relocated_blocks))
      in
      (* [program] keeps the .loc debug markers (they feed the image's
         source map); [asm_text] is the user-facing listing and stays
         loc-free so default output is unchanged — [xmtcc -g] prints the
         debug-bearing form from [program] instead *)
      let asm_text = Isa.Asm.print (Isa.Program.strip_locs program) in
      { program; asm_text; relocated_blocks; outlined_source;
        timings = List.rev !timings; typed = tprog; ir })

let timings_to_string timings =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%-10s %9s  %s\n" "pass" "wall" "size";
  let total = ref 0.0 in
  List.iter
    (fun pt ->
      total := !total +. pt.pt_ms;
      let delta = pt.pt_size_after - pt.pt_size_before in
      if pt.pt_size_before < 0 then
        pf "%-10s %7.2fms  -> %d %s\n" pt.pt_pass pt.pt_ms pt.pt_size_after pt.pt_unit
      else
        pf "%-10s %7.2fms  %d -> %d %s (%+d)\n" pt.pt_pass pt.pt_ms
          pt.pt_size_before pt.pt_size_after pt.pt_unit delta)
    timings;
  pf "%-10s %7.2fms\n" "total" !total;
  Buffer.contents b

(* Place the heap pointer after all data and resolve. *)
let compile_to_image ?options ?(memmap = []) src =
  let out = compile ?options src in
  let image = Isa.Program.resolve ~extra_data:memmap out.program in
  (* initialize __heap_ptr to the first byte after the data segment *)
  (match Hashtbl.find_opt image.Isa.Program.data_addr "__heap_ptr" with
  | Some addr ->
    let word = (addr - image.Isa.Program.data_base) / 4 in
    let heap_start =
      image.Isa.Program.data_base + (4 * Array.length image.Isa.Program.data_words)
    in
    image.Isa.Program.data_words.(word) <- Isa.Value.int heap_start
  | None -> ());
  (out, image)
