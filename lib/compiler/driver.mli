(** The compiler driver: XMTC source to verified XMT assembly.

    Pipeline (paper §IV): pre-pass (clustering §IV-C, then outlining
    Fig. 8) on the typed AST; core-pass (lowering, serial optimization,
    XMT passes: prefetch §IV-C, non-blocking stores and fences §IV-A,
    register allocation §IV-D, code generation with layout optimization);
    post-pass (Fig. 9 repair + verification).

    Every stage can be toggled to reproduce the paper's ablations and
    failure demonstrations. *)

type options = {
  opt_level : int;  (** 0 none, 1 fold/copyprop/dce, 2 + local CSE *)
  prefetch : bool;
  prefetch_max_per_block : int;
  nbstore : bool;
  fences : bool;  (** disable to reproduce the Fig. 7 violation *)
  cluster : int;  (** thread-clustering factor; 1 = off *)
  layout_opt : bool;  (** GCC-style block reordering (creates Fig. 9a) *)
  postpass_fix : bool;  (** relocate misplaced blocks (Fig. 9b) *)
  outline : bool;  (** pre-pass outlining (disable to expose Fig. 8 hazard) *)
}

val default_options : options

(** Per-pass instrumentation ([xmtcc --timings]): wall-clock milliseconds
    and the size of the representation before/after the pass.  [pt_unit]
    names the size unit (source bytes, IR instructions, emitted
    instructions); [pt_size_before < 0] means the pass changed
    representations and has no comparable input size. *)
type pass_timing = {
  pt_pass : string;
  pt_ms : float;
  pt_size_before : int;
  pt_size_after : int;
  pt_unit : string;
}

type output = {
  program : Isa.Program.t;
  asm_text : string;
  relocated_blocks : int;  (** blocks the post-pass moved back (Fig. 9) *)
  outlined_source : string;  (** XMTC source after the pre-pass *)
  timings : pass_timing list;  (** in pass order *)
  typed : Xmtc.Tast.program;
      (** typed AST after the pre-pass (clustered, outlined) — the
          representation the static race checker ({!Racecheck}) walks *)
  ir : Ir.program;
      (** final IR after every core pass, fences and non-blocking stores
          included — what the fence checker diffs against *)
}

(** Render [output.timings] as the [--timings] table. *)
val timings_to_string : pass_timing list -> string

exception Compile_error of string

(** Compile XMTC source text. *)
val compile : ?options:options -> string -> output

(** Compile and resolve with memory-map inputs; also places the heap
    pointer.  The resulting image is ready for simulation. *)
val compile_to_image :
  ?options:options -> ?memmap:Isa.Memmap.t -> string -> output * Isa.Program.image
