(** Three-address intermediate representation of the core-pass.

    The IR is deliberately {e serial} — it has no notion of concurrency
    beyond the [Ispawn]/[Ijoin] bracket markers, mirroring how the paper's
    core-pass (GCC) sees a spawn block as a plain sequential region
    (§IV-B, Fig. 8b).  Virtual registers are unlimited until register
    allocation; integer and float registers form separate classes. *)

type vreg = int
type vfreg = int
type label = string

(** Comparison relations; materialized by {!Codegen} using slt/xori etc. *)
type relop = Req | Rne | Rlt | Rle | Rgt | Rge

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Band | Bor | Bxor | Bnor
  | Bsll | Bsrl | Bsra

type fbinop = FBadd | FBsub | FBmul | FBdiv
type funop = FUneg | FUabs | FUsqrt | FUmov
type operand = Oreg of vreg | Oimm of int

(** Load/store flavours selected by the XMT-specific passes (§IV-C). *)
type ld_mode = Ld_normal | Ld_ro

type st_mode = St_blocking | St_nb

type arg = Aint of operand | Aflt of vfreg
type ret_dst = Dint of vreg | Dflt of vfreg | Dnone

type sys_op = Isa.Instr.sys_op

type instr =
  | Ilabel of label
  | Imov of vreg * operand
  | Ibin of binop * vreg * operand * operand
  | Iset of relop * vreg * operand * operand  (** rd <- (a REL b) ? 1 : 0 *)
  | Ifbin of fbinop * vfreg * vfreg * vfreg
  | Ifun of funop * vfreg * vfreg
  | Ifli of vfreg * float
  | Ifcmp of relop * vreg * vfreg * vfreg
  | Icvt_i2f of vfreg * operand
  | Icvt_f2i of vreg * vfreg
  | Ila of vreg * string
  | Ild of ld_mode * vreg * vreg * int  (** rd <- mem[base + off] *)
  | Ist of st_mode * vreg * vreg * int  (** mem[base + off] <- rs *)
  | Ifld of vfreg * vreg * int
  | Ifst of vfreg * vreg * int
  | Ipref of vreg * int
  | Icall of ret_dst * string * arg list
  | Ijmp of label
  | Icjump of relop * operand * operand * label  (** branch if true, else fall *)
  | Iret of arg option
  | Ispawn of operand * operand  (** low, high: enter parallel mode *)
  | Ijoin
  | Ips of vreg * Isa.Reg.g  (** rd <-> $g (atomic fetch-add) *)
  | Ipsm of vreg * vreg * int  (** rd <-> mem[base+off] (atomic fetch-add) *)
  | Ichkid of vreg
  | Imfg of vreg * Isa.Reg.g
  | Imtg of Isa.Reg.g * operand
  | Ifence
  | Isys of sys_op * arg
  | Iloc of int
      (** debug marker: following instructions come from this source line.
          Emits no code; transparent to every optimization. *)

type func = {
  name : string;
  mutable body : instr list;
  mutable next_vreg : int;
  mutable next_vfreg : int;
  (* Parameter setup: which vregs receive the incoming argument registers. *)
  params_int : vreg list;
  params_flt : vfreg list;
  is_spawn_func : bool;  (** outlined spawn function: contains Ispawn/Ijoin *)
  ret_float : bool;
  mutable local_words : int;  (** frame words used by addressable locals *)
  mutable makes_calls : bool;
}

(** Precolored virtual registers: v0 is the stack pointer, v1 the frame
    pointer.  Allocation of fresh vregs starts at {!first_alloc_vreg}. *)
let vreg_sp : vreg = 0

let vreg_fp : vreg = 1
let first_alloc_vreg = 2

(** Fixed bytes reserved at the top of every frame for $ra, the caller's
    $fp and callee-saved registers ($s0-$s7, $f20-$f31); addressable locals
    start below it. *)
let frame_reserve_bytes = 96

type program = {
  funcs : func list;
  data : Isa.Program.data_item list;
  (* ps-base global -> global register index *)
  ps_regs : (string * Isa.Reg.g * int) list;  (** name, $g index, initial value *)
}

(* ------------------------------------------------------------------ *)
(* Def/use sets, needed by liveness and DCE.  Returned as (int defs,
   int uses, float defs, float uses). *)

let ops_uses ops =
  List.filter_map (function Oreg r -> Some r | Oimm _ -> None) ops

let defs_uses = function
  | Ilabel _ | Ijmp _ | Ifence | Iloc _ -> ([], [], [], [])
  | Imov (d, s) -> ([ d ], ops_uses [ s ], [], [])
  | Ibin (_, d, a, b) -> ([ d ], ops_uses [ a; b ], [], [])
  | Iset (_, d, a, b) -> ([ d ], ops_uses [ a; b ], [], [])
  | Ifbin (_, d, a, b) -> ([], [], [ d ], [ a; b ])
  | Ifun (_, d, a) -> ([], [], [ d ], [ a ])
  | Ifli (d, _) -> ([], [], [ d ], [])
  | Ifcmp (_, d, a, b) -> ([ d ], [], [], [ a; b ])
  | Icvt_i2f (d, s) -> ([], ops_uses [ s ], [ d ], [])
  | Icvt_f2i (d, s) -> ([ d ], [], [], [ s ])
  | Ila (d, _) -> ([ d ], [], [], [])
  | Ild (_, d, b, _) -> ([ d ], [ b ], [], [])
  | Ist (_, s, b, _) -> ([], [ s; b ], [], [])
  | Ifld (d, b, _) -> ([], [ b ], [ d ], [])
  | Ifst (s, b, _) -> ([], [ b ], [], [ s ])
  | Ipref (b, _) -> ([], [ b ], [], [])
  | Icall (dst, _, args) ->
    let iu, fu =
      List.fold_left
        (fun (iu, fu) -> function
          | Aint (Oreg r) -> (r :: iu, fu)
          | Aint (Oimm _) -> (iu, fu)
          | Aflt r -> (iu, r :: fu))
        ([], []) args
    in
    let id, fd =
      match dst with Dint r -> ([ r ], []) | Dflt r -> ([], [ r ]) | Dnone -> ([], [])
    in
    (id, iu, fd, fu)
  | Icjump (_, a, b, _) -> ([], ops_uses [ a; b ], [], [])
  | Iret (Some (Aint op)) -> ([], ops_uses [ op ], [], [])
  | Iret (Some (Aflt r)) -> ([], [], [], [ r ])
  | Iret None -> ([], [], [], [])
  | Ispawn (a, b) -> ([], ops_uses [ a; b ], [], [])
  | Ijoin -> ([], [], [], [])
  | Ips (r, _) -> ([ r ], [ r ], [], [])
  | Ipsm (r, b, _) -> ([ r ], [ r; b ], [], [])
  | Ichkid r -> ([], [ r ], [], [])
  | Imfg (d, _) -> ([ d ], [], [], [])
  | Imtg (_, s) -> ([], ops_uses [ s ], [], [])
  | Isys (_, Aint op) -> ([], ops_uses [ op ], [], [])
  | Isys (_, Aflt r) -> ([], [], [], [ r ])

(** Instructions after which control does not fall to the next one. *)
let is_barrier = function
  | Ijmp _ | Iret _ -> true
  | _ -> false

(** Does this instruction have side effects that DCE must preserve? *)
let has_side_effect = function
  | Ist _ | Ifst _ | Ipref _ | Icall _ | Ispawn _ | Ijoin | Ips _ | Ipsm _
  | Ichkid _ | Imtg _ | Ifence | Isys _ | Iret _ | Ijmp _ | Icjump _ | Ilabel _ ->
    true
  | Imov _ | Ibin _ | Iset _ | Ifbin _ | Ifun _ | Ifli _ | Ifcmp _ | Icvt_i2f _
  | Icvt_f2i _ | Ila _ | Ild _ | Ifld _ | Imfg _ ->
    false
  (* Debug markers carry no defs, so DCE keeps them; listed as effectful
     for clarity. *)
  | Iloc _ -> true

(* Loads are pure w.r.t. DCE only outside parallel/volatile concerns; we
   treat them as removable when the destination is dead, which is safe
   because removing a load cannot change memory. *)

let relop_to_string = function
  | Req -> "==" | Rne -> "!=" | Rlt -> "<" | Rle -> "<=" | Rgt -> ">" | Rge -> ">="

let operand_to_string = function
  | Oreg r -> Printf.sprintf "v%d" r
  | Oimm i -> string_of_int i

let binop_to_string = function
  | Badd -> "add" | Bsub -> "sub" | Bmul -> "mul" | Bdiv -> "div" | Brem -> "rem"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor" | Bnor -> "nor"
  | Bsll -> "sll" | Bsrl -> "srl" | Bsra -> "sra"

let to_string i =
  let sp = Printf.sprintf in
  let o = operand_to_string in
  let v r = sp "v%d" r in
  let f r = sp "fv%d" r in
  match i with
  | Ilabel l -> l ^ ":"
  | Imov (d, s) -> sp "  %s := %s" (v d) (o s)
  | Ibin (op, d, a, b) -> sp "  %s := %s %s, %s" (v d) (binop_to_string op) (o a) (o b)
  | Iset (r, d, a, b) -> sp "  %s := %s %s %s" (v d) (o a) (relop_to_string r) (o b)
  | Ifbin (op, d, a, b) ->
    let n = match op with FBadd -> "fadd" | FBsub -> "fsub" | FBmul -> "fmul" | FBdiv -> "fdiv" in
    sp "  %s := %s %s, %s" (f d) n (f a) (f b)
  | Ifun (op, d, a) ->
    let n = match op with FUneg -> "fneg" | FUabs -> "fabs" | FUsqrt -> "fsqrt" | FUmov -> "fmov" in
    sp "  %s := %s %s" (f d) n (f a)
  | Ifli (d, x) -> sp "  %s := %h" (f d) x
  | Ifcmp (r, d, a, b) -> sp "  %s := %s %s %s" (v d) (f a) (relop_to_string r) (f b)
  | Icvt_i2f (d, s) -> sp "  %s := i2f %s" (f d) (o s)
  | Icvt_f2i (d, s) -> sp "  %s := f2i %s" (v d) (f s)
  | Ila (d, l) -> sp "  %s := &%s" (v d) l
  | Ild (m, d, b, off) ->
    sp "  %s := load%s %d(%s)" (v d) (match m with Ld_ro -> ".ro" | Ld_normal -> "") off (v b)
  | Ist (m, s, b, off) ->
    sp "  store%s %s -> %d(%s)" (match m with St_nb -> ".nb" | St_blocking -> "") (v s) off (v b)
  | Ifld (d, b, off) -> sp "  %s := fload %d(%s)" (f d) off (v b)
  | Ifst (s, b, off) -> sp "  fstore %s -> %d(%s)" (f s) off (v b)
  | Ipref (b, off) -> sp "  pref %d(%s)" off (v b)
  | Icall (dst, name, args) ->
    let dsts = match dst with Dint r -> v r ^ " := " | Dflt r -> f r ^ " := " | Dnone -> "" in
    sp "  %scall %s(%s)" dsts name
      (String.concat ", "
         (List.map (function Aint op -> o op | Aflt r -> f r) args))
  | Ijmp l -> sp "  jmp %s" l
  | Icjump (r, a, b, l) -> sp "  if %s %s %s jmp %s" (o a) (relop_to_string r) (o b) l
  | Iret None -> "  ret"
  | Iret (Some (Aint op)) -> sp "  ret %s" (o op)
  | Iret (Some (Aflt r)) -> sp "  ret %s" (f r)
  | Ispawn (a, b) -> sp "  spawn %s, %s" (o a) (o b)
  | Ijoin -> "  join"
  | Ips (r, gr) -> sp "  ps %s, $g%d" (v r) gr
  | Ipsm (r, b, off) -> sp "  psm %s, %d(%s)" (v r) off (v b)
  | Ichkid r -> sp "  chkid %s" (v r)
  | Imfg (d, gr) -> sp "  %s := $g%d" (v d) gr
  | Imtg (gr, s) -> sp "  $g%d := %s" gr (o s)
  | Ifence -> "  fence"
  | Isys (op, a) ->
    sp "  sys.%s %s"
      (match op with
      | Isa.Instr.Print_int -> "pint"
      | Isa.Instr.Print_float -> "pflt"
      | Isa.Instr.Print_char -> "pchr"
      | Isa.Instr.Print_str -> "pstr")
      (match a with Aint op -> o op | Aflt r -> f r)
  | Iloc line -> sp "  .loc %d" line

let func_to_string fn =
  String.concat "\n" ((fn.name ^ ":") :: List.map to_string fn.body)
