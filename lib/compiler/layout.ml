module I = Isa.Instr
module P = Isa.Program

type term =
  | Tfall  (** falls through to the next block in the original order *)
  | Tjump of string  (** ends with an unconditional j *)
  | Tcond of string  (** ends with a conditional branch; also falls through *)
  | Texit  (** jr / halt: no successor *)

type block = {
  mutable labels : string list;
  mutable body : P.item list;
      (** Ins and Loc items, without a trailing unconditional jump — Loc
          debug markers travel with their block through reordering *)
  mutable term : term;
  mutable fall : int;  (** original fallthrough successor index, or -1 *)
  mutable cold : bool;
  idx : int;
}

(* Fall-through labels are program-global names, so the counter is
   domain-local (no cross-domain races under parallel campaigns) and
   {!reset_labels} rewinds it at the start of every program so the
   emitted assembly is identical however many compiles ran before. *)
let label_counter_key = Domain.DLS.new_key (fun () -> ref 0)

let reset_labels () = Domain.DLS.get label_counter_key := 0

let fresh_label () =
  let n = Domain.DLS.get label_counter_key in
  incr n;
  Printf.sprintf "Lfall%d" !n

(* Split items into blocks. *)
let split items =
  let blocks = ref [] in
  let labels = ref [] in
  let body = ref [] in
  let n = ref 0 in
  let flush term =
    let idx = !n in
    incr n;
    blocks :=
      {
        labels = List.rev !labels;
        body = List.rev !body;
        term;
        fall = -1;
        cold = false;
        idx;
      }
      :: !blocks;
    labels := [];
    body := []
  in
  List.iter
    (fun item ->
      match item with
      | P.Comment _ -> ()
      | P.Loc _ -> body := item :: !body
      | P.Label l ->
        (* trailing debug markers describe the instructions that follow the
           label, so they move into the new block instead of being flushed
           with (and possibly reordered along with) the previous one *)
        let rec pop acc = function
          | (P.Loc _ as x) :: rest -> pop (x :: acc) rest
          | rest -> (acc, rest)
        in
        let pending, rest = pop [] !body in
        body := rest;
        if !body <> [] then flush Tfall;
        labels := l :: !labels;
        body := List.rev_append pending !body
      | P.Ins i -> (
        match i with
        | I.J l ->
          flush (Tjump l)
        | I.Jr _ | I.Halt ->
          body := item :: !body;
          flush Texit
        | I.Br _ | I.Brz _ ->
          body := item :: !body;
          flush (Tcond (Option.get (I.target i)))
        | _ -> body := item :: !body))
    items;
  if !body <> [] || !labels <> [] then flush Tfall;
  let arr = Array.of_list (List.rev !blocks) in
  Array.iteri (fun i b -> if i + 1 < Array.length arr then b.fall <- i + 1) arr;
  (* exit blocks and jumps have no fallthrough *)
  Array.iter (fun b -> match b.term with Texit | Tjump _ -> b.fall <- -1 | Tfall | Tcond _ -> ()) arr;
  arr

let run items =
  match items with
  | [] -> []
  | _ ->
    let blocks = split items in
    let nb = Array.length blocks in
    if nb = 0 then items
    else begin
      let by_label = Hashtbl.create 16 in
      Array.iter
        (fun b -> List.iter (fun l -> Hashtbl.replace by_label l b.idx) b.labels)
        blocks;
      let target_of l = Hashtbl.find_opt by_label l in
      (* Unreachable-block elimination.  Roots: the entry block and blocks
         containing spawn-protocol instructions — a join block has no
         explicit CFG predecessor (the hardware transfers control to it
         when all TCUs finish), and the dispatch code is entered by
         broadcast. *)
      let is_root b =
        b.idx = 0
        || List.exists
             (function
               | P.Ins (I.Join | I.Spawn _ | I.Chkid _) -> true
               | _ -> false)
             b.body
      in
      let reach = Array.make nb false in
      let rec visit i =
        if i >= 0 && i < nb && not reach.(i) then begin
          reach.(i) <- true;
          let b = blocks.(i) in
          (match b.term with
          | Tfall | Tcond _ -> if b.fall >= 0 then visit b.fall
          | Tjump _ | Texit -> ());
          match b.term with
          | Tjump l | Tcond l -> (
            match target_of l with Some t -> visit t | None -> ())
          | Tfall | Texit -> ()
        end
      in
      Array.iter (fun b -> if is_root b then visit b.idx) blocks;
      (* cold = reachable only via taken conditional branches *)
      let reached_fall = Array.make nb false in
      let reached_jump = Array.make nb false in
      let reached_cond = Array.make nb false in
      reached_fall.(0) <- true;
      Array.iter
        (fun b ->
          (match b.term with
          | Tfall | Tcond _ -> if b.fall >= 0 then reached_fall.(b.fall) <- true
          | Tjump _ | Texit -> ());
          (match b.term with
          | Tjump l -> (
            match target_of l with Some t -> reached_jump.(t) <- true | None -> ())
          | Tcond l -> (
            match target_of l with Some t -> reached_cond.(t) <- true | None -> ())
          | Tfall | Texit -> ());
          (* branch targets inside the body (shouldn't happen) are ignored *))
        blocks;
      Array.iter
        (fun b ->
          if
            b.idx <> 0 && reached_cond.(b.idx)
            && (not reached_fall.(b.idx))
            && not reached_jump.(b.idx)
          then b.cold <- true)
        blocks;
      (* Greedy chaining over hot blocks, then cold blocks in order. *)
      let placed = Array.make nb false in
      let order = ref [] in
      let place i =
        placed.(i) <- true;
        order := i :: !order
      in
      let rec chain i =
        place i;
        let b = blocks.(i) in
        match b.term with
        | Tfall | Tcond _ ->
          if
            b.fall >= 0
            && (not placed.(b.fall))
            && (not blocks.(b.fall).cold)
            && reach.(b.fall)
          then chain b.fall
        | Tjump l -> (
          match target_of l with
          | Some t when (not placed.(t)) && (not blocks.(t).cold) && reach.(t) ->
            chain t
          | _ -> ())
        | Texit -> ()
      in
      let rec seeds i =
        if i < nb then begin
          if (not placed.(i)) && (not blocks.(i).cold) && reach.(i) then chain i;
          seeds (i + 1)
        end
      in
      chain 0;
      seeds 0;
      (* cold blocks afterwards, original order *)
      Array.iter
        (fun b -> if b.cold && reach.(b.idx) && not placed.(b.idx) then place b.idx)
        blocks;
      let order = Array.of_list (List.rev !order) in
      (* Emit with fallthrough fixups. *)
      let ensure_label i =
        let b = blocks.(i) in
        match b.labels with
        | l :: _ -> l
        | [] ->
          let l = fresh_label () in
          b.labels <- [ l ];
          l
      in
      (* Pass 1: decide per-block trailing jump (may add labels to blocks
         not yet emitted, so this must finish before emission starts). *)
      let trailing = Array.make nb None in
      Array.iteri
        (fun pos i ->
          let b = blocks.(i) in
          let next = if pos + 1 < Array.length order then order.(pos + 1) else -1 in
          match b.term with
          | Texit -> ()
          | Tjump l -> (
            (* drop the jump when the target is next *)
            match target_of l with
            | Some t when t = next -> ()
            | _ -> trailing.(i) <- Some (I.J l))
          | Tfall | Tcond _ ->
            if b.fall >= 0 && b.fall <> next then
              trailing.(i) <- Some (I.J (ensure_label b.fall)))
        order;
      (* Pass 2: emit. *)
      let out = ref [] in
      let emit x = out := x :: !out in
      Array.iter
        (fun i ->
          let b = blocks.(i) in
          List.iter (fun l -> emit (P.Label l)) b.labels;
          List.iter emit b.body;
          match trailing.(i) with Some j -> emit (P.Ins j) | None -> ())
        order;
      List.rev !out
    end
