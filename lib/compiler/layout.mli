(** Basic-block layout optimization — and the Fig. 9 hazard.

    Like GCC's block reordering, this pass chains basic blocks along their
    fallthrough/jump edges (dropping jumps to the next block) and sinks
    {e cold} blocks — blocks reachable only through taken conditional
    branches, e.g. else-branches — to the end of the function.

    The pass is correct for serial code, but when a cold block belongs to a
    spawn-join region it ends up after the [jr $ra] return, outside the
    broadcast segment (paper Fig. 9a): TCUs cannot fetch it.  {!Postpass}
    detects and repairs exactly this situation, as the paper's
    SableCC-based post-pass does (Fig. 9b). *)

(** Reorder the items of one function (first item must be its entry
    label). *)
val run : Isa.Program.item list -> Isa.Program.item list

(** Rewind this domain's fall-through label counter.  Called once per
    program (from {!Codegen.gen_program}) so label numbering — and hence
    the emitted assembly — does not depend on how many compiles this
    domain ran before. *)
val reset_labels : unit -> unit
