open Xmtc
module T = Tast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type slot =
  | Sreg of Ir.vreg
  | Sfreg of Ir.vfreg
  | Sframe of int  (** frame slot index (word) *)
  | Sglobal of string  (** data label *)
  | Sgreg of Isa.Reg.g  (** ps-base global *)

type fctx = {
  mutable code : Ir.instr list;  (* reversed *)
  mutable next_vreg : int;
  mutable next_vfreg : int;
  mutable next_label : int;
  mutable local_words : int;
  mutable makes_calls : bool;
  slots : (int, slot) Hashtbl.t;  (* vid -> storage *)
  fname : string;
  mutable break_lbl : string list;
  mutable continue_lbl : string list;
  mutable tid_reg : Ir.vreg option;
  mutable in_parallel : bool;
}

let new_fctx fname =
  {
    code = [];
    next_vreg = Ir.first_alloc_vreg;
    next_vfreg = 0;
    next_label = 0;
    local_words = 0;
    makes_calls = false;
    slots = Hashtbl.create 32;
    fname;
    break_lbl = [];
    continue_lbl = [];
    tid_reg = None;
    in_parallel = false;
  }

let emit c i = c.code <- i :: c.code

let fresh_vreg c =
  let r = c.next_vreg in
  c.next_vreg <- r + 1;
  r

let fresh_vfreg c =
  let r = c.next_vfreg in
  c.next_vfreg <- r + 1;
  r

let fresh_label c tag =
  let n = c.next_label in
  c.next_label <- n + 1;
  Printf.sprintf "L%s_%s%d" c.fname tag n

let frame_slot c words =
  let idx = c.local_words in
  c.local_words <- c.local_words + words;
  idx

(* Byte offset of frame slot [idx] relative to $fp. *)
let frame_off idx = -(Ir.frame_reserve_bytes + 4 + (4 * idx))

(* ------------------------------------------------------------------ *)
(* Values and lvalues *)

type rv = RVint of Ir.operand | RVflt of Ir.vfreg

type lv =
  | LVreg of Ir.vreg
  | LVfreg of Ir.vfreg
  | LVmem of Ir.vreg * int * Types.ty  (* base, offset, element type *)
  | LVgreg of Isa.Reg.g

let as_reg c = function
  | Ir.Oreg r -> r
  | Ir.Oimm k ->
    let r = fresh_vreg c in
    emit c (Ir.Imov (r, Ir.Oimm k));
    r

let rv_int = function
  | RVint op -> op
  | RVflt _ -> err "internal: expected int value, got float"

let rv_flt c = function
  | RVflt r -> r
  | RVint op ->
    (* implicit reinterpretation should not happen; conversions are explicit
       casts.  Treat as conversion for robustness. *)
    let d = fresh_vfreg c in
    emit c (Ir.Icvt_i2f (d, op));
    d

(* Map a Tast binop on ints to the IR op. *)
let int_binop = function
  | Types.Add -> Ir.Badd
  | Types.Sub -> Ir.Bsub
  | Types.Mul -> Ir.Bmul
  | Types.Div -> Ir.Bdiv
  | Types.Mod -> Ir.Brem
  | Types.Band -> Ir.Band
  | Types.Bor -> Ir.Bor
  | Types.Bxor -> Ir.Bxor
  | Types.Shl -> Ir.Bsll
  | Types.Shr -> Ir.Bsra
  | Types.Lt | Types.Le | Types.Gt | Types.Ge | Types.Eq | Types.Ne ->
    err "internal: comparison handled separately"

let relop_of = function
  | Types.Lt -> Ir.Rlt
  | Types.Le -> Ir.Rle
  | Types.Gt -> Ir.Rgt
  | Types.Ge -> Ir.Rge
  | Types.Eq -> Ir.Req
  | Types.Ne -> Ir.Rne
  | _ -> err "internal: not a comparison"

let is_cmp = function
  | Types.Lt | Types.Le | Types.Gt | Types.Ge | Types.Eq | Types.Ne -> true
  | _ -> false

let slot_of c (v : T.var) =
  match Hashtbl.find_opt c.slots v.vid with
  | Some s -> s
  | None -> err "internal: variable %s has no storage" v.vname

(* ------------------------------------------------------------------ *)

let rec lower_expr c (e : T.expr) : rv =
  match e.enode with
  | T.Eint v -> RVint (Ir.Oimm v)
  | T.Eflt f ->
    let d = fresh_vfreg c in
    emit c (Ir.Ifli (d, f));
    RVflt d
  | T.Etid -> (
    match c.tid_reg with
    | Some r -> RVint (Ir.Oreg r)
    | None -> err "internal: $ outside spawn")
  | T.Evar v -> (
    match slot_of c v with
    | Sreg r -> RVint (Ir.Oreg r)
    | Sfreg r -> RVflt r
    | Sframe idx -> (
      match v.vty with
      | Types.Tarr _ | Types.Tstruct _ ->
        (* array/struct local: value is its address *)
        let d = fresh_vreg c in
        emit c (Ir.Ibin (Ir.Badd, d, Ir.Oreg Ir.vreg_fp, Ir.Oimm (frame_off idx)));
        RVint (Ir.Oreg d)
      | Types.Tfloat ->
        let d = fresh_vfreg c in
        emit c (Ir.Ifld (d, Ir.vreg_fp, frame_off idx));
        RVflt d
      | _ ->
        let d = fresh_vreg c in
        emit c (Ir.Ild (Ir.Ld_normal, d, Ir.vreg_fp, frame_off idx));
        RVint (Ir.Oreg d))
    | Sglobal lbl -> (
      let a = fresh_vreg c in
      emit c (Ir.Ila (a, lbl));
      match v.vty with
      | Types.Tarr _ | Types.Tstruct _ -> RVint (Ir.Oreg a)
      | Types.Tfloat ->
        let d = fresh_vfreg c in
        emit c (Ir.Ifld (d, a, 0));
        RVflt d
      | _ ->
        let d = fresh_vreg c in
        emit c (Ir.Ild (Ir.Ld_normal, d, a, 0));
        RVint (Ir.Oreg d))
    | Sgreg g ->
      let d = fresh_vreg c in
      emit c (Ir.Imfg (d, g));
      RVint (Ir.Oreg d))
  | T.Eunop (Types.Neg, a) -> (
    match lower_expr c a with
    | RVint op ->
      let d = fresh_vreg c in
      emit c (Ir.Ibin (Ir.Bsub, d, Ir.Oimm 0, op));
      RVint (Ir.Oreg d)
    | RVflt r ->
      let d = fresh_vfreg c in
      emit c (Ir.Ifun (Ir.FUneg, d, r));
      RVflt d)
  | T.Eunop (Types.Bnot, a) ->
    let op = rv_int (lower_expr c a) in
    let d = fresh_vreg c in
    emit c (Ir.Ibin (Ir.Bnor, d, op, Ir.Oimm 0));
    RVint (Ir.Oreg d)
  | T.Elognot a ->
    let op = rv_int (lower_expr c a) in
    let d = fresh_vreg c in
    emit c (Ir.Iset (Ir.Req, d, op, Ir.Oimm 0));
    RVint (Ir.Oreg d)
  | T.Ebinop (op, a, b) when is_cmp op -> (
    match (lower_expr c a, lower_expr c b) with
    | RVint x, RVint y ->
      let d = fresh_vreg c in
      emit c (Ir.Iset (relop_of op, d, x, y));
      RVint (Ir.Oreg d)
    | ra, rb ->
      let x = rv_flt c ra and y = rv_flt c rb in
      let d = fresh_vreg c in
      emit c (Ir.Ifcmp (relop_of op, d, x, y));
      RVint (Ir.Oreg d))
  | T.Ebinop (op, a, b) -> (
    match e.ety with
    | Types.Tfloat ->
      let x = rv_flt c (lower_expr c a) in
      let y = rv_flt c (lower_expr c b) in
      let d = fresh_vfreg c in
      let fop =
        match op with
        | Types.Add -> Ir.FBadd
        | Types.Sub -> Ir.FBsub
        | Types.Mul -> Ir.FBmul
        | Types.Div -> Ir.FBdiv
        | _ -> err "invalid float operation"
      in
      emit c (Ir.Ifbin (fop, d, x, y));
      RVflt d
    | _ ->
      let x = rv_int (lower_expr c a) in
      let y = rv_int (lower_expr c b) in
      let d = fresh_vreg c in
      emit c (Ir.Ibin (int_binop op, d, x, y));
      RVint (Ir.Oreg d))
  | T.Eland (a, b) ->
    let d = fresh_vreg c in
    let lfalse = fresh_label c "and_f" in
    let lend = fresh_label c "and_e" in
    lower_branch_false c a lfalse;
    lower_branch_false c b lfalse;
    emit c (Ir.Imov (d, Ir.Oimm 1));
    emit c (Ir.Ijmp lend);
    emit c (Ir.Ilabel lfalse);
    emit c (Ir.Imov (d, Ir.Oimm 0));
    emit c (Ir.Ilabel lend);
    RVint (Ir.Oreg d)
  | T.Elor (a, b) ->
    let d = fresh_vreg c in
    let ltrue = fresh_label c "or_t" in
    let lend = fresh_label c "or_e" in
    lower_branch_true c a ltrue;
    lower_branch_true c b ltrue;
    emit c (Ir.Imov (d, Ir.Oimm 0));
    emit c (Ir.Ijmp lend);
    emit c (Ir.Ilabel ltrue);
    emit c (Ir.Imov (d, Ir.Oimm 1));
    emit c (Ir.Ilabel lend);
    RVint (Ir.Oreg d)
  | T.Eassign (lhs, rhs) ->
    let lval = lower_lvalue c lhs in
    let rval = lower_expr c rhs in
    store_lv c lval rval;
    rval
  | T.Eopassign (op, lhs, rhs) ->
    let lval = lower_lvalue c lhs in
    let old = load_lv c lval in
    let rval = lower_expr c rhs in
    let result =
      match (old, rval) with
      | RVint x, RVint y ->
        let d = fresh_vreg c in
        emit c (Ir.Ibin (int_binop op, d, x, y));
        RVint (Ir.Oreg d)
      | ra, rb ->
        let x = rv_flt c ra and y = rv_flt c rb in
        let d = fresh_vfreg c in
        let fop =
          match op with
          | Types.Add -> Ir.FBadd
          | Types.Sub -> Ir.FBsub
          | Types.Mul -> Ir.FBmul
          | Types.Div -> Ir.FBdiv
          | _ -> err "invalid float op-assign"
        in
        emit c (Ir.Ifbin (fop, d, x, y));
        RVflt d
    in
    store_lv c lval result;
    result
  | T.Eincdec (op, pre, lhs) ->
    let delta = match op with Types.Incr -> 1 | Types.Decr -> -1 in
    let delta =
      match lhs.ety with Types.Tptr t -> delta * Types.sizeof t | _ -> delta
    in
    let lval = lower_lvalue c lhs in
    let old = rv_int (load_lv c lval) in
    let oldr = as_reg c old in
    let d = fresh_vreg c in
    emit c (Ir.Ibin (Ir.Badd, d, Ir.Oreg oldr, Ir.Oimm delta));
    store_lv c lval (RVint (Ir.Oreg d));
    if pre then RVint (Ir.Oreg d) else RVint (Ir.Oreg oldr)
  | T.Ecall (callee, args) -> lower_call c e.ety callee args
  | T.Ederef p ->
    let base = as_reg c (rv_int (lower_expr c p)) in
    (match e.ety with
    | Types.Tfloat ->
      let d = fresh_vfreg c in
      emit c (Ir.Ifld (d, base, 0));
      RVflt d
    | _ ->
      let d = fresh_vreg c in
      emit c (Ir.Ild (Ir.Ld_normal, d, base, 0));
      RVint (Ir.Oreg d))
  | T.Eaddr lvexp -> (
    match lower_lvalue c lvexp with
    | LVmem (base, 0, _) -> RVint (Ir.Oreg base)
    | LVmem (base, off, _) ->
      let d = fresh_vreg c in
      emit c (Ir.Ibin (Ir.Badd, d, Ir.Oreg base, Ir.Oimm off));
      RVint (Ir.Oreg d)
    | LVreg _ | LVfreg _ | LVgreg _ -> err "cannot take address of a register")
  | T.Ecast (Types.Tfloat, a) -> (
    match lower_expr c a with
    | RVflt r -> RVflt r
    | RVint op ->
      let d = fresh_vfreg c in
      emit c (Ir.Icvt_i2f (d, op));
      RVflt d)
  | T.Ecast (Types.Tint, a) -> (
    match lower_expr c a with
    | RVint op -> RVint op
    | RVflt r ->
      let d = fresh_vreg c in
      emit c (Ir.Icvt_f2i (d, r));
      RVint (Ir.Oreg d))
  | T.Ecast (_, a) -> lower_expr c a (* pointer casts are free *)
  | T.Econd (cond, a, b) -> (
    let lelse = fresh_label c "c_else" in
    let lend = fresh_label c "c_end" in
    match e.ety with
    | Types.Tfloat ->
      let d = fresh_vfreg c in
      lower_branch_false c cond lelse;
      let x = rv_flt c (lower_expr c a) in
      emit c (Ir.Ifun (Ir.FUmov, d, x));
      emit c (Ir.Ijmp lend);
      emit c (Ir.Ilabel lelse);
      let y = rv_flt c (lower_expr c b) in
      emit c (Ir.Ifun (Ir.FUmov, d, y));
      emit c (Ir.Ilabel lend);
      RVflt d
    | _ ->
      let d = fresh_vreg c in
      lower_branch_false c cond lelse;
      let x = rv_int (lower_expr c a) in
      emit c (Ir.Imov (d, x));
      emit c (Ir.Ijmp lend);
      emit c (Ir.Ilabel lelse);
      let y = rv_int (lower_expr c b) in
      emit c (Ir.Imov (d, y));
      emit c (Ir.Ilabel lend);
      RVint (Ir.Oreg d))

and lower_lvalue c (e : T.expr) : lv =
  match e.enode with
  | T.Evar v -> (
    match slot_of c v with
    | Sreg r -> LVreg r
    | Sfreg r -> LVfreg r
    | Sframe idx -> LVmem (Ir.vreg_fp, frame_off idx, e.ety)
    | Sglobal lbl ->
      let a = fresh_vreg c in
      emit c (Ir.Ila (a, lbl));
      LVmem (a, 0, e.ety)
    | Sgreg g -> LVgreg g)
  | T.Ederef p -> (
    (* fold p = base + const into an addressing-mode offset *)
    match p.enode with
    | T.Ebinop (Types.Add, base, { enode = T.Eint k; _ }) ->
      let b = as_reg c (rv_int (lower_expr c base)) in
      LVmem (b, k, e.ety)
    | _ ->
      let b = as_reg c (rv_int (lower_expr c p)) in
      LVmem (b, 0, e.ety))
  | T.Ecast (_, inner) -> lower_lvalue c inner
  | _ -> err "expression is not an lvalue"

and load_lv c = function
  | LVreg r -> RVint (Ir.Oreg r)
  | LVfreg r -> RVflt r
  | LVgreg g ->
    let d = fresh_vreg c in
    emit c (Ir.Imfg (d, g));
    RVint (Ir.Oreg d)
  | LVmem (base, off, ty) -> (
    match ty with
    | Types.Tfloat ->
      let d = fresh_vfreg c in
      emit c (Ir.Ifld (d, base, off));
      RVflt d
    | _ ->
      let d = fresh_vreg c in
      emit c (Ir.Ild (Ir.Ld_normal, d, base, off));
      RVint (Ir.Oreg d))

and store_lv c lval rval =
  match lval with
  | LVreg r -> emit c (Ir.Imov (r, rv_int rval))
  | LVfreg r ->
    let s = rv_flt c rval in
    emit c (Ir.Ifun (Ir.FUmov, r, s))
  | LVgreg g -> emit c (Ir.Imtg (g, rv_int rval))
  | LVmem (base, off, ty) -> (
    match ty with
    | Types.Tfloat ->
      let s = rv_flt c rval in
      emit c (Ir.Ifst (s, base, off))
    | _ ->
      let s = as_reg c (rv_int rval) in
      emit c (Ir.Ist (Ir.St_blocking, s, base, off)))

(* Branch to [lbl] when [e] is false / true. *)
and lower_branch_false c (e : T.expr) lbl =
  match e.enode with
  | T.Ebinop (op, a, b) when is_cmp op -> (
    match (lower_expr c a, lower_expr c b) with
    | RVint x, RVint y ->
      let inv =
        match relop_of op with
        | Ir.Req -> Ir.Rne | Ir.Rne -> Ir.Req | Ir.Rlt -> Ir.Rge
        | Ir.Rge -> Ir.Rlt | Ir.Rle -> Ir.Rgt | Ir.Rgt -> Ir.Rle
      in
      emit c (Ir.Icjump (inv, x, y, lbl))
    | ra, rb ->
      let x = rv_flt c ra and y = rv_flt c rb in
      let d = fresh_vreg c in
      emit c (Ir.Ifcmp (relop_of op, d, x, y));
      emit c (Ir.Icjump (Ir.Req, Ir.Oreg d, Ir.Oimm 0, lbl)))
  | T.Elognot a -> lower_branch_true c a lbl
  | T.Eland (a, b) ->
    lower_branch_false c a lbl;
    lower_branch_false c b lbl
  | T.Elor (a, b) ->
    let lcont = fresh_label c "orf" in
    lower_branch_true c a lcont;
    lower_branch_false c b lbl;
    emit c (Ir.Ilabel lcont)
  | _ ->
    let v = rv_int (lower_expr c e) in
    emit c (Ir.Icjump (Ir.Req, v, Ir.Oimm 0, lbl))

and lower_branch_true c (e : T.expr) lbl =
  match e.enode with
  | T.Ebinop (op, a, b) when is_cmp op -> (
    match (lower_expr c a, lower_expr c b) with
    | RVint x, RVint y -> emit c (Ir.Icjump (relop_of op, x, y, lbl))
    | ra, rb ->
      let x = rv_flt c ra and y = rv_flt c rb in
      let d = fresh_vreg c in
      emit c (Ir.Ifcmp (relop_of op, d, x, y));
      emit c (Ir.Icjump (Ir.Rne, Ir.Oreg d, Ir.Oimm 0, lbl)))
  | T.Elognot a -> lower_branch_false c a lbl
  | T.Elor (a, b) ->
    lower_branch_true c a lbl;
    lower_branch_true c b lbl
  | T.Eland (a, b) ->
    let lcont = fresh_label c "andt" in
    lower_branch_false c a lcont;
    lower_branch_true c b lbl;
    emit c (Ir.Ilabel lcont)
  | _ ->
    let v = rv_int (lower_expr c e) in
    emit c (Ir.Icjump (Ir.Rne, v, Ir.Oimm 0, lbl))

and lower_call c ret_ty callee (args : T.expr list) : rv =
  match callee with
  | T.Cbuiltin b -> lower_builtin c b args
  | T.Cuser name ->
    c.makes_calls <- true;
    let lowered =
      List.map
        (fun (a : T.expr) ->
          match lower_expr c a with
          | RVint op -> Ir.Aint op
          | RVflt r -> Ir.Aflt r)
        args
    in
    let n_int = List.length (List.filter (function Ir.Aint _ -> true | _ -> false) lowered) in
    let n_flt = List.length lowered - n_int in
    if n_int > 4 then err "call to %s: more than 4 integer arguments" name;
    if n_flt > 4 then err "call to %s: more than 4 float arguments" name;
    (match ret_ty with
    | Types.Tfloat ->
      let d = fresh_vfreg c in
      emit c (Ir.Icall (Ir.Dflt d, name, lowered));
      RVflt d
    | Types.Tvoid ->
      emit c (Ir.Icall (Ir.Dnone, name, lowered));
      RVint (Ir.Oimm 0)
    | _ ->
      let d = fresh_vreg c in
      emit c (Ir.Icall (Ir.Dint d, name, lowered));
      RVint (Ir.Oreg d))

and lower_builtin c b (args : T.expr list) : rv =
  let one () = match args with [ a ] -> a | _ -> err "builtin arity" in
  match b with
  | T.Bprint_int ->
    let v = rv_int (lower_expr c (one ())) in
    emit c (Ir.Isys (Isa.Instr.Print_int, Ir.Aint v));
    RVint (Ir.Oimm 0)
  | T.Bprint_char ->
    let v = rv_int (lower_expr c (one ())) in
    emit c (Ir.Isys (Isa.Instr.Print_char, Ir.Aint v));
    RVint (Ir.Oimm 0)
  | T.Bprint_string ->
    let v = rv_int (lower_expr c (one ())) in
    emit c (Ir.Isys (Isa.Instr.Print_str, Ir.Aint v));
    RVint (Ir.Oimm 0)
  | T.Bprint_float ->
    let v = rv_flt c (lower_expr c (one ())) in
    emit c (Ir.Isys (Isa.Instr.Print_float, Ir.Aflt v));
    RVint (Ir.Oimm 0)
  | T.Bsqrtf ->
    let v = rv_flt c (lower_expr c (one ())) in
    let d = fresh_vfreg c in
    emit c (Ir.Ifun (Ir.FUsqrt, d, v));
    RVflt d
  | T.Bfabsf ->
    let v = rv_flt c (lower_expr c (one ())) in
    let d = fresh_vfreg c in
    emit c (Ir.Ifun (Ir.FUabs, d, v));
    RVflt d
  | T.Babs ->
    (* branchless: m = x >> 31; (x ^ m) - m *)
    let x = as_reg c (rv_int (lower_expr c (one ()))) in
    let m = fresh_vreg c in
    let t = fresh_vreg c in
    let d = fresh_vreg c in
    emit c (Ir.Ibin (Ir.Bsra, m, Ir.Oreg x, Ir.Oimm 31));
    emit c (Ir.Ibin (Ir.Bxor, t, Ir.Oreg x, Ir.Oreg m));
    emit c (Ir.Ibin (Ir.Bsub, d, Ir.Oreg t, Ir.Oreg m));
    RVint (Ir.Oreg d)
  | T.Bro ->
    let base = as_reg c (rv_int (lower_expr c (one ()))) in
    let d = fresh_vreg c in
    emit c (Ir.Ild (Ir.Ld_ro, d, base, 0));
    RVint (Ir.Oreg d)
  | T.Bmalloc ->
    (* inline bump allocation from the serial heap *)
    if c.in_parallel then err "malloc in parallel code";
    let n = as_reg c (rv_int (lower_expr c (one ()))) in
    let h = fresh_vreg c in
    let p = fresh_vreg c in
    let sz = fresh_vreg c in
    let sz' = fresh_vreg c in
    let np = fresh_vreg c in
    emit c (Ir.Ila (h, "__heap_ptr"));
    emit c (Ir.Ild (Ir.Ld_normal, p, h, 0));
    emit c (Ir.Ibin (Ir.Badd, sz, Ir.Oreg n, Ir.Oimm 3));
    emit c (Ir.Ibin (Ir.Band, sz', Ir.Oreg sz, Ir.Oimm (-4)));
    emit c (Ir.Ibin (Ir.Badd, np, Ir.Oreg p, Ir.Oreg sz'));
    emit c (Ir.Ist (Ir.St_blocking, np, h, 0));
    RVint (Ir.Oreg p)

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec lower_stmt c (s : T.stmt) : unit =
  match s with
  | T.Sskip -> ()
  | T.Sloc line -> emit c (Ir.Iloc line)
  | T.Sexpr e -> ignore (lower_expr c e)
  | T.Sdecl (v, init) ->
    let slot =
      match v.vty with
      | Types.Tarr (_, _) | Types.Tstruct _ ->
        if c.in_parallel then err "array/struct local in parallel code";
        Sframe (frame_slot c (Types.sizeof v.vty / 4))
      | Types.Tfloat ->
        if v.vaddr_taken then Sframe (frame_slot c 1) else Sfreg (fresh_vfreg c)
      | _ ->
        if v.vaddr_taken then begin
          if c.in_parallel then err "address-taken local in parallel code";
          Sframe (frame_slot c 1)
        end
        else Sreg (fresh_vreg c)
    in
    Hashtbl.replace c.slots v.vid slot;
    (match init with
    | None -> ()
    | Some e ->
      let rval = lower_expr c e in
      let lval =
        match slot with
        | Sreg r -> LVreg r
        | Sfreg r -> LVfreg r
        | Sframe idx -> LVmem (Ir.vreg_fp, frame_off idx, Types.decay v.vty)
        | Sglobal _ | Sgreg _ -> err "internal: local with global storage"
      in
      store_lv c lval rval)
  | T.Sblock ss -> List.iter (lower_stmt c) ss
  | T.Sif (cond, a, T.Sskip) ->
    let lend = fresh_label c "if_end" in
    lower_branch_false c cond lend;
    lower_stmt c a;
    emit c (Ir.Ilabel lend)
  | T.Sif (cond, a, b) ->
    let lelse = fresh_label c "if_else" in
    let lend = fresh_label c "if_end" in
    lower_branch_false c cond lelse;
    lower_stmt c a;
    emit c (Ir.Ijmp lend);
    emit c (Ir.Ilabel lelse);
    lower_stmt c b;
    emit c (Ir.Ilabel lend)
  | T.Swhile (cond, body) ->
    let lhead = fresh_label c "wh" in
    let lend = fresh_label c "wh_end" in
    emit c (Ir.Ilabel lhead);
    lower_branch_false c cond lend;
    c.break_lbl <- lend :: c.break_lbl;
    c.continue_lbl <- lhead :: c.continue_lbl;
    lower_stmt c body;
    c.break_lbl <- List.tl c.break_lbl;
    c.continue_lbl <- List.tl c.continue_lbl;
    emit c (Ir.Ijmp lhead);
    emit c (Ir.Ilabel lend)
  | T.Sdowhile (body, cond) ->
    let lhead = fresh_label c "do" in
    let lcond = fresh_label c "do_c" in
    let lend = fresh_label c "do_end" in
    emit c (Ir.Ilabel lhead);
    c.break_lbl <- lend :: c.break_lbl;
    c.continue_lbl <- lcond :: c.continue_lbl;
    lower_stmt c body;
    c.break_lbl <- List.tl c.break_lbl;
    c.continue_lbl <- List.tl c.continue_lbl;
    emit c (Ir.Ilabel lcond);
    lower_branch_true c cond lhead;
    emit c (Ir.Ilabel lend)
  | T.Sfor (init, cond, post, body) ->
    let lhead = fresh_label c "for" in
    let lpost = fresh_label c "for_p" in
    let lend = fresh_label c "for_end" in
    lower_stmt c init;
    emit c (Ir.Ilabel lhead);
    (match cond with Some e -> lower_branch_false c e lend | None -> ());
    c.break_lbl <- lend :: c.break_lbl;
    c.continue_lbl <- lpost :: c.continue_lbl;
    lower_stmt c body;
    c.break_lbl <- List.tl c.break_lbl;
    c.continue_lbl <- List.tl c.continue_lbl;
    emit c (Ir.Ilabel lpost);
    lower_stmt c post;
    emit c (Ir.Ijmp lhead);
    emit c (Ir.Ilabel lend)
  | T.Sreturn None -> emit c (Ir.Iret None)
  | T.Sreturn (Some e) -> (
    match lower_expr c e with
    | RVint op -> emit c (Ir.Iret (Some (Ir.Aint op)))
    | RVflt r -> emit c (Ir.Iret (Some (Ir.Aflt r))))
  | T.Sbreak -> (
    match c.break_lbl with
    | l :: _ -> emit c (Ir.Ijmp l)
    | [] -> err "break outside loop")
  | T.Scontinue -> (
    match c.continue_lbl with
    | l :: _ -> emit c (Ir.Ijmp l)
    | [] -> err "continue outside loop")
  | T.Sspawn sp -> lower_spawn c sp
  | T.Sps (v, b) -> (
    let greg =
      match Hashtbl.find_opt c.slots b.vid with
      | Some (Sgreg g) -> g
      | _ -> err "ps base %s is not a global register" b.vname
    in
    match slot_of c v with
    | Sreg r -> emit c (Ir.Ips (r, greg))
    | Sframe idx ->
      let r = fresh_vreg c in
      emit c (Ir.Ild (Ir.Ld_normal, r, Ir.vreg_fp, frame_off idx));
      emit c (Ir.Ips (r, greg));
      emit c (Ir.Ist (Ir.St_blocking, r, Ir.vreg_fp, frame_off idx))
    | _ -> err "ps increment must be an int variable")
  | T.Spsm (v, addr) -> (
    let base = as_reg c (rv_int (lower_expr c addr)) in
    match slot_of c v with
    | Sreg r -> emit c (Ir.Ipsm (r, base, 0))
    | Sframe idx ->
      let r = fresh_vreg c in
      emit c (Ir.Ild (Ir.Ld_normal, r, Ir.vreg_fp, frame_off idx));
      emit c (Ir.Ipsm (r, base, 0));
      emit c (Ir.Ist (Ir.St_blocking, r, Ir.vreg_fp, frame_off idx))
    | _ -> err "psm increment must be an int variable")

and lower_spawn c (sp : T.spawn) : unit =
  if c.in_parallel then begin
    (* Nested spawn: serialized into a loop over the range (§IV-E). *)
    let lo = rv_int (lower_expr c sp.sp_lo) in
    let hi = as_reg c (rv_int (lower_expr c sp.sp_hi)) in
    let tid = fresh_vreg c in
    emit c (Ir.Imov (tid, lo));
    let lhead = fresh_label c "nsp" in
    let lend = fresh_label c "nsp_end" in
    emit c (Ir.Ilabel lhead);
    emit c (Ir.Icjump (Ir.Rgt, Ir.Oreg tid, Ir.Oreg hi, lend));
    let saved_tid = c.tid_reg in
    c.tid_reg <- Some tid;
    lower_stmt c sp.sp_body;
    c.tid_reg <- saved_tid;
    emit c (Ir.Ibin (Ir.Badd, tid, Ir.Oreg tid, Ir.Oimm 1));
    emit c (Ir.Ijmp lhead);
    emit c (Ir.Ilabel lend)
  end
  else begin
    let lo = rv_int (lower_expr c sp.sp_lo) in
    let hi = rv_int (lower_expr c sp.sp_hi) in
    emit c (Ir.Ispawn (lo, hi));
    let ldisp = fresh_label c "disp" in
    emit c (Ir.Ilabel ldisp);
    let tid = fresh_vreg c in
    emit c (Ir.Imov (tid, Ir.Oimm 1));
    emit c (Ir.Ips (tid, Isa.Reg.g_spawn));
    emit c (Ir.Ichkid tid);
    c.in_parallel <- true;
    c.tid_reg <- Some tid;
    lower_stmt c sp.sp_body;
    c.tid_reg <- None;
    c.in_parallel <- false;
    emit c (Ir.Ijmp ldisp);
    emit c (Ir.Ijoin)
  end

(* ------------------------------------------------------------------ *)

let lower_func ~global_slots (f : T.func) : Ir.func =
  let c = new_fctx f.fname in
  Hashtbl.iter (fun k v -> Hashtbl.replace c.slots k v) global_slots;
  (* Parameters: fresh vregs/vfregs, recorded for the calling convention. *)
  let params_int = ref [] in
  let params_flt = ref [] in
  List.iter
    (fun (p : T.var) ->
      match p.vty with
      | Types.Tfloat ->
        let r = fresh_vfreg c in
        params_flt := r :: !params_flt;
        if p.vaddr_taken then begin
          let idx = frame_slot c 1 in
          Hashtbl.replace c.slots p.vid (Sframe idx)
        end
        else Hashtbl.replace c.slots p.vid (Sfreg r)
      | _ ->
        let r = fresh_vreg c in
        params_int := r :: !params_int;
        if p.vaddr_taken then begin
          let idx = frame_slot c 1 in
          Hashtbl.replace c.slots p.vid (Sframe idx)
        end
        else Hashtbl.replace c.slots p.vid (Sreg r))
    f.fparams;
  (* Spill address-taken params into their frame slot at entry. *)
  let pi = ref (List.rev !params_int) and pf = ref (List.rev !params_flt) in
  List.iter
    (fun (p : T.var) ->
      match (p.vty, Hashtbl.find_opt c.slots p.vid) with
      | Types.Tfloat, Some (Sframe idx) ->
        let r = List.hd !pf in
        pf := List.tl !pf;
        emit c (Ir.Ifst (r, Ir.vreg_fp, frame_off idx))
      | Types.Tfloat, _ -> pf := List.tl !pf
      | _, Some (Sframe idx) ->
        let r = List.hd !pi in
        pi := List.tl !pi;
        emit c (Ir.Ist (Ir.St_blocking, r, Ir.vreg_fp, frame_off idx))
      | _, _ -> pi := List.tl !pi)
    f.fparams;
  lower_stmt c f.fbody;
  (* implicit return *)
  emit c (Ir.Iret (if f.fret = Types.Tvoid then None else Some (Ir.Aint (Ir.Oimm 0))));
  {
    Ir.name = f.fname;
    body = List.rev c.code;
    next_vreg = c.next_vreg;
    next_vfreg = c.next_vfreg;
    params_int = List.rev !params_int;
    params_flt = List.rev !params_flt;
    is_spawn_func = f.fis_outlined_spawn;
    ret_float = (f.fret = Types.Tfloat);
    local_words = c.local_words;
    makes_calls = c.makes_calls;
  }

let data_of_global ((v : T.var), init) =
  let words = max 1 (Types.sizeof v.vty / 4) in
  let payload =
    match (init, v.vty) with
    | T.Czeros, _ -> Isa.Program.Space words
    | T.Cints xs, _ ->
      let pad = words - List.length xs in
      Isa.Program.Words (xs @ List.init (max 0 pad) (fun _ -> 0))
    | T.Cflts xs, _ ->
      let pad = words - List.length xs in
      Isa.Program.Floats (xs @ List.init (max 0 pad) (fun _ -> 0.0))
  in
  { Isa.Program.dlabel = v.vname; payload }

let run (p : T.program) : Ir.program =
  (* Assign storage to globals: ps bases -> $g registers, rest -> data. *)
  let global_slots = Hashtbl.create 64 in
  let ps_regs = ref [] in
  let next_g = ref 0 in
  let data = ref [] in
  List.iter
    (fun ((v : T.var), init) ->
      if v.vps_base then begin
        if !next_g >= Isa.Reg.g_spawn then err "too many ps base variables";
        let g = !next_g in
        incr next_g;
        let init_val =
          match init with T.Cints [ x ] -> x | T.Czeros -> 0 | _ -> 0
        in
        ps_regs := (v.vname, g, init_val) :: !ps_regs;
        Hashtbl.replace global_slots v.vid (Sgreg g)
      end
      else begin
        Hashtbl.replace global_slots v.vid (Sglobal v.vname);
        data := data_of_global (v, init) :: !data
      end)
    p.globals;
  (* Heap pointer word: patched by the driver once the layout is known. *)
  data := { Isa.Program.dlabel = "__heap_ptr"; payload = Isa.Program.Words [ 0 ] } :: !data;
  let funcs = List.map (lower_func ~global_slots) p.funcs in
  { Ir.funcs; data = List.rev !data; ps_regs = List.rev !ps_regs }
