module IMap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Local value numbering state: constants, copies, available expressions. *)

type expr_key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Kset of Ir.relop * Ir.operand * Ir.operand
  | Kla of string

module EMap = Map.Make (struct
  type t = expr_key

  let compare = compare
end)

type state = {
  mutable consts : int IMap.t;  (* vreg -> known constant *)
  mutable copies : int IMap.t;  (* vreg -> source vreg *)
  mutable avail : int EMap.t;  (* expression -> vreg holding it *)
}

let empty_state () = { consts = IMap.empty; copies = IMap.empty; avail = EMap.empty }

(* invalidate everything that mentions [d] *)
let kill st d =
  st.consts <- IMap.remove d st.consts;
  st.copies <- IMap.filter (fun k src -> k <> d && src <> d) st.copies;
  st.avail <-
    EMap.filter
      (fun k v ->
        v <> d
        &&
        match k with
        | Kbin (_, a, b) | Kset (_, a, b) ->
          a <> Ir.Oreg d && b <> Ir.Oreg d
        | Kla _ -> true)
      st.avail

let subst_operand st = function
  | Ir.Oimm _ as o -> o
  | Ir.Oreg r as o -> (
    match IMap.find_opt r st.consts with
    | Some k -> Ir.Oimm k
    | None -> (
      match IMap.find_opt r st.copies with Some src -> Ir.Oreg src | None -> o))

let subst_reg st r =
  match IMap.find_opt r st.copies with Some src -> src | None -> r

let eval_bin op a b =
  match op with
  | Ir.Badd -> Some (Isa.Value.wrap32 (a + b))
  | Ir.Bsub -> Some (Isa.Value.wrap32 (a - b))
  | Ir.Bmul -> Some (Isa.Value.wrap32 (a * b))
  | Ir.Bdiv -> if b = 0 then None else Some (a / b)
  | Ir.Brem -> if b = 0 then None else Some (a mod b)
  | Ir.Band -> Some (a land b)
  | Ir.Bor -> Some (a lor b)
  | Ir.Bxor -> Some (Isa.Value.wrap32 (a lxor b))
  | Ir.Bnor -> Some (Isa.Value.wrap32 (lnot (a lor b)))
  | Ir.Bsll -> Some (Isa.Value.wrap32 (a lsl (b land 31)))
  | Ir.Bsrl -> Some ((a land 0xFFFFFFFF) lsr (b land 31))
  | Ir.Bsra -> Some (a asr (b land 31))

let eval_rel op a b =
  let r =
    match op with
    | Ir.Req -> a = b
    | Ir.Rne -> a <> b
    | Ir.Rlt -> a < b
    | Ir.Rle -> a <= b
    | Ir.Rgt -> a > b
    | Ir.Rge -> a >= b
  in
  Bool.to_int r

(* algebraic identities; returns simplified instruction *)
let simplify_bin op d a b =
  match (op, a, b) with
  | Ir.Badd, x, Ir.Oimm 0 | Ir.Badd, Ir.Oimm 0, x -> Ir.Imov (d, x)
  | Ir.Bsub, x, Ir.Oimm 0 -> Ir.Imov (d, x)
  | Ir.Bmul, _, Ir.Oimm 0 | Ir.Bmul, Ir.Oimm 0, _ -> Ir.Imov (d, Ir.Oimm 0)
  | Ir.Bmul, x, Ir.Oimm 1 | Ir.Bmul, Ir.Oimm 1, x -> Ir.Imov (d, x)
  | (Ir.Bsll | Ir.Bsrl | Ir.Bsra), x, Ir.Oimm 0 -> Ir.Imov (d, x)
  | Ir.Bmul, x, Ir.Oimm k when k > 0 && k land (k - 1) = 0 ->
    (* strength reduction: multiply by power of two *)
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    Ir.Ibin (Ir.Bsll, d, x, Ir.Oimm (log2 k 0))
  | Ir.Bdiv, x, Ir.Oimm 1 -> Ir.Imov (d, x)
  | _ -> Ir.Ibin (op, d, a, b)

(* One local pass over a block's instructions. *)
let local_pass ~cse instrs =
  let st = empty_state () in
  let out = ref [] in
  let emit i = out := i :: !out in
  List.iter
    (fun i ->
      match i with
      | Ir.Ilabel _ ->
        (* new block: reset *)
        st.consts <- IMap.empty;
        st.copies <- IMap.empty;
        st.avail <- EMap.empty;
        emit i
      | Ir.Imov (d, s) -> (
        let s = subst_operand st s in
        kill st d;
        match s with
        | Ir.Oimm k ->
          st.consts <- IMap.add d k st.consts;
          emit (Ir.Imov (d, s))
        | Ir.Oreg r ->
          if r <> d then st.copies <- IMap.add d r st.copies;
          emit (Ir.Imov (d, s)))
      | Ir.Ibin (op, d, a, b) -> (
        let a = subst_operand st a and b = subst_operand st b in
        match (a, b) with
        | Ir.Oimm x, Ir.Oimm y when eval_bin op x y <> None ->
          let k = Option.get (eval_bin op x y) in
          kill st d;
          st.consts <- IMap.add d k st.consts;
          emit (Ir.Imov (d, Ir.Oimm k))
        | _ -> (
          let simplified = simplify_bin op d a b in
          match simplified with
          | Ir.Imov (d, s) -> (
            kill st d;
            match s with
            | Ir.Oimm k ->
              st.consts <- IMap.add d k st.consts;
              emit simplified
            | Ir.Oreg r ->
              if r <> d then st.copies <- IMap.add d r st.copies;
              emit simplified)
          | Ir.Ibin (op', d', a', b') ->
            let key = Kbin (op', a', b') in
            (match (cse, EMap.find_opt key st.avail) with
            | true, Some src when src <> d' ->
              kill st d';
              st.copies <- IMap.add d' src st.copies;
              emit (Ir.Imov (d', Ir.Oreg src))
            | _ ->
              kill st d';
              if cse then st.avail <- EMap.add key d' st.avail;
              emit (Ir.Ibin (op', d', a', b')))
          | other -> emit other))
      | Ir.Iset (r, d, a, b) -> (
        let a = subst_operand st a and b = subst_operand st b in
        match (a, b) with
        | Ir.Oimm x, Ir.Oimm y ->
          let k = eval_rel r x y in
          kill st d;
          st.consts <- IMap.add d k st.consts;
          emit (Ir.Imov (d, Ir.Oimm k))
        | _ ->
          let key = Kset (r, a, b) in
          (match (cse, EMap.find_opt key st.avail) with
          | true, Some src when src <> d ->
            kill st d;
            st.copies <- IMap.add d src st.copies;
            emit (Ir.Imov (d, Ir.Oreg src))
          | _ ->
            kill st d;
            if cse then st.avail <- EMap.add key d st.avail;
            emit (Ir.Iset (r, d, a, b))))
      | Ir.Ila (d, l) -> (
        let key = Kla l in
        match (cse, EMap.find_opt key st.avail) with
        | true, Some src when src <> d ->
          kill st d;
          st.copies <- IMap.add d src st.copies;
          emit (Ir.Imov (d, Ir.Oreg src))
        | _ ->
          kill st d;
          if cse then st.avail <- EMap.add key d st.avail;
          emit i)
      | Ir.Icjump (r, a, b, l) -> (
        let a = subst_operand st a and b = subst_operand st b in
        match (a, b) with
        | Ir.Oimm x, Ir.Oimm y ->
          if eval_rel r x y = 1 then emit (Ir.Ijmp l) (* else: branch never taken *)
        | _ -> emit (Ir.Icjump (r, a, b, l)))
      | Ir.Ild (m, d, base, off) ->
        let base = subst_reg st base in
        kill st d;
        emit (Ir.Ild (m, d, base, off))
      | Ir.Ist (m, s, base, off) ->
        emit (Ir.Ist (m, subst_reg st s, subst_reg st base, off))
      | Ir.Ifld (d, base, off) -> emit (Ir.Ifld (d, subst_reg st base, off))
      | Ir.Ifst (s, base, off) -> emit (Ir.Ifst (s, subst_reg st base, off))
      | Ir.Ipref (base, off) -> emit (Ir.Ipref (subst_reg st base, off))
      | Ir.Ipsm (r, base, off) ->
        kill st r;
        emit (Ir.Ipsm (r, subst_reg st base, off))
      | Ir.Ips (r, g) ->
        kill st r;
        emit (Ir.Ips (r, g))
      | Ir.Icall (dst, name, args) ->
        let args =
          List.map
            (function
              | Ir.Aint op -> Ir.Aint (subst_operand st op)
              | Ir.Aflt r -> Ir.Aflt r)
            args
        in
        (match dst with Ir.Dint d -> kill st d | Ir.Dflt _ | Ir.Dnone -> ());
        emit (Ir.Icall (dst, name, args))
      | Ir.Imfg (d, g) ->
        kill st d;
        emit (Ir.Imfg (d, g))
      | Ir.Imtg (g, s) -> emit (Ir.Imtg (g, subst_operand st s))
      | Ir.Isys (op, Ir.Aint a) -> emit (Ir.Isys (op, Ir.Aint (subst_operand st a)))
      | Ir.Iret (Some (Ir.Aint a)) -> emit (Ir.Iret (Some (Ir.Aint (subst_operand st a))))
      | Ir.Ispawn (a, b) -> emit (Ir.Ispawn (subst_operand st a, subst_operand st b))
      | Ir.Icvt_i2f (d, s) -> emit (Ir.Icvt_i2f (d, subst_operand st s))
      | Ir.Icvt_f2i (d, s) ->
        kill st d;
        emit (Ir.Icvt_f2i (d, s))
      | Ir.Ifcmp (r, d, a, b) ->
        kill st d;
        emit (Ir.Ifcmp (r, d, a, b))
      | Ir.Ichkid r -> emit (Ir.Ichkid (subst_reg st r))
      | Ir.Ifbin _ | Ir.Ifun _ | Ir.Ifli _ | Ir.Ijmp _ | Ir.Iret _ | Ir.Ijoin
      | Ir.Ifence | Ir.Isys _ | Ir.Iloc _ ->
        emit i)
    instrs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Global dead-code elimination via liveness. *)

let dce (fn : Ir.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let cfg = Cfg.build fn in
    let instrs, outs, fouts = Cfg.instr_liveness cfg in
    let keep = Array.make (Array.length instrs) true in
    Array.iteri
      (fun i ins ->
        if not (Ir.has_side_effect ins) then begin
          let ds, _, fds, _ = Ir.defs_uses ins in
          let dead =
            (match ds with
            | [] -> true
            | _ -> List.for_all (fun d -> not (Cfg.VSet.mem d outs.(i))) ds)
            &&
            match fds with
            | [] -> true
            | _ -> List.for_all (fun d -> not (Cfg.VSet.mem d fouts.(i))) fds
          in
          (* keep instructions with no defs at all (shouldn't happen here) *)
          let has_defs = ds <> [] || fds <> [] in
          if dead && has_defs then begin
            keep.(i) <- false;
            changed := true
          end
        end)
      instrs;
    if !changed then begin
      let body = ref [] in
      Array.iteri (fun i ins -> if keep.(i) then body := ins :: !body) instrs;
      fn.Ir.body <- List.rev !body
    end
  done

(* Remove self-moves and jumps to the immediately-following label.  Debug
   markers are position-transparent: a jump to the next label still folds
   when only [Iloc]s sit in between. *)
let peephole instrs =
  let rec next_real = function
    | Ir.Iloc _ :: rest -> next_real rest
    | other -> other
  in
  let rec go = function
    | [] -> []
    | Ir.Imov (d, Ir.Oreg s) :: rest when d = s -> go rest
    | Ir.Ijmp l :: rest
      when (match next_real rest with
           | Ir.Ilabel l' :: _ -> l = l'
           | _ -> false) ->
      go rest
    | i :: rest -> i :: go rest
  in
  go instrs

let run ~level (fn : Ir.func) =
  if level >= 1 then begin
    let cse = level >= 2 in
    (* iterate local pass to propagate through copies *)
    fn.Ir.body <- local_pass ~cse fn.Ir.body;
    fn.Ir.body <- local_pass ~cse fn.Ir.body;
    dce fn;
    fn.Ir.body <- peephole fn.Ir.body
  end
