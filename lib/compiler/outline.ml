open Xmtc
module T = Tast

let outlined_prefix = "__outl_sp_"

(* ------------------------------------------------------------------ *)
(* Generic expression rewriting *)

let rec map_expr f (e : T.expr) : T.expr =
  let r = map_expr f in
  let e' =
    match e.enode with
    | T.Eint _ | T.Eflt _ | T.Evar _ | T.Etid -> e
    | T.Eunop (op, a) -> { e with enode = T.Eunop (op, r a) }
    | T.Elognot a -> { e with enode = T.Elognot (r a) }
    | T.Ebinop (op, a, b) -> { e with enode = T.Ebinop (op, r a, r b) }
    | T.Eland (a, b) -> { e with enode = T.Eland (r a, r b) }
    | T.Elor (a, b) -> { e with enode = T.Elor (r a, r b) }
    | T.Eassign (a, b) -> { e with enode = T.Eassign (r a, r b) }
    | T.Eopassign (op, a, b) -> { e with enode = T.Eopassign (op, r a, r b) }
    | T.Eincdec (op, pre, a) -> { e with enode = T.Eincdec (op, pre, r a) }
    | T.Ecall (c, args) -> { e with enode = T.Ecall (c, List.map r args) }
    | T.Ederef a -> { e with enode = T.Ederef (r a) }
    | T.Eaddr a -> { e with enode = T.Eaddr (r a) }
    | T.Ecast (t, a) -> { e with enode = T.Ecast (t, r a) }
    | T.Econd (a, b, c) -> { e with enode = T.Econd (r a, r b, r c) }
  in
  f e'

let rec map_stmt_exprs f (s : T.stmt) : T.stmt =
  let rs = map_stmt_exprs f in
  match s with
  | T.Sskip | T.Sbreak | T.Scontinue | T.Sloc _ -> s
  | T.Sexpr e -> T.Sexpr (map_expr f e)
  | T.Sdecl (v, init) -> T.Sdecl (v, Option.map (map_expr f) init)
  | T.Sblock ss -> T.Sblock (List.map rs ss)
  | T.Sif (c, a, b) -> T.Sif (map_expr f c, rs a, rs b)
  | T.Swhile (c, b) -> T.Swhile (map_expr f c, rs b)
  | T.Sdowhile (b, c) -> T.Sdowhile (rs b, map_expr f c)
  | T.Sfor (i, c, p, b) -> T.Sfor (rs i, Option.map (map_expr f) c, rs p, rs b)
  | T.Sreturn e -> T.Sreturn (Option.map (map_expr f) e)
  | T.Sspawn sp ->
    T.Sspawn
      {
        sp with
        sp_lo = map_expr f sp.sp_lo;
        sp_hi = map_expr f sp.sp_hi;
        sp_body = rs sp.sp_body;
      }
  | T.Sps _ -> s (* handled separately: operands must remain bare vars *)
  | T.Spsm (v, addr) -> T.Spsm (v, map_expr f addr)

(* ------------------------------------------------------------------ *)
(* Capture analysis *)

module VarSet = Set.Make (struct
  type t = T.var

  let compare a b = compare a.T.vid b.T.vid
end)

(* All variables declared anywhere inside a statement. *)
let rec declared_vars acc = function
  | T.Sdecl (v, _) -> VarSet.add v acc
  | T.Sblock ss -> List.fold_left declared_vars acc ss
  | T.Sif (_, a, b) -> declared_vars (declared_vars acc a) b
  | T.Swhile (_, b) | T.Sdowhile (b, _) -> declared_vars acc b
  | T.Sfor (i, _, p, b) -> declared_vars (declared_vars (declared_vars acc i) p) b
  | T.Sspawn sp -> declared_vars acc sp.T.sp_body
  | T.Sskip | T.Sexpr _ | T.Sreturn _ | T.Sbreak | T.Scontinue | T.Sps _
  | T.Spsm _ | T.Sloc _ ->
    acc

(* All variables used in a statement (including ps/psm operands). *)
let used_vars s =
  let from_exprs =
    T.fold_exprs (fun acc e -> T.fold_expr_vars (fun a v -> VarSet.add v a) acc e)
      VarSet.empty s
  in
  let rec extra acc = function
    | T.Sps (v, b) -> VarSet.add v (VarSet.add b acc)
    | T.Spsm (v, _) -> VarSet.add v acc
    | T.Sblock ss -> List.fold_left extra acc ss
    | T.Sif (_, a, b) -> extra (extra acc a) b
    | T.Swhile (_, b) | T.Sdowhile (b, _) -> extra acc b
    | T.Sfor (i, _, p, b) -> extra (extra (extra acc i) p) b
    | T.Sspawn sp -> extra acc sp.T.sp_body
    | T.Sskip | T.Sexpr _ | T.Sdecl _ | T.Sreturn _ | T.Sbreak | T.Scontinue
    | T.Sloc _ ->
      acc
  in
  extra from_exprs s

(* Variables that the statement may write: assignment targets that are bare
   variables, ++/--, ps/psm increments, and any variable whose address is
   taken (a write through the pointer must be assumed). *)
let written_vars s =
  let rec expr_writes acc (e : T.expr) =
    let acc =
      match e.enode with
      | T.Eassign ({ enode = T.Evar v; _ }, _)
      | T.Eopassign (_, { enode = T.Evar v; _ }, _)
      | T.Eincdec (_, _, { enode = T.Evar v; _ })
      | T.Eaddr { enode = T.Evar v; _ } ->
        VarSet.add v acc
      | _ -> acc
    in
    (* recurse into children *)
    match e.enode with
    | T.Eint _ | T.Eflt _ | T.Evar _ | T.Etid -> acc
    | T.Eunop (_, a) | T.Elognot a | T.Ederef a | T.Eaddr a | T.Ecast (_, a)
    | T.Eincdec (_, _, a) ->
      expr_writes acc a
    | T.Ebinop (_, a, b) | T.Eland (a, b) | T.Elor (a, b) | T.Eassign (a, b)
    | T.Eopassign (_, a, b) ->
      expr_writes (expr_writes acc a) b
    | T.Ecall (_, args) -> List.fold_left expr_writes acc args
    | T.Econd (a, b, c) -> expr_writes (expr_writes (expr_writes acc a) b) c
  in
  let from_exprs = T.fold_exprs expr_writes VarSet.empty s in
  let rec extra acc = function
    | T.Sps (v, b) -> VarSet.add v (VarSet.add b acc)
    | T.Spsm (v, _) -> VarSet.add v acc
    | T.Sblock ss -> List.fold_left extra acc ss
    | T.Sif (_, a, b) -> extra (extra acc a) b
    | T.Swhile (_, b) | T.Sdowhile (b, _) -> extra acc b
    | T.Sfor (i, _, p, b) -> extra (extra (extra acc i) p) b
    | T.Sspawn sp -> extra acc sp.T.sp_body
    | T.Sskip | T.Sexpr _ | T.Sdecl _ | T.Sreturn _ | T.Sbreak | T.Scontinue
    | T.Sloc _ ->
      acc
  in
  extra from_exprs s

(* ------------------------------------------------------------------ *)

type ctx = { mutable next_vid : int; mutable new_funcs : T.func list }

let fresh_var ctx ~name ~ty ~kind =
  let v =
    {
      T.vid = ctx.next_vid;
      vname = name;
      vty = ty;
      vkind = kind;
      vvolatile = false;
      vaddr_taken = false;
      vps_base = false;
      vthread_local = false;
    }
  in
  ctx.next_vid <- ctx.next_vid + 1;
  v

(* Build the outlined function for spawn [sp] and return the replacement
   call statement. *)
let outline_spawn ctx (sp : T.spawn) : T.stmt =
  let whole = T.Sspawn sp in
  let declared = declared_vars VarSet.empty whole in
  let used = used_vars whole in
  let captured =
    VarSet.filter
      (fun v ->
        (match v.T.vkind with
        | T.Kglobal -> false
        | T.Klocal | T.Kparam -> true)
        && not (VarSet.mem v declared))
      used
  in
  let written = written_vars whole in
  (* by-reference iff the spawn may write it (or take its address) *)
  let classify v = VarSet.mem v written in
  let captured = VarSet.elements captured in
  let fname = Printf.sprintf "%s%d" outlined_prefix sp.T.sp_id in
  (* Fresh parameter for each captured variable. *)
  let bindings =
    List.map
      (fun (v : T.var) ->
        let by_ref = classify v in
        let pty =
          if by_ref then Types.Tptr v.vty
          else Types.decay v.vty (* arrays decay to pointers *)
        in
        let p = fresh_var ctx ~name:v.vname ~ty:pty ~kind:T.Kparam in
        (v, p, by_ref))
      captured
  in
  let find v =
    List.find_opt (fun (v', _, _) -> v'.T.vid = v.T.vid) bindings
  in
  (* Rewrite variable references in the spawn body/bounds. *)
  let rewrite_expr =
    map_expr (fun e ->
        match e.T.enode with
        | T.Evar v -> (
          match find v with
          | None -> e
          | Some (_, p, by_ref) ->
            if by_ref then
              { e with enode = T.Ederef { ety = Types.Tptr v.vty; enode = T.Evar p } }
            else { e with enode = T.Evar p })
        | T.Eaddr { enode = T.Ederef inner; _ } ->
          (* map_expr rewrites children first, so [&x] with [x] by-reference
             arrives here as address-of-deref: fold back to the pointer *)
          inner
        | _ -> e)
  in
  (* ps/psm increments must stay bare variables: if captured by reference,
     round-trip through a thread-local temporary. *)
  let rewrite_stmt s =
    T.map_stmt
      (fun s ->
        match s with
        | T.Sps (v, b) -> (
          match find v with
          | Some (_, p, true) ->
            let tmp = fresh_var ctx ~name:("__ps_" ^ v.vname) ~ty:Types.Tint ~kind:T.Klocal in
            tmp.T.vthread_local <- true;
            let pvar = { T.ety = Types.Tptr Types.Tint; enode = T.Evar p } in
            let deref = { T.ety = Types.Tint; enode = T.Ederef pvar } in
            let tvar = { T.ety = Types.Tint; enode = T.Evar tmp } in
            T.Sblock
              [
                T.Sdecl (tmp, Some deref);
                T.Sps (tmp, b);
                T.Sexpr { ety = Types.Tint; enode = T.Eassign (deref, tvar) };
              ]
          | Some (_, _, false) | None -> s)
        | T.Spsm (v, addr) -> (
          let addr = rewrite_expr addr in
          match find v with
          | Some (_, p, true) ->
            let tmp = fresh_var ctx ~name:("__ps_" ^ v.vname) ~ty:Types.Tint ~kind:T.Klocal in
            tmp.T.vthread_local <- true;
            let pvar = { T.ety = Types.Tptr Types.Tint; enode = T.Evar p } in
            let deref = { T.ety = Types.Tint; enode = T.Ederef pvar } in
            let tvar = { T.ety = Types.Tint; enode = T.Evar tmp } in
            T.Sblock
              [
                T.Sdecl (tmp, Some deref);
                T.Spsm (tmp, addr);
                T.Sexpr { ety = Types.Tint; enode = T.Eassign (deref, tvar) };
              ]
          | Some (_, _, false) | None -> T.Spsm (v, addr))
        | other -> map_stmt_exprs (fun e -> rewrite_expr e) other)
      s
  in
  (* Note: map_stmt is bottom-up, so expression rewriting must not be
     re-applied to already-rewritten children; map_stmt_exprs only maps the
     statement's own expressions, and map_stmt recurses structurally. *)
  let body' =
    T.Sspawn
      {
        sp with
        sp_lo = rewrite_expr sp.sp_lo;
        sp_hi = rewrite_expr sp.sp_hi;
        sp_body = rewrite_stmt sp.sp_body;
      }
  in
  let func =
    {
      T.fname;
      fret = Types.Tvoid;
      fparams = List.map (fun (_, p, _) -> p) bindings;
      fbody = body';
      fis_outlined_spawn = true;
    }
  in
  ctx.new_funcs <- func :: ctx.new_funcs;
  (* The replacement call. *)
  let args =
    List.map
      (fun ((v : T.var), _, by_ref) ->
        let base = { T.ety = Types.decay v.vty; enode = T.Evar v } in
        if by_ref then begin
          v.T.vaddr_taken <- true;
          { T.ety = Types.Tptr v.vty; enode = T.Eaddr base }
        end
        else base)
      bindings
  in
  T.Sexpr { ety = Types.Tvoid; enode = T.Ecall (T.Cuser fname, args) }

(* Replace outermost spawns in a statement tree (not descending into spawn
   bodies: nested spawns are serialized later). *)
let rec replace_spawns ctx s =
  match s with
  | T.Sspawn sp -> outline_spawn ctx sp
  | T.Sblock ss -> T.Sblock (List.map (replace_spawns ctx) ss)
  | T.Sif (c, a, b) -> T.Sif (c, replace_spawns ctx a, replace_spawns ctx b)
  | T.Swhile (c, b) -> T.Swhile (c, replace_spawns ctx b)
  | T.Sdowhile (b, c) -> T.Sdowhile (replace_spawns ctx b, c)
  | T.Sfor (i, c, p, b) ->
    T.Sfor (replace_spawns ctx i, c, replace_spawns ctx p, replace_spawns ctx b)
  | T.Sskip | T.Sexpr _ | T.Sdecl _ | T.Sreturn _ | T.Sbreak | T.Scontinue
  | T.Sps _ | T.Spsm _ | T.Sloc _ ->
    s

let max_vid (p : T.program) =
  let m = ref 0 in
  let see (v : T.var) = if v.vid >= !m then m := v.vid + 1 in
  List.iter (fun (v, _) -> see v) p.globals;
  List.iter
    (fun (f : T.func) ->
      List.iter see f.fparams;
      ignore
        (T.fold_exprs
           (fun () e -> T.fold_expr_vars (fun () v -> see v) () e)
           () f.fbody);
      VarSet.iter see (declared_vars VarSet.empty f.fbody))
    p.funcs;
  !m

let run (p : T.program) : T.program =
  let ctx = { next_vid = max_vid p; new_funcs = [] } in
  List.iter
    (fun (f : T.func) ->
      if not f.T.fis_outlined_spawn then f.T.fbody <- replace_spawns ctx f.T.fbody)
    p.funcs;
  p.funcs <- p.funcs @ List.rev ctx.new_funcs;
  p
