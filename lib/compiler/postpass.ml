module I = Isa.Instr
module P = Isa.Program

exception Verify_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Verify_error s)) fmt

(* Find spawn regions as item-index pairs (spawn_idx, join_idx). *)
let regions (items : P.item array) =
  let acc = ref [] in
  let open_spawn = ref None in
  Array.iteri
    (fun i item ->
      match item with
      | P.Ins (I.Spawn _) -> (
        match !open_spawn with
        | Some j -> err "nested spawn at item %d (previous at %d)" i j
        | None -> open_spawn := Some i)
      | P.Ins I.Join -> (
        match !open_spawn with
        | Some s ->
          acc := (s, i) :: !acc;
          open_spawn := None
        | None -> err "join without spawn at item %d" i)
      | _ -> ())
    items;
  (match !open_spawn with
  | Some s -> err "spawn at item %d has no matching join" s
  | None -> ());
  List.rev !acc

let labels_in (items : P.item array) lo hi =
  let set = Hashtbl.create 16 in
  for i = lo to hi do
    match items.(i) with
    | P.Label l -> Hashtbl.replace set l ()
    | P.Ins _ | P.Comment _ | P.Loc _ -> ()
  done;
  set

(* The block starting at label [l]: from its Label item up to and including
   the next unconditional transfer (j/jr/halt). *)
let block_of_label (items : P.item array) l =
  let n = Array.length items in
  let start = ref (-1) in
  (try
     for i = 0 to n - 1 do
       if items.(i) = P.Label l then begin
         start := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !start < 0 then None
  else begin
    let rec find_end i =
      if i >= n then i - 1
      else
        match items.(i) with
        | P.Ins (I.J _ | I.Jr _ | I.Halt) -> i
        | P.Label _ when i > !start -> i - 1 (* fell into another block *)
        | _ -> find_end (i + 1)
    in
    Some (!start, find_end (!start + 1))
  end

let fresh_join_label =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "Ljoin%d" !n

(* One repair step: returns Some fixed_items if a block was relocated. *)
let fix_one (items : P.item array) =
  let regs = regions items in
  let try_region (s, j) =
    let inside = labels_in items s j in
    (* find first branch inside the region with an outside target *)
    let rec scan i =
      if i >= j then None
      else
        match items.(i) with
        | P.Ins ins -> (
          match I.target ins with
          | Some l when not (Hashtbl.mem inside l) -> Some l
          | Some _ | None -> scan (i + 1))
        | _ -> scan (i + 1)
    in
    match scan (s + 1) with
    | None -> None
    | Some l -> (
      match block_of_label items l with
      | None -> err "branch target %s inside spawn region is undefined" l
      | Some (bs, be) ->
        if bs > s && be < j then None (* already inside; shouldn't happen *)
        else begin
          (* relocate items[bs..be] to just before the join at j *)
          let block = Array.sub items bs (be - bs + 1) in
          (* does the item just before the join fall through? *)
          let rec prev_ins i =
            if i <= s then None
            else
              match items.(i) with
              | P.Ins ins -> Some ins
              | P.Label _ | P.Comment _ | P.Loc _ -> prev_ins (i - 1)
          in
          let falls_into_join =
            match prev_ins (j - 1) with
            | Some (I.J _ | I.Jr _ | I.Halt) -> false
            | Some _ -> true
            | None -> true
          in
          let join_fix =
            if falls_into_join then begin
              let jl = fresh_join_label () in
              [ P.Ins (I.J jl) ], [ P.Label jl ]
            end
            else ([], [])
          in
          let jump_to_join, join_label = join_fix in
          let out = ref [] in
          Array.iteri
            (fun i item ->
              if i >= bs && i <= be then () (* removed from old position *)
              else if i = j then begin
                (* insert before the join *)
                List.iter (fun x -> out := x :: !out) jump_to_join;
                Array.iter (fun x -> out := x :: !out) block;
                List.iter (fun x -> out := x :: !out) join_label;
                out := item :: !out
              end
              else out := item :: !out)
            items;
          Some (Array.of_list (List.rev !out))
        end)
  in
  let rec try_all = function
    | [] -> None
    | r :: rest -> ( match try_region r with Some x -> Some x | None -> try_all rest)
  in
  try_all regs

let fix_layout (p : P.t) =
  let items = ref (Array.of_list p.text) in
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match fix_one !items with
    | Some fixed ->
      incr count;
      if !count > 1000 then err "layout repair did not converge";
      items := fixed
    | None -> continue_ := false
  done;
  ({ p with text = Array.to_list !items }, !count)

let verify (p : P.t) =
  let items = Array.of_list p.text in
  let regs = regions items in
  List.iter
    (fun (s, j) ->
      let inside = labels_in items s j in
      for i = s + 1 to j - 1 do
        match items.(i) with
        | P.Ins (I.Jal l) -> err "jal %s inside spawn region (no calls on TCUs)" l
        | P.Ins (I.Jr _) -> err "jr inside spawn region"
        | P.Ins ins -> (
          match I.target ins with
          | Some l when not (Hashtbl.mem inside l) ->
            err
              "branch target %s at item %d escapes its spawn region [%d..%d]: \
               the block would not be broadcast (Fig. 9)"
              l i s j
          | Some _ | None -> ())
        | P.Label _ | P.Comment _ | P.Loc _ -> ()
      done)
    regs

let run p =
  let p, n = fix_layout p in
  verify p;
  (p, n)
