(* Two complementary mechanisms, both §IV-C / [8]:

   1. Early hoisting: within a basic block, a load whose base register was
      defined several instructions earlier gets a [pref] right after the
      definition, overlapping the round trip with the intervening compute.

   2. Loop-ahead prefetching: in a loop body (a block that a backward
      branch re-enters), a load whose address is an affine function of a
      self-incremented induction register gets a [pref] of the *next*
      iteration's address right after the load — the "loop prefetching"
      that thread clustering enables (§IV-C).

   Safety: the prefetch buffer hardware invalidates entries on the owning
   TCU's stores, so stale-value hazards from aggressive prefetching cannot
   change results (they only waste bandwidth). *)

let run ?(min_gap = 2) ?(max_per_block = 8) (fn : Ir.func) =
  let body = Array.of_list fn.Ir.body in
  let n = Array.length body in
  let in_par = Array.make n false in
  let par = ref false in
  Array.iteri
    (fun i ins ->
      (match ins with
      | Ir.Ispawn _ -> par := true
      | Ir.Ijoin -> par := false
      | _ -> ());
      in_par.(i) <- !par)
    body;
  (* labels the function's backward jumps target = loop heads *)
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i ins ->
      match ins with Ir.Ilabel l -> Hashtbl.replace label_pos l i | _ -> ())
    body;
  let loop_heads = Hashtbl.create 8 in
  Array.iteri
    (fun i ins ->
      let target =
        match ins with
        | Ir.Ijmp l | Ir.Icjump (_, _, _, l) -> Some l
        | _ -> None
      in
      match target with
      | Some l -> (
        match Hashtbl.find_opt label_pos l with
        | Some p when p < i -> Hashtbl.replace loop_heads l ()
        | _ -> ())
      | None -> ())
    body;
  (* Function-level stride detection: self-incremented registers
     (r := r + imm, directly or through a move), usable from any block of
     the loop — the induction update typically lives in its own block. *)
  let strides = Hashtbl.create 8 in
  let adds = Hashtbl.create 8 in
  Array.iter
    (fun ins ->
      match ins with
      | Ir.Ibin (Ir.Badd, d, Ir.Oreg src, Ir.Oimm k)
      | Ir.Ibin (Ir.Badd, d, Ir.Oimm k, Ir.Oreg src) ->
        if d = src then Hashtbl.replace strides d k
        else Hashtbl.replace adds d (src, k)
      | _ -> ())
    body;
  Array.iter
    (fun ins ->
      match ins with
      | Ir.Imov (a, Ir.Oreg b) -> (
        match Hashtbl.find_opt adds b with
        | Some (src, k) when src = a -> Hashtbl.replace strides a k
        | _ -> ())
      | _ -> ())
    body;
  let result = ref [] in
  (* [in_loop]: the current block begins at a loop-head label or lies
     between a loop head and its backward branch; approximate with "the
     enclosing region contains a backward branch after this block" by
     tracking whether we are after any loop-head label whose backward
     branch has not yet been seen.  Simpler and sufficient: a block is
     treated as loop code when any loop head is currently open. *)
  let open_loops = ref 0 in
  let flush_block block_instrs =
    let arr = Array.of_list block_instrs in
    let m = Array.length arr in
    (* effective position = count of real (non-debug-marker) instructions
       before each slot, so interleaved [Iloc]s cannot change gap
       arithmetic and thus prefetch placement *)
    let eff = Array.make (m + 1) 0 in
    for j = 0 to m - 1 do
      eff.(j + 1) <-
        (eff.(j) + match snd arr.(j) with Ir.Iloc _ -> 0 | _ -> 1)
    done;
    (* def position of each vreg within the block *)
    let defpos = Hashtbl.create 16 in
    Array.iteri
      (fun j (_, ins) ->
        let ds, _, _, _ = Ir.defs_uses ins in
        List.iter
          (fun d -> if not (Hashtbl.mem defpos d) then Hashtbl.replace defpos d j)
          ds)
      arr;
    (* walk a base register's def chain (within the block) looking for a
       self-incremented induction register; returns the address stride *)
    let rec chain_stride depth r =
      if depth > 4 then None
      else
        match Hashtbl.find_opt strides r with
        | Some k -> Some (k * 1)
        | None -> (
          match Hashtbl.find_opt defpos r with
          | None -> None
          | Some j -> (
            match snd arr.(j) with
            | Ir.Ibin (Ir.Badd, _, Ir.Oreg a, Ir.Oreg b) -> (
              match chain_stride (depth + 1) a with
              | Some s -> Some s
              | None -> chain_stride (depth + 1) b)
            | Ir.Ibin (Ir.Badd, _, Ir.Oreg a, Ir.Oimm _) ->
              chain_stride (depth + 1) a
            | Ir.Ibin (Ir.Bsll, _, Ir.Oreg a, Ir.Oimm sh) -> (
              match chain_stride (depth + 1) a with
              | Some s -> Some (s lsl sh)
              | None -> None)
            | Ir.Ibin (Ir.Bmul, _, Ir.Oreg a, Ir.Oimm k) -> (
              match chain_stride (depth + 1) a with
              | Some s -> Some (s * k)
              | None -> None)
            | Ir.Imov (_, Ir.Oreg a) -> chain_stride (depth + 1) a
            | _ -> None))
    in
    let inserts = ref [] in
    let count = ref 0 in
    let seen = Hashtbl.create 16 in
    Array.iteri
      (fun j (gi, ins) ->
        match ins with
        | Ir.Ild (Ir.Ld_normal, _, base, off)
          when in_par.(gi) && base <> Ir.vreg_fp && !count < max_per_block ->
          (* 1. early hoist *)
          let dp =
            match Hashtbl.find_opt defpos base with
            | Some p when p < j -> p + 1
            | Some _ -> j
            | None -> 0
          in
          if eff.(j) - eff.(dp) >= min_gap && not (Hashtbl.mem seen (base, off))
          then begin
            Hashtbl.replace seen (base, off) ();
            incr count;
            inserts := (dp, Ir.Ipref (base, off)) :: !inserts
          end;
          (* 2. loop-ahead prefetch of the next iteration's element,
             placed as early as the address register allows so it overlaps
             this iteration's (blocking) load *)
          if !open_loops > 0 && !count < max_per_block then begin
            match chain_stride 0 base with
            | Some stride
              when stride <> 0 && not (Hashtbl.mem seen (base, off + stride)) ->
              Hashtbl.replace seen (base, off + stride) ();
              incr count;
              inserts := (dp, Ir.Ipref (base, off + stride)) :: !inserts
            | _ -> ()
          end
        | _ -> ())
      arr;
    let by_pos = Hashtbl.create 8 in
    List.iter
      (fun (p, ins) ->
        let cur = try Hashtbl.find by_pos p with Not_found -> [] in
        Hashtbl.replace by_pos p (ins :: cur))
      !inserts;
    for j = 0 to m do
      (match Hashtbl.find_opt by_pos j with
      | Some prefs -> List.iter (fun p -> result := p :: !result) prefs
      | None -> ());
      if j < m then begin
        let _, ins = arr.(j) in
        result := ins :: !result
      end
    done
  in
  let cur = ref [] in
  Array.iteri
    (fun i ins ->
      match ins with
      | Ir.Ilabel l ->
        flush_block (List.rev !cur);
        cur := [];
        result := ins :: !result;
        if Hashtbl.mem loop_heads l then incr open_loops
      | Ir.Ijmp l | Ir.Icjump (_, _, _, l) ->
        cur := (i, ins) :: !cur;
        flush_block (List.rev !cur);
        cur := [];
        (match Hashtbl.find_opt label_pos l with
        | Some p when p < i && Hashtbl.mem loop_heads l && !open_loops > 0 ->
          decr open_loops
        | _ -> ())
      | Ir.Iret _ ->
        cur := (i, ins) :: !cur;
        flush_block (List.rev !cur);
        cur := []
      | _ -> cur := (i, ins) :: !cur)
    body;
  flush_block (List.rev !cur);
  fn.Ir.body <- List.rev !result
