exception Spill_error of string

type loc = Lreg of int | Lspill of int

type result = {
  spill_words : int;
  used_callee_int : int list;
  used_callee_flt : int list;
  param_locs_int : loc option list;
  param_locs_flt : loc option list;
}

(* Machine register pools. *)
let int_caller = [ 8; 9; 10; 11; 12; 13; 14; 15; 24; 25; 3 ] (* $t0-$t9, $v1 *)
let int_callee = [ 16; 17; 18; 19; 20; 21; 22; 23 ] (* $s0-$s7 *)
let flt_caller = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
let flt_callee = [ 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 30; 31 ]
let int_scratch0 = 26 (* $k0 *)
let int_scratch1 = 27 (* $k1 *)
let flt_scratch0 = 16
let flt_scratch1 = 17

type interval = {
  vreg : int;
  mutable start : int;
  mutable stop : int;
  mutable crosses_call : bool;
  mutable in_parallel : bool;
  is_float : bool;
}

(* ------------------------------------------------------------------ *)

let build_intervals (fn : Ir.func) =
  let cfg = Cfg.build fn in
  let instrs, outs, fouts = Cfg.instr_liveness cfg in
  let n = Array.length instrs in
  let itab : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let ftab : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch tab is_float r i =
    if is_float || (r <> Ir.vreg_sp && r <> Ir.vreg_fp) then begin
      let iv =
        match Hashtbl.find_opt tab r with
        | Some iv -> iv
        | None ->
          let iv =
            { vreg = r; start = i; stop = i; crosses_call = false;
              in_parallel = false; is_float }
          in
          Hashtbl.replace tab r iv;
          iv
      in
      if i < iv.start then iv.start <- i;
      if i > iv.stop then iv.stop <- i
    end
  in
  let par = ref false in
  Array.iteri
    (fun i ins ->
      (match ins with
      | Ir.Ispawn _ -> par := true
      | Ir.Ijoin -> par := false
      | _ -> ());
      let ds, us, fds, fus = Ir.defs_uses ins in
      List.iter (fun r -> touch itab false r i) (ds @ us);
      List.iter (fun r -> touch ftab true r i) (fds @ fus);
      Cfg.VSet.iter (fun r -> touch itab false r i) outs.(i);
      Cfg.VSet.iter (fun r -> touch ftab true r i) fouts.(i);
      if !par then begin
        List.iter
          (fun r ->
            match Hashtbl.find_opt itab r with
            | Some iv -> iv.in_parallel <- true
            | None -> ())
          (ds @ us);
        List.iter
          (fun r ->
            match Hashtbl.find_opt ftab r with
            | Some iv -> iv.in_parallel <- true
            | None -> ())
          (fds @ fus);
        Cfg.VSet.iter
          (fun r -> match Hashtbl.find_opt itab r with
            | Some iv -> iv.in_parallel <- true | None -> ())
          outs.(i);
        Cfg.VSet.iter
          (fun r -> match Hashtbl.find_opt ftab r with
            | Some iv -> iv.in_parallel <- true | None -> ())
          fouts.(i)
      end;
      match ins with
      | Ir.Icall _ ->
        Cfg.VSet.iter
          (fun r ->
            match Hashtbl.find_opt itab r with
            | Some iv -> iv.crosses_call <- true
            | None -> ())
          outs.(i);
        Cfg.VSet.iter
          (fun r ->
            match Hashtbl.find_opt ftab r with
            | Some iv -> iv.crosses_call <- true
            | None -> ())
          fouts.(i)
      | _ -> ())
    instrs;
  (* parameters are defined at entry *)
  List.iter
    (fun p -> match Hashtbl.find_opt itab p with Some iv -> iv.start <- 0 | None -> ())
    fn.params_int;
  List.iter
    (fun p -> match Hashtbl.find_opt ftab p with Some iv -> iv.start <- 0 | None -> ())
    fn.params_flt;
  ignore n;
  (itab, ftab)

(* ------------------------------------------------------------------ *)
(* Linear scan over one register class. *)

let scan fn_name intervals ~caller ~callee ~next_spill =
  let assignment : (int, loc) Hashtbl.t = Hashtbl.create 64 in
  let used_callee = ref [] in
  let free_caller = ref caller and free_callee = ref callee in
  let active : interval list ref = ref [] in
  (* active sorted by stop ascending *)
  let release iv =
    match Hashtbl.find_opt assignment iv.vreg with
    | Some (Lreg r) ->
      if List.mem r caller then free_caller := r :: !free_caller
      else if List.mem r callee then free_callee := r :: !free_callee
    | Some (Lspill _) | None -> ()
  in
  let expire t =
    let still, gone = List.partition (fun iv -> iv.stop >= t) !active in
    List.iter release gone;
    active := still
  in
  let take_callee () =
    match !free_callee with
    | r :: rest ->
      free_callee := rest;
      if not (List.mem r !used_callee) then used_callee := r :: !used_callee;
      Some r
    | [] -> None
  in
  let take_caller () =
    match !free_caller with
    | r :: rest ->
      free_caller := rest;
      Some r
    | [] -> None
  in
  let spill_one iv =
    if iv.in_parallel then
      raise
        (Spill_error
           (Printf.sprintf
              "register spill in parallel code of function %s (virtual threads \
               have no stack; simplify the spawn block or raise clustering)"
              fn_name));
    let slot = !next_spill in
    incr next_spill;
    Hashtbl.replace assignment iv.vreg (Lspill slot)
  in
  let sorted = List.sort (fun a b -> compare a.start b.start) intervals in
  List.iter
    (fun iv ->
      expire iv.start;
      let reg =
        if iv.crosses_call then take_callee ()
        else
          match take_caller () with Some r -> Some r | None -> take_callee ()
      in
      match reg with
      | Some r ->
        Hashtbl.replace assignment iv.vreg (Lreg r);
        active := List.sort (fun a b -> compare a.stop b.stop) (iv :: !active)
      | None -> (
        (* spill the interval with the furthest end among candidates that
           could free a usable register *)
        let usable cand =
          match Hashtbl.find_opt assignment cand.vreg with
          | Some (Lreg r) ->
            if iv.crosses_call then List.mem r callee
            else List.mem r caller || List.mem r callee
          | Some (Lspill _) | None -> false
        in
        let candidates = List.filter usable !active in
        match List.rev candidates with
        | victim :: _ when victim.stop > iv.stop ->
          (* steal victim's register *)
          let r =
            match Hashtbl.find assignment victim.vreg with
            | Lreg r -> r
            | Lspill _ -> assert false
          in
          spill_one victim;
          active := List.filter (fun x -> x.vreg <> victim.vreg) !active;
          Hashtbl.replace assignment iv.vreg (Lreg r);
          active := List.sort (fun a b -> compare a.stop b.stop) (iv :: !active)
        | _ -> spill_one iv))
    sorted;
  (assignment, List.sort compare !used_callee)

(* ------------------------------------------------------------------ *)
(* Rewriting the body with machine registers and spill code. *)

(* NOTE: rewrite emits machine-level instructions, so the frame pointer
   must be the machine register $fp (30), not the pre-allocation pseudo
   Ir.vreg_fp. *)
let mach_fp = 30

let rewrite (fn : Ir.func) iassign fassign =
  let lookup_int v =
    if v = Ir.vreg_sp then Lreg 29
    else if v = Ir.vreg_fp then Lreg 30
    else
      match Hashtbl.find_opt iassign v with
      | Some l -> l
      | None -> Lreg int_scratch0 (* dead vreg: any scratch *)
  in
  let lookup_flt v =
    match Hashtbl.find_opt fassign v with
    | Some l -> l
    | None -> Lreg flt_scratch0
  in
  let spill_off slot = -(Ir.frame_reserve_bytes + 4 + (4 * (fn.local_words + slot))) in
  let out = ref [] in
  let emit i = out := i :: !out in
  let map_instr ins =
    let ds, us, fds, fus = Ir.defs_uses ins in
    (* scratch assignment for spilled vregs in this instruction *)
    let imap = Hashtbl.create 4 and fmap = Hashtbl.create 4 in
    let pre = ref [] and post = ref [] in
    let next_int = ref [ int_scratch0; int_scratch1 ] in
    let next_flt = ref [ flt_scratch0; flt_scratch1 ] in
    let scratch_int v slot ~load =
      match Hashtbl.find_opt imap v with
      | Some s -> s
      | None ->
        let s = match !next_int with
          | s :: rest -> next_int := rest; s
          | [] ->
            (* def-only operand: safe to reuse scratch0, which is read
               before the instruction writes its destination *)
            if load then failwith "out of integer spill scratch registers"
            else int_scratch0
        in
        Hashtbl.replace imap v s;
        if load then pre := Ir.Ild (Ir.Ld_normal, s, mach_fp, spill_off slot) :: !pre;
        s
    in
    let scratch_flt v slot ~load =
      match Hashtbl.find_opt fmap v with
      | Some s -> s
      | None ->
        let s = match !next_flt with
          | s :: rest -> next_flt := rest; s
          | [] ->
            if load then failwith "out of float spill scratch registers"
            else flt_scratch0
        in
        Hashtbl.replace fmap v s;
        if load then pre := Ir.Ifld (s, mach_fp, spill_off slot) :: !pre;
        s
    in
    let mi v =
      match lookup_int v with
      | Lreg r -> r
      | Lspill slot ->
        let is_use = List.mem v us in
        let s = scratch_int v slot ~load:is_use in
        if List.mem v ds then
          post := Ir.Ist (Ir.St_blocking, s, mach_fp, spill_off slot) :: !post;
        s
    in
    let mf v =
      match lookup_flt v with
      | Lreg r -> r
      | Lspill slot ->
        let is_use = List.mem v fus in
        let s = scratch_flt v slot ~load:is_use in
        if List.mem v fds then post := Ir.Ifst (s, mach_fp, spill_off slot) :: !post;
        s
    in
    let mo = function Ir.Oreg r -> Ir.Oreg (mi r) | Ir.Oimm k -> Ir.Oimm k in
    let ins' =
      match ins with
      | Ir.Ilabel _ | Ir.Ijmp _ | Ir.Ijoin | Ir.Ifence | Ir.Iloc _ -> ins
      | Ir.Imov (d, s) -> let s = mo s in Ir.Imov (mi d, s)
      | Ir.Ibin (op, d, a, b) ->
        let a = mo a and b = mo b in
        Ir.Ibin (op, mi d, a, b)
      | Ir.Iset (r, d, a, b) ->
        let a = mo a and b = mo b in
        Ir.Iset (r, mi d, a, b)
      | Ir.Ifbin (op, d, a, b) ->
        let a = mf a and b = mf b in
        Ir.Ifbin (op, mf d, a, b)
      | Ir.Ifun (op, d, a) -> let a = mf a in Ir.Ifun (op, mf d, a)
      | Ir.Ifli (d, x) -> Ir.Ifli (mf d, x)
      | Ir.Ifcmp (r, d, a, b) ->
        let a = mf a and b = mf b in
        Ir.Ifcmp (r, mi d, a, b)
      | Ir.Icvt_i2f (d, s) -> let s = mo s in Ir.Icvt_i2f (mf d, s)
      | Ir.Icvt_f2i (d, s) -> let s = mf s in Ir.Icvt_f2i (mi d, s)
      | Ir.Ila (d, l) -> Ir.Ila (mi d, l)
      | Ir.Ild (m, d, b, off) -> let b = mi b in Ir.Ild (m, mi d, b, off)
      | Ir.Ist (m, s, b, off) -> Ir.Ist (m, mi s, mi b, off)
      | Ir.Ifld (d, b, off) -> let b = mi b in Ir.Ifld (mf d, b, off)
      | Ir.Ifst (s, b, off) -> Ir.Ifst (mf s, mi b, off)
      | Ir.Ipref (b, off) -> Ir.Ipref (mi b, off)
      | Ir.Icall (dst, name, args) ->
        let args =
          List.map
            (function
              | Ir.Aint op -> Ir.Aint (mo op)
              | Ir.Aflt r -> Ir.Aflt (mf r))
            args
        in
        let dst =
          match dst with
          | Ir.Dint d -> Ir.Dint (mi d)
          | Ir.Dflt d -> Ir.Dflt (mf d)
          | Ir.Dnone -> Ir.Dnone
        in
        Ir.Icall (dst, name, args)
      | Ir.Icjump (r, a, b, l) ->
        let a = mo a and b = mo b in
        Ir.Icjump (r, a, b, l)
      | Ir.Iret (Some (Ir.Aint op)) -> Ir.Iret (Some (Ir.Aint (mo op)))
      | Ir.Iret (Some (Ir.Aflt r)) -> Ir.Iret (Some (Ir.Aflt (mf r)))
      | Ir.Iret None -> ins
      | Ir.Ispawn (a, b) ->
        let a = mo a and b = mo b in
        Ir.Ispawn (a, b)
      | Ir.Ips (r, g) -> Ir.Ips (mi r, g)
      | Ir.Ipsm (r, b, off) ->
        let b = mi b in
        Ir.Ipsm (mi r, b, off)
      | Ir.Ichkid r -> Ir.Ichkid (mi r)
      | Ir.Imfg (d, g) -> Ir.Imfg (mi d, g)
      | Ir.Imtg (g, s) -> Ir.Imtg (g, mo s)
      | Ir.Isys (op, Ir.Aint a) -> Ir.Isys (op, Ir.Aint (mo a))
      | Ir.Isys (op, Ir.Aflt r) -> Ir.Isys (op, Ir.Aflt (mf r))
    in
    List.iter emit (List.rev !pre);
    emit ins';
    List.iter emit (List.rev !post)
  in
  List.iter map_instr fn.body;
  fn.body <- List.rev !out

(* ------------------------------------------------------------------ *)

let run (fn : Ir.func) : result =
  let itab, ftab = build_intervals fn in
  let ivals = Hashtbl.fold (fun _ iv acc -> iv :: acc) itab [] in
  let fvals = Hashtbl.fold (fun _ iv acc -> iv :: acc) ftab [] in
  let next_spill = ref 0 in
  let iassign, used_i =
    scan fn.name ivals ~caller:int_caller ~callee:int_callee ~next_spill
  in
  let fassign, used_f =
    scan fn.name fvals ~caller:flt_caller ~callee:flt_callee ~next_spill
  in
  let param_loc tab assign p =
    if Hashtbl.mem tab p then Hashtbl.find_opt assign p else None
  in
  let param_locs_int = List.map (param_loc itab iassign) fn.params_int in
  let param_locs_flt = List.map (param_loc ftab fassign) fn.params_flt in
  rewrite fn iassign fassign;
  {
    spill_words = !next_spill;
    used_callee_int = used_i;
    used_callee_flt = used_f;
    param_locs_int;
    param_locs_flt;
  }
