(** XMTC sources for the standard kernels used throughout the tests,
    examples and benchmarks.  Array sizes are compile-time constants in
    XMTC, so each kernel is a template instantiated with its problem size;
    input data arrives through the memory map (§III-A). *)

let spf = Printf.sprintf

(** Fig. 2a — array compaction: copy the non-zero elements of [A] into
    [B]; order not necessarily preserved. *)
let compaction ~n =
  spf
    {|
int A[%d];
int B[%d];
int base = 0;

int main(void) {
  spawn(0, %d) {
    int inc = 1;
    if (A[$] != 0) {
      ps(inc, base);
      B[inc] = A[$];
    }
  }
  print_int(base);
  return 0;
}
|}
    n n (n - 1)

(** Sum of an array through [psm] on a single memory word (exhibits cache
    module queueing on a hotspot). *)
let reduce_psm ~n =
  spf
    {|
int A[%d];
int total = 0;

int main(void) {
  spawn(0, %d) {
    int v = A[$];
    psm(v, total);
  }
  print_int(total);
  return 0;
}
|}
    n (n - 1)

(** Logarithmic PRAM-style tree reduction: log n rounds of pairwise adds. *)
let reduce_tree ~n =
  spf
    {|
int A[%d];

int main(void) {
  int s = 1;
  while (s < %d) {
    int stride = s * 2;
    int pairs = %d / stride;
    spawn(0, pairs - 1) {
      int i = $ * stride;
      A[i] = A[i] + A[i + s];
    }
    s = stride;
  }
  print_int(A[0]);
  return 0;
}
|}
    n n n

(** Parallel vector add C = A + B. *)
let vecadd ~n =
  spf
    {|
int A[%d];
int B[%d];
int C[%d];

int main(void) {
  spawn(0, %d) {
    C[$] = A[$] + B[$];
  }
  return 0;
}
|}
    n n n (n - 1)

(** Level-synchronized PRAM BFS over a CSR graph (§II-B: the workload of
    the UIUC/UMD teaching experiment and the GPU comparisons).  The
    benign-race enqueue pattern can insert duplicates; distances are
    nevertheless exact.  Prints the number of reached vertices and the sum
    of distances. *)
let bfs ~n ~m ~src =
  spf
    {|
int row[%d];
int col[%d];
int dist[%d];
int frontier[%d];
int next[%d];
int nsize = 0;
int reached = 0;
int sum = 0;

int main(void) {
  int fsize;
  int level = 1;
  spawn(0, %d) {
    dist[$] = -1;
  }
  dist[%d] = 0;
  frontier[0] = %d;
  fsize = 1;
  while (fsize > 0) {
    nsize = 0;
    spawn(0, fsize - 1) {
      int u = frontier[$];
      int i;
      for (i = row[u]; i < row[u + 1]; i++) {
        int v = col[i];
        if (dist[v] == -1) {
          int slot = 1;
          dist[v] = level;
          ps(slot, nsize);
          next[slot] = v;
        }
      }
    }
    fsize = nsize;
    if (fsize > 0) {
      spawn(0, fsize - 1) {
        frontier[$] = next[$];
      }
    }
    level = level + 1;
  }
  reached = 0;
  sum = 0;
  spawn(0, %d) {
    int d = dist[$];
    if (d >= 0) {
      int one = 1;
      ps(one, reached);
      psm(d, sum);
    }
  }
  print_int(reached);
  print_string(" ");
  print_int(sum);
  return 0;
}
|}
    (n + 1) (max 1 m) n n n (n - 1) src src (n - 1)

(** Connected components by label propagation over an edge list (§II-B
    graph connectivity).  Converges because labels only decrease. *)
let connectivity ~n ~m =
  spf
    {|
int esrc[%d];
int edst[%d];
int label[%d];
int changed = 0;

int main(void) {
  spawn(0, %d) {
    label[$] = $;
  }
  changed = 1;
  while (changed != 0) {
    changed = 0;
    spawn(0, %d) {
      int u = esrc[$];
      int v = edst[$];
      int lu = label[u];
      int lv = label[v];
      if (lu < lv) {
        int one = 1;
        label[v] = lu;
        psm(one, changed);
      } else if (lv < lu) {
        int one = 1;
        label[u] = lv;
        psm(one, changed);
      }
    }
  }
  {
    int roots = 0;
    int i;
    for (i = 0; i < %d; i++) {
      if (label[i] == i) roots = roots + 1;
    }
    print_int(roots);
  }
  return 0;
}
|}
    (max 1 m) (max 1 m) n (n - 1) (max 1 m - 1) n

(** Dense float matrix multiply C = A*B (n x n), one virtual thread per
    row — exercises the shared FPUs and float loads/stores. *)
let matmul ~n =
  spf
    {|
float A[%d];
float B[%d];
float C[%d];

int main(void) {
  spawn(0, %d) {
    int i = $;
    int j;
    for (j = 0; j < %d; j++) {
      float acc = 0.0;
      int k;
      for (k = 0; k < %d; k++) {
        acc = acc + A[i * %d + k] * B[k * %d + j];
      }
      C[i * %d + j] = acc;
    }
  }
  print_float(C[0]);
  return 0;
}
|}
    (n * n) (n * n) (n * n) (n - 1) n n n n n

(** Sparse matrix-vector product y = M x over CSR — irregular memory
    pattern, the prefetch showcase of §IV-C. *)
let spmv ~n ~nnz =
  spf
    {|
int row[%d];
int col[%d];
float nzv[%d];
float x[%d];
float y[%d];

int main(void) {
  spawn(0, %d) {
    int i = $;
    float acc = 0.0;
    int k;
    for (k = row[i]; k < row[i + 1]; k++) {
      acc = acc + nzv[k] * x[col[k]];
    }
    y[i] = acc;
  }
  print_float(y[0]);
  return 0;
}
|}
    (n + 1) (max 1 nnz) (max 1 nnz) n n (n - 1)

(* ------------------------------------------------------------------ *)
(* Table I microbenchmark groups: {serial,parallel} x {memory,compute}. *)

(** Parallel, memory intensive: strided gather/scatter across the shared
    cache modules. *)
let par_mem ~threads ~iters ~n =
  spf
    {|
int A[%d];
int B[%d];

int main(void) {
  spawn(0, %d) {
    int k;
    int idx = $;
    for (k = 0; k < %d; k++) {
      B[idx] = A[idx] + 1;
      idx = idx + %d;
      if (idx >= %d) idx = idx - %d;
    }
  }
  return 0;
}
|}
    n n (threads - 1) iters 97 n n

(** Parallel, computation intensive: per-thread integer recurrence. *)
let par_comp ~threads ~iters =
  spf
    {|
int B[%d];

int main(void) {
  spawn(0, %d) {
    int x = $ + 1;
    int k;
    for (k = 0; k < %d; k++) {
      x = x * 3 + 1;
      x = x & 65535;
      x = x ^ (x >> 3);
    }
    B[$] = x;
  }
  return 0;
}
|}
    threads (threads - 1) iters

(** Serial, memory intensive: master sweeps a large array. *)
let ser_mem ~iters ~n =
  spf
    {|
int A[%d];
int B[%d];

int main(void) {
  int k;
  int idx = 0;
  for (k = 0; k < %d; k++) {
    B[idx] = A[idx] + 1;
    idx = idx + 97;
    if (idx >= %d) idx = idx - %d;
  }
  return 0;
}
|}
    n n iters n n

(** Serial, computation intensive. *)
let ser_comp ~iters =
  spf
    {|
int out = 0;

int main(void) {
  int x = 1;
  int k;
  for (k = 0; k < %d; k++) {
    x = x * 3 + 1;
    x = x & 65535;
    x = x ^ (x >> 3);
  }
  out = x;
  print_int(x);
  return 0;
}
|}
    iters

(** The Fig. 6 litmus test (memory-model demonstrator, §IV-A).

    On a 64-TCU configuration: virtual thread 0 (left subtree of the
    mesh-of-trees) stores x then y with non-blocking stores; the reader
    thread [threads/2] (right subtree) spins [delay] iterations, then
    reads y and x.  Threads 8..threads/2-1 hammer x's cache line, piling
    merge contention onto the writer's path to x's module while leaving
    y's path and the reader's subtree clear.  Sweeping [delay] and the
    arbitration seed exposes every outcome the relaxed model allows —
    including (rx,ry) = (0,1).  Prints "rx ry". *)
let fig6_litmus ?(writer_delay = 120) ~threads ~hammer_iters ~delay () =
  let reader = threads / 2 in
  spf
    {|
int x = 0;
int padA[1024];
int y = 0;
int padB[1024];
int rx = 0;
int ry = 0;

int main(void) {
  spawn(0, %d) {
    if ($ == 0) {
      int w = 1;
      int k;
      for (k = 0; k < %d; k++) w = (w * 3 + 1) & 1023;
      if (w >= 0) {
        x = 1;
        y = 1;
      }
    } else if ($ == %d) {
      int w = 1;
      int k;
      for (k = 0; k < %d; k++) w = (w * 3 + 1) & 1023;
      if (w >= 0) {
        ry = y;
        rx = x;
      }
    } else if ($ >= 8 && $ < %d) {
      int k;
      for (k = 0; k < %d; k++) {
        padA[k & 1] = k;
      }
    }
  }
  print_int(rx);
  print_string(" ");
  print_int(ry);
  return 0;
}
|}
    (threads - 1) writer_delay reader delay reader hammer_iters

(** The Fig. 7 program: same stage as {!fig6_litmus}, but both threads
    synchronize (loosely) over [y] with psm.  The compiler-inserted fence
    before each prefix-sum enforces "if ry >= 1 then rx = 1"; compile with
    [fences = false] to watch the (0,1) violation reappear.
    Prints "rx ry". *)
let fig7_litmus ?(writer_delay = 120) ~threads ~hammer_iters ~delay () =
  let reader = threads / 2 in
  spf
    {|
int x = 0;
int padA[1024];
int y = 0;
int padB[1024];
int rx = 0;
int ry = 0;

int main(void) {
  spawn(0, %d) {
    if ($ == 0) {
      int w = 1;
      int k;
      int tmpA = 1;
      for (k = 0; k < %d; k++) w = (w * 3 + 1) & 1023;
      if (w >= 0) {
        x = 1;
        psm(tmpA, y);
      }
    } else if ($ == %d) {
      int w = 1;
      int k;
      int tmpB = 0;
      for (k = 0; k < %d; k++) w = (w * 3 + 1) & 1023;
      if (w >= 0) {
        psm(tmpB, y);
        ry = tmpB;
        rx = x;
      }
    } else if ($ >= 8 && $ < %d) {
      int k;
      for (k = 0; k < %d; k++) {
        padA[k & 1] = k;
      }
    }
  }
  print_int(rx);
  print_string(" ");
  print_int(ry);
  return 0;
}
|}
    (threads - 1) writer_delay reader delay reader hammer_iters

(** Pair-based publication kernel (race checker's flip program): even
    threads store to [data] and publish through [flag] with psm; odd
    threads psm-read their pair's flag and, when set, check the data.
    The fence before the publishing psm drains the non-blocking store, so
    a normal compile is race-free and always prints 0.  Compiled with
    [fences = false] the store can land after the flag publication, which
    the dynamic race detector reports as a read-write race on [data]
    (and [bad] may go nonzero).  [data[pair]] is $-dependent but not
    thread-affine, so the static layer cannot prove disjointness and
    only warns — the fence flip is observable purely in the dynamic
    layer, separating the two in tests.  [n] must be even. *)
let publication ~n =
  spf
    {|
int data[%d];
int flag[%d];
int bad = 0;

int main(void) {
  spawn(0, %d) {
    int pair = $ / 2;
    if ($ %% 2 == 0) {
      int one = 1;
      data[pair] = 42;
      psm(one, flag[pair]);
    } else {
      int seen = 0;
      psm(seen, flag[pair]);
      if (seen >= 1) {
        if (data[pair] != 42) {
          int e = 1;
          psm(e, bad);
        }
      }
    }
  }
  print_int(bad);
  return 0;
}
|}
    (n / 2) (n / 2) (n - 1)

(** Fig. 8 illegal-dataflow witness: [found] is written in the spawn block
    and read after it; [counter] must be incremented exactly once. *)
let fig8_found ~n =
  spf
    {|
int A[%d];
int counter = 0;

int main(void) {
  int found = 0;
  spawn(0, %d) {
    if (A[$] != 0) found = 1;
  }
  if (found) counter = counter + 1;
  print_int(counter);
  return 0;
}
|}
    n (n - 1)

(* ------------------------------------------------------------------ *)
(* Serial baselines for the speedup experiments (§II-B): the same
   algorithms written as ordinary serial C, executed by the Master TCU. *)

let compaction_serial ~n =
  spf
    {|
int A[%d];
int B[%d];

int main(void) {
  int i;
  int count = 0;
  for (i = 0; i < %d; i++) {
    if (A[i] != 0) {
      B[count] = A[i];
      count = count + 1;
    }
  }
  print_int(count);
  return 0;
}
|}
    n n n

let reduce_serial ~n =
  spf
    {|
int A[%d];

int main(void) {
  int i;
  int sum = 0;
  for (i = 0; i < %d; i++) sum = sum + A[i];
  print_int(sum);
  return 0;
}
|}
    n n

let bfs_serial ~n ~m =
  spf
    {|
int row[%d];
int col[%d];
int dist[%d];
int frontier[%d];
int next[%d];

int main(void) {
  int fsize = 1;
  int nsize;
  int level = 1;
  int i;
  int k;
  for (i = 0; i < %d; i++) dist[i] = -1;
  dist[0] = 0;
  frontier[0] = 0;
  while (fsize > 0) {
    nsize = 0;
    for (k = 0; k < fsize; k++) {
      int u = frontier[k];
      for (i = row[u]; i < row[u + 1]; i++) {
        int v = col[i];
        if (dist[v] == -1) {
          dist[v] = level;
          next[nsize] = v;
          nsize = nsize + 1;
        }
      }
    }
    for (k = 0; k < nsize; k++) frontier[k] = next[k];
    fsize = nsize;
    level = level + 1;
  }
  {
    int reached = 0;
    int sum = 0;
    for (i = 0; i < %d; i++) {
      if (dist[i] >= 0) { reached = reached + 1; sum = sum + dist[i]; }
    }
    print_int(reached);
    print_string(" ");
    print_int(sum);
  }
  return 0;
}
|}
    (n + 1) (max 1 m) n n n n n

let connectivity_serial ~n ~m =
  spf
    {|
int esrc[%d];
int edst[%d];
int label[%d];

int main(void) {
  int i;
  int changed = 1;
  for (i = 0; i < %d; i++) label[i] = i;
  while (changed != 0) {
    changed = 0;
    for (i = 0; i < %d; i++) {
      int u = esrc[i];
      int v = edst[i];
      int lu = label[u];
      int lv = label[v];
      if (lu < lv) { label[v] = lu; changed = changed + 1; }
      else if (lv < lu) { label[u] = lv; changed = changed + 1; }
    }
  }
  {
    int roots = 0;
    for (i = 0; i < %d; i++) {
      if (label[i] == i) roots = roots + 1;
    }
    print_int(roots);
  }
  return 0;
}
|}
    (max 1 m) (max 1 m) n n (max 1 m) n

(** Multi-stream variant of {!par_mem}: each thread walks two arrays with
    different strides.  With two concurrent prefetch streams per TCU, a
    one-entry prefetch buffer thrashes while larger buffers (and LRU) keep
    both streams alive — the buffer design-space study of [8]. *)
let par_mem2 ~threads ~iters ~n =
  spf
    {|
int A[%d];
int B[%d];
int C[%d];

int main(void) {
  spawn(0, %d) {
    int k;
    int ia = $;
    int ib = $ * 2;
    int acc = 0;
    for (k = 0; k < %d; k++) {
      acc = acc + A[ia] + B[ib];
      ia = ia + 97;
      ib = ib + 61;
      if (ia >= %d) ia = ia - %d;
      if (ib >= %d) ib = ib - %d;
    }
    C[$] = acc;
  }
  return 0;
}
|}
    n n threads (threads - 1) iters n n n n

(** Shared lookup-table kernel: every thread translates its element
    through a small constant table.  With [use_ro] the table reads go
    through the per-cluster read-only cache (the explicit [ro()] loads of
    §IV-C); without it every lookup is a shared-cache round trip. *)
let table_lookup ~n ~iters ~use_ro =
  let access = if use_ro then "ro(table[v & 255])" else "table[v & 255]" in
  spf
    {|
int A[%d];
int B[%d];
int table[256];

int main(void) {
  spawn(0, %d) {
    int k;
    int v = A[$];
    for (k = 0; k < %d; k++) {
      v = v + %s;
      v = v & 65535;
    }
    B[$] = v;
  }
  return 0;
}
|}
    n n (n - 1) iters access

(* ------------------------------------------------------------------ *)
(* FFT (§II-B, ref [24]: "highly parallel multi-dimensional FFT on fine-
   and coarse-grained many-core approaches").  Iterative radix-2,
   decimation in time; twiddle factors arrive precomputed through the
   memory map (the ISA has no sin/cos).  [n] must be a power of two. *)

let fft ~n =
  let logn =
    let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
    go n 0
  in
  spf
    {|
float re[%d];
float im[%d];
float wr[%d];
float wi[%d];
float tre[%d];
float tim[%d];

int main(void) {
  int s;
  int m;
  int half;
  spawn(0, %d) {
    int v = $;
    int j = 0;
    int b;
    for (b = 0; b < %d; b++) {
      j = (j << 1) | (v & 1);
      v = v >> 1;
    }
    tre[j] = re[$];
    tim[j] = im[$];
  }
  spawn(0, %d) {
    re[$] = tre[$];
    im[$] = tim[$];
  }
  for (s = 1; s <= %d; s++) {
    m = 1 << s;
    half = m >> 1;
    spawn(0, %d) {
      int group = $ / half;
      int pos = $ - group * half;
      int i = group * m + pos;
      int j = i + half;
      int tw = pos * (%d / m);
      float wre = wr[tw];
      float wim = wi[tw];
      float xre = wre * re[j] - wim * im[j];
      float xim = wre * im[j] + wim * re[j];
      re[j] = re[i] - xre;
      im[j] = im[i] - xim;
      re[i] = re[i] + xre;
      im[i] = im[i] + xim;
    }
  }
  print_float(re[0]);
  print_string(" ");
  print_float(im[0]);
  return 0;
}
|}
    n n (n / 2) (n / 2) n n (n - 1) logn (n - 1) logn ((n / 2) - 1) n

(** Serial FFT baseline for the speedup comparison. *)
let fft_serial ~n =
  let logn =
    let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
    go n 0
  in
  spf
    {|
float re[%d];
float im[%d];
float wr[%d];
float wi[%d];
float tre[%d];
float tim[%d];

int main(void) {
  int s;
  int m;
  int half;
  int k;
  for (k = 0; k < %d; k++) {
    int v = k;
    int j = 0;
    int b;
    for (b = 0; b < %d; b++) {
      j = (j << 1) | (v & 1);
      v = v >> 1;
    }
    tre[j] = re[k];
    tim[j] = im[k];
  }
  for (k = 0; k < %d; k++) {
    re[k] = tre[k];
    im[k] = tim[k];
  }
  for (s = 1; s <= %d; s++) {
    m = 1 << s;
    half = m >> 1;
    for (k = 0; k < %d; k++) {
      int group = k / half;
      int pos = k - group * half;
      int i = group * m + pos;
      int j = i + half;
      int tw = pos * (%d / m);
      float wre = wr[tw];
      float wim = wi[tw];
      float xre = wre * re[j] - wim * im[j];
      float xim = wre * im[j] + wim * re[j];
      re[j] = re[i] - xre;
      im[j] = im[i] - xim;
      re[i] = re[i] + xre;
      im[i] = im[i] + xim;
    }
  }
  print_float(re[0]);
  print_string(" ");
  print_float(im[0]);
  return 0;
}
|}
    n n (n / 2) (n / 2) n n n logn n logn (n / 2) n
