type compiled = { cc : Compiler.Driver.output; image : Isa.Program.image }

let compile ?options ?memmap src =
  let cc, image = Compiler.Driver.compile_to_image ?options ?memmap src in
  { cc; image }

type run = {
  output : string;
  cycles : int;
  instructions : int;
  events : int;  (** desim events processed (0 in functional mode) *)
  stats : Xmtsim.Stats.t;
}

let run_cycle ?config ?max_cycles compiled =
  let m = Xmtsim.Machine.create ?config compiled.image in
  let r = Xmtsim.Machine.run ?max_cycles m in
  if not r.Xmtsim.Machine.halted then
    raise (Xmtsim.Machine.Sim_error "cycle budget exhausted before halt");
  let stats = Xmtsim.Machine.stats m in
  {
    output = r.Xmtsim.Machine.output;
    cycles = r.Xmtsim.Machine.cycles;
    instructions = Xmtsim.Stats.total_instrs stats;
    events = Xmtsim.Machine.events_processed m;
    stats;
  }

let run_functional ?max_instructions compiled =
  let r = Xmtsim.Functional_mode.run ?max_instructions compiled.image in
  {
    output = r.Xmtsim.Functional_mode.output;
    cycles = 0;
    instructions = r.Xmtsim.Functional_mode.instructions;
    events = 0;
    stats = r.Xmtsim.Functional_mode.stats;
  }

let exec ?options ?memmap ?config ?(functional = false) src =
  let compiled = compile ?options ?memmap src in
  if functional then run_functional compiled else run_cycle ?config compiled

let machine ?config compiled = Xmtsim.Machine.create ?config compiled.image

let read_global m compiled name len =
  let addr = Isa.Program.address_of compiled.image name in
  Array.init len (fun i ->
      Isa.Value.to_int (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr + (4 * i))))
