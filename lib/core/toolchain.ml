type compiled = { cc : Compiler.Driver.output; image : Isa.Program.image }

let compile ?options ?memmap src =
  let cc, image = Compiler.Driver.compile_to_image ?options ?memmap src in
  { cc; image }

(* ------------------------------------------------------------------ *)
(* Shared compiled artifacts.

   A design-space sweep simulates the same program under many machine
   configurations: the (source, compile-options, memmap) triple is
   identical across the sweep points, so compiling per job is pure
   waste — and in a parallel campaign it is the dominant per-job cost
   and the dominant source of cross-domain allocation (every compile
   rebuilds the whole IR).  An [Artifacts.t] is a compile-once cache:
   the first job with a given key compiles, concurrent jobs with the
   same key block on the condition variable until the artifact is
   ready, and everyone simulates against the same read-only [compiled]
   value.  That is safe because nothing downstream mutates it:
   [Xmtsim.Mem.load] blits [image.data_words] into a fresh store per
   machine, and the race checker's static analysis only reads [cc]. *)

module Artifacts = struct
  type key = {
    k_source : string;
    k_options : Compiler.Driver.options;
    k_memmap : Isa.Memmap.t;
  }

  type slot = Building | Ready of compiled

  type t = {
    tbl : (key, slot) Hashtbl.t;
    lock : Mutex.t;
    turned : Condition.t;  (** signaled whenever a slot changes state *)
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    {
      tbl = Hashtbl.create 16;
      lock = Mutex.create ();
      turned = Condition.create ();
      hits = 0;
      misses = 0;
    }

  (* Compile [src] or reuse a previous compile of the same key.  A
     failing compile removes its Building slot and re-raises, so a
     retry (or the next job with the key) compiles again — cached
     failures would break the campaign engine's per-job retry
     semantics. *)
  let get t ?(options = Compiler.Driver.default_options) ?(memmap = []) src =
    let key = { k_source = src; k_options = options; k_memmap = memmap } in
    Mutex.lock t.lock;
    let rec await () =
      match Hashtbl.find_opt t.tbl key with
      | Some (Ready c) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        c
      | Some Building ->
        Condition.wait t.turned t.lock;
        await ()
      | None -> (
        Hashtbl.replace t.tbl key Building;
        t.misses <- t.misses + 1;
        Mutex.unlock t.lock;
        match compile ~options ~memmap src with
        | c ->
          Mutex.lock t.lock;
          Hashtbl.replace t.tbl key (Ready c);
          Condition.broadcast t.turned;
          Mutex.unlock t.lock;
          c
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.lock;
          Hashtbl.remove t.tbl key;
          Condition.broadcast t.turned;
          Mutex.unlock t.lock;
          Printexc.raise_with_backtrace e bt)
    in
    await ()

  (** (cache hits, compiles actually performed) so far. *)
  let stats t =
    Mutex.lock t.lock;
    let r = (t.hits, t.misses) in
    Mutex.unlock t.lock;
    r
end

type run = {
  output : string;
  cycles : int;
  instructions : int;
  events : int;  (** desim events processed (0 in functional mode) *)
  stats : Xmtsim.Stats.t;
  races : Obs.Json.t option;
      (** [xmt.races.v1] report when the run was race-checked *)
  profile : Obs.Json.t option;
      (** [xmt.profile.v1] CPI-stack report when the run was profiled *)
  predict : Obs.Json.t option;
      (** [xmt.predict.v1] report (predict mode only) *)
}

(* Static findings + (for cycle runs) the dynamic detector's output,
   assembled into one xmt.races.v1 report. *)
let races_report ?dynamic compiled =
  Racecheck.report ?dynamic (Racecheck.analyze compiled.cc)

let run_cycle ?config ?(racecheck = false) ?(profile = false) ?stream
    ?heartbeat_cycles ?max_cycles compiled =
  let m = Xmtsim.Machine.create ?config compiled.image in
  let rd = if racecheck then Some (Xmtsim.Machine.attach_racecheck m) else None in
  if profile then ignore (Xmtsim.Machine.attach_profile m : Xmtsim.Profile.t);
  (match stream with
  | Some s -> Xmtsim.Machine.attach_stream ?heartbeat_cycles m s
  | None -> ());
  let r = Xmtsim.Machine.run ?max_cycles m in
  if not r.Xmtsim.Machine.halted then
    raise (Xmtsim.Machine.Sim_error "cycle budget exhausted before halt");
  let stats = Xmtsim.Machine.stats m in
  {
    output = r.Xmtsim.Machine.output;
    cycles = r.Xmtsim.Machine.cycles;
    instructions = Xmtsim.Stats.total_instrs stats;
    events = Xmtsim.Machine.events_processed m;
    stats;
    races =
      Option.map
        (fun rd ->
          races_report ~dynamic:(Xmtsim.Racedetect.to_json rd) compiled)
        rd;
    profile = Option.map Xmtsim.Profile.to_json (Xmtsim.Machine.profile_report m);
    predict = None;
  }

let run_functional ?(racecheck = false) ?max_instructions compiled =
  let r = Xmtsim.Functional_mode.run ?max_instructions compiled.image in
  {
    output = r.Xmtsim.Functional_mode.output;
    cycles = 0;
    instructions = r.Xmtsim.Functional_mode.instructions;
    events = 0;
    stats = r.Xmtsim.Functional_mode.stats;
    (* no cycle machine to observe: static layer only *)
    races = (if racecheck then Some (races_report compiled) else None);
    profile = None;
    predict = None;
  }

(* Predict mode: one functional pass harvests a reuse profile, the
   analytical model prices it.  No cycle machine is built, so [events]
   is 0 and the race layer (like functional mode) is static-only. *)
let run_predict ?config ?(racecheck = false) ?calibration ?max_instructions
    compiled =
  let config =
    Xmtsim.Config.checked (Option.value config ~default:Xmtsim.Config.fpga64)
  in
  let cal =
    match calibration with
    | None -> Predict.Calibrate.default
    | Some file -> Predict.Calibrate.load_file file
  in
  let rp = Xmtsim.Reuseprofile.create () in
  let r =
    Xmtsim.Functional_mode.run ?max_instructions ~profile:rp compiled.image
  in
  let pred =
    Predict.Model.predict ~coeffs:cal.Predict.Calibrate.coeffs
      ~residual_std_pct:cal.Predict.Calibrate.residual_std_pct ~config
      (Xmtsim.Reuseprofile.snapshot rp)
  in
  {
    output = r.Xmtsim.Functional_mode.output;
    cycles = pred.Predict.Model.predicted_cycles;
    instructions = r.Xmtsim.Functional_mode.instructions;
    events = 0;
    stats = r.Xmtsim.Functional_mode.stats;
    races = (if racecheck then Some (races_report compiled) else None);
    profile = None;
    predict =
      Some
        (Predict.Model.to_json
           ~calibration:(Predict.Calibrate.summary_json cal)
           ~config_name:config.Xmtsim.Config.name pred);
  }

(* ------------------------------------------------------------------ *)
(* The job-oriented surface: everything one compile+simulate needs,
   reified as data.  The campaign engine, the benches and the CLI all
   construct jobs; [exec] below is a thin wrapper over [run_job]. *)

type mode = Cycle | Functional | Predict

let mode_name = function
  | Cycle -> "cycle"
  | Functional -> "functional"
  | Predict -> "predict"

type job = {
  job_name : string;
  source : string;  (** XMTC source text *)
  options : Compiler.Driver.options;
  memmap : Isa.Memmap.t;
  config : Xmtsim.Config.t;
  mode : mode;
  seed : int option;
      (** deterministic per-job RNG seed; overrides [config.seed] *)
  max_cycles : int option;  (** cycle-mode budget *)
  max_instructions : int option;  (** functional-mode budget *)
  racecheck : bool;  (** attach the race checker; report in [run.races] *)
  profile : bool;
      (** attach the cycle-accounting profiler; report in [run.profile] *)
  calibration : string option;
      (** predict-mode calibration artifact path; [None] = built-in fit *)
}

let job ?(name = "") ?(options = Compiler.Driver.default_options)
    ?(memmap = []) ?(config = Xmtsim.Config.fpga64) ?(mode = Cycle) ?seed
    ?max_cycles ?max_instructions ?(racecheck = false) ?(profile = false)
    ?calibration source =
  {
    job_name = name;
    source;
    options;
    memmap;
    config;
    mode;
    seed;
    max_cycles;
    max_instructions;
    racecheck;
    profile;
    calibration;
  }

(** The configuration a job actually simulates with: the per-job seed
    folded in, then validated — an inconsistent sweep point fails here,
    before the machine is built. *)
let job_config j =
  let c =
    match j.seed with
    | None -> j.config
    | Some seed -> { j.config with Xmtsim.Config.seed }
  in
  Xmtsim.Config.checked c

let run_job ?artifacts ?stream ?heartbeat_cycles j =
  let compile_job () =
    match artifacts with
    | None -> compile ~options:j.options ~memmap:j.memmap j.source
    | Some a -> Artifacts.get a ~options:j.options ~memmap:j.memmap j.source
  in
  match j.mode with
  | Functional ->
    let compiled = compile_job () in
    run_functional ~racecheck:j.racecheck ?max_instructions:j.max_instructions
      compiled
  | Cycle ->
    let config = job_config j in
    let compiled = compile_job () in
    run_cycle ~config ~racecheck:j.racecheck ~profile:j.profile ?stream
      ?heartbeat_cycles ?max_cycles:j.max_cycles compiled
  | Predict ->
    let config = job_config j in
    let compiled = compile_job () in
    run_predict ~config ~racecheck:j.racecheck ?calibration:j.calibration
      ?max_instructions:j.max_instructions compiled

let exec ?options ?memmap ?config ?stream ?(functional = false) src =
  run_job ?stream
    (job ?options ?memmap ?config
       ~mode:(if functional then Functional else Cycle)
       src)

let machine ?config compiled = Xmtsim.Machine.create ?config compiled.image

let read_global m compiled name len =
  let addr = Isa.Program.address_of compiled.image name in
  Array.init len (fun i ->
      Isa.Value.to_int (Xmtsim.Mem.read (Xmtsim.Machine.mem m) (addr + (4 * i))))
