(** The programmer's workflow in one call (paper §I): XMTC source ->
    optimizing compiler -> XMT assembly -> simulation, in either the
    cycle-accurate or the fast functional mode.

    Global variables are the only program input (no OS, §III-A): pass
    initial values for named globals through [memmap], exactly like the
    memory-map files of Fig. 3. *)

type compiled = {
  cc : Compiler.Driver.output;
  image : Isa.Program.image;
}

val compile :
  ?options:Compiler.Driver.options -> ?memmap:Isa.Memmap.t -> string -> compiled

type run = {
  output : string;
  cycles : int;  (** 0 in functional mode *)
  instructions : int;
  events : int;  (** desim events processed (0 in functional mode) *)
  stats : Xmtsim.Stats.t;
}

(** Run on the cycle-accurate simulator. *)
val run_cycle :
  ?config:Xmtsim.Config.t -> ?max_cycles:int -> compiled -> run

(** Run in the fast functional (serializing) mode. *)
val run_functional : ?max_instructions:int -> compiled -> run

(** Compile + run in one step. *)
val exec :
  ?options:Compiler.Driver.options ->
  ?memmap:Isa.Memmap.t ->
  ?config:Xmtsim.Config.t ->
  ?functional:bool ->
  string ->
  run

(** Build the machine without running it (for plug-ins, traces, DVFS). *)
val machine : ?config:Xmtsim.Config.t -> compiled -> Xmtsim.Machine.t

(** Read back an [int] global after a run needs the image address: this
    helper reads a global array from a machine's memory. *)
val read_global : Xmtsim.Machine.t -> compiled -> string -> int -> int array
