(** The programmer's workflow in one call (paper §I): XMTC source ->
    optimizing compiler -> XMT assembly -> simulation, in either the
    cycle-accurate or the fast functional mode.

    Global variables are the only program input (no OS, §III-A): pass
    initial values for named globals through [memmap], exactly like the
    memory-map files of Fig. 3. *)

type compiled = {
  cc : Compiler.Driver.output;
  image : Isa.Program.image;
}

val compile :
  ?options:Compiler.Driver.options -> ?memmap:Isa.Memmap.t -> string -> compiled

(** Shared compiled artifacts: a compile-once cache keyed on the
    (source, compiler-options, memmap) triple.

    A design-space sweep simulates one program under many machine
    configurations, so most jobs share their compile key; routing them
    through one [Artifacts.t] compiles each key once and simulates every
    config against the same read-only {!compiled} value (the simulator
    copies the image's data words into a fresh store per machine, so
    sharing is safe).  The cache is domain-safe: concurrent requests for
    a key being compiled block until the artifact is ready, and a
    failing compile leaves no cache entry — each retry compiles afresh,
    preserving the campaign engine's per-job retry semantics. *)
module Artifacts : sig
  type t

  val create : unit -> t

  (** [get t src] returns the cached artifact for the key or compiles
      (and caches) it.  Re-raises the compile error on failure. *)
  val get :
    t ->
    ?options:Compiler.Driver.options ->
    ?memmap:Isa.Memmap.t ->
    string ->
    compiled

  (** [(hits, misses)]: reuses vs compiles actually performed. *)
  val stats : t -> int * int
end

type run = {
  output : string;
  cycles : int;  (** 0 in functional mode *)
  instructions : int;
  events : int;  (** desim events processed (0 in functional mode) *)
  stats : Xmtsim.Stats.t;
  races : Obs.Json.t option;
      (** [xmt.races.v1] report when the run was race-checked: static
          findings ({!Racecheck}) plus, for cycle runs, the dynamic
          shadow-memory detector's races ({!Xmtsim.Racedetect}) *)
  profile : Obs.Json.t option;
      (** [xmt.profile.v1] CPI-stack report ({!Xmtsim.Profile}) when the
          run was profiled (cycle mode only) *)
  predict : Obs.Json.t option;
      (** [xmt.predict.v1] analytical-prediction report ({!Predict.Model})
          when the run used predict mode; [run.cycles] then carries the
          predicted cycle count *)
}

(** Run on the cycle-accurate simulator.  [racecheck] attaches the
    dynamic race detector and fills [run.races] with the combined
    static+dynamic [xmt.races.v1] report.  [profile] attaches the
    cycle-accounting profiler and fills [run.profile] with the
    [xmt.profile.v1] CPI-stack report; the profiler is passive, so the
    run's cycles, output and stats are unchanged.  [stream] attaches a
    live [xmt.events.v1] telemetry stream ({!Xmtsim.Machine.attach_stream}):
    a [run.start] record, [sim.heartbeat]s every [heartbeat_cycles]
    cluster cycles, [window.close] rollups and a [run.done] summary —
    also passive, bit-identical results including the host event
    count. *)
val run_cycle :
  ?config:Xmtsim.Config.t ->
  ?racecheck:bool ->
  ?profile:bool ->
  ?stream:Obs.Stream.t ->
  ?heartbeat_cycles:int ->
  ?max_cycles:int ->
  compiled ->
  run

(** Run in the fast functional (serializing) mode.  With [racecheck]
    the report carries the static layer only (no machine to observe). *)
val run_functional : ?racecheck:bool -> ?max_instructions:int -> compiled -> run

(** Run in analytical prediction mode: one functional pass harvests a
    reuse profile ({!Xmtsim.Reuseprofile}), the analytical model
    ({!Predict.Model}) prices it under [config], and [run.cycles]
    carries the predicted cycle count ([run.predict] the full
    [xmt.predict.v1] report).  [calibration] names an
    [xmt.calibration.v1] artifact; absent, the committed
    {!Predict.Calibrate.default} fit applies.  Raises
    {!Predict.Calibrate.Calib_error} on a missing or invalid artifact
    and {!Xmtsim.Config.Bad_config} on an inconsistent config.  Like
    functional mode, [racecheck] yields the static layer only. *)
val run_predict :
  ?config:Xmtsim.Config.t ->
  ?racecheck:bool ->
  ?calibration:string ->
  ?max_instructions:int ->
  compiled ->
  run

(** {1 The job-oriented surface}

    A [job] reifies one compile+simulate as data: source, compiler
    options, simulator configuration, mode, memory map and an optional
    per-job RNG seed.  The campaign engine ({!Campaign}), the benches
    and [xmtsim_cli] all construct jobs and hand them to {!run_job};
    {!exec} is a thin wrapper kept for existing callers. *)

type mode = Cycle | Functional | Predict

val mode_name : mode -> string

type job = {
  job_name : string;
  source : string;  (** XMTC source text *)
  options : Compiler.Driver.options;
  memmap : Isa.Memmap.t;
  config : Xmtsim.Config.t;
  mode : mode;
  seed : int option;
      (** deterministic per-job RNG seed; overrides [config.seed] *)
  max_cycles : int option;  (** cycle-mode budget *)
  max_instructions : int option;  (** functional-mode budget *)
  racecheck : bool;  (** attach the race checker; report in [run.races] *)
  profile : bool;
      (** attach the cycle-accounting profiler; report in [run.profile]
          (cycle mode only) *)
  calibration : string option;
      (** predict-mode calibration artifact path; [None] = the built-in
          {!Predict.Calibrate.default} fit *)
}

(** Build a job; defaults: [name ""], [default_options], empty memmap,
    {!Xmtsim.Config.fpga64}, [Cycle] mode, no seed override, no budget
    overrides, race checking off, profiling off, built-in calibration. *)
val job :
  ?name:string ->
  ?options:Compiler.Driver.options ->
  ?memmap:Isa.Memmap.t ->
  ?config:Xmtsim.Config.t ->
  ?mode:mode ->
  ?seed:int ->
  ?max_cycles:int ->
  ?max_instructions:int ->
  ?racecheck:bool ->
  ?profile:bool ->
  ?calibration:string ->
  string ->
  job

(** The configuration the job simulates with: per-job [seed] folded in,
    then validated.  Raises {!Xmtsim.Config.Bad_config} on an
    inconsistent sweep point. *)
val job_config : job -> Xmtsim.Config.t

(** Compile and simulate one job.  Raises {!Compiler.Driver.Compile_error},
    {!Xmtsim.Config.Bad_config} or {!Xmtsim.Machine.Sim_error} on failure
    — the campaign engine captures these per job.  [artifacts] routes the
    compile through a shared {!Artifacts} cache (compile once, simulate
    many configs).  [stream] attaches a live telemetry stream to
    cycle-mode runs (functional runs have no cycle clock to sample and
    ignore it). *)
val run_job :
  ?artifacts:Artifacts.t -> ?stream:Obs.Stream.t -> ?heartbeat_cycles:int ->
  job -> run

(** Compile + run in one step (thin wrapper over {!run_job}). *)
val exec :
  ?options:Compiler.Driver.options ->
  ?memmap:Isa.Memmap.t ->
  ?config:Xmtsim.Config.t ->
  ?stream:Obs.Stream.t ->
  ?functional:bool ->
  string ->
  run

(** Build the machine without running it (for plug-ins, traces, DVFS). *)
val machine : ?config:Xmtsim.Config.t -> compiled -> Xmtsim.Machine.t

(** Read back an [int] global after a run needs the image address: this
    helper reads a global array from a machine's memory. *)
val read_global : Xmtsim.Machine.t -> compiled -> string -> int -> int array
