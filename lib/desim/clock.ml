type handler = int -> unit

type t = {
  name : string;
  sched : Scheduler.t;
  mutable period : int;
  mutable cycles : int;
  mutable handlers : (int * handler) list; (* (phase, handler), sorted *)
  mutable enabled : bool;
  mutable sleeping : bool;
  mutable started : bool;
  mutable tick_pending : bool; (* an event for our next tick is in the list *)
  mutable anchor : int; (* time of the last fired tick (start time if none) *)
  mutable skipped : int; (* accrued estimate of ticks gated away *)
  mutable counted : int; (* skipped ticks already accrued since [anchor] *)
}

let create sched ~name ~period =
  if period <= 0 then invalid_arg "Clock.create: period must be positive";
  {
    name;
    sched;
    period;
    cycles = 0;
    handlers = [];
    enabled = true;
    sleeping = false;
    started = false;
    tick_pending = false;
    anchor = 0;
    skipped = 0;
    counted = 0;
  }

let name t = t.name
let period t = t.period

(* Estimate of grid ticks in (anchor, now] not yet accounted for.  Pure
   bookkeeping for the skipped-tick metric — never used for scheduling. *)
let unaccounted_skips t =
  let now = Scheduler.now t.sched in
  max 0 ((now - t.anchor) / t.period - t.counted)

let set_period t p =
  if p <= 0 then invalid_arg "Clock.set_period: period must be positive";
  (* A sleeping clock accrues its skipped-tick estimate for the elapsed
     span at the old period first, so a DVFS change on a gated domain does
     not recount that span at the new rate (no double-counting). *)
  if t.sleeping && t.started && p <> t.period then begin
    let k = unaccounted_skips t in
    t.skipped <- t.skipped + k;
    t.counted <- t.counted + k
  end;
  t.period <- p

let cycles t = t.cycles

let skipped_ticks t =
  t.skipped + (if t.sleeping && t.started then unaccounted_skips t else 0)

let on_tick ?(phase = 0) t h =
  (* Stable insertion keeping phases ascending, registration order within. *)
  let rec insert = function
    | [] -> [ (phase, h) ]
    | (p, _) :: _ as rest when p > phase -> (phase, h) :: rest
    | x :: rest -> x :: insert rest
  in
  t.handlers <- insert t.handlers

let rec schedule_tick t ~at_least =
  if (not t.tick_pending) && t.enabled && not t.sleeping then begin
    t.tick_pending <- true;
    let time = at_least in
    Scheduler.schedule_at t.sched ~prio:Scheduler.prio_tick ~time (fun () ->
        t.tick_pending <- false;
        if t.enabled && not t.sleeping then begin
          let c = t.cycles in
          t.cycles <- c + 1;
          t.anchor <- Scheduler.now t.sched;
          t.counted <- 0;
          List.iter (fun (_, h) -> h c) t.handlers;
          schedule_tick t ~at_least:(Scheduler.now t.sched + t.period)
        end)
  end

let start t =
  if not t.started then begin
    t.started <- true;
    t.anchor <- Scheduler.now t.sched;
    schedule_tick t ~at_least:(Scheduler.now t.sched)
  end

let enabled t = t.enabled
let disable t = t.enabled <- false

let enable t =
  if not t.enabled then begin
    t.enabled <- true;
    if t.started then schedule_tick t ~at_least:(Scheduler.now t.sched + 1)
  end

let sleep t = t.sleeping <- true

let wake ?tick_at_now t =
  if t.sleeping then begin
    t.sleeping <- false;
    if t.started then begin
      let now = Scheduler.now t.sched in
      (* Resume on the period grid anchored at the last fired tick: the
         smallest anchor + k*period (k >= 1) that is >= now.  This is what
         makes gating invisible to cycle counts — a woken domain ticks at
         exactly the simulated times an ungated run would have. *)
      let delta = now - t.anchor in
      let k = max 1 ((delta + t.period - 1) / t.period) in
      let cand = t.anchor + (k * t.period) in
      let tick_at_now =
        match tick_at_now with
        | Some b -> b
        | None ->
          (* The ungated tick at this exact instant fires at [prio_tick];
             if the currently-executing event pops after that priority,
             that tick is already lost for this instant. *)
          Scheduler.current_prio t.sched <= Scheduler.prio_tick
      in
      let next = if cand = now && not tick_at_now then cand + t.period else cand in
      (* accrue the skipped-tick estimate for the grid points in
         (anchor, next) that never fired *)
      let virt = (next - t.anchor) / t.period - 1 in
      let add = max 0 (virt - t.counted) in
      t.skipped <- t.skipped + add;
      t.counted <- t.counted + add;
      schedule_tick t ~at_least:next
    end
  end

let sleeping t = t.sleeping
