(** Clock domains (paper §III-B, §III-D).

    A clock is a self-rescheduling actor that ticks with a mutable period;
    components register tick handlers on it.  A clock with many handlers is
    exactly the {e macro-actor} of §III-D: one scheduled event per cycle
    iterates all grouped components, instead of one event per component.

    Clocks support the runtime-control features the paper exposes through
    activity plug-ins: the period can be changed on the fly (DVFS, taking
    effect at the next tick) and the clock can be disabled/enabled.

    {b Clock gating} (§III-C: the discrete-event engine skips work for
    inactive components): a clock whose handlers all have nothing to do may
    be put to [sleep] and [wake]d later.  A woken clock resumes {e on the
    period grid} anchored at its last fired tick, so a gated-then-woken
    domain ticks at exactly the simulated times an ungated run would have —
    gating is invisible to cycle counts, stats and traces, and only reduces
    the host-side event count. *)

type t

(** Handlers run in ascending phase order within a tick; ties run in
    registration order.  The handler receives the cycle index of this clock
    (number of ticks elapsed, counting gated-off ticks never happens). *)
type handler = int -> unit

val create : Scheduler.t -> name:string -> period:int -> t
val name : t -> string
val period : t -> int

(** Change the period; takes effect from the next tick.  Raises
    [Invalid_argument] if not positive.  On a {e sleeping} clock the new
    period takes effect at the next woken tick: {!wake} computes the
    resume grid from the last fired tick with the period current at wake
    time.  The skipped-tick estimate for the span already slept is
    accrued at the old period first, so a DVFS change on a gated domain
    does not double-count. *)
val set_period : t -> int -> unit

(** Cycles elapsed on this clock (fired ticks only; gated-away ticks are
    not counted here — see {!skipped_ticks}). *)
val cycles : t -> int

(** Estimate of the ticks this clock never fired because it was asleep:
    the grid points covered by completed sleep spans, plus the span still
    open if the clock is currently sleeping.  [cycles + skipped_ticks]
    approximates what [cycles] would be on an ungated run; the host-side
    event reduction from gating is proportional to this number. *)
val skipped_ticks : t -> int

val on_tick : ?phase:int -> t -> handler -> unit

(** Begin ticking.  Must be called once after handlers are registered. *)
val start : t -> unit

val enabled : t -> bool
val disable : t -> unit
val enable : t -> unit

(** Stop scheduling ticks until [wake].  Unlike [disable], [wake] may be
    called from any component (e.g. a package arriving at an idle cluster).
    Sleeping while a tick event is already scheduled does not leak a tick:
    the pending event fires as a no-op (handlers do not run, [cycles] does
    not advance) and, if the clock woke up in the meantime, serves as the
    normally-scheduled next tick. *)
val sleep : t -> unit

(** Resume ticking on the period grid anchored at the last fired tick
    (the smallest grid point at least one period after it and >= now).

    When the wake lands {e exactly} on a grid point, whether that tick
    still fires depends on whether the equivalent ungated tick would have
    popped before the currently-executing event.  By default this is
    derived from {!Scheduler.current_prio}: a waker running after
    [prio_tick] (e.g. a package transfer) means the instant's tick is
    already lost and the clock resumes one period later.  Pass
    [~tick_at_now] explicitly when the caller knows better — e.g. a tick
    handler of another clock waking this one must compare how the two
    clocks' tick events would have been ordered in an ungated run. *)
val wake : ?tick_at_now:bool -> t -> unit

val sleeping : t -> bool
