let prio_tick = 0
let prio_negotiate = 10
let prio_transfer = 20
let prio_stop = 1000

(* Stop events carry the generation they were armed in; [run] bumps the
   generation when it returns, so stops left over from a finished run are
   drained as no-ops instead of truncating a later run. *)
type action = Run of (unit -> unit) | Stop of int

type t = {
  events : action Event_heap.t;
  mutable time : int;
  mutable processed : int;
  mutable stop_gen : int;
  mutable cur_prio : int;
}

let create () =
  { events = Event_heap.create (); time = 0; processed = 0; stop_gen = 0;
    cur_prio = prio_tick }

let now t = t.time
let current_prio t = t.cur_prio

let schedule_at t ?(prio = prio_tick) ~time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: time %d is in the past (now %d)"
         time t.time);
  Event_heap.add t.events ~time ~prio (Run f)

let schedule t ?prio ~delay f =
  if delay < 0 then invalid_arg "Scheduler.schedule: negative delay";
  schedule_at t ?prio ~time:(t.time + delay) f

let stop t ?time () =
  let time = match time with Some x -> x | None -> t.time in
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Scheduler.stop: time %d is in the past (now %d)" time
         t.time);
  Event_heap.add t.events ~time ~prio:prio_stop (Stop t.stop_gen)

type outcome = Stopped | Drained | Budget

let run ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let rec loop () =
    if !budget = 0 then Budget
    else if Event_heap.is_empty t.events then Drained
    else begin
      let time, prio, action = Event_heap.pop t.events in
      t.time <- time;
      t.cur_prio <- prio;
      t.processed <- t.processed + 1;
      decr budget;
      match action with
      | Stop g when g = t.stop_gen -> Stopped
      | Stop _ -> loop () (* stale: armed for a run that already returned *)
      | Run f ->
        f ();
        loop ()
    end
  in
  let outcome = loop () in
  t.stop_gen <- t.stop_gen + 1;
  outcome

let events_processed t = t.processed

let reset ?(keep_counters = false) t =
  Event_heap.clear t.events;
  t.time <- 0;
  t.stop_gen <- t.stop_gen + 1;
  if not keep_counters then t.processed <- 0
