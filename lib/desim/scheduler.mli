(** The discrete-event scheduler (paper §III-C, Fig. 4, Fig. 5b).

    The scheduler owns the event list and drives the simulation: its main
    loop repeatedly pops the earliest event, advances simulated time to the
    event's timestamp, and runs the event's action.  Unlike a discrete-time
    simulator, time jumps directly between event timestamps.  Simulation
    terminates when a {e stop event} fires, when the event list drains, or
    when an event budget is exhausted. *)

type t

(** Standard event priorities.  A clock cycle is split into two phases
    (paper §III-C): components first {e negotiate} transfers, then packages
    are {e moved}.  [prio_tick] fires before either so clocked state machines
    observe a consistent pre-phase state. *)
val prio_tick : int

val prio_negotiate : int
val prio_transfer : int
val prio_stop : int

val create : unit -> t

(** Current simulated time. *)
val now : t -> int

(** Priority of the event currently (or most recently) being executed.
    {!Clock.wake} uses this to decide whether the virtual tick at the
    current instant would already have popped in an ungated run
    (same-time events pop in ascending priority order). *)
val current_prio : t -> int

(** [schedule t ~delay ~prio f] schedules action [f] at [now t + delay].
    [delay] must be non-negative; [prio] defaults to [prio_tick]. *)
val schedule : t -> ?prio:int -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time ~prio f] schedules at absolute [time >= now t]. *)
val schedule_at : t -> ?prio:int -> time:int -> (unit -> unit) -> unit

(** Request termination: a stop event is scheduled at the given absolute
    time (default: immediately, i.e. before any later-timed event).

    Raises [Invalid_argument] if [time] is in the past, consistently with
    {!schedule_at} (an [invalid_arg], not a clamp, so a caller computing a
    stale deadline fails loudly instead of stopping at a surprising time).

    A stop event only terminates the run in progress when it fires: every
    {!run} bumps an internal generation on return, and stop events from
    earlier generations are drained as no-ops.  Without this, a budget
    stop left unconsumed by an early [Halt] would silently truncate a
    later run (e.g. a restore-then-run flow). *)
val stop : t -> ?time:int -> unit -> unit

type outcome =
  | Stopped  (** a stop event fired *)
  | Drained  (** the event list became empty *)
  | Budget  (** the [max_events] budget was exhausted *)

(** Run the main loop.  Returns why the loop exited.  On return (for any
    outcome) all currently-armed stop events are invalidated; see
    {!stop}. *)
val run : ?max_events:int -> t -> outcome

(** Number of events processed so far (monotonic across [run] calls). *)
val events_processed : t -> int

(** Drop all pending events and reset time to 0.  Event and time counters
    are preserved only if [keep_counters] is set. *)
val reset : ?keep_counters:bool -> t -> unit
