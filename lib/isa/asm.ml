exception Parse_error of { line : int; msg : string }

let fail line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizing one line: mnemonics, registers, numbers, labels,
   punctuation.  Comments start with '#' or ';'. *)

type tok =
  | Word of string  (* mnemonic, label, register, directive *)
  | Int of int
  | Float of float
  | Str of string
  | Comma
  | Colon
  | Lparen
  | Rparen

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$' || c = '.'
  in
  while !i < n do
    let c = s.[!i] in
    if c = '#' || c = ';' then i := n
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ',' then (toks := Comma :: !toks; incr i)
    else if c = ':' then (toks := Colon :: !toks; incr i)
    else if c = '(' then (toks := Lparen :: !toks; incr i)
    else if c = ')' then (toks := Rparen :: !toks; incr i)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if s.[!i] = '"' then closed := true
        else if s.[!i] = '\\' && !i + 1 < n then begin
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '0' -> Buffer.add_char buf '\000'
          | other -> Buffer.add_char buf other);
          incr i
        end
        else Buffer.add_char buf s.[!i];
        incr i
      done;
      if not !closed then fail lineno "unterminated string literal";
      toks := Str (Buffer.contents buf) :: !toks
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      incr i;
      while
        !i < n
        && (let d = s.[!i] in
            (d >= '0' && d <= '9')
            || d = '.' || d = 'x' || d = 'X' || d = 'e' || d = 'E' || d = '+'
            || d = '-' || d = 'p' || d = 'P'
            || (d >= 'a' && d <= 'f')
            || (d >= 'A' && d <= 'F'))
      do
        incr i
      done;
      let lit = String.sub s start (!i - start) in
      match int_of_string_opt lit with
      | Some v -> toks := Int v :: !toks
      | None -> (
        match float_of_string_opt lit with
        | Some f -> toks := Float f :: !toks
        | None -> fail lineno "bad numeric literal %S" lit)
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do incr i done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else fail lineno "unexpected character %C" c
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Operand helpers over the token list. *)

let reg lineno = function
  | Word w -> (
    match Reg.of_string w with
    | Some r -> r
    | None -> fail lineno "expected integer register, got %S" w)
  | _ -> fail lineno "expected integer register"

let freg lineno = function
  | Word w -> (
    match Reg.f_of_string w with
    | Some r -> r
    | None -> fail lineno "expected float register, got %S" w)
  | _ -> fail lineno "expected float register"

let greg lineno = function
  | Word w -> (
    match Reg.g_of_string w with
    | Some r -> r
    | None -> fail lineno "expected global register, got %S" w)
  | _ -> fail lineno "expected global register"

let imm lineno = function
  | Int v -> v
  | _ -> fail lineno "expected integer immediate"

let labelname lineno = function
  | Word w -> w
  | _ -> fail lineno "expected label"

(* mem operand: [Int off; Lparen; reg; Rparen] or [Lparen; reg; Rparen] *)
let memop lineno toks =
  match toks with
  | [ Int off; Lparen; r'; Rparen ] -> (imm lineno (Int off), reg lineno r')
  | [ Lparen; r'; Rparen ] -> (0, reg lineno r')
  | _ -> fail lineno "expected memory operand off($reg)"

let split_commas toks =
  let rec go acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | Comma :: rest -> go (List.rev cur :: acc) [] rest
    | tok :: rest -> go acc (tok :: cur) rest
  in
  match toks with [] -> [] | _ -> go [] [] toks

let one lineno what = function
  | [ tok ] -> tok
  | _ -> fail lineno "expected a single %s operand" what

(* ------------------------------------------------------------------ *)

let parse_operands lineno mnem operands =
  let ops = split_commas operands in
  let op1 () = match ops with [ a ] -> a | _ -> fail lineno "%s: expected 1 operand" mnem in
  let op2 () =
    match ops with [ a; b ] -> (a, b) | _ -> fail lineno "%s: expected 2 operands" mnem
  in
  let op3 () =
    match ops with
    | [ a; b; c ] -> (a, b, c)
    | _ -> fail lineno "%s: expected 3 operands" mnem
  in
  let r1 t = reg lineno (one lineno "register" t) in
  let f1 t = freg lineno (one lineno "float register" t) in
  let g1 t = greg lineno (one lineno "global register" t) in
  let i1 t = imm lineno (one lineno "immediate" t) in
  let l1 t = labelname lineno (one lineno "label" t) in
  let alu op = let a, b, c = op3 () in Instr.Alu (op, r1 a, r1 b, r1 c) in
  let alui op = let a, b, c = op3 () in Instr.Alui (op, r1 a, r1 b, i1 c) in
  let sft_any op =
    let a, b, c = op3 () in
    match one lineno "operand" c with
    | Int v -> Instr.Sfti (op, r1 a, r1 b, v)
    | tok -> Instr.Sft (op, r1 a, r1 b, reg lineno tok)
  in
  let sftv op = let a, b, c = op3 () in Instr.Sft (op, r1 a, r1 b, r1 c) in
  let mdu op = let a, b, c = op3 () in Instr.Mdu (op, r1 a, r1 b, r1 c) in
  let fpu op = let a, b, c = op3 () in Instr.Fpu (op, f1 a, f1 b, f1 c) in
  let fpu1 op = let a, b = op2 () in Instr.Fpu1 (op, f1 a, f1 b) in
  let fcmp op = let a, b, c = op3 () in Instr.Fcmp (op, r1 a, f1 b, f1 c) in
  let br op = let a, b, c = op3 () in Instr.Br (op, r1 a, r1 b, l1 c) in
  let brz op = let a, b = op2 () in Instr.Brz (op, r1 a, l1 b) in
  let mem mk = let a, b = op2 () in let off, base = memop lineno b in mk (r1 a) off base in
  let fmem mk = let a, b = op2 () in let off, base = memop lineno b in mk (f1 a) off base in
  match mnem with
  | "add" -> alu Instr.Add
  | "sub" -> alu Instr.Sub
  | "and" -> alu Instr.And
  | "or" -> alu Instr.Or
  | "xor" -> alu Instr.Xor
  | "nor" -> alu Instr.Nor
  | "slt" -> alu Instr.Slt
  | "sltu" -> alu Instr.Sltu
  | "addi" -> alui Instr.Addi
  | "andi" -> alui Instr.Andi
  | "ori" -> alui Instr.Ori
  | "xori" -> alui Instr.Xori
  | "slti" -> alui Instr.Slti
  | "li" -> let a, b = op2 () in Instr.Li (r1 a, i1 b)
  | "la" -> let a, b = op2 () in Instr.La (r1 a, l1 b)
  | "move" -> let a, b = op2 () in Instr.Alu (Instr.Add, r1 a, r1 b, Reg.zero)
  | "sll" -> sft_any Instr.Sll
  | "srl" -> sft_any Instr.Srl
  | "sra" -> sft_any Instr.Sra
  | "sllv" -> sftv Instr.Sll
  | "srlv" -> sftv Instr.Srl
  | "srav" -> sftv Instr.Sra
  | "mul" -> mdu Instr.Mul
  | "div" -> mdu Instr.Div
  | "rem" -> mdu Instr.Rem
  | "add.s" -> fpu Instr.Fadd
  | "sub.s" -> fpu Instr.Fsub
  | "mul.s" -> fpu Instr.Fmul
  | "div.s" -> fpu Instr.Fdiv
  | "neg.s" -> fpu1 Instr.Fneg
  | "abs.s" -> fpu1 Instr.Fabs
  | "sqrt.s" -> fpu1 Instr.Fsqrt
  | "mov.s" -> fpu1 Instr.Fmov
  | "c.eq.s" -> fcmp Instr.Feq
  | "c.lt.s" -> fcmp Instr.Flt
  | "c.le.s" -> fcmp Instr.Fle
  | "cvt.s.w" -> let a, b = op2 () in Instr.Cvt_i2f (f1 a, r1 b)
  | "cvt.w.s" -> let a, b = op2 () in Instr.Cvt_f2i (r1 a, f1 b)
  | "li.s" -> (
    let a, b = op2 () in
    match one lineno "float immediate" b with
    | Float x -> Instr.Fli (f1 a, x)
    | Int x -> Instr.Fli (f1 a, float_of_int x)
    | _ -> fail lineno "li.s: expected float immediate")
  | "lw" -> mem (fun r' off base -> Instr.Lw (r', off, base))
  | "lw.ro" -> mem (fun r' off base -> Instr.Lwro (r', off, base))
  | "sw" -> mem (fun r' off base -> Instr.Sw (r', off, base))
  | "sw.nb" -> mem (fun r' off base -> Instr.Swnb (r', off, base))
  | "l.s" -> fmem (fun r' off base -> Instr.Flw (r', off, base))
  | "s.s" -> fmem (fun r' off base -> Instr.Fsw (r', off, base))
  | "pref" ->
    let a = op1 () in
    let off, base = memop lineno a in
    Instr.Pref (off, base)
  | "psm" -> mem (fun r' off base -> Instr.Psm (r', off, base))
  | "beq" -> br Instr.Beq
  | "bne" -> br Instr.Bne
  | "blez" -> brz Instr.Blez
  | "bgtz" -> brz Instr.Bgtz
  | "bltz" -> brz Instr.Bltz
  | "bgez" -> brz Instr.Bgez
  | "beqz" -> brz Instr.Beqz
  | "bnez" -> brz Instr.Bnez
  | "j" -> Instr.J (l1 (op1 ()))
  | "jal" -> Instr.Jal (l1 (op1 ()))
  | "jr" -> Instr.Jr (r1 (op1 ()))
  | "spawn" -> let a, b = op2 () in Instr.Spawn (r1 a, r1 b)
  | "join" -> if ops = [] then Instr.Join else fail lineno "join takes no operands"
  | "ps" -> let a, b = op2 () in Instr.Ps (r1 a, g1 b)
  | "chkid" -> Instr.Chkid (r1 (op1 ()))
  | "mfg" -> let a, b = op2 () in Instr.Mfg (r1 a, g1 b)
  | "mtg" -> let a, b = op2 () in Instr.Mtg (g1 a, r1 b)
  | "fence" -> if ops = [] then Instr.Fence else fail lineno "fence takes no operands"
  | "pint" -> Instr.Sys (Instr.Print_int, r1 (op1 ()))
  | "pflt" -> Instr.Sys (Instr.Print_float, f1 (op1 ()))
  | "pchr" -> Instr.Sys (Instr.Print_char, r1 (op1 ()))
  | "pstr" -> Instr.Sys (Instr.Print_str, r1 (op1 ()))
  | "halt" -> if ops = [] then Instr.Halt else fail lineno "halt takes no operands"
  | other -> fail lineno "unknown mnemonic %S" other

let parse_instr line =
  match tokenize 0 line with
  | Word mnem :: rest -> parse_operands 0 mnem rest
  | _ -> fail 0 "expected instruction"

(* ------------------------------------------------------------------ *)

type section = Text | Data

let parse src =
  let lines = String.split_on_char '\n' src in
  let section = ref Text in
  let text = ref [] in
  let data = ref [] in
  let parse_data_payload lineno directive operands =
    let ops = split_commas operands in
    match directive with
    | ".word" ->
      Program.Words (List.map (fun t -> imm lineno (one lineno "word" t)) ops)
    | ".float" ->
      Program.Floats
        (List.map
           (fun t ->
             match one lineno "float" t with
             | Float f -> f
             | Int v -> float_of_int v
             | _ -> fail lineno ".float: expected literal")
           ops)
    | ".space" -> (
      match ops with
      | [ t ] ->
        let bytes = imm lineno (one lineno "size" t) in
        if bytes mod 4 <> 0 then fail lineno ".space: size must be word-aligned";
        Program.Space (bytes / 4)
      | _ -> fail lineno ".space: expected one operand")
    | ".asciiz" -> (
      match ops with
      | [ [ Str s ] ] -> Program.Asciiz s
      | _ -> fail lineno ".asciiz: expected one string")
    | other -> fail lineno "unknown data directive %S" other
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let rec consume toks =
        match toks with
        | [] -> ()
        | Word ".text" :: rest ->
          section := Text;
          consume rest
        | Word ".data" :: rest ->
          section := Data;
          consume rest
        | Word ".globl" :: _ -> () (* accepted and ignored *)
        | Word ".loc" :: rest -> (
          match (!section, rest) with
          | Text, [ Int line; Word fn ] ->
            text := Program.Loc { line; fn } :: !text
          | Text, _ -> fail lineno ".loc: expected line number and function"
          | Data, _ -> fail lineno ".loc in data section")
        | Word w :: Colon :: rest -> (
          match !section with
          | Text ->
            text := Program.Label w :: !text;
            consume rest
          | Data -> (
            match rest with
            | Word d :: operands when String.length d > 0 && d.[0] = '.' ->
              data :=
                { Program.dlabel = w; payload = parse_data_payload lineno d operands }
                :: !data
            | [] ->
              (* bare data label: zero-size placeholder alias *)
              data := { Program.dlabel = w; payload = Program.Space 0 } :: !data
            | _ -> fail lineno "expected data directive after label"))
        | Word mnem :: rest -> (
          match !section with
          | Text -> text := Program.Ins (parse_operands lineno mnem rest) :: !text
          | Data -> fail lineno "instruction %S in data section" mnem)
        | _ -> fail lineno "syntax error"
      in
      consume (tokenize lineno line))
    lines;
  { Program.text = List.rev !text; data = List.rev !data }

(* ------------------------------------------------------------------ *)

let print (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "\t.text\n";
  List.iter
    (fun item ->
      match item with
      | Program.Label l -> Buffer.add_string buf (l ^ ":\n")
      | Program.Ins i -> Buffer.add_string buf ("\t" ^ Instr.to_string i ^ "\n")
      | Program.Comment c -> Buffer.add_string buf ("\t# " ^ c ^ "\n")
      | Program.Loc { line; fn } ->
        Buffer.add_string buf (Printf.sprintf "\t.loc %d %s\n" line fn))
    p.text;
  if p.data <> [] then begin
    Buffer.add_string buf "\t.data\n";
    List.iter
      (fun { Program.dlabel; payload } ->
        let body =
          match payload with
          | Program.Words ws -> ".word " ^ String.concat ", " (List.map string_of_int ws)
          | Program.Floats fs ->
            ".float " ^ String.concat ", " (List.map (Printf.sprintf "%h") fs)
          | Program.Space n -> Printf.sprintf ".space %d" (n * 4)
          | Program.Asciiz s -> Printf.sprintf ".asciiz %S" s
        in
        Buffer.add_string buf (Printf.sprintf "%s: %s\n" dlabel body))
      p.data
  end;
  Buffer.contents buf

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))

let print_to_file p path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print p))
