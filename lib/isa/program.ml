type item =
  | Label of string
  | Ins of Instr.t
  | Comment of string
  | Loc of { line : int; fn : string }

type data_payload =
  | Words of int list
  | Floats of float list
  | Space of int
  | Asciiz of string

type data_item = { dlabel : string; payload : data_payload }
type t = { text : item list; data : data_item list }

let empty = { text = []; data = [] }

let payload_words = function
  | Words ws -> List.length ws
  | Floats fs -> List.length fs
  | Space n -> n
  | Asciiz s -> String.length s + 1

let strip_locs t =
  { t with text = List.filter (function Loc _ -> false | _ -> true) t.text }

let instructions t =
  List.filter_map
    (function Ins i -> Some i | Label _ | Comment _ | Loc _ -> None)
    t.text

type image = {
  instrs : Instr.t array;
  targets : int array;
  code_labels : (string, int) Hashtbl.t;
  data_addr : (string, int) Hashtbl.t;
  data_words : Value.t array;
  data_base : int;
  entry : int;
  locs : (int * string) option array;
}

let data_base_addr = 0x1000

exception Resolve_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Resolve_error s)) fmt

let payload_values = function
  | Words ws -> List.map Value.int ws
  | Floats fs -> List.map Value.flt fs
  | Space n -> List.init n (fun _ -> Value.zero)
  | Asciiz s ->
    List.init
      (String.length s + 1)
      (fun i -> if i < String.length s then Value.int (Char.code s.[i]) else Value.zero)

let resolve ?(extra_data = []) t =
  (* Pass 1: code label addresses. *)
  let code_labels = Hashtbl.create 64 in
  let n_instrs =
    List.fold_left
      (fun idx item ->
        match item with
        | Label l ->
          if Hashtbl.mem code_labels l then err "duplicate code label %s" l;
          Hashtbl.replace code_labels l idx;
          idx
        | Ins _ -> idx + 1
        | Comment _ | Loc _ -> idx)
      0 t.text
  in
  (* Data layout. *)
  let data_addr = Hashtbl.create 64 in
  let all_data =
    t.data
    @ List.map
        (fun (name, vals) -> { dlabel = name; payload = Space (Array.length vals) })
        (List.filter
           (fun (name, _) -> not (List.exists (fun d -> d.dlabel = name) t.data))
           extra_data)
  in
  let total_words =
    List.fold_left
      (fun off d ->
        if Hashtbl.mem data_addr d.dlabel then err "duplicate data label %s" d.dlabel;
        if Hashtbl.mem code_labels d.dlabel then
          err "label %s defined in both text and data" d.dlabel;
        Hashtbl.replace data_addr d.dlabel (data_base_addr + (4 * off));
        off + payload_words d.payload)
      0 all_data
  in
  let data_words = Array.make (max total_words 1) Value.zero in
  List.iter
    (fun d ->
      let addr = Hashtbl.find data_addr d.dlabel in
      let word0 = (addr - data_base_addr) / 4 in
      List.iteri (fun i v -> data_words.(word0 + i) <- v) (payload_values d.payload))
    all_data;
  (* Linked memory-map inputs overwrite their placement. *)
  List.iter
    (fun (name, vals) ->
      match Hashtbl.find_opt data_addr name with
      | None -> err "memory map names unknown label %s" name
      | Some addr ->
        let word0 = (addr - data_base_addr) / 4 in
        if word0 + Array.length vals > Array.length data_words then
          err "memory map values for %s overflow its space" name;
        Array.iteri (fun i v -> data_words.(word0 + i) <- v) vals)
    extra_data;
  (* Pass 2: flatten instructions, resolve targets. *)
  let instrs = Array.make (max n_instrs 1) Instr.Halt in
  let targets = Array.make (max n_instrs 1) (-1) in
  (* Debug map: a [Loc] directive sets the source position of every
     following instruction until the next one.  Line 0 marks compiler-
     generated code (prologues, the [__start] runtime). *)
  let locs = Array.make (max n_instrs 1) None in
  let cur_loc = ref None in
  let idx = ref 0 in
  List.iter
    (function
      | Label _ | Comment _ -> ()
      | Loc { line; fn } -> cur_loc := Some (line, fn)
      | Ins i ->
        instrs.(!idx) <- i;
        locs.(!idx) <- !cur_loc;
        (match i with
        | Instr.La (_, l) -> (
          match Hashtbl.find_opt data_addr l with
          | Some a -> targets.(!idx) <- a
          | None -> (
            (* la of a code label: used for function pointers in tables *)
            match Hashtbl.find_opt code_labels l with
            | Some a -> targets.(!idx) <- a
            | None -> err "la: undefined label %s" l))
        | _ -> (
          match Instr.target i with
          | None -> ()
          | Some l -> (
            match Hashtbl.find_opt code_labels l with
            | Some a -> targets.(!idx) <- a
            | None -> err "undefined code label %s" l)));
        incr idx)
    t.text;
  let entry =
    match Hashtbl.find_opt code_labels "__start" with
    | Some i -> i
    | None -> (
      match Hashtbl.find_opt code_labels "main" with Some i -> i | None -> 0)
  in
  { instrs; targets; code_labels; data_addr; data_words;
    data_base = data_base_addr; entry; locs }

let address_of img name =
  match Hashtbl.find_opt img.data_addr name with
  | Some a -> a
  | None -> err "address_of: unknown data label %s" name
