(** Symbolic assembly programs and resolved executable images.

    A {!t} is what the compiler emits and the post-pass rewrites: a list of
    text items (labels and instructions) plus a data section.  An {!image}
    is the loaded form the simulator executes: a flat instruction array with
    branch targets and data-label addresses pre-resolved, and the initial
    memory contents (the "memory map" role of paper Fig. 3). *)

type item =
  | Label of string
  | Ins of Instr.t
  | Comment of string
  | Loc of { line : int; fn : string }
      (** debug marker: following instructions come from source [line] in
          function [fn]; line 0 = compiler-generated code *)

type data_payload =
  | Words of int list
  | Floats of float list
  | Space of int  (** n zero-initialized words *)
  | Asciiz of string  (** one char code per word, NUL-terminated *)

type data_item = { dlabel : string; payload : data_payload }
type t = { text : item list; data : data_item list }

val empty : t

(** Number of words a payload occupies. *)
val payload_words : data_payload -> int

(** Instructions only, labels dropped. *)
val instructions : t -> Instr.t list

(** The same program without [Loc] debug markers (for assembly output
    when debug info is not wanted; resolving the result loses the map). *)
val strip_locs : t -> t

type image = {
  instrs : Instr.t array;
  targets : int array;
      (** per-instruction resolved operand: branch/jump/jal target index, or
          byte address for [La], or [-1] *)
  code_labels : (string, int) Hashtbl.t;
  data_addr : (string, int) Hashtbl.t;  (** data label -> byte address *)
  data_words : Value.t array;  (** initial data segment, word-indexed *)
  data_base : int;  (** byte address where the data segment starts *)
  entry : int;  (** instruction index of [__start], else [main], else 0 *)
  locs : (int * string) option array;
      (** per-instruction debug map: (source line, function name) from the
          nearest preceding [Loc] item, or [None] before the first one *)
}

(** Base byte address of the data segment in every image. *)
val data_base_addr : int

exception Resolve_error of string

(** Resolve labels and lay out data.  Raises {!Resolve_error} on duplicate
    or undefined labels.  [extra_data] appends additional initialized
    arrays (the linked memory-map inputs) after the program's own data. *)
val resolve : ?extra_data:(string * Value.t array) list -> t -> image

(** Address of a data label in an image. *)
val address_of : image -> string -> int
