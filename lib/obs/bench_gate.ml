(** Regression gate over [xmt.bench.v1] records.

    The bench harness drops one [BENCH_<name>.json] record per
    instrumented run; a committed baseline set plus this comparator turn
    them into a CI gate.  Simulated [cycles] are deterministic per seed,
    so they are held to a tight tolerance; host-throughput rates
    ([events_per_sec]) vary with the machine, so they get a loose one and
    only guard against collapse.  A record carrying a [speedup] (the
    parallel-campaign bench) is additionally held to an absolute floor —
    parallel must strictly beat serial — whenever its [host_cores] shows
    a machine with at least two cores.

    The logic is pure (records in, report out) so tests can drive it
    without touching the filesystem; [bench/gate.exe] does the file IO. *)

type tolerance = {
  cycles_tol : float;  (** max allowed fractional cycle-count increase *)
  rate_tol : float;  (** max allowed fractional events/sec decrease *)
}

(** 2% on deterministic cycle counts (an injected 10% regression trips
    it with margin); 60% on host-dependent event rates. *)
let default_tolerance = { cycles_tol = 0.02; rate_tol = 0.6 }

type check = {
  ck_bench : string;
  ck_metric : string;
  ck_baseline : float;
  ck_fresh : float;
  ck_delta_pct : float;  (** signed change, fresh vs baseline, percent *)
  ck_allowed_pct : float;
      (** signed bound the delta was held to: [+tol%] for larger-is-worse
          metrics (cycles), [-tol%] for smaller-is-worse (events/sec) *)
  ck_ok : bool;
}

type report = {
  checks : check list;
  missing_in_fresh : string list;  (** baselined benches that did not run *)
  new_in_fresh : string list;  (** fresh benches with no baseline yet *)
  passed : bool;
}

let bench_name j =
  match Json.member "bench" j with Some (Json.Str s) -> Some s | _ -> None

let num_field k j = Option.bind (Json.member k j) Json.to_float

let pct ~baseline ~fresh =
  if baseline = 0.0 then 0.0 else (fresh -. baseline) /. baseline *. 100.0

(* A metric where larger is worse (cycles): fail when fresh exceeds
   baseline by more than tol. *)
let check_upper ~tol ~bench ~metric ~baseline ~fresh =
  {
    ck_bench = bench;
    ck_metric = metric;
    ck_baseline = baseline;
    ck_fresh = fresh;
    ck_delta_pct = pct ~baseline ~fresh;
    ck_allowed_pct = tol *. 100.0;
    ck_ok = fresh <= baseline *. (1.0 +. tol);
  }

(* A metric where smaller is worse (events/sec): fail when fresh falls
   below baseline by more than tol. *)
let check_lower ~tol ~bench ~metric ~baseline ~fresh =
  {
    ck_bench = bench;
    ck_metric = metric;
    ck_baseline = baseline;
    ck_fresh = fresh;
    ck_delta_pct = pct ~baseline ~fresh;
    ck_allowed_pct = -.tol *. 100.0;
    ck_ok = fresh >= baseline *. (1.0 -. tol);
  }

(* An absolute floor the fresh value must strictly exceed, independent
   of the baseline's value (the baseline column shows the floor). *)
let check_floor ~floor ~bench ~metric ~fresh =
  {
    ck_bench = bench;
    ck_metric = metric;
    ck_baseline = floor;
    ck_fresh = fresh;
    ck_delta_pct = pct ~baseline:floor ~fresh;
    ck_allowed_pct = 0.0;
    ck_ok = fresh > floor;
  }

(** Compare fresh records against baseline records (both [xmt.bench.v1]
    objects).  Benches are matched by their ["bench"] field; a baselined
    bench missing from [fresh] fails the gate (silent coverage loss),
    a fresh bench with no baseline is reported but passes. *)
let compare_records ?(tolerance = default_tolerance) ~baseline ~fresh () =
  let index records =
    List.filter_map (fun j -> Option.map (fun n -> (n, j)) (bench_name j)) records
  in
  let base_idx = index baseline and fresh_idx = index fresh in
  let checks =
    List.concat_map
      (fun (name, bj) ->
        match List.assoc_opt name fresh_idx with
        | None -> []
        | Some fj ->
          let one mk metric tol =
            match (num_field metric bj, num_field metric fj) with
            | Some b, Some f ->
              [ mk ~tol ~bench:name ~metric ~baseline:b ~fresh:f ]
            | _ -> []
          in
          one check_upper "cycles" tolerance.cycles_tol
          @ one check_lower "events_per_sec" tolerance.rate_tol
          (* service throughput (the serve bench): like events/sec, only
             guards against collapse *)
          @ one check_lower "jobs_per_sec" tolerance.rate_tol
          (* parallel benches must beat serial outright — but only on a
             host where parallelism can win; a single-core runner
             records its speedup without being gated on it *)
          @ (match (num_field "speedup" fj, num_field "host_cores" fj) with
            | Some s, Some cores when cores >= 2.0 ->
              [ check_floor ~floor:1.0 ~bench:name ~metric:"speedup" ~fresh:s ]
            | _ -> [])
          (* prediction-mode contracts are absolute, not baseline drift:
             the analytical model stays within 10% mean error of the
             cycle-accurate ground truth (5% for the checkpoint-sampled
             mode) and at least 100x faster *)
          @ (match num_field "predict_mae_pct" fj with
            | Some v ->
              [ check_upper ~tol:0.0 ~bench:name ~metric:"predict_mae_pct"
                  ~baseline:10.0 ~fresh:v ]
            | None -> [])
          @ (match num_field "sampled_err_pct" fj with
            | Some v ->
              [ check_upper ~tol:0.0 ~bench:name ~metric:"sampled_err_pct"
                  ~baseline:5.0 ~fresh:v ]
            | None -> [])
          @ (match num_field "predict_speedup" fj with
            | Some v ->
              [ check_floor ~floor:100.0 ~bench:name ~metric:"predict_speedup"
                  ~fresh:v ]
            | None -> []))
      base_idx
  in
  let missing_in_fresh =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n fresh_idx then None else Some n)
      base_idx
  in
  let new_in_fresh =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n base_idx then None else Some n)
      fresh_idx
  in
  {
    checks;
    missing_in_fresh;
    new_in_fresh;
    passed = missing_in_fresh = [] && List.for_all (fun c -> c.ck_ok) checks;
  }

let render r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%-24s %-16s %14s %14s %8s  %s\n" "bench" "metric" "baseline" "fresh"
    "delta" "verdict";
  List.iter
    (fun c ->
      pf "%-24s %-16s %14.6g %14.6g %+7.1f%%  %s\n" c.ck_bench c.ck_metric
        c.ck_baseline c.ck_fresh c.ck_delta_pct
        (if c.ck_ok then "ok" else "REGRESSED"))
    r.checks;
  List.iter (fun n -> pf "MISSING: baselined bench %S produced no fresh record\n" n)
    r.missing_in_fresh;
  List.iter (fun n -> pf "note: bench %S has no baseline yet\n" n) r.new_in_fresh;
  (* spell out every regression so a failure needs no manual baseline
     diffing: the offending metric, both values, the delta and the bound
     it was held to *)
  (match List.filter (fun c -> not c.ck_ok) r.checks with
  | [] -> ()
  | bad ->
    pf "\n%d regression%s:\n" (List.length bad)
      (if List.length bad = 1 then "" else "s");
    List.iter
      (fun c ->
        pf
          "  REGRESSED: %s / %s: baseline %.6g, observed %.6g (%+.1f%%), \
           allowed %+.1f%%\n"
          c.ck_bench c.ck_metric c.ck_baseline c.ck_fresh c.ck_delta_pct
          c.ck_allowed_pct)
      bad);
  pf "gate: %s\n" (if r.passed then "PASS" else "FAIL");
  Buffer.contents b
