(** Monotonic host clock.

    [Unix.gettimeofday] is wall-clock time: NTP slews and host clock
    steps move it, so intervals measured with it can jump or even go
    negative.  Every duration the toolchain reports (per-job and
    campaign wall time, bench timings) goes through this module instead,
    which reads [clock_gettime(CLOCK_MONOTONIC)] via bechamel's
    allocation-free stub.  The JSON field names stay ["wall_seconds"]
    etc. — only the clock behind them changes. *)

(* nanoseconds from an arbitrary (but fixed) origin; never decreases *)
let now_ns () : int64 = Monotonic_clock.now ()

(** Seconds from the clock's arbitrary origin — only differences are
    meaningful. *)
let now () = Int64.to_float (now_ns ()) *. 1e-9

(** Non-negative seconds elapsed since [t0] (a {!now} reading). *)
let elapsed_since t0 = Float.max 0.0 (now () -. t0)

(** [wall f] runs [f] and returns its result with the monotonic seconds
    it took. *)
let wall f =
  let t0 = now () in
  let r = f () in
  (r, elapsed_since t0)
