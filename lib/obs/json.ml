(** Minimal JSON values — emission and parsing with no external
    dependencies.  The telemetry layer ({!Metrics}, {!Tracer}) and every
    [--*-json] flag of the CLIs serialize through this module; the parser
    exists so tests can round-trip what the tools emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null" (* NaN/inf have no JSON spelling; degrade to null *)

let to_buffer ?(pretty = false) b v =
  let pad n = if pretty then Buffer.add_string b (String.make n ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go ind v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s -> escape_to b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (ind + 2);
          go (ind + 2) x)
        xs;
      nl ();
      pad ind;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (ind + 2);
          escape_to b k;
          Buffer.add_char b ':';
          if pretty then Buffer.add_char b ' ';
          go (ind + 2) x)
        kvs;
      nl ();
      pad ind;
      Buffer.add_char b '}'
  in
  go 0 v

let to_string ?pretty v =
  let b = Buffer.create 256 in
  to_buffer ?pretty b v;
  Buffer.contents b

(* Write-to-temp-then-rename: a crashed or interrupted run never leaves
   a truncated, unparsable report at [path].  The temp file lives in the
   target directory so the rename stays on one filesystem (atomic). *)
let write_file ?pretty path v =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string ?pretty v);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(** Like {!write_file}, but path ["-"] writes to stdout — the convention
    every [--*-json] CLI flag supports so runs can pipe into [jq]. *)
let write_path ?pretty path v =
  if path = "-" then begin
    print_string (to_string ?pretty v);
    print_newline ()
  end
  else write_file ?pretty path v

(* ------------------------------------------------------------------ *)
(* Parsing (strict enough for round-trip tests) *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* decode only the BMP-ASCII range we ever emit *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and tools reading their own output) *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
