(** Typed metrics registry: counters, gauges and histograms with labels.

    Components register metrics by name (dot-separated, e.g.
    ["sim.cache.accesses"]) plus an optional label set; registering the
    same name + labels twice returns the same instrument.  A registry is
    cheap to create; the simulator exports its activity counters into a
    fresh registry at reporting time ({!Xmtsim.Stats.export}), so the hot
    simulation loop keeps its flat mutable record while every consumer
    (JSON files, benches, tests) reads one uniform shape.

    Naming conventions (also in the README):
    - [sim.*]  — simulated-machine quantities (cycles, packets, hits)
    - [host.*] — wall-clock/simulator-throughput quantities
    - labels discriminate instances of one quantity ([cache="ro"]), never
      different quantities. *)

type labels = (string * string) list

type histogram = {
  h_buckets : float array;  (** upper bounds, ascending; +inf is implicit *)
  h_counts : int array;  (** length = buckets + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;  (** +inf until the first observation *)
  mutable h_max : float;  (** -inf until the first observation *)
}

type value =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type metric = {
  m_name : string;
  m_labels : labels;
  m_help : string;
  m_value : value;
}

type t = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable order : metric list;  (** registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }
let norm_labels labels = List.sort compare labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ?(help = "") ?(labels = []) name mk =
  let key = (name, norm_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
    let m = { m_name = name; m_labels = norm_labels labels; m_help = help; m_value = mk () } in
    Hashtbl.replace t.tbl key m;
    t.order <- m :: t.order;
    m

let counter t ?help ?labels name =
  match (register t ?help ?labels name (fun () -> Counter (ref 0))).m_value with
  | Counter r -> r
  | v -> invalid_arg (Printf.sprintf "Metrics.counter: %s is a %s" name (kind_name v))

let gauge t ?help ?labels name =
  match (register t ?help ?labels name (fun () -> Gauge (ref 0.0))).m_value with
  | Gauge r -> r
  | v -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is a %s" name (kind_name v))

let histogram t ?help ?labels ~buckets name =
  let buckets = List.sort_uniq compare buckets in
  let mk () =
    Histogram
      {
        h_buckets = Array.of_list buckets;
        h_counts = Array.make (List.length buckets + 1) 0;
        h_sum = 0.0;
        h_count = 0;
        h_min = infinity;
        h_max = neg_infinity;
      }
  in
  match (register t ?help ?labels name mk).m_value with
  | Histogram h ->
    if Array.to_list h.h_buckets <> buckets then
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s re-registered with different buckets" name);
    h
  | v -> invalid_arg (Printf.sprintf "Metrics.histogram: %s is a %s" name (kind_name v))

(* -------- instrument operations -------- *)

let inc ?(by = 1) (c : int ref) = c := !c + by
let set (g : float ref) v = g := v

let observe (h : histogram) v =
  let i = ref 0 in
  let nb = Array.length h.h_buckets in
  while !i < nb && v > h.h_buckets.(!i) do
    incr i
  done;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

(** Estimated [q]-quantile (0 <= q <= 1) from the bucket counts, with
    linear interpolation inside the containing bucket.  The first bucket
    is bounded below by the observed minimum, the overflow bucket above by
    the observed maximum, so estimates never leave the observed range.
    Returns 0 for an empty histogram. *)
let percentile (h : histogram) q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int h.h_count in
    let nb = Array.length h.h_buckets in
    let rec go i seen =
      if i > nb then h.h_max
      else
        let c = h.h_counts.(i) in
        if float_of_int (seen + c) >= rank || i = nb then begin
          let lo =
            if i = 0 then Float.max h.h_min neg_infinity
            else h.h_buckets.(i - 1)
          in
          let hi = if i >= nb then h.h_max else Float.min h.h_buckets.(i) h.h_max in
          let lo = Float.max lo h.h_min in
          let hi = Float.max hi lo in
          if c = 0 then hi
          else
            let frac = (rank -. float_of_int seen) /. float_of_int c in
            let frac = Float.min 1.0 (Float.max 0.0 frac) in
            lo +. ((hi -. lo) *. frac)
        end
        else go (i + 1) (seen + c)
    in
    go 0 0
  end

(* -------- reads -------- *)

let find t ?(labels = []) name = Hashtbl.find_opt t.tbl (name, norm_labels labels)

let counter_value t ?labels name =
  match find t ?labels name with Some { m_value = Counter r; _ } -> Some !r | _ -> None

let gauge_value t ?labels name =
  match find t ?labels name with Some { m_value = Gauge r; _ } -> Some !r | _ -> None

let histogram_value t ?labels name =
  match find t ?labels name with Some { m_value = Histogram h; _ } -> Some h | _ -> None

(** All metrics, sorted by (name, labels) for stable output. *)
let snapshot t =
  List.sort
    (fun a b -> compare (a.m_name, a.m_labels) (b.m_name, b.m_labels))
    t.order

let distinct_names t =
  List.sort_uniq compare (List.map (fun m -> m.m_name) t.order)

(** Merge [src] into [dst]: counters add, gauges take [src]'s value,
    histograms (same buckets) add bin counts.  Metrics absent from [dst]
    are created.  Used to aggregate per-shard registries. *)
let merge ~into:dst src =
  List.iter
    (fun m ->
      match m.m_value with
      | Counter r -> inc ~by:!r (counter dst ~help:m.m_help ~labels:m.m_labels m.m_name)
      | Gauge r -> set (gauge dst ~help:m.m_help ~labels:m.m_labels m.m_name) !r
      | Histogram h ->
        let d =
          histogram dst ~help:m.m_help ~labels:m.m_labels
            ~buckets:(Array.to_list h.h_buckets) m.m_name
        in
        Array.iteri (fun i c -> d.h_counts.(i) <- d.h_counts.(i) + c) h.h_counts;
        d.h_sum <- d.h_sum +. h.h_sum;
        d.h_count <- d.h_count + h.h_count;
        if h.h_min < d.h_min then d.h_min <- h.h_min;
        if h.h_max > d.h_max then d.h_max <- h.h_max)
    (List.rev src.order)

(* -------- JSON export -------- *)

let metric_to_json m =
  let base =
    [ ("name", Json.Str m.m_name); ("type", Json.Str (kind_name m.m_value)) ]
  in
  let labels =
    match m.m_labels with
    | [] -> []
    | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)) ]
  in
  let help = if m.m_help = "" then [] else [ ("help", Json.Str m.m_help) ] in
  let value =
    match m.m_value with
    | Counter r -> [ ("value", Json.Int !r) ]
    | Gauge r -> [ ("value", Json.Float !r) ]
    | Histogram h ->
      let finite_or_zero f = if Float.is_finite f then f else 0.0 in
      [
        ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.h_buckets)));
        ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.h_counts)));
        ("sum", Json.Float h.h_sum);
        ("count", Json.Int h.h_count);
        ("min", Json.Float (finite_or_zero h.h_min));
        ("max", Json.Float (finite_or_zero h.h_max));
        ("p50", Json.Float (percentile h 0.50));
        ("p95", Json.Float (percentile h 0.95));
        ("p99", Json.Float (percentile h 0.99));
      ]
  in
  Json.Obj (base @ labels @ help @ value)

(* Histograms gained min/max/p50/p95/p99 fields (and the registry object
   may carry extra top-level sections, e.g. "governor"), hence v2; see the
   "Telemetry schemas" section of the README. *)
let schema = "xmt.metrics.v2"

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("metrics", Json.List (List.map metric_to_json (snapshot t)));
    ]
