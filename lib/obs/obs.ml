(** Obs — the unified telemetry layer.

    Three pieces, used across the whole toolchain:

    - {!Json}: dependency-free JSON values (emit + parse).
    - {!Metrics}: a typed registry of counters/gauges/histograms with
      labels.  The simulator's activity counters ({!Xmtsim.Stats}), the
      power/thermal models and host-side throughput all export into it;
      [xmtsim --stats-json] and the bench harness's [BENCH_*.json]
      records are its serializations.
    - {!Tracer}: span-based tracing in Chrome trace-event JSON
      ([xmtsim --trace-json]), covering simulated activity (spawn/join
      phases, per-TCU memory-wait spans, package hops) and host-side
      activity (wall-clock per run) on separate process tracks.
    - {!Timeseries}: fixed-window ring-buffer series with labeled
      channels ([xmtsim --timeseries-json]) — the in-flight view that
      activity plug-ins such as the DVFS governor consume during the run.
    - {!Bench_gate}: the regression comparator over the bench harness's
      [BENCH_*.json] records (driven by [bench/gate.exe] in CI).
    - {!Stream}: the live side of the layer — a push-based, bounded-queue
      event bus emitting [xmt.events.v1] NDJSON records (run/job
      lifecycle, simulator heartbeats, campaign progress/ETA, windowed
      rollups) so long runs and campaigns are observable while they
      execute ([xmtsim --stream]).
    - {!Schema}: the registry of versioned record schemas and of the
      [--export] kinds that produce them — the single table the CLI's
      export validation, the stream validator and the docs all read.
    - {!Clock}: the monotonic host clock every reported duration is
      measured on (host clock steps cannot make a [wall_seconds] field
      jump or go negative). *)

module Json = Json
module Schema = Schema
module Clock = Clock
module Metrics = Metrics
module Tracer = Tracer
module Timeseries = Timeseries
module Bench_gate = Bench_gate
module Stream = Stream
