(* The registry of versioned record schemas and the export kinds that
   produce them — see schema.mli. *)

type entry = {
  e_kind : string option;
  e_schema : string option;
  e_doc : string;
}

(* One row per export kind or standalone schema.  Order is the order
   the CLI lists kinds in its error message, so keep it stable. *)
let table =
  [
    {
      e_kind = Some "stats";
      e_schema = Some "xmt.metrics.v2";
      e_doc = "metrics envelope: activity counters, hit rates, host throughput";
    };
    {
      e_kind = Some "trace";
      e_schema = None;  (* Chrome trace-event JSON, an external format *)
      e_doc = "Chrome trace-event spans (cycle-accurate mode only)";
    };
    {
      e_kind = Some "timeseries";
      e_schema = Some "xmt.timeseries.v1";
      e_doc = "windowed telemetry channels (cycle-accurate mode only)";
    };
    {
      e_kind = Some "races";
      e_schema = Some "xmt.races.v1";
      e_doc = "race & memory-model report (static + dynamic layers)";
    };
    {
      e_kind = Some "profile";
      e_schema = Some "xmt.profile.v1";
      e_doc = "CPI-stack report (cycle-accurate mode; merged under --campaign)";
    };
    {
      e_kind = Some "predict";
      e_schema = Some "xmt.predict.v1";
      e_doc = "analytical cycle prediction (predict mode only)";
    };
    {
      e_kind = Some "reuseprofile";
      e_schema = Some "xmt.reuseprofile.v1";
      e_doc = "harvested reuse/instruction-mix profile (predict mode only)";
    };
    {
      e_kind = Some "campaign";
      e_schema = Some "xmt.campaign.v1";
      e_doc = "campaign report (with --campaign)";
    };
    {
      e_kind = Some "campaign-det";
      e_schema = Some "xmt.campaign.v1";
      e_doc = "campaign report without host-dependent fields";
    };
    (* schemas with no --export kind *)
    {
      e_kind = None;
      e_schema = Some "xmt.events.v1";
      e_doc = "live NDJSON telemetry stream (--stream)";
    };
    {
      e_kind = None;
      e_schema = Some "xmt.bench.v1";
      e_doc = "bench harness BENCH_*.json records";
    };
    {
      e_kind = None;
      e_schema = Some "xmt.calibration.v1";
      e_doc = "persisted prediction-model calibration fit";
    };
    {
      e_kind = None;
      e_schema = Some "xmt.timings.v1";
      e_doc = "compiler phase timings (xmtcc --timings-json)";
    };
    {
      e_kind = None;
      e_schema = Some "xmt.serve.v1";
      e_doc = "xmtserved wire protocol";
    };
  ]

let export_kinds = List.filter_map (fun e -> e.e_kind) table

let is_export_kind k = List.mem k export_kinds

let export_kinds_doc = String.concat "|" export_kinds

let schemas =
  List.sort_uniq compare (List.filter_map (fun e -> e.e_schema) table)

let is_schema s = List.mem s schemas

let schema_of_kind k =
  List.find_map
    (fun e -> if e.e_kind = Some k then e.e_schema else None)
    table
