(** The registry of versioned record schemas and of the [--export]
    kinds that produce them.

    Every JSON artifact the toolchain emits carries a versioned
    ["schema"] tag ([xmt.metrics.v2], [xmt.campaign.v1], ...), and most
    are reachable through [xmtsim --export KIND].  This table is the
    single source of truth relating the two: the CLI validates
    [--export] kinds against it (and derives its unknown-kind error
    message from it), the stream validator checks [stream.open]
    announcements against it, and the tests assert the listing and the
    table cannot drift apart. *)

type entry = {
  e_kind : string option;  (** the [--export KIND] producing it, if any *)
  e_schema : string option;
      (** the versioned ["schema"] tag the record carries, if any
          (the Chrome trace-event export is an external format) *)
  e_doc : string;
}

(** One row per export kind or standalone schema, in the order the CLI
    lists kinds. *)
val table : entry list

(** The valid [--export] kinds, in {!table} order. *)
val export_kinds : string list

val is_export_kind : string -> bool

(** ["stats|trace|...|campaign-det"] — for usage/error messages. *)
val export_kinds_doc : string

(** All registered schema tags, sorted, deduplicated. *)
val schemas : string list

val is_schema : string -> bool

(** The schema tag an export kind produces, when it has one. *)
val schema_of_kind : string -> string option
