(** Live telemetry streaming — see stream.mli. *)

type sink = { write : string -> unit; close : unit -> unit }

let sink_of_path path =
  if path = "-" then
    {
      write =
        (fun line ->
          print_string line;
          print_newline ());
      close = (fun () -> flush stdout);
    }
  else
    let path =
      match String.length path >= 3 && String.sub path 0 3 = "fd:" with
      | true -> (
        let n = String.sub path 3 (String.length path - 3) in
        match int_of_string_opt n with
        | Some fd when fd >= 0 -> Printf.sprintf "/dev/fd/%d" fd
        | _ -> invalid_arg (Printf.sprintf "Stream.sink_of_path: bad fd %S" n))
      | false -> path
    in
    let oc = open_out path in
    {
      write =
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc);
      close = (fun () -> close_out oc);
    }

let buffer_sink b =
  {
    write =
      (fun line ->
        Buffer.add_string b line;
        Buffer.add_char b '\n');
    close = ignore;
  }

let null_sink () = { write = ignore; close = ignore }

type t = {
  sink : sink;
  capacity : int;
  queue : string Queue.t;
  lock : Mutex.t;
  epoch : float;  (* host wall-clock at create, for the default [t] *)
  mutable seq : int;
  mutable emitted : int;
  mutable dropped : int;
  mutable paused : bool;
  mutable closed : bool;
}

let host_ms s = int_of_float ((Unix.gettimeofday () -. s.epoch) *. 1e3)

let drain_locked s =
  if not s.paused then
    while not (Queue.is_empty s.queue) do
      s.sink.write (Queue.pop s.queue)
    done

(* Formats, enqueues (or drops) and opportunistically drains one record.
   The sequence number is assigned before the capacity check, so a drop
   leaves a visible gap in [seq]. *)
let emit_locked s ~typ ~t fields =
  if not s.closed then begin
    let record =
      Json.Obj
        (("type", Json.Str typ) :: ("seq", Json.Int s.seq) :: ("t", Json.Int t)
        :: fields)
    in
    s.seq <- s.seq + 1;
    if Queue.length s.queue >= s.capacity then s.dropped <- s.dropped + 1
    else begin
      Queue.push (Json.to_string record) s.queue;
      s.emitted <- s.emitted + 1
    end;
    drain_locked s
  end

let emit s ~typ ?t fields =
  Mutex.protect s.lock (fun () ->
      let t = match t with Some t -> t | None -> host_ms s in
      emit_locked s ~typ ~t fields)

let create ?(capacity = 4096) sink =
  if capacity <= 0 then invalid_arg "Stream.create: capacity must be positive";
  let s =
    {
      sink;
      capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      epoch = Unix.gettimeofday ();
      seq = 0;
      emitted = 0;
      dropped = 0;
      paused = false;
      closed = false;
    }
  in
  emit s ~typ:"stream.open" [ ("schema", Json.Str "xmt.events.v1") ];
  s

let pause s = Mutex.protect s.lock (fun () -> s.paused <- true)

let resume s =
  Mutex.protect s.lock (fun () ->
      s.paused <- false;
      drain_locked s)

let drain s = Mutex.protect s.lock (fun () -> drain_locked s)
let emitted s = Mutex.protect s.lock (fun () -> s.emitted)
let dropped s = Mutex.protect s.lock (fun () -> s.dropped)
let pending s = Mutex.protect s.lock (fun () -> Queue.length s.queue)

let close s =
  Mutex.protect s.lock (fun () ->
      if not s.closed then begin
        s.paused <- false;
        drain_locked s;
        emit_locked s ~typ:"stream.close" ~t:(host_ms s)
          [
            ("emitted", Json.Int s.emitted);
            ("dropped", Json.Int s.dropped);
          ];
        s.closed <- true;
        s.sink.close ()
      end)

(* ------------------------------------------------------------------ *)
(* Windowed rollups *)

type acc = { mutable a_sum : float; mutable a_min : float; mutable a_max : float }

type rollup = {
  r_stream : t;
  r_name : string;
  r_window : int;
  mutable r_index : int;  (** windows closed so far *)
  mutable r_count : int;
  mutable r_t0 : int;
  mutable r_t1 : int;
  r_acc : (string, acc) Hashtbl.t;
}

let rollup ?(window = 16) s name =
  if window <= 0 then invalid_arg "Stream.rollup: window must be positive";
  {
    r_stream = s;
    r_name = name;
    r_window = window;
    r_index = 0;
    r_count = 0;
    r_t0 = 0;
    r_t1 = 0;
    r_acc = Hashtbl.create 8;
  }

let flush_window r =
  let stats =
    Hashtbl.fold (fun k a acc -> (k, a) :: acc) r.r_acc []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (k, a) ->
           ( k,
             Json.Obj
               [
                 ("mean", Json.Float (a.a_sum /. float_of_int r.r_count));
                 ("min", Json.Float a.a_min);
                 ("max", Json.Float a.a_max);
               ] ))
  in
  emit r.r_stream ~typ:"window.close" ~t:r.r_t1
    [
      ("window", Json.Str r.r_name);
      ("index", Json.Int r.r_index);
      ("count", Json.Int r.r_count);
      ("t0", Json.Int r.r_t0);
      ("t1", Json.Int r.r_t1);
      ("metrics", Json.Obj stats);
    ];
  Hashtbl.reset r.r_acc;
  r.r_index <- r.r_index + 1;
  r.r_count <- 0

let observe r ~t kvs =
  if r.r_count = 0 then r.r_t0 <- t;
  r.r_t1 <- t;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt r.r_acc k with
      | Some a ->
        a.a_sum <- a.a_sum +. v;
        a.a_min <- Float.min a.a_min v;
        a.a_max <- Float.max a.a_max v
      | None -> Hashtbl.replace r.r_acc k { a_sum = v; a_min = v; a_max = v })
    kvs;
  r.r_count <- r.r_count + 1;
  if r.r_count >= r.r_window then flush_window r

let close_rollup r = if r.r_count > 0 then flush_window r

(* ------------------------------------------------------------------ *)
(* Validation and canonicalization *)

let required_keys = [ "type"; "seq"; "t" ]

(* A stream.open record announces the stream's schema; an announcement
   the registry doesn't know is a contract violation (a typo, or a
   producer newer than this checker), not a payload to wave through. *)
let validate_announcement j =
  match Json.member "type" j with
  | Some (Json.Str "stream.open") -> (
    match Json.member "schema" j with
    | Some (Json.Str s) when Schema.is_schema s -> Ok ()
    | Some (Json.Str s) ->
      Error
        (Printf.sprintf "stream.open announces unregistered schema %S (know: %s)"
           s
           (String.concat ", " Schema.schemas))
    | Some _ -> Error "stream.open \"schema\" must be a string"
    | None -> Error "stream.open is missing \"schema\"")
  | _ -> Ok ()

let validate j =
  match j with
  | Json.Obj _ -> (
    match Json.member "type" j with
    | Some (Json.Str _) -> (
      match Option.bind (Json.member "seq" j) Json.to_int with
      | Some _ -> (
        match Option.bind (Json.member "t" j) Json.to_float with
        | Some _ -> validate_announcement j
        | None -> Error "missing or non-numeric \"t\"")
      | None -> Error "missing or non-integer \"seq\"")
    | Some _ -> Error "\"type\" must be a string"
    | None -> Error "missing \"type\"")
  | _ -> Error "record is not a JSON object"

let validate_line line =
  match Json.of_string line with
  | j -> Result.map (fun () -> j) (validate j)
  | exception Json.Parse_error msg -> Error msg

(* Keys that depend on the host (ordering, wall-clock, throughput): the
   canonical form strips them so serial and parallel runs of the same
   campaign agree byte-for-byte. *)
let host_keys =
  [
    "seq"; "t"; "wall_seconds"; "elapsed_seconds"; "eta_seconds";
    "jobs_per_sec"; "events_per_sec"; "running"; "workers"; "dropped";
    "backtrace";
  ]

let canonicalize records =
  let is_job j =
    match Option.bind (Json.member "job" j) Json.to_int with
    | Some _ -> true
    | None -> false
  in
  let strip = function
    | Json.Obj kvs ->
      Json.Obj (List.filter (fun (k, _) -> not (List.mem k host_keys)) kvs)
    | j -> j
  in
  let key j =
    let geti k =
      Option.value ~default:max_int (Option.bind (Json.member k j) Json.to_int)
    in
    (geti "job", geti "jseq")
  in
  List.filter is_job records |> List.map strip
  |> List.stable_sort (fun a b -> compare (key a) (key b))

let canonicalize_lines text =
  let records =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map Json.of_string
  in
  match canonicalize records with
  | [] -> ""
  | canon -> String.concat "\n" (List.map Json.to_string canon) ^ "\n"
