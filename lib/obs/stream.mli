(** Live telemetry streaming: a push-based, bounded-queue event bus
    emitting [xmt.events.v1] NDJSON records.

    All other observability in the toolchain is batch — a report
    materializes only after the run finishes.  A stream is the in-flight
    counterpart: producers ({!Xmtsim.Machine} heartbeats, campaign
    lifecycle/progress, CLI drivers) push small records as they happen
    and a sink writes them out one JSON object per line, so a long
    cycle-accurate run or a big campaign can be watched with [tail -f]
    or piped into a dashboard.

    Contract:

    - every record is a JSON object carrying at least ["type"] (string),
      ["seq"] (int, monotonic per stream) and ["t"] (number; simulated
      cycle for simulator events, host milliseconds since stream creation
      otherwise);
    - the queue between producers and the sink is bounded: when it is
      full (a paused or wedged consumer) new records are {e dropped and
      counted}, never blocking the producer — the simulator's schedule
      is sacred.  Dropped records still consume a sequence number, so
      gaps in [seq] reveal loss;
    - the stream opens with a [stream.open] record (schema tag) and
      {!close} appends a [stream.close] record with the final
      emitted/dropped totals;
    - all operations are serialized on an internal mutex, so multiple
      producers (campaign worker domains) may share one stream. *)

type t

(** Where NDJSON lines go.  [write] receives one complete line (no
    trailing newline); [close] releases the underlying resource.  Sinks
    flush per line so a follower sees records as they happen. *)
type sink = { write : string -> unit; close : unit -> unit }

(** ["-"] streams to stdout, ["fd:N"] to the already-open file
    descriptor N (via [/dev/fd/N]), anything else to the named file
    (truncated).  NDJSON sinks are inherently incremental, so unlike
    {!Json.write_file} there is no atomic-rename step. *)
val sink_of_path : string -> sink

(** Append lines (newline-terminated) to a buffer — for tests and
    in-process consumers. *)
val buffer_sink : Buffer.t -> sink

(** Discard everything (still counts as delivered, not dropped). *)
val null_sink : unit -> sink

(** [create sink] opens a stream and emits the [stream.open] record.
    [capacity] bounds the pending-record queue (default 4096). *)
val create : ?capacity:int -> sink -> t

(** [emit s ~typ fields] pushes one record.  [t] defaults to host
    milliseconds since {!create}; simulator producers pass the simulated
    time instead.  [fields] must not include the reserved keys ["type"],
    ["seq"], ["t"].  Never blocks: with the queue full the record is
    dropped and counted. *)
val emit : t -> typ:string -> ?t:int -> (string * Json.t) list -> unit

(** Stop forwarding to the sink; records accumulate in the bounded
    queue (overflow drops).  Models a slow consumer — the campaign
    engine's single consumer drains explicitly. *)
val pause : t -> unit

val resume : t -> unit

(** Forward everything pending to the sink (no-op while paused). *)
val drain : t -> unit

val emitted : t -> int  (** records that reached the queue *)

val dropped : t -> int  (** records lost to overflow *)

val pending : t -> int  (** records queued but not yet written *)

(** Emit the [stream.close] rollup record (emitted/dropped totals),
    flush, and close the sink.  Idempotent; later {!emit}s are no-ops. *)
val close : t -> unit

(** {1 Windowed rollups}

    A rollup accumulates labeled samples and emits one [window.close]
    record — count, time span, per-key mean/min/max — every [window]
    observations, so a follower can read a bounded summary instead of
    every heartbeat. *)

type rollup

val rollup : ?window:int -> t -> string -> rollup

(** Fold one sample set into the window; emits [window.close] when the
    window fills. *)
val observe : rollup -> t:int -> (string * float) list -> unit

(** Flush a partially-filled trailing window (no record when empty). *)
val close_rollup : rollup -> unit

(** {1 Validation and canonicalization} *)

(** The keys every [xmt.events.v1] record must carry. *)
val required_keys : string list

(** Check one parsed record against the schema contract. *)
val validate : Json.t -> (unit, string) result

(** Parse and validate one NDJSON line. *)
val validate_line : string -> (Json.t, string) result

(** Reduce a stream to its deterministic core: keep only per-job
    lifecycle records (those carrying a ["job"] index), strip
    host-dependent keys ([seq], [t], wall-clock and throughput fields)
    and sort by (job, per-job sequence number).  A serial and a parallel
    run of the same campaign canonicalize to byte-identical streams —
    the property CI diffs. *)
val canonicalize : Json.t list -> Json.t list

(** {!canonicalize} over raw NDJSON text (one record per line; the
    result ends with a newline when non-empty).  Raises
    {!Json.Parse_error} on a malformed line. *)
val canonicalize_lines : string -> string
