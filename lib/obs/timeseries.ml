(** Windowed time-series telemetry: labeled channels of (time, value)
    samples held in fixed-capacity ring buffers.

    Where {!Metrics} answers "how much, in total, by the end of the run",
    a timeseries answers "what was it doing around cycle N" while keeping
    memory bounded: each channel retains only the most recent [window]
    samples and counts what it dropped.  In-flight consumers (the DVFS
    governor, activity plug-ins) read the retained window ({!mean},
    {!last}, {!points}); [xmtsim --timeseries-json] serializes every
    channel as an [xmt.timeseries.v1] record.

    Channel names follow the {!Metrics} conventions ([sim.*] / [host.*],
    labels discriminate instances of one quantity). *)

type channel = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  c_times : int array;
  c_values : float array;
  mutable c_next : int;  (** ring write position *)
  mutable c_len : int;  (** live samples, <= window *)
  mutable c_pushed : int;  (** total samples ever pushed *)
}

type t = {
  window : int;
  tbl : (string * (string * string) list, channel) Hashtbl.t;
  mutable order : channel list;  (** registration order, reversed *)
}

let create ?(window = 1024) () =
  if window <= 0 then invalid_arg "Timeseries.create: window must be positive";
  { window; tbl = Hashtbl.create 16; order = [] }

let window t = t.window

let channel t ?(labels = []) ?(help = "") name =
  let labels = List.sort compare labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some c -> c
  | None ->
    let c =
      {
        c_name = name;
        c_labels = labels;
        c_help = help;
        c_times = Array.make t.window 0;
        c_values = Array.make t.window 0.0;
        c_next = 0;
        c_len = 0;
        c_pushed = 0;
      }
    in
    Hashtbl.replace t.tbl key c;
    t.order <- c :: t.order;
    c

let push c ~t v =
  let n = Array.length c.c_times in
  c.c_times.(c.c_next) <- t;
  c.c_values.(c.c_next) <- v;
  c.c_next <- (c.c_next + 1) mod n;
  if c.c_len < n then c.c_len <- c.c_len + 1;
  c.c_pushed <- c.c_pushed + 1

let length c = c.c_len
let pushed c = c.c_pushed
let dropped c = c.c_pushed - c.c_len

(** Retained samples, oldest first. *)
let points c =
  let n = Array.length c.c_times in
  let start = (c.c_next - c.c_len + n) mod n in
  List.init c.c_len (fun i ->
      let j = (start + i) mod n in
      (c.c_times.(j), c.c_values.(j)))

let last c =
  if c.c_len = 0 then None
  else
    let n = Array.length c.c_times in
    let j = (c.c_next - 1 + n) mod n in
    Some (c.c_times.(j), c.c_values.(j))

(** Mean value over the retained window (0 when empty). *)
let mean c =
  if c.c_len = 0 then 0.0
  else begin
    let n = Array.length c.c_times in
    let start = (c.c_next - c.c_len + n) mod n in
    let sum = ref 0.0 in
    for i = 0 to c.c_len - 1 do
      sum := !sum +. c.c_values.((start + i) mod n)
    done;
    !sum /. float_of_int c.c_len
  end

let max_value c =
  if c.c_len = 0 then 0.0
  else
    List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity (points c)

(** Channels sorted by (name, labels) for stable output. *)
let channels t =
  List.sort
    (fun a b -> compare (a.c_name, a.c_labels) (b.c_name, b.c_labels))
    t.order

let channel_to_json c =
  let labels =
    match c.c_labels with
    | [] -> []
    | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)) ]
  in
  let help = if c.c_help = "" then [] else [ ("help", Json.Str c.c_help) ] in
  Json.Obj
    ([ ("name", Json.Str c.c_name) ]
    @ labels @ help
    @ [
        ("pushed", Json.Int c.c_pushed);
        ("dropped", Json.Int (dropped c));
        ( "points",
          Json.List
            (List.map
               (fun (t, v) -> Json.List [ Json.Int t; Json.Float v ])
               (points c)) );
      ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "xmt.timeseries.v1");
      ("window", Json.Int t.window);
      ("series", Json.List (List.map channel_to_json (channels t)));
    ]
