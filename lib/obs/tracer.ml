(** Span tracer emitting Chrome trace-event JSON.

    Events accumulate in memory and serialize as a JSON array that
    Perfetto (https://ui.perfetto.dev) and [chrome://tracing] load
    directly.  Timestamps are integers in the trace's microsecond unit;
    the simulator uses one simulated time unit = 1 "µs" on its own
    process track, host wall-clock spans go on a separate process track,
    so the two timescales never mix on one row.

    Supported phases: B/E (nested begin/end), X (complete span with
    duration), i (instant), C (counter track), M (metadata: process and
    thread names).  [to_json] sorts events by timestamp (stable in
    emission order), which trace viewers require. *)

type arg = A_int of int | A_float of float | A_str of string

type event = {
  e_seq : int;
  e_ph : string;
  e_name : string;
  e_cat : string;
  e_ts : int;
  e_dur : int;  (** X events only; -1 otherwise *)
  e_pid : int;
  e_tid : int;
  e_args : (string * arg) list;
}

type t = {
  mutable events : event list;  (** newest first *)
  mutable meta : event list;  (** metadata events, emitted before the rest *)
  mutable seq : int;
  mutable count : int;
}

let create () = { events = []; meta = []; seq = 0; count = 0 }

let default_pid = 1

let push t ~ph ~name ~cat ~ts ~dur ~pid ~tid ~args =
  t.seq <- t.seq + 1;
  let e =
    { e_seq = t.seq; e_ph = ph; e_name = name; e_cat = cat; e_ts = ts; e_dur = dur;
      e_pid = pid; e_tid = tid; e_args = args }
  in
  if ph = "M" then t.meta <- e :: t.meta
  else begin
    t.events <- e :: t.events;
    t.count <- t.count + 1
  end

let begin_span t ~ts ?(pid = default_pid) ~tid ?(cat = "") ?(args = []) name =
  push t ~ph:"B" ~name ~cat ~ts ~dur:(-1) ~pid ~tid ~args

let end_span t ~ts ?(pid = default_pid) ~tid () =
  push t ~ph:"E" ~name:"" ~cat:"" ~ts ~dur:(-1) ~pid ~tid ~args:[]

(** A complete span: [ts .. ts+dur]. *)
let complete t ~ts ~dur ?(pid = default_pid) ~tid ?(cat = "") ?(args = []) name =
  push t ~ph:"X" ~name ~cat ~ts ~dur:(max 0 dur) ~pid ~tid ~args

let instant t ~ts ?(pid = default_pid) ~tid ?(cat = "") ?(args = []) name =
  push t ~ph:"i" ~name ~cat ~ts ~dur:(-1) ~pid ~tid ~args

(** One sample on a counter track; each pair becomes a stacked series. *)
let counter t ~ts ?(pid = default_pid) name series =
  push t ~ph:"C" ~name ~cat:"" ~ts ~dur:(-1) ~pid ~tid:0
    ~args:(List.map (fun (k, v) -> (k, A_float v)) series)

let name_process t ~pid name =
  push t ~ph:"M" ~name:"process_name" ~cat:"" ~ts:0 ~dur:(-1) ~pid ~tid:0
    ~args:[ ("name", A_str name) ]

let name_thread t ~pid ~tid name =
  push t ~ph:"M" ~name:"thread_name" ~cat:"" ~ts:0 ~dur:(-1) ~pid ~tid
    ~args:[ ("name", A_str name) ]

let length t = t.count

(* -------- serialization -------- *)

let arg_to_json = function
  | A_int i -> Json.Int i
  | A_float f -> Json.Float f
  | A_str s -> Json.Str s

let event_to_json e =
  let base =
    [
      ("ph", Json.Str e.e_ph);
      ("name", Json.Str e.e_name);
      ("ts", Json.Int e.e_ts);
      ("pid", Json.Int e.e_pid);
      ("tid", Json.Int e.e_tid);
    ]
  in
  let cat = if e.e_cat = "" then [] else [ ("cat", Json.Str e.e_cat) ] in
  let dur = if e.e_dur >= 0 then [ ("dur", Json.Int e.e_dur) ] else [] in
  let scope = if e.e_ph = "i" then [ ("s", Json.Str "t") ] else [] in
  let args =
    match e.e_args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) kvs)) ]
  in
  Json.Obj (base @ cat @ dur @ scope @ args)

(** Events sorted by timestamp (metadata first); the JSON-array trace
    format viewers expect. *)
let to_json t =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.e_ts b.e_ts with 0 -> compare a.e_seq b.e_seq | c -> c)
      (List.rev t.events)
  in
  Json.List (List.map event_to_json (List.rev t.meta @ sorted))

let to_string t = Json.to_string (to_json t)
let write_file t path = Json.write_file path (to_json t)

(* -------- host-side clock -------- *)

let host_epoch = Unix.gettimeofday ()

(** Microseconds of host wall-clock since the process started tracing —
    the timestamp source for host-side (pid ≠ sim) tracks. *)
let host_now_us () = int_of_float ((Unix.gettimeofday () -. host_epoch) *. 1e6)
