(* Coefficient fitting and the versioned calibration artifact — see
   calibrate.mli. *)

module J = Obs.Json

exception Calib_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Calib_error s)) fmt
let version = "xmt.calibration.v1"

type point = {
  pt_name : string;
  pt_components : float array;  (* Model.component_vector *)
  pt_cycles : float;  (* cycle-accurate ground truth *)
}

type t = {
  coeffs : Model.coeffs;
  mae_pct : float;
  residual_std_pct : float;
  points : (string * float) list;  (* per-point signed error, percent *)
}

let point ~name ~config profile ~actual_cycles =
  let x, _, _, _, _ = Model.components_of ~config profile in
  {
    pt_name = name;
    pt_components = Model.component_vector x;
    pt_cycles = float_of_int actual_cycles;
  }

(* ---------------- the linear least-squares fit ---------------- *)

(* Solve the 4x4 normal equations (A^T A + ridge) x = A^T b by Gaussian
   elimination with partial pivoting.  The tiny ridge keeps the system
   solvable when the corpus never exercises a component (e.g. no spawns
   -> an all-zero column); that component's coefficient then stays near
   zero, which is harmless because its contribution is zero anyway. *)
let solve m v =
  let n = Array.length v in
  let a = Array.map Array.copy m in
  let b = Array.copy v in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.(r).(col) > abs_float a.(!piv).(col) then piv := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!piv);
    a.(!piv) <- tmp;
    let t = b.(col) in
    b.(col) <- b.(!piv);
    b.(!piv) <- t;
    if abs_float a.(col).(col) < 1e-12 then fail "singular normal equations";
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      for c = col to n - 1 do
        a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
      done;
      b.(r) <- b.(r) -. (f *. b.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

let errors coeffs points =
  List.map
    (fun p ->
      let pred =
        Model.apply coeffs
          {
            Model.x_exec = p.pt_components.(0);
            x_mem = p.pt_components.(1);
            x_spawn = p.pt_components.(2);
            x_serial = p.pt_components.(3);
          }
      in
      let err =
        if p.pt_cycles > 0.0 then
          (pred -. p.pt_cycles) /. p.pt_cycles *. 100.0
        else 0.0
      in
      (p.pt_name, err))
    points

let summarize coeffs points =
  let errs = errors coeffs points in
  let n = float_of_int (List.length errs) in
  let mae =
    List.fold_left (fun a (_, e) -> a +. abs_float e) 0.0 errs /. n
  in
  let mean = List.fold_left (fun a (_, e) -> a +. e) 0.0 errs /. n in
  let var =
    List.fold_left (fun a (_, e) -> a +. ((e -. mean) ** 2.0)) 0.0 errs /. n
  in
  { coeffs; mae_pct = mae; residual_std_pct = sqrt var; points = errs }

let fit points =
  if points = [] then fail "fit: empty corpus";
  let n = 4 in
  (* normalize rows by the actual cycles so every workload carries the
     same weight regardless of its absolute run length: the fit then
     minimizes relative, not absolute, error *)
  let rows =
    List.map
      (fun p ->
        let s = if p.pt_cycles > 0.0 then 1.0 /. p.pt_cycles else 1.0 in
        (Array.map (fun x -> x *. s) p.pt_components, p.pt_cycles *. s))
      points
  in
  let ata = Array.make_matrix n n 0.0 in
  let atb = Array.make n 0.0 in
  List.iter
    (fun (row, y) ->
      for i = 0 to n - 1 do
        atb.(i) <- atb.(i) +. (row.(i) *. y);
        for j = 0 to n - 1 do
          ata.(i).(j) <- ata.(i).(j) +. (row.(i) *. row.(j))
        done
      done)
    rows;
  let trace = ref 0.0 in
  for i = 0 to n - 1 do
    trace := !trace +. ata.(i).(i)
  done;
  let ridge = Float.max 1e-9 (1e-6 *. !trace /. float_of_int n) in
  for i = 0 to n - 1 do
    ata.(i).(i) <- ata.(i).(i) +. ridge
  done;
  let x = solve ata atb in
  (* negative coefficients have no physical meaning; clamp and accept
     the (reported) extra error instead of an absurd model *)
  let cl v = Float.max 0.0 v in
  let coeffs =
    {
      Model.c_exec = cl x.(0);
      c_mem = cl x.(1);
      c_spawn = cl x.(2);
      c_serial = cl x.(3);
    }
  in
  summarize coeffs points

(* The committed default: fitted by bench/exp_predict.ml over the bench
   corpus (see bench/baseline/CALIBRATION_predict.json, which CI
   refits and gates).  Used whenever a job names no calibration file. *)
let default =
  {
    coeffs =
      { Model.c_exec = 1.0052; c_mem = 0.9449; c_spawn = 4.0337; c_serial = 0.9996 };
    mae_pct = 5.05;
    residual_std_pct = 8.06;
    points = [];
  }

(* ---------------- the xmt.calibration.v1 artifact ---------------- *)

let to_json t =
  J.Obj
    [
      ("schema", J.Str version);
      ("coefficients", Model.coeffs_to_json t.coeffs);
      ("mae_pct", J.Float t.mae_pct);
      ("residual_std_pct", J.Float t.residual_std_pct);
      ( "points",
        J.Obj (List.map (fun (n, e) -> (n, J.Float e)) t.points) );
    ]

let summary_json t =
  J.Obj
    [
      ("schema", J.Str version);
      ("mae_pct", J.Float t.mae_pct);
      ("residual_std_pct", J.Float t.residual_std_pct);
      ("points", J.Int (List.length t.points));
    ]

let of_json j =
  (match J.member "schema" j with
  | Some (J.Str s) when s = version -> ()
  | Some (J.Str other) -> fail "unsupported calibration schema %S" other
  | _ -> fail "calibration artifact: missing \"schema\"");
  let coeffs =
    match J.member "coefficients" j with
    | Some cj -> (
      try Model.coeffs_of_json cj
      with Invalid_argument msg -> fail "calibration artifact: %s" msg)
    | None -> fail "calibration artifact: missing \"coefficients\""
  in
  let f k =
    match Option.bind (J.member k j) J.to_float with Some v -> v | None -> 0.0
  in
  let points =
    match J.member "points" j with
    | Some (J.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun e -> (k, e)) (J.to_float v))
        kvs
    | _ -> []
  in
  {
    coeffs;
    mae_pct = f "mae_pct";
    residual_std_pct = f "residual_std_pct";
    points;
  }

let save_file path t = J.write_file ~pretty:true path (to_json t)

let load_file path =
  let text =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> In_channel.input_all ic)
    with Sys_error msg -> fail "calibration %s: %s" path msg
  in
  match J.of_string text with
  | j -> of_json j
  | exception J.Parse_error msg -> fail "calibration %s: %s" path msg
