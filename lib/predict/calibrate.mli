(** Calibration of the analytical model's free coefficients against
    the cycle-accurate simulator, and the versioned
    [xmt.calibration.v1] artifact that persists the fit.

    The model is linear in its coefficients
    (cycles = c . component_vector), so fitting is ordinary linear
    least squares over a corpus of (profile, config, measured-cycles)
    points, with rows normalized by the measured cycles — the fit
    minimizes {e relative} error, so short and long workloads weigh
    equally — and a tiny ridge so a corpus that never exercises a
    component (no spawns, say) still fits.

    [bench/exp_predict.ml] builds the corpus from the bench workloads,
    refits, writes the artifact and gates the mean absolute error in
    CI; {!default} carries the committed fit for jobs that name no
    artifact. *)

exception Calib_error of string

(** ["xmt.calibration.v1"] *)
val version : string

type point = {
  pt_name : string;
  pt_components : float array;
  pt_cycles : float;
}

type t = {
  coeffs : Model.coeffs;
  mae_pct : float;  (** mean absolute error over the corpus, percent *)
  residual_std_pct : float;  (** stddev of signed relative error *)
  points : (string * float) list;  (** per-point signed error, percent *)
}

(** Build a corpus point from a harvested profile and the
    cycle-accurate ground truth for the same (program, config). *)
val point :
  name:string ->
  config:Xmtsim.Config.t ->
  Xmtsim.Reuseprofile.snapshot ->
  actual_cycles:int ->
  point

(** Least-squares fit; raises {!Calib_error} on an empty corpus. *)
val fit : point list -> t

(** Re-evaluate a coefficient set against a corpus (per-point signed
    errors, for leave-in validation and the bench report). *)
val errors : Model.coeffs -> point list -> (string * float) list

val summarize : Model.coeffs -> point list -> t

(** The committed fit, used when a job names no calibration file. *)
val default : t

val to_json : t -> Obs.Json.t

(** Compact form for embedding in [xmt.predict.v1] reports. *)
val summary_json : t -> Obs.Json.t

(** Raise {!Calib_error} on wrong schema or malformed coefficients. *)
val of_json : Obs.Json.t -> t

val save_file : string -> t -> unit

(** Raises {!Calib_error} when the file is missing, unreadable or
    invalid — a campaign job with a bad calibration path fails cleanly
    in its own slot. *)
val load_file : string -> t
