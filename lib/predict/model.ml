(* The analytical performance model — see model.mli. *)

module C = Xmtsim.Config
module R = Xmtsim.Reuseprofile
module J = Obs.Json

type coeffs = {
  c_exec : float;
  c_mem : float;
  c_spawn : float;
  c_serial : float;
}

(* Fallback identity coefficients; real deployments use a fitted
   calibration artifact (Calibrate.default or a xmt.calibration.v1
   file). *)
let identity_coeffs = { c_exec = 1.0; c_mem = 1.0; c_spawn = 1.0; c_serial = 1.0 }

let coeffs_to_json c =
  J.Obj
    [
      ("exec", J.Float c.c_exec);
      ("mem", J.Float c.c_mem);
      ("spawn", J.Float c.c_spawn);
      ("serial", J.Float c.c_serial);
    ]

let coeffs_of_json j =
  let f k =
    match Option.bind (J.member k j) J.to_float with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "coeffs: missing %S" k)
  in
  { c_exec = f "exec"; c_mem = f "mem"; c_spawn = f "spawn"; c_serial = f "serial" }

(* ---------------- reuse histogram -> hit/fill rates ---------------- *)

(* Per-access probabilities derived from a stream's harvested
   histogram:

   - [hi_hit]: the access finds its line resident (pays only the
     round-trip / local hit latency).  Co-misses — concurrent requests
     to a line whose fill is still in flight — are NOT hits: they park
     in the cache module's MSHR and pay miss latency.
   - [hi_fill]: the access triggers a DRAM fill.  Co-misses do not
     (they share the fill), so fill traffic = first touches plus
     eligible reuses whose stack distance exceeds the capacity. *)
type hit_info = { hi_hit : float; hi_fill : float }

let all_hit = { hi_hit = 1.0; hi_fill = 0.0 }

(* [fill_mult] multiplies first touches for replicated caches: the
   read-only cache exists per cluster, so every active cluster takes
   its own copy of each compulsory miss. *)
let hit_info_of_hists hists ~line_words ~capacity_lines ~fill_mult =
  match hists with
  | [] -> all_hit
  | _ ->
    let best =
      List.fold_left
        (fun acc (h : R.histogram) ->
          let d g = abs (g - line_words) in
          match acc with
          | Some (b : R.histogram)
            when d b.R.h_granularity_words <= d h.R.h_granularity_words ->
            acc
          | _ -> Some h)
        None hists
      |> Option.get
    in
    if best.R.h_accesses = 0 then all_hit
    else begin
      let fi = float_of_int in
      let accesses = fi best.R.h_accesses in
      let eligible =
        fi (max 0 (best.R.h_accesses - best.R.h_comiss - best.R.h_first_touch))
      in
      (* P(stack distance <= capacity) over the sampled eligible
         reuses; capacity is rescaled to the histogram's granularity.
         Distances beyond the tracker depth count as misses, so for
         capacities larger than the tracked depth the rate is a
         (slight) underestimate. *)
      let p_near =
        if best.R.h_sampled = 0 then 1.0
        else begin
          let cap =
            max 1 (capacity_lines * line_words / best.R.h_granularity_words)
          in
          let hits = ref 0.0 in
          Array.iteri
            (fun i n ->
              let lo = if i = 0 then 1 else (1 lsl (i - 1)) + 1 in
              let hi = 1 lsl i in
              if hi <= cap then hits := !hits +. fi n
              else if lo <= cap then
                (* straddling bucket: assume uniform within the bucket *)
                hits :=
                  !hits +. (fi n *. fi (cap - lo + 1) /. fi (hi - lo + 1)))
            best.R.h_buckets;
          !hits /. fi best.R.h_sampled
        end
      in
      let first = fi best.R.h_first_touch *. fill_mult in
      let far = eligible *. (1.0 -. p_near) in
      let miss =
        Float.min 1.0 ((first +. fi best.R.h_comiss +. far) /. accesses)
      in
      { hi_hit = 1.0 -. miss; hi_fill = Float.min 1.0 ((first +. far) /. accesses) }
    end

let stream_hists (p : R.snapshot) name =
  Option.value ~default:[] (List.assoc_opt name p.R.p_streams)

(* ---------------- the component decomposition ---------------- *)

type components = {
  x_exec : float;
  x_mem : float;
  x_spawn : float;
  x_serial : float;
}

type prediction = {
  predicted_cycles : int;
  lo : int;
  hi : int;
  instructions : int;
  hit_shared : float;
  hit_ro : float;
  hit_master : float;
  contention : float;  (** mean queueing inflation of a memory round trip *)
  components : components;
  coeffs : coeffs;
}

(* Per-pool execution cycles of one block, using the harvest's
   multiply/divide and fdiv splits (the machine holds the TCU for the
   unit's full latency). *)
let mdu_cycles (c : C.t) (b : R.block_info) =
  let n = Option.value ~default:0 (List.assoc_opt "MDU" b.R.mix) in
  let muls = min n b.R.muls in
  float_of_int ((muls * c.C.mul_latency) + ((n - muls) * c.C.div_latency))

let fpu_cycles (c : C.t) (b : R.block_info) =
  let n = Option.value ~default:0 (List.assoc_opt "FPU" b.R.mix) in
  let divs = min n b.R.fpu_divs in
  float_of_int (((n - divs) * c.C.fpu_latency) + (divs * c.C.div_latency))

(* Total issue/execute cycles of a block: 1 per instruction plus the
   shared-unit latencies above plus prefix-sum latency.  Memory round
   trips are priced in the memory component. *)
let block_exec_cycles (c : C.t) (b : R.block_info) =
  List.fold_left
    (fun acc (cls, n) ->
      acc
      +.
      match cls with
      | "MDU" | "FPU" -> 0.0 (* added below with their real latencies *)
      | "PS" -> float_of_int (n * c.C.ps_latency)
      | _ -> float_of_int n)
    0.0 b.R.mix
  +. mdu_cycles c b +. fpu_cycles c b

(* queueing inflation of an M/D/1-ish station at utilization rho,
   capped so an overloaded station degrades gracefully instead of
   diverging *)
let qfactor rho =
  let rho = Float.min rho 0.95 in
  rho /. (1.0 -. rho)

(* Residual stall fraction of a prefetch-covered load: the compiler's
   loop-ahead prefetch issues one iteration early, which hides most but
   not all of the round trip (the pipeline catches up with the buffer;
   measured ~40% of the trip remains on the latency-tolerance bench). *)
let pf_late = 0.4

let components_of ~config:(c : C.t) (p : R.snapshot) =
  let num_tcus = C.num_tcus c in
  let fi = float_of_int in
  (* uncontended shared round trip: ICN out and back, the module's hit
     service, mean jitter, plus ~2 cycles of cluster tick alignment *)
  let icn_round = 2.0 *. fi c.C.icn_latency *. fi c.C.icn_period in
  let l0 =
    icn_round
    +. (fi c.C.cache_hit_latency *. fi c.C.cache_period)
    +. fi c.C.icn_jitter +. 2.0
  in
  let dram_unit = fi c.C.dram_latency *. fi c.C.dram_period in
  let shared =
    hit_info_of_hists (stream_hists p "tcu_rw")
      ~line_words:c.C.cache_line_words
      ~capacity_lines:(c.C.num_cache_modules * c.C.cache_lines)
      ~fill_mult:1.0
  in
  let serial_blocks, parallel =
    List.partition (fun b -> b.R.pc < 0) p.R.p_blocks
  in
  let b_concurrency b =
    let avg_threads =
      if b.R.activations = 0 then 1.0
      else fi b.R.threads /. fi b.R.activations
    in
    Float.max 1.0 (Float.min avg_threads (fi num_tcus))
  in
  (* thread-count imbalance: the last wave of virtual threads may not
     fill the TCUs *)
  let b_imbalance b =
    let avg_threads =
      if b.R.activations = 0 then 1.0
      else fi b.R.threads /. fi b.R.activations
    in
    if avg_threads <= fi num_tcus || avg_threads <= 0.0 then 1.0
    else
      let waves = ceil (avg_threads /. fi num_tcus) in
      waves *. fi num_tcus /. avg_threads
  in
  let active_clusters b =
    let k = b_concurrency b in
    max 1 (int_of_float (ceil (k /. fi c.C.tcus_per_cluster)))
  in
  let ro_info b =
    (* per-cluster read-only cache, line-granular; each active cluster
       takes its own copy of every compulsory miss *)
    hit_info_of_hists (stream_hists p "tcu_ro")
      ~line_words:c.C.cache_line_words ~capacity_lines:c.C.rocache_lines
      ~fill_mult:(fi (active_clusters b))
  in
  let master =
    hit_info_of_hists (stream_hists p "master")
      ~line_words:c.C.cache_line_words ~capacity_lines:c.C.master_cache_lines
      ~fill_mult:1.0
  in
  (* shared-path requests of a block (what the ICN and modules see):
     everything except read-only loads served by the cluster cache *)
  let b_shared_requests b =
    let ro_misses = fi b.R.ro_loads *. (1.0 -. (ro_info b).hi_hit) in
    fi (b.R.loads - b.R.ro_loads + b.R.stores + b.R.psm + b.R.prefetch)
    +. ro_misses
  in
  (* Fixed-point on the contention: the queueing delays depend on the
     request rate, which depends on the predicted time.  A couple of
     dozen damped iterations converge for any workload/config. *)
  let q_net = ref 0.0 and q_dram = ref 0.0 in
  let x_exec = ref 0.0 and x_mem = ref 0.0 in
  let par_cycles = ref 1.0 in
  let t_shared ~hit =
    l0 +. !q_net +. ((1.0 -. hit) *. (dram_unit +. !q_dram))
  in
  for _ = 1 to 25 do
    x_exec := 0.0;
    x_mem := 0.0;
    par_cycles := 0.0;
    List.iter
      (fun b ->
        let k = b_concurrency b and imb = b_imbalance b in
        let acl = active_clusters b in
        let ro = ro_info b in
        let t_sh = t_shared ~hit:shared.hi_hit in
        let t_ro =
          (ro.hi_hit *. fi c.C.rocache_hit_latency)
          +. ((1.0 -. ro.hi_hit) *. t_sh)
        in
        (* memory stall cycles per virtual thread stream:
           - read-write loads block unless the compiler's loop-ahead
             prefetch covers them (then only the late fraction stalls);
           - psm and blocking stores wait the full round trip;
           - non-blocking stores stall only at fences (the drain waits
             roughly one round trip per fence that guards them) *)
        let rw_loads = b.R.loads - b.R.ro_loads in
        let covered = min b.R.prefetch rw_loads in
        let blocking =
          fi (rw_loads - covered)
          +. fi b.R.psm
          +. fi (b.R.stores - b.R.nb_stores)
          +. fi (min b.R.nb_stores b.R.fences)
        in
        let mem_k =
          ((blocking *. t_sh)
          +. (fi covered *. pf_late *. t_sh)
          +. (fi b.R.ro_loads *. t_ro))
          /. k *. imb
        in
        (* shared-unit (MDU/FPU) pool contention: with [share] TCUs per
           unit in the active clusters, each op waits on average
           (share-1)/2 sibling service times *)
        let tcus_per_active = k /. fi acl in
        let fu_extra =
          let pool cycles units =
            if cycles <= 0.0 then 0.0
            else
              let share = tcus_per_active /. fi units in
              cycles /. k *. Float.max 0.0 (share -. 1.0) /. 2.0
          in
          pool (mdu_cycles c b) c.C.mdus_per_cluster
          +. pool (fpu_cycles c b) c.C.fpus_per_cluster
        in
        let exec_k = (block_exec_cycles c b /. k *. imb) +. fu_extra in
        (* structural throughput floors: a block cannot finish faster
           than its busiest shared resource can serve it *)
        let reqs = b_shared_requests b in
        let fills = reqs *. shared.hi_fill in
        let fu_bound =
          Float.max
            (mdu_cycles c b /. fi (c.C.mdus_per_cluster * acl))
            (fpu_cycles c b /. fi (c.C.fpus_per_cluster * acl))
        in
        let mem_bound =
          Float.max
            (fills *. fi c.C.dram_period /. fi c.C.dram_bandwidth)
            (Float.max
               (reqs *. fi c.C.icn_period
               /. fi (acl * c.C.cluster_inject_width))
               (reqs *. fi c.C.cache_period
               /. fi (c.C.num_cache_modules * c.C.cache_ports)))
        in
        let base = exec_k +. mem_k in
        (* fold any binding floor into the matching component so the
           four-feature calibration still sees the full cost *)
        let exec_k, mem_k =
          if fu_bound > base && fu_bound >= mem_bound then
            (exec_k +. (fu_bound -. base), mem_k)
          else if mem_bound > base then (exec_k, mem_k +. (mem_bound -. base))
          else (exec_k, mem_k)
        in
        x_exec := !x_exec +. exec_k;
        x_mem := !x_mem +. mem_k;
        par_cycles := !par_cycles +. exec_k +. mem_k)
      parallel;
    let cyc = Float.max 1.0 !par_cycles in
    let reqs =
      List.fold_left (fun a b -> a +. b_shared_requests b) 0.0 parallel
    in
    (* request rate the stations see, in requests per cluster cycle *)
    let lambda = reqs /. cyc in
    let rho_icn =
      lambda
      /. (fi (c.C.num_clusters * c.C.cluster_inject_width) /. fi c.C.icn_period)
    in
    let rho_cache =
      lambda
      /. (fi (c.C.num_cache_modules * c.C.cache_ports) /. fi c.C.cache_period)
    in
    let rho_dram =
      lambda *. shared.hi_fill
      /. (fi c.C.dram_bandwidth /. fi c.C.dram_period)
    in
    let qn =
      (qfactor rho_icn *. fi c.C.icn_period)
      +. (qfactor rho_cache *. fi c.C.cache_period)
    in
    let qd = qfactor rho_dram *. fi c.C.dram_period /. fi c.C.dram_bandwidth in
    (* damp the update to keep the iteration stable *)
    q_net := (0.5 *. !q_net) +. (0.5 *. qn);
    q_dram := (0.5 *. !q_dram) +. (0.5 *. qd)
  done;
  let x_spawn =
    fi (List.fold_left (fun a b -> a + b.R.activations) 0 parallel)
    *. fi (c.C.spawn_overhead + c.C.join_overhead)
    *. fi c.C.cluster_period
  in
  (* serial-block memory ops ride the master cache; its misses go
     straight to DRAM without crossing the ICN or the shared queue *)
  let t_master =
    fi c.C.master_cache_hit_latency
    +. ((1.0 -. master.hi_hit) *. dram_unit)
  in
  let x_serial =
    List.fold_left
      (fun acc b ->
        acc
        +. block_exec_cycles c b
        +. (fi (b.R.loads + b.R.stores + b.R.psm) *. t_master))
      0.0 serial_blocks
  in
  let avg_ro_hit =
    match parallel with
    | b :: _ -> (ro_info b).hi_hit
    | [] ->
      (hit_info_of_hists (stream_hists p "tcu_ro")
         ~line_words:c.C.cache_line_words ~capacity_lines:c.C.rocache_lines
         ~fill_mult:1.0)
        .hi_hit
  in
  let t0 = l0 +. ((1.0 -. shared.hi_hit) *. dram_unit) in
  let t1 =
    l0 +. !q_net +. ((1.0 -. shared.hi_hit) *. (dram_unit +. !q_dram))
  in
  ( { x_exec = !x_exec; x_mem = !x_mem; x_spawn; x_serial },
    shared.hi_hit,
    avg_ro_hit,
    master.hi_hit,
    (if t0 > 0.0 then t1 /. t0 else 1.0) )

let apply coeffs (x : components) =
  (coeffs.c_exec *. x.x_exec)
  +. (coeffs.c_mem *. x.x_mem)
  +. (coeffs.c_spawn *. x.x_spawn)
  +. (coeffs.c_serial *. x.x_serial)

let component_vector (x : components) =
  [| x.x_exec; x.x_mem; x.x_spawn; x.x_serial |]

let predict ?(coeffs = identity_coeffs) ?(residual_std_pct = 0.0) ~config p =
  let x, hit_shared, hit_ro, hit_master, contention =
    components_of ~config p
  in
  let cycles = Float.max 1.0 (apply coeffs x) in
  let band = 2.0 *. residual_std_pct /. 100.0 *. cycles in
  {
    predicted_cycles = int_of_float cycles;
    lo = max 1 (int_of_float (cycles -. band));
    hi = int_of_float (cycles +. band);
    instructions = p.R.p_instructions;
    hit_shared;
    hit_ro;
    hit_master;
    contention;
    components = x;
    coeffs;
  }

let to_json ?calibration ?config_name pr =
  J.Obj
    ([ ("schema", J.Str "xmt.predict.v1") ]
    @ (match config_name with
      | Some n -> [ ("config", J.Str n) ]
      | None -> [])
    @ [
        ("predicted_cycles", J.Int pr.predicted_cycles);
        ("lo", J.Int pr.lo);
        ("hi", J.Int pr.hi);
        ("instructions", J.Int pr.instructions);
        ( "hit_rates",
          J.Obj
            [
              ("shared", J.Float pr.hit_shared);
              ("rocache", J.Float pr.hit_ro);
              ("master", J.Float pr.hit_master);
            ] );
        ("contention", J.Float pr.contention);
        ( "components",
          J.Obj
            [
              ("exec", J.Float pr.components.x_exec);
              ("mem", J.Float pr.components.x_mem);
              ("spawn", J.Float pr.components.x_spawn);
              ("serial", J.Float pr.components.x_serial);
            ] );
        ("coefficients", coeffs_to_json pr.coeffs);
      ]
    @ match calibration with Some j -> [ ("calibration", j) ] | None -> [])
