(** The analytical performance model of the prediction mode
    (PPT-Multicore-style, see PAPERS.md): a harvested reuse profile
    ({!Xmtsim.Reuseprofile.snapshot}) plus the same {!Xmtsim.Config}
    the cycle-accurate machine uses, in; predicted cycles with error
    bars, out.

    Three stages:

    + {e hit rates}: each stream's reuse-distance histogram is turned
      into a per-level hit rate by the stack-distance method — an
      access hits an LRU cache of capacity C lines iff its stack
      distance is at most C (the histogram granularity closest to the
      config's line size is rescaled to it);
    + {e contention}: ICN injection, cache-module ports and DRAM
      bandwidth are stations of a queueing model; their utilizations
      follow from the profile's access rates and add
      [rho/(1-rho)]-style delay terms to the memory round trip, solved
      by a damped fixed point (the rate depends on the predicted time);
    + {e decomposition}: predicted cycles split into four components —
      parallel execution, parallel memory, spawn/join overhead and the
      serial (master) section — each scaled by a fitted coefficient
      ({!coeffs}, see {!Calibrate}).

    Everything is pure arithmetic on the profile: predictions are
    deterministic and identical across domains. *)

type coeffs = {
  c_exec : float;  (** parallel execution component *)
  c_mem : float;  (** parallel memory component *)
  c_spawn : float;  (** spawn/join overhead component *)
  c_serial : float;  (** serial (master) section component *)
}

(** All-ones coefficients, the uncalibrated fallback; real deployments
    use {!Calibrate.default} or a fitted artifact. *)
val identity_coeffs : coeffs

val coeffs_to_json : coeffs -> Obs.Json.t

(** Raises [Invalid_argument] on a malformed object. *)
val coeffs_of_json : Obs.Json.t -> coeffs

type components = {
  x_exec : float;
  x_mem : float;
  x_spawn : float;
  x_serial : float;
}

type prediction = {
  predicted_cycles : int;
  lo : int;  (** lower error bar: prediction minus 2 residual stddevs *)
  hi : int;  (** upper error bar *)
  instructions : int;
  hit_shared : float;  (** predicted shared-cache hit rate *)
  hit_ro : float;  (** predicted read-only-cache hit rate *)
  hit_master : float;  (** predicted master-cache hit rate *)
  contention : float;  (** queueing inflation of a memory round trip *)
  components : components;
  coeffs : coeffs;
}

(** [predict ~config profile].  [residual_std_pct] (from the
    calibration artifact) widens [lo]/[hi] to two residual standard
    deviations. *)
val predict :
  ?coeffs:coeffs ->
  ?residual_std_pct:float ->
  config:Xmtsim.Config.t ->
  Xmtsim.Reuseprofile.snapshot ->
  prediction

(** The per-component cycle estimates with unit coefficients, as the
    design vector the calibration fit consumes (order: exec, mem,
    spawn, serial). *)
val component_vector : components -> float array

(** Raw components + hit rates, for {!Calibrate.point}. *)
val components_of :
  config:Xmtsim.Config.t ->
  Xmtsim.Reuseprofile.snapshot ->
  components * float * float * float * float

val apply : coeffs -> components -> float

(** The [xmt.predict.v1] report.  [calibration] (typically
    {!Calibrate.summary_json}) rides along as a [calibration] member. *)
val to_json :
  ?calibration:Obs.Json.t -> ?config_name:string -> prediction -> Obs.Json.t
