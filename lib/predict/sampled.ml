(* Checkpoint-sampled prediction — see sampled.mli. *)

module PS = Xmtsim.Phase_sampling
module R = Xmtsim.Reuseprofile

type result = {
  sp_cycles : int;
  sp_model_cycles : int;
  sp_measured_cycles : int;
  sp_measured_instructions : int;
  sp_gap_instructions : int;
  sp_total_instructions : int;
  sp_windows_requested : int;
  sp_windows_landed : int;
}

let default_windows ~total ~interval ~num =
  if total <= 0 || num <= 0 then []
  else begin
    let num = min num (max 1 (total / max 1 interval)) in
    let spacing = total / num in
    let len = max 1 (min interval (max 1 (spacing / 2))) in
    List.init num (fun k -> { PS.w_start = k * spacing; w_instructions = len })
  end

let estimate ?(calibration = Calibrate.default) ?(config = Xmtsim.Config.fpga64)
    ?(interval = 20_000) ?(num_windows = 4) ?windows image =
  (* pass 1: harvest a reuse profile while discovering the run length,
     and price the whole run with the analytical model *)
  let rp = R.create () in
  let fr = Xmtsim.Functional_mode.run ~profile:rp image in
  let total = fr.Xmtsim.Functional_mode.instructions in
  let pred =
    Model.predict ~coeffs:calibration.Calibrate.coeffs
      ~residual_std_pct:calibration.Calibrate.residual_std_pct ~config
      (R.snapshot rp)
  in
  let model_cpi =
    if total > 0 then float_of_int pred.Model.predicted_cycles /. float_of_int total
    else 1.0
  in
  (* pass 2: fast-forward again, cycle-measuring the chosen windows *)
  let windows =
    match windows with
    | Some ws -> ws
    | None -> default_windows ~total ~interval ~num:num_windows
  in
  let s = PS.sample ~config ~windows image in
  let m_instr =
    List.fold_left (fun a m -> a + m.PS.m_instructions) 0 s.PS.s_measured
  in
  let m_cycles =
    List.fold_left (fun a m -> a + m.PS.m_cycles) 0 s.PS.s_measured
  in
  let gap_instr =
    List.fold_left (fun a g -> a + g.PS.g_instructions) 0 s.PS.s_gaps
  in
  (* blend: gaps are priced at the measured CPI when windows landed
     (the measurement anchors the scale; the model's per-gap resolution
     is a single global CPI, so rescaling it to the measurements
     reduces to the measured CPI) and at the pure model CPI otherwise —
     so the estimate degrades gracefully to the analytical prediction
     when no window could be measured *)
  let anchored_cpi =
    if m_instr > 0 then float_of_int m_cycles /. float_of_int m_instr
    else model_cpi
  in
  let blended = PS.blend ~gap_cpi:(fun _ -> anchored_cpi) s in
  {
    sp_cycles = blended;
    sp_model_cycles = pred.Model.predicted_cycles;
    sp_measured_cycles = m_cycles;
    sp_measured_instructions = m_instr;
    sp_gap_instructions = gap_instr;
    sp_total_instructions = s.PS.s_total_instructions;
    sp_windows_requested = s.PS.s_windows_requested;
    sp_windows_landed = s.PS.s_windows_landed;
  }
