(** Checkpoint-sampled prediction: fast-forward functionally, measure
    a few detailed windows on the cycle-accurate machine (via
    {!Xmtsim.Phase_sampling.sample} + {!Xmtsim.Machine.restore}), and
    blend the measured windows with model-priced gaps.

    Two passes over the program: the first harvests a reuse profile
    (discovering the run length) and prices the whole run with the
    analytical model ({!Model}); the second fast-forwards again,
    cycle-measuring [num_windows] evenly spaced windows of [interval]
    instructions (or the caller's explicit [windows]).  Gaps between
    windows are priced at the measured CPI when at least one window
    landed, and at the model CPI otherwise — so the estimate degrades
    gracefully to the pure analytical prediction. *)

type result = {
  sp_cycles : int;  (** the blended estimate *)
  sp_model_cycles : int;  (** the pure analytical prediction *)
  sp_measured_cycles : int;
  sp_measured_instructions : int;
  sp_gap_instructions : int;
  sp_total_instructions : int;
  sp_windows_requested : int;
  sp_windows_landed : int;
}

val estimate :
  ?calibration:Calibrate.t ->
  ?config:Xmtsim.Config.t ->
  ?interval:int ->
  ?num_windows:int ->
  ?windows:Xmtsim.Phase_sampling.window list ->
  Isa.Program.image ->
  result
