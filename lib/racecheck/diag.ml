(** Structured diagnostics for the race / memory-model checker.

    Every finding carries a stable machine-readable [code], the enclosing
    function, the source line of the spawn block it concerns (or -1 for
    IR-level findings with no source anchor) and the variables involved.
    [Warning] marks heuristic findings (possible overlap the analysis
    cannot prove) and deviations that cannot change observable behaviour;
    [Error] marks definite memory-model violations. *)

type severity = Warning | Error

type finding = {
  severity : severity;
  code : string;
  func : string;
  line : int;  (** spawn source line; -1 = IR-level finding *)
  vars : string list;  (** involved variables, shared base first *)
  message : string;
}

let severity_name = function Warning -> "warning" | Error -> "error"

(* Deterministic report order: location, then code, then detail. *)
let compare_findings a b =
  compare
    (a.line, a.func, a.code, a.vars, a.message)
    (b.line, b.func, b.code, b.vars, b.message)

let sort fs = List.sort_uniq compare_findings fs

let errors fs = List.filter (fun f -> f.severity = Error) fs
let error_count fs = List.length (errors fs)

let render f =
  let where =
    if f.line >= 0 then Printf.sprintf "%s (line %d)" f.func f.line else f.func
  in
  let vars =
    match f.vars with
    | [] -> ""
    | vs -> Printf.sprintf " [%s]" (String.concat ", " vs)
  in
  Printf.sprintf "%s: %s: %s: %s%s" (severity_name f.severity) where f.code
    f.message vars

let to_json f =
  Obs.Json.Obj
    [
      ("severity", Obs.Json.Str (severity_name f.severity));
      ("code", Obs.Json.Str f.code);
      ("func", Obs.Json.Str f.func);
      ("line", Obs.Json.Int f.line);
      ("vars", Obs.Json.List (List.map (fun v -> Obs.Json.Str v) f.vars));
      ("message", Obs.Json.Str f.message);
    ]

let list_to_json fs = Obs.Json.List (List.map to_json (sort fs))
