(** Fence-placement checker (the static layer's memory-model half).

    Re-derives the paper's Fig. 7 placement rule — inside a parallel
    region every [ps]/[psm] must be preceded by a fence that drains the
    thread's pending non-blocking stores — and diffs it against what
    {!Compiler.Memfence} actually emitted into the final IR.  Running it
    over [Driver.output.ir] (after every core pass) also catches later
    passes accidentally separating a fence from its prefix-sum.

    Findings:
    - [missing-fence]: a [ps]/[psm] inside the parallel region with no
      fence covering it.  Severity [Error] when a non-blocking store is
      outstanding (unfenced since the region start or the last fence) —
      the prefix-sum can overtake the store, the Fig. 7 violation;
      [Warning] otherwise (rule deviation that cannot reorder anything
      yet).
    - [redundant-fence]: a fence outside any parallel region, or one
      whose drain is never used by a following prefix-sum (back-to-back
      fences, or a fence left dangling at the join). *)

open Compiler

let check_func (fn : Ir.func) : Diag.finding list =
  let findings = ref [] in
  let add severity code message =
    findings :=
      { Diag.severity; code; func = fn.Ir.name; line = -1; vars = [];
        message }
      :: !findings
  in
  let in_par = ref false in
  let pending_fence = ref false in  (* fence emitted, no ps consumed it yet *)
  let unfenced_nb = ref false in  (* NB store issued since the last fence *)
  let idx = ref (-1) in
  List.iter
    (fun i ->
      incr idx;
      match i with
      | Ir.Ispawn _ ->
        in_par := true;
        pending_fence := false;
        unfenced_nb := false
      | Ir.Ijoin ->
        if !pending_fence then
          add Diag.Warning "redundant-fence"
            (Printf.sprintf
               "fence before instruction %d is not followed by a prefix-sum"
               !idx);
        in_par := false;
        pending_fence := false
      | Ir.Ifence ->
        if not !in_par then
          add Diag.Warning "redundant-fence"
            (Printf.sprintf
               "fence at instruction %d outside any parallel region (nothing \
                to order)"
               !idx)
        else if !pending_fence then
          add Diag.Warning "redundant-fence"
            (Printf.sprintf
               "back-to-back fence at instruction %d (previous drain unused)"
               !idx);
        pending_fence := true;
        unfenced_nb := false
      | Ir.Ist (Ir.St_nb, _, _, _) ->
        unfenced_nb := true;
        pending_fence := false
      | Ir.Ips _ | Ir.Ipsm _ ->
        if !in_par && not !pending_fence then
          add
            (if !unfenced_nb then Diag.Error else Diag.Warning)
            "missing-fence"
            (Printf.sprintf
               "prefix-sum at instruction %d runs with%s; a fence must drain \
                pending stores first (Fig. 7)"
               !idx
               (if !unfenced_nb then " a non-blocking store outstanding"
                else "out a preceding fence"));
        pending_fence := false
      | _ -> ())
    fn.Ir.body;
  !findings

let check_program (ir : Ir.program) : Diag.finding list =
  Diag.sort (List.concat_map check_func ir.Ir.funcs)
