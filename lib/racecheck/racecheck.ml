(** Race & memory-model checker: static layer entry point.

    Two cooperating layers check a compiled program against the XMT
    memory model (paper §IV-A):

    - the {e static} layer — {!Static} over the typed AST (conflicting
      spawn-block accesses, broadcast-write hazards) and {!Fencecheck}
      over the final IR (Fig. 7 fence placement) — lives here;
    - the {e dynamic} layer — a shadow-memory race detector attached to
      the cycle simulator — lives in {!Xmtsim.Racedetect} (this library
      cannot depend on the simulator; the toolchain combines both).

    Reports use the [xmt.races.v1] schema:
    {v
    { "schema": "xmt.races.v1",
      "static":  [ {severity, code, func, line, vars, message}... ],
      "dynamic": {races, epochs, events} | null }
    v} *)

module Diag = Diag
module Static = Static
module Fencecheck = Fencecheck

(** All static findings for a compile: spawn-block analysis over the
    typed AST plus fence-placement diff over the final IR.  Sorted and
    deduplicated (deterministic). *)
let analyze (out : Compiler.Driver.output) : Diag.finding list =
  Diag.sort
    (Static.check_program out.Compiler.Driver.typed
    @ Fencecheck.check_program out.Compiler.Driver.ir)

(** Assemble an [xmt.races.v1] report.  [dynamic] is the detector's
    {!Xmtsim.Racedetect.to_json} output when a simulation ran with the
    detector attached; omitted (null) for compile-only checks. *)
let report ?dynamic (findings : Diag.finding list) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "xmt.races.v1");
      ("static", Diag.list_to_json findings);
      ( "dynamic",
        match dynamic with Some j -> j | None -> Obs.Json.Null );
    ]
