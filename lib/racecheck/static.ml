(** Static spawn-block race analysis (the checker's first layer).

    Walks every outlined spawn block of the typed AST (the post-pre-pass
    representation kept in [Driver.output.typed]) and flags:

    - conflicting shared-memory accesses by different virtual threads that
      are not mediated by [ps]/[psm] — write-write and read-write pairs on
      locations whose index does not separate threads;
    - writes to master-broadcast values (serial locals/params reaching the
      spawn block by broadcast): the Fig. 8 illegal-dataflow hazard.

    The analysis is deliberately address-free: each access is a (base
    variable, index class) pair.  Indices affine in [$] are compared
    exactly; indices that depend on [$] in a way the analysis cannot
    resolve are {e assumed disjoint} (each thread in its own partition) —
    a documented false-negative source; indices derived from a [ps]/[psm]
    result are considered mediated.  Accesses through pointers that do not
    resolve to a named array or an outlined by-ref parameter are skipped:
    there is no alias analysis.

    Mediation uses a bracketing heuristic: a conflicting pair is accepted
    when one access is followed by a prefix-sum (release) and the other is
    preceded by one (acquire) in the block's program order — the Fig. 7
    publication idiom.  [$ == k] guards pin accesses to a single thread;
    equal guards cannot conflict. *)

open Xmtc

type iclass =
  | Iconst of int  (** fixed byte offset: every thread, same address *)
  | Itid of int * int  (** [a*$ + b] bytes, [a <> 0] *)
  | Itid_other  (** depends on [$] non-affinely: assumed disjoint *)
  | Ips_derived  (** index uses a ps/psm result: mediated by construction *)
  | Ivar  (** thread-independent but unknown: possible overlap *)

type kind = Read | Write

type access = {
  a_base : Tast.var;
  a_index : iclass;
  a_kind : kind;
  a_pos : int;  (** pre-order position inside the spawn block *)
  a_guard : int option;  (** Some k: only executed when [$ == k] *)
}

type ctx = {
  mutable pos : int;
  mutable accs : access list;
  mutable syncs : int list;  (** pre-order positions of ps/psm statements *)
  mutable ps_vars : (int, unit) Hashtbl.t;  (** vids holding ps/psm results *)
  mutable bcast : (int, Tast.var * bool ref * bool ref) Hashtbl.t;
      (** broadcast var -> (var, read?, written?) *)
}

let fresh_ctx () =
  { pos = 0; accs = []; syncs = []; ps_vars = Hashtbl.create 8;
    bcast = Hashtbl.create 8 }

let next_pos ctx =
  ctx.pos <- ctx.pos + 1;
  ctx.pos

(* ------------------------------------------------------------------ *)
(* Expression shape helpers *)

let rec exists_node p (e : Tast.expr) =
  p e.Tast.enode
  ||
  match e.Tast.enode with
  | Tast.Eint _ | Tast.Eflt _ | Tast.Evar _ | Tast.Etid -> false
  | Tast.Eunop (_, a)
  | Tast.Elognot a
  | Tast.Ederef a
  | Tast.Eaddr a
  | Tast.Ecast (_, a)
  | Tast.Eincdec (_, _, a) ->
    exists_node p a
  | Tast.Ebinop (_, a, b)
  | Tast.Eland (a, b)
  | Tast.Elor (a, b)
  | Tast.Eassign (a, b)
  | Tast.Eopassign (_, a, b) ->
    exists_node p a || exists_node p b
  | Tast.Ecall (_, args) -> List.exists (exists_node p) args
  | Tast.Econd (a, b, c) ->
    exists_node p a || exists_node p b || exists_node p c

let mentions_tid e = exists_node (function Tast.Etid -> true | _ -> false) e

let mentions_ps_var ctx e =
  exists_node
    (function
      | Tast.Evar v -> Hashtbl.mem ctx.ps_vars v.Tast.vid
      | _ -> false)
    e

(* [e] as [a*$ + b] (in bytes, indices arrive pre-scaled). *)
let rec affine_of (e : Tast.expr) =
  match e.Tast.enode with
  | Tast.Eint c -> Some (0, c)
  | Tast.Etid -> Some (1, 0)
  | Tast.Ecast (_, x) -> affine_of x
  | Tast.Eunop (Types.Neg, x) -> (
    match affine_of x with Some (a, b) -> Some (-a, -b) | None -> None)
  | Tast.Ebinop (Types.Add, x, y) -> (
    match (affine_of x, affine_of y) with
    | Some (ax, bx), Some (ay, by) -> Some (ax + ay, bx + by)
    | _ -> None)
  | Tast.Ebinop (Types.Sub, x, y) -> (
    match (affine_of x, affine_of y) with
    | Some (ax, bx), Some (ay, by) -> Some (ax - ay, bx - by)
    | _ -> None)
  | Tast.Ebinop (Types.Mul, x, y) -> (
    match (affine_of x, affine_of y) with
    | Some (0, c), Some (a, b) | Some (a, b), Some (0, c) ->
      Some (c * a, c * b)
    | _ -> None)
  | _ -> None

let classify ctx offs =
  (* [offs] are signed byte-offset terms; the total index is their sum *)
  let affine =
    List.fold_left
      (fun acc (sign, e) ->
        match (acc, affine_of e) with
        | Some (a, b), Some (a', b') -> Some (a + (sign * a'), b + (sign * b'))
        | _ -> None)
      (Some (0, 0)) offs
  in
  match affine with
  | Some (0, b) -> Iconst b
  | Some (a, b) -> Itid (a, b)
  | None ->
    let es = List.map snd offs in
    if List.exists (mentions_ps_var ctx) es then Ips_derived
    else if List.exists mentions_tid es then Itid_other
    else Ivar

(* Resolve a pointer-valued address expression to (base var, offset
   terms).  Pointer arithmetic is pre-scaled, pointer operand on the
   left (see Typecheck).  [None] = unresolvable (no alias analysis). *)
let rec base_offsets (e : Tast.expr) offs =
  match e.Tast.enode with
  | Tast.Evar v -> Some (v, offs)
  | Tast.Ecast (_, x) -> base_offsets x offs
  | Tast.Ebinop (Types.Add, p, off) when p.Tast.ety <> Types.Tint ->
    base_offsets p ((1, off) :: offs)
  | Tast.Ebinop (Types.Sub, p, off) when p.Tast.ety <> Types.Tint ->
    base_offsets p ((-1, off) :: offs)
  | Tast.Eaddr lv -> (
    match lv.Tast.enode with Tast.Evar v -> Some (v, offs) | _ -> None)
  | _ -> None

(* Is the pointee behind this base variable a shared location we track? *)
let shared_base (v : Tast.var) =
  (not v.Tast.vthread_local)
  && (not v.Tast.vps_base)
  &&
  match v.Tast.vty with
  | Types.Tarr _ -> true  (* named array (global or broadcast) *)
  | Types.Tptr _ -> v.Tast.vkind = Tast.Kparam  (* outlined by-ref capture *)
  | _ -> false

let scalar_shared (v : Tast.var) =
  v.Tast.vkind = Tast.Kglobal
  && (not v.Tast.vps_base)
  && match v.Tast.vty with Types.Tint | Types.Tfloat -> true | _ -> false

let broadcast_var (v : Tast.var) =
  (match v.Tast.vkind with Tast.Klocal | Tast.Kparam -> true | Tast.Kglobal -> false)
  && (not v.Tast.vthread_local)
  && match v.Tast.vty with Types.Tint | Types.Tfloat -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Access collection *)

let record ctx v index kind guard =
  ctx.accs <-
    { a_base = v; a_index = index; a_kind = kind; a_pos = next_pos ctx;
      a_guard = guard }
    :: ctx.accs

let note_bcast ctx v kind =
  let _, r, w =
    match Hashtbl.find_opt ctx.bcast v.Tast.vid with
    | Some entry -> entry
    | None ->
      let entry = (v, ref false, ref false) in
      Hashtbl.replace ctx.bcast v.Tast.vid entry;
      entry
  in
  match kind with Read -> r := true | Write -> w := true

let scalar_access ctx guard v kind =
  if scalar_shared v then record ctx v (Iconst 0) kind guard
  else if broadcast_var v then note_bcast ctx v kind

let rec rd ctx guard (e : Tast.expr) =
  match e.Tast.enode with
  | Tast.Eint _ | Tast.Eflt _ | Tast.Etid -> ()
  | Tast.Evar v -> scalar_access ctx guard v Read
  | Tast.Eunop (_, a) | Tast.Elognot a | Tast.Ecast (_, a) -> rd ctx guard a
  | Tast.Eaddr a -> addr_only ctx guard a
  | Tast.Ebinop (_, a, b) | Tast.Eland (a, b) | Tast.Elor (a, b) ->
    rd ctx guard a;
    rd ctx guard b
  | Tast.Eassign (lhs, rhs) ->
    lvalue ctx guard lhs ~write:true ~read:false;
    rd ctx guard rhs
  | Tast.Eopassign (_, lhs, rhs) ->
    lvalue ctx guard lhs ~write:true ~read:true;
    rd ctx guard rhs
  | Tast.Eincdec (_, _, lhs) -> lvalue ctx guard lhs ~write:true ~read:true
  | Tast.Ecall (_, args) -> List.iter (rd ctx guard) args
  | Tast.Ederef a -> deref ctx guard a ~write:false ~read:true
  | Tast.Econd (a, b, c) ->
    rd ctx guard a;
    rd ctx guard b;
    rd ctx guard c

and lvalue ctx guard (lhs : Tast.expr) ~write ~read =
  match lhs.Tast.enode with
  | Tast.Evar v ->
    if read then scalar_access ctx guard v Read;
    if write then scalar_access ctx guard v Write
  | Tast.Ederef a -> deref ctx guard a ~write ~read
  | Tast.Ecast (_, x) -> lvalue ctx guard x ~write ~read
  | _ -> rd ctx guard lhs

and deref ctx guard (addr : Tast.expr) ~write ~read =
  (match base_offsets addr [] with
  | Some (v, offs) when shared_base v ->
    let index = classify ctx offs in
    if read then record ctx v index Read guard;
    if write then record ctx v index Write guard
  | _ -> () (* unresolvable pointer: no alias analysis (documented) *));
  (* index expressions are evaluated regardless: collect their reads *)
  index_reads ctx guard addr

and index_reads ctx guard (e : Tast.expr) =
  match e.Tast.enode with
  | Tast.Evar _ -> ()  (* the base itself: an address, not a memory access *)
  | Tast.Ecast (_, x) | Tast.Eaddr x -> index_reads ctx guard x
  | Tast.Ebinop ((Types.Add | Types.Sub), p, off) when p.Tast.ety <> Types.Tint ->
    index_reads ctx guard p;
    rd ctx guard off
  | _ -> rd ctx guard e

and addr_only ctx guard (a : Tast.expr) =
  match a.Tast.enode with
  | Tast.Evar _ -> ()
  | Tast.Ederef p -> index_reads ctx guard p
  | Tast.Ecast (_, x) -> addr_only ctx guard x
  | _ -> rd ctx guard a

(* [$ == k] (either operand order) pins the branch to thread [k]. *)
let tid_eq_guard (c : Tast.expr) =
  match c.Tast.enode with
  | Tast.Ebinop (Types.Eq, a, b) -> (
    match (a.Tast.enode, b.Tast.enode) with
    | Tast.Etid, Tast.Eint k | Tast.Eint k, Tast.Etid -> Some k
    | _ -> None)
  | _ -> None

let sync ctx = ctx.syncs <- next_pos ctx :: ctx.syncs

let rec stmt ctx guard (s : Tast.stmt) =
  match s with
  | Tast.Sskip | Tast.Sbreak | Tast.Scontinue | Tast.Sloc _ -> ()
  | Tast.Sexpr e -> rd ctx guard e
  | Tast.Sdecl (_, init) -> Option.iter (rd ctx guard) init
  | Tast.Sblock ss -> List.iter (stmt ctx guard) ss
  | Tast.Sif (c, a, b) ->
    rd ctx guard c;
    let ga = match tid_eq_guard c with Some _ as g -> g | None -> guard in
    stmt ctx ga a;
    stmt ctx guard b
  | Tast.Swhile (c, b) ->
    rd ctx guard c;
    stmt ctx guard b
  | Tast.Sdowhile (b, c) ->
    stmt ctx guard b;
    rd ctx guard c
  | Tast.Sfor (i, c, p, b) ->
    stmt ctx guard i;
    Option.iter (rd ctx guard) c;
    stmt ctx guard p;
    stmt ctx guard b
  | Tast.Sreturn e -> Option.iter (rd ctx guard) e
  | Tast.Sspawn _ -> ()  (* nested spawns are serialized: no new threads *)
  | Tast.Sps (v, _) ->
    sync ctx;
    Hashtbl.replace ctx.ps_vars v.Tast.vid ()
  | Tast.Spsm (v, addr) ->
    sync ctx;
    Hashtbl.replace ctx.ps_vars v.Tast.vid ();
    (* the psm word itself is mediated by definition; its index is not *)
    index_reads ctx guard addr

(* Propagate ps-derived values one assignment deep: [x = f(ps_var)] makes
   [x] ps-derived for subsequent indexing (e.g. [B[inc]] in compaction
   uses [inc] directly, but [slot = inc + k] idioms appear too). *)
let propagate_ps_vars ctx body =
  let rec prop s =
    match s with
    | Tast.Sexpr e -> prop_expr e
    | Tast.Sdecl (v, Some init) ->
      if mentions_ps_var ctx init then Hashtbl.replace ctx.ps_vars v.Tast.vid ()
    | Tast.Sblock ss -> List.iter prop ss
    | Tast.Sif (_, a, b) ->
      prop a;
      prop b
    | Tast.Swhile (_, b) | Tast.Sdowhile (b, _) -> prop b
    | Tast.Sfor (i, _, p, b) ->
      prop i;
      prop p;
      prop b
    | _ -> ()
  and prop_expr e =
    match e.Tast.enode with
    | Tast.Eassign ({ Tast.enode = Tast.Evar v; _ }, rhs) ->
      if mentions_ps_var ctx rhs then Hashtbl.replace ctx.ps_vars v.Tast.vid ()
    | _ -> ()
  in
  prop body

(* ------------------------------------------------------------------ *)
(* Conflict detection *)

let kinds_code a b =
  match (a, b) with
  | Write, Write -> "unmediated-write-write"
  | _ -> "unmediated-read-write"

(* Can these two index classes land on the same address for two
   DIFFERENT threads?  Returns the severity of the conflict, or None. *)
let overlap (x : access) (y : access) =
  match (x.a_index, y.a_index) with
  | (Ips_derived | Itid_other), _ | _, (Ips_derived | Itid_other) -> None
  | Iconst c1, Iconst c2 -> if c1 = c2 then Some Diag.Error else None
  | Iconst c, Itid (a, b) | Itid (a, b), Iconst c ->
    if a <> 0 && (c - b) mod a = 0 then begin
      let t0 = (c - b) / a in
      if t0 < 0 then None
      else
        (* the fixed access conflicts with thread t0's affine access;
           if the fixed access is pinned to that same thread, it's local *)
        let fixed_guard =
          match x.a_index with Iconst _ -> x.a_guard | _ -> y.a_guard
        in
        if fixed_guard = Some t0 then None else Some Diag.Error
    end
    else None
  | Itid (a1, b1), Itid (a2, b2) ->
    if a1 = a2 then
      if b1 <> b2 && (b1 - b2) mod a1 = 0 then Some Diag.Error else None
    else Some Diag.Warning  (* different strides: possible overlap *)
  | Ivar, _ | _, Ivar -> Some Diag.Warning

let index_desc = function
  | Iconst b -> Printf.sprintf "byte offset %d" b
  | Itid (a, b) -> Printf.sprintf "byte offset %d*$%+d" a b
  | Itid_other -> "a $-dependent index"
  | Ips_derived -> "a ps-derived index"
  | Ivar -> "a thread-independent index"

let spawn_findings ~fname ~line (ctx : ctx) =
  let syncs = ctx.syncs in
  let rel_after a = List.exists (fun s -> s > a.a_pos) syncs in
  let acq_before a = List.exists (fun s -> s < a.a_pos) syncs in
  let mediated x y =
    (rel_after x && acq_before y) || (rel_after y && acq_before x)
  in
  let findings = ref [] in
  let add severity code base x y =
    findings :=
      {
        Diag.severity;
        code;
        func = fname;
        line;
        vars = [ base.Tast.vname ];
        message =
          Printf.sprintf
            "different virtual threads can %s %s at %s without an \
             intervening fence or prefix-sum"
            (match (x.a_kind, y.a_kind) with
            | Write, Write -> "both write"
            | _ -> "read and write")
            base.Tast.vname (index_desc x.a_index);
      }
      :: !findings
  in
  let accs = Array.of_list (List.rev ctx.accs) in
  let n = Array.length accs in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let x = accs.(i) and y = accs.(j) in
      if
        x.a_base.Tast.vid = y.a_base.Tast.vid
        && (x.a_kind = Write || y.a_kind = Write)
      then
        if i = j then begin
          (* the same statement, executed by every (unpinned) thread *)
          if x.a_kind = Write && x.a_guard = None && not (mediated x x) then
            match x.a_index with
            | Iconst _ -> add Diag.Error (kinds_code Write Write) x.a_base x x
            | Ivar -> add Diag.Warning (kinds_code Write Write) x.a_base x x
            | Itid _ | Itid_other | Ips_derived -> ()
        end
        else if
          (* equal [$ == k] guards: both accesses on the same thread *)
          not
            (match (x.a_guard, y.a_guard) with
            | Some gx, Some gy -> gx = gy
            | _ -> false)
        then
          match overlap x y with
          | Some sev when not (mediated x y) ->
            add sev (kinds_code x.a_kind y.a_kind) x.a_base x y
          | _ -> ()
    done
  done;
  let bcast =
    Hashtbl.fold
      (fun _ (v, r, w) acc ->
        if !w then
          {
            Diag.severity = Diag.Error;
            code = "broadcast-write";
            func = fname;
            line;
            vars = [ v.Tast.vname ];
            message =
              Printf.sprintf
                "spawn block writes master-broadcast value %s%s; the store \
                 lands in a per-thread copy and is lost at join (Fig. 8 \
                 illegal dataflow — compile with outlining)"
                v.Tast.vname
                (if !r then " (and reads it back)" else "");
          }
          :: acc
        else acc)
      ctx.bcast []
  in
  !findings @ bcast

(* ------------------------------------------------------------------ *)

(** Analyze every top-level spawn block of [prog].  Works on the typed
    AST after the pre-pass, so both outlined ([__outl_sp_k]) and inline
    (compiled with [outline = false]) spawn blocks are covered. *)
let check_program (prog : Tast.program) : Diag.finding list =
  let findings = ref [] in
  List.iter
    (fun (fn : Tast.func) ->
      Tast.iter_spawns
        (fun sp ->
          if not sp.Tast.sp_nested then begin
            let ctx = fresh_ctx () in
            (* pre-scan: ps-result vars feed index classification *)
            Tast.iter_spawns
              (fun _ -> ())
              sp.Tast.sp_body (* no-op, keeps shape parallel *);
            let seed_ps s =
              match s with
              | Tast.Sps (v, _) | Tast.Spsm (v, _) ->
                Hashtbl.replace ctx.ps_vars v.Tast.vid ()
              | _ -> ()
            in
            let rec scan s =
              seed_ps s;
              match s with
              | Tast.Sblock ss -> List.iter scan ss
              | Tast.Sif (_, a, b) ->
                scan a;
                scan b
              | Tast.Swhile (_, b) | Tast.Sdowhile (b, _) -> scan b
              | Tast.Sfor (i, _, p, b) ->
                scan i;
                scan p;
                scan b
              | _ -> ()
            in
            scan sp.Tast.sp_body;
            propagate_ps_vars ctx sp.Tast.sp_body;
            stmt ctx None sp.Tast.sp_body;
            findings :=
              spawn_findings ~fname:fn.Tast.fname ~line:sp.Tast.sp_pos ctx
              @ !findings
          end)
        fn.Tast.fbody)
    prog.Tast.funcs;
  Diag.sort !findings
