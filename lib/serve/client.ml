(** Client side of the serve protocol — see client.mli. *)

module J = Obs.Json

exception Disconnected

type summary = { s_jobs : int; s_ok : int; s_failed : int }

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable hello : J.t;
  records : (string, J.t Queue.t) Hashtbl.t;  (* per-cid campaign records *)
  control : J.t Queue.t;  (* request/response frames, arrival order *)
  mutable closed : bool;
}

let control_types =
  [
    "stream.open"; "stream.close"; "server.hello"; "campaign.accepted";
    "server.overload"; "server.error"; "campaign.attached"; "pong";
  ]

let typ_of j =
  match J.member "type" j with Some (J.Str s) -> s | _ -> ""

let cid_of j =
  match J.member "cid" j with Some (J.Str s) -> Some s | _ -> None

let strip_cid = function
  | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> "cid") kvs)
  | j -> j

let cid_queue t cid =
  match Hashtbl.find_opt t.records cid with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.records cid q;
    q

(* read one line and route it; every reader loops on this *)
let pump t =
  match input_line t.ic with
  | exception (End_of_file | Sys_error _) -> raise Disconnected
  | line -> (
    match J.of_string line with
    | exception J.Parse_error _ -> ()
    | j ->
      if List.mem (typ_of j) control_types then Queue.push j t.control
      else (
        match cid_of j with
        | Some cid -> Queue.push (strip_cid j) (cid_queue t cid)
        | None -> Queue.push j t.control))

let next_control t =
  while Queue.is_empty t.control do
    pump t
  done;
  Queue.pop t.control

let next_record t ~cid =
  let q = cid_queue t cid in
  while Queue.is_empty q do
    pump t
  done;
  Queue.pop q

let send t j =
  let line = J.to_string j ^ "\n" in
  let buf = Bytes.of_string line in
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      match Unix.write t.fd buf off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (_, _, _) -> raise Disconnected
  in
  go 0

let connect path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  let t =
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      hello = J.Null;
      records = Hashtbl.create 7;
      control = Queue.create ();
      closed = false;
    }
  in
  (* stream.open, then server.hello *)
  let rec wait_hello () =
    let j = next_control t in
    if typ_of j = "server.hello" then t.hello <- j else wait_hello ()
  in
  wait_hello ();
  t

let hello t = t.hello

(* wait for the response to the request in flight, skipping unrelated
   control chatter (a pong from an earlier ping, stream framing) *)
let rec response t ~accept =
  let j = next_control t in
  match accept (typ_of j) with true -> j | false -> response t ~accept

let submit t ?cid spec =
  send t
    (J.Obj
       (("type", J.Str "campaign.submit")
       :: ((match cid with Some c -> [ ("cid", J.Str c) ] | None -> [])
          @ [ ("spec", spec) ])));
  let j =
    response t ~accept:(fun ty ->
        List.mem ty [ "campaign.accepted"; "server.overload"; "server.error" ])
  in
  match (typ_of j, cid_of j) with
  | "campaign.accepted", Some cid -> Ok cid
  | _ -> Error j

let attach t ~cid ?after () =
  send t
    (J.Obj
       (("type", J.Str "campaign.attach")
       :: ("cid", J.Str cid)
       ::
       (match after with
       | None -> []
       | Some (job, jseq) ->
         [ ("after", J.Obj [ ("job", J.Int job); ("jseq", J.Int jseq) ]) ])));
  let j =
    response t ~accept:(fun ty ->
        List.mem ty [ "campaign.attached"; "server.error" ])
  in
  if typ_of j = "campaign.attached" then Ok () else Error j

let stream_until_done t ~cid ~on_record =
  let geti k j d = Option.value ~default:d (Option.bind (J.member k j) J.to_int) in
  let rec loop () =
    let r = next_record t ~cid in
    on_record r;
    if typ_of r = "campaign.done" then
      { s_jobs = geti "jobs" r 0; s_ok = geti "ok" r 0; s_failed = geti "failed" r 0 }
    else loop ()
  in
  loop ()

let ping t =
  send t (J.Obj [ ("type", J.Str "ping") ]);
  let j = response t ~accept:(fun ty -> List.mem ty [ "pong"; "server.error" ]) in
  if typ_of j = "pong" then Ok () else Error j

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try send t (J.Obj [ ("type", J.Str "bye") ]) with Disconnected -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
