(** Client side of the [xmt.serve.v1] protocol ({!Protocol}).

    A thin, blocking, single-threaded client: one socket, requests out,
    the server's [xmt.events.v1] stream back in.  Incoming lines are
    demultiplexed as they are read — control frames ([server.hello],
    [campaign.accepted], [server.overload], [server.error],
    [campaign.attached], [pong]) answer the request in flight, while
    per-campaign records ([job.start], [job.done], [campaign.progress],
    [campaign.done]) are queued per campaign id with their ["cid"] tag
    stripped, so the records handed to {!stream_until_done} are exactly
    what a direct {!Campaign.run} would have streamed (canonicalize
    both and they are byte-identical).

    Run one request at a time per connection; several campaigns may
    stream concurrently over it. *)

type t

(** Raised when the server connection drops mid-conversation.  A
    campaign keeps running server-side — reconnect and
    [campaign.attach] from the last record received. *)
exception Disconnected

val connect : string -> t
(** [connect socket_path] — reads the stream framing and the
    [server.hello]. *)

val hello : t -> Obs.Json.t
(** The [server.hello] record (pool width, quota limits). *)

(** Submit a campaign spec ([xmt.campaign.v1] JSON, sent verbatim).
    [Ok cid] once the server accepts; [Error frame] carries the
    [server.overload] / [server.error] record. *)
val submit : t -> ?cid:string -> Obs.Json.t -> (string, Obs.Json.t) result

(** Re-subscribe to a campaign, optionally acknowledging the last
    [(job, jseq)] record already received; the server re-streams
    strictly after it. *)
val attach :
  t -> cid:string -> ?after:int * int -> unit -> (unit, Obs.Json.t) result

(** Block for the next record of one campaign (["cid"] stripped) —
    the single-step form of {!stream_until_done}, for consumers that
    need to stop mid-stream (and later {!attach} with the last
    [(job, jseq)] received). *)
val next_record : t -> cid:string -> Obs.Json.t

type summary = { s_jobs : int; s_ok : int; s_failed : int }

(** Consume the campaign's records — [on_record] sees each one,
    ["cid"] already stripped, including the final [campaign.done] —
    and return the summary parsed from [campaign.done]. *)
val stream_until_done :
  t -> cid:string -> on_record:(Obs.Json.t -> unit) -> summary

val ping : t -> (unit, Obs.Json.t) result

(** Polite close (sends [bye]); idempotent. *)
val close : t -> unit
