(** Crash-durable campaign journals — see journal.mli. *)

module J = Obs.Json

type t = { mutable oc : out_channel option }

let path ~dir ~cid = Filename.concat dir (cid ^ ".journal")

let write_line t j =
  match t.oc with
  | None -> ()
  | Some oc ->
    output_string oc (J.to_string j);
    output_char oc '\n';
    flush oc

let start ~dir ~cid ~spec =
  let oc = open_out (path ~dir ~cid) in
  let t = { oc = Some oc } in
  write_line t
    (J.Obj
       [
         ("journal", J.Str "open");
         ("schema", J.Str Protocol.schema);
         ("cid", J.Str cid);
         ("spec", spec);
       ]);
  t

let reopen ~dir ~cid =
  let oc =
    open_out_gen [ Open_append; Open_wronly ] 0o644 (path ~dir ~cid)
  in
  { oc = Some oc }

let append t record = write_line t record

let close_mark t ~ok ~failed =
  write_line t
    (J.Obj
       [ ("journal", J.Str "close"); ("ok", J.Int ok); ("failed", J.Int failed) ])

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc

type recovered = {
  rc_cid : string;
  rc_spec : J.t;
  rc_records : J.t list;
  rc_ok : int;
  rc_failed : int;
  rc_complete : bool;
}

let recover_file ~dir name =
  let cid = Filename.chop_suffix name ".journal" in
  let ic = open_in (Filename.concat dir name) in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  (* only the final line may be truncated by a crash, so a parse
     failure on any earlier line is a corrupt journal and the file is
     ignored *)
  let parsed =
    match !lines with
    | [] -> None
    | newest :: older ->
      let body =
        (* [older] is newest-first; prepending restores file order *)
        List.fold_left
          (fun acc line ->
            match acc with
            | None -> None
            | Some js -> (
              match J.of_string line with
              | j -> Some (j :: js)
              | exception J.Parse_error _ -> None))
          (Some []) older
      in
      Option.map
        (fun js ->
          match J.of_string newest with
          | j -> js @ [ j ]
          | exception J.Parse_error _ -> js)
        body
  in
  match parsed with
  | None | Some [] -> None
  | Some (first :: rest) -> (
    match (J.member "journal" first, J.member "spec" first) with
    | Some (J.Str "open"), Some spec ->
      let records, ok, failed, complete =
        List.fold_left
          (fun (rs, ok, failed, complete) j ->
            match J.member "journal" j with
            | Some (J.Str "close") ->
              let geti k d =
                Option.value ~default:d (Option.bind (J.member k j) J.to_int)
              in
              (rs, geti "ok" ok, geti "failed" failed, true)
            | Some _ -> (rs, ok, failed, complete)
            | None -> (j :: rs, ok, failed, complete))
          ([], 0, 0, false) rest
      in
      Some
        {
          rc_cid = cid;
          rc_spec = spec;
          rc_records = List.rev records;
          rc_ok = ok;
          rc_failed = failed;
          rc_complete = complete;
        }
    | _ -> None)

let recover ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".journal")
    |> List.sort compare
    |> List.filter_map (fun n ->
           match recover_file ~dir n with r -> r | exception _ -> None)
