(** Crash-durable campaign journals — the checkpoint/resume substrate of
    [xmtserved].

    One NDJSON file per campaign, [<dir>/<cid>.journal]:

    {v
    {"journal":"open","schema":"xmt.serve.v1","cid":"sweep1","spec":{...}}
    {"type":"job.start","job":0,"jseq":0,...}
    {"type":"job.done","job":0,"jseq":1,...}
    ...
    {"journal":"close","ok":17,"failed":1}
    v}

    The server appends each per-job record {e before} sending it to the
    subscribed client (journal-then-send, under one lock), so the
    journal is always a prefix-superset of what any client has seen and
    journal order is send order.  Each record line is flushed, so a
    [kill -9] loses at most the line being written — {!recover}
    tolerates a truncated final line.

    On restart, a journal without a close mark is an incomplete
    campaign: the verbatim ["spec"] rebuilds the request, the job
    records say which [(job, jseq)] were already emitted (those are
    never re-emitted — a resumed job whose [job.start] survived but
    whose [job.done] did not re-runs and emits only the missing
    [job.done]), and the record list seeds the replay history that
    [campaign.attach] re-streams from. *)

type t

val path : dir:string -> cid:string -> string

(** Create the journal (truncating any stale file) and write the open
    line. *)
val start : dir:string -> cid:string -> spec:Obs.Json.t -> t

(** Reopen an existing journal in append mode (resumed campaigns). *)
val reopen : dir:string -> cid:string -> t

(** Append one record line and flush. *)
val append : t -> Obs.Json.t -> unit

(** Write the close mark (campaign finished, not merely server down). *)
val close_mark : t -> ok:int -> failed:int -> unit

(** Close the file handle.  Idempotent; later {!append}s are no-ops. *)
val close : t -> unit

type recovered = {
  rc_cid : string;
  rc_spec : Obs.Json.t;  (** the submit frame's spec, verbatim *)
  rc_records : Obs.Json.t list;  (** job records in journal order *)
  rc_ok : int;
  rc_failed : int;
  rc_complete : bool;  (** close mark present *)
}

(** Scan [dir] for [*.journal] files and parse each, skipping a
    truncated final line and ignoring files without a valid open line.
    Sorted by cid for determinism. *)
val recover : dir:string -> recovered list
