(** [xmt.serve.v1] request-frame parsing — see protocol.mli. *)

module J = Obs.Json

let schema = "xmt.serve.v1"
let version = 1

type frame =
  | Submit of { cid : string option; spec : J.t }
  | Attach of { cid : string; after : (int * int) option }
  | Ping
  | Bye

let valid_cid s =
  let n = String.length s in
  n > 0 && n <= 64
  && s.[0] <> '.'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       s

let frame_of_json j =
  let str_member k =
    match J.member k j with
    | Some (J.Str s) -> Ok (Some s)
    | None -> Ok None
    | Some _ -> Error (Printf.sprintf "%S must be a string" k)
  in
  let checked_cid = function
    | Some cid when not (valid_cid cid) ->
      Error (Printf.sprintf "invalid cid %S" cid)
    | v -> Ok v
  in
  match J.member "type" j with
  | Some (J.Str "campaign.submit") -> (
    match Result.bind (str_member "cid") checked_cid with
    | Error _ as e -> e
    | Ok cid -> (
      match J.member "spec" j with
      | Some (J.Obj _ as spec) -> Ok (Submit { cid; spec })
      | Some _ -> Error "\"spec\" must be an object"
      | None -> Error "campaign.submit needs a \"spec\""))
  | Some (J.Str "campaign.attach") -> (
    match Result.bind (str_member "cid") checked_cid with
    | Error _ as e -> e
    | Ok None -> Error "campaign.attach needs a \"cid\""
    | Ok (Some cid) -> (
      match J.member "after" j with
      | None -> Ok (Attach { cid; after = None })
      | Some a -> (
        match
          ( Option.bind (J.member "job" a) J.to_int,
            Option.bind (J.member "jseq" a) J.to_int )
        with
        | Some job, Some jseq -> Ok (Attach { cid; after = Some (job, jseq) })
        | _ -> Error "\"after\" must be {\"job\": N, \"jseq\": N}")))
  | Some (J.Str "ping") -> Ok Ping
  | Some (J.Str "bye") -> Ok Bye
  | Some (J.Str other) -> Error (Printf.sprintf "unknown frame type %S" other)
  | Some _ -> Error "\"type\" must be a string"
  | None -> Error "frame needs a \"type\""

let frame_of_line line =
  match J.of_string line with
  | j -> frame_of_json j
  | exception J.Parse_error msg -> Error (Printf.sprintf "bad JSON: %s" msg)
