(** The [xmt.serve.v1] wire protocol.

    A connection is one Unix-domain socket carrying NDJSON both ways.

    {b Client → server} lines are bare request frames, one JSON object
    per line with a ["type"] discriminator:

    {v
    {"type":"campaign.submit","cid":"sweep1","spec":{...xmt.campaign.v1...}}
    {"type":"campaign.attach","cid":"sweep1","after":{"job":3,"jseq":1}}
    {"type":"ping"}
    {"type":"bye"}
    v}

    ["cid"] on submit is optional (the server assigns one); ["after"] on
    attach is the last [(job, jseq)] record the client received — the
    server re-streams strictly after it, or everything when absent.

    {b Server → client} traffic is a single [xmt.events.v1] stream
    ({!Obs.Stream}): the usual [stream.open] framing, then
    [server.hello], per-request [campaign.accepted] / [server.overload]
    / [server.error] / [campaign.attached] / [pong] responses, and the
    campaign records themselves ([job.start], [job.done],
    [campaign.progress], [campaign.done]) tagged with a trailing
    ["cid"] field so one connection can multiplex campaigns.  Clients
    strip ["cid"] before canonicalizing, which makes the served stream
    byte-identical to a direct {!Campaign.run} of the same request. *)

val schema : string
(** ["xmt.serve.v1"] *)

val version : int

(** A parsed client request frame. *)
type frame =
  | Submit of { cid : string option; spec : Obs.Json.t }
  | Attach of { cid : string; after : (int * int) option }
  | Ping
  | Bye

(** Campaign ids name journal files, so they are restricted to
    [[A-Za-z0-9_.-]], must not start with a dot, and are at most 64
    characters. *)
val valid_cid : string -> bool

(** Parse one request line; [Error] is a human-readable reason the
    server echoes back in a [server.error] frame. *)
val frame_of_line : string -> (frame, string) result
