(** The campaign server — see server.mli.

    Locking: two levels.  [t.lock] guards the server tables (campaign
    list, admission counters, connection registry).  Each campaign's
    [c_elock] serializes its journal-then-send step, so journal order
    is send order and the replay history is exactly what a client was
    sent.  Lock order is always [c_elock] then [t.lock], never the
    reverse. *)

module J = Obs.Json

type config = {
  socket_path : string;
  state_dir : string option;
  workers : int option;
  max_pending_jobs : int;
  max_client_jobs : int;
}

let default_config ~socket_path =
  {
    socket_path;
    state_dir = None;
    workers = None;
    max_pending_jobs = 4096;
    max_client_jobs = 1024;
  }

(* a connection's outbound stream plus the liveness flag its sink
   trips on the first failed write — emissions to a dead client are
   silently swallowed, never an error *)
type subscriber = { sub_stream : Obs.Stream.t; sub_alive : bool ref }

type conn = {
  k_fd : Unix.file_descr;
  k_sub : subscriber;
  mutable k_inflight : int;  (* admitted jobs not yet completed *)
}

type campaign = {
  c_cid : string;
  c_specs : (string * Core.Toolchain.job) array;
  c_retries : int;
  c_elock : Mutex.t;
  c_journal : Journal.t option;
  c_pending : int Queue.t;  (* guarded by [t.lock] *)
  c_skip_start : (int, unit) Hashtbl.t;
      (* recovered indices whose [job.start] already made it to the
         journal in a previous lifetime: re-running them must emit only
         the missing [job.done] *)
  mutable c_history : J.t list;  (* journal-order records, reversed *)
  mutable c_sub : subscriber option;
  mutable c_owner : conn option;  (* quota account; [None] once detached *)
  mutable c_completed : int;
  mutable c_ok : int;
  mutable c_failed : int;
  mutable c_complete : bool;
}

type t = {
  cfg : config;
  pool : Campaign.Pool.t;
  artifacts : Core.Toolchain.Artifacts.t;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  work : Condition.t;  (* scheduler wakeup *)
  idle : Condition.t;  (* wait_idle *)
  mutable campaigns : campaign list;  (* submission order *)
  mutable conns : conn list;
  mutable rr : int;  (* round-robin start offset *)
  mutable pending_total : int;
  mutable running_total : int;
  mutable next_cid : int;
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

(* ------------------------------------------------------------------ *)
(* Outbound records *)

let socket_sink fd alive =
  let write line =
    if !alive then begin
      let buf = Bytes.of_string (line ^ "\n") in
      let n = Bytes.length buf in
      let rec go off =
        if off < n then
          match Unix.write fd buf off (n - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error (_, _, _) -> alive := false
      in
      go 0
    end
  in
  {
    Obs.Stream.write;
    close =
      (fun () ->
        alive := false;
        try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  }

(* live emission to whoever is subscribed; the trailing ["cid"] is what
   lets one connection multiplex campaigns (clients strip it) *)
let emit_sub c ~typ fields =
  match c.c_sub with
  | Some { sub_stream; sub_alive } when !sub_alive ->
    Obs.Stream.emit sub_stream ~typ (fields @ [ ("cid", J.Str c.c_cid) ])
  | _ -> ()

(* journal-then-send under [c_elock]: exactly-once into the journal and
   the history, at-most-once (subscriber may be dead) onto the wire *)
let record c ~typ fields =
  let r = J.Obj (("type", J.Str typ) :: fields) in
  Option.iter (fun jn -> Journal.append jn r) c.c_journal;
  c.c_history <- r :: c.c_history;
  emit_sub c ~typ fields

let progress_fields c =
  [
    ("completed", J.Int c.c_completed);
    ("total", J.Int (Array.length c.c_specs));
    ("ok", J.Int c.c_ok);
    ("failed", J.Int c.c_failed);
  ]

let done_fields c =
  [
    ("jobs", J.Int (Array.length c.c_specs));
    ("ok", J.Int c.c_ok);
    ("failed", J.Int c.c_failed);
  ]

(* ------------------------------------------------------------------ *)
(* Job execution *)

let exec_one t c i =
  let name, job = c.c_specs.(i) in
  Mutex.protect c.c_elock (fun () ->
      if Hashtbl.mem c.c_skip_start i then Hashtbl.remove c.c_skip_start i
      else record c ~typ:"job.start" (Campaign.Wire.job_start_fields ~index:i ~name));
  let t0 = Obs.Clock.now () in
  let attempts, outcome =
    Campaign.attempt_job ~artifacts:t.artifacts ~retries:c.c_retries job
  in
  let wall_seconds = Obs.Clock.elapsed_since t0 in
  Mutex.protect c.c_elock (fun () ->
      record c ~typ:"job.done"
        (Campaign.Wire.job_done_fields ~index:i ~name ~job ~attempts
           ~wall_seconds outcome);
      let complete =
        Mutex.protect t.lock (fun () ->
            c.c_completed <- c.c_completed + 1;
            (match outcome with
            | Ok _ -> c.c_ok <- c.c_ok + 1
            | Error _ -> c.c_failed <- c.c_failed + 1);
            t.running_total <- t.running_total - 1;
            (match c.c_owner with
            | Some k -> k.k_inflight <- k.k_inflight - 1
            | None -> ());
            let complete = c.c_completed = Array.length c.c_specs in
            if complete then c.c_complete <- true;
            if t.pending_total = 0 && t.running_total = 0 then
              Condition.broadcast t.idle;
            complete)
      in
      emit_sub c ~typ:"campaign.progress" (progress_fields c);
      if complete then begin
        Option.iter
          (fun jn ->
            Journal.close_mark jn ~ok:c.c_ok ~failed:c.c_failed;
            Journal.close jn)
          c.c_journal;
        emit_sub c ~typ:"campaign.done" (done_fields c)
      end)

(* ------------------------------------------------------------------ *)
(* Scheduler: fair round-robin batches over the shared pool *)

(* Under [t.lock]: sweep the campaigns starting at the rotating offset,
   taking one queued job per campaign per sweep, until the batch holds
   two pool-widths of work or nothing is queued.  One-per-sweep is the
   fairness discipline: a 4-job campaign behind a 1000-job one gets a
   slot in every sweep. *)
let assemble_batch t =
  let cap = 2 * Campaign.Pool.width t.pool in
  let arr = Array.of_list t.campaigns in
  let ncs = Array.length arr in
  let batch = ref [] and count = ref 0 in
  let progressed = ref true in
  while !count < cap && !progressed do
    progressed := false;
    for k = 0 to ncs - 1 do
      if !count < cap then
        let c = arr.((t.rr + k) mod ncs) in
        match Queue.take_opt c.c_pending with
        | Some i ->
          batch := (c, i) :: !batch;
          incr count;
          t.pending_total <- t.pending_total - 1;
          t.running_total <- t.running_total + 1;
          progressed := true
        | None -> ()
    done
  done;
  if ncs > 0 then t.rr <- (t.rr + 1) mod ncs;
  Array.of_list (List.rev !batch)

let scheduler t () =
  let rec loop () =
    let batch =
      Mutex.protect t.lock (fun () ->
          while (not t.stopping) && t.pending_total = 0 do
            Condition.wait t.work t.lock
          done;
          if t.stopping then None else Some (assemble_batch t))
    in
    match batch with
    | None -> ()
    | Some batch ->
      if Array.length batch > 0 then
        Campaign.Pool.run t.pool ~jobs:(Array.length batch)
          (fun ~worker:_ k ->
            let c, i = batch.(k) in
            exec_one t c i);
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Frame handling *)

let emit_conn conn ~typ fields =
  if !(conn.k_sub.sub_alive) then
    Obs.Stream.emit conn.k_sub.sub_stream ~typ fields

let server_error conn ?cid msg =
  emit_conn conn ~typ:"server.error"
    ((match cid with Some c -> [ ("cid", J.Str c) ] | None -> [])
    @ [ ("error", J.Str msg) ])

let find_campaign t cid =
  Mutex.protect t.lock (fun () ->
      List.find_opt (fun c -> c.c_cid = cid) t.campaigns)

let journal_exists t cid =
  match t.cfg.state_dir with
  | None -> false
  | Some dir -> Sys.file_exists (Journal.path ~dir ~cid)

(* a fresh id: "c1", "c2", ... skipping anything alive in memory or on
   disk from a previous lifetime *)
let generate_cid t =
  let taken cid =
    List.exists (fun c -> c.c_cid = cid) t.campaigns || journal_exists t cid
  in
  let rec go () =
    let cid = Printf.sprintf "c%d" t.next_cid in
    t.next_cid <- t.next_cid + 1;
    if taken cid then go () else cid
  in
  go ()

let handle_submit t conn ~cid ~spec =
  match Campaign.Request.of_json spec with
  | exception Campaign.Spec_error msg -> server_error conn ?cid msg
  | exception Xmtsim.Config.Bad_config msg -> server_error conn ?cid msg
  | req ->
    let specs = Array.of_list req.Campaign.Request.specs in
    let n = Array.length specs in
    let verdict =
      Mutex.protect t.lock (fun () ->
          match cid with
          | Some c
            when List.exists (fun c' -> c'.c_cid = c) t.campaigns
                 || journal_exists t c ->
            `Exists c
          | _ ->
            let in_use = t.pending_total + t.running_total in
            if in_use + n > t.cfg.max_pending_jobs then
              `Overload ("server", in_use, t.cfg.max_pending_jobs)
            else if conn.k_inflight + n > t.cfg.max_client_jobs then
              `Overload ("client", conn.k_inflight, t.cfg.max_client_jobs)
            else begin
              let cid =
                match cid with Some c -> c | None -> generate_cid t
              in
              conn.k_inflight <- conn.k_inflight + n;
              `Admit cid
            end)
    in
    (match verdict with
    | `Exists c ->
      server_error conn ~cid:c
        (Printf.sprintf
           "campaign %S already exists; use campaign.attach to re-stream it" c)
    | `Overload (scope, pending, limit) ->
      emit_conn conn ~typ:"server.overload"
        ((match cid with Some c -> [ ("cid", J.Str c) ] | None -> [])
        @ [
            ("scope", J.Str scope);
            ("pending", J.Int pending);
            ("limit", J.Int limit);
            ("requested", J.Int n);
          ])
    | `Admit cid ->
      let journal =
        Option.map
          (fun dir -> Journal.start ~dir ~cid ~spec)
          t.cfg.state_dir
      in
      let c =
        {
          c_cid = cid;
          c_specs = specs;
          c_retries = req.Campaign.Request.retries;
          c_elock = Mutex.create ();
          c_journal = journal;
          c_pending = Queue.create ();
          c_skip_start = Hashtbl.create 7;
          c_history = [];
          c_sub = Some conn.k_sub;
          c_owner = Some conn;
          c_completed = 0;
          c_ok = 0;
          c_failed = 0;
          c_complete = false;
        }
      in
      Array.iteri (fun i _ -> Queue.push i c.c_pending) specs;
      (* register before the accepted frame goes out, so a client that
         acts on it (wait_idle, campaign_state, attach) always finds
         the campaign and its pending count.  c_elock is held across
         both: the scheduler may already be picking the jobs up, but
         exec_one needs c_elock to emit, so the accepted frame still
         precedes the first job record on the wire *)
      Mutex.protect c.c_elock (fun () ->
          Mutex.protect t.lock (fun () ->
              t.campaigns <- t.campaigns @ [ c ];
              t.pending_total <- t.pending_total + n;
              Condition.broadcast t.work);
          emit_conn conn ~typ:"campaign.accepted"
            [ ("cid", J.Str cid); ("jobs", J.Int n) ]))

let record_key r =
  match
    ( Option.bind (J.member "job" r) J.to_int,
      Option.bind (J.member "jseq" r) J.to_int )
  with
  | Some j, Some s -> Some (j, s)
  | _ -> None

let replay_record sub cid r =
  match r with
  | J.Obj kvs ->
    let typ =
      match List.assoc_opt "type" kvs with Some (J.Str s) -> s | _ -> "record"
    in
    let fields = List.filter (fun (k, _) -> k <> "type") kvs in
    if !(sub.sub_alive) then
      Obs.Stream.emit sub.sub_stream ~typ (fields @ [ ("cid", J.Str cid) ])
  | _ -> ()

let handle_attach t conn ~cid ~after =
  match find_campaign t cid with
  | None -> server_error conn ~cid (Printf.sprintf "unknown campaign %S" cid)
  | Some c ->
    Mutex.protect c.c_elock (fun () ->
        emit_conn conn ~typ:"campaign.attached"
          (( "cid", J.Str cid )
          :: progress_fields c
          @ [ ("complete", J.Bool c.c_complete) ]);
        let history = List.rev c.c_history in
        (* re-stream strictly after the acknowledged record: everything
           past its last occurrence in journal order, or the whole
           history when the client has seen nothing *)
        let to_replay =
          match after with
          | None -> history
          | Some ack ->
            (* suffix after the LAST occurrence of the acked record;
               an ack the server never sent replays everything *)
            let rec go best = function
              | [] -> best
              | r :: rest ->
                go (if record_key r = Some ack then rest else best) rest
            in
            go history history
        in
        List.iter (replay_record conn.k_sub cid) to_replay;
        if c.c_complete then
          emit_conn conn ~typ:"campaign.done"
            (done_fields c @ [ ("cid", J.Str cid) ])
        else c.c_sub <- Some conn.k_sub)

let handle_line t conn line =
  match Protocol.frame_of_line line with
  | Error msg -> server_error conn msg
  | Ok (Protocol.Submit { cid; spec }) -> handle_submit t conn ~cid ~spec
  | Ok (Protocol.Attach { cid; after }) -> handle_attach t conn ~cid ~after
  | Ok Protocol.Ping -> emit_conn conn ~typ:"pong" []
  | Ok Protocol.Bye -> raise Exit

(* ------------------------------------------------------------------ *)
(* Connections *)

let drop_conn t conn =
  conn.k_sub.sub_alive := false;
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun k -> k != conn) t.conns);
  (* campaigns it owned keep running to completion (results stay
     journaled); its subscription just goes quiet *)
  try Unix.close conn.k_fd with Unix.Unix_error _ -> ()

let reader t conn () =
  let ic = Unix.in_channel_of_descr conn.k_fd in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then handle_line t conn line
     done
   with End_of_file | Exit | Sys_error _ -> ());
  drop_conn t conn

let handle_conn t fd =
  let alive = ref true in
  let stream = Obs.Stream.create (socket_sink fd alive) in
  let conn =
    { k_fd = fd; k_sub = { sub_stream = stream; sub_alive = alive }; k_inflight = 0 }
  in
  emit_conn conn ~typ:"server.hello"
    [
      ("schema", J.Str Protocol.schema);
      ("version", J.Int Protocol.version);
      ("pool_workers", J.Int (Campaign.Pool.width t.pool));
      ("max_pending_jobs", J.Int t.cfg.max_pending_jobs);
      ("max_client_jobs", J.Int t.cfg.max_client_jobs);
    ];
  let th = Thread.create (reader t conn) () in
  Mutex.protect t.lock (fun () ->
      t.conns <- conn :: t.conns;
      t.threads <- th :: t.threads)

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Mutex.protect t.lock (fun () -> t.stopping) then
        (* the wake-up nudge from [stop], not a real client *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        handle_conn t fd;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Mutex.protect t.lock (fun () -> t.stopping) then () else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Recovery *)

let campaign_of_recovered (r : Journal.recovered) ~journal =
  match Campaign.Request.of_json r.Journal.rc_spec with
  | exception _ -> None
  | req ->
    let specs = Array.of_list req.Campaign.Request.specs in
    let n = Array.length specs in
    let started = Hashtbl.create 16 and donej = Hashtbl.create 16 in
    let ok = ref 0 and failed = ref 0 in
    List.iter
      (fun rec_j ->
        match record_key rec_j with
        | Some (j, 0) when j >= 0 && j < n -> Hashtbl.replace started j ()
        | Some (j, _) when j >= 0 && j < n ->
          Hashtbl.replace donej j ();
          (match J.member "status" rec_j with
          | Some (J.Str "ok") -> incr ok
          | _ -> incr failed)
        | _ -> ())
      r.Journal.rc_records;
    let complete = r.Journal.rc_complete || Hashtbl.length donej = n in
    let c =
      {
        c_cid = r.Journal.rc_cid;
        c_specs = specs;
        c_retries = req.Campaign.Request.retries;
        c_elock = Mutex.create ();
        c_journal = (if complete then None else journal ());
        c_pending = Queue.create ();
        c_skip_start = Hashtbl.create 7;
        c_history = List.rev r.Journal.rc_records;
        c_sub = None;
        c_owner = None;
        c_completed = Hashtbl.length donej;
        c_ok = !ok;
        c_failed = !failed;
        c_complete = complete;
      }
    in
    if not complete then
      Array.iteri
        (fun i _ ->
          if not (Hashtbl.mem donej i) then begin
            Queue.push i c.c_pending;
            (* a start that survived the crash must not be re-emitted *)
            if Hashtbl.mem started i then Hashtbl.replace c.c_skip_start i ()
          end)
        specs;
    Some c

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create cfg =
  (* a dead client mid-write must be a sink error, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    cfg.state_dir;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec listen_fd;
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let pool = Campaign.Pool.create ?workers:cfg.workers () in
  let t =
    {
      cfg;
      pool;
      artifacts = Core.Toolchain.Artifacts.create ();
      listen_fd;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      campaigns = [];
      conns = [];
      rr = 0;
      pending_total = 0;
      running_total = 0;
      next_cid = 1;
      stopping = false;
      threads = [];
    }
  in
  (* resume: every journal becomes an in-memory campaign (attachable),
     and incomplete ones re-queue exactly their unfinished jobs *)
  Option.iter
    (fun dir ->
      List.iter
        (fun r ->
          let journal () =
            Some (Journal.reopen ~dir ~cid:r.Journal.rc_cid)
          in
          match campaign_of_recovered r ~journal with
          | None -> ()
          | Some c ->
            (* finished while crashing before the close mark: seal it *)
            if c.c_complete && Option.is_none c.c_journal
               && not r.Journal.rc_complete
            then begin
              let jn = Journal.reopen ~dir ~cid:c.c_cid in
              Journal.close_mark jn ~ok:c.c_ok ~failed:c.c_failed;
              Journal.close jn
            end;
            t.campaigns <- t.campaigns @ [ c ];
            t.pending_total <- t.pending_total + Queue.length c.c_pending)
        (Journal.recover ~dir))
    cfg.state_dir;
  (* register each thread before the next can add readers of its own,
     so [stop] never misses one *)
  let sched = Thread.create (scheduler t) () in
  Mutex.protect t.lock (fun () -> t.threads <- sched :: t.threads);
  let acc = Thread.create (accept_loop t) () in
  Mutex.protect t.lock (fun () ->
      t.threads <- acc :: t.threads;
      Condition.broadcast t.work);
  t

let stop t =
  let already =
    Mutex.protect t.lock (fun () ->
        let was = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.work;
        was)
  in
  if not already then begin
    (* closing the listening fd does not unblock a thread parked in
       accept(2); shut it down and nudge it with a throwaway connection *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    (* unblock every reader *)
    let conns = Mutex.protect t.lock (fun () -> t.conns) in
    List.iter
      (fun k ->
        try Unix.shutdown k.k_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let threads = Mutex.protect t.lock (fun () -> t.threads) in
    List.iter Thread.join threads;
    Campaign.Pool.shutdown t.pool;
    (* journals of unfinished campaigns stay open-ended on disk — that
       is the resume contract — but release the file handles *)
    List.iter
      (fun c -> Option.iter Journal.close c.c_journal)
      (Mutex.protect t.lock (fun () -> t.campaigns))
  end

let join t =
  let threads = Mutex.protect t.lock (fun () -> t.threads) in
  List.iter Thread.join threads

let wait_idle t =
  Mutex.protect t.lock (fun () ->
      while t.pending_total > 0 || t.running_total > 0 do
        Condition.wait t.idle t.lock
      done)

let campaign_state t cid =
  Mutex.protect t.lock (fun () ->
      List.find_opt (fun c -> c.c_cid = cid) t.campaigns
      |> Option.map (fun c ->
             (c.c_completed, Array.length c.c_specs, c.c_complete)))
