(** The [xmtserved] campaign server.

    One process holds one warm {!Campaign.Pool} and one shared
    {!Core.Toolchain.Artifacts} cache and serves [xmt.campaign.v1]
    requests over a Unix-domain socket ({!Protocol}).  Design points:

    - {b streaming, not buffering}: per-job results leave as
      [xmt.events.v1] records the moment the job finishes — no
      whole-report materialization, whatever the campaign size;
    - {b fair multiplexing}: a scheduler thread deals pool batches
      round-robin across every campaign with queued jobs, one job per
      campaign per sweep, so a small sweep is never starved behind a
      thousand-job submission that arrived first;
    - {b bounded admission}: a server-wide pending-job cap and a
      per-connection in-flight quota; a submission that would exceed
      either is rejected immediately with a typed [server.overload]
      frame — admission never blocks;
    - {b checkpoint/resume}: with a [state_dir], every per-job record is
      journaled ({!Journal}) before it is sent, so a killed server
      restarts, re-queues exactly the unfinished jobs of every
      incomplete campaign, and [campaign.attach] re-streams from the
      last [(job, jseq)] the client acknowledges — each [(job, jseq)]
      is produced exactly once across the server's lifetimes.

    Compute runs on pool domains; IO (accept loop, per-connection
    readers, the scheduler) runs on threads.  All client-visible
    records are built by {!Campaign.Wire}, so a served stream
    canonicalizes byte-identical to a direct {!Campaign.run}. *)

type config = {
  socket_path : string;
  state_dir : string option;  (** journals live here; [None] = no resume *)
  workers : int option;  (** pool width; [None] = recommended count *)
  max_pending_jobs : int;  (** server-wide queued+running admission cap *)
  max_client_jobs : int;  (** per-connection in-flight quota *)
}

val default_config : socket_path:string -> config

type t

(** Bind and listen on [socket_path] (replacing a stale socket file),
    recover journaled campaigns from [state_dir] and re-queue their
    unfinished jobs, and start the accept and scheduler threads.
    Returns once the server is accepting connections. *)
val create : config -> t

(** Graceful shutdown: stop accepting, close client connections, let
    the in-flight pool batch finish (its records are journaled), shut
    the pool down.  Queued-but-undispatched jobs stay journaled for the
    next lifetime.  Idempotent. *)
val stop : t -> unit

(** Block until {!stop} has been called and the server threads exited. *)
val join : t -> unit

(** Test hook: block until no job is queued or running. *)
val wait_idle : t -> unit

(** Test hook: [(completed, total, complete)] for a campaign id. *)
val campaign_state : t -> string -> (int * int * bool) option
