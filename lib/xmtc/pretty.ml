open Types

let rec ty_decl ty name =
  (* C-style declaration of [name] with type [ty] *)
  match ty with
  | Tarr (elem, n) -> ty_decl elem (Printf.sprintf "%s[%d]" name n)
  | Tptr inner -> ty_decl inner ("*" ^ name)
  | Tint -> "int " ^ name
  | Tfloat -> "float " ^ name
  | Tvoid -> "void " ^ name
  | Tstruct sname -> "struct " ^ sname ^ " " ^ name

let builtin_name = function
  | Tast.Bprint_int -> "print_int"
  | Tast.Bprint_float -> "print_float"
  | Tast.Bprint_char -> "print_char"
  | Tast.Bprint_string -> "print_string"
  | Tast.Bsqrtf -> "sqrtf"
  | Tast.Bfabsf -> "fabsf"
  | Tast.Babs -> "abs"
  | Tast.Bmalloc -> "malloc"
  | Tast.Bro -> "__ro_addr"

(* The typechecker pre-scales pointer arithmetic to bytes
   (p + i becomes p + i*sizeof).  Printing must undo the scaling, or the
   reparsed source would scale twice. *)
let unscale (off : Tast.expr) ~elem =
  match off.enode with
  | Tast.Ebinop (Mul, idx, { enode = Tast.Eint s; _ }) when s = sizeof elem ->
    Some idx
  | Tast.Eint k when k mod max 1 (sizeof elem) = 0 ->
    Some { off with enode = Tast.Eint (k / max 1 (sizeof elem)) }
  | _ -> None

(* Recognize the desugared struct member access produced by the
   typechecker: cast(fieldptr)(base + off) with base : struct pointer. *)
let member_of (e : Tast.expr) =
  match e.Tast.enode with
  | Tast.Ecast
      ( Tptr _,
        {
          enode =
            Tast.Ebinop
              (Add, ({ ety = Tptr (Tstruct sname); _ } as base),
                { enode = Tast.Eint off; _ });
          _;
        } ) -> (
    match field_at_offset sname off with
    | Some (fname, _) -> Some (base, fname)
    | None -> None)
  | _ -> None

let rec expr_to_string (e : Tast.expr) =
  let s = expr_to_string in
  match e.enode with
  | Tast.Ederef inner when member_of inner <> None ->
    let base, fname = Option.get (member_of inner) in
    (match base.Tast.enode with
    | Tast.Eaddr ({ enode = Tast.Evar v; _ }) -> v.Tast.vname ^ "." ^ fname
    | _ -> Printf.sprintf "%s->%s" (s base) fname)
  | _ when member_of e <> None ->
    (* array-typed field: the address itself, decayed *)
    let base, fname = Option.get (member_of e) in
    (match base.Tast.enode with
    | Tast.Eaddr ({ enode = Tast.Evar v; _ }) -> v.Tast.vname ^ "." ^ fname
    | _ -> Printf.sprintf "%s->%s" (s base) fname)
  | Tast.Ederef
      { enode = Tast.Ebinop (Add, ({ ety = Tptr elem; _ } as p), off); _ }
    when unscale off ~elem <> None ->
    Printf.sprintf "%s[%s]" (s p) (s (Option.get (unscale off ~elem)))
  | Tast.Ebinop
      (((Add | Sub) as op), ({ ety = Tptr elem; _ } as p), off)
    when unscale off ~elem <> None ->
    Printf.sprintf "(%s %s %s)" (s p) (string_of_binop op)
      (s (Option.get (unscale off ~elem)))
  | Tast.Eopassign
      (((Add | Sub) as op), ({ ety = Tptr elem; _ } as p), off)
    when unscale off ~elem <> None ->
    Printf.sprintf "%s %s= %s" (s p) (string_of_binop op)
      (s (Option.get (unscale off ~elem)))
  | Tast.Ebinop
      (Div, { enode = Tast.Ebinop (Sub, ({ ety = Tptr e1; _ } as p), q); _ },
        { enode = Tast.Eint k; _ })
    when k = sizeof e1 ->
    Printf.sprintf "(%s - %s)" (s p) (s q)
  | Tast.Eint v -> string_of_int v
  | Tast.Eflt f ->
    let str = Printf.sprintf "%g" f in
    if String.contains str '.' || String.contains str 'e' then str else str ^ ".0"
  | Tast.Evar v -> v.vname
  | Tast.Etid -> "$"
  | Tast.Eunop (op, a) -> Printf.sprintf "(%s%s)" (string_of_unop op) (s a)
  | Tast.Elognot a -> Printf.sprintf "(!%s)" (s a)
  | Tast.Ebinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (s a) (string_of_binop op) (s b)
  | Tast.Eland (a, b) -> Printf.sprintf "(%s && %s)" (s a) (s b)
  | Tast.Elor (a, b) -> Printf.sprintf "(%s || %s)" (s a) (s b)
  | Tast.Eassign (a, b) -> Printf.sprintf "%s = %s" (s a) (s b)
  | Tast.Eopassign (op, a, b) ->
    Printf.sprintf "%s %s= %s" (s a) (string_of_binop op) (s b)
  | Tast.Eincdec (Incr, true, a) -> Printf.sprintf "++%s" (s a)
  | Tast.Eincdec (Decr, true, a) -> Printf.sprintf "--%s" (s a)
  | Tast.Eincdec (Incr, false, a) -> Printf.sprintf "%s++" (s a)
  | Tast.Eincdec (Decr, false, a) -> Printf.sprintf "%s--" (s a)
  | Tast.Ecall (Tast.Cbuiltin Tast.Bro, [ addr ]) ->
    (* print back in source form: ro(lvalue) *)
    let lv =
      match addr.enode with
      | Tast.Eaddr inner -> s inner
      | _ -> "*" ^ s addr
    in
    Printf.sprintf "ro(%s)" lv
  | Tast.Ecall (Tast.Cuser f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map s args))
  | Tast.Ecall (Tast.Cbuiltin b, args) ->
    Printf.sprintf "%s(%s)" (builtin_name b) (String.concat ", " (List.map s args))
  | Tast.Ederef a -> Printf.sprintf "(*%s)" (s a)
  | Tast.Eaddr a -> Printf.sprintf "(&%s)" (s a)
  | Tast.Ecast (t, a) -> Printf.sprintf "((%s)%s)" (string_of_ty t) (s a)
  | Tast.Econd (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (s c) (s a) (s b)

let rec stmt_lines indent (st : Tast.stmt) : string list =
  let pad = String.make indent ' ' in
  match st with
  | Tast.Sloc _ -> []  (* debug markers are invisible in printed source *)
  | Tast.Sskip -> [ pad ^ ";" ]
  | Tast.Sexpr e -> [ pad ^ expr_to_string e ^ ";" ]
  | Tast.Sdecl (v, init) ->
    let head = ty_decl v.vty v.vname in
    let head = if v.vvolatile then "volatile " ^ head else head in
    (match init with
    | None -> [ pad ^ head ^ ";" ]
    | Some e -> [ pad ^ head ^ " = " ^ expr_to_string e ^ ";" ])
  | Tast.Sblock ss ->
    (* the typechecker wraps declaration lists in scopeless blocks; print
       nested blocks flattened so the output's scoping matches the typed
       AST's (variables are already uniquely resolved) *)
    let rec flatten = function
      | Tast.Sblock inner -> List.concat_map flatten inner
      | s -> [ s ]
    in
    [ pad ^ "{" ]
    @ List.concat_map (stmt_lines (indent + 2)) (List.concat_map flatten ss)
    @ [ pad ^ "}" ]
  | Tast.Sif (c, a, Tast.Sskip) ->
    (pad ^ "if (" ^ expr_to_string c ^ ")") :: stmt_lines (indent + 2) a
  | Tast.Sif (c, a, b) ->
    ((pad ^ "if (" ^ expr_to_string c ^ ")") :: stmt_lines (indent + 2) a)
    @ [ pad ^ "else" ]
    @ stmt_lines (indent + 2) b
  | Tast.Swhile (c, b) ->
    (pad ^ "while (" ^ expr_to_string c ^ ")") :: stmt_lines (indent + 2) b
  | Tast.Sdowhile (b, c) ->
    [ pad ^ "do" ]
    @ stmt_lines (indent + 2) b
    @ [ pad ^ "while (" ^ expr_to_string c ^ ");" ]
  | Tast.Sfor (init, cond, post, body) ->
    let inline s =
      match stmt_lines 0 s with
      | [ line ] -> (try String.sub line 0 (String.length line - 1) with _ -> line)
      | _ -> "..."
    in
    let c = match cond with Some c -> expr_to_string c | None -> "" in
    (pad
    ^ Printf.sprintf "for (%s; %s; %s)" (inline init) c
        (match post with Tast.Sskip -> "" | s -> inline s))
    :: stmt_lines (indent + 2) body
  | Tast.Sreturn None -> [ pad ^ "return;" ]
  | Tast.Sreturn (Some e) -> [ pad ^ "return " ^ expr_to_string e ^ ";" ]
  | Tast.Sbreak -> [ pad ^ "break;" ]
  | Tast.Scontinue -> [ pad ^ "continue;" ]
  | Tast.Sspawn sp ->
    (pad
    ^ Printf.sprintf "spawn(%s, %s)" (expr_to_string sp.sp_lo)
        (expr_to_string sp.sp_hi))
    :: stmt_lines (indent + 2) sp.sp_body
  | Tast.Sps (v, b) -> [ pad ^ Printf.sprintf "ps(%s, %s);" v.vname b.vname ]
  | Tast.Spsm (v, addr) ->
    (* print back in source form: psm(v, *addr) *)
    let base =
      match addr.enode with
      | Tast.Eaddr inner -> expr_to_string inner
      | _ -> "*" ^ expr_to_string addr
    in
    [ pad ^ Printf.sprintf "psm(%s, %s);" v.vname base ]

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)

let func_to_string (f : Tast.func) =
  let params =
    match f.fparams with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun v -> ty_decl v.Tast.vty v.Tast.vname) ps)
  in
  let header = Printf.sprintf "%s(%s)" f.fname params in
  let header = ty_decl f.fret header in
  (* reuse declaration syntax for the return type *)
  header ^ "\n" ^ stmt_to_string f.fbody

let program_to_string (p : Tast.program) =
  let structs =
    List.map
      (fun name ->
        let fields = Option.value ~default:[] (Types.struct_fields name) in
        Printf.sprintf "struct %s {\n%s\n};" name
          (String.concat "\n"
             (List.map (fun (f, t) -> "  " ^ ty_decl t f ^ ";") fields)))
      (Types.defined_structs ())
  in
  let globals =
    List.map
      (fun ((v : Tast.var), init) ->
        let head = ty_decl v.vty v.vname in
        let head = if v.vvolatile then "volatile " ^ head else head in
        match init with
        | Tast.Czeros -> head ^ ";"
        | Tast.Cints [ x ] -> Printf.sprintf "%s = %d;" head x
        | Tast.Cints xs ->
          Printf.sprintf "%s = {%s};" head
            (String.concat ", " (List.map string_of_int xs))
        | Tast.Cflts [ x ] -> Printf.sprintf "%s = %g;" head x
        | Tast.Cflts xs ->
          Printf.sprintf "%s = {%s};" head
            (String.concat ", " (List.map (Printf.sprintf "%g") xs)))
      p.globals
  in
  String.concat "\n"
    (structs @ globals @ [ "" ]
    @ List.map (fun f -> func_to_string f ^ "\n") p.funcs)
