(** Typed abstract syntax.

    Produced by {!Typecheck} from the parser's {!Ast}; consumed by the
    compiler's source-to-source passes (outlining §IV-B, clustering §IV-C)
    and by lowering.  Names are resolved to {!var} records with unique ids,
    implicit conversions are explicit [Ecast]s, array indexing is desugared
    to scaled pointer arithmetic, and string/char literals are materialized.
    {!Pretty} prints this representation back as XMTC source, which is what
    makes the pre-pass transformations source-to-source, as in CIL. *)

open Types

type vkind =
  | Kglobal
  | Klocal  (** serial-function local, or spawn-block thread-local *)
  | Kparam

type var = {
  vid : int;
  vname : string;
  vty : ty;
  vkind : vkind;
  vvolatile : bool;
  mutable vaddr_taken : bool;
  mutable vps_base : bool;  (** global used as a [ps] base: lives in a $g register *)
  mutable vthread_local : bool;  (** declared inside a spawn block *)
}

type builtin =
  | Bprint_int
  | Bprint_float
  | Bprint_char
  | Bprint_string
  | Bsqrtf
  | Bfabsf
  | Babs
  | Bmalloc  (** bump allocation from the serial heap (§IV-D) *)
  | Bro
      (** [ro(lvalue)]: load through the cluster read-only cache (§IV-C:
          "programmers can explicitly load data into the read-only caches").
          The programmer asserts the location is not written during the
          spawn; stale values are their own fault, as on the hardware. *)

type callee = Cuser of string | Cbuiltin of builtin

type expr = { ety : ty; enode : enode }

and enode =
  | Eint of int
  | Eflt of float
  | Evar of var
  | Etid
  | Eunop of unop * expr
  | Elognot of expr
  | Ebinop of binop * expr * expr
      (** both operands already converted to [ety] (or int for comparisons);
          pointer arithmetic is pre-scaled to bytes *)
  | Eland of expr * expr
  | Elor of expr * expr
  | Eassign of expr * expr  (** lhs is an lvalue *)
  | Eopassign of binop * expr * expr  (** lvalue address evaluated once *)
  | Eincdec of incdec * bool * expr  (** op, is_prefix, lvalue *)
  | Ecall of callee * expr list
  | Ederef of expr
  | Eaddr of expr
  | Ecast of ty * expr
  | Econd of expr * expr * expr

type stmt =
  | Sskip
  | Sexpr of expr
  | Sdecl of var * expr option
  | Sblock of stmt list
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of stmt * expr option * stmt * stmt  (** init, cond, post, body *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sspawn of spawn
  | Sps of var * var  (** ps(local, base): local gets old base, base += local *)
  | Spsm of var * expr  (** psm(local, addr): same, on a memory word *)
  | Sloc of int
      (** debug marker: subsequent statements come from this source line.
          Inserted by the typechecker, transparent to every transformation,
          and invisible to the pretty-printer. *)

and spawn = {
  sp_lo : expr;
  sp_hi : expr;
  mutable sp_body : stmt;
  sp_id : int;  (** unique spawn-site id, names the outlined function *)
  mutable sp_nested : bool;  (** lexically inside another spawn: serialized *)
  sp_pos : int;  (** source line of the [spawn] keyword (diagnostics) *)
}

type const_init = Cints of int list | Cflts of float list | Czeros

type func = {
  fname : string;
  fret : ty;
  fparams : var list;
  mutable fbody : stmt;
  mutable fis_outlined_spawn : bool;
      (** true for the [__outl_sp_k] functions created by the pre-pass *)
}

type program = {
  globals : (var * const_init) list;
  mutable funcs : func list;
}

(** Iterate over every spawn statement in a statement tree. *)
let rec iter_spawns f = function
  | Sspawn sp ->
    f sp;
    iter_spawns f sp.sp_body
  | Sblock ss -> List.iter (iter_spawns f) ss
  | Sif (_, a, b) ->
    iter_spawns f a;
    iter_spawns f b
  | Swhile (_, b) | Sdowhile (b, _) -> iter_spawns f b
  | Sfor (i, _, p, b) ->
    iter_spawns f i;
    iter_spawns f p;
    iter_spawns f b
  | Sskip | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Sps _ | Spsm _
  | Sloc _ ->
    ()

(** Map over statements bottom-up. *)
let rec map_stmt f s =
  let s' =
    match s with
    | Sblock ss -> Sblock (List.map (map_stmt f) ss)
    | Sif (c, a, b) -> Sif (c, map_stmt f a, map_stmt f b)
    | Swhile (c, b) -> Swhile (c, map_stmt f b)
    | Sdowhile (b, c) -> Sdowhile (map_stmt f b, c)
    | Sfor (i, c, p, b) -> Sfor (map_stmt f i, c, map_stmt f p, map_stmt f b)
    | Sspawn sp ->
      sp.sp_body <- map_stmt f sp.sp_body;
      Sspawn sp
    | Sskip | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Sps _ | Spsm _
    | Sloc _ ->
      s
  in
  f s'

(** Fold over all expressions in a statement tree (pre-order). *)
let rec fold_exprs f acc s =
  let fe = f in
  match s with
  | Sexpr e -> fe acc e
  | Sdecl (_, Some e) -> fe acc e
  | Sdecl (_, None) | Sskip | Sbreak | Scontinue -> acc
  | Sblock ss -> List.fold_left (fold_exprs fe) acc ss
  | Sif (c, a, b) -> fold_exprs fe (fold_exprs fe (fe acc c) a) b
  | Swhile (c, b) -> fold_exprs fe (fe acc c) b
  | Sdowhile (b, c) -> fe (fold_exprs fe acc b) c
  | Sfor (i, c, p, b) ->
    let acc = fold_exprs fe acc i in
    let acc = match c with Some c -> fe acc c | None -> acc in
    fold_exprs fe (fold_exprs fe acc p) b
  | Sreturn (Some e) -> fe acc e
  | Sreturn None -> acc
  | Sspawn sp -> fold_exprs fe (fe (fe acc sp.sp_lo) sp.sp_hi) sp.sp_body
  | Sps _ | Sloc _ -> acc
  | Spsm (_, e) -> fe acc e

(** Fold [f] over every variable occurrence in an expression. *)
let rec fold_expr_vars f acc (e : expr) =
  match e.enode with
  | Evar v -> f acc v
  | Eint _ | Eflt _ | Etid -> acc
  | Eunop (_, a) | Elognot a | Ederef a | Eaddr a | Ecast (_, a) ->
    fold_expr_vars f acc a
  | Ebinop (_, a, b)
  | Eland (a, b)
  | Elor (a, b)
  | Eassign (a, b)
  | Eopassign (_, a, b) ->
    fold_expr_vars f (fold_expr_vars f acc a) b
  | Eincdec (_, _, a) -> fold_expr_vars f acc a
  | Ecall (_, args) -> List.fold_left (fold_expr_vars f) acc args
  | Econd (a, b, c) ->
    fold_expr_vars f (fold_expr_vars f (fold_expr_vars f acc a) b) c
