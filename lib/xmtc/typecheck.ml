open Types

exception Error of { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type fsig = { fs_ret : ty; fs_params : ty list }

type env = {
  global_vars : (string, Tast.var) Hashtbl.t;
  fsigs : (string, fsig) Hashtbl.t;
  mutable scopes : (string, Tast.var) Hashtbl.t list;
  mutable next_vid : int;
  mutable next_spawn : int;
  mutable in_spawn : int;  (* spawn nesting depth *)
  mutable loop_depth : int;  (* loops entered inside current spawn/function *)
  mutable cur_ret : ty;
  mutable extra_globals : (Tast.var * Tast.const_init) list;  (* string literals *)
  mutable string_count : int;
}

let new_env () =
  {
    global_vars = Hashtbl.create 64;
    fsigs = Hashtbl.create 64;
    scopes = [];
    next_vid = 0;
    next_spawn = 0;
    in_spawn = 0;
    loop_depth = 0;
    cur_ret = Tvoid;
    extra_globals = [];
    string_count = 0;
  }

let fresh_var env ~name ~ty ~kind ~volatile =
  let v =
    {
      Tast.vid = env.next_vid;
      vname = name;
      vty = ty;
      vkind = kind;
      vvolatile = volatile;
      vaddr_taken = false;
      vps_base = false;
      vthread_local = false;
    }
  in
  env.next_vid <- env.next_vid + 1;
  v

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare_local env line (v : Tast.var) =
  match env.scopes with
  | [] -> err line "internal: no scope"
  | scope :: _ ->
    if Hashtbl.mem scope v.vname then err line "redeclaration of %s" v.vname;
    Hashtbl.replace scope v.vname v

let lookup env line name =
  let rec go = function
    | [] -> (
      match Hashtbl.find_opt env.global_vars name with
      | Some v -> v
      | None -> err line "undeclared identifier %s" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some v -> v | None -> go rest)
  in
  go env.scopes

(* ------------------------------------------------------------------ *)
(* Expression helpers *)

let is_int_ty = function Tint -> true | Tvoid | Tfloat | Tptr _ | Tarr _ | Tstruct _ -> false
let is_ptr_ty = function Tptr _ -> true | Tvoid | Tint | Tfloat | Tarr _ | Tstruct _ -> false

let mk ty node = { Tast.ety = ty; enode = node }

(* Implicit conversion of [e] to type [want]; errors when impossible. *)
let convert line (e : Tast.expr) want =
  let have = e.ety in
  if ty_equal have want then e
  else
    match (have, want) with
    | Tint, Tfloat -> mk Tfloat (Tast.Ecast (Tfloat, e))
    | Tfloat, Tint -> mk Tint (Tast.Ecast (Tint, e))
    | Tptr _, Tptr _ -> mk want (Tast.Ecast (want, e))
    | Tint, Tptr _ ->
      (* allow literal 0 as null pointer *)
      (match e.enode with
      | Tast.Eint 0 -> mk want (Tast.Ecast (want, e))
      | _ -> err line "cannot convert int to %s implicitly" (string_of_ty want))
    | _ ->
      err line "cannot convert %s to %s" (string_of_ty have) (string_of_ty want)

(* Unify numeric operand types for an arithmetic binop. *)
let unify_arith line a b =
  match (a.Tast.ety, b.Tast.ety) with
  | Tint, Tint -> (a, b, Tint)
  | Tfloat, Tfloat -> (a, b, Tfloat)
  | Tint, Tfloat -> (convert line a Tfloat, b, Tfloat)
  | Tfloat, Tint -> (a, convert line b Tfloat, Tfloat)
  | ta, tb ->
    err line "invalid operand types %s and %s" (string_of_ty ta) (string_of_ty tb)

let scale_index line (idx : Tast.expr) elem_ty =
  let idx = convert line idx Tint in
  let size = sizeof elem_ty in
  if size = 0 then err line "cannot index elements of incomplete type";
  mk Tint (Tast.Ebinop (Mul, idx, mk Tint (Tast.Eint size)))

(* A value use of a type requires complete struct layouts (pointer
   components may reference structs defined later or never). *)
let rec check_complete line ty =
  match ty with
  | Tstruct s -> (
    match struct_fields s with
    | None -> err line "struct %s is not defined" s
    | Some fields -> List.iter (fun (_, t) -> check_complete line t) fields)
  | Tarr (t, _) -> check_complete line t
  | Tvoid | Tint | Tfloat | Tptr _ -> ()

let rec is_lvalue (e : Tast.expr) =
  match e.enode with
  | Tast.Evar v -> (match v.Tast.vty with Tarr _ -> false | _ -> true)
  | Tast.Ederef _ -> true
  | Tast.Ecast (_, inner) -> is_lvalue inner
  | _ -> false

(* ------------------------------------------------------------------ *)

let builtin_of_name = function
  | "print_int" -> Some Tast.Bprint_int
  | "print_float" -> Some Tast.Bprint_float
  | "print_char" -> Some Tast.Bprint_char
  | "print_string" -> Some Tast.Bprint_string
  | "sqrtf" -> Some Tast.Bsqrtf
  | "fabsf" -> Some Tast.Bfabsf
  | "abs" -> Some Tast.Babs
  | "malloc" -> Some Tast.Bmalloc
  | "ro" -> Some Tast.Bro
  | _ -> None

let intern_string env s =
  let name = Printf.sprintf "__str_%d" env.string_count in
  env.string_count <- env.string_count + 1;
  let codes = List.init (String.length s + 1) (fun i ->
      if i < String.length s then Char.code s.[i] else 0)
  in
  let v =
    fresh_var env ~name
      ~ty:(Tarr (Tint, String.length s + 1))
      ~kind:Tast.Kglobal ~volatile:false
  in
  Hashtbl.replace env.global_vars name v;
  env.extra_globals <- (v, Tast.Cints codes) :: env.extra_globals;
  v

let rec check_expr env (e : Ast.expr) : Tast.expr =
  let line = e.pos in
  match e.node with
  | Ast.Eint v -> mk Tint (Tast.Eint v)
  | Ast.Eflt f -> mk Tfloat (Tast.Eflt f)
  | Ast.Echar c -> mk Tint (Tast.Eint (Char.code c))
  | Ast.Estr s ->
    let v = intern_string env s in
    mk (Tptr Tint) (Tast.Evar v)
  | Ast.Etid ->
    if env.in_spawn = 0 then err line "$ may only appear inside a spawn block";
    mk Tint Tast.Etid
  | Ast.Eid name ->
    let v = lookup env line name in
    if v.Tast.vps_base && env.in_spawn > 0 then
      err line
        "ps base %s lives in a global register; virtual threads may only \
         access it through ps" name;
    mk (decay v.Tast.vty) (Tast.Evar v)
  | Ast.Eunop (op, a) -> (
    let a = check_expr env a in
    match (op, a.ety) with
    | Neg, Tint -> mk Tint (Tast.Eunop (Neg, a))
    | Neg, Tfloat -> mk Tfloat (Tast.Eunop (Neg, a))
    | Bnot, Tint -> mk Tint (Tast.Eunop (Bnot, a))
    | _, t -> err line "invalid operand of type %s" (string_of_ty t))
  | Ast.Elognot a ->
    let a = check_expr env a in
    if not (is_int_ty a.ety || is_ptr_ty a.ety) then
      err line "! requires an int or pointer operand";
    mk Tint (Tast.Elognot a)
  | Ast.Ebinop (op, a, b) -> check_binop env line op a b
  | Ast.Eland (a, b) ->
    let a = check_expr env a and b = check_expr env b in
    if not ((is_int_ty a.ety || is_ptr_ty a.ety) && (is_int_ty b.ety || is_ptr_ty b.ety))
    then err line "&& requires int or pointer operands";
    mk Tint (Tast.Eland (a, b))
  | Ast.Elor (a, b) ->
    let a = check_expr env a and b = check_expr env b in
    if not ((is_int_ty a.ety || is_ptr_ty a.ety) && (is_int_ty b.ety || is_ptr_ty b.ety))
    then err line "|| requires int or pointer operands";
    mk Tint (Tast.Elor (a, b))
  | Ast.Eassign (lhs, rhs) ->
    let lhs = check_expr env lhs in
    if not (is_lvalue lhs) then err line "assignment target is not an lvalue";
    (match lhs.ety with
    | Tstruct _ -> err line "whole-struct assignment is not supported"
    | _ -> ());
    let rhs = convert line (check_expr env rhs) lhs.ety in
    mk lhs.ety (Tast.Eassign (lhs, rhs))
  | Ast.Eopassign (op, lhs, rhs) ->
    let lhs = check_expr env lhs in
    if not (is_lvalue lhs) then err line "assignment target is not an lvalue";
    let rhs = check_expr env rhs in
    (match lhs.ety with
    | Tint | Tfloat ->
      let rhs = convert line rhs lhs.ety in
      (match (op, lhs.ety) with
      | (Mod | Band | Bor | Bxor | Shl | Shr), Tfloat ->
        err line "invalid float operation %s" (string_of_binop op)
      | _ -> mk lhs.ety (Tast.Eopassign (op, lhs, rhs)))
    | Tptr elem when op = Add || op = Sub ->
      let scaled = scale_index line rhs elem in
      mk lhs.ety (Tast.Eopassign (op, lhs, scaled))
    | t -> err line "invalid op-assign on type %s" (string_of_ty t))
  | Ast.Eincdec (op, pre, lv) ->
    let lv = check_expr env lv in
    if not (is_lvalue lv) then err line "++/-- target is not an lvalue";
    (match lv.ety with
    | Tint -> mk Tint (Tast.Eincdec (op, pre, lv))
    | Tptr _ -> mk lv.ety (Tast.Eincdec (op, pre, lv))
    | t -> err line "++/-- on invalid type %s" (string_of_ty t))
  | Ast.Ecall (name, args) -> check_call env line name args
  | Ast.Eindex (arr, idx) ->
    let arr = check_expr env arr in
    let idx = check_expr env idx in
    (match arr.ety with
    | Tptr elem -> (
      let off = scale_index line idx elem in
      let addr = mk (Tptr elem) (Tast.Ebinop (Add, arr, off)) in
      match elem with
      | Tarr (inner, _) ->
        (* multi-dimensional indexing: A[i] of an int[n][m] is the address
           of row i, which decays to an inner pointer *)
        mk (Tptr inner) (Tast.Ecast (Tptr inner, addr))
      | Tstruct _ ->
        (* struct element: an lvalue consumed by member access or & *)
        mk elem (Tast.Ederef addr)
      | _ when is_scalar elem -> mk elem (Tast.Ederef addr)
      | _ -> err line "indexing non-scalar elements unsupported")
    | t -> err line "cannot index a value of type %s" (string_of_ty t))
  | Ast.Emember (base, field, arrow) -> (
    let base = check_expr env base in
    let sname, base_addr =
      if arrow then
        match base.ety with
        | Tptr (Tstruct s) -> (s, base)
        | t -> err line "-> on non-struct-pointer %s" (string_of_ty t)
      else
        match (base.ety, base.Tast.enode) with
        | Tstruct s, Tast.Evar v ->
          if v.Tast.vthread_local then
            err line "struct %s cannot live in thread-local registers" v.Tast.vname;
          v.Tast.vaddr_taken <- true;
          (s, mk (Tptr (Tstruct s)) (Tast.Eaddr base))
        | Tstruct s, Tast.Ederef p -> (s, p)
        | t, _ -> err line ". on non-struct %s" (string_of_ty t)
    in
    match field_offset sname field with
    | None -> err line "struct %s has no field %s" sname field
    | Some (off, fty) -> (
      let addr =
        mk (Tptr (decay fty))
          (Tast.Ecast
             ( Tptr (decay fty),
               mk (Tptr (Tstruct sname))
                 (Tast.Ebinop (Add, base_addr, mk Tint (Tast.Eint off))) ))
      in
      match fty with
      | Tarr (elem, _) -> { addr with Tast.ety = Tptr elem } (* decays *)
      | Tstruct _ -> mk fty (Tast.Ederef addr) (* nested struct lvalue *)
      | _ -> mk fty (Tast.Ederef addr)))
  | Ast.Ederef p ->
    let p = check_expr env p in
    (match p.ety with
    | Tptr elem ->
      if not (is_scalar elem) then err line "dereferencing non-scalar unsupported";
      mk elem (Tast.Ederef p)
    | t -> err line "cannot dereference %s" (string_of_ty t))
  | Ast.Eaddr lv -> (
    let lv' = check_expr env lv in
    match lv'.enode with
    | Tast.Evar v ->
      (match v.Tast.vty with
      | Tarr (elem, _) -> mk (Tptr elem) (Tast.Evar v) (* arrays decay *)
      | Tstruct s ->
        if v.Tast.vthread_local then
          err line "cannot take the address of thread-local %s" v.Tast.vname;
        v.Tast.vaddr_taken <- true;
        mk (Tptr (Tstruct s)) (Tast.Eaddr lv')
      | _ ->
        if v.Tast.vthread_local then
          err line "cannot take the address of thread-local %s (no parallel stack)"
            v.Tast.vname;
        v.Tast.vaddr_taken <- true;
        mk (Tptr v.Tast.vty) (Tast.Eaddr lv'))
    | Tast.Ederef inner -> inner (* &*p and &a[i] *)
    | _ -> err line "cannot take the address of this expression")
  | Ast.Ecast (ty, a) -> (
    let a = check_expr env a in
    match (a.ety, ty) with
    | t1, t2 when ty_equal t1 t2 -> a
    | Tint, Tfloat | Tfloat, Tint | Tptr _, Tptr _ | Tint, Tptr _ | Tptr _, Tint ->
      mk ty (Tast.Ecast (ty, a))
    | t1, t2 -> err line "invalid cast from %s to %s" (string_of_ty t1) (string_of_ty t2))
  | Ast.Econd (c, a, b) ->
    let c = check_expr env c in
    if not (is_int_ty c.ety || is_ptr_ty c.ety) then
      err line "?: condition must be int or pointer";
    let a = check_expr env a and b = check_expr env b in
    if ty_equal a.ety b.ety then mk a.ety (Tast.Econd (c, a, b))
    else
      let a, b, t = unify_arith line a b in
      mk t (Tast.Econd (c, a, b))

and check_binop env line op a b =
  let a = check_expr env a and b = check_expr env b in
  match op with
  | Add | Sub -> (
    match (a.ety, b.ety) with
    | Tptr elem, (Tint | Tfloat) ->
      let off = scale_index line b elem in
      mk a.ety (Tast.Ebinop (op, a, off))
    | (Tint | Tfloat), Tptr elem when op = Add ->
      let off = scale_index line a elem in
      mk b.ety (Tast.Ebinop (op, b, off))
    | Tptr e1, Tptr e2 when op = Sub && ty_equal e1 e2 ->
      let diff = mk Tint (Tast.Ebinop (Sub, a, b)) in
      mk Tint (Tast.Ebinop (Div, diff, mk Tint (Tast.Eint (sizeof e1))))
    | _ ->
      let a, b, t = unify_arith line a b in
      mk t (Tast.Ebinop (op, a, b)))
  | Mul | Div ->
    let a, b, t = unify_arith line a b in
    mk t (Tast.Ebinop (op, a, b))
  | Mod | Band | Bor | Bxor | Shl | Shr ->
    if not (is_int_ty a.ety && is_int_ty b.ety) then
      err line "%s requires int operands" (string_of_binop op);
    mk Tint (Tast.Ebinop (op, a, b))
  | Lt | Le | Gt | Ge | Eq | Ne -> (
    match (a.ety, b.ety) with
    | Tptr _, Tptr _ -> mk Tint (Tast.Ebinop (op, a, b))
    | Tptr _, Tint -> mk Tint (Tast.Ebinop (op, a, convert line b a.ety))
    | Tint, Tptr _ -> mk Tint (Tast.Ebinop (op, convert line a b.ety, b))
    | _ ->
      let a, b, _ = unify_arith line a b in
      mk Tint (Tast.Ebinop (op, a, b)))

and check_call env line name args =
  match builtin_of_name name with
  | Some b -> (
    let args = List.map (check_expr env) args in
    let one () =
      match args with [ a ] -> a | _ -> err line "%s expects one argument" name
    in
    match b with
    | Tast.Bprint_int | Tast.Babs ->
      let a = convert line (one ()) Tint in
      mk (if b = Tast.Babs then Tint else Tvoid) (Tast.Ecall (Tast.Cbuiltin b, [ a ]))
    | Tast.Bprint_char ->
      let a = convert line (one ()) Tint in
      mk Tvoid (Tast.Ecall (Tast.Cbuiltin b, [ a ]))
    | Tast.Bprint_float | Tast.Bsqrtf | Tast.Bfabsf ->
      let a = convert line (one ()) Tfloat in
      mk
        (if b = Tast.Bprint_float then Tvoid else Tfloat)
        (Tast.Ecall (Tast.Cbuiltin b, [ a ]))
    | Tast.Bprint_string -> (
      let a = one () in
      match a.ety with
      | Tptr Tint -> mk Tvoid (Tast.Ecall (Tast.Cbuiltin b, [ a ]))
      | t -> err line "print_string expects an int* argument, got %s" (string_of_ty t))
    | Tast.Bmalloc ->
      if env.in_spawn > 0 then
        err line "malloc is not available in parallel code (§IV-D)";
      let a = convert line (one ()) Tint in
      mk (Tptr Tint) (Tast.Ecall (Tast.Cbuiltin b, [ a ]))
    | Tast.Bro ->
      if env.in_spawn = 0 then
        err line "ro() loads through a cluster read-only cache: parallel only";
      let lv = one () in
      if not (is_lvalue lv) then err line "ro() expects a memory lvalue";
      if not (is_int_ty lv.ety) then err line "ro() expects an int location";
      let addr =
        match lv.Tast.enode with
        | Tast.Ederef p -> p
        | Tast.Evar v' ->
          if v'.Tast.vthread_local then
            err line "ro() argument must be in memory, not a register";
          v'.Tast.vaddr_taken <- true;
          mk (Tptr lv.ety) (Tast.Eaddr lv)
        | _ -> err line "unsupported ro() argument"
      in
      mk Tint (Tast.Ecall (Tast.Cbuiltin b, [ addr ])))
  | None -> (
    if env.in_spawn > 0 then
      err line
        "function call to %s inside a spawn block: the parallel cactus stack \
         is not supported in this release (§IV-E)"
        name;
    match Hashtbl.find_opt env.fsigs name with
    | None -> err line "call to undefined function %s" name
    | Some fs ->
      if List.length args <> List.length fs.fs_params then
        err line "%s expects %d arguments, got %d" name (List.length fs.fs_params)
          (List.length args);
      let args =
        List.map2 (fun a t -> convert line (check_expr env a) t) args fs.fs_params
      in
      mk fs.fs_ret (Tast.Ecall (Tast.Cuser name, args)))

(* ------------------------------------------------------------------ *)
(* Statements *)

let check_cond env (e : Ast.expr) =
  let line = e.pos in
  let c = check_expr env e in
  if not (is_int_ty c.ety || is_ptr_ty c.ety) then
    err line "condition must have int or pointer type";
  c

let rec check_stmt env (s : Ast.stmt) : Tast.stmt =
  let line = s.spos in
  match s.snode with
  | Ast.Sskip -> Tast.Sskip
  | Ast.Sexpr e -> Tast.Sexpr (check_expr env e)
  | Ast.Sdecl ds ->
    let one (d : Ast.decl) =
      (match d.d_ty with
      | Tvoid -> err line "cannot declare a void variable"
      | (Tarr _ | Tstruct _) when env.in_spawn > 0 ->
        err line
          "%s declared in a spawn block: virtual threads have no stack (§IV-D)"
          d.d_name
      | t -> check_complete line t);
      let v =
        fresh_var env ~name:d.d_name ~ty:d.d_ty ~kind:Tast.Klocal
          ~volatile:d.d_volatile
      in
      if env.in_spawn > 0 then v.Tast.vthread_local <- true;
      let init =
        match d.d_init with
        | None -> None
        | Some (Ast.Iexpr e) -> Some (convert line (check_expr env e) (decay d.d_ty))
        | Some (Ast.Ilist _) ->
          err line "brace initializers are only supported on globals"
      in
      declare_local env line v;
      Tast.Sdecl (v, init)
    in
    Tast.Sblock (List.map one ds)
  | Ast.Sblock ss ->
    push_scope env;
    (* Interleave debug line markers: each statement of a block is preceded
       by its source line, which the compiler threads through to the image
       debug map.  Markers are emitted unconditionally so that debug output
       can never change code generation. *)
    let out =
      List.concat_map
        (fun (s : Ast.stmt) -> [ Tast.Sloc s.spos; check_stmt env s ])
        ss
    in
    pop_scope env;
    Tast.Sblock out
  | Ast.Sif (c, a, b) ->
    let c = check_cond env c in
    let a = check_stmt env a in
    let b = match b with Some b -> check_stmt env b | None -> Tast.Sskip in
    Tast.Sif (c, a, b)
  | Ast.Swhile (c, body) ->
    let c = check_cond env c in
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    Tast.Swhile (c, body)
  | Ast.Sdowhile (body, c) ->
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    let c = check_cond env c in
    Tast.Sdowhile (body, c)
  | Ast.Sfor (init, cond, post, body) ->
    push_scope env;
    let init = match init with Some i -> check_stmt env i | None -> Tast.Sskip in
    let cond = Option.map (check_cond env) cond in
    let post =
      match post with Some p -> Tast.Sexpr (check_expr env p) | None -> Tast.Sskip
    in
    env.loop_depth <- env.loop_depth + 1;
    let body = check_stmt env body in
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env;
    Tast.Sfor (init, cond, post, body)
  | Ast.Sreturn e ->
    if env.in_spawn > 0 then
      err line "return inside a spawn block would exit the parallel section";
    (match (e, env.cur_ret) with
    | None, Tvoid -> Tast.Sreturn None
    | None, t -> err line "missing return value of type %s" (string_of_ty t)
    | Some _, Tvoid -> err line "void function returns a value"
    | Some e, t -> Tast.Sreturn (Some (convert line (check_expr env e) t)))
  | Ast.Sbreak ->
    if env.loop_depth = 0 then err line "break outside of a loop";
    Tast.Sbreak
  | Ast.Scontinue ->
    if env.loop_depth = 0 then err line "continue outside of a loop";
    Tast.Scontinue
  | Ast.Sspawn (lo, hi, body) ->
    let lo = convert line (check_expr env lo) Tint in
    let hi = convert line (check_expr env hi) Tint in
    let nested = env.in_spawn > 0 in
    let saved_loops = env.loop_depth in
    env.in_spawn <- env.in_spawn + 1;
    env.loop_depth <- 0;
    push_scope env;
    let body = check_stmt env body in
    pop_scope env;
    env.loop_depth <- saved_loops;
    env.in_spawn <- env.in_spawn - 1;
    let sp_id = env.next_spawn in
    env.next_spawn <- env.next_spawn + 1;
    Tast.Sspawn
      { sp_lo = lo; sp_hi = hi; sp_body = body; sp_id; sp_nested = nested;
        sp_pos = line }
  | Ast.Sps (vname, bname) ->
    if env.in_spawn = 0 then err line "ps may only appear inside a spawn block";
    let v = lookup env line vname in
    let b = lookup env line bname in
    if v.Tast.vkind = Tast.Kglobal then
      err line "ps increment %s must be a (thread-)local variable" vname;
    if not (is_int_ty v.Tast.vty) then err line "ps increment must be int";
    if b.Tast.vkind <> Tast.Kglobal || not (is_int_ty b.Tast.vty) then
      err line "ps base %s must be a global int variable" bname;
    b.Tast.vps_base <- true;
    Tast.Sps (v, b)
  | Ast.Spsm (vname, lval) ->
    if env.in_spawn = 0 then err line "psm may only appear inside a spawn block";
    let v = lookup env line vname in
    if v.Tast.vkind = Tast.Kglobal then
      err line "psm increment %s must be a (thread-)local variable" vname;
    if not (is_int_ty v.Tast.vty) then err line "psm increment must be int";
    let lv = check_expr env lval in
    if not (is_lvalue lv) then err line "psm base must be an lvalue";
    if not (is_int_ty lv.ety) then err line "psm base must have int type";
    let addr =
      match lv.Tast.enode with
      | Tast.Ederef p -> p
      | Tast.Evar v' ->
        if v'.Tast.vthread_local then
          err line "psm base must be in memory, not a thread-local register";
        v'.Tast.vaddr_taken <- true;
        mk (Tptr lv.ety) (Tast.Eaddr lv)
      | _ -> err line "unsupported psm base"
    in
    Tast.Spsm (v, addr)

(* ------------------------------------------------------------------ *)
(* Constant evaluation for global initializers. *)

let rec const_eval_scalar line (e : Ast.expr) =
  match e.node with
  | Ast.Eint v -> `Int v
  | Ast.Eflt f -> `Flt f
  | Ast.Echar c -> `Int (Char.code c)
  | Ast.Eunop (Neg, a) -> (
    match const_eval_scalar line a with `Int v -> `Int (-v) | `Flt f -> `Flt (-.f))
  | Ast.Eunop (Bnot, a) -> (
    match const_eval_scalar line a with
    | `Int v -> `Int (lnot v)
    | `Flt _ -> err line "invalid float operand of ~")
  | Ast.Ebinop (op, a, b) -> (
    match (const_eval_scalar line a, const_eval_scalar line b) with
    | `Int x, `Int y ->
      let r =
        match op with
        | Add -> x + y | Sub -> x - y | Mul -> x * y
        | Div -> if y = 0 then err line "division by zero in initializer" else x / y
        | Mod -> if y = 0 then err line "division by zero in initializer" else x mod y
        | Band -> x land y | Bor -> x lor y | Bxor -> x lxor y
        | Shl -> x lsl y | Shr -> x asr y
        | Lt -> Bool.to_int (x < y) | Le -> Bool.to_int (x <= y)
        | Gt -> Bool.to_int (x > y) | Ge -> Bool.to_int (x >= y)
        | Eq -> Bool.to_int (x = y) | Ne -> Bool.to_int (x <> y)
      in
      `Int r
    | `Flt x, `Flt y -> (
      match op with
      | Add -> `Flt (x +. y) | Sub -> `Flt (x -. y)
      | Mul -> `Flt (x *. y) | Div -> `Flt (x /. y)
      | _ -> err line "invalid constant float operation")
    | _ -> err line "mixed int/float constant expression")
  | Ast.Ecast (Tint, a) -> (
    match const_eval_scalar line a with
    | `Int v -> `Int v
    | `Flt f -> `Int (int_of_float f))
  | Ast.Ecast (Tfloat, a) -> (
    match const_eval_scalar line a with
    | `Flt f -> `Flt f
    | `Int v -> `Flt (float_of_int v))
  | _ -> err line "global initializer must be a constant expression"

let global_init line (d : Ast.decl) =
  match (d.d_ty, d.d_init) with
  | (Tstruct _ | Tarr (Tstruct _, _)), Some _ ->
    err line "struct globals cannot have initializers"
  | _, None -> Tast.Czeros
  | (Tint | Tptr _), Some (Ast.Iexpr e) -> (
    match const_eval_scalar line e with
    | `Int v -> Tast.Cints [ v ]
    | `Flt _ -> err line "float initializer for int global")
  | Tfloat, Some (Ast.Iexpr e) -> (
    match const_eval_scalar line e with
    | `Flt f -> Tast.Cflts [ f ]
    | `Int v -> Tast.Cflts [ float_of_int v ])
  | Tarr (Tint, n), Some (Ast.Ilist es) ->
    if List.length es > n then err line "too many initializers for %s" d.d_name;
    Tast.Cints
      (List.map
         (fun e ->
           match const_eval_scalar line e with
           | `Int v -> v
           | `Flt _ -> err line "float in int array initializer")
         es)
  | Tarr (Tfloat, n), Some (Ast.Ilist es) ->
    if List.length es > n then err line "too many initializers for %s" d.d_name;
    Tast.Cflts
      (List.map
         (fun e ->
           match const_eval_scalar line e with
           | `Flt f -> f
           | `Int v -> float_of_int v)
         es)
  | _, Some _ -> err line "unsupported global initializer for %s" d.d_name

(* ------------------------------------------------------------------ *)

let check (prog : Ast.program) : Tast.program =
  let env = new_env () in
  reset_structs ();
  (* Struct definitions, in order: value fields must already be complete
     (so struct values cannot be recursive), pointer fields may reference
     any struct name. *)
  List.iter
    (function
      | Ast.Tstructdef sd ->
        if struct_fields sd.sd_name <> None then
          err sd.sd_pos "redefinition of struct %s" sd.sd_name;
        List.iter
          (fun (ty, fname) ->
            match ty with
            | Tvoid -> err sd.sd_pos "field %s has void type" fname
            | Tptr _ -> ()
            | t -> check_complete sd.sd_pos t)
          sd.sd_fields;
        let names = List.map snd sd.sd_fields in
        if List.length (List.sort_uniq compare names) <> List.length names then
          err sd.sd_pos "duplicate field name in struct %s" sd.sd_name;
        define_struct sd.sd_name (List.map (fun (t, n) -> (n, t)) sd.sd_fields)
      | Ast.Tfunc _ | Ast.Tglobal _ -> ())
    prog;
  (* Pre-scan function signatures (allows forward calls). *)
  List.iter
    (function
      | Ast.Tfunc f ->
        if Hashtbl.mem env.fsigs f.f_name then
          err f.f_pos "redefinition of function %s" f.f_name;
        if builtin_of_name f.f_name <> None then
          err f.f_pos "%s is a builtin function" f.f_name;
        List.iter
          (fun (t, _) ->
            match t with
            | Tstruct _ ->
              err f.f_pos "pass struct parameters by pointer (%s)" f.f_name
            | _ -> check_complete f.f_pos t)
          f.f_params;
        (match f.f_ret with
        | Tstruct _ -> err f.f_pos "return structs by pointer (%s)" f.f_name
        | _ -> ());
        Hashtbl.replace env.fsigs f.f_name
          { fs_ret = f.f_ret; fs_params = List.map fst f.f_params }
      | Ast.Tglobal _ | Ast.Tstructdef _ -> ())
    prog;
  let globals = ref [] in
  let funcs = ref [] in
  List.iter
    (function
      | Ast.Tstructdef _ -> ()
      | Ast.Tglobal d ->
        if Hashtbl.mem env.global_vars d.d_name then
          err d.d_pos "redefinition of global %s" d.d_name;
        if Hashtbl.mem env.fsigs d.d_name then
          err d.d_pos "%s is already a function name" d.d_name;
        (match d.d_ty with
        | Tvoid -> err d.d_pos "cannot declare a void variable"
        | t -> check_complete d.d_pos t);
        let v =
          fresh_var env ~name:d.d_name ~ty:d.d_ty ~kind:Tast.Kglobal
            ~volatile:d.d_volatile
        in
        Hashtbl.replace env.global_vars d.d_name v;
        globals := (v, global_init d.d_pos d) :: !globals
      | Ast.Tfunc f ->
        env.cur_ret <- f.f_ret;
        env.in_spawn <- 0;
        env.loop_depth <- 0;
        push_scope env;
        let params =
          List.map
            (fun (ty, name) ->
              let v = fresh_var env ~name ~ty ~kind:Tast.Kparam ~volatile:false in
              declare_local env f.f_pos v;
              v)
            f.f_params
        in
        let body = check_stmt env f.f_body in
        pop_scope env;
        funcs :=
          {
            Tast.fname = f.f_name;
            fret = f.f_ret;
            fparams = params;
            fbody = body;
            fis_outlined_spawn = false;
          }
          :: !funcs)
    prog;
  (* XMTC hardware limit: ps bases live in the global register file. *)
  let ps_bases =
    List.filter (fun (v, _) -> v.Tast.vps_base) !globals |> List.length
  in
  if ps_bases > 8 then
    err 0 "too many distinct ps base variables (%d); the hardware has 8 global \
           registers" ps_bases;
  if not (Hashtbl.mem env.fsigs "main") then err 0 "program has no main function";
  {
    Tast.globals = List.rev !globals @ List.rev env.extra_globals;
    funcs = List.rev !funcs;
  }

let program_of_source src = check (Parser.parse src)
