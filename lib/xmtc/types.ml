(** Types and operators shared by the untyped and typed ASTs of XMTC
    (paper §II-A): a modest SPMD extension of C. *)

type ty =
  | Tvoid
  | Tint
  | Tfloat
  | Tptr of ty
  | Tarr of ty * int  (** element type, length *)
  | Tstruct of string  (** by name; layout in {!struct_defs} *)

(** Struct layouts, populated by the typechecker for the program being
    compiled.  Each domain compiles one program at a time, so the tables
    live in domain-local storage: parallel campaign workers (one compile
    per domain) never observe each other's structs, and {!reset_structs}
    clears stale entries at the start of every compile. *)
type struct_tables = {
  defs : (string, (string * ty) list) Hashtbl.t;
  mutable order : string list;
}

let struct_tables_key =
  Domain.DLS.new_key (fun () -> { defs = Hashtbl.create 16; order = [] })

let struct_tables () = Domain.DLS.get struct_tables_key

let reset_structs () =
  let t = struct_tables () in
  Hashtbl.reset t.defs;
  t.order <- []

let define_struct name fields =
  let t = struct_tables () in
  if not (Hashtbl.mem t.defs name) then t.order <- t.order @ [ name ];
  Hashtbl.replace t.defs name fields

let struct_fields name = Hashtbl.find_opt (struct_tables ()).defs name
let defined_structs () = (struct_tables ()).order

type unop = Neg | Bnot  (** -e, ~e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type incdec = Incr | Decr

let rec string_of_ty = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tptr t -> string_of_ty t ^ " *"
  | Tarr (t, n) -> Printf.sprintf "%s[%d]" (string_of_ty t) n
  | Tstruct s -> "struct " ^ s

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let string_of_unop = function Neg -> "-" | Bnot -> "~"

(** Type equality is structural. *)
let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint | Tfloat, Tfloat -> true
  | Tptr x, Tptr y -> ty_equal x y
  | Tarr (x, n), Tarr (y, m) -> n = m && ty_equal x y
  | Tstruct x, Tstruct y -> x = y
  | (Tvoid | Tint | Tfloat | Tptr _ | Tarr _ | Tstruct _), _ -> false

(** Array-of-T decays to pointer-to-T in expression contexts. *)
let decay = function Tarr (t, _) -> Tptr t | other -> other

let is_scalar = function
  | Tint | Tfloat | Tptr _ -> true
  | Tvoid | Tarr _ | Tstruct _ -> false

(** Size of a type in bytes (words are 4 bytes; cells are word-sized). *)
let rec sizeof = function
  | Tvoid -> 0
  | Tint | Tfloat | Tptr _ -> 4
  | Tarr (t, n) -> n * sizeof t
  | Tstruct s -> (
    match struct_fields s with
    | None -> 0 (* incomplete type; the typechecker rejects value uses *)
    | Some fields -> List.fold_left (fun acc (_, t) -> acc + sizeof t) 0 fields)

(** Byte offset and type of field [f] in [struct s]. *)
let field_offset s f =
  match struct_fields s with
  | None -> None
  | Some fields ->
    let rec go off = function
      | [] -> None
      | (name, t) :: rest ->
        if name = f then Some (off, t) else go (off + sizeof t) rest
    in
    go 0 fields

(** Field name at byte offset [off] in [struct s] (pretty-printing). *)
let field_at_offset s off =
  match struct_fields s with
  | None -> None
  | Some fields ->
    let rec go o = function
      | [] -> None
      | (name, t) :: rest -> if o = off then Some (name, t) else go (o + sizeof t) rest
    in
    go 0 fields
