(** Simulated XMT configuration (paper §III: "XMTSim is highly configurable
    and provides control over many parameters including number of TCUs, the
    cache size, DRAM bandwidth and relative clock frequencies").

    All latencies are in cycles of the respective component's clock domain;
    all clock domains default to period 1 (same frequency). *)

type prefetch_policy = Fifo | Lru

type t = {
  name : string;
  (* topology *)
  num_clusters : int;
  tcus_per_cluster : int;
  (* per-cluster shared functional units *)
  mdus_per_cluster : int;
  fpus_per_cluster : int;
  mul_latency : int;
  div_latency : int;
  fpu_latency : int;
  sqrt_latency : int;
  (* TCU prefetch buffers *)
  prefetch_buffer_size : int;  (** 0 disables prefetch buffering *)
  prefetch_policy : prefetch_policy;
  (* cluster read-only cache *)
  rocache_lines : int;
  rocache_hit_latency : int;
  (* interconnection network *)
  icn_latency : int;  (** one-way traversal latency (hops) *)
  icn_jitter : int;  (** max extra cycles of seeded arbitration jitter *)
  cluster_inject_width : int;  (** packets a cluster may inject per cycle *)
  cluster_return_width : int;  (** replies a cluster may accept per cycle *)
  (* shared L1 cache modules *)
  num_cache_modules : int;
  cache_lines : int;  (** lines per module *)
  cache_assoc : int;
  cache_line_words : int;
  cache_hit_latency : int;
  cache_ports : int;  (** requests a module accepts per cycle *)
  (* DRAM *)
  dram_latency : int;
  dram_bandwidth : int;  (** requests serviced per cycle, all channels *)
  (* master TCU *)
  master_cache_lines : int;
  master_cache_hit_latency : int;
  (* prefix-sum unit *)
  ps_latency : int;
  (* spawn/join *)
  spawn_overhead : int;  (** broadcast + TCU activation cycles *)
  join_overhead : int;
  (* clock domain periods (DVFS initial values) *)
  cluster_period : int;
  icn_period : int;
  cache_period : int;
  dram_period : int;
  (* misc *)
  seed : int;  (** arbitration jitter seed *)
  max_cycles : int;  (** simulation safety stop *)
}

let num_tcus c = c.num_clusters * c.tcus_per_cluster

(** The 64-TCU FPGA prototype configuration (paper §II, [13,14]): 8
    clusters of 8 TCUs, 8 shared cache modules. *)
let fpga64 =
  {
    name = "fpga64";
    num_clusters = 8;
    tcus_per_cluster = 8;
    mdus_per_cluster = 1;
    fpus_per_cluster = 1;
    mul_latency = 4;
    div_latency = 12;
    fpu_latency = 6;
    sqrt_latency = 16;
    prefetch_buffer_size = 4;
    prefetch_policy = Fifo;
    rocache_lines = 64;
    rocache_hit_latency = 1;
    icn_latency = 6;
    icn_jitter = 2;
    cluster_inject_width = 1;
    cluster_return_width = 2;
    num_cache_modules = 8;
    cache_lines = 256;
    cache_assoc = 2;
    cache_line_words = 4;
    cache_hit_latency = 2;
    cache_ports = 1;
    dram_latency = 60;
    dram_bandwidth = 1;
    master_cache_lines = 256;
    master_cache_hit_latency = 1;
    ps_latency = 4;
    spawn_overhead = 12;
    join_overhead = 6;
    cluster_period = 1;
    icn_period = 1;
    cache_period = 1;
    dram_period = 1;
    seed = 42;
    max_cycles = 1_000_000_000;
  }

(** The envisioned 1024-TCU XMT chip (paper §III-A): 64 clusters of 16
    TCUs; shared L1 ~30 cycles away (§IV-C). *)
let chip1024 =
  {
    fpga64 with
    name = "chip1024";
    num_clusters = 64;
    tcus_per_cluster = 16;
    mdus_per_cluster = 2;
    fpus_per_cluster = 2;
    num_cache_modules = 64;
    cache_lines = 512;
    icn_latency = 12;
    dram_latency = 100;
    dram_bandwidth = 4;
    ps_latency = 6;
    spawn_overhead = 20;
    join_overhead = 10;
  }

(** Tiny configuration for unit tests: 2 clusters of 2 TCUs. *)
let tiny =
  {
    fpga64 with
    name = "tiny";
    num_clusters = 2;
    tcus_per_cluster = 2;
    num_cache_modules = 2;
    icn_latency = 3;
    dram_latency = 20;
    spawn_overhead = 4;
    join_overhead = 2;
  }

let presets = [ ("fpga64", fpga64); ("chip1024", chip1024); ("tiny", tiny) ]

exception Bad_config of string

(** Parse "key=value" overrides, e.g. ["tcus_per_cluster=4"]. *)
let with_override (c : t) key value =
  let iv () =
    match int_of_string_opt value with
    | Some v -> v
    | None -> raise (Bad_config (Printf.sprintf "%s: expected integer, got %S" key value))
  in
  match key with
  | "num_clusters" -> { c with num_clusters = iv () }
  | "tcus_per_cluster" -> { c with tcus_per_cluster = iv () }
  | "mdus_per_cluster" -> { c with mdus_per_cluster = iv () }
  | "fpus_per_cluster" -> { c with fpus_per_cluster = iv () }
  | "mul_latency" -> { c with mul_latency = iv () }
  | "div_latency" -> { c with div_latency = iv () }
  | "fpu_latency" -> { c with fpu_latency = iv () }
  | "sqrt_latency" -> { c with sqrt_latency = iv () }
  | "prefetch_buffer_size" -> { c with prefetch_buffer_size = iv () }
  | "prefetch_policy" -> (
    match value with
    | "fifo" -> { c with prefetch_policy = Fifo }
    | "lru" -> { c with prefetch_policy = Lru }
    | _ -> raise (Bad_config "prefetch_policy: fifo|lru"))
  | "rocache_lines" -> { c with rocache_lines = iv () }
  | "icn_latency" -> { c with icn_latency = iv () }
  | "icn_jitter" -> { c with icn_jitter = iv () }
  | "cluster_inject_width" -> { c with cluster_inject_width = iv () }
  | "cluster_return_width" -> { c with cluster_return_width = iv () }
  | "num_cache_modules" -> { c with num_cache_modules = iv () }
  | "cache_lines" -> { c with cache_lines = iv () }
  | "cache_assoc" -> { c with cache_assoc = iv () }
  | "cache_line_words" -> { c with cache_line_words = iv () }
  | "cache_hit_latency" -> { c with cache_hit_latency = iv () }
  | "cache_ports" -> { c with cache_ports = iv () }
  | "dram_latency" -> { c with dram_latency = iv () }
  | "dram_bandwidth" -> { c with dram_bandwidth = iv () }
  | "master_cache_lines" -> { c with master_cache_lines = iv () }
  | "ps_latency" -> { c with ps_latency = iv () }
  | "spawn_overhead" -> { c with spawn_overhead = iv () }
  | "join_overhead" -> { c with join_overhead = iv () }
  | "cluster_period" -> { c with cluster_period = iv () }
  | "icn_period" -> { c with icn_period = iv () }
  | "cache_period" -> { c with cache_period = iv () }
  | "dram_period" -> { c with dram_period = iv () }
  | "seed" -> { c with seed = iv () }
  | "max_cycles" -> { c with max_cycles = iv () }
  | other -> raise (Bad_config ("unknown configuration key " ^ other))

(* ------------------------------------------------------------------ *)
(* Validation: reject machines the simulator cannot build or that would
   crash mid-run (zero-sized topologies, zero-way caches, stopped
   clocks).  Sweep generators go through {!make} / [with_*] /
   {!with_overrides}, so a bad point fails at construction, before any
   campaign job is spawned. *)

let validate c =
  let problems = ref [] in
  let need ok msg = if not ok then problems := msg :: !problems in
  let pos name v = need (v >= 1) (name ^ " must be >= 1") in
  let nonneg name v = need (v >= 0) (name ^ " must be >= 0") in
  pos "num_clusters" c.num_clusters;
  pos "tcus_per_cluster" c.tcus_per_cluster;
  pos "mdus_per_cluster" c.mdus_per_cluster;
  pos "fpus_per_cluster" c.fpus_per_cluster;
  pos "mul_latency" c.mul_latency;
  pos "div_latency" c.div_latency;
  pos "fpu_latency" c.fpu_latency;
  pos "sqrt_latency" c.sqrt_latency;
  nonneg "prefetch_buffer_size" c.prefetch_buffer_size;
  pos "rocache_lines" c.rocache_lines;
  pos "rocache_hit_latency" c.rocache_hit_latency;
  pos "icn_latency" c.icn_latency;
  nonneg "icn_jitter" c.icn_jitter;
  pos "cluster_inject_width" c.cluster_inject_width;
  pos "cluster_return_width" c.cluster_return_width;
  pos "num_cache_modules" c.num_cache_modules;
  pos "cache_lines" c.cache_lines;
  pos "cache_assoc" c.cache_assoc;
  pos "cache_line_words" c.cache_line_words;
  pos "cache_hit_latency" c.cache_hit_latency;
  pos "cache_ports" c.cache_ports;
  pos "dram_latency" c.dram_latency;
  pos "dram_bandwidth" c.dram_bandwidth;
  pos "master_cache_lines" c.master_cache_lines;
  pos "master_cache_hit_latency" c.master_cache_hit_latency;
  pos "ps_latency" c.ps_latency;
  nonneg "spawn_overhead" c.spawn_overhead;
  nonneg "join_overhead" c.join_overhead;
  pos "cluster_period" c.cluster_period;
  pos "icn_period" c.icn_period;
  pos "cache_period" c.cache_period;
  pos "dram_period" c.dram_period;
  pos "max_cycles" c.max_cycles;
  match List.rev !problems with
  | [] -> Ok c
  | ps -> Error (Printf.sprintf "config %s: %s" c.name (String.concat "; " ps))

let checked c =
  match validate c with Ok c -> c | Error msg -> raise (Bad_config msg)

(** Validated smart constructor: every field defaults from [base]
    (default {!fpga64}); the result is checked before it escapes. *)
let make ?(base = fpga64) ?name ?num_clusters ?tcus_per_cluster
    ?mdus_per_cluster ?fpus_per_cluster ?prefetch_buffer_size ?prefetch_policy
    ?rocache_lines ?icn_latency ?icn_jitter ?num_cache_modules ?cache_lines
    ?cache_assoc ?cache_line_words ?cache_hit_latency ?cache_ports
    ?dram_latency ?dram_bandwidth ?master_cache_lines ?ps_latency
    ?spawn_overhead ?join_overhead ?cluster_period ?icn_period ?cache_period
    ?dram_period ?seed ?max_cycles () =
  let v default = Option.value ~default in
  checked
    {
      base with
      name = v base.name name;
      num_clusters = v base.num_clusters num_clusters;
      tcus_per_cluster = v base.tcus_per_cluster tcus_per_cluster;
      mdus_per_cluster = v base.mdus_per_cluster mdus_per_cluster;
      fpus_per_cluster = v base.fpus_per_cluster fpus_per_cluster;
      prefetch_buffer_size = v base.prefetch_buffer_size prefetch_buffer_size;
      prefetch_policy = v base.prefetch_policy prefetch_policy;
      rocache_lines = v base.rocache_lines rocache_lines;
      icn_latency = v base.icn_latency icn_latency;
      icn_jitter = v base.icn_jitter icn_jitter;
      num_cache_modules = v base.num_cache_modules num_cache_modules;
      cache_lines = v base.cache_lines cache_lines;
      cache_assoc = v base.cache_assoc cache_assoc;
      cache_line_words = v base.cache_line_words cache_line_words;
      cache_hit_latency = v base.cache_hit_latency cache_hit_latency;
      cache_ports = v base.cache_ports cache_ports;
      dram_latency = v base.dram_latency dram_latency;
      dram_bandwidth = v base.dram_bandwidth dram_bandwidth;
      master_cache_lines = v base.master_cache_lines master_cache_lines;
      ps_latency = v base.ps_latency ps_latency;
      spawn_overhead = v base.spawn_overhead spawn_overhead;
      join_overhead = v base.join_overhead join_overhead;
      cluster_period = v base.cluster_period cluster_period;
      icn_period = v base.icn_period icn_period;
      cache_period = v base.cache_period cache_period;
      dram_period = v base.dram_period dram_period;
      seed = v base.seed seed;
      max_cycles = v base.max_cycles max_cycles;
    }

let with_name c name = { c with name }
let with_seed c seed = { c with seed }
let with_max_cycles c max_cycles = checked { c with max_cycles }

let with_topology ?num_clusters ?tcus_per_cluster ?num_cache_modules c =
  make ~base:c ?num_clusters ?tcus_per_cluster ?num_cache_modules ()

let with_memory ?cache_lines ?cache_assoc ?dram_latency ?dram_bandwidth c =
  make ~base:c ?cache_lines ?cache_assoc ?dram_latency ?dram_bandwidth ()

let with_periods ?cluster ?icn ?cache ?dram c =
  make ~base:c ?cluster_period:cluster ?icn_period:icn ?cache_period:cache
    ?dram_period:dram ()

(** Apply a list of "key=value" strings; the final configuration is
    validated, so a sweep generator cannot emit a crashing machine. *)
let with_overrides c kvs =
  checked
    (List.fold_left
       (fun c kv ->
         match String.index_opt kv '=' with
         | Some i ->
           with_override c (String.sub kv 0 i)
             (String.sub kv (i + 1) (String.length kv - i - 1))
         | None -> raise (Bad_config ("expected key=value, got " ^ kv)))
       c kvs)
