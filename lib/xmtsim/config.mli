(** Simulated XMT configuration (paper §III: "XMTSim is highly
    configurable and provides control over many parameters including
    number of TCUs, the cache size, DRAM bandwidth and relative clock
    frequencies").

    The record is transparent — every knob is a plain field — but the
    construction surface is validated: {!make}, the [with_*] helpers and
    {!with_overrides} all reject machines the simulator cannot build
    (zero clusters/TCUs, zero-way caches, non-positive latencies or
    clock periods), so sweep generators cannot emit a configuration that
    crashes mid-campaign.

    All latencies are in cycles of the respective component's clock
    domain; all clock domains default to period 1 (same frequency). *)

type prefetch_policy = Fifo | Lru

type t = {
  name : string;
  (* topology *)
  num_clusters : int;
  tcus_per_cluster : int;
  (* per-cluster shared functional units *)
  mdus_per_cluster : int;
  fpus_per_cluster : int;
  mul_latency : int;
  div_latency : int;
  fpu_latency : int;
  sqrt_latency : int;
  (* TCU prefetch buffers *)
  prefetch_buffer_size : int;  (** 0 disables prefetch buffering *)
  prefetch_policy : prefetch_policy;
  (* cluster read-only cache *)
  rocache_lines : int;
  rocache_hit_latency : int;
  (* interconnection network *)
  icn_latency : int;  (** one-way traversal latency (hops) *)
  icn_jitter : int;  (** max extra cycles of seeded arbitration jitter *)
  cluster_inject_width : int;  (** packets a cluster may inject per cycle *)
  cluster_return_width : int;  (** replies a cluster may accept per cycle *)
  (* shared L1 cache modules *)
  num_cache_modules : int;
  cache_lines : int;  (** lines per module *)
  cache_assoc : int;
  cache_line_words : int;
  cache_hit_latency : int;
  cache_ports : int;  (** requests a module accepts per cycle *)
  (* DRAM *)
  dram_latency : int;
  dram_bandwidth : int;  (** requests serviced per cycle, all channels *)
  (* master TCU *)
  master_cache_lines : int;
  master_cache_hit_latency : int;
  (* prefix-sum unit *)
  ps_latency : int;
  (* spawn/join *)
  spawn_overhead : int;  (** broadcast + TCU activation cycles *)
  join_overhead : int;
  (* clock domain periods (DVFS initial values) *)
  cluster_period : int;
  icn_period : int;
  cache_period : int;
  dram_period : int;
  (* misc *)
  seed : int;  (** arbitration jitter seed *)
  max_cycles : int;  (** simulation safety stop *)
}

val num_tcus : t -> int

(** The 64-TCU FPGA prototype (paper §II): 8 clusters of 8 TCUs. *)
val fpga64 : t

(** The envisioned 1024-TCU XMT chip (paper §III-A): 64 clusters of 16
    TCUs. *)
val chip1024 : t

(** Tiny configuration for unit tests: 2 clusters of 2 TCUs. *)
val tiny : t

val presets : (string * t) list

exception Bad_config of string

(** Check a configuration for inconsistencies; [Error] lists every
    violated constraint. *)
val validate : t -> (t, string) result

(** [validate], raising {!Bad_config} on inconsistency. *)
val checked : t -> t

(** Validated smart constructor: every omitted field defaults from
    [base] (itself defaulting to {!fpga64}); raises {!Bad_config} when
    the resulting machine is inconsistent. *)
val make :
  ?base:t ->
  ?name:string ->
  ?num_clusters:int ->
  ?tcus_per_cluster:int ->
  ?mdus_per_cluster:int ->
  ?fpus_per_cluster:int ->
  ?prefetch_buffer_size:int ->
  ?prefetch_policy:prefetch_policy ->
  ?rocache_lines:int ->
  ?icn_latency:int ->
  ?icn_jitter:int ->
  ?num_cache_modules:int ->
  ?cache_lines:int ->
  ?cache_assoc:int ->
  ?cache_line_words:int ->
  ?cache_hit_latency:int ->
  ?cache_ports:int ->
  ?dram_latency:int ->
  ?dram_bandwidth:int ->
  ?master_cache_lines:int ->
  ?ps_latency:int ->
  ?spawn_overhead:int ->
  ?join_overhead:int ->
  ?cluster_period:int ->
  ?icn_period:int ->
  ?cache_period:int ->
  ?dram_period:int ->
  ?seed:int ->
  ?max_cycles:int ->
  unit ->
  t

val with_name : t -> string -> t
val with_seed : t -> int -> t
val with_max_cycles : t -> int -> t

val with_topology :
  ?num_clusters:int -> ?tcus_per_cluster:int -> ?num_cache_modules:int -> t -> t

val with_memory :
  ?cache_lines:int -> ?cache_assoc:int -> ?dram_latency:int ->
  ?dram_bandwidth:int -> t -> t

val with_periods :
  ?cluster:int -> ?icn:int -> ?cache:int -> ?dram:int -> t -> t

(** Apply a list of "key=value" override strings (the CLI's [--set]);
    the final configuration is validated.  Raises {!Bad_config} on
    unknown keys, malformed values or inconsistent results. *)
val with_overrides : t -> string list -> t
