module I = Isa.Instr
module F = Funcmodel

type result = {
  output : string;
  instructions : int;
  halted : bool;
  stats : Stats.t;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type state = {
  img : Isa.Program.image;
  memory : Mem.t;
  globals : int array;
  st_stats : Stats.t;
  out : Buffer.t;
  join_of : (int, int) Hashtbl.t;
  master : F.ctx;
  mutable executed : int;
  mutable st_halted : bool;
  rp : Reuseprofile.t option;  (** reuse-profile harvest (predict mode) *)
}

let compute_join_map img =
  let join_of = Hashtbl.create 8 in
  let open_spawn = ref None in
  Array.iteri
    (fun i ins ->
      match ins with
      | I.Spawn _ -> (
        match !open_spawn with
        | Some _ -> fail "nested spawn at %d" i
        | None -> open_spawn := Some i)
      | I.Join -> (
        match !open_spawn with
        | Some s ->
          Hashtbl.replace join_of s i;
          open_spawn := None
        | None -> fail "join without spawn at %d" i)
      | _ -> ())
    img.Isa.Program.instrs;
  (match !open_spawn with Some s -> fail "unmatched spawn at %d" s | None -> ());
  join_of

let init ?profile img =
  let master = F.make_ctx () in
  master.F.pc <- img.Isa.Program.entry;
  {
    img;
    memory = Mem.load img;
    globals = Array.make Isa.Reg.num_globals 0;
    st_stats = Stats.create ();
    out = Buffer.create 256;
    join_of = compute_join_map img;
    master;
    executed = 0;
    st_halted = false;
    rp = profile;
  }

(* Run one serial-boundary step: either a single master instruction, or a
   whole spawn (all virtual threads, serialized). *)
let step ?(on_instr = fun ~pc:_ -> ()) (t : state) =
  let read_str a = Mem.read_string t.memory a in
  (* reuse-profile taps: instruction classes and memory addresses are
     only visible here, so the harvest rides the interpreter loop *)
  let rp_instr ~master ins =
    match t.rp with
    | Some p -> Reuseprofile.on_instr p ~master ins
    | None -> ()
  in
  let rp_access ?(nb = false) ~master ~ro ~kind ~addr () =
    match t.rp with
    | Some p -> Reuseprofile.on_access p ~master ~ro ~nb ~kind ~addr
    | None -> ()
  in
  let ctx = t.master in
  let pc = ctx.F.pc in
  let ins = t.img.Isa.Program.instrs.(pc) in
  t.executed <- t.executed + 1;
  Stats.count_instr t.st_stats ~master:true ins;
  rp_instr ~master:true ins;
  on_instr ~pc;
  match F.issue t.img ctx ~read_str with
  | F.Done -> ()
  | F.Load { dst; addr; ro } ->
    rp_access ~master:true ~ro ~kind:`Load ~addr ();
    F.complete_load ctx dst (Mem.read t.memory addr)
  | F.Store { addr; value; nb } ->
    rp_access ~nb ~master:true ~ro:false ~kind:`Store ~addr ();
    Mem.write t.memory addr value
  | F.Psm { dst; addr; inc } ->
    t.st_stats.Stats.psm_ops <- t.st_stats.Stats.psm_ops + 1;
    rp_access ~master:true ~ro:false ~kind:`Psm ~addr ();
    let old = Mem.fetch_add t.memory addr inc in
    if dst <> 0 then ctx.F.regs.(dst) <- old
  | F.Prefetch { addr } ->
    rp_access ~master:true ~ro:false ~kind:`Prefetch ~addr ()
  | F.Ps { dst; g; inc } ->
    if inc <> 0 && inc <> 1 then fail "ps increment must be 0 or 1 (got %d)" inc;
    t.st_stats.Stats.ps_ops <- t.st_stats.Stats.ps_ops + 1;
    let old = t.globals.(g) in
    t.globals.(g) <- old + inc;
    if dst <> 0 then ctx.F.regs.(dst) <- old
  | F.Spawn { lo; hi } ->
    t.st_stats.Stats.spawns <- t.st_stats.Stats.spawns + 1;
    let spawn_idx = pc in
    let join_idx =
      match Hashtbl.find_opt t.join_of spawn_idx with
      | Some j -> j
      | None -> fail "spawn without join at %d" spawn_idx
    in
    (* serialize: one context runs the dispatch loop for all ids *)
    t.globals.(Isa.Reg.g_spawn) <- lo;
    let bound = hi in
    (match t.rp with
    | Some p ->
      Reuseprofile.enter_spawn p ~pc:spawn_idx ~threads:(hi - lo + 1)
    | None -> ());
    let thread = F.make_ctx () in
    F.copy_regs ~src:ctx ~dst:thread;
    thread.F.pc <- spawn_idx + 1;
    let finished = ref false in
    while not !finished do
      let tpc = thread.F.pc in
      if tpc <= spawn_idx || tpc >= join_idx then
        fail
          "functional mode: pc %d escaped the spawn region (%d,%d) — block \
           not broadcast (Fig. 9)"
          tpc spawn_idx join_idx;
      let tins = t.img.Isa.Program.instrs.(tpc) in
      t.executed <- t.executed + 1;
      Stats.count_instr t.st_stats ~master:false tins;
      rp_instr ~master:false tins;
      on_instr ~pc:tpc;
      match F.issue t.img thread ~read_str with
      | F.Done -> ()
      | F.Load { dst; addr; ro } ->
        rp_access ~master:false ~ro ~kind:`Load ~addr ();
        F.complete_load thread dst (Mem.read t.memory addr)
      | F.Store { addr; value; nb } ->
        rp_access ~nb ~master:false ~ro:false ~kind:`Store ~addr ();
        Mem.write t.memory addr value
      | F.Psm { dst; addr; inc } ->
        t.st_stats.Stats.psm_ops <- t.st_stats.Stats.psm_ops + 1;
        rp_access ~master:false ~ro:false ~kind:`Psm ~addr ();
        let old = Mem.fetch_add t.memory addr inc in
        if dst <> 0 then thread.F.regs.(dst) <- old
      | F.Prefetch { addr } ->
        rp_access ~master:false ~ro:false ~kind:`Prefetch ~addr ()
      | F.Ps { dst; g; inc } ->
        if inc <> 0 && inc <> 1 then fail "ps increment must be 0 or 1";
        t.st_stats.Stats.ps_ops <- t.st_stats.Stats.ps_ops + 1;
        let old = t.globals.(g) in
        t.globals.(g) <- old + inc;
        if dst <> 0 then thread.F.regs.(dst) <- old
      | F.Chkid { id } ->
        if id <= bound then begin
          t.st_stats.Stats.virtual_threads <-
            t.st_stats.Stats.virtual_threads + 1;
          (* a fresh virtual thread begins: deal it onto the next vTCU
             stream so the harvest sees hardware-like interleaving *)
          match t.rp with Some p -> Reuseprofile.on_thread p | None -> ()
        end
        else finished := true
      | F.Fence ->
        t.st_stats.Stats.fences <- t.st_stats.Stats.fences + 1;
        (match t.rp with Some p -> Reuseprofile.on_fence p | None -> ())
      | F.Output s -> Buffer.add_string t.out s
      | F.Spawn _ -> fail "nested spawn executed by a virtual thread"
      | F.Join -> fail "virtual thread reached join"
      | F.Halt -> fail "virtual thread executed halt"
      | F.Mfg _ | F.Mtg _ -> fail "virtual thread executed mfg/mtg"
    done;
    (match t.rp with Some p -> Reuseprofile.exit_spawn p | None -> ());
    ctx.F.pc <- join_idx + 1
  | F.Join -> fail "join reached in serial flow"
  | F.Chkid _ -> fail "chkid in serial flow"
  | F.Mfg { dst; g } -> if dst <> 0 then ctx.F.regs.(dst) <- t.globals.(g)
  | F.Mtg { g; src } -> t.globals.(g) <- src
  | F.Fence -> (
    match t.rp with Some p -> Reuseprofile.on_fence p | None -> ())
  | F.Output s -> Buffer.add_string t.out s
  | F.Halt -> t.st_halted <- true

let advance ?on_instr t ~budget =
  let target = t.executed + budget in
  (try
     while (not t.st_halted) && t.executed < target do
       step ?on_instr t
     done
   with F.Runtime_error { pc; msg } -> fail "runtime error at pc %d: %s" pc msg);
  if t.st_halted then `Halted else `Paused

let instructions t = t.executed
let halted t = t.st_halted
let output t = Buffer.contents t.out
let stats t = t.st_stats

let snapshot t =
  Machine.make_snapshot ~mem:(Mem.snapshot t.memory)
    ~regs:(Array.copy t.master.F.regs)
    ~fregs:(Array.copy t.master.F.fregs)
    ~pc:t.master.F.pc
    ~globals:(Array.copy t.globals)
    ~output:(Buffer.contents t.out)

let run ?(max_instructions = 2_000_000_000) ?on_instr ?profile img =
  let t = init ?profile img in
  (match advance ?on_instr t ~budget:max_instructions with
  | `Halted -> ()
  | `Paused -> fail "instruction budget exhausted");
  {
    output = Buffer.contents t.out;
    instructions = t.executed;
    halted = t.st_halted;
    stats = t.st_stats;
  }
