(** The fast functional simulation mode (paper §III-A).

    Replaces the cycle-accurate model with a mechanism that serializes the
    parallel sections: one context executes all virtual threads of a spawn
    in ID order.  Orders of magnitude faster than cycle mode, provides no
    cycle information, and — as the paper warns — cannot reveal
    concurrency bugs, because the serialized execution is only one of the
    legal interleavings.

    Besides the one-shot {!run}, an incremental interface supports the
    phase-sampling workflow of §III-F ({!Phase_sampling}): {!advance}
    executes a bounded number of instructions, pausing only at {e serial
    boundaries} (a spawn executes atomically), and {!snapshot} exports the
    architectural state so a cycle-accurate {!Machine} can take over from
    that exact point. *)

type result = {
  output : string;
  instructions : int;
  halted : bool;
  stats : Stats.t;  (** instruction counters only; no activity data *)
}

exception Exec_error of string

(** [profile] attaches a reuse-profile collector ({!Reuseprofile}): the
    interpreter feeds it every executed instruction, every memory
    access (with its address and read-only/atomic kind) and every
    spawn/join boundary — the harvest pass of the analytical prediction
    mode.  Without it the hooks cost one [None] match per event. *)
val run :
  ?max_instructions:int ->
  ?on_instr:(pc:int -> unit) ->
  ?profile:Reuseprofile.t ->
  Isa.Program.image ->
  result

(* -------- incremental interface (phase sampling, §III-F) -------- *)

type state

val init : ?profile:Reuseprofile.t -> Isa.Program.image -> state

(** Execute at least [budget] more instructions (pausing only at a serial
    boundary, so a spawn may overshoot), or until halt.  [on_instr] sees
    every executed pc. *)
val advance :
  ?on_instr:(pc:int -> unit) -> state -> budget:int -> [ `Paused | `Halted ]

val instructions : state -> int
val halted : state -> bool
val output : state -> string
val stats : state -> Stats.t

(** Architectural snapshot at the current (serial-boundary) point,
    loadable into a cycle-accurate {!Machine}. *)
val snapshot : state -> Machine.snapshot
