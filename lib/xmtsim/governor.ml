(** Telemetry-driven DVFS governor (paper §III-B: activity plug-ins can
    implement "DVFS-style runtime control").

    An activity plug-in that closes the observe-decide-act loop: every
    [interval] cluster cycles it samples its own {!Power} model, steps the
    {!Thermal} model, pushes the readings into an {!Obs.Timeseries}
    window, and compares the {e windowed} readings against thresholds:

    - hotspot temperature above [temp_hi] throttles both the cluster and
      ICN clock domains to [throttle_period] (chip-wide thermal cap);
    - windowed mean ICN merge backlog above [icn_hi] throttles only the
      cluster domain (slows injection into the congested network);
    - both signals back below their low-water marks restore the base
      periods (hysteresis keeps the governor from oscillating).

    Every {!Desim.Clock.set_period} call is recorded as a {!decision},
    pushed to the timeseries, emitted as an instant event on the
    machine's span tracer (when attached), and exported as metrics —
    the paper's "study the architecture while it runs" loop. *)

type decision = {
  d_cycle : int;  (** simulated time of the decision *)
  d_domain : string;  (** "clusters" | "icn" *)
  d_from : int;  (** period before *)
  d_to : int;  (** period after *)
  d_reason : string;  (** "thermal-high" | "icn-congestion" | "recover" *)
  d_temp_k : float;  (** hotspot temperature at decision time *)
  d_icn_backlog : float;  (** windowed mean backlog per module, cycles *)
  d_asleep : bool;  (** domain was clock-gated off at decision time *)
}

type t = {
  m : Machine.t;
  power : Power.t;
  thermal : Thermal.t;
  interval : int;
  temp_hi : float;
  temp_lo : float;
  icn_hi : float;
  icn_lo : float;
  throttle_period : int;
  base_cluster_period : int;
  base_icn_period : int;
  series : Obs.Timeseries.t;
  ch_temp : Obs.Timeseries.channel;
  ch_icn : Obs.Timeseries.channel;
  ch_power : Obs.Timeseries.channel;
  ch_cluster_period : Obs.Timeseries.channel;
  ch_icn_period : Obs.Timeseries.channel;
  mutable decisions : decision list;  (** newest first *)
  mutable samples : int;
}

let timeseries g = g.series
let thermal g = g.thermal
let power g = g.power
let samples g = g.samples
let decisions g = List.rev g.decisions

(* mean ICN merge backlog per cache module, in cycles *)
let icn_backlog_per_module m =
  let backlog = Machine.icn_backlog m in
  let total =
    Array.fold_left
      (fun acc sides -> Array.fold_left ( + ) acc sides)
      0 backlog
  in
  float_of_int total /. float_of_int (max 1 (Array.length backlog))

let decide g ~cycle ~temp ~icn_w =
  let set domain name base ~reason period =
    let from = Machine.period g.m domain in
    if from <> period then begin
      (* Record whether the domain is clock-gated off before applying the
         change: a throttled-while-asleep domain accrues its skipped-tick
         estimate at the old period inside Clock.set_period, so the span
         already slept is not double-counted at the new rate. *)
      let asleep = Machine.domain_sleeping g.m domain in
      Machine.set_period g.m domain period;
      ignore base;
      let d =
        {
          d_cycle = cycle;
          d_domain = name;
          d_from = from;
          d_to = period;
          d_reason = reason;
          d_temp_k = temp;
          d_icn_backlog = icn_w;
          d_asleep = asleep;
        }
      in
      g.decisions <- d :: g.decisions;
      match Machine.tracer g.m with
      | None -> ()
      | Some tr ->
        Obs.Tracer.instant tr ~ts:cycle ~tid:(Machine.trace_tid_governor g.m)
          ~cat:"governor"
          ~args:
            [ ("domain", Obs.Tracer.A_str name);
              ("from", Obs.Tracer.A_int from);
              ("to", Obs.Tracer.A_int period);
              ("reason", Obs.Tracer.A_str reason);
              ("temp_k", Obs.Tracer.A_float temp);
              ("icn_backlog", Obs.Tracer.A_float icn_w);
              ("asleep", Obs.Tracer.A_int (if d.d_asleep then 1 else 0)) ]
          "set_period"
    end
  in
  if temp >= g.temp_hi then begin
    (* thermal emergency: chip-wide slowdown *)
    set Machine.Clusters "clusters" g.base_cluster_period ~reason:"thermal-high"
      (max g.throttle_period g.base_cluster_period);
    set Machine.Icn "icn" g.base_icn_period ~reason:"thermal-high"
      (max g.throttle_period g.base_icn_period)
  end
  else if icn_w >= g.icn_hi then
    (* congestion: slow injection, keep the network draining at speed *)
    set Machine.Clusters "clusters" g.base_cluster_period ~reason:"icn-congestion"
      (max g.throttle_period g.base_cluster_period)
  else if temp <= g.temp_lo && icn_w <= g.icn_lo then begin
    set Machine.Clusters "clusters" g.base_cluster_period ~reason:"recover"
      g.base_cluster_period;
    set Machine.Icn "icn" g.base_icn_period ~reason:"recover" g.base_icn_period
  end

let attach ?power_params ?thermal_params ?grid_w ?(window = 64)
    ?(temp_hi = 326.0) ?temp_lo ?(icn_hi = 6.0) ?icn_lo
    ?(throttle_period = 2) ?series ~interval m =
  if interval <= 0 then invalid_arg "Governor.attach: interval must be positive";
  let temp_lo = match temp_lo with Some v -> v | None -> temp_hi -. 2.0 in
  let icn_lo = match icn_lo with Some v -> v | None -> icn_hi /. 2.0 in
  let cfg = Machine.config m in
  let power = Power.create ?params:power_params m in
  let grid_w =
    match grid_w with
    | Some w -> w
    | None ->
      max 1 (int_of_float (sqrt (float_of_int cfg.Config.num_clusters)))
  in
  let thermal =
    Thermal.create ?params:thermal_params ~grid_w (Power.component_names power)
  in
  let series =
    match series with Some s -> s | None -> Obs.Timeseries.create ~window ()
  in
  let ch name help = Obs.Timeseries.channel series ~help name in
  let g =
    {
      m;
      power;
      thermal;
      interval;
      temp_hi;
      temp_lo;
      icn_hi;
      icn_lo;
      throttle_period;
      base_cluster_period = Machine.period m Machine.Clusters;
      base_icn_period = Machine.period m Machine.Icn;
      series;
      ch_temp = ch "sim.governor.temp_k" "hotspot temperature seen by the governor";
      ch_icn =
        ch "sim.governor.icn_backlog"
          "windowed mean ICN merge backlog per module (cycles)";
      ch_power = ch "sim.governor.power_watts" "sampled chip power";
      ch_cluster_period = ch "sim.governor.cluster_period" "cluster clock period";
      ch_icn_period = ch "sim.governor.icn_period" "ICN clock period";
      decisions = [];
      samples = 0;
    }
  in
  Machine.add_activity_plugin m ~name:"governor" ~interval (fun m cycle ->
      let now = Machine.cycles m in
      let watts = Power.sample g.power in
      Thermal.step g.thermal ~dt:(float_of_int g.interval *. 1e-9) watts;
      let temp = Thermal.max_temperature g.thermal in
      let icn_now = icn_backlog_per_module m in
      g.samples <- g.samples + 1;
      Obs.Timeseries.push g.ch_temp ~t:now temp;
      Obs.Timeseries.push g.ch_icn ~t:now icn_now;
      Obs.Timeseries.push g.ch_power ~t:now (Power.total g.power);
      (* decisions react to the windowed mean, not the instantaneous
         spike — the "windowed ICN occupancy" of the in-flight layer *)
      let icn_w = Obs.Timeseries.mean g.ch_icn in
      decide g ~cycle:now ~temp ~icn_w;
      Obs.Timeseries.push g.ch_cluster_period ~t:now
        (float_of_int (Machine.period m Machine.Clusters));
      Obs.Timeseries.push g.ch_icn_period ~t:now
        (float_of_int (Machine.period m Machine.Icn));
      ignore cycle);
  g

(* -------- exports -------- *)

let decision_to_json d =
  Obs.Json.Obj
    [
      ("cycle", Obs.Json.Int d.d_cycle);
      ("domain", Obs.Json.Str d.d_domain);
      ("from", Obs.Json.Int d.d_from);
      ("to", Obs.Json.Int d.d_to);
      ("reason", Obs.Json.Str d.d_reason);
      ("temp_k", Obs.Json.Float d.d_temp_k);
      ("icn_backlog", Obs.Json.Float d.d_icn_backlog);
      ("asleep", Obs.Json.Bool d.d_asleep);
    ]

(** The decision log as JSON (oldest first) — merged into the
    [--stats-json] export under the "governor" key. *)
let to_json g =
  Obs.Json.Obj
    [
      ("interval", Obs.Json.Int g.interval);
      ("samples", Obs.Json.Int g.samples);
      ("temp_hi", Obs.Json.Float g.temp_hi);
      ("icn_hi", Obs.Json.Float g.icn_hi);
      ("decisions", Obs.Json.List (List.map decision_to_json (decisions g)));
    ]

(** Export governor activity into a metrics registry:
    [sim.governor.set_period_total{domain, reason}] counters, the sample
    count, and the final clock periods. *)
let export g reg =
  Obs.Metrics.inc ~by:g.samples (Obs.Metrics.counter reg "sim.governor.samples");
  List.iter
    (fun d ->
      Obs.Metrics.inc
        (Obs.Metrics.counter reg
           ~labels:[ ("domain", d.d_domain); ("reason", d.d_reason) ]
           "sim.governor.set_period_total"))
    g.decisions;
  Obs.Metrics.set
    (Obs.Metrics.gauge reg ~labels:[ ("domain", "clusters") ] "sim.governor.period")
    (float_of_int (Machine.period g.m Machine.Clusters));
  Obs.Metrics.set
    (Obs.Metrics.gauge reg ~labels:[ ("domain", "icn") ] "sim.governor.period")
    (float_of_int (Machine.period g.m Machine.Icn));
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "sim.governor.temp_k")
    (Thermal.max_temperature g.thermal);
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "sim.governor.icn_backlog")
    (Obs.Timeseries.mean g.ch_icn)
