(** Telemetry-driven DVFS governor (paper §III-B).

    An activity plug-in closing the observe-decide-act loop: it samples
    its own {!Power}/{!Thermal} models and the ICN merge backlog into an
    {!Obs.Timeseries} window, and throttles/restores the cluster and ICN
    clock domains via {!Machine.set_period} with hysteresis:

    - hotspot temperature >= [temp_hi]: throttle clusters + ICN
      ("thermal-high");
    - windowed mean ICN backlog >= [icn_hi]: throttle clusters only
      ("icn-congestion");
    - temperature <= [temp_lo] and backlog <= [icn_lo]: restore the base
      periods ("recover").

    Every period change is logged as a {!decision}, emitted as a
    "governor" instant event on the machine's span tracer (when one is
    attached), and exported as metrics. *)

type t

type decision = {
  d_cycle : int;  (** simulated time of the decision *)
  d_domain : string;  (** "clusters" | "icn" *)
  d_from : int;  (** period before *)
  d_to : int;  (** period after *)
  d_reason : string;  (** "thermal-high" | "icn-congestion" | "recover" *)
  d_temp_k : float;  (** hotspot temperature at decision time *)
  d_icn_backlog : float;  (** windowed mean backlog per module, cycles *)
  d_asleep : bool;
      (** the domain's clock was gated off when the decision was taken;
          the skipped-tick estimate for the slept span is accrued at the
          pre-decision period (no double-counting, see
          {!Desim.Clock.set_period}) *)
}

(** [attach ~interval m] registers the governor as an activity plug-in
    sampling every [interval] cluster cycles.  It creates its own
    {!Power} and {!Thermal} instances (so an independently attached
    [--power-interval] reporter is unaffected); [grid_w] defaults to
    [sqrt num_clusters].  [temp_lo] defaults to [temp_hi - 2];
    [icn_lo] to [icn_hi / 2].  [throttle_period] (default 2) is the
    period throttled domains are slowed to.  Pass [series] to share a
    timeseries sink with other producers; otherwise one is created with
    [window] points per channel (default 64). *)
val attach :
  ?power_params:Power.params ->
  ?thermal_params:Thermal.params ->
  ?grid_w:int ->
  ?window:int ->
  ?temp_hi:float ->
  ?temp_lo:float ->
  ?icn_hi:float ->
  ?icn_lo:float ->
  ?throttle_period:int ->
  ?series:Obs.Timeseries.t ->
  interval:int ->
  Machine.t ->
  t

val decisions : t -> decision list  (** oldest first *)

val samples : t -> int
val timeseries : t -> Obs.Timeseries.t
val thermal : t -> Thermal.t
val power : t -> Power.t

(** The governor state as JSON — thresholds, sample count and the
    decision log (oldest first); [--stats-json] merges it under the
    top-level "governor" key. *)
val to_json : t -> Obs.Json.t

(** Export into a metrics registry:
    [sim.governor.set_period_total{domain,reason}] counters, the sample
    count, final clock periods and last temperature/backlog readings. *)
val export : t -> Obs.Metrics.t -> unit
