module I = Isa.Instr
module F = Funcmodel
module V = Isa.Value

exception Sim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

type dst = [ `I of int | `F of int ]

(* Requests travelling cluster -> ICN -> cache module ("packages").
   Each carries the pc of the issuing instruction so every memory-touching
   event exposes (address, tcu, pc) to plugins and the race detector. *)
type req =
  | Rload of { cl : int; tcu : int; dst : dst; ro : bool; pc : int }
  | Rpref of { cl : int; tcu : int; pc : int }
  | Rstore of { cl : int; tcu : int; value : V.t; nb : bool; pc : int }
  | Rpsm of { cl : int; tcu : int; inc : int; dst : int; pc : int }

(* Lifecycle stamps for one request package (simulated time).  Written at
   each station, read once at reply delivery to feed the per-(cluster,
   module) latency histograms and (when a span tracer is attached) one
   "mem-req" span per request. *)
type lifecycle = {
  mutable l_born : int;  (** enqueued into the cluster outbox *)
  mutable l_icn_wait : int;  (** merge-contention delay (from icn_next_free) *)
  mutable l_arrive : int;  (** dequeued into the cache module's input queue *)
  mutable l_svc : int;  (** reply handed to the return ICN *)
  mutable l_mod : int;  (** destination cache module *)
  mutable l_hit : bool;
}

type pkg = { addr : int; req : req; lc : lifecycle }

(* Replies travelling back module -> ICN -> cluster; each carries its
   request's lifecycle so delivery can close the loop. *)
type reply =
  | Pload of { tcu : int; dst : dst; v : V.t; ro : bool; addr : int; pc : int }
  | Ppref of { tcu : int; v : V.t; addr : int; pc : int }
  | Pack of { tcu : int; nb : bool; addr : int; pc : int }
  | Ppsm of { tcu : int; dst : int; old : int; addr : int; pc : int }

type reply_env = { rp : reply; r_lc : lifecycle }

type tcu_state =
  | Tidle
  | Trun
  | Tmemwait
  | Tfuwait of int
  | Tpswait
  | Tfence
  | Tdone

type tcu = {
  tid : int;
  tcl : int;
  ctx : F.ctx;
  mutable st : tcu_state;
  mutable pending : int;
  pbuf : Prefetch_buffer.t;
  (* observability: span start times (simulated time; -1 = no open span) *)
  mutable mw_since : int;  (* memory/fence wait *)
  mutable run_since : int;  (* spawn-activation .. Tdone *)
}

type cluster = {
  cid : int;
  ctcus : tcu array;
  mdu : int array;  (* busy-until times per shared unit *)
  fpu : int array;
  outbox : pkg Queue.t;
  returns : reply_env Queue.t;
  rocache : Tags.t;
  mutable rr : int;
}

(** Cycle-accurate trace events: the stations an instruction/data package
    travels through (paper Â§III-E, detailed trace level). *)
type package_event = {
  pe_time : int;
  pe_stage : string;
  pe_kind : string;
  pe_addr : int;
  pe_tcu : int;
  pe_pc : int;  (** issuing instruction; -1 for unattributable (DRAM fill) *)
  pe_module : int;
}

type master_state = Mrun | Mstall of int | Mmemwait | Mspawnwait | Mhalted

type mshr_entry = { mutable waiters : pkg list (* reversed *) }

type cache_module = {
  mid : int;
  inq : pkg Queue.t;
  tags : Tags.t;
  mshr : (int, mshr_entry) Hashtbl.t;  (* line addr -> waiters *)
}

type t = {
  cfg : Config.t;
  img : Isa.Program.image;
  sched : Desim.Scheduler.t;
  clk_cluster : Desim.Clock.t;
  clk_icn : Desim.Clock.t;
  clk_cache : Desim.Clock.t;
  clk_dram : Desim.Clock.t;
  memory : Mem.t;
  globals : int array;
  stats : Stats.t;
  out_buf : Buffer.t;
  clusters : cluster array;
  modules : cache_module array;
  dram_q : (int * pkg) Queue.t;  (* (module, package) awaiting a DRAM slot *)
  master : F.ctx;
  master_cache : Tags.t;
  mutable master_st : master_state;
  mutable halted : bool;
  (* spawn state *)
  mutable spawn_active : bool;
  mutable spawn_bound : int;
  mutable spawn_region : int * int;  (* (spawn_idx, join_idx) *)
  mutable done_count : int;
  mutable pending_total : int;
  join_of : (int, int) Hashtbl.t;
  jitter : int array array;  (* per (cluster, module) arbitration jitter *)
  cluster_instrs : int array;  (* executed instructions per cluster *)
  icn_next_free : int array array;
      (* mesh-of-trees merge contention: per (module, subtree side), the
         earliest cycle at which the next packet can be delivered.  Each
         module accepts one packet per cycle per subtree half; packets from
         different halves may freely invert, packets from the same source
         keep their order (memory-model rule 1). *)
  mutable filters : Plugin.filter list;
  mutable tracers : (tcu:int -> pc:int -> Isa.Instr.t -> time:int -> unit) list;
  mutable pkg_tracers : (package_event -> unit) list;
  mutable otracer : Obs.Tracer.t option;  (* span tracer (Chrome trace JSON) *)
  mutable started : bool;
  (* clock gating *)
  mutable gating : bool;
  mutable has_plugin : bool;
      (* activity plug-ins sample on cluster ticks; cluster gating would
         change their sampling times, so it is disabled when one attaches *)
  mutable dram_fills : int;  (* DRAM line fills in flight *)
  mutable racedet : Racedetect.t option;  (* shadow-memory race detector *)
  mutable profile : Profile.t option;  (* CPI-stack cycle accounting *)
  mutable hb : heartbeat option;  (* live telemetry stream (attach_stream) *)
}

(* Streaming-heartbeat state: the attached stream plus the previous
   sample of each windowed quantity (host events, wall-clock, TCU
   busy/memwait counters), so every heartbeat reports rates over its own
   window instead of run-to-date averages. *)
and heartbeat = {
  hb_stream : Obs.Stream.t;
  hb_interval : int;  (* cluster cycles between heartbeats *)
  mutable hb_next : int;  (* next heartbeat cycle (single compare per tick) *)
  hb_rollup : Obs.Stream.rollup;
  mutable hb_last_events : int;
  mutable hb_last_us : int;
  mutable hb_last_busy : int;
  mutable hb_last_memwait : int;
  mutable hb_done : bool;  (* run.done already emitted *)
}

type result = { output : string; cycles : int; halted : bool }

(* ------------------------------------------------------------------ *)

(* Hashing on the address avoids module hotspots (paper §II); a simple
   multiplicative hash degenerates for power-of-two module counts, so mix
   the line number properly (SplitMix64 finalizer). *)
let hash_addr cfg addr =
  let line = addr / (4 * cfg.Config.cache_line_words) in
  let z = Int64.mul (Int64.of_int line) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.shift_right_logical z 3) mod cfg.Config.num_cache_modules

let compute_join_map img =
  let join_of = Hashtbl.create 8 in
  let open_spawn = ref None in
  Array.iteri
    (fun i ins ->
      match ins with
      | I.Spawn _ -> (
        match !open_spawn with
        | Some _ -> fail "nested spawn in program text at %d" i
        | None -> open_spawn := Some i)
      | I.Join -> (
        match !open_spawn with
        | Some s ->
          Hashtbl.replace join_of s i;
          open_spawn := None
        | None -> fail "join without spawn at %d" i)
      | _ -> ())
    img.Isa.Program.instrs;
  (match !open_spawn with Some s -> fail "unmatched spawn at %d" s | None -> ());
  join_of

let create ?(config = Config.fpga64) img =
  let cfg = config in
  let sched = Desim.Scheduler.create () in
  let clk name period = Desim.Clock.create sched ~name ~period in
  let rng = Desim.Rng.create ~seed:cfg.Config.seed in
  let jitter =
    Array.init cfg.Config.num_clusters (fun _ ->
        Array.init cfg.Config.num_cache_modules (fun _ ->
            if cfg.Config.icn_jitter <= 0 then 0
            else Desim.Rng.int rng (cfg.Config.icn_jitter + 1)))
  in
  let clusters =
    Array.init cfg.Config.num_clusters (fun cid ->
        {
          cid;
          ctcus =
            Array.init cfg.Config.tcus_per_cluster (fun k ->
                {
                  tid = (cid * cfg.Config.tcus_per_cluster) + k;
                  tcl = cid;
                  ctx = F.make_ctx ();
                  st = Tidle;
                  pending = 0;
                  pbuf =
                    Prefetch_buffer.create ~size:cfg.Config.prefetch_buffer_size
                      ~policy:cfg.Config.prefetch_policy;
                  mw_since = -1;
                  run_since = -1;
                });
          mdu = Array.make (max 1 cfg.Config.mdus_per_cluster) 0;
          fpu = Array.make (max 1 cfg.Config.fpus_per_cluster) 0;
          outbox = Queue.create ();
          returns = Queue.create ();
          rocache =
            Tags.create ~lines:cfg.Config.rocache_lines ~assoc:2
              ~line_words:cfg.Config.cache_line_words;
          rr = 0;
        })
  in
  let modules =
    Array.init cfg.Config.num_cache_modules (fun mid ->
        {
          mid;
          inq = Queue.create ();
          tags =
            Tags.create ~lines:cfg.Config.cache_lines ~assoc:cfg.Config.cache_assoc
              ~line_words:cfg.Config.cache_line_words;
          mshr = Hashtbl.create 16;
        })
  in
  let master = F.make_ctx () in
  master.F.pc <- img.Isa.Program.entry;
  let stats = Stats.create () in
  stats.Stats.req_lat <-
    Some
      (Stats.make_req_latency ~clusters:cfg.Config.num_clusters
         ~modules:cfg.Config.num_cache_modules);
  {
    cfg;
    img;
    sched;
    clk_cluster = clk "clusters" cfg.Config.cluster_period;
    clk_icn = clk "icn" cfg.Config.icn_period;
    clk_cache = clk "caches" cfg.Config.cache_period;
    clk_dram = clk "dram" cfg.Config.dram_period;
    memory = Mem.load img;
    globals = Array.make Isa.Reg.num_globals 0;
    stats;
    out_buf = Buffer.create 256;
    clusters;
    modules;
    dram_q = Queue.create ();
    master;
    master_cache =
      Tags.create ~lines:cfg.Config.master_cache_lines ~assoc:2
        ~line_words:cfg.Config.cache_line_words;
    master_st = Mrun;
    halted = false;
    spawn_active = false;
    spawn_bound = -1;
    spawn_region = (-1, -1);
    done_count = 0;
    pending_total = 0;
    join_of = compute_join_map img;
    jitter;
    icn_next_free =
      Array.init cfg.Config.num_cache_modules (fun _ -> Array.make 2 0);
    cluster_instrs = Array.make cfg.Config.num_clusters 0;
    filters = [];
    tracers = [];
    pkg_tracers = [];
    otracer = None;
    started = false;
    gating = true;
    has_plugin = false;
    dram_fills = 0;
    racedet = None;
    profile = None;
    hb = None;
  }

(* diagnostic: per-(module,side) send-side backlog in cycles *)
let icn_backlog t =
  let now = Desim.Scheduler.now t.sched in
  Array.map (fun sides -> Array.map (fun nf -> max 0 (nf - now)) sides) t.icn_next_free

let module_queue_depths t = Array.map (fun m -> Queue.length m.inq) t.modules

(* executed TCU instructions per cluster (for spatial activity/power) *)
let cluster_activity t = Array.copy t.cluster_instrs

let config t = t.cfg
let stats t = t.stats
let output t = Buffer.contents t.out_buf
let cycles t = Desim.Scheduler.now t.sched
let mem t = t.memory
let globals t = t.globals

(* host-side throughput: events processed by the desim scheduler *)
let events_processed t = Desim.Scheduler.events_processed t.sched

(* ------------------------------------------------------------------ *)
(* Tracing / plugin fan-out *)

let notify_instr t ~tcu ~pc ins ~addr =
  List.iter
    (fun f -> f.Plugin.f_on_instr ~master:(tcu < 0) ~pc ins ~addr)
    t.filters;
  List.iter (fun f -> f ~tcu ~pc ins ~time:(Desim.Scheduler.now t.sched)) t.tracers

let pkg_kind = function
  | Rload _ -> "load"
  | Rpref _ -> "pref"
  | Rstore _ -> "store"
  | Rpsm _ -> "psm"

let pkg_tcu = function
  | Rload { tcu; _ } | Rpref { tcu; _ } | Rstore { tcu; _ } | Rpsm { tcu; _ } ->
    tcu

let pkg_pc = function
  | Rload { pc; _ } | Rpref { pc; _ } | Rstore { pc; _ } | Rpsm { pc; _ } -> pc

let emit_pkg t ~stage ~kind ~addr ~tcu ~pc ~m =
  match t.pkg_tracers with
  | [] -> ()
  | tracers ->
    let ev =
      {
        pe_time = Desim.Scheduler.now t.sched;
        pe_stage = stage;
        pe_kind = kind;
        pe_addr = addr;
        pe_tcu = tcu;
        pe_pc = pc;
        pe_module = m;
      }
    in
    List.iter (fun f -> f ev) tracers

(* Race-detector hooks: one option check when detached (zero overhead). *)
let rd_read t ~tcu ~pc ~addr =
  match t.racedet with
  | None -> ()
  | Some rd ->
    Racedetect.on_read rd ~tcu ~pc ~addr ~time:(Desim.Scheduler.now t.sched)

let rd_write t ~tcu ~pc ~addr =
  match t.racedet with
  | None -> ()
  | Some rd ->
    Racedetect.on_write rd ~tcu ~pc ~addr ~time:(Desim.Scheduler.now t.sched)

let rd_sync t ~tcu =
  match t.racedet with
  | None -> ()
  | Some rd -> Racedetect.on_sync rd ~tcu

let rd_release t ~tcu =
  match t.racedet with
  | None -> ()
  | Some rd -> Racedetect.on_release rd ~tcu

(* Profiler hooks: one option check when detached.  The profiler is a
   passive observer — it never schedules events, wakes clocks or touches
   machine state, so attaching it cannot perturb cycles, stats or
   traces.  [prof_flush_mem] closes a TCU's memory-wait episode at reply
   delivery, translating the request's lifecycle stamps into the
   ICN / cache-hit / DRAM components (or the whole wait into the
   prefetch-covered bucket when an in-flight prefetch completed it). *)
let prof_flush_mem t (u : tcu) (lc : lifecycle) ~pref =
  match t.profile with
  | None -> ()
  | Some p ->
    if pref then
      Profile.flush_memwait p ~tcu:u.tid ~icn:0 ~cache_hit:0 ~dram:0 ~pref:true
    else begin
      let now = Desim.Scheduler.now t.sched in
      let hit_lat = t.cfg.Config.cache_hit_latency * Desim.Clock.period t.clk_cache in
      let icn = (lc.l_arrive - lc.l_born) + (now - lc.l_svc) in
      let svc = lc.l_svc - lc.l_arrive in
      let cache_hit = if lc.l_hit then svc else min hit_lat svc in
      let dram = svc - cache_hit in
      Profile.flush_memwait p ~tcu:u.tid ~icn ~cache_hit ~dram ~pref:false
    end

let prof_master_stall t b =
  match t.profile with Some p -> Profile.master_stall_kind p b | None -> ()

(* ------------------------------------------------------------------ *)
(* Span tracer (Chrome trace-event JSON, §III-B/E as Perfetto tracks).
   Track layout on the sim process: master TCU = tid 0, TCU i = tid i+1,
   one extra "memory" track for unattributable package events. *)

let trace_tid_of_tcu tcu = tcu + 1

let trace_tid_memory t =
  (t.cfg.Config.num_clusters * t.cfg.Config.tcus_per_cluster) + 1

(* dedicated track for runtime-control (DVFS governor) decisions *)
let trace_tid_governor t = trace_tid_memory t + 1

let close_memwait_span t tr (u : tcu) =
  let now = Desim.Scheduler.now t.sched in
  Obs.Tracer.complete tr ~ts:u.mw_since ~dur:(now - u.mw_since)
    ~tid:(trace_tid_of_tcu u.tid) ~cat:"tcu" "memwait";
  u.mw_since <- -1

let close_run_span t tr (u : tcu) =
  let now = Desim.Scheduler.now t.sched in
  Obs.Tracer.complete tr ~ts:u.run_since ~dur:(now - u.run_since)
    ~tid:(trace_tid_of_tcu u.tid) ~cat:"tcu" "tcu-run";
  u.run_since <- -1

(* ------------------------------------------------------------------ *)
(* ICN transport: event-per-package with per-(cluster,module) jitter that
   preserves same-source-same-destination FIFO ordering (memory model
   rule 1: static routing keeps per-pair order). *)

(* Build a request package, stamping its birth (outbox-enqueue) time. *)
let mk_pkg t addr req =
  {
    addr;
    req;
    lc =
      {
        l_born = Desim.Scheduler.now t.sched;
        l_icn_wait = 0;
        l_arrive = 0;
        l_svc = 0;
        l_mod = -1;
        l_hit = false;
      };
  }

let icn_send t ~cl pk =
  let m = hash_addr t.cfg pk.addr in
  let now = Desim.Scheduler.now t.sched in
  let side = if cl < Array.length t.clusters / 2 then 0 else 1 in
  let uncontended =
    now + (t.cfg.Config.icn_latency * Desim.Clock.period t.clk_icn)
    + t.jitter.(cl).(m)
  in
  let arrival = max uncontended t.icn_next_free.(m).(side) in
  t.icn_next_free.(m).(side) <- arrival + 1;
  t.stats.Stats.icn_packets <- t.stats.Stats.icn_packets + 1;
  pk.lc.l_mod <- m;
  pk.lc.l_icn_wait <- arrival - uncontended;
  emit_pkg t ~stage:"icn-inject" ~kind:(pkg_kind pk.req) ~addr:pk.addr
    ~tcu:(pkg_tcu pk.req) ~pc:(pkg_pc pk.req) ~m;
  Desim.Scheduler.schedule t.sched ~prio:Desim.Scheduler.prio_transfer
    ~delay:(arrival - now) (fun () ->
      pk.lc.l_arrive <- Desim.Scheduler.now t.sched;
      emit_pkg t ~stage:"module-arrive" ~kind:(pkg_kind pk.req) ~addr:pk.addr
        ~tcu:(pkg_tcu pk.req) ~pc:(pkg_pc pk.req) ~m;
      Queue.add pk t.modules.(m).inq;
      (* arrival runs at prio_transfer: the cache tick at this instant (if
         any) already popped, so a sleeping cache domain resumes one period
         later — exactly when an ungated cache would next see the package *)
      Desim.Clock.wake t.clk_cache)

let icn_reply t ~mid ~cl renv =
  let delay =
    (t.cfg.Config.icn_latency * Desim.Clock.period t.clk_icn) + t.jitter.(cl).(mid)
  in
  t.stats.Stats.icn_packets <- t.stats.Stats.icn_packets + 1;
  renv.r_lc.l_svc <- Desim.Scheduler.now t.sched;
  Desim.Scheduler.schedule t.sched ~prio:Desim.Scheduler.prio_transfer ~delay
    (fun () ->
      Queue.add renv t.clusters.(cl).returns;
      Desim.Clock.wake t.clk_cluster)

(* ------------------------------------------------------------------ *)
(* Join logic *)

let total_tcus t = Array.length t.clusters * t.cfg.Config.tcus_per_cluster

let maybe_join t =
  if t.spawn_active && t.done_count = total_tcus t && t.pending_total = 0 then begin
    t.spawn_active <- false;
    Array.iter (fun cl -> Array.iter (fun u -> u.st <- Tidle) cl.ctcus) t.clusters;
    let _, join_idx = t.spawn_region in
    (match t.profile with
    | Some p -> Profile.master_join p ~pc:join_idx ~ticks:t.cfg.Config.join_overhead
    | None -> ());
    let delay = t.cfg.Config.join_overhead * Desim.Clock.period t.clk_cluster in
    Desim.Scheduler.schedule t.sched ~delay (fun () ->
        (* master cache may hold lines the TCUs overwrote *)
        Tags.invalidate_all t.master_cache;
        Stats.count_instr t.stats ~master:true I.Join;
        t.master.F.pc <- join_idx + 1;
        t.master_st <- Mrun;
        Desim.Clock.wake t.clk_cluster;
        match t.otracer with
        | Some tr ->
          Obs.Tracer.end_span tr ~ts:(Desim.Scheduler.now t.sched) ~tid:0 ()
        | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* Cache modules and DRAM *)

let service_pkg t (m : cache_module) pk =
  (* perform the functional memory effect now and produce the reply *)
  let reply rp ~extra_delay cl =
    Desim.Scheduler.schedule t.sched ~delay:extra_delay (fun () ->
        icn_reply t ~mid:m.mid ~cl { rp; r_lc = pk.lc })
  in
  let hit_lat = t.cfg.Config.cache_hit_latency * Desim.Clock.period t.clk_cache in
  match pk.req with
  | Rload { cl; tcu; dst; ro; pc } ->
    let v = Mem.read t.memory pk.addr in
    rd_read t ~tcu ~pc ~addr:pk.addr;
    reply (Pload { tcu; dst; v; ro; addr = pk.addr; pc }) ~extra_delay:hit_lat cl
  | Rpref { cl; tcu; pc } ->
    let v = Mem.read t.memory pk.addr in
    rd_read t ~tcu ~pc ~addr:pk.addr;
    reply (Ppref { tcu; v; addr = pk.addr; pc }) ~extra_delay:hit_lat cl
  | Rstore { cl; tcu; value; nb; pc } ->
    Mem.write t.memory pk.addr value;
    rd_write t ~tcu ~pc ~addr:pk.addr;
    reply (Pack { tcu; nb; addr = pk.addr; pc }) ~extra_delay:hit_lat cl
  | Rpsm { cl; tcu; inc; dst; pc } ->
    let old = Mem.fetch_add t.memory pk.addr inc in
    t.stats.Stats.psm_ops <- t.stats.Stats.psm_ops + 1;
    (* the psm word itself is the ordering primitive, not a plain access *)
    rd_sync t ~tcu;
    reply (Ppsm { tcu; dst; old; addr = pk.addr; pc }) ~extra_delay:hit_lat cl

let dram_fill t (m : cache_module) line =
  Tags.install m.tags line;
  emit_pkg t ~stage:"dram-fill" ~kind:"line" ~addr:line ~tcu:(-1) ~pc:(-1) ~m:m.mid;
  match Hashtbl.find_opt m.mshr line with
  | None -> ()
  | Some entry ->
    Hashtbl.remove m.mshr line;
    List.iter (fun pk -> service_pkg t m pk) (List.rev entry.waiters)

let module_tick t (m : cache_module) =
  for _ = 1 to t.cfg.Config.cache_ports do
    match Queue.take_opt m.inq with
    | None -> ()
    | Some pk ->
      let line = Tags.line_of m.tags pk.addr in
      if Tags.lookup m.tags pk.addr then begin
        t.stats.Stats.cache_hits <- t.stats.Stats.cache_hits + 1;
        pk.lc.l_hit <- true;
        emit_pkg t ~stage:"cache-hit" ~kind:(pkg_kind pk.req) ~addr:pk.addr
          ~tcu:(pkg_tcu pk.req) ~pc:(pkg_pc pk.req) ~m:m.mid;
        service_pkg t m pk
      end
      else begin
        t.stats.Stats.cache_misses <- t.stats.Stats.cache_misses + 1;
        emit_pkg t ~stage:"cache-miss" ~kind:(pkg_kind pk.req) ~addr:pk.addr
          ~tcu:(pkg_tcu pk.req) ~pc:(pkg_pc pk.req) ~m:m.mid;
        match Hashtbl.find_opt m.mshr line with
        | Some entry -> entry.waiters <- pk :: entry.waiters
        | None ->
          Hashtbl.replace m.mshr line { waiters = [ pk ] };
          Queue.add (m.mid, pk) t.dram_q;
          (* Called from a cache tick (prio_tick), so Clock.wake's default
             tie-break cannot tell whether the ungated DRAM tick at this
             instant already popped.  Same-time tick events pop in
             insertion order: the slower clock inserted its event earlier;
             equal periods preserve start order (cache before dram), so
             the DRAM tick pops after us and still sees the package. *)
          Desim.Clock.wake t.clk_dram
            ~tick_at_now:
              (Desim.Clock.period t.clk_dram <= Desim.Clock.period t.clk_cache)
      end
  done

let dram_tick t =
  for _ = 1 to t.cfg.Config.dram_bandwidth do
    match Queue.take_opt t.dram_q with
    | None -> ()
    | Some (mid, pk) ->
      t.stats.Stats.dram_reads <- t.stats.Stats.dram_reads + 1;
      let m = t.modules.(mid) in
      let line = Tags.line_of m.tags pk.addr in
      let delay = t.cfg.Config.dram_latency * Desim.Clock.period t.clk_dram in
      t.dram_fills <- t.dram_fills + 1;
      Desim.Scheduler.schedule t.sched ~delay (fun () ->
          t.dram_fills <- t.dram_fills - 1;
          dram_fill t m line)
  done

(* ------------------------------------------------------------------ *)
(* TCU execution *)

let reply_info = function
  | Pload { tcu; addr; pc; _ } -> ("load", tcu, addr, pc)
  | Ppref { tcu; addr; pc; _ } -> ("pref", tcu, addr, pc)
  | Pack { tcu; nb; addr; pc } ->
    ((if nb then "store-ack" else "store"), tcu, addr, pc)
  | Ppsm { tcu; addr; pc; _ } -> ("psm", tcu, addr, pc)

(* Close the request's lifecycle: feed the per-(cluster, module) latency
   histograms and, when a span tracer is attached, emit one "mem-req"
   span per request on the originating TCU's track covering its whole
   outbox -> ICN -> module -> reply round trip. *)
let observe_lifecycle t (cl : cluster) ~kind ~tcu ~addr (lc : lifecycle) =
  let now = Desim.Scheduler.now t.sched in
  (match t.stats.Stats.req_lat with
  | None -> ()
  | Some rl ->
    let obs stage v =
      Stats.observe_req rl stage ~cluster:cl.cid ~module_:lc.l_mod v
    in
    obs Stats.Licn_wait lc.l_icn_wait;
    obs (if lc.l_hit then Stats.Lservice_hit else Stats.Lservice_miss)
      (lc.l_svc - lc.l_arrive);
    obs Stats.Lreply (now - lc.l_svc);
    obs Stats.Ltotal (now - lc.l_born));
  match t.otracer with
  | None -> ()
  | Some tr ->
    let tid = if tcu >= 0 then trace_tid_of_tcu tcu else trace_tid_memory t in
    Obs.Tracer.complete tr ~ts:lc.l_born ~dur:(now - lc.l_born) ~tid ~cat:"mem"
      ~args:
        [ ("kind", Obs.Tracer.A_str kind);
          ("addr", Obs.Tracer.A_int addr);
          ("module", Obs.Tracer.A_int lc.l_mod);
          ("hit", Obs.Tracer.A_int (if lc.l_hit then 1 else 0));
          ("icn_wait", Obs.Tracer.A_int lc.l_icn_wait);
          ("service", Obs.Tracer.A_int (lc.l_svc - lc.l_arrive));
          ("reply", Obs.Tracer.A_int (now - lc.l_svc)) ]
      "mem-req"

let deliver_reply t (cl : cluster) { rp; r_lc } =
  (let kind, tcu, addr, pc = reply_info rp in
   emit_pkg t ~stage:"reply" ~kind ~addr ~tcu ~pc ~m:(-1);
   observe_lifecycle t cl ~kind ~tcu ~addr r_lc);
  match rp with
  | Pload { tcu; dst; v; ro; addr; _ } ->
    let u = cl.ctcus.(tcu mod t.cfg.Config.tcus_per_cluster) in
    if ro then Tags.install cl.rocache addr;
    F.complete_load u.ctx dst v;
    if u.st = Tmemwait then begin
      prof_flush_mem t u r_lc ~pref:false;
      u.st <- Trun
    end
  | Ppref { tcu; v; addr; _ } -> (
    let u = cl.ctcus.(tcu mod t.cfg.Config.tcus_per_cluster) in
    match Prefetch_buffer.fill u.pbuf addr v with
    | None -> ()
    | Some dst ->
      F.complete_load u.ctx dst v;
      if u.st = Tmemwait then begin
        prof_flush_mem t u r_lc ~pref:true;
        u.st <- Trun
      end)
  | Pack { tcu; nb; _ } ->
    let u = cl.ctcus.(tcu mod t.cfg.Config.tcus_per_cluster) in
    if nb then begin
      u.pending <- u.pending - 1;
      t.pending_total <- t.pending_total - 1;
      if u.st = Tfence && u.pending = 0 then begin
        u.st <- Trun;
        rd_release t ~tcu:u.tid (* fence completes: stores drained *)
      end;
      maybe_join t
    end
    else if u.st = Tmemwait then begin
      (* blocking store ack *)
      prof_flush_mem t u r_lc ~pref:false;
      u.st <- Trun
    end
  | Ppsm { tcu; dst; old; _ } ->
    let u = cl.ctcus.(tcu mod t.cfg.Config.tcus_per_cluster) in
    if dst <> 0 then u.ctx.F.regs.(dst) <- old;
    if u.st = Tmemwait then begin
      prof_flush_mem t u r_lc ~pref:false;
      u.st <- Trun
    end

(* issue one TCU instruction; returns unit.  Assumes u.st = Trun. *)
let tcu_issue t (cl : cluster) (u : tcu) =
  let spawn_idx, join_idx = t.spawn_region in
  let pc = u.ctx.F.pc in
  if pc <= spawn_idx || pc >= join_idx then
    fail
      "TCU %d fetched pc %d outside the broadcast spawn region (%d, %d): the \
       block was not broadcast (cf. Fig. 9)"
      u.tid pc spawn_idx join_idx;
  let ins = t.img.Isa.Program.instrs.(pc) in
  (* shared-FU availability check before issue *)
  let now = Desim.Scheduler.now t.sched in
  let try_fu pool lat =
    let rec go i =
      if i >= Array.length pool then None
      else if pool.(i) <= now then begin
        pool.(i) <- now + (lat * Desim.Clock.period t.clk_cluster);
        Some lat
      end
      else go (i + 1)
    in
    go 0
  in
  let fu_needed =
    match I.fu_class_of ins with
    | I.FU_MDU ->
      let lat =
        match ins with
        | I.Mdu (I.Mul, _, _, _) -> t.cfg.Config.mul_latency
        | _ -> t.cfg.Config.div_latency
      in
      Some (cl.mdu, lat)
    | I.FU_FPU ->
      let lat =
        match ins with
        | I.Fpu1 (I.Fsqrt, _, _) -> t.cfg.Config.sqrt_latency
        | I.Fpu (I.Fdiv, _, _, _) -> t.cfg.Config.div_latency
        | _ -> t.cfg.Config.fpu_latency
      in
      Some (cl.fpu, lat)
    | _ -> None
  in
  let granted =
    match fu_needed with
    | None -> Some 0
    | Some (pool, lat) -> try_fu pool lat
  in
  match granted with
  | None ->
    (* shared unit busy: stall, retry next cycle *)
    t.stats.Stats.tcu_fuwait_cycles <- t.stats.Stats.tcu_fuwait_cycles + 1;
    (match t.profile with
    | Some p -> Profile.tcu_stall p ~tcu:u.tid ~pc
    | None -> ())
  | Some fu_lat -> (
    let read_str a = Mem.read_string t.memory a in
    let res = F.issue t.img u.ctx ~read_str in
    Stats.count_instr t.stats ~master:false ins;
    t.cluster_instrs.(cl.cid) <- t.cluster_instrs.(cl.cid) + 1;
    t.stats.Stats.tcu_busy_cycles <- t.stats.Stats.tcu_busy_cycles + 1;
    let addr_of =
      match res with
      | F.Load { addr; _ } | F.Store { addr; _ } | F.Psm { addr; _ }
      | F.Prefetch { addr } ->
        Some addr
      | _ -> None
    in
    notify_instr t ~tcu:u.tid ~pc ins ~addr:addr_of;
    (match t.profile with
    | Some p ->
      Profile.tcu_issue p ~tcu:u.tid ~pc
        ~mem:(match addr_of with Some _ -> true | None -> false)
    | None -> ());
    match res with
    | F.Done -> if fu_lat > 1 then u.st <- Tfuwait (fu_lat - 1)
    | F.Load { dst; addr; ro } ->
      if ro && Tags.lookup cl.rocache addr then begin
        t.stats.Stats.rocache_hits <- t.stats.Stats.rocache_hits + 1;
        rd_read t ~tcu:u.tid ~pc ~addr;
        F.complete_load u.ctx dst (Mem.read t.memory addr);
        if t.cfg.Config.rocache_hit_latency > 1 then
          u.st <- Tfuwait (t.cfg.Config.rocache_hit_latency - 1)
      end
      else begin
        if ro then t.stats.Stats.rocache_misses <- t.stats.Stats.rocache_misses + 1;
        match Prefetch_buffer.lookup u.pbuf addr with
        | Prefetch_buffer.Hit v ->
          t.stats.Stats.prefetch_hits <- t.stats.Stats.prefetch_hits + 1;
          F.complete_load u.ctx dst v
        | Prefetch_buffer.In_flight ->
          t.stats.Stats.prefetch_late <- t.stats.Stats.prefetch_late + 1;
          Prefetch_buffer.wait_on u.pbuf addr dst;
          u.st <- Tmemwait
        | Prefetch_buffer.Miss ->
          t.stats.Stats.prefetch_misses <- t.stats.Stats.prefetch_misses + 1;
          Queue.add
            (mk_pkg t addr (Rload { cl = cl.cid; tcu = u.tid; dst; ro; pc }))
            cl.outbox;
          u.st <- Tmemwait
      end
    | F.Store { addr; value; nb } ->
      (* rule 1 (same source, same destination order): the TCU's own store
         must not be shadowed by a stale prefetched value *)
      Prefetch_buffer.invalidate u.pbuf addr;
      Queue.add
        (mk_pkg t addr (Rstore { cl = cl.cid; tcu = u.tid; value; nb; pc }))
        cl.outbox;
      if nb then begin
        t.stats.Stats.nb_stores <- t.stats.Stats.nb_stores + 1;
        u.pending <- u.pending + 1;
        t.pending_total <- t.pending_total + 1
      end
      else u.st <- Tmemwait
    | F.Psm { dst; addr; inc } ->
      Queue.add
        (mk_pkg t addr (Rpsm { cl = cl.cid; tcu = u.tid; inc; dst; pc }))
        cl.outbox;
      u.st <- Tmemwait
    | F.Prefetch { addr } ->
      t.stats.Stats.prefetch_issued <- t.stats.Stats.prefetch_issued + 1;
      if Prefetch_buffer.start u.pbuf addr then
        Queue.add (mk_pkg t addr (Rpref { cl = cl.cid; tcu = u.tid; pc })) cl.outbox
    | F.Ps { dst; g; inc } ->
      if inc <> 0 && inc <> 1 then
        fail "TCU %d: ps increment must be 0 or 1 (got %d)" u.tid inc;
      t.stats.Stats.ps_ops <- t.stats.Stats.ps_ops + 1;
      u.st <- Tpswait;
      let delay = t.cfg.Config.ps_latency * Desim.Clock.period t.clk_cluster in
      Desim.Scheduler.schedule t.sched ~delay (fun () ->
          let old = t.globals.(g) in
          t.globals.(g) <- old + inc;
          rd_sync t ~tcu:u.tid;
          if dst <> 0 then u.ctx.F.regs.(dst) <- old;
          if u.st = Tpswait then u.st <- Trun)
    | F.Chkid { id } ->
      if id <= t.spawn_bound then begin
        t.stats.Stats.virtual_threads <- t.stats.Stats.virtual_threads + 1
      end
      else begin
        u.st <- Tdone;
        t.done_count <- t.done_count + 1;
        (match t.otracer with
        | Some tr ->
          if u.mw_since >= 0 then close_memwait_span t tr u;
          if u.run_since >= 0 then close_run_span t tr u
        | None -> ());
        maybe_join t
      end
    | F.Fence ->
      t.stats.Stats.fences <- t.stats.Stats.fences + 1;
      if u.pending > 0 then u.st <- Tfence
      else rd_release t ~tcu:u.tid (* nothing pending: completes at once *)
    | F.Output s -> Buffer.add_string t.out_buf s
    | F.Spawn _ -> fail "TCU %d executed spawn (nested spawns are serialized)" u.tid
    | F.Join -> fail "TCU %d reached the join instruction" u.tid
    | F.Halt -> fail "TCU %d executed halt" u.tid
    | F.Mfg _ | F.Mtg _ -> fail "TCU %d executed serial-only mfg/mtg" u.tid)

(* Psm replies need the destination register; carry it in the request. *)

let tcu_tick t (cl : cluster) (u : tcu) =
  (* span tracking: open a memwait span on the first waiting tick, close
     it on the first tick in any other state *)
  (match t.otracer with
  | None -> ()
  | Some tr -> (
    match u.st with
    | Tmemwait | Tfence ->
      if u.mw_since < 0 then u.mw_since <- Desim.Scheduler.now t.sched
    | _ -> if u.mw_since >= 0 then close_memwait_span t tr u));
  match u.st with
  | Tidle | Tdone -> ()
  | Trun -> tcu_issue t cl u
  | Tfuwait n ->
    t.stats.Stats.tcu_busy_cycles <- t.stats.Stats.tcu_busy_cycles + 1;
    (match t.profile with
    | Some p -> Profile.tcu_wait p ~tcu:u.tid Profile.Compute
    | None -> ());
    u.st <- (if n <= 1 then Trun else Tfuwait (n - 1))
  | Tmemwait ->
    t.stats.Stats.tcu_memwait_cycles <- t.stats.Stats.tcu_memwait_cycles + 1;
    (* open-episode tick: direct field bump, this is the hottest hook *)
    (match t.profile with
    | Some p -> p.Profile.mw_ticks.(u.tid) <- p.Profile.mw_ticks.(u.tid) + 1
    | None -> ())
  | Tpswait ->
    t.stats.Stats.tcu_pswait_cycles <- t.stats.Stats.tcu_pswait_cycles + 1;
    (match t.profile with
    | Some p -> Profile.tcu_wait p ~tcu:u.tid Profile.Fence_ps
    | None -> ())
  | Tfence ->
    t.stats.Stats.tcu_memwait_cycles <- t.stats.Stats.tcu_memwait_cycles + 1;
    (match t.profile with
    | Some p -> Profile.tcu_wait p ~tcu:u.tid Profile.Fence_ps
    | None -> ());
    if u.pending = 0 then begin
      u.st <- Trun;
      rd_release t ~tcu:u.tid
    end

let cluster_tick t (cl : cluster) =
  if t.spawn_active || (not (Queue.is_empty cl.returns)) || not (Queue.is_empty cl.outbox)
  then begin
    (* phase 1: accept returning packages *)
    for _ = 1 to t.cfg.Config.cluster_return_width do
      match Queue.take_opt cl.returns with
      | Some rp -> deliver_reply t cl rp
      | None -> ()
    done;
    (* phase 2: step TCUs, rotating priority *)
    if t.spawn_active then begin
      let n = Array.length cl.ctcus in
      for k = 0 to n - 1 do
        tcu_tick t cl cl.ctcus.((cl.rr + k) mod n)
      done;
      cl.rr <- (cl.rr + 1) mod n
    end;
    (* phase 3: inject into the ICN *)
    for _ = 1 to t.cfg.Config.cluster_inject_width do
      match Queue.take_opt cl.outbox with
      | Some pk -> icn_send t ~cl:cl.cid pk
      | None -> ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Master TCU *)

let master_tick t =
  match t.master_st with
  | Mhalted | Mmemwait | Mspawnwait -> ()
  | Mstall n ->
    (match t.profile with Some p -> Profile.master_wait p | None -> ());
    t.master_st <- (if n <= 1 then Mrun else Mstall (n - 1))
  | Mrun -> (
    let pc = t.master.F.pc in
    let ins = t.img.Isa.Program.instrs.(pc) in
    (* master handles mfg/mtg directly *)
    let read_str a = Mem.read_string t.memory a in
    let res = F.issue t.img t.master ~read_str in
    Stats.count_instr t.stats ~master:true ins;
    let addr_of =
      match res with
      | F.Load { addr; _ } | F.Store { addr; _ } -> Some addr
      | _ -> None
    in
    notify_instr t ~tcu:(-1) ~pc ins ~addr:addr_of;
    (match t.profile with
    | Some p ->
      Profile.master_issue p ~pc
        ~mem:(match addr_of with Some _ -> true | None -> false)
    | None -> ());
    match res with
    | F.Done -> (
      (* multi-cycle master ALU ops *)
      match I.fu_class_of ins with
      | I.FU_MDU ->
        let lat =
          match ins with
          | I.Mdu (I.Mul, _, _, _) -> t.cfg.Config.mul_latency
          | _ -> t.cfg.Config.div_latency
        in
        if lat > 1 then begin
          prof_master_stall t Profile.Compute;
          t.master_st <- Mstall (lat - 1)
        end
      | I.FU_FPU ->
        let lat =
          match ins with
          | I.Fpu1 (I.Fsqrt, _, _) -> t.cfg.Config.sqrt_latency
          | _ -> t.cfg.Config.fpu_latency
        in
        if lat > 1 then begin
          prof_master_stall t Profile.Compute;
          t.master_st <- Mstall (lat - 1)
        end
      | _ -> ())
    | F.Load { dst; addr; ro = _ } ->
      if Tags.lookup t.master_cache addr then begin
        t.stats.Stats.master_cache_hits <- t.stats.Stats.master_cache_hits + 1;
        F.complete_load t.master dst (Mem.read t.memory addr);
        if t.cfg.Config.master_cache_hit_latency > 1 then begin
          prof_master_stall t Profile.Cache_hit;
          t.master_st <- Mstall (t.cfg.Config.master_cache_hit_latency - 1)
        end
      end
      else begin
        t.stats.Stats.master_cache_misses <- t.stats.Stats.master_cache_misses + 1;
        t.master_st <- Mmemwait;
        let delay =
          (t.cfg.Config.dram_latency * Desim.Clock.period t.clk_dram)
          + t.cfg.Config.master_cache_hit_latency
        in
        t.stats.Stats.dram_reads <- t.stats.Stats.dram_reads + 1;
        let t_miss = Desim.Scheduler.now t.sched in
        Desim.Scheduler.schedule t.sched ~delay (fun () ->
            Tags.install t.master_cache addr;
            F.complete_load t.master dst (Mem.read t.memory addr);
            (match t.profile with
            | Some p ->
              (* the master was parked the whole window; charge it as
                 DRAM wait, in cluster-grid ticks *)
              Profile.master_mem p
                ~ticks:
                  ((Desim.Scheduler.now t.sched - t_miss)
                  / max 1 (Desim.Clock.period t.clk_cluster))
            | None -> ());
            if t.master_st = Mmemwait then t.master_st <- Mrun;
            Desim.Clock.wake t.clk_cluster)
      end
    | F.Store { addr; value; nb = _ } ->
      (* write-through master cache; write buffer absorbs the latency *)
      Mem.write t.memory addr value;
      Tags.install t.master_cache addr
    | F.Mfg { dst; g } -> if dst <> 0 then t.master.F.regs.(dst) <- t.globals.(g)
    | F.Mtg { g; src } -> t.globals.(g) <- src
    | F.Spawn { lo; hi } ->
      t.stats.Stats.spawns <- t.stats.Stats.spawns + 1;
      let spawn_idx = pc in
      let join_idx =
        match Hashtbl.find_opt t.join_of spawn_idx with
        | Some j -> j
        | None -> fail "spawn at %d has no join" spawn_idx
      in
      t.master_st <- Mspawnwait;
      (match t.profile with
      | Some p -> Profile.master_spawn p ~pc ~ticks:t.cfg.Config.spawn_overhead
      | None -> ());
      let delay = t.cfg.Config.spawn_overhead * Desim.Clock.period t.clk_cluster in
      Desim.Scheduler.schedule t.sched ~delay (fun () ->
          t.spawn_region <- (spawn_idx, join_idx);
          t.spawn_bound <- hi;
          t.globals.(Isa.Reg.g_spawn) <- lo;
          t.done_count <- 0;
          t.spawn_active <- true;
          (match t.racedet with
          | Some rd -> Racedetect.on_spawn rd
          | None -> ());
          let now = Desim.Scheduler.now t.sched in
          (match t.otracer with
          | Some tr ->
            Obs.Tracer.begin_span tr ~ts:now ~tid:0 ~cat:"spawn"
              ~args:
                [ ("lo", Obs.Tracer.A_int lo); ("hi", Obs.Tracer.A_int hi);
                  ("threads", Obs.Tracer.A_int (hi - lo + 1)) ]
              "spawn"
          | None -> ());
          Array.iter
            (fun cl ->
              Array.iter
                (fun u ->
                  F.copy_regs ~src:t.master ~dst:u.ctx;
                  u.ctx.F.pc <- spawn_idx + 1;
                  u.st <- Trun;
                  if t.otracer <> None then u.run_since <- now;
                  Prefetch_buffer.clear u.pbuf)
                cl.ctcus)
            t.clusters;
          Desim.Clock.wake t.clk_cluster)
    | F.Join -> fail "master reached join without spawn (postpass should reject)"
    | F.Output s -> Buffer.add_string t.out_buf s
    | F.Halt ->
      t.master_st <- Mhalted;
      t.halted <- true;
      Desim.Scheduler.stop t.sched ()
    | F.Fence -> () (* master stores are write-through: nothing pending *)
    | F.Ps _ -> fail "master executed ps (parallel-only)"
    | F.Psm _ -> fail "master executed psm (parallel-only)"
    | F.Chkid _ -> fail "master executed chkid"
    | F.Prefetch _ -> () (* master prefetch: no-op *))

(* ------------------------------------------------------------------ *)

type domain = Clusters | Icn | Caches | Dram

let clock_of t = function
  | Clusters -> t.clk_cluster
  | Icn -> t.clk_icn
  | Caches -> t.clk_cache
  | Dram -> t.clk_dram

let set_period t d p = Desim.Clock.set_period (clock_of t d) p
let period t d = Desim.Clock.period (clock_of t d)

(* ------------------------------------------------------------------ *)
(* Clock gating (paper §III-C: the event engine skips inactive parts).
   Each domain sleeps when it provably has no work this tick and is woken
   by the events that create work.  Clock.wake resumes on the period grid,
   so gating never changes simulated times, stats or traces — only the
   host-side event count. *)

let set_gating t on =
  if t.started then fail "set_gating must be called before the first run";
  t.gating <- on

let gating_enabled t = t.gating
let domain_sleeping t d = Desim.Clock.sleeping (clock_of t d)

let cluster_domain_idle t =
  (not t.spawn_active)
  && (match t.master_st with
     | Mmemwait | Mspawnwait | Mhalted -> true  (* parked on a callback *)
     | Mrun | Mstall _ -> false (* tick-driven *))
  && Array.for_all
       (fun cl -> Queue.is_empty cl.outbox && Queue.is_empty cl.returns)
       t.clusters

let cache_domain_idle t =
  Queue.is_empty t.dram_q
  && Array.for_all
       (fun m -> Queue.is_empty m.inq && Hashtbl.length m.mshr = 0)
       t.modules

let dram_domain_idle t = Queue.is_empty t.dram_q && t.dram_fills = 0

(* Per-domain gating effectiveness: fired ticks, the estimate of ticks
   gated away, and the current period, as sim.clock.* metrics. *)
let export_clocks t reg =
  List.iter
    (fun d ->
      let c = clock_of t d in
      let labels = [ ("domain", Desim.Clock.name c) ] in
      Obs.Metrics.inc
        ~by:(Desim.Clock.cycles c)
        (Obs.Metrics.counter reg ~labels "sim.clock.ticks");
      Obs.Metrics.inc
        ~by:(Desim.Clock.skipped_ticks c)
        (Obs.Metrics.counter reg ~labels "sim.clock.skipped_ticks");
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~labels "sim.clock.period")
        (float_of_int (Desim.Clock.period c)))
    [ Clusters; Icn; Caches; Dram ]

let add_activity_plugin t ~name ~interval hook =
  ignore name;
  (* plug-ins sample on cluster ticks: keep that clock free-running so
     sampling times match an unplugged run of the same schedule *)
  t.has_plugin <- true;
  Desim.Clock.wake t.clk_cluster;
  Desim.Clock.on_tick ~phase:2 t.clk_cluster (fun cycle ->
      if cycle > 0 && cycle mod interval = 0 then hook t cycle)

let add_filter_plugin t f = t.filters <- f :: t.filters

let filter_reports t =
  List.rev_map (fun f -> (f.Plugin.f_name, f.Plugin.f_report ())) t.filters

(* Hooks return a detach thunk so finite-length consumers (e.g. a trace
   with a line limit) can unhook themselves instead of being filtered on
   every subsequent instruction.  Detaching mid-notification is safe: the
   in-progress iteration walks the old (immutable) list. *)
let add_instr_hook t f =
  t.tracers <- f :: t.tracers;
  fun () -> t.tracers <- List.filter (fun g -> g != f) t.tracers

let add_package_hook t f =
  t.pkg_tracers <- f :: t.pkg_tracers;
  fun () -> t.pkg_tracers <- List.filter (fun g -> g != f) t.pkg_tracers

let on_instr t f = ignore (add_instr_hook t f : unit -> unit)
let on_package t f = ignore (add_package_hook t f : unit -> unit)

(* ------------------------------------------------------------------ *)
(* Race detector attachment (dynamic layer of the race checker).  The
   detector observes accesses at service time and syncs at completion
   time; when detached every hook is a single option check. *)

let attach_racecheck t =
  match t.racedet with
  | Some rd -> rd
  | None ->
    let rd = Racedetect.create () in
    t.racedet <- Some rd;
    rd

let detach_racecheck t = t.racedet <- None
let racecheck t = t.racedet

(* ------------------------------------------------------------------ *)
(* Cycle-accounting profiler attachment.  Purely passive: the profiler
   observes state transitions the machine makes anyway, so attaching it
   never perturbs cycles, stats or traces (unlike activity plugins it
   does not disable clock gating). *)

let attach_profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let base_ticks =
      Desim.Clock.cycles t.clk_cluster + Desim.Clock.skipped_ticks t.clk_cluster
    in
    let p =
      Profile.create ~n_tcus:(total_tcus t)
        ~tcus_per_cluster:t.cfg.Config.tcus_per_cluster
        ~n_instrs:(Array.length t.img.Isa.Program.instrs)
        ~base_ticks
    in
    t.profile <- Some p;
    p

let detach_profile t = t.profile <- None
let profile t = t.profile

let profile_report t =
  Option.map
    (fun p ->
      let total_ticks =
        Desim.Clock.cycles t.clk_cluster
        + Desim.Clock.skipped_ticks t.clk_cluster
        - Profile.base_ticks p
      in
      Profile.report p ~total_ticks ~locs:t.img.Isa.Program.locs)
    t.profile

(* ------------------------------------------------------------------ *)
(* Live telemetry stream attachment.  Like the profiler, the heartbeat
   producer is passive: it registers one more tick handler on the
   cluster clock — which ticks anyway whenever it is awake — and samples
   counters the machine maintains regardless.  It never wakes a clock or
   schedules an event (unlike activity plug-ins it leaves clock gating
   untouched), so a streamed run is bit-identical to an unstreamed one
   including the host-side event count. *)

let attach_stream ?(heartbeat_cycles = 10_000) t s =
  if t.started then fail "attach_stream must be called before the first run";
  if heartbeat_cycles <= 0 then
    fail "attach_stream: heartbeat_cycles must be positive";
  (match t.hb with
  | Some _ -> fail "attach_stream: a stream is already attached"
  | None -> ());
  Obs.Stream.emit s ~typ:"run.start" ~t:(Desim.Scheduler.now t.sched)
    [
      ("config", Obs.Json.Str t.cfg.Config.name);
      ("clusters", Obs.Json.Int t.cfg.Config.num_clusters);
      ("tcus", Obs.Json.Int (total_tcus t));
      ("instructions", Obs.Json.Int (Array.length t.img.Isa.Program.instrs));
      ("heartbeat_cycles", Obs.Json.Int heartbeat_cycles);
    ];
  t.hb <-
    Some
      {
        hb_stream = s;
        hb_interval = heartbeat_cycles;
        hb_next = heartbeat_cycles;
        hb_rollup = Obs.Stream.rollup ~window:16 s "sim.heartbeat";
        hb_last_events = 0;
        hb_last_us = Obs.Tracer.host_now_us ();
        hb_last_busy = 0;
        hb_last_memwait = 0;
        hb_done = false;
      }

let detach_stream t = t.hb <- None
let stream t = Option.map (fun h -> h.hb_stream) t.hb

(* One heartbeat: grid cycle, host events/sec over the window, currently
   gated domains, and the fraction of TCU-cycles stalled on memory in
   the window — all from counters the run maintains anyway. *)
let stream_heartbeat t h cycle =
  let now = Desim.Scheduler.now t.sched in
  let events = Desim.Scheduler.events_processed t.sched in
  let us = Obs.Tracer.host_now_us () in
  let d_secs = float_of_int (us - h.hb_last_us) /. 1e6 in
  let rate =
    if d_secs > 0.0 then float_of_int (events - h.hb_last_events) /. d_secs
    else 0.0
  in
  let gated =
    List.fold_left
      (fun acc c -> if Desim.Clock.sleeping c then acc + 1 else acc)
      0
      [ t.clk_cluster; t.clk_icn; t.clk_cache; t.clk_dram ]
  in
  let busy = t.stats.Stats.tcu_busy_cycles in
  let mw = t.stats.Stats.tcu_memwait_cycles in
  let d_busy = busy - h.hb_last_busy and d_mw = mw - h.hb_last_memwait in
  let memwait_frac =
    if d_busy + d_mw = 0 then 0.0
    else float_of_int d_mw /. float_of_int (d_busy + d_mw)
  in
  h.hb_last_events <- events;
  h.hb_last_us <- us;
  h.hb_last_busy <- busy;
  h.hb_last_memwait <- mw;
  Obs.Stream.emit h.hb_stream ~typ:"sim.heartbeat" ~t:now
    [
      ("cycle", Obs.Json.Int cycle);
      ("events", Obs.Json.Int events);
      ("events_per_sec", Obs.Json.Float rate);
      ("gated_domains", Obs.Json.Int gated);
      ("memwait_frac", Obs.Json.Float memwait_frac);
    ];
  Obs.Stream.observe h.hb_rollup ~t:now
    [
      ("events_per_sec", rate);
      ("gated_domains", float_of_int gated);
      ("memwait_frac", memwait_frac);
    ]

(* The per-run summary record (and the stream's drop count, the final
   word on the overflow policy).  Emitted once, after the halting run. *)
let stream_run_done t h =
  h.hb_done <- true;
  Obs.Stream.close_rollup h.hb_rollup;
  Obs.Stream.emit h.hb_stream ~typ:"run.done" ~t:(Desim.Scheduler.now t.sched)
    [
      ("cycles", Obs.Json.Int (Desim.Scheduler.now t.sched));
      ("instructions", Obs.Json.Int (Stats.total_instrs t.stats));
      ("events", Obs.Json.Int (Desim.Scheduler.events_processed t.sched));
      ("output_bytes", Obs.Json.Int (Buffer.length t.out_buf));
      ("halted", Obs.Json.Bool t.halted);
      ("dropped", Obs.Json.Int (Obs.Stream.dropped h.hb_stream));
    ]

(* ------------------------------------------------------------------ *)
(* Span tracer attachment *)

let tracer t = t.otracer

let attach_tracer t tr =
  t.otracer <- Some tr;
  Obs.Tracer.name_process tr ~pid:1 "xmtsim (ts = simulated time units)";
  Obs.Tracer.name_thread tr ~pid:1 ~tid:0 "MTCU";
  Array.iter
    (fun cl ->
      Array.iter
        (fun u ->
          Obs.Tracer.name_thread tr ~pid:1 ~tid:(trace_tid_of_tcu u.tid)
            (Printf.sprintf "TCU %d" u.tid))
        cl.ctcus)
    t.clusters;
  Obs.Tracer.name_thread tr ~pid:1 ~tid:(trace_tid_memory t) "memory";
  Obs.Tracer.name_thread tr ~pid:1 ~tid:(trace_tid_governor t) "governor";
  (* package hops as instant events on the originating TCU's track *)
  on_package t (fun ev ->
      let tid =
        if ev.pe_tcu >= 0 then trace_tid_of_tcu ev.pe_tcu else trace_tid_memory t
      in
      Obs.Tracer.instant tr ~ts:ev.pe_time ~tid ~cat:"pkg"
        ~args:
          [ ("kind", Obs.Tracer.A_str ev.pe_kind);
            ("addr", Obs.Tracer.A_int ev.pe_addr);
            ("module", Obs.Tracer.A_int ev.pe_module) ]
        ev.pe_stage)

(** Close any spans still open at the current simulated time (waiting
    TCUs, an active spawn region).  Call once, after the last [run],
    before serializing the trace. *)
let flush_tracer t =
  match t.otracer with
  | None -> ()
  | Some tr ->
    Array.iter
      (fun cl ->
        Array.iter
          (fun u ->
            if u.mw_since >= 0 then close_memwait_span t tr u;
            if u.run_since >= 0 then close_run_span t tr u)
          cl.ctcus)
      t.clusters;
    if t.spawn_active then
      Obs.Tracer.end_span tr ~ts:(Desim.Scheduler.now t.sched) ~tid:0 ()

(* ------------------------------------------------------------------ *)

let start t =
  if not t.started then begin
    t.started <- true;
    (* streaming heartbeats ride the cluster clock's existing phase-0
       tick handler (fired ticks only — a gated-off domain emits none),
       so attaching them changes neither event scheduling nor gating.
       The check is inlined into the master-tick closure rather than
       registered as its own handler: an extra handler costs a dispatch
       on every fired tick (measured ~4% on serial workloads), while the
       inlined compare is noise — and unstreamed runs keep the exact
       pre-existing closure, not even an option check. *)
    (match t.hb with
    | None -> Desim.Clock.on_tick ~phase:0 t.clk_cluster (fun _ -> master_tick t)
    | Some h ->
      (* [>=] rather than [mod] so a boundary slept through (clock
         gating) still yields a heartbeat on the next fired tick *)
      Desim.Clock.on_tick ~phase:0 t.clk_cluster (fun cycle ->
          if cycle >= h.hb_next then begin
            h.hb_next <- cycle + h.hb_interval;
            stream_heartbeat t h cycle
          end;
          master_tick t));
    Desim.Clock.on_tick ~phase:1 t.clk_cluster (fun _ ->
        Array.iter (cluster_tick t) t.clusters);
    Desim.Clock.on_tick ~phase:0 t.clk_cache (fun _ ->
        Array.iter (module_tick t) t.modules);
    Desim.Clock.on_tick ~phase:0 t.clk_dram (fun _ -> dram_tick t);
    (* gating checks run after every work phase of the tick (activity
       plug-ins register at phase 2; cluster gating is disabled outright
       while one is attached, see add_activity_plugin) *)
    Desim.Clock.on_tick ~phase:100 t.clk_cluster (fun _ ->
        if t.gating && (not t.has_plugin) && cluster_domain_idle t then
          Desim.Clock.sleep t.clk_cluster);
    Desim.Clock.on_tick ~phase:100 t.clk_cache (fun _ ->
        if t.gating && cache_domain_idle t then Desim.Clock.sleep t.clk_cache);
    Desim.Clock.on_tick ~phase:100 t.clk_dram (fun _ ->
        if t.gating && dram_domain_idle t then Desim.Clock.sleep t.clk_dram);
    Desim.Clock.start t.clk_cluster;
    Desim.Clock.start t.clk_icn;
    Desim.Clock.start t.clk_cache;
    Desim.Clock.start t.clk_dram;
    (* the ICN clock has no tick handlers — transfers are their own
       scheduled events — so under gating it sleeps for the whole run *)
    if t.gating then Desim.Clock.sleep t.clk_icn
  end

let run ?max_cycles t =
  start t;
  let budget =
    match max_cycles with Some m -> m | None -> t.cfg.Config.max_cycles
  in
  Desim.Scheduler.stop t.sched ~time:(Desim.Scheduler.now t.sched + budget) ();
  let (_ : Desim.Scheduler.outcome) = Desim.Scheduler.run t.sched in
  t.stats.Stats.cycles <- Desim.Scheduler.now t.sched;
  (match t.hb with
  | Some h when t.halted && not h.hb_done -> stream_run_done t h
  | _ -> ());
  { output = Buffer.contents t.out_buf; cycles = Desim.Scheduler.now t.sched;
    halted = t.halted }

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

type snapshot = {
  s_mem : Mem.t;
  s_regs : int array;
  s_fregs : float array;
  s_pc : int;
  s_globals : int array;
  s_output : string;
  (* telemetry state: restoring must keep post-restore histograms and
     counters consistent with the pre-checkpoint run *)
  s_stats : Stats.t;
  s_icn_backlog : int array array;
      (** icn_next_free relative to the checkpoint time (>= 0): residual
          merge contention survives the save/restore boundary *)
  s_cluster_instrs : int array;
}

let make_snapshot ~mem ~regs ~fregs ~pc ~globals ~output =
  { s_mem = mem; s_regs = regs; s_fregs = fregs; s_pc = pc; s_globals = globals;
    s_output = output; s_stats = Stats.create ();
    s_icn_backlog = [||]; s_cluster_instrs = [||] }

let quiescent t =
  (not t.spawn_active)
  && (match t.master_st with Mrun | Mhalted -> true | _ -> false)
  && t.pending_total = 0

let is_quiescent = quiescent

(* Run in small increments until the machine reaches a quiescent point (a
   serial instruction boundary with nothing in flight) or halts. *)
let run_to_quiescent t =
  (* single-cycle steps: the serial windows between spawns are narrow and
     a coarser stride would overshoot them all the way to the halt *)
  let guard = ref 0 in
  while (not (quiescent t)) && (not t.halted) && !guard < 10_000_000 do
    incr guard;
    ignore (run ~max_cycles:1 t)
  done;
  if not (quiescent t) then fail "machine did not reach a quiescent point"

let checkpoint t =
  if not (quiescent t) then
    fail "checkpoint requires a quiescent machine (serial mode, no in-flight ops)";
  {
    s_mem = Mem.snapshot t.memory;
    s_regs = Array.copy t.master.F.regs;
    s_fregs = Array.copy t.master.F.fregs;
    s_pc = t.master.F.pc;
    s_globals = Array.copy t.globals;
    s_output = Buffer.contents t.out_buf;
    s_stats = Stats.copy t.stats;
    s_icn_backlog = icn_backlog t;
    s_cluster_instrs = Array.copy t.cluster_instrs;
  }

let restore t s =
  if not (quiescent t) then fail "restore requires a quiescent machine";
  Mem.restore t.memory s.s_mem;
  (* snapshots must survive register-file size changes: copy what fits *)
  Array.blit s.s_regs 0 t.master.F.regs 0
    (min (Array.length s.s_regs) (Array.length t.master.F.regs));
  Array.blit s.s_fregs 0 t.master.F.fregs 0
    (min (Array.length s.s_fregs) (Array.length t.master.F.fregs));
  t.master.F.pc <- s.s_pc;
  Array.blit s.s_globals 0 t.globals 0 (Array.length t.globals);
  Buffer.clear t.out_buf;
  Buffer.add_string t.out_buf s.s_output;
  t.master_st <- Mrun;
  t.halted <- false;
  (* a gated machine may have parked the cluster clock (e.g. after the
     halt that preceded this restore); Mrun needs it ticking again.  The
     wake is grid-aligned, so the resume time matches an ungated run. *)
  Desim.Clock.wake ~tick_at_now:true t.clk_cluster;
  Tags.invalidate_all t.master_cache;
  (* telemetry state: counters/histograms continue from the checkpoint;
     residual ICN merge contention is re-anchored at the current time.
     make_snapshot-produced snapshots (functional fast-forward) carry
     empty arrays and leave the fresh machine's state as created. *)
  Stats.blit ~src:s.s_stats ~dst:t.stats;
  (match t.stats.Stats.req_lat with
  | None ->
    t.stats.Stats.req_lat <-
      Some
        (Stats.make_req_latency ~clusters:t.cfg.Config.num_clusters
           ~modules:t.cfg.Config.num_cache_modules)
  | Some _ -> ());
  (let now = Desim.Scheduler.now t.sched in
   Array.iteri
     (fun m sides ->
       Array.iteri
         (fun side rel ->
           if m < Array.length t.icn_next_free
              && side < Array.length t.icn_next_free.(m)
           then t.icn_next_free.(m).(side) <- now + rel)
         sides)
     s.s_icn_backlog);
  Array.blit s.s_cluster_instrs 0 t.cluster_instrs 0
    (min (Array.length s.s_cluster_instrs) (Array.length t.cluster_instrs))

let snapshot_to_file s path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc s [])

let snapshot_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> (Marshal.from_channel ic : snapshot))
