(** The cycle-accurate XMT machine (paper §III, Fig. 1, Fig. 3).

    Execution-driven simulation: TCUs and the Master TCU ask the
    functional model to issue instructions; memory operations travel as
    packages through the cluster outbox, the interconnection network, the
    hashed shared cache modules and DRAM, with contention and queueing at
    each stage.  Values are read/written {e when the package is serviced},
    so relaxed-memory outcomes (Fig. 6) are faithful.

    TCUs may only fetch instructions inside the broadcast spawn-join
    region; violating this (e.g. compiling with the Fig. 9 repair
    disabled) raises {!Sim_error} — the hardware constraint that makes the
    compiler post-pass load-bearing. *)

type t

exception Sim_error of string

type result = {
  output : string;
  cycles : int;
  halted : bool;  (** false when the run hit the cycle budget *)
}

val create : ?config:Config.t -> Isa.Program.image -> t

(** Run to completion (halt) or until [max_cycles]. *)
val run : ?max_cycles:int -> t -> result

val config : t -> Config.t
val stats : t -> Stats.t
val output : t -> string
val cycles : t -> int
val mem : t -> Mem.t

(** Diagnostics: per-(module, subtree-side) ICN merge backlog (cycles) and
    per-module input queue depths. *)
val icn_backlog : t -> int array array

val module_queue_depths : t -> int array

(** Executed TCU instructions per cluster — the spatial activity behind
    the floorplan visualization and per-cluster power attribution. *)
val cluster_activity : t -> int array
val globals : t -> int array  (** the global PS register file *)

(** Host-side throughput: events processed by the desim scheduler so far
    (events/sec = this over wall-clock). *)
val events_processed : t -> int

(* -------- runtime control (activity plug-in interface, §III-B) -------- *)

type domain = Clusters | Icn | Caches | Dram

val set_period : t -> domain -> int -> unit
val period : t -> domain -> int

(* -------- clock gating (§III-C) -------- *)

(** Enable/disable clock gating (on by default).  When on, each clock
    domain sleeps while it provably has no work (caches: all input queues,
    MSHRs and the DRAM queue empty; DRAM: queue empty and no fill in
    flight; clusters: no spawn active, outboxes/returns empty and the
    master parked on a scheduled callback; ICN: always — transfers are
    their own events) and is woken, on its period grid, by the events that
    create work.  Gated and ungated runs produce bit-identical output,
    cycle counts, stats and traces; only the host-side event count
    ({!events_processed}) differs.  Must be called before the first
    {!run}; raises {!Sim_error} afterwards. *)
val set_gating : t -> bool -> unit

val gating_enabled : t -> bool

(** Is the domain's clock currently gated off?  The DVFS governor records
    this on its decisions so a throttled-while-asleep domain is not
    double-counted. *)
val domain_sleeping : t -> domain -> bool

(** Export per-domain clock activity into a metrics registry:
    [sim.clock.ticks{domain}] and [sim.clock.skipped_ticks{domain}]
    counters (fired ticks vs. the estimate of ticks gating skipped) and
    the [sim.clock.period{domain}] gauge. *)
val export_clocks : t -> Obs.Metrics.t -> unit

(** [add_activity_plugin t ~name ~interval hook] — [hook t cycle] runs
    every [interval] cluster-clock cycles during the simulation. *)
val add_activity_plugin : t -> name:string -> interval:int -> (t -> int -> unit) -> unit

val add_filter_plugin : t -> Plugin.filter -> unit
val filter_reports : t -> (string * string) list

(** Trace hook: called for every issued instruction.
    [tcu] is [-1] for the Master TCU. *)
val on_instr : t -> (tcu:int -> pc:int -> Isa.Instr.t -> time:int -> unit) -> unit

(** Like {!on_instr} but returns a detach thunk; consumers with a line
    limit unhook themselves so the hot loop stops paying for them. *)
val add_instr_hook :
  t -> (tcu:int -> pc:int -> Isa.Instr.t -> time:int -> unit) -> unit -> unit

(** Cycle-accurate trace level (§III-E): one event per station a package
    passes through ("icn-inject", "module-arrive", "cache-hit"/"cache-miss",
    "dram-fill", "reply"). *)
type package_event = {
  pe_time : int;
  pe_stage : string;
  pe_kind : string;
  pe_addr : int;
  pe_tcu : int;  (** -1 when not attributable (e.g. a line fill) *)
  pe_pc : int;
      (** pc of the issuing instruction, so every memory-touching event
          carries (address, tcu, pc); -1 when not attributable *)
  pe_module : int;  (** -1 for reply deliveries *)
}

val on_package : t -> (package_event -> unit) -> unit

(** Like {!on_package} but returns a detach thunk. *)
val add_package_hook : t -> (package_event -> unit) -> unit -> unit

(* -------- dynamic race detection -------- *)

(** Attach a shadow-memory race detector ({!Racedetect}); idempotent —
    returns the already-attached detector if there is one.  The machine
    feeds it every shared-memory access at service time (load, prefetch,
    store, with (address, tcu, pc)) plus acquire/release events at
    [ps]/[psm] and fence completions.  When no detector is attached the
    hooks cost one option check ([--racecheck] off = measured-zero
    overhead, see [bench/exp_racecheck]). *)
val attach_racecheck : t -> Racedetect.t

val detach_racecheck : t -> unit

(** The attached detector, if any. *)
val racecheck : t -> Racedetect.t option

(* -------- cycle-accounting profiler (CPI stacks) -------- *)

(** Attach (or return the already-attached) cycle-accounting profiler.
    From this point on every TCU and master cycle is attributed to one
    CPI-stack bucket (compute, spawn/join, ICN, cache hit, DRAM,
    prefetch-covered, fence/ps) and to the PC that caused it.  The
    profiler is purely passive — it observes state transitions the
    machine makes anyway — so attaching it never changes cycles, stats
    or traces (enforced by [test_profile] and a CI determinism step). *)
val attach_profile : t -> Profile.t

val detach_profile : t -> unit

(** The attached profiler, if any. *)
val profile : t -> Profile.t option

(** Fold the raw per-cycle accounting into a report: per-TCU /
    per-cluster / aggregate CPI stacks over the ticks elapsed since
    attachment, joined with the image's source map ([xmtcc -g]) for
    per-line and per-function attribution.  [None] if no profiler is
    attached. *)
val profile_report : t -> Profile.report option

(* -------- live telemetry streaming (xmt.events.v1) -------- *)

(** Attach an {!Obs.Stream} and emit a [sim.heartbeat] record every
    [heartbeat_cycles] cluster cycles (default 10000): grid cycle, host
    events/sec over the window, currently gated domain count and the
    window's memory-wait fraction, plus a [run.start] record now, a
    [run.done] summary when the machine halts, and [window.close]
    rollups every 16 heartbeats.  The producer is passive — it samples
    counters the run maintains anyway from the cluster clock's existing
    tick events, never waking a clock or scheduling an event — so a
    streamed run is bit-identical to an unstreamed one, {e including}
    the host-side event count (unlike activity plug-ins, clock gating
    stays untouched; a gated-off machine simply emits no heartbeats
    while it sleeps).  Must be called before the first {!run}; raises
    {!Sim_error} afterwards or when a stream is already attached. *)
val attach_stream : ?heartbeat_cycles:int -> t -> Obs.Stream.t -> unit

val detach_stream : t -> unit

(** The attached stream, if any. *)
val stream : t -> Obs.Stream.t option

(* -------- span tracing (Chrome trace-event JSON) -------- *)

(** Attach a span tracer.  Simulated activity is emitted on process 1
    (one thread per TCU, tid = TCU id + 1, the Master TCU on tid 0):
    spawn/join phases as nested B/E spans, per-TCU memory-wait and
    thread-run intervals as complete (X) spans, package hops as instant
    events, and one "mem-req" span per completed memory request covering
    its outbox -> ICN -> module -> reply round trip (with per-stage
    durations in the span args).  Timestamps are simulated time units. *)
val attach_tracer : t -> Obs.Tracer.t -> unit

(** The attached span tracer, if any — activity plug-ins (e.g. the DVFS
    governor) use it to make their decisions visible in the trace. *)
val tracer : t -> Obs.Tracer.t option

(** Trace thread id reserved for runtime-control (governor) events. *)
val trace_tid_governor : t -> int

(** Close spans still open (waiting TCUs, an active spawn) at the current
    simulated time.  Call once after the final [run], before writing the
    trace file. *)
val flush_tracer : t -> unit

(* -------- checkpoints (§III-E) -------- *)

type snapshot

(** Is the machine at a point where a checkpoint is legal (serial mode,
    nothing in flight)?  True before the first [run] and after a halt. *)
val is_quiescent : t -> bool

(** Keep running in small increments until the machine is quiescent or
    halted — used to take the "checkpoint at a user-given point" of
    §III-E: run to the requested cycle, then to the next quiescent
    boundary, then {!checkpoint}. *)
val run_to_quiescent : t -> unit

(** Build a snapshot from raw architectural state — used by
    {!Functional_mode.snapshot} to hand a functionally-fast-forwarded
    state to the cycle-accurate machine (phase sampling, §III-F). *)
val make_snapshot :
  mem:Mem.t ->
  regs:int array ->
  fregs:float array ->
  pc:int ->
  globals:int array ->
  output:string ->
  snapshot

(** Snapshot machine state.  Only legal while the machine is in serial
    mode with no outstanding master memory operation (e.g. before [run],
    or from an activity plug-in during a serial phase); raises
    {!Sim_error} otherwise. *)
val checkpoint : t -> snapshot

(** Restore into a machine created from the same image/config. *)
val restore : t -> snapshot -> unit

val snapshot_to_file : snapshot -> string -> unit
val snapshot_of_file : string -> snapshot
