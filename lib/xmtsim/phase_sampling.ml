type result = {
  estimated_cycles : int;
  total_instructions : int;
  intervals : int;
  phases : int;
  samples_taken : int;
  sampled_instructions : int;
  sampled_cycles : int;
}

exception Error of string

let buckets = 64

(* L1 distance between normalized pc histograms; ranges over [0, 2]. *)
let distance a b =
  let ta = Array.fold_left ( + ) 0 a and tb = Array.fold_left ( + ) 0 b in
  if ta = 0 || tb = 0 then 2.0
  else begin
    let d = ref 0.0 in
    for i = 0 to buckets - 1 do
      d :=
        !d
        +. abs_float
             ((float_of_int a.(i) /. float_of_int ta)
             -. (float_of_int b.(i) /. float_of_int tb))
    done;
    !d
  end

type phase = {
  fingerprint : int array;  (* the leader interval's histogram *)
  mutable samples : int;
  mutable cycles : int;
  mutable instrs : int;
}

(* Cycle-simulate from [snap] until ~[instr_budget] instructions execute;
   returns (cycles, instructions). *)
let cycle_sample ~config ~image ~snap ~instr_budget =
  let m = Machine.create ~config image in
  Machine.restore m snap;
  let start_instrs = Stats.total_instrs (Machine.stats m) in
  let executed () = Stats.total_instrs (Machine.stats m) - start_instrs in
  let rec go () =
    let r = Machine.run ~max_cycles:2048 m in
    if r.Machine.halted || executed () >= instr_budget then ()
    else if Machine.cycles m > 100 * instr_budget then
      raise (Error "cycle sample made no progress")
    else go ()
  in
  go ();
  (Machine.cycles m, max 1 (executed ()))

let estimate ?(config = Config.fpga64) ?(interval = 20_000)
    ?(samples_per_phase = 1) ?(similarity = 0.5) image =
  let st = Functional_mode.init image in
  let phases : phase list ref = ref [] in
  let estimated = ref 0.0 in
  let intervals = ref 0 in
  let samples_taken = ref 0 in
  let sampled_instructions = ref 0 in
  let sampled_cycles = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let hist = Array.make buckets 0 in
    let snap = Functional_mode.snapshot st in
    let before = Functional_mode.instructions st in
    let status =
      Functional_mode.advance st ~budget:interval ~on_instr:(fun ~pc ->
          let b = pc * buckets / max 1 (Array.length image.Isa.Program.instrs) in
          let b = min (buckets - 1) (max 0 b) in
          hist.(b) <- hist.(b) + 1)
    in
    let ran = Functional_mode.instructions st - before in
    if ran > 0 then begin
      incr intervals;
      (* find or create this interval's phase *)
      let phase =
        match
          List.find_opt (fun p -> distance p.fingerprint hist < similarity) !phases
        with
        | Some p -> p
        | None ->
          let p = { fingerprint = hist; samples = 0; cycles = 0; instrs = 0 } in
          phases := p :: !phases;
          p
      in
      if phase.samples < samples_per_phase then begin
        let cycles, instrs = cycle_sample ~config ~image ~snap ~instr_budget:ran in
        phase.samples <- phase.samples + 1;
        phase.cycles <- phase.cycles + cycles;
        phase.instrs <- phase.instrs + instrs;
        incr samples_taken;
        sampled_instructions := !sampled_instructions + instrs;
        sampled_cycles := !sampled_cycles + cycles;
        estimated :=
          !estimated
          +. (float_of_int ran *. float_of_int cycles /. float_of_int instrs)
      end
      else begin
        let cpi = float_of_int phase.cycles /. float_of_int phase.instrs in
        estimated := !estimated +. (float_of_int ran *. cpi)
      end
    end;
    if status = `Halted then continue_ := false
  done;
  {
    estimated_cycles = int_of_float !estimated;
    total_instructions = Functional_mode.instructions st;
    intervals = !intervals;
    phases = List.length !phases;
    samples_taken = !samples_taken;
    sampled_instructions = !sampled_instructions;
    sampled_cycles = !sampled_cycles;
  }

(* ------------------------------------------------------------------ *)
(* Programmatic window selection *)

type window = { w_start : int; w_instructions : int }
type measured = { m_start : int; m_instructions : int; m_cycles : int }
type gap = { g_start : int; g_instructions : int }

type sampled = {
  s_total_instructions : int;
  s_measured : measured list;
  s_gaps : gap list;
  s_windows_requested : int;
  s_windows_landed : int;
  s_halted : bool;
}

let sample ?(config = Config.fpga64) ?(max_instructions = 2_000_000_000)
    ~windows image =
  List.iter
    (fun w ->
      if w.w_start < 0 then raise (Error "window start must be >= 0");
      if w.w_instructions <= 0 then
        raise (Error "window length must be > 0 instructions"))
    windows;
  let ws =
    List.sort (fun a b -> compare (a.w_start, a.w_instructions)
                            (b.w_start, b.w_instructions)) windows
  in
  (let rec overlap = function
     | a :: (b :: _ as rest) ->
       if a.w_start + a.w_instructions > b.w_start then
         raise
           (Error
              (Printf.sprintf "windows overlap: [%d,+%d) and [%d,+%d)"
                 a.w_start a.w_instructions b.w_start b.w_instructions));
       overlap rest
     | _ -> ()
   in
   overlap ws);
  let st = Functional_mode.init image in
  let measured = ref [] in
  let gaps = ref [] in
  let landed = ref 0 in
  (* fast-forward to [target] (a serial boundary may overshoot); the
     skipped span, if any, is recorded as a gap *)
  let forward target =
    let before = Functional_mode.instructions st in
    if target > before && not (Functional_mode.halted st) then
      ignore (Functional_mode.advance st ~budget:(target - before));
    let ran = Functional_mode.instructions st - before in
    if ran > 0 then gaps := { g_start = before; g_instructions = ran } :: !gaps
  in
  List.iter
    (fun w ->
      if not (Functional_mode.halted st) then begin
        forward w.w_start;
        if not (Functional_mode.halted st) then begin
          let snap = Functional_mode.snapshot st in
          let before = Functional_mode.instructions st in
          ignore (Functional_mode.advance st ~budget:w.w_instructions);
          let ran = Functional_mode.instructions st - before in
          if ran > 0 then begin
            (* the cycle machine takes over from the snapshot and runs
               the same instruction span *)
            let cycles, instrs =
              cycle_sample ~config ~image ~snap ~instr_budget:ran
            in
            (* charge the window's functional span at the measured CPI:
               the cycle sample may pause at a slightly different
               boundary than the functional replay *)
            let cyc =
              int_of_float
                (float_of_int ran *. float_of_int cycles /. float_of_int instrs)
            in
            incr landed;
            measured :=
              { m_start = before; m_instructions = ran; m_cycles = cyc }
              :: !measured
          end
        end
      end)
    ws;
  (* run out the tail *)
  forward max_instructions;
  {
    s_total_instructions = Functional_mode.instructions st;
    s_measured = List.rev !measured;
    s_gaps = List.rev !gaps;
    s_windows_requested = List.length ws;
    s_windows_landed = !landed;
    s_halted = Functional_mode.halted st;
  }

let blend ?gap_cpi s =
  let m_instr =
    List.fold_left (fun a m -> a + m.m_instructions) 0 s.s_measured
  in
  let m_cycles = List.fold_left (fun a m -> a + m.m_cycles) 0 s.s_measured in
  let default_cpi =
    if m_instr > 0 then float_of_int m_cycles /. float_of_int m_instr
    else
      match gap_cpi with
      | Some _ -> 0.0 (* unused: the caller prices every gap *)
      | None -> raise (Error "blend: no measured windows and no gap_cpi")
  in
  let price = match gap_cpi with Some f -> f | None -> fun _ -> default_cpi in
  let gap_cycles =
    List.fold_left
      (fun a g -> a +. (float_of_int g.g_instructions *. price g))
      0.0 s.s_gaps
  in
  m_cycles + int_of_float gap_cycles
