(** Phase sampling (paper §III-F, "Features under Development"; ref [38],
    SimPoint).

    Programs with long execution times consist of phases — sets of
    intervals with similar behaviour.  Instead of cycle-simulating the
    whole program, this module:

    + fast-forwards through the program in the functional mode, cutting it
      into intervals of ~[interval] instructions (at serial boundaries)
      and fingerprinting each with a basic-block-vector-style histogram of
      executed pcs;
    + clusters interval fingerprints into phases (greedy leader
      clustering, the lightweight stand-in for SimPoint's k-means);
    + cycle-simulates only the first [samples_per_phase] intervals of each
      phase — the cycle machine takes over from the functional state via
      {!Machine.make_snapshot} — and charges the remaining intervals at
      their phase's measured CPI.

    The result is an estimated total cycle count at a fraction of the
    cycle-accurate simulation work. *)

type result = {
  estimated_cycles : int;
  total_instructions : int;
  intervals : int;
  phases : int;
  samples_taken : int;
  sampled_instructions : int;  (** instructions actually cycle-simulated *)
  sampled_cycles : int;
}

exception Error of string

(** [estimate ?config ?interval ?samples_per_phase ?similarity image].
    [interval] is the fast-forward quantum in instructions (default
    20_000); [samples_per_phase] how many intervals of each phase to
    cycle-simulate (default 1); [similarity] the fingerprint-distance
    threshold in [0,2] below which two intervals share a phase (default
    0.5; smaller = more phases). *)
val estimate :
  ?config:Config.t ->
  ?interval:int ->
  ?samples_per_phase:int ->
  ?similarity:float ->
  Isa.Program.image ->
  result

(** {1 Programmatic window selection}

    {!estimate} decides which intervals to cycle-simulate on its own
    (phase clustering).  The API below hands that decision to the
    caller: name the instruction windows to measure, get back the
    measured windows and the unmeasured gaps, and price the gaps
    however you like ({!blend}) — the checkpoint-sampled prediction
    mode ([Predict.Sampled]) prices them with the analytical model. *)

(** A detailed-simulation window: [w_instructions] instructions
    starting at instruction index [w_start] (0 = before the first
    instruction).  Windows are positions in the {e functional}
    (serialized) instruction stream; since the functional mode pauses
    only at serial boundaries, a window's realized span may overshoot
    its nominal bounds, and a window that starts at or beyond the
    program's end simply does not land. *)
type window = { w_start : int; w_instructions : int }

(** A window that landed: the realized instruction span and the cycles
    the cycle-accurate machine measured over it (normalized to the
    span when the machine pauses at a different boundary). *)
type measured = { m_start : int; m_instructions : int; m_cycles : int }

(** A fast-forwarded span no window covered. *)
type gap = { g_start : int; g_instructions : int }

type sampled = {
  s_total_instructions : int;
  s_measured : measured list;  (** in execution order *)
  s_gaps : gap list;  (** in execution order *)
  s_windows_requested : int;
  s_windows_landed : int;  (** windows that covered >= 1 instruction *)
  s_halted : bool;
}

(** [sample ~windows image] fast-forwards functionally, snapshots at
    each window start ({!Functional_mode.snapshot}), lets a
    cycle-accurate {!Machine} ({!Machine.restore}) measure the window,
    and resumes fast-forwarding after it.  Windows may start at
    instruction 0 (the snapshot is the freshly loaded state) and may
    extend past the end of the run (the realized span is clamped at
    halt).  Raises {!Error} if windows overlap or are malformed. *)
val sample :
  ?config:Config.t ->
  ?max_instructions:int ->
  windows:window list ->
  Isa.Program.image ->
  sampled

(** [blend s] = measured cycles + every gap priced at [gap_cpi] (cycles
    per instruction; default: the mean measured CPI over the landed
    windows).  Raises {!Error} when no window landed and no [gap_cpi]
    is given. *)
val blend : ?gap_cpi:(gap -> float) -> sampled -> int
