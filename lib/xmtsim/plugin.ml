(** Simulation plug-ins (paper §III-B).

    {e Filter plug-ins} observe every executed instruction and produce a
    report at the end of the simulation.  The built-in {!hot_locations}
    plug-in reproduces the paper's example: a list of the most frequently
    accessed shared-memory locations, which points the programmer at
    memory bottlenecks.

    {e Activity plug-ins} are registered on the machine with a sampling
    interval; they read the activity counters during the run and may
    retune clock domains — the hook used for dynamic power and thermal
    management (see {!Power} and {!Thermal}). *)

type filter = {
  f_name : string;
  f_on_instr : master:bool -> pc:int -> Isa.Instr.t -> addr:int option -> unit;
  f_report : unit -> string;
}

(** Tracks the [top] most frequently accessed memory addresses. *)
let hot_locations ~top () =
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let on_instr ~master:_ ~pc:_ _ins ~addr =
    match addr with
    | None -> ()
    | Some a -> (
      match Hashtbl.find_opt counts a with
      | Some r -> incr r
      | None -> Hashtbl.replace counts a (ref 1))
  in
  let report () =
    let all = Hashtbl.fold (fun a r acc -> (a, !r) :: acc) counts [] in
    let sorted = List.sort (fun (_, x) (_, y) -> compare y x) all in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    let lines =
      List.map
        (fun (a, c) -> Printf.sprintf "  0x%06x: %d accesses" a c)
        (take top sorted)
    in
    String.concat "\n" (("hot memory locations (top " ^ string_of_int top ^ "):") :: lines)
  in
  { f_name = "hot-locations"; f_on_instr = on_instr; f_report = report }

(** Histogram of executed instructions per functional-unit class. *)
let class_histogram () =
  let counts = Hashtbl.create 8 in
  let on_instr ~master:_ ~pc:_ ins ~addr:_ =
    let c = Isa.Instr.fu_class_of ins in
    match Hashtbl.find_opt counts c with
    | Some r -> incr r
    | None -> Hashtbl.replace counts c (ref 1)
  in
  let report () =
    let lines =
      List.filter_map
        (fun c ->
          match Hashtbl.find_opt counts c with
          | Some r ->
            Some (Printf.sprintf "  %-4s %d" (Isa.Instr.fu_class_name c) !r)
          | None -> None)
        Isa.Instr.all_fu_classes
    in
    String.concat "\n" ("instruction class histogram:" :: lines)
  in
  { f_name = "class-histogram"; f_on_instr = on_instr; f_report = report }

(** Execution profile over simulated time (§III-B: "An activity plug-in
    can generate execution profiles of XMTC programs over simulated time,
    showing memory and computation intensive phases").

    Attach with {!attach_profiler}; each sample records the instruction
    counts by functional-unit class and the TCU memory-wait cycles accrued
    since the previous sample.  {!render_profile} draws a text timeline
    where each row is one interval and the bar shows its mix. *)

type profile_sample = {
  ps_cycle : int;
  ps_compute : int;  (** compute-attributed cycles (issues + FU stalls) in the window *)
  ps_memory : int;  (** memory operations issued in the window *)
  ps_memwait : int;  (** memory-wait cycles (ICN/cache/DRAM buckets) in the window *)
}

type profiler = { mutable samples : profile_sample list (* reversed *) }

(** Samples are consed newest-first during the run; this accessor is the
    {e single} place that restores chronological (oldest-first) order, so
    the text renderer and the JSON export cannot disagree. *)
let samples_in_order (p : profiler) = List.rev p.samples

(** The execution profile as a JSON array of per-interval samples
    (oldest first), for machine consumption of the §III-B profile. *)
let profile_to_json (p : profiler) =
  Obs.Json.List
    (List.map
       (fun s ->
         Obs.Json.Obj
           [
             ("cycle", Obs.Json.Int s.ps_cycle);
             ("compute", Obs.Json.Int s.ps_compute);
             ("memory", Obs.Json.Int s.ps_memory);
             ("memwait", Obs.Json.Int s.ps_memwait);
           ])
       (samples_in_order p))

let render_profile (p : profiler) =
  let samples = samples_in_order p in
  let b = Buffer.create 512 in
  Buffer.add_string b
    "cycle      compute     memory    memwait  phase\n";
  List.iter
    (fun s ->
      (* classify by where the TCUs spent their time: cycles waiting on
         memory vs cycles executing instructions *)
      let total = max 1 (s.ps_compute + s.ps_memory + s.ps_memwait) in
      let frac = float_of_int s.ps_memwait /. float_of_int total in
      let width = 24 in
      let memw = int_of_float (frac *. float_of_int width) in
      let bar = String.make memw 'M' ^ String.make (width - memw) 'c' in
      let tag =
        if s.ps_compute + s.ps_memory = 0 then "idle"
        else if s.ps_memwait > s.ps_compute then "memory-intensive"
        else "compute-intensive"
      in
      Buffer.add_string b
        (Printf.sprintf "%-10d %10d %10d %10d  |%s| %s\n" s.ps_cycle s.ps_compute
           s.ps_memory s.ps_memwait bar tag))
    samples;
  Buffer.contents b
