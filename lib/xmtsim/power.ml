type params = {
  e_alu : float;
  e_mdu : float;
  e_fpu : float;
  e_mem : float;
  e_icn_flit : float;
  e_cache : float;
  e_dram : float;
  leak_cluster : float;
  leak_icn : float;
  leak_cache : float;
  leak_dram : float;
  leak_master : float;
  clock_ghz : float;
}

let default =
  {
    e_alu = 0.02;
    e_mdu = 0.08;
    e_fpu = 0.12;
    e_mem = 0.05;
    e_icn_flit = 0.03;
    e_cache = 0.04;
    e_dram = 0.4;
    leak_cluster = 0.12;
    leak_icn = 1.5;
    leak_cache = 1.0;
    leak_dram = 2.0;
    leak_master = 0.5;
    clock_ghz = 1.0;
  }

type snapshot = {
  alu_ops : int;
  mdu_ops : int;
  fpu_ops : int;
  mem_ops : int;
  icn : int;
  cache : int;
  dram : int;
  master_ops : int;
  cycle : int;
  per_cluster : int array;
}

type t = {
  p : params;
  m : Machine.t;
  nclusters : int;
  names : string array;
  mutable last : snapshot;
  mutable last_sample : float array;
}

let snap (m : Machine.t) =
  let s = Machine.stats m in
  let by = Stats.by_class s in
  let get n = try List.assoc n by with Not_found -> 0 in
  {
    alu_ops = get "ALU" + get "SFT" + get "BR";
    mdu_ops = get "MDU";
    fpu_ops = get "FPU";
    mem_ops = get "MEM";
    icn = s.Stats.icn_packets;
    cache = s.Stats.cache_hits + s.Stats.cache_misses;
    dram = s.Stats.dram_reads;
    master_ops = s.Stats.master_instrs;
    cycle = Machine.cycles m;
    per_cluster = Machine.cluster_activity m;
  }

let create ?(params = default) m =
  let nclusters = (Machine.config m).Config.num_clusters in
  let names =
    Array.init (nclusters + 4) (fun i ->
        if i < nclusters then Printf.sprintf "cluster%d" i
        else match i - nclusters with
          | 0 -> "icn"
          | 1 -> "cache"
          | 2 -> "dram"
          | _ -> "master")
  in
  {
    p = params;
    m;
    nclusters;
    names;
    last = snap m;
    last_sample = Array.make (nclusters + 4) 0.0;
  }

let component_names t = t.names

let sample t =
  let now = snap t.m in
  let prev = t.last in
  t.last <- now;
  let dcyc = max 1 (now.cycle - prev.cycle) in
  let dt = float_of_int dcyc /. (t.p.clock_ghz *. 1e9) in
  let nj x = float_of_int x *. 1e-9 in
  (* dynamic energy in the window *)
  let e_cluster_total =
    (nj (now.alu_ops - prev.alu_ops) *. t.p.e_alu)
    +. (nj (now.mdu_ops - prev.mdu_ops) *. t.p.e_mdu)
    +. (nj (now.fpu_ops - prev.fpu_ops) *. t.p.e_fpu)
    +. (nj (now.mem_ops - prev.mem_ops) *. t.p.e_mem)
  in
  let out = Array.make (t.nclusters + 4) 0.0 in
  (* TCU dynamic energy attributed by each cluster's share of the window's
     executed instructions *)
  let deltas =
    Array.init t.nclusters (fun i -> now.per_cluster.(i) - prev.per_cluster.(i))
  in
  let total_delta = max 1 (Array.fold_left ( + ) 0 deltas) in
  for i = 0 to t.nclusters - 1 do
    let share = float_of_int deltas.(i) /. float_of_int total_delta in
    out.(i) <- (e_cluster_total *. share /. dt) +. t.p.leak_cluster
  done;
  out.(t.nclusters) <-
    (nj (now.icn - prev.icn) *. t.p.e_icn_flit /. dt) +. t.p.leak_icn;
  out.(t.nclusters + 1) <-
    (nj (now.cache - prev.cache) *. t.p.e_cache /. dt) +. t.p.leak_cache;
  out.(t.nclusters + 2) <-
    (nj (now.dram - prev.dram) *. t.p.e_dram /. dt) +. t.p.leak_dram;
  out.(t.nclusters + 3) <-
    (nj (now.master_ops - prev.master_ops) *. t.p.e_alu /. dt) +. t.p.leak_master;
  t.last_sample <- out;
  out

let total t = Array.fold_left ( +. ) 0.0 t.last_sample

(** Export the last sample into a metrics registry: per-component watts
    (labelled) plus the chip total. *)
let export t reg =
  Array.iteri
    (fun i w ->
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~labels:[ ("component", t.names.(i)) ] "sim.power.watts")
        w)
    t.last_sample;
  Obs.Metrics.set (Obs.Metrics.gauge reg "sim.power.total_watts") (total t)
