(** Power estimation (paper §III-F): power is computed as a function of
    the activity counters.  Energies are per-operation in nanojoules;
    leakage in watts.  The model is deliberately simple — the paper's own
    power model is "a function of the activity counters" feeding HotSpot —
    but it exposes the same structure: per-component dynamic + leakage.

    Component indices follow {!component_names}: one entry per cluster,
    then ICN, cache, DRAM, master. *)

type params = {
  e_alu : float;  (** nJ per ALU/SFT/BR op *)
  e_mdu : float;
  e_fpu : float;
  e_mem : float;  (** nJ per memory package (TCU side) *)
  e_icn_flit : float;
  e_cache : float;
  e_dram : float;
  leak_cluster : float;  (** W *)
  leak_icn : float;
  leak_cache : float;
  leak_dram : float;
  leak_master : float;
  clock_ghz : float;  (** converts cycles to seconds *)
}

val default : params

type t

val create : ?params:params -> Machine.t -> t
val component_names : t -> string array

(** Power per component (W) over the window since the previous sample;
    call periodically from an activity plug-in. *)
val sample : t -> float array

(** Total chip power of the last sample (W). *)
val total : t -> float

(** Export the last sample into a metrics registry:
    [sim.power.watts{component=...}] gauges plus [sim.power.total_watts]. *)
val export : t -> Obs.Metrics.t -> unit
