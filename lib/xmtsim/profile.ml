(** Cycle-accounting profiler: per-TCU CPI stacks with source attribution.

    Every TCU cycle of a profiled run is attributed to exactly one bucket
    — compute (issue + FU latency + FU structural stalls), spawn/join
    overhead, ICN round-trip, cache-hit service, DRAM queueing+latency,
    prefetch-covered wait, or fence/ps serialization — with idle derived
    by subtraction so the per-TCU stack always sums exactly to the run's
    total TCU-cycles.  Cycles are simultaneously charged to the issuing
    program counter; joined with the image's [.loc] source map
    ([xmtcc -g]) that yields per-source-line hot-spot tables and a
    flame-style top-down view.

    The profiler is a {e passive observer}: it is driven by single
    option-checked hooks inside the machine, never schedules events,
    wakes clocks or touches machine state, so attaching it cannot perturb
    cycles, stats or traces (enforced by the profile-determinism test and
    CI step).

    Memory-wait episodes are accounted when the reply arrives: the ticks
    a TCU spent in [Tmemwait] are split across the ICN / cache-hit / DRAM
    buckets proportionally to the request's lifecycle stamps, using
    cumulative integer floors so the per-bucket integers sum exactly to
    the ticks waited.  A wait that ends with a prefetch-buffer fill goes
    to the prefetch-covered bucket instead (the prefetch was issued but
    arrived late; those cycles measure the uncovered remainder). *)

type bucket =
  | Compute  (** instruction issue, FU latency and FU structural stalls *)
  | Spawn_join  (** spawn broadcast and join barrier overhead windows *)
  | Icn  (** request/reply transport and merge contention *)
  | Cache_hit  (** cache-module service at hit latency *)
  | Dram  (** miss service beyond the hit latency: DRAM queueing + fill *)
  | Prefetch_covered  (** waits completed by an in-flight prefetch *)
  | Fence_ps  (** fence drain and ps/psm serialization stalls *)

let n_buckets = 7

let bucket_index = function
  | Compute -> 0
  | Spawn_join -> 1
  | Icn -> 2
  | Cache_hit -> 3
  | Dram -> 4
  | Prefetch_covered -> 5
  | Fence_ps -> 6

let bucket_names =
  [| "compute"; "spawn_join"; "icn"; "cache_hit"; "dram"; "prefetch_covered";
     "fence_ps" |]

type t = {
  n_tcus : int;
  tcus_per_cluster : int;
  per_tcu : int array array;  (** [tcu].(bucket) cycle counts *)
  master : int array;  (** master TCU bucket cycle counts *)
  pc_cycles : int array;  (** attributed cycles per program counter *)
  last_pc : int array;  (** per TCU: pc of the last issued instruction *)
  mw_ticks : int array;  (** per TCU: ticks of the open memwait episode *)
  mutable master_last_pc : int;
  mutable master_stall : bucket;  (** why the master entered Mstall *)
  mutable mem_ops : int;  (** memory instructions issued (both TCU kinds) *)
  base_ticks : int;  (** cluster-grid ticks already elapsed at attach *)
}

let create ~n_tcus ~tcus_per_cluster ~n_instrs ~base_ticks =
  {
    n_tcus;
    tcus_per_cluster;
    per_tcu = Array.init n_tcus (fun _ -> Array.make n_buckets 0);
    master = Array.make n_buckets 0;
    pc_cycles = Array.make (max 1 n_instrs) 0;
    last_pc = Array.make (max 1 n_tcus) (-1);
    mw_ticks = Array.make (max 1 n_tcus) 0;
    master_last_pc = -1;
    master_stall = Compute;
    mem_ops = 0;
    base_ticks;
  }

let base_ticks p = p.base_ticks

(* The counters below run once per profiled TCU-cycle, so they avoid
   redundant bounds checks: [bucket_index] is < [n_buckets] (= row
   length) by construction, and [attribute]'s explicit range test makes
   the element accesses safe. *)

let attribute p ~pc n =
  if pc >= 0 && pc < Array.length p.pc_cycles then
    Array.unsafe_set p.pc_cycles pc (Array.unsafe_get p.pc_cycles pc + n)

let count p ~tcu ~pc b n =
  let row = p.per_tcu.(tcu) in
  let i = bucket_index b in
  Array.unsafe_set row i (Array.unsafe_get row i + n);
  attribute p ~pc n

(* ---- TCU-side hooks (called from the machine) ---- *)

(* per-cycle hooks are hand-flattened (no [count] call) to keep the
   profiled hot path one call deep *)

let tcu_issue p ~tcu ~pc ~mem =
  p.last_pc.(tcu) <- pc;
  if mem then p.mem_ops <- p.mem_ops + 1;
  let row = p.per_tcu.(tcu) in
  Array.unsafe_set row 0 (Array.unsafe_get row 0 + 1) (* Compute *);
  attribute p ~pc 1

(* shared FU busy: the instruction at [pc] retries next cycle *)
let tcu_stall p ~tcu ~pc =
  let row = p.per_tcu.(tcu) in
  Array.unsafe_set row 0 (Array.unsafe_get row 0 + 1) (* Compute *);
  attribute p ~pc 1

(* one stall cycle in a directly-classifiable state (FU latency, fence,
   ps wait), charged to the instruction that caused it *)
let tcu_wait p ~tcu b =
  let row = p.per_tcu.(tcu) in
  let i = bucket_index b in
  Array.unsafe_set row i (Array.unsafe_get row i + 1);
  attribute p ~pc:p.last_pc.(tcu) 1

let memwait_tick p ~tcu = p.mw_ticks.(tcu) <- p.mw_ticks.(tcu) + 1

(* Close a memory-wait episode.  [icn]/[cache_hit]/[dram] are the
   lifecycle components of the request in simulated time; the episode's
   tick count is split across them with cumulative integer floors, so
   the assigned integers sum exactly to the ticks waited. *)
let flush_memwait p ~tcu ~icn ~cache_hit ~dram ~pref =
  let ticks = p.mw_ticks.(tcu) in
  if ticks > 0 then begin
    p.mw_ticks.(tcu) <- 0;
    let pc = p.last_pc.(tcu) in
    if pref then count p ~tcu ~pc Prefetch_covered ticks
    else begin
      let w_icn = max 0 icn and w_hit = max 0 cache_hit and w_dram = max 0 dram in
      let total = w_icn + w_hit + w_dram in
      if total <= 0 then count p ~tcu ~pc Icn ticks
      else begin
        (* cumulative floors, straight-lined (no per-reply allocation) *)
        let upto_icn = ticks * w_icn / total in
        let upto_hit = ticks * (w_icn + w_hit) / total in
        if upto_icn > 0 then count p ~tcu ~pc Icn upto_icn;
        if upto_hit > upto_icn then count p ~tcu ~pc Cache_hit (upto_hit - upto_icn);
        if ticks > upto_hit then count p ~tcu ~pc Dram (ticks - upto_hit)
      end
    end
  end

(* ---- master-TCU hooks ---- *)

let master_count p ~pc b n =
  let i = bucket_index b in
  p.master.(i) <- p.master.(i) + n;
  attribute p ~pc n

let master_issue p ~pc ~mem =
  p.master_last_pc <- pc;
  if mem then p.mem_ops <- p.mem_ops + 1;
  master_count p ~pc Compute 1

let master_stall_kind p b = p.master_stall <- b
let master_wait p = master_count p ~pc:p.master_last_pc p.master_stall 1
let master_mem p ~ticks =
  if ticks > 0 then master_count p ~pc:p.master_last_pc Dram ticks

let master_spawn p ~pc ~ticks = if ticks > 0 then master_count p ~pc Spawn_join ticks
let master_join p ~pc ~ticks = if ticks > 0 then master_count p ~pc Spawn_join ticks

(* ---- sampling accessors: the interval profiler ({!Profiler}) reads
   these so both views share one event source ---- *)

let compute_cycles p =
  let c = ref p.master.(bucket_index Compute) in
  Array.iter (fun row -> c := !c + row.(bucket_index Compute)) p.per_tcu;
  !c

let memwait_cycles p =
  let c = ref 0 in
  Array.iter
    (fun row ->
      c :=
        !c
        + row.(bucket_index Icn)
        + row.(bucket_index Cache_hit)
        + row.(bucket_index Dram)
        + row.(bucket_index Prefetch_covered))
    p.per_tcu;
  (* open episodes count as wait already accrued *)
  Array.iter (fun w -> c := !c + w) p.mw_ticks;
  !c

let mem_ops p = p.mem_ops

(* ------------------------------------------------------------------ *)
(* Reports *)

type row = { r_buckets : int array; r_idle : int }

type line_cost = { lc_fn : string; lc_line : int; lc_cycles : int }

type attribution = {
  a_nonidle : int;  (** counted (non-idle) cycles across TCUs + master *)
  a_attributed : int;  (** of those, cycles with a known source location *)
  a_by_func : (string * int) list;  (** sorted by cycles, descending *)
  a_by_line : line_cost list;  (** sorted by cycles, descending *)
  a_by_pc : (int * int) list;  (** top (pc, cycles), descending *)
}

type report = {
  rp_total : int;  (** grid ticks per TCU over the profiled span *)
  rp_tcus : row array;
  rp_clusters : row array;
  rp_master : row;
  rp_aggregate : row;  (** all TCUs + master *)
  rp_attr : attribution;
  rp_has_debug : bool;
}

let sum_row buckets total = { r_buckets = buckets; r_idle = total - Array.fold_left ( + ) 0 buckets }

let report p ~total_ticks ~(locs : (int * string) option array) =
  (* a run cut off mid-wait leaves open episodes; close them into the ICN
     bucket (the request is somewhere in transit) so non-idle cycles
     never silently vanish *)
  Array.iteri
    (fun tcu w ->
      if w > 0 then begin
        p.mw_ticks.(tcu) <- 0;
        count p ~tcu ~pc:p.last_pc.(tcu) Icn w
      end)
    p.mw_ticks;
  let total = max 0 total_ticks in
  let tcus = Array.map (fun b -> sum_row (Array.copy b) total) p.per_tcu in
  let n_clusters =
    if p.tcus_per_cluster <= 0 then 1
    else (p.n_tcus + p.tcus_per_cluster - 1) / p.tcus_per_cluster
  in
  let clusters =
    Array.init (max 1 n_clusters) (fun c ->
        let buckets = Array.make n_buckets 0 in
        let lo = c * p.tcus_per_cluster in
        let hi = min p.n_tcus (lo + p.tcus_per_cluster) in
        for u = lo to hi - 1 do
          Array.iteri (fun i v -> buckets.(i) <- buckets.(i) + v) p.per_tcu.(u)
        done;
        sum_row buckets (total * max 0 (hi - lo)))
  in
  let master = sum_row (Array.copy p.master) total in
  let aggregate =
    let buckets = Array.copy p.master in
    Array.iter
      (fun row -> Array.iteri (fun i v -> buckets.(i) <- buckets.(i) + v) row)
      p.per_tcu;
    sum_row buckets (total * (p.n_tcus + 1))
  in
  let nonidle = Array.fold_left ( + ) 0 aggregate.r_buckets in
  let loc_of pc = if pc >= 0 && pc < Array.length locs then locs.(pc) else None in
  let has_debug = Array.exists Option.is_some locs in
  let attributed = ref 0 in
  let by_line = Hashtbl.create 64 and by_func = Hashtbl.create 16 in
  let by_pc = ref [] in
  Array.iteri
    (fun pc n ->
      if n > 0 then begin
        by_pc := (pc, n) :: !by_pc;
        match loc_of pc with
        | None -> ()
        | Some (line, fn) ->
          attributed := !attributed + n;
          let bump tbl key =
            Hashtbl.replace tbl key
              (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))
          in
          bump by_line (fn, line);
          bump by_func fn
      end)
    p.pc_cycles;
  let desc f = List.sort (fun a b -> compare (f b, a) (f a, b)) in
  let a_by_line =
    Hashtbl.fold
      (fun (fn, line) c acc -> { lc_fn = fn; lc_line = line; lc_cycles = c } :: acc)
      by_line []
    |> desc (fun l -> l.lc_cycles)
  in
  let a_by_func =
    Hashtbl.fold (fun fn c acc -> (fn, c) :: acc) by_func []
    |> desc snd
  in
  let a_by_pc = desc snd !by_pc in
  {
    rp_total = total;
    rp_tcus = tcus;
    rp_clusters = clusters;
    rp_master = master;
    rp_aggregate = aggregate;
    rp_attr =
      {
        a_nonidle = nonidle;
        a_attributed = !attributed;
        a_by_func;
        a_by_line;
        a_by_pc;
      };
    rp_has_debug = has_debug;
  }

let attribution_rate rp =
  if rp.rp_attr.a_nonidle = 0 then 1.0
  else float_of_int rp.rp_attr.a_attributed /. float_of_int rp.rp_attr.a_nonidle

(* ---- xmt.profile.v1 ---- *)

module J = Obs.Json

let row_json r =
  J.Obj
    (Array.to_list (Array.mapi (fun i v -> (bucket_names.(i), J.Int v)) r.r_buckets)
    @ [ ("idle", J.Int r.r_idle) ])

let line_label lc =
  if lc.lc_line = 0 then Printf.sprintf "%s:<prologue>" lc.lc_fn
  else Printf.sprintf "%s:%d" lc.lc_fn lc.lc_line

let to_json rp =
  let rows_of arr label =
    J.List
      (Array.to_list
         (Array.mapi
            (fun i r ->
              match row_json r with
              | J.Obj fields -> J.Obj ((label, J.Int i) :: fields)
              | j -> j)
            arr))
  in
  let take n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n l
  in
  J.Obj
    [
      ("schema", J.Str "xmt.profile.v1");
      ("total_ticks", J.Int rp.rp_total);
      ("buckets", J.List (Array.to_list (Array.map (fun n -> J.Str n) bucket_names)));
      ("master", row_json rp.rp_master);
      ("tcus", rows_of rp.rp_tcus "tcu");
      ("clusters", rows_of rp.rp_clusters "cluster");
      ("aggregate", row_json rp.rp_aggregate);
      ( "attribution",
        J.Obj
          [
            ("has_debug_info", J.Bool rp.rp_has_debug);
            ("nonidle_cycles", J.Int rp.rp_attr.a_nonidle);
            ("attributed_cycles", J.Int rp.rp_attr.a_attributed);
            ("rate", J.Float (attribution_rate rp));
            ( "by_func",
              J.List
                (List.map
                   (fun (fn, c) ->
                     J.Obj [ ("func", J.Str fn); ("cycles", J.Int c) ])
                   rp.rp_attr.a_by_func) );
            ( "by_line",
              J.List
                (List.map
                   (fun lc ->
                     J.Obj
                       [
                         ("func", J.Str lc.lc_fn);
                         ("line", J.Int lc.lc_line);
                         ("cycles", J.Int lc.lc_cycles);
                       ])
                   rp.rp_attr.a_by_line) );
            ( "by_pc",
              J.List
                (List.map
                   (fun (pc, c) ->
                     J.Obj [ ("pc", J.Int pc); ("cycles", J.Int c) ])
                   (take 50 rp.rp_attr.a_by_pc)) );
          ] );
    ]

(* ---- text report ---- *)

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let render_stack b ~label (r : row) =
  let total = Array.fold_left ( + ) 0 r.r_buckets + r.r_idle in
  Printf.ksprintf (Buffer.add_string b) "%s (%d cycles):\n" label total;
  let line name v =
    if v > 0 || name = "idle" then
      Printf.ksprintf (Buffer.add_string b) "  %-18s %12d  %5.1f%%\n" name v
        (pct v total)
  in
  Array.iteri (fun i v -> line bucket_names.(i) v) r.r_buckets;
  line "idle" r.r_idle

let render rp =
  let b = Buffer.create 1024 in
  Printf.ksprintf (Buffer.add_string b)
    "CPI stacks over %d TCU-cycles per TCU (%d TCUs + master)\n" rp.rp_total
    (Array.length rp.rp_tcus);
  render_stack b ~label:"aggregate" rp.rp_aggregate;
  render_stack b ~label:"master TCU" rp.rp_master;
  Buffer.add_string b "per-cluster (cycles):\n";
  Printf.ksprintf (Buffer.add_string b) "  %-8s %12s %12s %12s %12s\n" "cluster"
    "compute" "memory" "other" "idle";
  Array.iteri
    (fun i r ->
      let mem =
        r.r_buckets.(bucket_index Icn)
        + r.r_buckets.(bucket_index Cache_hit)
        + r.r_buckets.(bucket_index Dram)
        + r.r_buckets.(bucket_index Prefetch_covered)
      in
      let compute = r.r_buckets.(bucket_index Compute) in
      let other = Array.fold_left ( + ) 0 r.r_buckets - mem - compute in
      Printf.ksprintf (Buffer.add_string b) "  %-8d %12d %12d %12d %12d\n" i
        compute mem other r.r_idle)
    rp.rp_clusters;
  if rp.rp_has_debug then begin
    Printf.ksprintf (Buffer.add_string b)
      "source attribution: %d / %d non-idle cycles (%.1f%%)\n"
      rp.rp_attr.a_attributed rp.rp_attr.a_nonidle
      (100.0 *. attribution_rate rp);
    Buffer.add_string b "hot source lines:\n";
    List.iteri
      (fun i lc ->
        if i < 15 then
          Printf.ksprintf (Buffer.add_string b) "  %12d  %s\n" lc.lc_cycles
            (line_label lc))
      rp.rp_attr.a_by_line
  end
  else
    Buffer.add_string b
      "no debug info in the image (compile with xmtcc -g for source \
       attribution)\n";
  Buffer.contents b

(* Flame-style top-down view: functions sorted by attributed cycles, each
   expanded into its source lines, bar widths proportional to cost. *)
let render_flame rp =
  let b = Buffer.create 1024 in
  let top = rp.rp_attr.a_nonidle in
  if not rp.rp_has_debug then
    Buffer.add_string b "flame view needs debug info (xmtcc -g)\n"
  else begin
    Printf.ksprintf (Buffer.add_string b)
      "flame view (top-down, %d attributed cycles):\n" rp.rp_attr.a_attributed;
    let bar n =
      let width = 32 in
      let w =
        if top <= 0 then 0
        else min width (width * n / max 1 top)
      in
      String.make (max 1 w) '#'
    in
    List.iter
      (fun (fn, c) ->
        Printf.ksprintf (Buffer.add_string b) "%-40s %12d %s\n" fn c (bar c);
        List.iter
          (fun lc ->
            if lc.lc_fn = fn then
              Printf.ksprintf (Buffer.add_string b) "  %-38s %12d %s\n"
                (if lc.lc_line = 0 then "<prologue>"
                 else Printf.sprintf "line %d" lc.lc_line)
                lc.lc_cycles (bar lc.lc_cycles))
          rp.rp_attr.a_by_line)
      rp.rp_attr.a_by_func
  end;
  Buffer.contents b
