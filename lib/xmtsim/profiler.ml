(** Built-in execution-profile activity plug-in (§III-B).

    [attach m ~interval] registers an activity plug-in that samples the
    instruction-class and memory-wait counters every [interval] cycles;
    render the collected timeline with {!Plugin.render_profile} or export
    it with {!Plugin.profile_to_json}.  Samples are stored newest-first;
    always read them through {!Plugin.samples_in_order}. *)

let class_counts stats =
  let by = Stats.by_class stats in
  let get n = try List.assoc n by with Not_found -> 0 in
  let compute = get "ALU" + get "SFT" + get "BR" + get "MDU" + get "FPU" in
  let memory = get "MEM" in
  (compute, memory)

let attach ?(interval = 1000) m =
  let p = { Plugin.samples = [] } in
  let stats = Machine.stats m in
  let last_c = ref 0 and last_m = ref 0 and last_w = ref 0 in
  Machine.add_activity_plugin m ~name:"profiler" ~interval (fun m cycle ->
      let c, mem = class_counts (Machine.stats m) in
      let w = stats.Stats.tcu_memwait_cycles in
      p.Plugin.samples <-
        {
          Plugin.ps_cycle = cycle;
          ps_compute = c - !last_c;
          ps_memory = mem - !last_m;
          ps_memwait = w - !last_w;
        }
        :: p.Plugin.samples;
      last_c := c;
      last_m := mem;
      last_w := w);
  p
