(** Built-in execution-profile activity plug-in (§III-B).

    [attach m ~interval] registers an activity plug-in that samples the
    cycle-accounting profiler ({!Machine.attach_profile}) every
    [interval] cycles; render the collected timeline with
    {!Plugin.render_profile} or export it with {!Plugin.profile_to_json}.
    Samples are stored newest-first; always read them through
    {!Plugin.samples_in_order}.

    The per-cycle accounting that feeds the CPI stacks
    ([xmtsim --profile]) is the single event source; this plug-in is
    merely a windowed view over it, so the timeline and the CPI stacks
    can never disagree about where the cycles went. *)

let attach ?(interval = 1000) m =
  let p = { Plugin.samples = [] } in
  let prof = Machine.attach_profile m in
  let last_c = ref 0 and last_m = ref 0 and last_w = ref 0 in
  Machine.add_activity_plugin m ~name:"profiler" ~interval (fun _ cycle ->
      (* compute_cycles counts one cycle per issue (plus FU stalls), so
         subtracting the memory issues leaves the compute-attributed
         share, matching the old instruction-class split *)
      let c = Profile.compute_cycles prof - Profile.mem_ops prof in
      let mem = Profile.mem_ops prof in
      let w = Profile.memwait_cycles prof in
      p.Plugin.samples <-
        {
          Plugin.ps_cycle = cycle;
          ps_compute = c - !last_c;
          ps_memory = mem - !last_m;
          ps_memwait = w - !last_w;
        }
        :: p.Plugin.samples;
      last_c := c;
      last_m := mem;
      last_w := w);
  p
