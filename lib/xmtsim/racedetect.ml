(** Dynamic shadow-memory race detector (the checker's second layer).

    Attached to a {!Machine}, it observes every shared-memory access at
    its {e service} time (the cycle the cache module performs the
    functional effect — the point that defines the XMT memory model's
    outcome) and every synchronization event:

    - [ps]/[psm] completion: an {e acquire} and a {e release} for the
      issuing TCU (prefix-sums are the model's ordering primitive);
    - fence completion (pending non-blocking stores drained): a
      {e release}.

    Per address it keeps the last writer and the latest read per TCU.
    Two accesses to the same address from different TCUs, at least one a
    write, form a race unless {e separated}: the earlier access's TCU
    released after it, and the later access's TCU acquired between that
    release and its access.  This is the Fig. 7 publication discipline —
    store, fence, [psm] the flag; consumer [psm]s the flag, then reads.
    Unordered same-epoch accesses that happen to land in the benign
    order are still flagged only when genuinely unseparated, so a
    fence-less compile is reported exactly when the hardware could (and
    in the observed schedule did or could have) exposed the reorder.

    Races are deduplicated on (address, kind, pc of each side) with an
    occurrence count, and reported deterministically sorted.  The
    detector is detachable and every hook is guarded by an option check
    in the machine, so a run without it pays nothing. *)

(* growable sorted int vector (sequence numbers are appended in
   increasing order, so pushes keep it sorted) *)
type ivec = { mutable buf : int array; mutable len : int }

let ivec () = { buf = Array.make 16 0; len = 0 }

let push v x =
  if v.len = Array.length v.buf then begin
    let nb = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 nb 0 v.len;
    v.buf <- nb
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

(* smallest element > x, or None *)
let first_gt v x =
  let lo = ref 0 and hi = ref v.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v.buf.(mid) > x then hi := mid else lo := mid + 1
  done;
  if !lo < v.len then Some v.buf.(!lo) else None

type origin = { o_tcu : int; o_pc : int; o_time : int; o_seq : int }

type cell = {
  mutable writer : origin option;
  mutable readers : (int * origin) list;  (** latest read per TCU *)
}

type race = {
  r_addr : int;
  r_kind : string;  (** "write-write" | "read-write" *)
  r_epoch : int;
  r_tcu_a : int;
  r_pc_a : int;  (** earlier access *)
  r_tcu_b : int;
  r_pc_b : int;  (** later access *)
  r_time : int;  (** simulated time of the first detection *)
  mutable r_count : int;
}

type t = {
  mutable seq : int;  (** monotone event counter (logical order) *)
  mutable epoch : int;  (** spawn epoch, 1-based after the first spawn *)
  mutable events : int;  (** accesses observed *)
  shadow : (int, cell) Hashtbl.t;
  releases : (int, ivec) Hashtbl.t;  (* tcu -> release seqs *)
  acquires : (int, ivec) Hashtbl.t;  (* tcu -> acquire seqs *)
  found : (int * string * int * int, race) Hashtbl.t;
}

let create () =
  {
    seq = 0;
    epoch = 0;
    events = 0;
    shadow = Hashtbl.create 1024;
    releases = Hashtbl.create 64;
    acquires = Hashtbl.create 64;
    found = Hashtbl.create 16;
  }

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let vec_of tbl tcu =
  match Hashtbl.find_opt tbl tcu with
  | Some v -> v
  | None ->
    let v = ivec () in
    Hashtbl.replace tbl tcu v;
    v

let on_release t ~tcu = push (vec_of t.releases tcu) (next_seq t)
let on_acquire t ~tcu = push (vec_of t.acquires tcu) (next_seq t)

let on_sync t ~tcu =
  on_acquire t ~tcu;
  on_release t ~tcu

(* New spawn region: fresh epoch, fresh shadow.  Sequence numbers stay
   monotone across epochs; races never span epochs because all spawn
   traffic is serviced before the join completes. *)
let on_spawn t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.shadow

(* [prior] happened-before [cur] through synchronization? *)
let separated t (prior : origin) ~cur_tcu ~cur_seq =
  match first_gt (vec_of t.releases prior.o_tcu) prior.o_seq with
  | None -> false
  | Some r -> (
    match first_gt (vec_of t.acquires cur_tcu) r with
    | Some a -> a < cur_seq
    | None -> false)

let report t ~kind (prior : origin) ~tcu ~pc ~addr ~time =
  let key = (addr, kind, prior.o_pc, pc) in
  match Hashtbl.find_opt t.found key with
  | Some r -> r.r_count <- r.r_count + 1
  | None ->
    Hashtbl.replace t.found key
      {
        r_addr = addr;
        r_kind = kind;
        r_epoch = t.epoch;
        r_tcu_a = prior.o_tcu;
        r_pc_a = prior.o_pc;
        r_tcu_b = tcu;
        r_pc_b = pc;
        r_time = time;
        r_count = 1;
      }

let cell_of t addr =
  match Hashtbl.find_opt t.shadow addr with
  | Some c -> c
  | None ->
    let c = { writer = None; readers = [] } in
    Hashtbl.replace t.shadow addr c;
    c

let check t prior ~kind ~tcu ~pc ~addr ~time ~seq =
  match prior with
  | Some (o : origin) when o.o_tcu <> tcu ->
    if not (separated t o ~cur_tcu:tcu ~cur_seq:seq) then
      report t ~kind o ~tcu ~pc ~addr ~time
  | _ -> ()

let on_read t ~tcu ~pc ~addr ~time =
  t.events <- t.events + 1;
  let seq = next_seq t in
  let c = cell_of t addr in
  check t c.writer ~kind:"read-write" ~tcu ~pc ~addr ~time ~seq;
  let o = { o_tcu = tcu; o_pc = pc; o_time = time; o_seq = seq } in
  c.readers <- (tcu, o) :: List.remove_assoc tcu c.readers

let on_write t ~tcu ~pc ~addr ~time =
  t.events <- t.events + 1;
  let seq = next_seq t in
  let c = cell_of t addr in
  check t c.writer ~kind:"write-write" ~tcu ~pc ~addr ~time ~seq;
  List.iter
    (fun (_, o) -> check t (Some o) ~kind:"read-write" ~tcu ~pc ~addr ~time ~seq)
    c.readers;
  c.writer <- Some { o_tcu = tcu; o_pc = pc; o_time = time; o_seq = seq };
  c.readers <- []

let races t =
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) t.found [] in
  List.sort
    (fun a b ->
      compare
        (a.r_addr, a.r_kind, a.r_pc_a, a.r_pc_b)
        (b.r_addr, b.r_kind, b.r_pc_a, b.r_pc_b))
    rs

let race_count t = Hashtbl.length t.found
let events t = t.events
let epochs t = t.epoch

let race_to_json (r : race) =
  Obs.Json.Obj
    [
      ("addr", Obs.Json.Int r.r_addr);
      ("kind", Obs.Json.Str r.r_kind);
      ("epoch", Obs.Json.Int r.r_epoch);
      ("tcu_a", Obs.Json.Int r.r_tcu_a);
      ("pc_a", Obs.Json.Int r.r_pc_a);
      ("tcu_b", Obs.Json.Int r.r_tcu_b);
      ("pc_b", Obs.Json.Int r.r_pc_b);
      ("time", Obs.Json.Int r.r_time);
      ("count", Obs.Json.Int r.r_count);
    ]

(* Simulated-schedule-only content: byte-identical for identical runs
   regardless of host parallelism or clock gating. *)
let to_json t =
  Obs.Json.Obj
    [
      ("races", Obs.Json.List (List.map race_to_json (races t)));
      ("epochs", Obs.Json.Int t.epoch);
      ("events", Obs.Json.Int t.events);
    ]
