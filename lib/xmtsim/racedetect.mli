(** Dynamic shadow-memory race detector.

    Records per-address last-writer / latest-read-per-TCU origins and
    per-TCU acquire/release sequences ([ps]/[psm] completions acquire and
    release; fence completions release).  Two same-address accesses from
    different TCUs, at least one a write, are a race unless separated by
    a release of the earlier TCU followed by an acquire of the later TCU
    before its access (the Fig. 7 publication discipline).

    Attach with {!Machine.attach_racecheck}; a machine without a
    detector pays no overhead.  Reports are deterministic: simulated
    quantities only, sorted and deduplicated on
    (address, kind, pc, pc). *)

type t

type race = {
  r_addr : int;
  r_kind : string;  (** ["write-write"] or ["read-write"] *)
  r_epoch : int;  (** spawn epoch (1-based) the race was detected in *)
  r_tcu_a : int;
  r_pc_a : int;  (** earlier access *)
  r_tcu_b : int;
  r_pc_b : int;  (** later access *)
  r_time : int;  (** simulated time of first detection *)
  mutable r_count : int;  (** occurrences of this (addr, kind, pcs) pair *)
}

val create : unit -> t

(** New spawn region: bump the epoch and clear the shadow memory. *)
val on_spawn : t -> unit

(** Memory access at service time. *)
val on_read : t -> tcu:int -> pc:int -> addr:int -> time:int -> unit

val on_write : t -> tcu:int -> pc:int -> addr:int -> time:int -> unit

(** [ps]/[psm] completion: acquire + release for the issuing TCU. *)
val on_sync : t -> tcu:int -> unit

val on_acquire : t -> tcu:int -> unit

(** Fence completion (pending non-blocking stores drained). *)
val on_release : t -> tcu:int -> unit

(** Detected races, sorted on (address, kind, pc_a, pc_b). *)
val races : t -> race list

val race_count : t -> int

(** Accesses observed. *)
val events : t -> int

val epochs : t -> int

(** The [dynamic] member of an [xmt.races.v1] report:
    [{races, epochs, events}]. *)
val to_json : t -> Obs.Json.t
